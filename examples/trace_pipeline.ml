(* The full measurement pipeline, end to end, the way the paper's tooling
   worked: instrumented servers write per-server trace files; the files
   are parsed back, merged into one time-ordered stream, scrubbed of the
   tracing infrastructure's own records, and analyzed.

   Run with:  dune exec examples/trace_pipeline.exe *)

module Cluster = Dfs_sim.Cluster

let () =
  let preset =
    Dfs_workload.Presets.scaled (Dfs_workload.Presets.trace 2) ~factor:0.02
  in
  Printf.printf "1. simulate: %s, %.0f minutes\n%!" preset.name
    (preset.duration /. 60.0);
  let cluster, _ = Dfs_workload.Presets.run preset in

  let dir = Filename.temp_file "dfs-traces" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      (* 2. each server's kernel log goes to its own trace file *)
      let paths =
        List.mapi
          (fun i records ->
            let path = Filename.concat dir (Printf.sprintf "server%d.trace" i) in
            Dfs_trace.Writer.with_file path (fun w ->
                List.iter (Dfs_trace.Writer.write w) records);
            Printf.printf "2. wrote %s (%d records)\n" path (List.length records);
            path)
          (Cluster.server_traces cluster)
      in
      (* 3. parse them back *)
      let streams =
        List.map
          (fun path ->
            match Dfs_trace.Reader.of_file path with
            | Ok records -> records
            | Error e ->
              Printf.eprintf "%s: %s\n" path e;
              exit 1)
          paths
      in
      (* 4. merge by timestamp and drop the trace daemon's and the nightly
         backup's own records, exactly as Section 3 describes *)
      let merged =
        Dfs_trace.Merge.scrub ~self_users:Cluster.self_users
          (Dfs_trace.Merge.merge streams)
      in
      Printf.printf "3. merged %d records (time-sorted: %b)\n"
        (List.length merged)
        (Dfs_trace.Merge.is_sorted merged);
      (* 5. analyze *)
      let marr = Array.of_list merged in
      let stats = Dfs_analysis.Trace_stats.of_trace marr in
      Format.printf "4. %a@." Dfs_analysis.Trace_stats.pp stats;
      let rl = Dfs_analysis.Run_length.of_trace marr in
      Printf.printf
        "5. sequential runs: %d; runs under 10 KB: %.1f%%; bytes in runs \
         over 1 MB: %.1f%%\n"
        (Dfs_util.Cdf.count rl.by_runs)
        (100.0 *. Dfs_util.Cdf.fraction_below rl.by_runs 10240.0)
        (100.0 *. (1.0 -. Dfs_util.Cdf.fraction_below rl.by_bytes 1048576.0)))
