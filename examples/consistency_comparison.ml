(* Cache-consistency mechanisms compared (Sections 5.5-5.6 of the paper):

   1. how often would users see STALE data under an NFS-style polling
      scheme (Table 11), and
   2. what do the three "real" mechanisms cost on write-shared files
      (Table 12): Sprite's disable-caching, the modified Sprite scheme,
      and Locus/Echo-style tokens.

   Run with:  dune exec examples/consistency_comparison.exe *)

module C = Dfs_consistency

let () =
  (* Simulate a trace with plenty of sharing: the busy part of a day. *)
  let preset =
    Dfs_workload.Presets.scaled (Dfs_workload.Presets.trace 3) ~factor:0.08
  in
  Printf.printf "simulating %s (%.1f h)...\n%!" preset.name
    (preset.duration /. 3600.0);
  let cluster, _ = Dfs_workload.Presets.run preset in
  let trace =
    Dfs_trace.Record_batch.of_list (Dfs_sim.Cluster.merged_trace cluster)
  in

  (* -- stale data under polling ------------------------------------------ *)
  Printf.printf "\n== What if consistency were polling-based (NFS-style)? ==\n";
  List.iter
    (fun interval ->
      let r = C.Polling.simulate ~interval trace in
      Printf.printf
        "  refresh %4.0fs: %5.2f stale reads/hour; %4.1f%% of users \
         affected; %5.3f%% of opens return stale data\n"
        interval r.errors_per_hour
        (C.Polling.pct_users_affected r)
        (C.Polling.pct_opens_with_error r))
    [ 60.0; 30.0; 10.0; 3.0 ];

  (* -- mechanism overheads ------------------------------------------------ *)
  Printf.printf "\n== Consistency overhead on write-shared files ==\n";
  let streams = C.Shared_events.extract trace in
  let demand_bytes = C.Shared_events.total_requested streams in
  let demand_requests = C.Shared_events.total_requests streams in
  Printf.printf
    "  %d write-shared files; applications requested %.1f KB in %d calls\n"
    (List.length streams)
    (float_of_int demand_bytes /. 1024.0)
    demand_requests;
  let show name result =
    let r = C.Overhead.ratios ~demand_bytes ~demand_requests result in
    Printf.printf "  %-28s bytes ratio %5.2f   RPC ratio %5.2f\n" name
      r.bytes_ratio r.rpc_ratio
  in
  show "Sprite (disable caching)" (C.Sprite.simulate streams);
  show "Sprite modified" (C.Sprite_modified.simulate streams);
  show "token-based" (C.Token.simulate streams);
  Printf.printf
    "\nThe paper's conclusion holds: overheads are comparable, and the \
     differences depend on how finely applications share — so pick the \
     simplest mechanism.\n"
