(* Quickstart: simulate a short busy morning on a small Sprite-like
   cluster, then run the headline analyses on the trace it produced.

   Run with:  dune exec examples/quickstart.exe *)

module Cluster = Dfs_sim.Cluster
module Presets = Dfs_workload.Presets

let () =
  (* Take the standard "trace 1" configuration, shrunk to 45 simulated
     minutes of the busy part of the day, on a 12-client cluster. *)
  let preset = Presets.scaled (Presets.trace 1) ~factor:0.031 in
  let preset =
    {
      preset with
      Presets.cluster_config =
        { preset.cluster_config with Cluster.n_clients = 12; n_servers = 2 };
    }
  in
  Printf.printf "simulating %.0f minutes on %d clients...\n%!"
    (preset.duration /. 60.0) preset.cluster_config.n_clients;
  let cluster, driver = Presets.run preset in
  let trace = Cluster.merged_trace cluster in

  (* Overall statistics (the shape of the paper's Table 1). *)
  let stats = Dfs_analysis.Trace_stats.of_trace (Array.of_list trace) in
  Format.printf "@.%a@.@." Dfs_analysis.Trace_stats.pp stats;
  Printf.printf "simulated users: %d\n" (Dfs_workload.Driver.n_users driver);

  (* User activity (Table 2's measurement). *)
  let act =
    Dfs_analysis.Activity.analyze ~interval:600.0
      (Dfs_trace.Record_batch.of_list trace)
  in
  Format.printf "%a@.@." Dfs_analysis.Activity.pp act;

  (* Access patterns (Table 3's headline). *)
  let pat = Dfs_analysis.Access_patterns.of_trace (Array.of_list trace) in
  Printf.printf
    "read-only accesses: %.1f%% of accesses, %.1f%% of bytes\n"
    (Dfs_analysis.Access_patterns.pct_accesses pat pat.read_only)
    (Dfs_analysis.Access_patterns.pct_bytes pat pat.read_only);

  (* How effective were the client caches? *)
  let raw = Cluster.total_traffic cluster in
  let srv = Cluster.total_server_traffic cluster in
  Printf.printf
    "client caches passed %.0f%% of %.1f MB of raw traffic to the servers\n"
    (100.0 *. Dfs_analysis.Cache_stats.filter_ratio ~raw ~server:srv)
    (float_of_int (Dfs_sim.Traffic.total raw) /. 1048576.0);

  (* And the open-duration CDF point the paper highlights. *)
  let ot = Dfs_analysis.Open_time.of_trace (Array.of_list trace) in
  Printf.printf "opens under a quarter second: %.1f%%\n"
    (100.0 *. Dfs_analysis.Open_time.fraction_under ot 0.25)
