(* Process migration and burstiness: the paper found that users with
   migrated processes generated file traffic at short-term rates forty
   times the medium-term average, and that migration did NOT hurt cache
   hit ratios (migrated tasks have high locality because pmake reuses the
   same idle hosts).

   This example drives one developer running repeated parallel builds
   (pmake) and compares 10-second burst rates and cache behaviour between
   the migrated jobs and everything else.

   Run with:  dune exec examples/pmake_burst.exe *)

module Cluster = Dfs_sim.Cluster
module Engine = Dfs_sim.Engine
module Ids = Dfs_trace.Ids

let () =
  let cluster =
    Cluster.create
      {
        Cluster.default_config with
        n_clients = 10;
        n_servers = 1;
        seed = 2024;
        simulate_infrastructure = false;
      }
  in
  let params = Dfs_workload.Params.default in
  let ns =
    Dfs_workload.Namespace.create ~fs:(Cluster.fs cluster)
      ~rng:(Dfs_util.Rng.split (Cluster.rng cluster))
      ~params ~now:0.0 ~n_users:2
  in
  let board = Dfs_workload.Migration.create ~n_clients:10 () in
  let ctx =
    {
      Dfs_workload.Apps.cluster;
      params;
      ns;
      board;
      rng = Dfs_util.Rng.create 7;
      user = Ids.User.of_int 0;
      group = Dfs_workload.Params.Os_research;
      home = 0;
      uses_migration = true;
    }
  in
  (* One developer in a hurry: twenty pmakes back to back. *)
  Engine.spawn (Cluster.engine cluster) (fun () ->
      for _ = 1 to 20 do
        Dfs_workload.Apps.pmake ctx;
        Engine.sleep 30.0
      done);
  Cluster.run cluster ~until:7200.0;

  let trace = Cluster.merged_trace cluster in
  let batch = Dfs_trace.Record_batch.of_list trace in
  let all = Dfs_analysis.Activity.analyze ~interval:10.0 batch in
  let mig =
    Dfs_analysis.Activity.analyze ~migrated_only:true ~interval:10.0 batch
  in
  Printf.printf "10-second peak throughput, all traffic:      %8.0f KB/s\n"
    all.peak_total_throughput;
  Printf.printf "10-second peak throughput, migrated traffic: %8.0f KB/s\n"
    mig.peak_total_throughput;

  (* Where did the migrated jobs run? *)
  let hosts = Hashtbl.create 8 in
  List.iter
    (fun (r : Dfs_trace.Record.t) ->
      if r.migrated then
        Hashtbl.replace hosts (Ids.Client.to_int r.client) ())
    trace;
  Printf.printf "idle hosts used by migrated jobs: %d of %d (host reuse)\n"
    (Hashtbl.length hosts) 10;

  (* Cache effectiveness for migrated vs. all processes (Table 6's
     comparison): migrated jobs reuse hosts, so their hit ratios hold up. *)
  let stats =
    Array.to_list
      (Array.map
         (fun c -> Dfs_cache.Block_cache.stats (Dfs_sim.Client.cache c))
         (Cluster.clients cluster))
  in
  let eff = Dfs_analysis.Cache_stats.effectiveness stats ~migrated:false in
  let eff_mig = Dfs_analysis.Cache_stats.effectiveness stats ~migrated:true in
  Printf.printf "file read miss ratio, all processes:      %5.1f%%\n"
    eff.read_miss.mean_pct;
  Printf.printf "file read miss ratio, migrated processes: %5.1f%%\n"
    eff_mig.read_miss.mean_pct;

  (* The recalls the links triggered when reading freshly built remote
     objects. *)
  let k = Dfs_sim.Server.consistency (Cluster.servers cluster).(0) in
  Printf.printf "server recalls of dirty data: %d (over %d file opens)\n"
    k.recalls k.file_opens
