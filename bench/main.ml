(* The benchmark harness.

   Running `dune exec bench/main.exe` does three things:

   1. generates the simulated counterparts of the paper's eight traces
      (duration controlled by DFS_SCALE / DFS_FULL; see Dfs_core.Dataset);
   2. regenerates EVERY table and figure of the paper's evaluation, printing
      measured values next to the published ones;
   3. runs micro-benchmarks over the analysis passes (one fused
      single-pass covers table 1, table 3 and figs 1-4; the rest are
      timed individually), plus ablation benchmarks for the design
      choices called out in DESIGN.md (writeback delay, cache size,
      migration host policy, local vs. remote paging).

   Use DFS_FULL=1 for full 24-hour traces (takes tens of minutes), or
   DFS_SCALE=0.02 for a quick look. *)

let scale () =
  match Sys.getenv_opt "DFS_SCALE" with
  | Some s -> float_of_string s
  | None -> Dfs_core.Dataset.default_scale ()

(* DFS_PROFILE_OUT=p.json turns on the wall-clock profiler for the whole
   bench and writes the Chrome trace at exit (the bench is a separate
   executable, so the env var plays the role of dfs_repro's
   --profile-out). *)
let profile_out () =
  match Sys.getenv_opt "DFS_PROFILE_OUT" with
  | Some p when p <> "" -> Some p
  | Some _ | None -> None

(* -- part 1+2: reproduce the evaluation ------------------------------------- *)

(* Runs every experiment, printing its rendering; returns per-experiment
   wall times for the machine-readable run report.

   The passes are independent (they only read the dataset, and share
   session reconstructions through the domain-safe [Dataset.sessions]
   memo), so they fan out over the pool; renderings are collected and
   printed afterwards in experiment order, keeping stdout byte-identical
   to a sequential run. *)
let reproduce pool ds =
  print_endline "==================================================================";
  print_endline " Reproduction: Measurements of a Distributed File System (SOSP'91)";
  print_endline "==================================================================";
  Printf.printf " dataset: %d traces at scale %.3f\n\n" (List.length ds.Dfs_core.Dataset.runs)
    ds.Dfs_core.Dataset.scale;
  let rendered =
    Dfs_util.Pool.map pool
      (fun (e : Dfs_core.Experiment.t) ->
        let t0 = Unix.gettimeofday () in
        let out = e.run ds in
        (e, out, Unix.gettimeofday () -. t0))
      Dfs_core.Experiment.all
  in
  List.map
    (fun ((e : Dfs_core.Experiment.t), out, wall) ->
      Printf.printf "=== %s: %s ===\n%s\n" e.id e.title out;
      (e.id, wall))
    rendered

(* -- machine-readable run telemetry ------------------------------------------- *)

let bench_out () =
  Option.value ~default:"BENCH_run.json" (Sys.getenv_opt "BENCH_OUT")

(* DFS_FAULTS=light|heavy runs the whole bench under fault injection;
   the profile name lands in the run report so telemetry from chaos runs
   is never mistaken for a clean baseline. *)
let fault_profile () =
  match Sys.getenv_opt "DFS_FAULTS" with
  | None | Some "" | Some "none" -> None
  | Some name ->
    (match Dfs_fault.Profile.of_name name with
    | Some p when not (Dfs_fault.Profile.is_none p) -> Some p
    | Some _ -> None
    | None -> failwith (Printf.sprintf "DFS_FAULTS: unknown profile %S" name))

(* Per-shard busy/stall gauges published by the PDES executor, read back
   for the report: shard indices are dense from 0, so stop at the first
   missing one. *)
let shard_utilization () =
  let module J = Dfs_obs.Json in
  let rec collect i acc =
    let busy_name = Printf.sprintf "sim.shard%d.busy_s" i in
    match Dfs_obs.Metrics.find busy_name with
    | Some (Dfs_obs.Metrics.Gauge busy) ->
      let stall =
        Dfs_obs.Metrics.gauge (Printf.sprintf "sim.shard%d.stall_s" i)
      in
      let entry =
        J.Obj
          [
            ("busy_s", J.Float (Dfs_obs.Metrics.gauge_value busy));
            ("stall_s", J.Float (Dfs_obs.Metrics.gauge_value stall));
          ]
      in
      collect (i + 1) (entry :: acc)
    | Some _ | None -> List.rev acc
  in
  collect 0 []

let write_run_report ~scale ~jobs ~faults ~sim_wall ~analysis_wall
    ~records_total ~experiments ~total_wall ~sim_shards ~scale_wall
    ~scale_partitions ~scale_records ~import_wall =
  let module J = Dfs_obs.Json in
  let gc = Gc.quick_stat () in
  let trace_counter name =
    Dfs_obs.Metrics.value (Dfs_obs.Metrics.counter name)
  in
  let sim_gauge name =
    Dfs_obs.Metrics.gauge_value (Dfs_obs.Metrics.gauge name)
  in
  (* decode throughput: trace records served per phase-second.  The
     analysis phase streams every run's trace (zero-copy from mapped
     segments when spilled); the sim phase produces the same records. *)
  let per_s wall =
    if wall > 0.0 then float_of_int records_total /. wall else 0.0
  in
  let report =
    J.Obj
      [
        ("schema", J.String "dfs-bench-run/8");
        ("scale", J.Float scale);
        ("jobs", J.Int jobs);
        ("sim_shards", J.Int sim_shards);
        ( "faults",
          J.String
            (match faults with
            | Some p -> Dfs_fault.Profile.name p
            | None -> "none") );
        ( "phases",
          J.Obj
            [
              ("sim_wall_s", J.Float sim_wall);
              ("analysis_wall_s", J.Float analysis_wall);
              ("scale_wall_s", J.Float scale_wall);
              ("import_wall_s", J.Float import_wall);
              ("sim_records_per_s", J.Float (per_s sim_wall));
              ("analysis_records_per_s", J.Float (per_s analysis_wall));
            ] );
        (* the sharded-simulation telemetry: barrier counts across every
           windowed run, plus the scale phase's partition layout and
           per-shard busy/stall split *)
        ( "sim",
          J.Obj
            [
              ("barrier_count", J.Int (trace_counter "sim.barrier.count"));
              ("lookahead_s", J.Float (sim_gauge "sim.lookahead_s"));
              ("partitions", J.Int scale_partitions);
              ("scale_records", J.Int scale_records);
              ( "remote_messages",
                J.Int (trace_counter "sim.pdes.messages") );
              ("shards", J.List (shard_utilization ()));
            ] );
        ("total_wall_s", J.Float total_wall);
        (* peak-heap telemetry: the regression gate for the streaming
           trace pipeline's bounded-memory claim *)
        ( "gc",
          J.Obj
            [
              ("top_heap_words", J.Int gc.Gc.top_heap_words);
              ("heap_words", J.Int gc.Gc.heap_words);
              ("major_collections", J.Int gc.Gc.major_collections);
            ] );
        ( "trace",
          J.Obj
            [
              ("chunk_records", J.Int (Dfs_core.Dataset.default_chunk_records ()));
              ( "spill_dir",
                match Dfs_core.Dataset.default_spill_dir () with
                | Some d -> J.String d
                | None -> J.Null );
              ("chunks_sealed", J.Int (trace_counter "trace.sink.chunks_sealed"));
              ("chunks_spilled", J.Int (trace_counter "trace.sink.chunks_spilled"));
              ("spilled_bytes", J.Int (trace_counter "trace.sink.spilled_bytes"));
              ("records_total", J.Int records_total);
              ("encoded_bytes", J.Int (trace_counter "trace.encoded_bytes"));
              ("mapped_bytes", J.Int (trace_counter "trace.mapped_bytes"));
              ( "decode_skipped_records",
                J.Int (trace_counter "trace.decode.skipped_records") );
              (* durability & integrity: checksum-verified volume plus
                 the retry / corruption counters (all zero on a healthy
                 run) *)
              ( "verified_bytes",
                J.Int (trace_counter "trace.checksum.verified_bytes") );
              ("io_retries", J.Int (trace_counter "trace.io.retries"));
              ("io_giveups", J.Int (trace_counter "trace.io.giveups"));
              ( "corruption_detected",
                J.Int (trace_counter "trace.corruption.detected") );
              ( "corruption_salvaged_records",
                J.Int (trace_counter "trace.corruption.salvaged_records") );
            ] );
        ( "experiments",
          J.List
            (List.map
               (fun (id, wall) ->
                 J.Obj [ ("id", J.String id); ("wall_s", J.Float wall) ])
               experiments) );
        ("metrics", Dfs_obs.Metrics.to_json ());
      ]
  in
  let path = bench_out () in
  let oc = open_out path in
  output_string oc (J.to_pretty_string report);
  close_out oc;
  Dfs_obs.Log.info "wrote run telemetry to %s" path

(* -- part 3: micro-benchmarks ------------------------------------------------- *)

let analysis_tests (ds : Dfs_core.Dataset.t) =
  let run = List.hd ds.runs in
  let batch = Dfs_core.Dataset.batch run in
  let stats () = List.concat_map Dfs_core.Dataset.client_cache_stats ds.runs in
  let t name f = (name, fun () -> ignore (Sys.opaque_identity (f ()))) in
  [
    (* one sweep drives table 1, table 3 and figs 1-4 *)
    t "fused/single-pass" (fun () -> Dfs_analysis.Fused.analyze batch);
    t "table2/activity-10min" (fun () ->
        Dfs_analysis.Activity.analyze ~interval:600.0 batch);
    t "table4/cache-sizes" (fun () ->
        Dfs_analysis.Cache_stats.cache_sizes
          (Dfs_sim.Cluster.counters run.cluster));
    t "table5/traffic-rows" (fun () ->
        Dfs_analysis.Cache_stats.traffic_rows
          (Dfs_sim.Cluster.total_traffic run.cluster));
    t "table6/effectiveness" (fun () ->
        Dfs_analysis.Cache_stats.effectiveness (stats ()) ~migrated:false);
    t "table7/server-traffic" (fun () ->
        Dfs_analysis.Cache_stats.traffic_rows
          (Dfs_sim.Cluster.total_server_traffic run.cluster));
    t "table8/replacements" (fun () ->
        Dfs_analysis.Cache_stats.replacements (stats ()));
    t "table9/cleanings" (fun () -> Dfs_analysis.Cache_stats.cleanings (stats ()));
    t "table10/consistency-replay" (fun () ->
        Dfs_analysis.Consistency_stats.analyze batch);
    t "table11/polling-60s" (fun () ->
        Dfs_consistency.Polling.simulate ~interval:60.0 batch);
    t "table12/mechanisms" (fun () ->
        let streams = Dfs_consistency.Shared_events.extract batch in
        ( Dfs_consistency.Sprite.simulate streams,
          Dfs_consistency.Sprite_modified.simulate streams,
          Dfs_consistency.Token.simulate streams ));
  ]

(* This sampler used to be bechamel, but bechamel's [Benchmark.run]
   unconditionally "stabilizes" the GC with repeated [Gc.compact] before
   every test element.  With eight finished clusters live, each compact
   walks a multi-GB heap and costs seconds — far more than any measured
   function — so the stabilization dominated the whole bench (~2.5 s per
   test regardless of quota).  This loop keeps bechamel's methodology —
   a geometric ladder of batched runs with a least-squares fit of time
   against run count — and skips the compaction.  Measurement stays
   sequential on purpose: concurrent tests would contend for cores and
   corrupt each other's timings.

   Sampling is adaptive: the quota is a ceiling, not a target.  Once the
   fitted slope agrees with the previous fit to within [microbench_tol]
   for two consecutive samples (and at least [microbench_min_samples]
   points are in), the estimate has converged and the test stops — a
   microsecond-scale pass finishes in a handful of runs instead of
   burning the whole quota. *)
let microbench_quota = 0.25
let microbench_limit = 200
let microbench_min_samples = 3
let microbench_tol = 0.05

(* ms per run: slope of elapsed time vs. batched run count, fit through
   the origin over a 1.5x geometric ladder. *)
let measure_slope fn =
  ignore (Sys.opaque_identity (fn ()));
  (* warm up *)
  let t0 = Unix.gettimeofday () in
  let sxx = ref 0.0 and sxy = ref 0.0 in
  let runs = ref 1 and samples = ref 0 in
  let prev_slope = ref infinity and stable = ref 0 in
  while
    Unix.gettimeofday () -. t0 < microbench_quota
    && !samples < microbench_limit
    && !stable < 2
  do
    let r = !runs in
    let s = Unix.gettimeofday () in
    for _ = 1 to r do
      fn ()
    done;
    let dt = Unix.gettimeofday () -. s in
    let rf = float_of_int r in
    sxx := !sxx +. (rf *. rf);
    sxy := !sxy +. (rf *. dt);
    runs := max (r + 1) (int_of_float (1.5 *. rf));
    incr samples;
    let slope = !sxy /. !sxx in
    if
      !samples >= microbench_min_samples
      && Float.abs (slope -. !prev_slope) <= microbench_tol *. slope
    then incr stable
    else stable := 0;
    prev_slope := slope
  done;
  !sxy /. !sxx

let run_microbench tests =
  print_endline "== microbench: time per analysis pass ==";
  List.iter
    (fun (name, fn) ->
      Printf.printf "  %-42s %12.3f ms/run\n" name (1e3 *. measure_slope fn))
    tests;
  print_newline ()

(* -- ablations ------------------------------------------------------------------ *)

(* One short simulation per configuration; reports the metric DESIGN.md
   calls out for that design choice. *)

let mini_preset ?(n_clients = 10) ?(factor = 0.01) n =
  let p = Dfs_workload.Presets.scaled (Dfs_workload.Presets.trace n) ~factor in
  {
    p with
    Dfs_workload.Presets.cluster_config =
      { p.cluster_config with Dfs_sim.Cluster.n_clients; n_servers = 1 };
  }

let ablation_writeback_delay () =
  print_endline "== ablation: delayed-write interval vs writeback traffic ==";
  List.iter
    (fun delay ->
      let p = mini_preset 1 in
      let p =
        {
          p with
          Dfs_workload.Presets.cluster_config =
            {
              p.cluster_config with
              Dfs_sim.Cluster.client_config =
                {
                  p.cluster_config.client_config with
                  Dfs_sim.Client.writeback_delay = delay;
                };
            };
        }
      in
      let cluster, _ = Dfs_workload.Presets.run p in
      let written = ref 0 and back = ref 0 and discarded = ref 0 in
      Array.iter
        (fun c ->
          let s = Dfs_cache.Block_cache.stats (Dfs_sim.Client.cache c) in
          written := !written + s.all.bytes_written;
          back := !back + s.writeback_bytes;
          discarded := !discarded + s.dirty_bytes_discarded)
        (Dfs_sim.Cluster.clients cluster);
      Printf.printf
        "  delay %5.0fs: %5.1f%% of new bytes written back, %4.1f%% died in \
         the cache\n"
        delay
        (100.0 *. float_of_int !back /. float_of_int (max 1 !written))
        (100.0 *. float_of_int !discarded /. float_of_int (max 1 !written)))
    [ 0.0; 5.0; 30.0; 120.0 ];
  print_newline ()

let ablation_cache_ceiling () =
  print_endline "== ablation: cache size ceiling vs read miss ratio ==";
  List.iter
    (fun frac ->
      let p = mini_preset 5 in
      let p =
        {
          p with
          Dfs_workload.Presets.cluster_config =
            {
              p.cluster_config with
              Dfs_sim.Cluster.client_config =
                {
                  p.cluster_config.client_config with
                  Dfs_sim.Client.max_cache_fraction = frac;
                };
            };
        }
      in
      let cluster, _ = Dfs_workload.Presets.run p in
      let ops = ref 0 and misses = ref 0 in
      Array.iter
        (fun c ->
          let s = (Dfs_cache.Block_cache.stats (Dfs_sim.Client.cache c)).file in
          ops := !ops + s.read_ops;
          misses := !misses + s.read_misses)
        (Dfs_sim.Cluster.clients cluster);
      Printf.printf "  cache <= %4.0f%% of memory: read miss ratio %5.1f%%\n"
        (100.0 *. frac)
        (100.0 *. float_of_int !misses /. float_of_int (max 1 !ops)))
    [ 0.04; 0.10; 0.20; 0.34; 0.60 ];
  print_newline ()

let ablation_migration_policy () =
  print_endline "== ablation: migration on/off vs 10-second burst rate ==";
  List.iter
    (fun migration ->
      let p = mini_preset 1 in
      let p =
        {
          p with
          Dfs_workload.Presets.params =
            { p.params with Dfs_workload.Params.migration_enabled = migration };
        }
      in
      let cluster, _ = Dfs_workload.Presets.run p in
      let batch =
        Dfs_trace.Record_batch.of_list (Dfs_sim.Cluster.merged_trace cluster)
      in
      let r = Dfs_analysis.Activity.analyze ~interval:10.0 batch in
      Printf.printf "  migration %-3s: peak 10s total %6.0f KB/s\n"
        (if migration then "on" else "off")
        r.peak_total_throughput)
    [ true; false ];
  print_newline ()

let ablation_lfs_crossover ds =
  print_endline
    "== ablation: update-in-place vs log-structured server disk (Section 6) ==";
  let accesses = Dfs_core.Dataset.sessions (List.hd ds.Dfs_core.Dataset.runs) in
  Printf.printf "  %-22s %14s %14s %8s\n" "client read-miss" "in-place (s)"
    "log (s)" "speedup";
  List.iter
    (fun (miss, ip, lg) ->
      Printf.printf "  %-22s %14.1f %14.1f %7.1fx\n"
        (Printf.sprintf "%.0f%%" (100.0 *. miss))
        ip lg
        (if lg > 0.0 then ip /. lg else 0.0))
    (Dfs_lfs.Disk_layout.crossover_table accesses ~seed:11);
  print_endline
    "  (as caches absorb more reads, writes dominate and the log wins — \
     the paper's closing argument for LFS)";
  print_newline ()

let ablation_local_paging () =
  (* Section 5.3: local disks for paging would cut server traffic by only
     ~20%; here we measure what share of server bytes the backing files
     actually are. *)
  print_endline "== ablation: share of server traffic a local paging disk would remove ==";
  let p = mini_preset 1 in
  let cluster, _ = Dfs_workload.Presets.run p in
  let t = Dfs_sim.Cluster.total_server_traffic cluster in
  let backing =
    Dfs_sim.Traffic.read_bytes t Dfs_sim.Traffic.Paging_backing
    + Dfs_sim.Traffic.write_bytes t Dfs_sim.Traffic.Paging_backing
  in
  Printf.printf
    "  backing-file traffic: %.1f%% of server bytes (paper argues ~20%% is \
     not worth a local disk)\n\n"
    (100.0 *. float_of_int backing /. float_of_int (max 1 (Dfs_sim.Traffic.total t)))

(* -- sharded scale phase ------------------------------------------------------ *)

(* A partitioned PDES run sized off DFS_SCALE: real cross-partition
   traffic through the window barriers, executed on DFS_SIM_SHARDS
   domains (default auto).  This is what populates the per-shard
   busy/stall gauges and the partition/barrier telemetry in the run
   report; its wall time is the sharded-scaling headline number. *)
let run_scale_phase ~scale =
  let cfg =
    {
      Dfs_workload.Sharded.default_config with
      Dfs_workload.Sharded.n_clients = 192;
      n_servers = 4;
      duration = Float.max 300.0 (scale *. 86400.0);
      chunk_records = Some (Dfs_core.Dataset.default_chunk_records ());
      spill_dir = Dfs_core.Dataset.default_spill_dir ();
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = Dfs_workload.Sharded.run cfg in
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf
    "== scale: %d clients over %d partitions on %d shard worker(s) ==\n"
    cfg.Dfs_workload.Sharded.n_clients r.Dfs_workload.Sharded.partitions
    r.Dfs_workload.Sharded.workers;
  Printf.printf "  %-28s %d\n" "window barriers"
    r.Dfs_workload.Sharded.barriers;
  Printf.printf "  %-28s %d\n" "cross-partition messages"
    r.Dfs_workload.Sharded.remote_msgs;
  Printf.printf "  %-28s %d\n" "merged trace records"
    (Dfs_trace.Sink.length r.Dfs_workload.Sharded.merged);
  Printf.printf "  %-28s %.2f s\n\n" "wall" wall;
  let records = Dfs_trace.Sink.length r.Dfs_workload.Sharded.merged in
  let partitions = r.Dfs_workload.Sharded.partitions in
  let workers = r.Dfs_workload.Sharded.workers in
  Dfs_workload.Sharded.release r;
  (wall, partitions, workers, records)

(* External-trace ingestion throughput: a deterministic synthetic
   SNIA-style CSV pushed through the full import pipeline (parse,
   remap, open/close inference, validation).  Gated by bench-diff via
   the import_wall_s phase. *)
let run_import_phase () =
  let rows = 50_000 in
  let b = Buffer.create (rows * 32) in
  Buffer.add_string b "Timestamp,Hostname,DiskNumber,Type,Offset,Size\n";
  for i = 0 to rows - 1 do
    Buffer.add_string b
      (Printf.sprintf "%.3f,host%d,%d,%s,%d,%d\n"
         (float_of_int i /. 50.0)
         (i mod 13) (i mod 3)
         (if i mod 4 = 0 then "Write" else "Read")
         (i * 4096 mod (1 lsl 24))
         (4096 * (1 + (i mod 4))))
  done;
  let csv = Buffer.contents b in
  let t0 = Unix.gettimeofday () in
  (match Dfs_ingest.Import.of_csv_string csv with
  | Ok (records, stats) ->
    Printf.printf "== import: %d rows -> %d records (%d files) ==\n"
      stats.Dfs_ingest.Import.rows (List.length records)
      stats.Dfs_ingest.Import.files
  | Error e -> failwith ("bench import phase: " ^ e));
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf "  %-28s %.2f s\n\n" "wall" wall;
  Dfs_obs.Metrics.set (Dfs_obs.Metrics.gauge "phase.import.wall_s") wall;
  wall

let () =
  (* The simulation phase allocates heavily (every event, RPC and cache
     op); a larger minor heap and a lazier major GC trade memory we have
     for collections we don't need.  Purely a speed knob — results are
     identical. *)
  Gc.set
    {
      (Gc.get ()) with
      Gc.minor_heap_size = 8 * 1024 * 1024;
      space_overhead = 200;
    };
  let t0 = Unix.gettimeofday () in
  if Option.is_some (profile_out ()) then Dfs_obs.Profiler.enable ();
  let pool = Dfs_util.Pool.create () in
  let faults = fault_profile () in
  let ds =
    Dfs_core.Dataset.generate ~scale:(scale ()) ~jobs:(Dfs_util.Pool.jobs pool)
      ?faults ()
  in
  let sim_wall = Unix.gettimeofday () -. t0 in
  Dfs_obs.Log.info "dataset ready in %.1fs on %d domain(s)" sim_wall
    (Dfs_util.Pool.jobs pool);
  let records_total =
    List.fold_left
      (fun acc r -> acc + Dfs_trace.Sink.length r.Dfs_core.Dataset.trace)
      0 ds.Dfs_core.Dataset.runs
  in
  let t_analysis = Unix.gettimeofday () in
  (* Warm each run's fused memo from the top level: the sharded pass
     fans out across the pool here, and every experiment inside
     [reproduce]'s pool tasks then hits the memo instead of falling back
     to the sequential sweep. *)
  Dfs_obs.Profiler.span ~cat:"analysis" "fused.warm" (fun () ->
      List.iter (fun r -> ignore (Dfs_core.Dataset.fused r)) ds.Dfs_core.Dataset.runs);
  let experiment_walls = reproduce pool ds in
  let analysis_wall = Unix.gettimeofday () -. t_analysis in
  (* Section 5.3's absolute paging rates and the server-side cache effect *)
  (let run = List.hd ds.Dfs_core.Dataset.runs in
   let cluster = run.Dfs_core.Dataset.cluster in
   let paging =
     Dfs_analysis.Paging_stats.analyze
       ~n_clients:(Array.length (Dfs_sim.Cluster.clients cluster))
       ~duration:run.preset.duration
       ~raw:(Dfs_sim.Cluster.total_traffic cluster)
       ()
   in
   Format.printf "=== section 5.3: absolute paging rates (trace 1) ===@.%a@.@."
     Dfs_analysis.Paging_stats.pp paging;
   let servers = Array.to_list (Dfs_sim.Cluster.servers cluster) in
   Format.printf "=== table 7 footnote: the server-side cache ===@.%a@.@."
     Dfs_analysis.Server_stats.pp
     (Dfs_analysis.Server_stats.analyze servers));
  let time_phase name f =
    let t = Unix.gettimeofday () in
    let r = f () in
    Dfs_obs.Metrics.set
      (Dfs_obs.Metrics.gauge (Printf.sprintf "phase.%s.wall_s" name))
      (Unix.gettimeofday () -. t);
    r
  in
  time_phase "scorecard" (fun () ->
      print_string (Dfs_core.Claims.scorecard ds);
      print_newline ());
  time_phase "microbench" (fun () -> run_microbench (analysis_tests ds));
  time_phase "ablations" (fun () ->
      ablation_writeback_delay ();
      ablation_cache_ceiling ();
      ablation_migration_policy ();
      ablation_local_paging ();
      ablation_lfs_crossover ds);
  let scale_wall, scale_partitions, sim_shards, scale_records =
    run_scale_phase ~scale:ds.Dfs_core.Dataset.scale
  in
  let import_wall = run_import_phase () in
  let total_wall = Unix.gettimeofday () -. t0 in
  (* span-loss accounting lands in the embedded metrics snapshot *)
  Dfs_obs.Tracer.record_export_counters Dfs_obs.Tracer.default;
  write_run_report ~scale:ds.Dfs_core.Dataset.scale
    ~jobs:(Dfs_util.Pool.jobs pool) ~faults ~sim_wall ~analysis_wall
    ~records_total ~experiments:experiment_walls ~total_wall ~sim_shards
    ~scale_wall ~scale_partitions ~scale_records ~import_wall;
  Option.iter
    (fun path ->
      let oc = open_out path in
      Dfs_obs.Chrome_export.write oc;
      close_out oc;
      Dfs_obs.Log.info "wrote Chrome trace to %s (%d wall spans over %d domains)"
        path
        (Dfs_obs.Profiler.added ())
        (List.length (Dfs_obs.Profiler.domains ())))
    (profile_out ());
  Dfs_obs.Log.info "total wall time %.1fs" total_wall
