(* Command-line driver for the reproduction: list, run and inspect the
   paper's experiments, generate trace files, re-analyze them, and
   surface the simulator's own telemetry (metrics + event traces). *)

open Cmdliner

let scale_arg =
  let doc =
    "Trace length as a fraction of 24 hours (1.0 = full day). Defaults to \
     0.05, or 1.0 when DFS_FULL=1 is set."
  in
  Arg.(value & opt (some float) None & info [ "scale" ] ~docv:"FRACTION" ~doc)

let jobs_arg =
  let doc =
    "Number of domains used to simulate traces in parallel. Defaults to \
     DFS_JOBS, else the machine's recommended domain count. Results are \
     identical whatever the value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let sim_shards_arg =
  let doc =
    "Number of domains executing the sharded simulation's lookahead \
     windows. Defaults to DFS_SIM_SHARDS, else the machine's recommended \
     domain count. The partition layout is a pure function of the cluster \
     configuration — never of this setting — so results are byte-identical \
     whatever the value."
  in
  Arg.(value & opt (some int) None & info [ "sim-shards" ] ~docv:"N" ~doc)

let traces_arg =
  let doc = "Comma-separated trace numbers (1-8) to simulate." in
  Arg.(
    value
    & opt (list int) [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    & info [ "traces" ] ~docv:"N,..." ~doc)

(* -- fault injection ------------------------------------------------------- *)

let faults_arg =
  let doc =
    "Fault-injection profile: $(b,none) (default), $(b,light) (MTTF 6 h), or \
     $(b,heavy) (crash-heavy, MTTF 10 min). Server crashes destroy \
     delayed-write data inside the 30-second window; reboots trigger \
     Sprite-style stateful recovery."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"PROFILE" ~doc)

let fault_seed_arg =
  let doc =
    "Seed for the fault schedule (independent of the workload seed, so the \
     same workload can be replayed under different failure histories)."
  in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"N" ~doc)

(* -- trace pipeline memory bounds ------------------------------------------ *)

let chunk_records_arg =
  let doc =
    "Records per sealed trace chunk in the streaming trace pipeline. \
     Defaults to DFS_CHUNK_RECORDS, else 32768. Results are identical \
     whatever the value."
  in
  Arg.(value & opt (some int) None & info [ "chunk-records" ] ~docv:"N" ~doc)

let spill_dir_arg =
  let doc =
    "Spill sealed trace chunks to this directory as binary trace segments \
     instead of keeping them in memory, bounding peak heap. Defaults to \
     DFS_SPILL_DIR, else in-memory chunks. Results are identical either way."
  in
  Arg.(value & opt (some string) None & info [ "spill-dir" ] ~docv:"DIR" ~doc)

let fault_profile faults fault_seed =
  match faults with
  | None -> None
  | Some name ->
    (match Dfs_fault.Profile.of_name name with
    | Some p ->
      let p =
        match fault_seed with
        | Some s -> Dfs_fault.Profile.with_seed p s
        | None -> p
      in
      if Dfs_fault.Profile.is_none p then None else Some p
    | None ->
      Dfs_obs.Log.error "unknown fault profile %S (valid: none, light, heavy)"
        name;
      exit 1)

(* The recovery-stats table, printed after any dataset command that ran
   with faults enabled. *)
let print_recovery_stats (ds : Dfs_core.Dataset.t) =
  let named =
    List.filter_map
      (fun (r : Dfs_core.Dataset.run) ->
        Option.map
          (fun inj -> (r.preset.name, Dfs_fault.Injector.stats inj))
          (Dfs_sim.Cluster.faults r.cluster))
      ds.runs
  in
  if named <> [] then
    Format.printf "=== recovery: server crashes & delayed-write loss ===@.%a@."
      Dfs_analysis.Recovery_stats.pp
      (Dfs_analysis.Recovery_stats.analyze named)

(* -- observability plumbing ------------------------------------------------ *)

let verbosity_term =
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Verbose progress output (the DFS_LOG variable overrides).")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ]
          ~doc:"Print only errors (the DFS_LOG variable overrides).")
  in
  let apply verbose quiet =
    if verbose then Dfs_obs.Log.set_level Dfs_obs.Log.Verbose
    else if quiet then Dfs_obs.Log.set_level Dfs_obs.Log.Quiet
  in
  Term.(const apply $ verbose $ quiet)

let metrics_out_arg =
  let doc =
    "Write a JSON snapshot of the simulator metrics registry (counters, \
     gauges, histogram quantiles) to $(docv) after the command finishes."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Enable the simulated-event tracer and write its spans (RPCs, cache \
     fills/writebacks/evictions, disk I/O, consistency actions, migrations) \
     to $(docv) as JSON lines."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let profile_out_arg =
  let doc =
    "Enable the wall-clock profiler and write the run's hierarchical spans \
     (dataset generation, k-way merge, fused analysis, experiments, pool \
     tasks; one track per domain, GC deltas attached) together with any \
     simulated-time tracer spans to $(docv) as Chrome trace-event JSON — \
     open it at ui.perfetto.dev."
  in
  Arg.(value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)

let with_out path f =
  match open_out path with
  | oc -> Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)
  | exception Sys_error e ->
    Dfs_obs.Log.error "%s" e;
    exit 1

(* Runs [f] with the tracer/profiler enabled when their output files
   were requested, then writes the requested observability artifacts. *)
let with_obs ~metrics_out ~trace_out ?(profile_out = None) f =
  if Option.is_some trace_out then Dfs_obs.Tracer.enable ();
  if Option.is_some profile_out then Dfs_obs.Profiler.enable ();
  let result = f () in
  (* Counters first, so span-loss accounting lands in the snapshot (and
     warns on stderr when the ring overflowed). *)
  if Option.is_some trace_out || Option.is_some profile_out then
    Dfs_obs.Tracer.record_export_counters Dfs_obs.Tracer.default;
  Option.iter
    (fun path ->
      (* peak-heap telemetry in the snapshot, so CI can gate the
         bounded-memory claim on metrics alone *)
      let gc = Gc.quick_stat () in
      Dfs_obs.Metrics.set
        (Dfs_obs.Metrics.gauge "gc.top_heap_words")
        (float_of_int gc.Gc.top_heap_words);
      Dfs_obs.Metrics.set
        (Dfs_obs.Metrics.gauge "gc.major_collections")
        (float_of_int gc.Gc.major_collections);
      with_out path (fun oc ->
          output_string oc
            (Dfs_obs.Json.to_pretty_string (Dfs_obs.Metrics.to_json ())));
      Dfs_obs.Log.info "wrote metrics snapshot to %s" path)
    metrics_out;
  Option.iter
    (fun path ->
      let tracer = Dfs_obs.Tracer.default in
      with_out path (fun oc -> Dfs_obs.Tracer.write_jsonl tracer oc);
      Dfs_obs.Log.info "wrote %d trace spans to %s (%d dropped by ring bound)"
        (Dfs_obs.Tracer.length tracer)
        path
        (Dfs_obs.Tracer.dropped tracer))
    trace_out;
  Option.iter
    (fun path ->
      with_out path (fun oc -> Dfs_obs.Chrome_export.write oc);
      Dfs_obs.Log.info
        "wrote Chrome trace to %s (%d wall spans over %d domains, %d sim \
         spans; open at ui.perfetto.dev)"
        path
        (Dfs_obs.Profiler.added ())
        (List.length (Dfs_obs.Profiler.domains ()))
        (Dfs_obs.Tracer.length Dfs_obs.Tracer.default))
    profile_out;
  result

let make_dataset ?faults ?chunk_records ?spill_dir scale traces jobs =
  Dfs_core.Dataset.generate ?scale ~traces ?jobs ?faults ?chunk_records
    ?spill_dir ()

let replay_arg =
  let doc =
    "Build the dataset by replaying this canonical trace file (e.g. the \
     output of $(b,import)) through a live cluster instead of simulating \
     the synthetic presets; $(b,--scale), $(b,--traces) and $(b,--faults) \
     are ignored. Every table and figure then describes the foreign \
     workload."
  in
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)

(* Dataset for the table/figure commands: synthetic presets by default,
   or a replayed foreign trace under [--replay]. *)
let dataset_for ?faults ?chunk_records ?spill_dir ~replay scale traces jobs =
  match replay with
  | None -> make_dataset ?faults ?chunk_records ?spill_dir scale traces jobs
  | Some path -> (
    match Dfs_core.Dataset.of_replay ?jobs path with
    | Ok (ds, stats) ->
      Dfs_obs.Log.info
        "replayed %s: %d records, %d applied, %d skipped, %d clients, %d \
         files"
        path stats.Dfs_workload.Replay.records stats.applied stats.skipped
        stats.clients stats.files;
      ds
    | Error e ->
      Dfs_obs.Log.error "%s" e;
      exit 2)

(* -- list ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Dfs_core.Experiment.t) ->
        Printf.printf "%-8s %s\n         %s\n" e.id e.title e.description)
      Dfs_core.Experiment.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List all reproducible tables and figures")
    Term.(const run $ const ())

(* -- experiment -------------------------------------------------------------- *)

let experiment_cmd =
  let ids_arg =
    let doc = "Experiment ids (table1..table12, fig1..fig4)." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run () ids scale traces jobs faults fault_seed sim_shards chunk_records
      spill_dir replay metrics_out trace_out profile_out =
    Dfs_workload.Sharded.set_shards sim_shards;
    let unknown =
      List.filter (fun id -> Dfs_core.Experiment.find id = None) ids
    in
    if unknown <> [] then begin
      Dfs_obs.Log.error "unknown experiment(s): %s (valid: %s)"
        (String.concat ", " unknown)
        (String.concat ", " Dfs_core.Experiment.ids);
      exit 1
    end;
    with_obs ~metrics_out ~trace_out ~profile_out (fun () ->
        let ds =
          dataset_for ?faults:(fault_profile faults fault_seed)
            ?chunk_records ?spill_dir ~replay scale traces jobs
        in
        List.iter
          (fun id ->
            match Dfs_core.Experiment.find id with
            | Some e ->
              Printf.printf "=== %s: %s ===\n%s\n" e.id e.title (e.run ds)
            | None -> ())
          ids;
        print_recovery_stats ds)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce specific tables/figures")
    Term.(
      const run $ verbosity_term $ ids_arg $ scale_arg $ traces_arg $ jobs_arg
      $ faults_arg $ fault_seed_arg $ sim_shards_arg $ chunk_records_arg
      $ spill_dir_arg $ replay_arg $ metrics_out_arg $ trace_out_arg
      $ profile_out_arg)

(* -- all ----------------------------------------------------------------------- *)

let all_cmd =
  let run () scale traces jobs faults fault_seed sim_shards chunk_records
      spill_dir replay metrics_out trace_out profile_out =
    Dfs_workload.Sharded.set_shards sim_shards;
    with_obs ~metrics_out ~trace_out ~profile_out (fun () ->
        let ds =
          dataset_for ?faults:(fault_profile faults fault_seed)
            ?chunk_records ?spill_dir ~replay scale traces jobs
        in
        List.iter
          (fun (e : Dfs_core.Experiment.t) ->
            Printf.printf "=== %s: %s ===\n%s\n" e.id e.title (e.run ds))
          Dfs_core.Experiment.all;
        print_recovery_stats ds)
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Reproduce every table and figure")
    Term.(
      const run $ verbosity_term $ scale_arg $ traces_arg $ jobs_arg
      $ faults_arg $ fault_seed_arg $ sim_shards_arg $ chunk_records_arg
      $ spill_dir_arg $ replay_arg $ metrics_out_arg $ trace_out_arg
      $ profile_out_arg)

(* -- facts -------------------------------------------------------------------- *)

let facts_cmd =
  let markdown_arg =
    let doc = "Emit the scorecard as a markdown table (for EXPERIMENTS.md)." in
    Arg.(value & flag & info [ "markdown" ] ~doc)
  in
  let run () scale traces jobs faults fault_seed sim_shards chunk_records
      spill_dir markdown replay metrics_out trace_out profile_out =
    Dfs_workload.Sharded.set_shards sim_shards;
    with_obs ~metrics_out ~trace_out ~profile_out (fun () ->
        let ds =
          dataset_for ?faults:(fault_profile faults fault_seed)
            ?chunk_records ?spill_dir ~replay scale traces jobs
        in
        if markdown then print_string (Dfs_core.Claims.markdown ds)
        else begin
          print_string (Dfs_core.Claims.scorecard ds);
          print_recovery_stats ds
        end)
  in
  Cmd.v
    (Cmd.info "facts"
       ~doc:
         "Check the paper's headline findings (the prose claims) against           the simulation")
    Term.(
      const run $ verbosity_term $ scale_arg $ traces_arg $ jobs_arg
      $ faults_arg $ fault_seed_arg $ sim_shards_arg $ chunk_records_arg
      $ spill_dir_arg $ markdown_arg $ replay_arg $ metrics_out_arg
      $ trace_out_arg $ profile_out_arg)

(* -- simulate ------------------------------------------------------------------- *)

let trace_n_arg =
  let doc = "Which of the eight trace presets to simulate." in
  Arg.(value & opt int 1 & info [ "trace" ] ~docv:"N" ~doc)

let scaled_preset n scale =
  let preset = Dfs_workload.Presets.trace n in
  match scale with
  | Some s -> Dfs_workload.Presets.scaled preset ~factor:s
  | None ->
    Dfs_workload.Presets.scaled preset
      ~factor:(Dfs_core.Dataset.default_scale ())

let trace_format_arg =
  let doc =
    "Trace file format: $(b,text) (tab-separated, one record per line), \
     $(b,binary) (compact varint/delta encoding) or $(b,columnar) \
     (aligned whole-column segments readable zero-copy via mmap). Readers \
     detect the format from the file header either way."
  in
  Arg.(value & opt string "text" & info [ "trace-format" ] ~docv:"FORMAT" ~doc)

let parse_trace_format s =
  match Dfs_trace.Writer.format_of_string s with
  | Ok f -> f
  | Error e ->
    Dfs_obs.Log.error "%s" e;
    exit 1

let simulate_cmd =
  let out_arg =
    let doc = "Directory to write per-server trace files into." in
    Arg.(value & opt string "traces" & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let run () n scale out format sim_shards metrics_out trace_out profile_out =
    Dfs_workload.Sharded.set_shards sim_shards;
    let format = parse_trace_format format in
    with_obs ~metrics_out ~trace_out ~profile_out (fun () ->
        let preset = scaled_preset n scale in
        Dfs_obs.Log.info "simulating %s (%.1f h)" preset.name
          (preset.duration /. 3600.0);
        let cluster, _driver = Dfs_workload.Presets.run preset in
        if not (Sys.file_exists out) then Sys.mkdir out 0o755;
        List.iteri
          (fun i records ->
            let path =
              Filename.concat out
                (Printf.sprintf "%s-server%d.trace" preset.name i)
            in
            Dfs_trace.Writer.with_file ~format path (fun w ->
                List.iter (Dfs_trace.Writer.write w) records);
            Printf.printf "wrote %s (%d records)\n" path (List.length records))
          (Dfs_sim.Cluster.server_traces cluster))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Simulate one trace preset and write per-server trace files")
    Term.(
      const run $ verbosity_term $ trace_n_arg $ scale_arg $ out_arg
      $ trace_format_arg $ sim_shards_arg $ metrics_out_arg $ trace_out_arg
      $ profile_out_arg)

(* -- analyze --------------------------------------------------------------------- *)

let on_corruption_arg =
  let doc =
    "What to do when a trace file is damaged: $(b,fail) (default) stop with \
     a one-line diagnostic, or $(b,salvage) keep each file's longest valid \
     prefix, count the loss in the trace.corruption.* counters, and \
     continue."
  in
  Arg.(
    value & opt string "fail" & info [ "on-corruption" ] ~docv:"POLICY" ~doc)

let parse_on_corruption s =
  match Dfs_trace.Corruption.of_string s with
  | Ok p -> p
  | Error e ->
    Dfs_obs.Log.error "%s" e;
    exit 1

let analyze_cmd =
  let files_arg =
    let doc = "Per-server trace files to merge and analyze." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let run () files on_corruption metrics_out =
    let on_corruption = parse_on_corruption on_corruption in
    with_obs ~metrics_out ~trace_out:None (fun () ->
        let streams =
          List.map
            (fun path ->
              (* Corrupt, truncated or misaligned inputs are an exit-2
                 diagnostic naming file, offset and reason — never a raw
                 backtrace. *)
              match Dfs_trace.Reader.of_file ~on_corruption path with
              | Ok records -> records
              | Error e ->
                Dfs_obs.Log.error "%s: %s" path e;
                exit 2
              | exception Failure e ->
                Dfs_obs.Log.error "%s: %s" path e;
                exit 2
              | exception Sys_error e ->
                Dfs_obs.Log.error "%s" e;
                exit 2)
            files
        in
        let merged =
          Dfs_trace.Merge.scrub ~self_users:Dfs_sim.Cluster.self_users
            (Dfs_trace.Merge.merge streams)
        in
        let mbatch = Dfs_trace.Record_batch.of_list merged in
        let stats = Dfs_analysis.Trace_stats.of_batch mbatch in
        Format.printf "%a@." Dfs_analysis.Trace_stats.pp stats;
        let act600 = Dfs_analysis.Activity.analyze ~interval:600.0 mbatch in
        let act10 = Dfs_analysis.Activity.analyze ~interval:10.0 mbatch in
        Format.printf "%a@.%a@." Dfs_analysis.Activity.pp act600
          Dfs_analysis.Activity.pp act10;
        let d = Dfs_trace.Corruption.detected () in
        if d > 0 then
          Dfs_obs.Log.warn
            "%d corrupt trace source(s) salvaged; %d records recovered \
             ahead of the damage"
            d
            (Dfs_trace.Corruption.salvaged_records ()))
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Merge and analyze previously written trace files")
    Term.(
      const run $ verbosity_term $ files_arg $ on_corruption_arg
      $ metrics_out_arg)

(* -- import / replay ----------------------------------------------------------- *)

let import_cmd =
  let csv_arg =
    let doc =
      "SNIA-style block-trace CSV \
       (Timestamp,Hostname,DiskNumber,Type,Offset,Size[,ResponseTime]); \
       $(b,-) reads standard input."
    in
    Arg.(value & pos 0 string "-" & info [] ~docv:"CSV" ~doc)
  in
  let out_arg =
    let doc =
      "Write the canonical trace to $(docv); $(b,-) (default) writes to \
       standard output (text format only)."
    in
    Arg.(value & opt string "-" & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let idle_gap_arg =
    let doc =
      "Seconds of per-(process, file) inactivity that close an inferred \
       open/close session."
    in
    Arg.(value & opt float 1.0 & info [ "idle-gap" ] ~docv:"SECONDS" ~doc)
  in
  let servers_arg =
    let doc =
      "Servers to spread imported files over (file id mod N, \
       deterministic)."
    in
    Arg.(value & opt int 4 & info [ "servers" ] ~docv:"N" ~doc)
  in
  let run () csv out format idle_gap servers on_corruption =
    let on_corruption = parse_on_corruption on_corruption in
    let format = parse_trace_format format in
    let config =
      { Dfs_ingest.Infer.default_config with Dfs_ingest.Infer.idle_gap }
    in
    let result =
      if csv = "-" then
        Dfs_ingest.Import.of_csv_string ~config ~n_servers:servers
          ~on_corruption ~source:"<stdin>"
          (In_channel.input_all In_channel.stdin)
      else
        Dfs_ingest.Import.of_csv_file ~config ~n_servers:servers
          ~on_corruption csv
    in
    match result with
    | Error e ->
      Dfs_obs.Log.error "%s" e;
      exit 2
    | Ok (records, stats) ->
      (if out = "-" then begin
         let w = Dfs_trace.Writer.to_channel ~format:Dfs_trace.Writer.Text stdout in
         List.iter (Dfs_trace.Writer.write w) records;
         Dfs_trace.Writer.flush w
       end
       else
         Dfs_trace.Writer.with_file ~format out (fun w ->
             List.iter (Dfs_trace.Writer.write w) records));
      Dfs_obs.Log.info
        "imported %d rows (%d bad) from %d hosts: %d files, %d records, \
         %.1f s span"
        stats.Dfs_ingest.Import.rows stats.bad_rows stats.hosts stats.files
        stats.records stats.duration
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:
         "Import a SNIA-style block-trace CSV into the canonical trace \
          format, inferring open/close sessions from per-(host, disk) \
          access runs. Malformed rows are one-line $(b,file:line:) \
          diagnostics under the usual fail/salvage corruption policy. The \
          output replays ($(b,replay), $(b,--replay)) and analyzes \
          ($(b,analyze)) like a native trace")
    Term.(
      const run $ verbosity_term $ csv_arg $ out_arg $ trace_format_arg
      $ idle_gap_arg $ servers_arg $ on_corruption_arg)

let replay_cmd =
  let trace_arg =
    let doc =
      "Canonical trace to replay (text, binary or columnar); $(b,-) \
       (default) reads standard input."
    in
    Arg.(value & pos 0 string "-" & info [] ~docv:"TRACE" ~doc)
  in
  let out_arg =
    let doc =
      "Write the replayed cluster's own merged trace to $(docv) (in \
       $(b,--trace-format))."
    in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run () trace out format on_corruption sim_shards metrics_out trace_out
      profile_out =
    Dfs_workload.Sharded.set_shards sim_shards;
    let on_corruption = parse_on_corruption on_corruption in
    let format = parse_trace_format format in
    with_obs ~metrics_out ~trace_out ~profile_out (fun () ->
        let records =
          let parsed =
            if trace = "-" then
              Dfs_trace.Reader.of_string ~on_corruption ~source:"<stdin>"
                (In_channel.input_all In_channel.stdin)
            else Dfs_trace.Reader.of_file ~on_corruption trace
          in
          match parsed with
          | Ok records -> records
          | Error e ->
            Dfs_obs.Log.error "%s: %s"
              (if trace = "-" then "<stdin>" else trace)
              e;
            exit 2
          | exception Sys_error e ->
            Dfs_obs.Log.error "%s" e;
            exit 2
        in
        match Dfs_workload.Replay.run records with
        | Error e ->
          Dfs_obs.Log.error "%s" e;
          exit 2
        | Ok (cluster, stats) ->
          let merged = Dfs_sim.Cluster.merged_chunks cluster in
          let n_merged = ref 0 in
          Dfs_trace.Sink.iter (fun _ -> incr n_merged) merged;
          (* Deterministic summary only (no wall clock), so CI can
             byte-compare replays across job/shard counts. *)
          Printf.printf "%-24s %d\n" "input_records" stats.Dfs_workload.Replay.records;
          Printf.printf "%-24s %d\n" "applied" stats.applied;
          Printf.printf "%-24s %d\n" "skipped" stats.skipped;
          Printf.printf "%-24s %d\n" "synthesized_opens" stats.synthesized_opens;
          Printf.printf "%-24s %d\n" "clients" stats.clients;
          Printf.printf "%-24s %d\n" "servers" stats.servers;
          Printf.printf "%-24s %d\n" "files" stats.files;
          Printf.printf "%-24s %d\n" "replayed_records" !n_merged;
          Printf.printf "%-24s %08x\n" "replayed_crc32c"
            (Dfs_workload.Sharded.digest merged);
          Option.iter
            (fun path ->
              Dfs_trace.Writer.with_file ~format path (fun w ->
                  Dfs_trace.Sink.iter (Dfs_trace.Writer.write w) merged);
              Dfs_obs.Log.info "wrote replayed trace to %s" path)
            out;
          Dfs_sim.Cluster.release_sim_state cluster)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a canonical trace (e.g. the output of $(b,import)) through \
          a live simulated cluster — block caches, consistency, counters — \
          and print a deterministic summary (applied/skipped counts, \
          replayed-trace record count and CRC-32C). The summary is \
          byte-identical for any $(b,--sim-shards) and DFS_JOBS value")
    Term.(
      const run $ verbosity_term $ trace_arg $ out_arg $ trace_format_arg
      $ on_corruption_arg $ sim_shards_arg $ metrics_out_arg $ trace_out_arg
      $ profile_out_arg)

(* -- fsck ------------------------------------------------------------------------- *)

let fsck_cmd =
  let repair_arg =
    let doc =
      "Repair damaged traces in place: truncate each to its longest valid \
       prefix (whole segments, records or lines), rewrite an all-invalid \
       columnar file as one empty sealed segment, and delete orphaned \
       $(b,.tmp) files left by an interrupted seal. Unrecognized files are \
       never modified."
    in
    Arg.(value & flag & info [ "repair" ] ~doc)
  in
  let paths_arg =
    let doc =
      "Trace files or directories to verify (directories expand to their \
       .dfsc/.dfsb/.trace/.txt/.tmp entries)."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"PATH" ~doc)
  in
  let run () repair paths =
    let verdicts = Dfs_trace.Fsck.check_paths ~repair paths in
    List.iter
      (fun v ->
        print_endline
          (Dfs_obs.Json.to_string (Dfs_trace.Fsck.verdict_to_json v)))
      verdicts;
    let n st =
      List.length
        (List.filter (fun v -> v.Dfs_trace.Fsck.status = st) verdicts)
    in
    Dfs_obs.Log.info
      "fsck: %d file(s) — %d ok, %d corrupt, %d repaired, %d orphan-tmp, %d \
       unknown, %d error(s)"
      (List.length verdicts) (n Dfs_trace.Fsck.Clean)
      (n Dfs_trace.Fsck.Corrupt) (n Dfs_trace.Fsck.Repaired)
      (n Dfs_trace.Fsck.Orphan_tmp) (n Dfs_trace.Fsck.Unknown)
      (n Dfs_trace.Fsck.Io_error);
    let code = Dfs_trace.Fsck.exit_code verdicts in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify trace files (text, binary and checksummed columnar), \
          printing one machine-readable JSON verdict per file; with \
          $(b,--repair), salvage each file's longest valid prefix. Exits 0 \
          when everything is clean, 1 when corruption, orphans or unknown \
          files were found (even if repaired), 2 on I/O errors")
    Term.(const run $ verbosity_term $ repair_arg $ paths_arg)

(* -- stats ------------------------------------------------------------------------ *)

let stats_cmd =
  let run () n scale faults fault_seed sim_shards metrics_out trace_out
      profile_out =
    Dfs_workload.Sharded.set_shards sim_shards;
    with_obs ~metrics_out ~trace_out ~profile_out (fun () ->
        let preset = scaled_preset n scale in
        let preset =
          match fault_profile faults fault_seed with
          | Some p -> Dfs_workload.Presets.with_faults preset p
          | None -> preset
        in
        Dfs_obs.Log.info "simulating %s (%.1f h)" preset.name
          (preset.duration /. 3600.0);
        let t0 = Unix.gettimeofday () in
        let cluster, _driver = Dfs_workload.Presets.run preset in
        let wall = Unix.gettimeofday () -. t0 in
        let engine = Dfs_sim.Cluster.engine cluster in
        Printf.printf "== %s: engine ==\n" preset.name;
        Printf.printf "%-44s %.1f\n" "simulated_seconds"
          (Dfs_sim.Engine.now engine);
        Printf.printf "%-44s %.3f\n" "wall_seconds" wall;
        Printf.printf "%-44s %.0f\n" "sim_events_per_wall_second"
          (float_of_int (Dfs_sim.Engine.events_executed engine)
          /. Float.max 1e-9 wall);
        Printf.printf "\n== %s: simulator metrics ==\n" preset.name;
        print_string (Dfs_obs.Metrics.render_text ());
        Option.iter
          (fun inj ->
            Format.printf "@.== %s: crash recovery ==@.%a@." preset.name
              Dfs_analysis.Recovery_stats.pp
              (Dfs_analysis.Recovery_stats.analyze
                 [ (preset.name, Dfs_fault.Injector.stats inj) ]))
          (Dfs_sim.Cluster.faults cluster))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run one trace preset and print the simulator's own metrics \
          (engine, network, disk, cache, consistency counters and latency \
          quantiles)")
    Term.(
      const run $ verbosity_term $ trace_n_arg $ scale_arg $ faults_arg
      $ fault_seed_arg $ sim_shards_arg $ metrics_out_arg $ trace_out_arg
      $ profile_out_arg)

(* -- scale --------------------------------------------------------------------- *)

let scale_cmd =
  let clients_arg =
    let doc = "Total client workstations across all partitions." in
    Arg.(value & opt int 320 & info [ "clients" ] ~docv:"N" ~doc)
  in
  let servers_arg =
    let doc = "Total home servers across all partitions." in
    Arg.(value & opt int 8 & info [ "servers" ] ~docv:"N" ~doc)
  in
  let days_arg =
    let doc = "Simulated duration in days (fractions allowed)." in
    Arg.(value & opt float 0.05 & info [ "days" ] ~docv:"DAYS" ~doc)
  in
  let seed_arg =
    let doc = "Workload seed (each partition derives its own stream)." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let partitions_arg =
    let doc =
      "Number of logical partitions (default: one per ~64 clients, capped \
       by the server count). Part of the configuration — changing it \
       changes the workload — unlike $(b,--sim-shards), which only picks \
       how many domains execute it."
    in
    Arg.(value & opt (some int) None & info [ "partitions" ] ~docv:"N" ~doc)
  in
  let run () clients servers days seed partitions faults fault_seed sim_shards
      chunk_records spill_dir metrics_out trace_out profile_out =
    Dfs_workload.Sharded.set_shards sim_shards;
    with_obs ~metrics_out ~trace_out ~profile_out (fun () ->
        let fault_profile =
          Option.value
            (fault_profile faults fault_seed)
            ~default:Dfs_fault.Profile.none
        in
        let cfg =
          {
            Dfs_workload.Sharded.default_config with
            Dfs_workload.Sharded.n_clients = clients;
            n_servers = servers;
            seed;
            duration = days *. 86400.0;
            fault_profile;
            partitions;
            chunk_records;
            spill_dir;
          }
        in
        let r = Dfs_workload.Sharded.run cfg in
        let records = ref 0 in
        Dfs_trace.Sink.iter (fun _ -> incr records) r.merged;
        (* Deterministic summary only — no wall-clock values, so CI can
           byte-compare this output across worker counts. *)
        Printf.printf "== scale: %d clients, %d servers, %g days, seed %d, faults %s ==\n"
          clients servers days seed
          (Option.value faults ~default:"none");
        Printf.printf "%-24s %d\n" "partitions" r.partitions;
        Printf.printf "%-24s %d\n" "users" r.users;
        Printf.printf "%-24s %d\n" "trace_records" !records;
        Printf.printf "%-24s %08x\n" "trace_crc32c"
          (Dfs_workload.Sharded.digest r.merged);
        Printf.printf "%-24s %d\n" "barriers" r.barriers;
        Printf.printf "%-24s %d\n" "remote_msgs" r.remote_msgs;
        Dfs_workload.Sharded.release r)
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Run a large partitioned cluster as one conservative parallel \
          discrete-event simulation and print a deterministic summary \
          (partition count, user count, merged-trace record count and \
          CRC-32C, barrier and cross-partition message counts). The \
          summary is byte-identical for any $(b,--sim-shards) and \
          DFS_JOBS value")
    Term.(
      const run $ verbosity_term $ clients_arg $ servers_arg $ days_arg
      $ seed_arg $ partitions_arg $ faults_arg $ fault_seed_arg
      $ sim_shards_arg $ chunk_records_arg $ spill_dir_arg $ metrics_out_arg
      $ trace_out_arg $ profile_out_arg)

(* -- report / bench-diff ------------------------------------------------------ *)

let read_json path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> (
    match Dfs_obs.Json.parse contents with
    | Ok j -> j
    | Error e ->
      Dfs_obs.Log.error "%s: %s" path e;
      exit 2)
  | exception Sys_error e ->
    Dfs_obs.Log.error "%s" e;
    exit 2

let report_cmd =
  let bench_arg =
    let doc =
      "Bench telemetry file (as written by the $(b,bench) executable)."
    in
    Arg.(value & opt string "BENCH_run.json" & info [ "bench" ] ~docv:"FILE" ~doc)
  in
  let metrics_arg =
    let doc =
      "Metrics snapshot from $(b,--metrics-out) (defaults to the metrics \
       object embedded in the bench file)."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let profile_arg =
    let doc =
      "Chrome trace from $(b,--profile-out), used for the hottest-spans \
       table and GC attribution."
    in
    Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Write the report to $(docv) instead of standard output." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run () bench metrics profile out =
    let bench = read_json bench in
    let metrics = Option.map read_json metrics in
    let profile = Option.map read_json profile in
    let doc = Dfs_obs.Run_report.report ?metrics ?profile bench in
    match out with
    | None -> print_string doc
    | Some path ->
      with_out path (fun oc -> output_string oc doc);
      Dfs_obs.Log.info "wrote run report to %s" path
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a self-contained markdown run report (phase wall breakdown, \
          hottest profiler spans, GC summary, per-domain utilization) from \
          bench telemetry plus optional metrics/profile files")
    Term.(
      const run $ verbosity_term $ bench_arg $ metrics_arg $ profile_arg
      $ out_arg)

let bench_diff_cmd =
  let old_arg =
    let doc = "Baseline bench telemetry file." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD" ~doc)
  in
  let new_arg =
    let doc = "Candidate bench telemetry file to compare against OLD." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc)
  in
  let run () old_path new_path =
    let old_ = read_json old_path and new_ = read_json new_path in
    let d = Dfs_obs.Run_report.diff ~old_ new_ in
    print_string (Dfs_obs.Run_report.render_diff d);
    if d.Dfs_obs.Run_report.config_mismatches <> [] then exit 2
    else if not (Dfs_obs.Run_report.diff_ok d) then exit 1
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two bench telemetry files field by field. Exits 0 when \
          every gated metric (total wall, analysis wall, peak heap) is \
          within its relative threshold, 1 on regression, 2 when the runs \
          are incomparable (different scale/jobs/faults) or unreadable. A \
          schema version difference is reported as a note, not a mismatch: \
          bumps only add telemetry leaves, which show up as info rows")
    Term.(const run $ verbosity_term $ old_arg $ new_arg)

let main =
  let doc =
    "Reproduction of 'Measurements of a Distributed File System' (SOSP 1991)"
  in
  Cmd.group (Cmd.info "dfs-repro" ~doc)
    [
      list_cmd;
      experiment_cmd;
      all_cmd;
      facts_cmd;
      simulate_cmd;
      import_cmd;
      replay_cmd;
      analyze_cmd;
      fsck_cmd;
      stats_cmd;
      scale_cmd;
      report_cmd;
      bench_diff_cmd;
    ]

let () = exit (Cmd.eval main)
