let () =
  (* Chaos-harness child mode: emit a spill run and exit (see
     Test_crash.maybe_run_child).  Must happen before alcotest starts. *)
  Test_crash.maybe_run_child ();
  Alcotest.run "dfs-repro"
    [
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("obs", Test_obs.suite);
      ("profiler", Test_profiler.suite);
      ("trace", Test_trace.suite);
      ("ingest", Test_ingest.suite);
      ("crash", Test_crash.suite);
      ("cache", Test_cache.suite);
      ("vm", Test_vm.suite);
      ("sim", Test_sim.suite);
      ("fault", Test_fault.suite);
      ("shard", Test_shard.suite);
      ("workload", Test_workload.suite);
      ("analysis", Test_analysis.suite);
      ("consistency", Test_consistency.suite);
      ("lfs", Test_lfs.suite);
      ("integration", Test_integration.suite);
    ]
