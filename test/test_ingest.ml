(* Tests for Dfs_ingest: SNIA row parsing, open/close inference, the
   end-to-end CSV importer, hostile-input handling, and replay of
   imported traces. *)

open Dfs_trace
module Snia = Dfs_ingest.Snia
module Infer = Dfs_ingest.Infer
module Import = Dfs_ingest.Import
module Idmap = Dfs_ingest.Idmap

let sample_csv =
  "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n\
   0.0,alpha,0,Read,0,4096,10\n\
   0.1,alpha,0,Read,4096,4096,11\n\
   0.2,beta,1,Write,0,8192,20\n\
   0.3,alpha,0,Read,8192,4096,12\n\
   5.0,alpha,0,Write,0,4096,13\n"

let import_exn ?config ?n_servers ?on_corruption text =
  match Import.of_csv_string ?config ?n_servers ?on_corruption text with
  | Ok v -> v
  | Error e -> Alcotest.failf "import failed: %s" e

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  go 0

(* -- Snia row parsing ------------------------------------------------------- *)

let test_snia_parse_ok () =
  match Snia.parse_row "1.5, host-3 ,2,Write,4096,512,99" with
  | Ok r ->
    Alcotest.(check string) "host trimmed" "host-3" r.Snia.host;
    Alcotest.(check int) "disk" 2 r.disk;
    Alcotest.(check bool) "write" true (r.op = Snia.Write);
    Alcotest.(check int) "offset" 4096 r.offset;
    Alcotest.(check int) "size" 512 r.size
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_snia_parse_six_columns () =
  match Snia.parse_row "1.5,h,0,R,0,512" with
  | Ok r -> Alcotest.(check bool) "read" true (r.Snia.op = Snia.Read)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_snia_header () =
  Alcotest.(check bool) "header detected" true
    (Snia.is_header "Timestamp,Hostname,DiskNumber,Type,Offset,Size");
  Alcotest.(check bool) "data row is not a header" false
    (Snia.is_header "1.0,h,0,Read,0,512")

let test_snia_hostile_rows () =
  let cases =
    [
      ("nan,h,0,Read,0,512", "non-finite timestamp");
      ("inf,h,0,Read,0,512", "non-finite timestamp");
      ("-1.0,h,0,Read,0,512", "negative timestamp");
      ("1.0,,0,Read,0,512", "empty hostname");
      ("1.0,h,-2,Read,0,512", "negative disk number");
      ("1.0,h,0,Frobnicate,0,512", "bad op type");
      ("1.0,h,0,Read,-4,512", "negative offset");
      ("1.0,h,0,Read,0,-512", "negative size");
      ("1.0,h,0,Read,0,9999999999", "1 GiB request limit");
      ("1.0,h,0,Read,0", "6 or 7 comma-separated columns");
      ("", "6 or 7 comma-separated columns");
      ("1.0,h,0,Read,0,512,9,extra", "6 or 7 comma-separated columns");
    ]
  in
  List.iter
    (fun (row, fragment) ->
      match Snia.parse_row row with
      | Ok _ -> Alcotest.failf "accepted hostile row %S" row
      | Error e ->
        if not (contains_sub e fragment) then
          Alcotest.failf "row %S: error %S lacks %S" row e fragment;
        Alcotest.(check bool) "one line" false (String.contains e '\n'))
    cases

(* -- Idmap ------------------------------------------------------------------ *)

let test_idmap_dense_first_seen () =
  let m = Idmap.create Ids.Client.of_int in
  let a = Idmap.get m "alpha" in
  let b = Idmap.get m "beta" in
  let a' = Idmap.get m "alpha" in
  Alcotest.(check int) "first key -> 0" 0 (Ids.Client.to_int a);
  Alcotest.(check int) "second key -> 1" 1 (Ids.Client.to_int b);
  Alcotest.(check bool) "stable" true (Ids.Client.equal a a');
  Alcotest.(check int) "size" 2 (Idmap.size m)

(* -- inference -------------------------------------------------------------- *)

let test_import_golden () =
  let records, stats = import_exn sample_csv in
  Alcotest.(check int) "rows" 5 stats.Import.rows;
  Alcotest.(check int) "bad rows" 0 stats.bad_rows;
  Alcotest.(check int) "hosts" 2 stats.hosts;
  Alcotest.(check int) "files" 2 stats.files;
  (* alpha#0 produces two runs (idle gap at t=5), beta#1 one: three
     sessions, each Open + Close; alpha's reads are sequential so no
     Repositions; alpha's second run rewinds to offset 0 at open. *)
  let opens, closes =
    List.partition
      (fun r -> match r.Record.kind with Record.Open _ -> true | _ -> false)
      (List.filter
         (fun r ->
           match r.Record.kind with
           | Record.Open _ | Record.Close _ -> true
           | _ -> false)
         records)
  in
  Alcotest.(check int) "three opens" 3 (List.length opens);
  Alcotest.(check int) "three closes" 3 (List.length closes);
  Alcotest.(check int) "no seeks" 0
    (List.length
       (List.filter
          (fun r ->
            match r.Record.kind with Record.Reposition _ -> true | _ -> false)
          records));
  (* First record: alpha's read run opens at t=0, read-only, on a
     pre-existing file sized at the run's extent. *)
  (match records with
  | first :: _ -> (
    Alcotest.(check (float 1e-9)) "starts at zero" 0.0 first.Record.time;
    match first.Record.kind with
    | Record.Open { mode; created; size; start_pos; _ } ->
      Alcotest.(check bool) "read only" true (mode = Record.Read_only);
      Alcotest.(check bool) "not created" false created;
      Alcotest.(check int) "size = extent" (3 * 4096) size;
      Alcotest.(check int) "start pos" 0 start_pos
    | k -> Alcotest.failf "first record is %s, not open" (Record.kind_name k))
  | [] -> Alcotest.fail "no records");
  (* beta's single write run: created (first-ever access is a write). *)
  let beta_open =
    List.find_map
      (fun r ->
        match r.Record.kind with
        | Record.Open { created = true; mode; size; _ } -> Some (mode, size)
        | _ -> None)
      records
  in
  (match beta_open with
  | Some (mode, size) ->
    Alcotest.(check bool) "write only" true (mode = Record.Write_only);
    Alcotest.(check int) "created empty" 0 size
  | None -> Alcotest.fail "no created open (beta's write run)");
  (* alpha's second run (t=5 write) reopens a file whose size the first
     run established. *)
  let last_close =
    List.fold_left
      (fun acc r ->
        match r.Record.kind with
        | Record.Close { bytes_written; _ } -> Some bytes_written
        | _ -> acc)
      None records
  in
  match last_close with
  | Some bytes_written ->
    Alcotest.(check int) "close carries bytes written" 4096 bytes_written
  | None -> Alcotest.fail "no close"

let test_import_filetime_rebase () =
  (* FILETIME ticks (100 ns) spanning 2 s; detection must rebase to
     seconds from the first row. *)
  let csv =
    "128166372000000000,h,0,Read,0,4096\n128166372020000000,h,0,Read,4096,4096\n"
  in
  let records, stats = import_exn csv in
  Alcotest.(check bool) "span ~2s" true (abs_float (stats.Import.duration -. 2.0) < 0.1);
  List.iter
    (fun r ->
      Alcotest.(check bool) "small times" true (r.Record.time < 10.0))
    records

let test_import_offset_rebase () =
  (* Multi-terabyte block addresses must land in int32-safe positions. *)
  let csv =
    "0.0,h,0,Read,7014609920,4096\n0.1,h,0,Read,7014614016,4096\n"
  in
  let records, _ = import_exn csv in
  List.iter
    (fun r ->
      match Record.validate r with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "invalid record: %s" e)
    records;
  match records with
  | { Record.kind = Record.Open { start_pos; _ }; _ } :: _ ->
    Alcotest.(check int) "rebased to file base" 0 start_pos
  | _ -> Alcotest.fail "expected open first"

let test_import_header_comments_crlf () =
  let csv =
    "# a comment\r\nTimestamp,Hostname,DiskNumber,Type,Offset,Size\r\n\
     0.0,h,0,Read,0,4096\r\n\r\n0.1,h,0,Read,4096,4096\r\n"
  in
  let _, stats = import_exn csv in
  Alcotest.(check int) "rows" 2 stats.Import.rows

let test_import_unsorted_rows () =
  (* Rows arrive shuffled in time; import must sort before inference. *)
  let csv = "5.0,h,0,Read,8192,4096\n0.0,h,0,Read,0,4096\n" in
  let records, _ = import_exn csv in
  let sorted = List.stable_sort Record.compare_time records in
  Alcotest.(check bool) "output time-sorted" true
    (List.for_all2 (fun a b -> Record.equal a b) records sorted)

(* -- hostile CSVs through the importer -------------------------------------- *)

let test_import_fail_policy () =
  let csv = "0.0,h,0,Read,0,4096\nnan,h,0,Read,0,4096\n" in
  match Import.of_csv_string ~source:"evil.csv" csv with
  | Ok _ -> Alcotest.fail "hostile CSV accepted"
  | Error e ->
    Alcotest.(check bool) "one line" false (String.contains e '\n');
    Alcotest.(check bool) "has file:line context" true
      (String.length e > 10 && String.sub e 0 10 = "evil.csv:2")

let test_import_salvage_policy () =
  let csv =
    "0.0,h,0,Read,0,4096\nnan,h,0,Read,0,4096\n0.5,h,0,Read,4096,4096\n\
     1.0,h,0,bad-op,0,1\n"
  in
  let records, stats =
    import_exn ~on_corruption:Corruption.Salvage csv
  in
  Alcotest.(check int) "good rows kept" 2 stats.Import.rows;
  Alcotest.(check int) "bad rows counted" 2 stats.bad_rows;
  Alcotest.(check bool) "records produced" true (List.length records > 0)

let test_import_empty_input () =
  (match Import.of_csv_string "" with
  | Ok _ -> Alcotest.fail "empty input accepted"
  | Error e -> Alcotest.(check bool) "one line" false (String.contains e '\n'));
  match Import.of_csv_string "Timestamp,Hostname,DiskNumber,Type,Offset,Size\n" with
  | Ok _ -> Alcotest.fail "header-only input accepted"
  | Error _ -> ()

(* -- qcheck properties ------------------------------------------------------ *)

let gen_accesses =
  QCheck.Gen.(
    list_size (int_range 1 60)
      (map
         (fun (((host, disk), (op, dt)), (offset, size)) ->
           (host, disk, op, dt, offset, size))
         (pair
            (pair
               (pair (oneofl [ "h0"; "h1"; "h2" ]) (int_range 0 2))
               (pair (oneofl [ `Read; `Write ]) (int_range 0 30)))
            (pair (int_range 0 100_000) (int_range 0 65536)))))

let csv_of_accesses accesses =
  let b = Buffer.create 256 in
  let t = ref 0.0 in
  List.iter
    (fun (host, disk, op, dt, offset, size) ->
      t := !t +. (float_of_int dt /. 10.0);
      Buffer.add_string b
        (Printf.sprintf "%.3f,%s,%d,%s,%d,%d\n" !t host disk
           (match op with `Read -> "Read" | `Write -> "Write")
           offset size))
    accesses;
  Buffer.contents b

let stream_key (r : Record.t) =
  ( Ids.Client.to_int r.client,
    Ids.Process.to_int r.pid,
    Ids.File.to_int r.file )

(* Every Open must pair with exactly one later Close in its stream, and
   a stream never holds two sessions at once (runs are sequential). *)
let check_open_close_pairing records =
  let depth : (int * int * int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Record.t) ->
      let key = stream_key r in
      let d = Option.value ~default:0 (Hashtbl.find_opt depth key) in
      match r.Record.kind with
      | Record.Open _ ->
        if d <> 0 then QCheck.Test.fail_report "open while already open";
        Hashtbl.replace depth key 1
      | Record.Close _ ->
        if d <> 1 then QCheck.Test.fail_report "close without open";
        Hashtbl.replace depth key 0
      | Record.Reposition _ ->
        if d <> 1 then QCheck.Test.fail_report "seek outside a session"
      | _ -> ())
    records;
  Hashtbl.iter
    (fun _ d -> if d <> 0 then QCheck.Test.fail_report "unclosed open")
    depth;
  true

let prop_inference_well_formed =
  QCheck.Test.make ~name:"imported records are valid, sorted, paired"
    ~count:200 (QCheck.make gen_accesses) (fun accesses ->
      QCheck.assume (accesses <> []);
      match Import.of_csv_string (csv_of_accesses accesses) with
      | Error e -> QCheck.Test.fail_reportf "import failed: %s" e
      | Ok (records, stats) ->
        if records = [] then QCheck.Test.fail_report "no records";
        List.iter
          (fun r ->
            match Record.validate r with
            | Ok _ -> ()
            | Error e -> QCheck.Test.fail_reportf "invalid record: %s" e)
          records;
        let rec sorted = function
          | a :: (b :: _ as rest) ->
            Record.compare_time a b <= 0 && sorted rest
          | _ -> true
        in
        if not (sorted records) then
          QCheck.Test.fail_report "records out of order";
        if stats.Import.records <> List.length records then
          QCheck.Test.fail_report "stats.records mismatch";
        check_open_close_pairing records)

let prop_import_deterministic =
  QCheck.Test.make ~name:"import is a pure function of the CSV" ~count:50
    (QCheck.make gen_accesses) (fun accesses ->
      QCheck.assume (accesses <> []);
      let csv = csv_of_accesses accesses in
      match (Import.of_csv_string csv, Import.of_csv_string csv) with
      | Ok (a, _), Ok (b, _) -> List.for_all2 Record.equal a b
      | _ -> QCheck.Test.fail_report "import failed")

let prop_roundtrip_writer_reader =
  QCheck.Test.make ~name:"import -> write -> read roundtrip (text+binary)"
    ~count:50 (QCheck.make gen_accesses) (fun accesses ->
      QCheck.assume (accesses <> []);
      match Import.of_csv_string (csv_of_accesses accesses) with
      | Error e -> QCheck.Test.fail_reportf "import failed: %s" e
      | Ok (records, _) ->
        List.for_all
          (fun format ->
            let buf = Buffer.create 4096 in
            let w = Writer.to_buffer ~format buf in
            List.iter (Writer.write w) records;
            Writer.flush w;
            match Reader.of_string (Buffer.contents buf) with
            | Error e -> QCheck.Test.fail_reportf "read back failed: %s" e
            | Ok records' ->
              List.length records = List.length records'
              && List.for_all2
                   (fun a b ->
                     (* Text quantizes time to 1 µs; compare payloads
                        exactly and times to that precision. *)
                     abs_float (a.Record.time -. b.Record.time) < 1e-5
                     && Record.equal { a with time = 0.0 } { b with time = 0.0 })
                   records records')
          [ Writer.Text; Writer.Binary ])

(* -- replay ----------------------------------------------------------------- *)

let replay_exn records =
  match Dfs_workload.Replay.run records with
  | Ok v -> v
  | Error e -> Alcotest.failf "replay failed: %s" e

let test_replay_imported_smoke () =
  let records, _ = import_exn sample_csv in
  let cluster, stats = replay_exn records in
  Alcotest.(check int) "all applied" (List.length records)
    stats.Dfs_workload.Replay.applied;
  Alcotest.(check int) "nothing skipped" 0 stats.skipped;
  Alcotest.(check int) "no synthesized opens" 0 stats.synthesized_opens;
  let batch = Dfs_trace.Sink.to_batch (Dfs_sim.Cluster.merged_chunks cluster) in
  Alcotest.(check bool) "cluster logged a trace" true
    (Dfs_trace.Record_batch.length batch > 0)

let test_replay_deterministic () =
  let records, _ = import_exn sample_csv in
  let digest records =
    let cluster, _ = replay_exn records in
    Dfs_workload.Sharded.digest (Dfs_sim.Cluster.merged_chunks cluster)
  in
  Alcotest.(check int) "same digest on repeat" (digest records)
    (digest records)

let test_replay_orphan_close () =
  (* A close with no preceding open must synthesize the open, not
     crash or silently drop the session. *)
  let records, _ = import_exn sample_csv in
  let orphan =
    match List.rev records with
    | last :: _ ->
      {
        last with
        Record.time = last.Record.time +. 10.0;
        kind =
          Record.Close
            { size = 4096; final_pos = 4096; bytes_read = 4096; bytes_written = 0 };
      }
    | [] -> Alcotest.fail "no records"
  in
  let _, stats = replay_exn (records @ [ orphan ]) in
  Alcotest.(check int) "open synthesized" 1
    stats.Dfs_workload.Replay.synthesized_opens;
  Alcotest.(check int) "nothing skipped" 0 stats.skipped

let test_replay_duplicate_close () =
  (* Two closes for one open: the second becomes an orphan and gets a
     synthesized open — sessions stay balanced either way. *)
  let records, _ = import_exn sample_csv in
  let dup =
    List.concat_map
      (fun (r : Record.t) ->
        match r.Record.kind with
        | Record.Close _ ->
          [ r; { r with time = r.Record.time +. 1e-3 } ]
        | _ -> [ r ])
      records
    |> List.stable_sort Record.compare_time
  in
  let _, stats = replay_exn dup in
  Alcotest.(check int) "duplicate closes synthesized opens" 3
    stats.Dfs_workload.Replay.synthesized_opens;
  Alcotest.(check int) "nothing skipped" 0 stats.skipped

let test_replay_rejects_bad_traces () =
  let records, _ = import_exn sample_csv in
  (match Dfs_workload.Replay.run [] with
  | Ok _ -> Alcotest.fail "empty trace accepted"
  | Error e -> Alcotest.(check bool) "one line" false (String.contains e '\n'));
  (match Dfs_workload.Replay.run (List.rev records) with
  | Ok _ -> Alcotest.fail "unsorted trace accepted"
  | Error e -> Alcotest.(check bool) "one line" false (String.contains e '\n'));
  let huge =
    match records with
    | r :: _ -> { r with Record.client = Ids.Client.of_int 1_000_000 }
    | [] -> Alcotest.fail "no records"
  in
  match Dfs_workload.Replay.run [ huge ] with
  | Ok _ -> Alcotest.fail "oversized client id accepted"
  | Error e -> Alcotest.(check bool) "one line" false (String.contains e '\n')

let suite =
  [
    ("snia parse ok", `Quick, test_snia_parse_ok);
    ("snia six columns", `Quick, test_snia_parse_six_columns);
    ("snia header", `Quick, test_snia_header);
    ("snia hostile rows", `Quick, test_snia_hostile_rows);
    ("idmap dense first-seen", `Quick, test_idmap_dense_first_seen);
    ("import golden", `Quick, test_import_golden);
    ("import filetime rebase", `Quick, test_import_filetime_rebase);
    ("import offset rebase", `Quick, test_import_offset_rebase);
    ("import header/comments/crlf", `Quick, test_import_header_comments_crlf);
    ("import unsorted rows", `Quick, test_import_unsorted_rows);
    ("import fail policy", `Quick, test_import_fail_policy);
    ("import salvage policy", `Quick, test_import_salvage_policy);
    ("import empty input", `Quick, test_import_empty_input);
    QCheck_alcotest.to_alcotest prop_inference_well_formed;
    QCheck_alcotest.to_alcotest prop_import_deterministic;
    QCheck_alcotest.to_alcotest prop_roundtrip_writer_reader;
    ("replay imported smoke", `Quick, test_replay_imported_smoke);
    ("replay deterministic", `Quick, test_replay_deterministic);
    ("replay orphan close", `Quick, test_replay_orphan_close);
    ("replay duplicate close", `Quick, test_replay_duplicate_close);
    ("replay rejects bad traces", `Quick, test_replay_rejects_bad_traces);
  ]
