(* Tests for the fault-injection subsystem: schedule determinism,
   retry/backoff arithmetic, the offline writeback queue, crash loss
   accounting in the block cache, and an end-to-end recovery storm on a
   crash-heavy preset. *)

module Profile = Dfs_fault.Profile
module Schedule = Dfs_fault.Schedule
module Injector = Dfs_fault.Injector
module Bc = Dfs_cache.Block_cache
module File = Dfs_trace.Ids.File
module Cluster = Dfs_sim.Cluster
module Presets = Dfs_workload.Presets

let bs = Dfs_util.Units.block_size

(* -- profiles ----------------------------------------------------------------- *)

let test_profile_names () =
  Alcotest.(check string) "none" "none" (Profile.name Profile.none);
  Alcotest.(check string) "light" "light" (Profile.name Profile.light);
  Alcotest.(check string) "heavy" "heavy" (Profile.name Profile.crash_heavy);
  Alcotest.(check string) "seed-insensitive" "heavy"
    (Profile.name (Profile.with_seed Profile.crash_heavy 999));
  Alcotest.(check bool) "none is none" true (Profile.is_none Profile.none);
  Alcotest.(check bool) "heavy is not none" false
    (Profile.is_none Profile.crash_heavy);
  (match Profile.of_name "crash-heavy" with
  | Some p -> Alcotest.(check string) "alias" "heavy" (Profile.name p)
  | None -> Alcotest.fail "crash-heavy alias rejected");
  Alcotest.(check bool) "unknown rejected" true (Profile.of_name "zap" = None)

(* -- schedule ----------------------------------------------------------------- *)

let windows_of sched i =
  List.map
    (fun w -> (w.Schedule.down_at, w.Schedule.up_at))
    (Schedule.server_outages sched i)

let test_schedule_deterministic () =
  let gen () =
    Schedule.generate ~profile:Profile.crash_heavy ~n_servers:4
      ~horizon:86400.0
  in
  let a = gen () and b = gen () in
  for i = 0 to 3 do
    Alcotest.(check (list (pair (float 0.0) (float 0.0))))
      (Printf.sprintf "server %d windows identical" i)
      (windows_of a i) (windows_of b i)
  done;
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "partitions identical" (Schedule.partitions a |> List.map (fun w ->
        (w.Schedule.down_at, w.Schedule.up_at)))
    (Schedule.partitions b |> List.map (fun w ->
         (w.Schedule.down_at, w.Schedule.up_at)));
  Alcotest.(check int) "crash counts equal" (Schedule.crash_count a)
    (Schedule.crash_count b);
  Alcotest.(check bool) "heavy profile crashes within a day" true
    (Schedule.crash_count a > 0);
  (* A different seed must give a different schedule. *)
  let c =
    Schedule.generate
      ~profile:(Profile.with_seed Profile.crash_heavy 42)
      ~n_servers:4 ~horizon:86400.0
  in
  Alcotest.(check bool) "different seed differs" true
    (windows_of a 0 <> windows_of c 0)

let test_schedule_prefix_stable_in_n_servers () =
  (* Adding servers must not perturb earlier servers' windows. *)
  let a = Schedule.generate ~profile:Profile.crash_heavy ~n_servers:2 ~horizon:86400.0 in
  let b = Schedule.generate ~profile:Profile.crash_heavy ~n_servers:6 ~horizon:86400.0 in
  for i = 0 to 1 do
    Alcotest.(check (list (pair (float 0.0) (float 0.0))))
      (Printf.sprintf "server %d stable" i)
      (windows_of a i) (windows_of b i)
  done

let test_schedule_windows_sane () =
  let sched =
    Schedule.generate ~profile:Profile.crash_heavy ~n_servers:3
      ~horizon:86400.0
  in
  for i = 0 to 2 do
    let prev_up = ref neg_infinity in
    List.iter
      (fun w ->
        Alcotest.(check bool) "repair >= 1s" true
          (w.Schedule.up_at -. w.Schedule.down_at >= 1.0);
        Alcotest.(check bool) "starts before horizon" true
          (w.Schedule.down_at < 86400.0);
        Alcotest.(check bool) "ordered, disjoint" true
          (w.Schedule.down_at >= !prev_up);
        prev_up := w.Schedule.up_at)
      (Schedule.server_outages sched i)
  done

let test_schedule_covering () =
  let sched =
    Schedule.generate ~profile:Profile.crash_heavy ~n_servers:1
      ~horizon:86400.0
  in
  match Schedule.server_outages sched 0 with
  | [] -> Alcotest.fail "expected at least one outage"
  | w :: _ ->
    let mid = (w.Schedule.down_at +. w.Schedule.up_at) /. 2.0 in
    Alcotest.(check bool) "down at start" true
      (Schedule.server_down sched ~server:0 ~now:w.Schedule.down_at <> None);
    Alcotest.(check bool) "down mid-outage" true
      (Schedule.server_down sched ~server:0 ~now:mid <> None);
    Alcotest.(check bool) "up at up_at" true
      (Schedule.server_down sched ~server:0 ~now:w.Schedule.up_at = None);
    Alcotest.(check bool) "up before outage" true
      (Schedule.server_down sched ~server:0 ~now:(w.Schedule.down_at -. 0.001)
      = None);
    Alcotest.(check bool) "no outage on absent server" true
      (Schedule.server_down sched ~server:5 ~now:mid = None)

let test_none_schedule_empty () =
  let sched =
    Schedule.generate ~profile:Profile.none ~n_servers:4 ~horizon:1e9
  in
  Alcotest.(check int) "no crashes ever" 0 (Schedule.crash_count sched);
  Alcotest.(check (list reject)) "no partitions" [] (Schedule.partitions sched)

(* -- retry/backoff ------------------------------------------------------------ *)

(* Reference model: cumulative doubling (jittered, capped) backoff until
   the sum first reaches the remaining outage time, built from the same
   pure per-attempt step the injector charges. *)
let expected_stall (p : Profile.t) ~server ~remaining =
  let rec go acc n =
    if acc >= remaining then (acc, n)
    else go (acc +. Injector.backoff_step p ~server ~attempt:n) (n + 1)
  in
  go 0.0 0

let test_rpc_delay_backoff () =
  let inj =
    Injector.create ~profile:Profile.crash_heavy ~n_servers:1 ~horizon:86400.0 ()
  in
  let sched = Injector.schedule inj in
  match Schedule.server_outages sched 0 with
  | [] -> Alcotest.fail "expected at least one outage"
  | w :: _ ->
    let now = w.Schedule.down_at +. 0.25 in
    let remaining = w.Schedule.up_at -. now in
    let want_stall, want_retries =
      expected_stall (Injector.profile inj) ~server:0 ~remaining
    in
    let stall = Injector.rpc_delay inj ~server:0 ~now in
    Alcotest.(check (float 1e-9)) "stall is cumulative backoff" want_stall stall;
    Alcotest.(check bool) "stall covers the outage" true (stall >= remaining);
    let st = Injector.stats inj in
    Alcotest.(check int) "retries counted" want_retries st.Injector.rpc_retries;
    Alcotest.(check (float 1e-9)) "stall accumulated" want_stall
      st.Injector.rpc_stall_s;
    (* Up and reachable: a zero-drop profile charges nothing. *)
    let quiet =
      Injector.create
        ~profile:{ Profile.crash_heavy with rpc_drop_prob = 0.0 }
        ~n_servers:1 ~horizon:86400.0 ()
    in
    Alcotest.(check (float 0.0)) "no outage, no drop: free" 0.0
      (Injector.rpc_delay quiet ~server:0 ~now:(w.Schedule.up_at +. 0.5))

let test_backoff_arithmetic () =
  (* With jitter off the classic doubling arithmetic is exact:
     0.5 + 1.0 = 1.5 >= 1.2 after two retries. *)
  let p =
    {
      Profile.crash_heavy with
      rpc_timeout = 0.5;
      rpc_backoff_max = 30.0;
      rpc_backoff_jitter = 0.0;
    }
  in
  let stall, retries = expected_stall p ~server:0 ~remaining:1.2 in
  Alcotest.(check (float 1e-9)) "stall" 1.5 stall;
  Alcotest.(check int) "retries" 2 retries;
  (* The ceiling kicks in for long outages: 0.5+1+2+4+8+16+30+30... *)
  let stall, retries = expected_stall p ~server:0 ~remaining:100.0 in
  Alcotest.(check (float 1e-9)) "capped stall" 121.5 stall;
  Alcotest.(check int) "capped retries" 9 retries

let test_backoff_jitter_deterministic () =
  let p =
    {
      Profile.crash_heavy with
      rpc_timeout = 0.5;
      rpc_backoff_max = 30.0;
      rpc_backoff_jitter = 0.1;
    }
  in
  let unjittered = { p with Profile.rpc_backoff_jitter = 0.0 } in
  for server = 0 to 3 do
    for attempt = 0 to 9 do
      let step = Injector.backoff_step p ~server ~attempt in
      (* Pure function: same (seed, server, attempt) -> same wait. *)
      Alcotest.(check (float 0.0))
        (Printf.sprintf "deterministic s%d a%d" server attempt)
        step
        (Injector.backoff_step p ~server ~attempt);
      let base = Injector.backoff_step unjittered ~server ~attempt in
      Alcotest.(check bool) "jitter only lengthens" true (step >= base);
      Alcotest.(check bool) "jitter bounded by fraction" true
        (step <= Float.min (base *. 1.1) p.Profile.rpc_backoff_max);
      Alcotest.(check bool) "ceiling holds" true
        (step <= p.Profile.rpc_backoff_max)
    done
  done;
  (* Distinct servers draw from distinct RNG splits: the early (uncapped)
     steps should not all coincide. *)
  let differs = ref false in
  for attempt = 0 to 4 do
    if
      Injector.backoff_step p ~server:0 ~attempt
      <> Injector.backoff_step p ~server:1 ~attempt
    then differs := true
  done;
  Alcotest.(check bool) "per-server splits differ" true !differs;
  (* Deep attempts sit exactly on the ceiling. *)
  Alcotest.(check (float 0.0)) "deep attempt capped" 30.0
    (Injector.backoff_step p ~server:0 ~attempt:20)

let test_backoff_capped_counter () =
  let before =
    match Dfs_obs.Metrics.find "sim.fault.backoff_capped" with
    | Some (Dfs_obs.Metrics.Counter c) -> Dfs_obs.Metrics.value c
    | _ -> 0
  in
  let inj =
    Injector.create ~profile:Profile.crash_heavy ~n_servers:1 ~horizon:86400.0 ()
  in
  let sched = Injector.schedule inj in
  (* An outage long enough that the doubling retry interval must reach
     the ceiling: 0.5+1+2+4+8+16 = 31.5 s of uncapped backoff. *)
  (match
     List.find_opt
       (fun w -> w.Schedule.up_at -. w.Schedule.down_at > 40.0)
       (Schedule.server_outages sched 0)
   with
  | None -> Alcotest.fail "expected a >40s outage in a day of crash_heavy"
  | Some w -> ignore (Injector.rpc_delay inj ~server:0 ~now:w.Schedule.down_at));
  let after =
    match Dfs_obs.Metrics.find "sim.fault.backoff_capped" with
    | Some (Dfs_obs.Metrics.Counter c) -> Dfs_obs.Metrics.value c
    | _ -> 0
  in
  Alcotest.(check bool) "capped steps counted" true (after > before)

let test_disk_penalty_bounds () =
  let inj =
    Injector.create ~profile:Profile.crash_heavy ~n_servers:1 ~horizon:86400.0 ()
  in
  let p = Injector.profile inj in
  for _ = 1 to 1000 do
    let d = Injector.disk_penalty inj in
    Alcotest.(check bool) "penalty is 0 or the profile's" true
      (d = 0.0 || d = p.Profile.disk_error_penalty)
  done;
  let st = Injector.stats inj in
  Alcotest.(check bool) "some errors at p=1e-3 over 1000 draws is plausible"
    true
    (st.Injector.disk_errors >= 0 && st.Injector.disk_errors <= 1000)

(* -- offline writeback queue -------------------------------------------------- *)

let test_offline_queue_fifo () =
  let inj =
    Injector.create ~profile:Profile.crash_heavy ~n_servers:2 ~horizon:86400.0 ()
  in
  Injector.queue_writeback inj ~server:0 ~file:7 ~index:0 ~bytes:4096;
  Injector.queue_writeback inj ~server:0 ~file:7 ~index:1 ~bytes:4096;
  Injector.queue_writeback inj ~server:0 ~file:9 ~index:0 ~bytes:1024;
  Injector.queue_writeback inj ~server:1 ~file:3 ~index:2 ~bytes:512;
  Alcotest.(check int) "server 0 parked" 9216 (Injector.queued_bytes inj ~server:0);
  Alcotest.(check int) "server 1 parked" 512 (Injector.queued_bytes inj ~server:1);
  let st = Injector.stats inj in
  Alcotest.(check int) "total parked" 9728 st.Injector.offline_queued_bytes;
  let order = ref [] in
  Injector.drain_writebacks inj ~server:0 (fun ~file ~index ~bytes ->
      order := (file, index, bytes) :: !order);
  Alcotest.(check (list (triple int int int)))
    "FIFO replay order"
    [ (7, 0, 4096); (7, 1, 4096); (9, 0, 1024) ]
    (List.rev !order);
  Alcotest.(check int) "server 0 drained" 0 (Injector.queued_bytes inj ~server:0);
  Alcotest.(check int) "server 1 untouched" 512
    (Injector.queued_bytes inj ~server:1);
  Alcotest.(check int) "replayed accounted" 9216 st.Injector.replayed_bytes

(* -- crash loss accounting in the block cache --------------------------------- *)

let make_cache () =
  let writebacks = ref 0 in
  let cache =
    Bc.create
      ~config:
        {
          Bc.block_size = bs;
          writeback_delay = 30.0;
          capacity_blocks = 64;
          min_capacity_blocks = 1;
        }
      {
        Bc.fetch = (fun ~cls:_ ~file:_ ~index:_ ~bytes:_ -> ());
        writeback = (fun ~file:_ ~index:_ ~bytes:_ ~reason:_ -> incr writebacks);
      }
  in
  (cache, writebacks)

let dirty cache ~file ~len =
  Bc.write cache ~now:0.0 ~cls:Bc.Class_file ~migrated:false
    ~file:(File.of_int file) ~file_size:len ~off:0 ~len

let test_cache_crash_loses_dirty () =
  let cache, writebacks = make_cache () in
  dirty cache ~file:1 ~len:(2 * bs);
  dirty cache ~file:2 ~len:1000;
  Alcotest.(check int) "dirty bytes visible" ((2 * bs) + 1000)
    (Bc.dirty_bytes cache);
  Alcotest.(check (list int)) "dirty files listed" [ 1; 2 ]
    (Bc.dirty_file_ids cache);
  let lost = Bc.crash cache ~now:10.0 in
  Alcotest.(check int) "crash loses exactly the dirty bytes"
    ((2 * bs) + 1000) lost;
  Alcotest.(check int) "nothing dirty after crash" 0 (Bc.dirty_bytes cache);
  Alcotest.(check (list reject)) "no dirty files after crash" []
    (Bc.dirty_file_ids cache);
  Alcotest.(check int) "crash never writes back" 0 !writebacks;
  (* Crash loss is accounted by the injector, not as a delete-before-
     writeback saving. *)
  Alcotest.(check int) "dirty_bytes_discarded untouched" 0
    (Bc.stats cache).Bc.dirty_bytes_discarded;
  Alcotest.(check int) "second crash loses nothing" 0 (Bc.crash cache ~now:11.0)

(* -- network guard (regression) ----------------------------------------------- *)

let test_network_rpc_negative_bytes () =
  let net = Dfs_sim.Network.create () in
  Alcotest.check_raises "negative bytes rejected"
    (Invalid_argument "Network.rpc: negative bytes (-1)") (fun () ->
      ignore (Dfs_sim.Network.rpc net ~kind:"read" ~bytes:(-1)));
  Alcotest.(check bool) "zero bytes fine" true
    (Dfs_sim.Network.rpc net ~kind:"read" ~bytes:0 >= 0.0)

(* -- recovery-stats table ----------------------------------------------------- *)

let test_recovery_stats_totals () =
  let mk crashes lost =
    {
      Injector.crashes;
      reboots = crashes;
      downtime_s = 60.0 *. float_of_int crashes;
      lost_bytes = lost;
      partitions = 1;
      rpc_retries = 10;
      rpc_drops = 2;
      rpc_stall_s = 3.5;
      disk_errors = 4;
      recovery_rpcs = 20;
      offline_queued_bytes = 2048;
      replayed_bytes = 2048;
    }
  in
  let t =
    Dfs_analysis.Recovery_stats.analyze
      [ ("trace1", mk 2 4096); ("trace2", mk 3 8192) ]
  in
  Alcotest.(check int) "two rows" 2 (List.length t.Dfs_analysis.Recovery_stats.rows);
  let total = t.Dfs_analysis.Recovery_stats.total in
  Alcotest.(check int) "crashes summed" 5 total.Dfs_analysis.Recovery_stats.crashes;
  Alcotest.(check (float 1e-9)) "lost KB summed" 12.0
    total.Dfs_analysis.Recovery_stats.lost_kb;
  Alcotest.(check (float 1e-9)) "lost per crash" 2.4
    total.Dfs_analysis.Recovery_stats.lost_per_crash_kb;
  Alcotest.(check int) "recovery storm summed" 40
    total.Dfs_analysis.Recovery_stats.recovery_rpcs;
  (* The table renders without raising. *)
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Dfs_analysis.Recovery_stats.pp fmt t;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "table mentions both runs" true
    (let s = Buffer.contents buf in
     let has sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has "trace1" && has "trace2" && has "total")

(* -- trace reader fd hygiene (regression) ------------------------------------- *)

let open_fd_count () = Array.length (Sys.readdir "/proc/self/fd")

let test_fold_file_releases_fd () =
  if not (Sys.file_exists "/proc/self/fd") then ()
  else begin
    let good = Filename.temp_file "dfs_fault_trace" ".log" in
    let bad = Filename.temp_file "dfs_fault_trace" ".log" in
    let oc = open_out good in
    output_string oc (Dfs_trace.Codec.header ^ "\n");
    close_out oc;
    let oc = open_out bad in
    output_string oc (Dfs_trace.Codec.header ^ "\nnot a record\n");
    close_out oc;
    let before = open_fd_count () in
    for _ = 1 to 64 do
      (match Dfs_trace.Reader.fold_file good ~init:0 ~f:(fun n _ -> n + 1) with
      | Ok 0 -> ()
      | Ok n -> Alcotest.failf "expected empty trace, got %d records" n
      | Error e -> Alcotest.failf "unexpected parse error: %s" e);
      match Dfs_trace.Reader.fold_file bad ~init:0 ~f:(fun n _ -> n + 1) with
      | Ok _ -> Alcotest.fail "bad trace accepted"
      | Error _ -> ()
    done;
    let after = open_fd_count () in
    Sys.remove good;
    Sys.remove bad;
    Alcotest.(check int) "no descriptor leak across 128 folds" before after
  end

(* -- end to end: crash-heavy run ---------------------------------------------- *)

let crashy_preset () =
  Presets.with_faults
    (Presets.scaled (Presets.trace 1) ~factor:0.01)
    Profile.crash_heavy

let run_stats () =
  let cluster, _driver = Presets.run ~quiet:true (crashy_preset ()) in
  match Cluster.faults cluster with
  | None -> Alcotest.fail "fault profile did not build an injector"
  | Some inj -> (cluster, Injector.stats inj)

let test_recovery_storm_e2e () =
  let cluster, st = run_stats () in
  Alcotest.(check bool) "at least one crash" true (st.Injector.crashes >= 1);
  (* A server that crashes near the end of the run may still be down when
     the run stops: at most one reboot per server can be outstanding. *)
  Alcotest.(check bool) "reboots happened" true (st.Injector.reboots >= 1);
  Alcotest.(check bool) "at most one outstanding reboot per server" true
    (st.Injector.crashes - st.Injector.reboots >= 0
    && st.Injector.crashes - st.Injector.reboots <= 4);
  Alcotest.(check bool) "downtime accrued" true (st.Injector.downtime_s > 0.0);
  Alcotest.(check bool) "recovery storm happened" true
    (st.Injector.recovery_rpcs > 0);
  Alcotest.(check bool) "clients stalled on retries" true
    (st.Injector.rpc_retries > 0 && st.Injector.rpc_stall_s > 0.0);
  Alcotest.(check bool) "delayed-write bytes were lost" true
    (st.Injector.lost_bytes > 0);
  Alcotest.(check bool) "writebacks were parked while a server was down" true
    (st.Injector.offline_queued_bytes > 0);
  Alcotest.(check bool) "replay never exceeds what was parked" true
    (st.Injector.replayed_bytes <= st.Injector.offline_queued_bytes);
  Alcotest.(check bool) "trace survived the chaos" true
    (List.length (Cluster.merged_trace cluster) > 0)

let test_faulty_run_deterministic () =
  let _, a = run_stats () in
  let _, b = run_stats () in
  Alcotest.(check bool) "identical stats across runs" true (a = b)

let test_faults_off_by_default () =
  let cluster =
    Cluster.create
      {
        Cluster.default_config with
        n_clients = 2;
        n_servers = 1;
        seed = 5;
        simulate_infrastructure = false;
      }
  in
  Alcotest.(check bool) "no injector" true (Cluster.faults cluster = None)

let suite =
  [
    Alcotest.test_case "profile names" `Quick test_profile_names;
    Alcotest.test_case "schedule deterministic" `Quick test_schedule_deterministic;
    Alcotest.test_case "schedule prefix stable" `Quick
      test_schedule_prefix_stable_in_n_servers;
    Alcotest.test_case "schedule windows sane" `Quick test_schedule_windows_sane;
    Alcotest.test_case "schedule covering" `Quick test_schedule_covering;
    Alcotest.test_case "none schedule empty" `Quick test_none_schedule_empty;
    Alcotest.test_case "rpc delay backoff" `Quick test_rpc_delay_backoff;
    Alcotest.test_case "backoff arithmetic" `Quick test_backoff_arithmetic;
    Alcotest.test_case "backoff jitter deterministic" `Quick
      test_backoff_jitter_deterministic;
    Alcotest.test_case "backoff capped counter" `Quick
      test_backoff_capped_counter;
    Alcotest.test_case "disk penalty bounds" `Quick test_disk_penalty_bounds;
    Alcotest.test_case "offline queue fifo" `Quick test_offline_queue_fifo;
    Alcotest.test_case "cache crash loses dirty" `Quick
      test_cache_crash_loses_dirty;
    Alcotest.test_case "network rpc negative bytes" `Quick
      test_network_rpc_negative_bytes;
    Alcotest.test_case "recovery stats totals" `Quick test_recovery_stats_totals;
    Alcotest.test_case "fold_file releases fd" `Quick test_fold_file_releases_fd;
    Alcotest.test_case "recovery storm e2e" `Slow test_recovery_storm_e2e;
    Alcotest.test_case "faulty run deterministic" `Slow
      test_faulty_run_deterministic;
    Alcotest.test_case "faults off by default" `Quick test_faults_off_by_default;
  ]
