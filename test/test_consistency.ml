(* Tests for Dfs_consistency: shared-event extraction, the three mechanism
   simulations (Table 12), and the polling stale-data simulation (Table 11). *)

open Dfs_consistency
module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids
let batch = Dfs_trace.Record_batch.of_list

let bs = Dfs_util.Units.block_size

let mk ?(time = 0.0) ?(client = 0) ?(user = 0) ?(pid = 0) ?(migrated = false)
    ?(file = 0) kind =
  {
    Record.time;
    server = Ids.Server.of_int 0;
    client = Ids.Client.of_int client;
    user = Ids.User.of_int user;
    pid = Ids.Process.of_int pid;
    migrated;
    file = Ids.File.of_int file;
    kind;
  }

let op ?time ?client ?user ?pid ?file ?(mode = Record.Read_only) () =
  mk ?time ?client ?user ?pid ?file
    (Record.Open { mode; created = false; is_dir = false; size = 0; start_pos = 0 })

let cl ?time ?client ?user ?pid ?file ?(bytes_written = 0) () =
  mk ?time ?client ?user ?pid ?file
    (Record.Close { size = 0; final_pos = 0; bytes_read = 0; bytes_written })

let sread ?time ?client ?user ?pid ?file ~off ~len () =
  mk ?time ?client ?user ?pid ?file (Record.Shared_read { offset = off; length = len })

let swrite ?time ?client ?user ?pid ?file ~off ~len () =
  mk ?time ?client ?user ?pid ?file (Record.Shared_write { offset = off; length = len })

(* A canonical write-sharing episode on file 1: client 0 holds it open for
   writing, client 1 reads it concurrently. *)
let sharing_trace =
  [
    op ~time:0.0 ~client:0 ~pid:1 ~file:1 ~mode:Record.Write_only ();
    op ~time:1.0 ~client:1 ~pid:2 ~file:1 ~mode:Record.Read_only ();
    swrite ~time:2.0 ~client:0 ~pid:1 ~file:1 ~off:0 ~len:100 ();
    sread ~time:3.0 ~client:1 ~pid:2 ~file:1 ~off:0 ~len:100 ();
    swrite ~time:4.0 ~client:0 ~pid:1 ~file:1 ~off:100 ~len:100 ();
    sread ~time:5.0 ~client:1 ~pid:2 ~file:1 ~off:100 ~len:100 ();
    cl ~time:6.0 ~client:1 ~pid:2 ~file:1 ();
    cl ~time:7.0 ~client:0 ~pid:1 ~file:1 ~bytes_written:200 ();
  ]

(* -- shared event extraction ------------------------------------------------------ *)

let test_extract_stream () =
  match Shared_events.extract (batch sharing_trace) with
  | [ s ] ->
    Alcotest.(check int) "file id" 1 (Ids.File.to_int s.file);
    Alcotest.(check int) "requested bytes" 400 s.requested_bytes;
    Alcotest.(check int) "requests" 4 s.requests;
    Alcotest.(check int) "events incl opens/closes" 8 (List.length s.events);
    Alcotest.(check int) "totals" 400 (Shared_events.total_requested [ s ]);
    Alcotest.(check int) "total reqs" 4 (Shared_events.total_requests [ s ])
  | l -> Alcotest.failf "expected 1 stream, got %d" (List.length l)

let test_extract_ignores_unshared_files () =
  let trace =
    [
      op ~time:0.0 ~client:0 ~pid:1 ~file:5 ();
      cl ~time:1.0 ~client:0 ~pid:1 ~file:5 ();
    ]
  in
  Alcotest.(check int) "no streams" 0 (List.length (Shared_events.extract (batch trace)))

let test_extract_writer_flag_from_open () =
  match Shared_events.extract (batch sharing_trace) with
  | [ s ] ->
    let opens =
      List.filter_map
        (fun { Shared_events.ev; _ } ->
          match ev with
          | Shared_events.Open { client; writer } -> Some (client, writer)
          | _ -> None)
        s.events
    in
    Alcotest.(check (list (pair int bool))) "writer flags"
      [ (0, true); (1, false) ] opens
  | _ -> Alcotest.fail "one stream"

(* -- Sprite baseline ---------------------------------------------------------------- *)

let test_sprite_exact_demand () =
  let streams = Shared_events.extract (batch sharing_trace) in
  let r = Sprite.simulate streams in
  Alcotest.(check int) "bytes = demand" 400 r.Overhead.bytes_transferred;
  Alcotest.(check int) "rpcs = requests" 4 r.Overhead.rpcs;
  let ratios = Overhead.ratios ~demand_bytes:400 ~demand_requests:4 r in
  Alcotest.(check (float 1e-9)) "bytes ratio 1" 1.0 ratios.bytes_ratio;
  Alcotest.(check (float 1e-9)) "rpc ratio 1" 1.0 ratios.rpc_ratio

(* -- modified Sprite ------------------------------------------------------------------ *)

let test_modified_same_as_sprite_while_sharing () =
  (* every request in sharing_trace happens while both clients hold the
     file, so the modified scheme also passes everything through *)
  let streams = Shared_events.extract (batch sharing_trace) in
  let r = Sprite_modified.simulate streams in
  Alcotest.(check int) "bytes equal demand during sharing" 400
    r.Overhead.bytes_transferred

let test_modified_caches_after_sharing_ends () =
  (* after the reader closes, Sprite keeps the file uncacheable (events are
     still logged) but the modified scheme lets the writer cache: repeated
     small writes to one block cost one write-fetch at most and a single
     delayed writeback, instead of passing every write through *)
  let tail_writes =
    List.concat_map
      (fun i ->
        [ swrite ~time:(7.0 +. float_of_int i) ~client:0 ~pid:1 ~file:1
            ~off:(i * 10) ~len:10 () ])
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  let trace =
    [
      op ~time:0.0 ~client:0 ~pid:1 ~file:1 ~mode:Record.Write_only ();
      op ~time:1.0 ~client:1 ~pid:2 ~file:1 ~mode:Record.Read_only ();
      sread ~time:2.0 ~client:1 ~pid:2 ~file:1 ~off:0 ~len:100 ();
      cl ~time:6.0 ~client:1 ~pid:2 ~file:1 ();
    ]
    @ tail_writes
    @ [ cl ~time:100.0 ~client:0 ~pid:1 ~file:1 ~bytes_written:100 () ]
  in
  let streams = Shared_events.extract (batch trace) in
  let sprite = Sprite.simulate streams in
  let modified = Sprite_modified.simulate streams in
  (* demand: 100 read + 100 written; sprite moves exactly 200 bytes in 11
     RPCs; modified: the read passes through (sharing active), the writes
     coalesce into block-level dirtiness flushed once *)
  Alcotest.(check int) "sprite bytes" 200 sprite.Overhead.bytes_transferred;
  Alcotest.(check bool) "modified fewer RPCs" true
    (modified.Overhead.rpcs < sprite.Overhead.rpcs)

let test_modified_flushes_on_resharing () =
  (* writer caches dirty data after sharing ends; when a new reader opens
     (sharing again), the dirty blocks are flushed *)
  let trace =
    [
      op ~time:0.0 ~client:0 ~pid:1 ~file:1 ~mode:Record.Write_only ();
      op ~time:1.0 ~client:1 ~pid:2 ~file:1 ~mode:Record.Read_only ();
      cl ~time:2.0 ~client:1 ~pid:2 ~file:1 ();
      (* alone now: cacheable write *)
      swrite ~time:3.0 ~client:0 ~pid:1 ~file:1 ~off:0 ~len:50 ();
      (* reader returns: sharing resumes; dirty data must be flushed *)
      op ~time:4.0 ~client:1 ~pid:3 ~file:1 ~mode:Record.Read_only ();
      sread ~time:5.0 ~client:1 ~pid:3 ~file:1 ~off:0 ~len:50 ();
      cl ~time:6.0 ~client:1 ~pid:3 ~file:1 ();
      cl ~time:7.0 ~client:0 ~pid:1 ~file:1 ~bytes_written:50 ();
    ]
  in
  let streams = Shared_events.extract (batch trace) in
  let r = Sprite_modified.simulate streams in
  (* the cached write (50 dirty bytes) is flushed at the sharing
     transition, and the pass-through read moves 50 more *)
  Alcotest.(check bool) "flush happened" true (r.Overhead.bytes_transferred >= 100)

(* -- token --------------------------------------------------------------------------- *)

let test_token_caching_wins_on_rereads () =
  (* one writer writes once; a reader re-reads the same range many times.
     Sprite passes every re-read through; the token scheme caches. *)
  let rereads =
    List.map
      (fun i -> sread ~time:(10.0 +. float_of_int i) ~client:1 ~pid:2 ~file:1 ~off:0 ~len:bs ())
      (List.init 10 Fun.id)
  in
  let trace =
    [
      op ~time:0.0 ~client:0 ~pid:1 ~file:1 ~mode:Record.Write_only ();
      op ~time:1.0 ~client:1 ~pid:2 ~file:1 ~mode:Record.Read_only ();
      swrite ~time:2.0 ~client:0 ~pid:1 ~file:1 ~off:0 ~len:bs ();
    ]
    @ rereads
    @ [
        cl ~time:30.0 ~client:1 ~pid:2 ~file:1 ();
        cl ~time:31.0 ~client:0 ~pid:1 ~file:1 ~bytes_written:bs ();
      ]
  in
  let streams = Shared_events.extract (batch trace) in
  let sprite = Sprite.simulate streams in
  let token = Token.simulate streams in
  Alcotest.(check bool) "token moves fewer bytes than sprite" true
    (token.Overhead.bytes_transferred < sprite.Overhead.bytes_transferred)

let test_token_pingpong_costs () =
  (* writer and reader alternate on the same block: the token bounces and
     whole blocks are re-fetched — worse than Sprite's pass-through *)
  let ops =
    List.concat_map
      (fun i ->
        let t = 2.0 +. (2.0 *. float_of_int i) in
        [
          swrite ~time:t ~client:0 ~pid:1 ~file:1 ~off:0 ~len:16 ();
          sread ~time:(t +. 1.0) ~client:1 ~pid:2 ~file:1 ~off:0 ~len:16 ();
        ])
      (List.init 10 Fun.id)
  in
  let trace =
    [
      op ~time:0.0 ~client:0 ~pid:1 ~file:1 ~mode:Record.Write_only ();
      op ~time:1.0 ~client:1 ~pid:2 ~file:1 ~mode:Record.Read_only ();
    ]
    @ ops
    @ [
        cl ~time:60.0 ~client:1 ~pid:2 ~file:1 ();
        cl ~time:61.0 ~client:0 ~pid:1 ~file:1 ~bytes_written:160 ();
      ]
  in
  let streams = Shared_events.extract (batch trace) in
  let sprite = Sprite.simulate streams in
  let token = Token.simulate streams in
  Alcotest.(check bool) "fine-grained sharing hurts the token scheme" true
    (token.Overhead.bytes_transferred > sprite.Overhead.bytes_transferred)

let test_token_single_client_cheap () =
  (* a single client doing everything needs one token and caches *)
  let trace =
    [
      op ~time:0.0 ~client:0 ~pid:1 ~file:1 ~mode:Record.Write_only ();
      swrite ~time:1.0 ~client:0 ~pid:1 ~file:1 ~off:0 ~len:bs ();
      sread ~time:2.0 ~client:0 ~pid:1 ~file:1 ~off:0 ~len:bs ();
      sread ~time:3.0 ~client:0 ~pid:1 ~file:1 ~off:0 ~len:bs ();
      cl ~time:4.0 ~client:0 ~pid:1 ~file:1 ~bytes_written:bs ();
    ]
  in
  let streams = Shared_events.extract (batch trace) in
  let token = Token.simulate streams in
  (* 1 write token + maybe a read-token upgrade + final flush; reads hit *)
  Alcotest.(check bool) "few RPCs" true (token.Overhead.rpcs <= 4)

(* -- polling (Table 11) ----------------------------------------------------------------- *)

let publish ~t ~client ~file ~user =
  [
    op ~time:t ~client ~user ~pid:(client + 10) ~file ~mode:Record.Write_only ();
    cl ~time:(t +. 0.5) ~client ~user ~pid:(client + 10) ~file ~bytes_written:10 ();
  ]

let read_open ~t ~client ~file ~user =
  [
    op ~time:t ~client ~user ~pid:(client + 20) ~file ~mode:Record.Read_only ();
    cl ~time:(t +. 0.1) ~client ~user ~pid:(client + 20) ~file ();
  ]

let test_polling_stale_read_detected () =
  let trace =
    (* client 1 reads at t=10 (caches), client 0 writes at t=20, client 1
       re-reads at t=40 — inside the 60 s validity window: stale *)
    publish ~t:0.0 ~client:0 ~file:1 ~user:0
    @ read_open ~t:10.0 ~client:1 ~file:1 ~user:1
    @ publish ~t:20.0 ~client:0 ~file:1 ~user:0
    @ read_open ~t:40.0 ~client:1 ~file:1 ~user:1
  in
  let r = Polling.simulate ~interval:60.0 (batch trace) in
  Alcotest.(check int) "one error" 1 r.errors;
  Alcotest.(check int) "one user affected" 1 r.users_affected;
  Alcotest.(check int) "open error counted" 1 r.opens_with_error

let test_polling_refresh_prevents_error () =
  let trace =
    publish ~t:0.0 ~client:0 ~file:1 ~user:0
    @ read_open ~t:10.0 ~client:1 ~file:1 ~user:1
    @ publish ~t:20.0 ~client:0 ~file:1 ~user:0
    (* re-read AFTER the window expires: client revalidates *)
    @ read_open ~t:80.0 ~client:1 ~file:1 ~user:1
  in
  let r = Polling.simulate ~interval:60.0 (batch trace) in
  Alcotest.(check int) "no error" 0 r.errors

let test_polling_short_interval_fewer_errors () =
  let trace =
    publish ~t:0.0 ~client:0 ~file:1 ~user:0
    @ read_open ~t:10.0 ~client:1 ~file:1 ~user:1
    @ publish ~t:20.0 ~client:0 ~file:1 ~user:0
    @ read_open ~t:40.0 ~client:1 ~file:1 ~user:1
  in
  let r60 = Polling.simulate ~interval:60.0 (batch trace) in
  let r3 = Polling.simulate ~interval:3.0 (batch trace) in
  Alcotest.(check int) "60s errs" 1 r60.errors;
  Alcotest.(check int) "3s errs" 0 r3.errors

let test_polling_own_writes_never_stale () =
  let trace =
    read_open ~t:0.0 ~client:0 ~file:1 ~user:0
    @ publish ~t:5.0 ~client:0 ~file:1 ~user:0
    @ read_open ~t:10.0 ~client:0 ~file:1 ~user:0
  in
  let r = Polling.simulate ~interval:60.0 (batch trace) in
  Alcotest.(check int) "own writes visible" 0 r.errors

let test_polling_shared_reads_checked () =
  let trace =
    [
      op ~time:0.0 ~client:1 ~user:1 ~pid:2 ~file:1 ~mode:Record.Read_only ();
      sread ~time:1.0 ~client:1 ~user:1 ~pid:2 ~file:1 ~off:0 ~len:10 ();
      swrite ~time:2.0 ~client:0 ~user:0 ~pid:1 ~file:1 ~off:0 ~len:10 ();
      sread ~time:3.0 ~client:1 ~user:1 ~pid:2 ~file:1 ~off:0 ~len:10 ();
      cl ~time:4.0 ~client:1 ~user:1 ~pid:2 ~file:1 ();
    ]
  in
  let r = Polling.simulate ~interval:60.0 (batch trace) in
  Alcotest.(check int) "stale fine-grained read" 1 r.errors

let test_polling_migrated_accounting () =
  let trace =
    publish ~t:0.0 ~client:0 ~file:1 ~user:0
    @ [
        op ~time:10.0 ~client:1 ~user:1 ~pid:30 ~file:1 ~mode:Record.Read_only ();
        cl ~time:10.1 ~client:1 ~user:1 ~pid:30 ~file:1 ();
      ]
    @ publish ~t:20.0 ~client:0 ~file:1 ~user:0
    @ [
        mk ~time:40.0 ~client:1 ~user:1 ~pid:31 ~migrated:true ~file:1
          (Record.Open
             { mode = Record.Read_only; created = false; is_dir = false;
               size = 0; start_pos = 0 });
        mk ~time:40.1 ~client:1 ~user:1 ~pid:31 ~migrated:true ~file:1
          (Record.Close { size = 0; final_pos = 0; bytes_read = 0; bytes_written = 0 });
      ]
  in
  let r = Polling.simulate ~interval:60.0 (batch trace) in
  Alcotest.(check int) "migrated open error" 1 r.migrated_opens_with_error;
  Alcotest.(check int) "migrated opens" 1 r.migrated_opens

let test_polling_delete_resets () =
  let trace =
    publish ~t:0.0 ~client:0 ~file:1 ~user:0
    @ read_open ~t:5.0 ~client:1 ~file:1 ~user:1
    @ [ mk ~time:6.0 ~client:0 ~file:1 (Record.Delete { size = 10; is_dir = false }) ]
    @ publish ~t:7.0 ~client:0 ~file:1 ~user:0
    @ read_open ~t:8.0 ~client:1 ~file:1 ~user:1
  in
  (* after deletion the file state restarts; the version counter resets,
     so the re-read may or may not be flagged — the simulation must at
     least not crash and keep counts consistent *)
  let r = Polling.simulate ~interval:60.0 (batch trace) in
  Alcotest.(check bool) "errors bounded by opens" true
    (r.opens_with_error <= r.file_opens)

(* -- overhead helpers --------------------------------------------------------------------- *)

let test_blocks_in_range () =
  let collect off len =
    let acc = ref [] in
    Overhead.blocks_in_range ~off ~len (fun i -> acc := i :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list int)) "within one block" [ 0 ] (collect 0 100);
  Alcotest.(check (list int)) "spans two" [ 0; 1 ] (collect (bs - 10) 20);
  Alcotest.(check (list int)) "empty" [] (collect 50 0)

let test_is_partial_block () =
  Alcotest.(check bool) "full block not partial" false
    (Overhead.is_partial_block ~off:0 ~len:bs ~index:0);
  Alcotest.(check bool) "small write partial" true
    (Overhead.is_partial_block ~off:10 ~len:100 ~index:0);
  Alcotest.(check bool) "tail of long write partial" true
    (Overhead.is_partial_block ~off:0 ~len:(bs + 10) ~index:1)

let suite =
  [
    ("extract stream", `Quick, test_extract_stream);
    ("extract ignores unshared", `Quick, test_extract_ignores_unshared_files);
    ("extract writer flags", `Quick, test_extract_writer_flag_from_open);
    ("sprite = exact demand", `Quick, test_sprite_exact_demand);
    ("modified = sprite while sharing", `Quick, test_modified_same_as_sprite_while_sharing);
    ("modified caches after sharing", `Quick, test_modified_caches_after_sharing_ends);
    ("modified flushes on resharing", `Quick, test_modified_flushes_on_resharing);
    ("token wins on rereads", `Quick, test_token_caching_wins_on_rereads);
    ("token ping-pong costs", `Quick, test_token_pingpong_costs);
    ("token single client cheap", `Quick, test_token_single_client_cheap);
    ("polling stale read detected", `Quick, test_polling_stale_read_detected);
    ("polling refresh prevents error", `Quick, test_polling_refresh_prevents_error);
    ("polling 3s fewer errors", `Quick, test_polling_short_interval_fewer_errors);
    ("polling own writes never stale", `Quick, test_polling_own_writes_never_stale);
    ("polling shared reads checked", `Quick, test_polling_shared_reads_checked);
    ("polling migrated accounting", `Quick, test_polling_migrated_accounting);
    ("polling delete resets", `Quick, test_polling_delete_resets);
    ("blocks_in_range", `Quick, test_blocks_in_range);
    ("is_partial_block", `Quick, test_is_partial_block);
  ]
