(* End-to-end integration tests: short full-cluster simulations checked
   for global invariants, plus the experiment registry. *)

module Cluster = Dfs_sim.Cluster
module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids
module Bc = Dfs_cache.Block_cache

let shared_run =
  lazy
    (let p =
       Dfs_workload.Presets.scaled (Dfs_workload.Presets.trace 1) ~factor:0.01
     in
     Dfs_workload.Presets.run p)

let trace () = Cluster.merged_trace (fst (Lazy.force shared_run))

let cluster () = fst (Lazy.force shared_run)

let test_trace_nonempty_and_sorted () =
  let t = trace () in
  Alcotest.(check bool) "records exist" true (List.length t > 100);
  Alcotest.(check bool) "time sorted" true (Dfs_trace.Merge.is_sorted t)

let test_opens_match_closes () =
  let t = trace () in
  let count p = List.length (List.filter p t) in
  let opens = count (fun r -> match r.Record.kind with Record.Open _ -> true | _ -> false) in
  let closes = count (fun r -> match r.Record.kind with Record.Close _ -> true | _ -> false) in
  (* sessions cut off at the horizon may leave a few dangling opens *)
  Alcotest.(check bool) "closes <= opens" true (closes <= opens);
  Alcotest.(check bool) "almost balanced" true (opens - closes < 64)

let test_cache_invariants_hold_after_run () =
  let c = cluster () in
  Array.iter
    (fun client -> Bc.check_invariants (Dfs_sim.Client.cache client))
    (Cluster.clients c);
  Array.iter
    (fun server -> Bc.check_invariants (Dfs_sim.Server.cache server))
    (Cluster.servers c)

let test_server_bytes_bounded_by_raw () =
  let c = cluster () in
  let raw = Dfs_sim.Traffic.total (Cluster.total_traffic c) in
  let srv = Dfs_sim.Traffic.total (Cluster.total_server_traffic c) in
  Alcotest.(check bool) "caches only filter, never amplify (with block slack)"
    true
    (float_of_int srv < (1.25 *. float_of_int raw) +. 1e6)

let test_hits_plus_misses () =
  let c = cluster () in
  Array.iter
    (fun client ->
      let s = (Bc.stats (Dfs_sim.Client.cache client)).all in
      Alcotest.(check int) "ops conserve" s.read_ops (s.read_hits + s.read_misses))
    (Cluster.clients c)

let test_counters_sampled () =
  let c = cluster () in
  Alcotest.(check bool) "counter samples recorded" true
    (Dfs_sim.Counters.count (Cluster.counters c) > 0)

let test_consistency_actions_only_under_multiclient () =
  (* replayed actions from the trace agree with the live servers' sums *)
  let c = cluster () in
  let t = trace () in
  let live =
    Array.fold_left
      (fun (o, s, r) server ->
        let k = Dfs_sim.Server.consistency server in
        (o + k.file_opens, s + k.sharing_opens, r + k.recalls))
      (0, 0, 0) (Cluster.servers c)
  in
  let replay = Dfs_analysis.Consistency_stats.analyze (Dfs_trace.Record_batch.of_list t) in
  let live_opens, live_sharing, live_recalls = live in
  (* the live count includes infrastructure accesses that the merged trace
     scrubs, so replayed counts can be slightly lower, never higher *)
  Alcotest.(check bool) "opens bounded" true (replay.file_opens <= live_opens);
  Alcotest.(check bool) "sharing bounded" true
    (replay.sharing_opens <= live_sharing + 4);
  Alcotest.(check bool) "recalls close to live" true
    (abs (replay.recall_opens - live_recalls) <= live_recalls / 2 + 8)

let test_write_trace_files_and_reanalyze () =
  let c = cluster () in
  let dir = Filename.temp_file "dfs" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let paths =
        List.mapi
          (fun i records ->
            let path = Filename.concat dir (Printf.sprintf "s%d.trace" i) in
            Dfs_trace.Writer.with_file path (fun w ->
                List.iter (Dfs_trace.Writer.write w) records);
            path)
          (Cluster.server_traces c)
      in
      let streams =
        List.map
          (fun p ->
            match Dfs_trace.Reader.of_file p with
            | Ok rs -> rs
            | Error e -> Alcotest.failf "read %s: %s" p e)
          paths
      in
      let merged =
        Dfs_trace.Merge.scrub ~self_users:Cluster.self_users
          (Dfs_trace.Merge.merge streams)
      in
      Alcotest.(check int) "file roundtrip preserves the trace"
        (List.length (trace ()))
        (List.length merged))

let test_experiment_registry () =
  Alcotest.(check int) "16 experiments" 16 (List.length Dfs_core.Experiment.all);
  List.iter
    (fun id ->
      match Dfs_core.Experiment.find id with
      | Some e -> Alcotest.(check string) "id match" id e.id
      | None -> Alcotest.failf "missing experiment %s" id)
    [ "table1"; "table12"; "fig1"; "fig4" ];
  Alcotest.(check (option string)) "unknown id" None
    (Option.map
       (fun (e : Dfs_core.Experiment.t) -> e.id)
       (Dfs_core.Experiment.find "table99"))

let test_experiments_render_on_tiny_dataset () =
  (* every experiment must produce a non-empty report without raising *)
  let ds = Dfs_core.Dataset.generate ~scale:0.004 ~traces:[ 1 ] () in
  List.iter
    (fun (e : Dfs_core.Experiment.t) ->
      let out = e.run ds in
      Alcotest.(check bool) (e.id ^ " renders") true (String.length out > 40))
    Dfs_core.Experiment.all

let test_claims_evaluate () =
  let ds = Dfs_core.Dataset.generate ~scale:0.004 ~traces:[ 1 ] () in
  let results = Dfs_core.Claims.evaluate ds in
  Alcotest.(check bool) "claims defined" true (List.length results >= 20);
  List.iter
    (fun (r : Dfs_core.Claims.result) ->
      Alcotest.(check bool)
        (r.claim.c_id ^ " measured is finite")
        true
        (Float.is_finite r.measured))
    results;
  let md = Dfs_core.Claims.markdown ds in
  Alcotest.(check bool) "markdown rows" true
    (List.length (String.split_on_char '\n' md) > 20)

let test_paper_constants_sane () =
  Alcotest.(check bool) "t10 range ordered" true
    (Dfs_core.Paper.t10_sharing.lo <= Dfs_core.Paper.t10_sharing.value
    && Dfs_core.Paper.t10_sharing.value <= Dfs_core.Paper.t10_sharing.hi);
  Alcotest.(check (float 1e-9)) "sprite baseline ratio" 1.0
    Dfs_core.Paper.t12_sprite.bytes_ratio;
  Alcotest.(check bool) "reads dominate" true
    (Dfs_core.Paper.t5_reads_pct > Dfs_core.Paper.t5_writes_pct)

let suite =
  [
    ("trace nonempty and sorted", `Slow, test_trace_nonempty_and_sorted);
    ("opens match closes", `Slow, test_opens_match_closes);
    ("cache invariants after run", `Slow, test_cache_invariants_hold_after_run);
    ("server bytes bounded by raw", `Slow, test_server_bytes_bounded_by_raw);
    ("hits plus misses conserve", `Slow, test_hits_plus_misses);
    ("counters sampled", `Slow, test_counters_sampled);
    ("consistency replay vs live", `Slow, test_consistency_actions_only_under_multiclient);
    ("trace files roundtrip + reanalyze", `Slow, test_write_trace_files_and_reanalyze);
    ("experiment registry", `Quick, test_experiment_registry);
    ("experiments render", `Slow, test_experiments_render_on_tiny_dataset);
    ("claims evaluate", `Slow, test_claims_evaluate);
    ("paper constants sane", `Quick, test_paper_constants_sane);
  ]
