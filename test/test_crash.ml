(* Crash-safety and integrity tests: Io_retry backoff, Durable atomic
   replacement, the fsck corruption matrix (bit flips, truncations, v1
   compat, orphan tmps, unknown files, exit codes), salvage-prefix
   properties, and a fork+SIGKILL chaos harness asserting that every
   spill chunk sealed before the kill is bit-identical to the same chunk
   of an uninterrupted run. *)

open Dfs_trace

let mk ?(time = 0.0) ?(server = 0) ?(client = 0) ?(user = 0) ?(pid = 0)
    ?(migrated = false) ?(file = 0) kind =
  {
    Record.time;
    server = Ids.Server.of_int server;
    client = Ids.Client.of_int client;
    user = Ids.User.of_int user;
    pid = Ids.Process.of_int pid;
    migrated;
    file = Ids.File.of_int file;
    kind;
  }

let kind_of_int i =
  match i mod 5 with
  | 0 ->
    Record.Open
      {
        mode = Record.Read_only;
        created = false;
        is_dir = false;
        size = i;
        start_pos = 0;
      }
  | 1 ->
    Record.Close
      { size = i; final_pos = i; bytes_read = i / 2; bytes_written = i / 2 }
  | 2 -> Record.Dir_read { bytes = i land 0xFFF }
  | 3 -> Record.Truncate { old_size = i }
  | _ -> Record.Delete { size = i; is_dir = false }

let nth_record i =
  mk
    ~time:(float_of_int i *. 0.001)
    ~server:(i mod 4) ~client:(i mod 50) ~user:(i mod 30) ~pid:(i mod 100)
    ~file:(i mod 1000) (kind_of_int i)

let records n = List.init n nth_record

let counter_value name =
  match Dfs_obs.Metrics.find name with
  | Some (Dfs_obs.Metrics.Counter c) -> Dfs_obs.Metrics.value c
  | _ -> 0

(* -- scratch directories ---------------------------------------------------- *)

let tmp_seq = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let with_tmpdir f =
  incr tmp_seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dfs-crash-%d-%d" (Unix.getpid ()) !tmp_seq)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let batch_of_file_exn ?on_corruption path =
  match Segment.batch_of_file ?on_corruption path with
  | Ok b -> b
  | Error e -> Alcotest.failf "batch_of_file %s: %s" path e

let poke path off byte =
  let b = Bytes.of_string (read_all path) in
  Bytes.set b off byte;
  write_all path (Bytes.to_string b)

(* -- Io_retry ---------------------------------------------------------------- *)

let with_inject hook f =
  Io_retry.set_inject (Some hook);
  Fun.protect ~finally:(fun () -> Io_retry.set_inject None) f

let test_io_retry_transient_then_success () =
  let before = counter_value "trace.io.retries" in
  let v =
    with_inject
      (fun ~op:_ ~path:_ ~attempt ->
        if attempt < 2 then raise (Unix.Unix_error (Unix.EIO, "write", "x")))
      (fun () ->
        Io_retry.run ~base_delay:1e-4 ~op:"test" ~path:"x" (fun () -> 42))
  in
  Alcotest.(check int) "converges" 42 v;
  Alcotest.(check int) "two retries counted" (before + 2)
    (counter_value "trace.io.retries")

let test_io_retry_gives_up () =
  let giveups = counter_value "trace.io.giveups" in
  (match
     with_inject
       (fun ~op:_ ~path:_ ~attempt:_ ->
         raise (Unix.Unix_error (Unix.EIO, "write", "x")))
       (fun () ->
         Io_retry.run ~attempts:3 ~base_delay:1e-4 ~op:"test" ~path:"x"
           (fun () -> ()))
   with
  | () -> Alcotest.fail "expected EIO to escape after 3 attempts"
  | exception Unix.Unix_error (Unix.EIO, _, _) -> ());
  Alcotest.(check int) "giveup counted" (giveups + 1)
    (counter_value "trace.io.giveups")

let test_io_retry_permanent_is_immediate () =
  let before = counter_value "trace.io.retries" in
  (match
     with_inject
       (fun ~op:_ ~path:_ ~attempt:_ ->
         raise (Unix.Unix_error (Unix.ENOSPC, "write", "x")))
       (fun () -> Io_retry.run ~op:"test" ~path:"x" (fun () -> ()))
   with
  | () -> Alcotest.fail "expected ENOSPC to escape"
  | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
  Alcotest.(check int) "no retries for permanent errors" before
    (counter_value "trace.io.retries")

(* -- Durable ----------------------------------------------------------------- *)

let test_durable_replace_atomic () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "out.bin" in
      ignore (Durable.replace ~op:"test" ~path (fun oc -> output_string oc "v1"));
      Alcotest.(check string) "content" "v1" (read_all path);
      Alcotest.(check bool) "no tmp left" false
        (Sys.file_exists (Durable.tmp_path path));
      (* Replacing again swaps content; a crash would have left v1. *)
      ignore
        (Durable.replace ~op:"test" ~path (fun oc -> output_string oc "v2!"));
      Alcotest.(check string) "replaced" "v2!" (read_all path))

let test_durable_replace_failure_leaves_old () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "out.bin" in
      write_all path "old";
      (match
         Durable.replace ~op:"test" ~path (fun oc ->
             output_string oc "partial";
             failwith "boom")
       with
      | _ -> Alcotest.fail "expected failure to escape"
      | exception Failure _ -> ());
      Alcotest.(check string) "old content untouched" "old" (read_all path);
      Alcotest.(check bool) "tmp cleaned up" false
        (Sys.file_exists (Durable.tmp_path path)))

let test_durable_replace_retries_transient () =
  (* Compose with a fault-injected disk: first attempt dies with EIO,
     the retry rewrites the whole tmp file (idempotent) and seals. *)
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "out.bin" in
      let v =
        with_inject
          (fun ~op ~path:_ ~attempt ->
            if op = "test-seal" && attempt = 0 then
              raise (Unix.Unix_error (Unix.EIO, "open", path)))
          (fun () ->
            Durable.replace ~op:"test-seal" ~path (fun oc ->
                output_string oc "sealed";
                7))
      in
      Alcotest.(check int) "callback result" 7 v;
      Alcotest.(check string) "sealed despite EIO" "sealed" (read_all path))

(* -- fsck corruption matrix -------------------------------------------------- *)

let write_columnar path batches =
  let oc = open_out_bin path in
  List.iter
    (fun (version, b) -> ignore (Segment.write_batch ~version oc b))
    batches;
  close_out oc

let two_segment_file dir =
  let path = Filename.concat dir "trace.dfsc" in
  let b1 = Record_batch.of_list (records 10) in
  let b2 =
    Record_batch.of_list (List.init 8 (fun i -> nth_record (100 + i)))
  in
  write_columnar path [ (2, b1); (2, b2) ];
  (path, Segment.segment_bytes ~count:10)

let test_fsck_clean_all_formats () =
  with_tmpdir (fun dir ->
      let columnar = Filename.concat dir "a.dfsc" in
      write_columnar columnar [ (2, Record_batch.of_list (records 20)) ];
      let binary = Filename.concat dir "b.dfsb" in
      Writer.with_file ~format:Writer.Binary binary (fun w ->
          List.iter (Writer.write w) (records 20));
      let text = Filename.concat dir "c.trace" in
      Writer.with_file ~format:Writer.Text text (fun w ->
          List.iter (Writer.write w) (records 20));
      let verdicts = Fsck.check_paths [ dir ] in
      Alcotest.(check int) "three files" 3 (List.length verdicts);
      List.iter
        (fun v ->
          Alcotest.(check string)
            (v.Fsck.path ^ " clean")
            "ok"
            (Fsck.status_to_string v.Fsck.status);
          Alcotest.(check int) (v.Fsck.path ^ " records") 20 v.Fsck.records)
        verdicts;
      Alcotest.(check int) "exit 0" 0 (Fsck.exit_code verdicts))

let test_fsck_column_flip_and_repair () =
  with_tmpdir (fun dir ->
      let path, seg1 = two_segment_file dir in
      (* Flip a byte in the times column of the second segment. *)
      poke path (seg1 + Segment.header_bytes + 3) '\xA5';
      let v = Fsck.check_file path in
      Alcotest.(check string) "corrupt" "corrupt"
        (Fsck.status_to_string v.Fsck.status);
      Alcotest.(check int) "first segment survives" 10 v.Fsck.records;
      Alcotest.(check int) "valid prefix is segment 1" seg1 v.Fsck.valid_bytes;
      (match v.Fsck.reason with
      | Some r ->
        Alcotest.(check bool) "reason names the column" true
          (let needle = "checksum mismatch in column" in
           let rec has i =
             i + String.length needle <= String.length r
             && (String.sub r i (String.length needle) = needle || has (i + 1))
           in
           has 0)
      | None -> Alcotest.fail "expected a reason");
      (* Salvage readers keep the same prefix the verdict reports. *)
      let detected = Corruption.detected () in
      let b = batch_of_file_exn ~on_corruption:Corruption.Salvage path in
      Alcotest.(check int) "salvage reads the prefix" 10
        (Record_batch.length b);
      Alcotest.(check bool) "corruption counted" true
        (Corruption.detected () > detected);
      (* Repair truncates to the sealed prefix; a second pass is clean. *)
      let v = Fsck.check_file ~repair:true path in
      Alcotest.(check string) "repaired" "repaired"
        (Fsck.status_to_string v.Fsck.status);
      Alcotest.(check int) "exit 1 even when repaired" 1 (Fsck.exit_code [ v ]);
      let v = Fsck.check_file path in
      Alcotest.(check string) "clean after repair" "ok"
        (Fsck.status_to_string v.Fsck.status);
      Alcotest.(check int) "prefix records" 10 v.Fsck.records;
      Alcotest.(check int) "truncated to prefix" seg1 v.Fsck.total_bytes)

let test_fsck_header_flip_rewrites_empty () =
  with_tmpdir (fun dir ->
      let path, _ = two_segment_file dir in
      (* Damage the first segment's header (a reserved byte, covered by
         the header checksum): nothing is salvageable. *)
      poke path 100 '\x7F';
      let v = Fsck.check_file ~repair:true path in
      Alcotest.(check string) "repaired" "repaired"
        (Fsck.status_to_string v.Fsck.status);
      Alcotest.(check int) "nothing salvaged" 0 v.Fsck.records;
      let v = Fsck.check_file path in
      Alcotest.(check string) "empty segment is clean" "ok"
        (Fsck.status_to_string v.Fsck.status);
      Alcotest.(check int) "still sniffs columnar"
        (Segment.segment_bytes ~count:0)
        v.Fsck.total_bytes)

let test_fsck_truncation_keeps_sealed_prefix () =
  with_tmpdir (fun dir ->
      let path, seg1 = two_segment_file dir in
      Unix.truncate path (seg1 + 50);
      let v = Fsck.check_file ~repair:true path in
      Alcotest.(check string) "repaired" "repaired"
        (Fsck.status_to_string v.Fsck.status);
      Alcotest.(check int) "sealed prefix kept" 10 v.Fsck.records;
      Alcotest.(check int) "truncated to the boundary" seg1 v.Fsck.total_bytes;
      let b = batch_of_file_exn path in
      Alcotest.(check int) "readable after repair" 10 (Record_batch.length b))

let test_fsck_v1_and_mixed_versions () =
  with_tmpdir (fun dir ->
      let v1 = Filename.concat dir "v1.dfsc" in
      write_columnar v1 [ (1, Record_batch.of_list (records 12)) ];
      let v = Fsck.check_file v1 in
      Alcotest.(check string) "v1 clean" "ok"
        (Fsck.status_to_string v.Fsck.status);
      Alcotest.(check int) "v1 records" 12 v.Fsck.records;
      let mixed = Filename.concat dir "mixed.dfsc" in
      write_columnar mixed
        [
          (2, Record_batch.of_list (records 5));
          (1, Record_batch.of_list (records 6));
          (2, Record_batch.of_list (records 7));
        ];
      let v = Fsck.check_file mixed in
      Alcotest.(check string) "mixed clean" "ok"
        (Fsck.status_to_string v.Fsck.status);
      Alcotest.(check int) "mixed records" 18 v.Fsck.records)

let test_fsck_binary_truncation () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "t.dfsb" in
      Writer.with_file ~format:Writer.Binary path (fun w ->
          List.iter (Writer.write w) (records 50));
      let full = (Unix.stat path).Unix.st_size in
      Unix.truncate path (full - 3);
      let v = Fsck.check_file ~repair:true path in
      Alcotest.(check string) "repaired" "repaired"
        (Fsck.status_to_string v.Fsck.status);
      Alcotest.(check bool) "most records kept" true
        (v.Fsck.records >= 40 && v.Fsck.records < 50);
      let v' = Fsck.check_file path in
      Alcotest.(check string) "clean after repair" "ok"
        (Fsck.status_to_string v'.Fsck.status);
      Alcotest.(check int) "stable record count" v.Fsck.records v'.Fsck.records)

let test_fsck_text_bad_line () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "t.trace" in
      Writer.with_file ~format:Writer.Text path (fun w ->
          List.iter (Writer.write w) (records 10));
      let s = read_all path in
      (* Damage the first byte of the third line (header + record + X). *)
      let nl1 = String.index s '\n' in
      let nl2 = String.index_from s (nl1 + 1) '\n' in
      poke path (nl2 + 1) '\xFF';
      let v = Fsck.check_file path in
      Alcotest.(check string) "corrupt" "corrupt"
        (Fsck.status_to_string v.Fsck.status);
      Alcotest.(check int) "one record before the damage" 1 v.Fsck.records;
      let v = Fsck.check_file ~repair:true path in
      Alcotest.(check string) "repaired" "repaired"
        (Fsck.status_to_string v.Fsck.status);
      let v = Fsck.check_file path in
      Alcotest.(check string) "clean after repair" "ok"
        (Fsck.status_to_string v.Fsck.status);
      Alcotest.(check int) "prefix kept" 1 v.Fsck.records)

let test_fsck_orphan_tmp_and_unknown () =
  with_tmpdir (fun dir ->
      let orphan = Filename.concat dir "seg-000003.dfsc.tmp" in
      write_all orphan "half-written garbage";
      let junk = Filename.concat dir "junk.trace" in
      write_all junk "hello, this is not a trace\n";
      let verdicts = Fsck.check_paths ~repair:true [ dir ] in
      Alcotest.(check int) "both seen" 2 (List.length verdicts);
      let find fmt =
        List.find (fun v -> v.Fsck.format = fmt) verdicts
      in
      Alcotest.(check string) "orphan removed" "repaired"
        (Fsck.status_to_string (find "tmp").Fsck.status);
      Alcotest.(check bool) "orphan gone" false (Sys.file_exists orphan);
      Alcotest.(check string) "unknown reported" "unknown"
        (Fsck.status_to_string (find "unknown").Fsck.status);
      Alcotest.(check string) "unknown never touched"
        "hello, this is not a trace\n" (read_all junk);
      Alcotest.(check int) "exit 1" 1 (Fsck.exit_code verdicts))

let test_fsck_exit_codes () =
  with_tmpdir (fun dir ->
      let clean = Filename.concat dir "ok.dfsc" in
      write_columnar clean [ (2, Record_batch.of_list (records 3)) ];
      let ok = Fsck.check_file clean in
      Alcotest.(check int) "all clean: 0" 0 (Fsck.exit_code [ ok ]);
      let missing = Fsck.check_file (Filename.concat dir "absent.dfsc") in
      Alcotest.(check string) "missing is an I/O error" "error"
        (Fsck.status_to_string missing.Fsck.status);
      Alcotest.(check int) "I/O error dominates: 2" 2
        (Fsck.exit_code [ ok; missing ]))

(* -- salvage-prefix properties ------------------------------------------------ *)

let gen_trace =
  QCheck.Gen.(
    map
      (fun (n, salt) -> List.init n (fun i -> nth_record ((salt * 131) + i)))
      (pair (int_bound 120) (int_bound 1000)))

let encode_segments rs =
  let buf = Buffer.create 4096 in
  let rec chunks = function
    | [] -> ()
    | rs ->
      let n = min 37 (List.length rs) in
      let batch, rest =
        (List.filteri (fun i _ -> i < n) rs, List.filteri (fun i _ -> i >= n) rs)
      in
      Buffer.add_string buf (Segment.encode_batch (Record_batch.of_list batch));
      chunks rest
  in
  chunks rs;
  Buffer.contents buf

let scan_records (scan : Segment.scan) =
  List.concat_map
    (fun b -> List.init (Record_batch.length b) (Record_batch.get b))
    scan.Segment.batches

let is_prefix_of xs ys =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> Record.equal x y && go (xs, ys)
  in
  go (xs, ys)

(* Truncating a columnar image anywhere salvages a whole-segment prefix,
   and the salvaged prefix re-scans clean. *)
let prop_salvage_prefix_on_truncation =
  QCheck.Test.make ~name:"salvage yields a clean record prefix (truncation)"
    ~count:150
    QCheck.(make Gen.(pair gen_trace (int_bound 10_000)))
    (fun (rs, cut0) ->
      let s = encode_segments rs in
      let cut = min cut0 (String.length s) in
      let scan = Segment.scan_string (String.sub s 0 cut) in
      let salvaged = scan_records scan in
      scan.Segment.valid_bytes <= cut
      && is_prefix_of salvaged rs
      && (cut = String.length s || List.length salvaged <= List.length rs)
      &&
      let again =
        Segment.scan_string (String.sub s 0 scan.Segment.valid_bytes)
      in
      again.Segment.error = None && again.Segment.records = scan.Segment.records)

(* A single flipped byte anywhere never makes salvage invent records:
   whatever survives is still a prefix of the original trace. *)
let prop_salvage_prefix_on_bitflip =
  QCheck.Test.make ~name:"salvage yields a record prefix (byte flip)"
    ~count:150
    QCheck.(make Gen.(pair gen_trace (int_bound 100_000)))
    (fun (rs, pos0) ->
      let s = encode_segments rs in
      if String.length s = 0 then true
      else begin
        let pos = pos0 mod String.length s in
        let b = Bytes.of_string s in
        Bytes.set b pos (Char.chr (Char.code s.[pos] lxor 0x5A));
        let scan = Segment.scan_string (Bytes.to_string b) in
        is_prefix_of (scan_records scan) rs
      end)

(* -- chaos: SIGKILL mid-spill ------------------------------------------------- *)

let chaos_records = 120_000

let chaos_chunk = 4096

let emit_all dir =
  let sink =
    Sink.create ~chunk_records:chaos_chunk ~spill:{ Sink.dir; name = "chaos" }
      ()
  in
  for i = 0 to chaos_records - 1 do
    Sink.emit sink (nth_record i)
  done;
  ignore (Sink.close sink)

(* Forking is off-limits once earlier suites have spawned domains
   (OCaml 5), so the chaos child is this very test binary re-executed
   with [DFS_CRASH_CHILD_DIR] set: {!maybe_run_child} (called first
   thing in [test_main]) emits the spill run and exits before alcotest
   starts. *)
let child_env_var = "DFS_CRASH_CHILD_DIR"

let maybe_run_child () =
  match Sys.getenv_opt child_env_var with
  | Some dir ->
    emit_all dir;
    exit 0
  | None -> ()

let dfsc_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".dfsc")
  |> List.sort String.compare

let test_chaos_sigkill_salvage () =
  with_tmpdir (fun refdir ->
      with_tmpdir (fun killdir ->
          emit_all refdir;
          let reference = dfsc_files refdir in
          Alcotest.(check bool) "reference run spilled" true
            (List.length reference > 2);
          let seed =
            (Unix.getpid () * 7919) lxor int_of_float (Unix.gettimeofday () *. 1e3)
          in
          Printf.printf "chaos harness seed: %d\n%!" seed;
          let st = Random.State.make [| seed |] in
          let delay = 0.002 +. Random.State.float st 0.040 in
          let env =
            Array.append (Unix.environment ())
              [| child_env_var ^ "=" ^ killdir |]
          in
          let pid =
            Unix.create_process_env Sys.executable_name
              [| Sys.executable_name |] env Unix.stdin Unix.stdout Unix.stderr
          in
          Unix.sleepf delay;
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          (* fsck --repair: salvages the sealed prefix, removes any
             orphan tmp from a seal in flight. *)
          let verdicts = Fsck.check_paths ~repair:true [ killdir ] in
          Alcotest.(check bool) "fsck never hits an I/O error" true
            (Fsck.exit_code verdicts <= 1);
          let verdicts = Fsck.check_paths [ killdir ] in
          Alcotest.(check int) "clean after repair" 0
            (Fsck.exit_code verdicts);
          (* Every surviving chunk is bit-identical to the same chunk of
             the uninterrupted run: atomic sealing means there is no
             third state. *)
          let survived = dfsc_files killdir in
          Alcotest.(check bool) "survivors are a subset" true
            (List.length survived <= List.length reference);
          List.iteri
            (fun i name ->
              Alcotest.(check string)
                (Printf.sprintf "chunk %d is a reference chunk" i)
                (List.nth reference i) name;
              Alcotest.(check bool)
                (Printf.sprintf "%s bit-identical to reference" name)
                true
                (read_all (Filename.concat killdir name)
                = read_all (Filename.concat refdir name)))
            survived;
          (* And the salvaged prefix analyzes: every record matches the
             reference stream in order. *)
          let salvaged = ref 0 in
          List.iter
            (fun name ->
              let b = batch_of_file_exn (Filename.concat killdir name) in
              for j = 0 to Record_batch.length b - 1 do
                let want = nth_record (!salvaged + j) in
                if not (Record.equal want (Record_batch.get b j)) then
                  Alcotest.failf "record %d diverges from reference"
                    (!salvaged + j)
              done;
              salvaged := !salvaged + Record_batch.length b)
            survived;
          Alcotest.(check bool) "salvaged count lands on a seal boundary"
            true
            (!salvaged mod chaos_chunk = 0 || !salvaged = chaos_records)))

let suite =
  [
    Alcotest.test_case "io_retry transient then success" `Quick
      test_io_retry_transient_then_success;
    Alcotest.test_case "io_retry gives up" `Quick test_io_retry_gives_up;
    Alcotest.test_case "io_retry permanent immediate" `Quick
      test_io_retry_permanent_is_immediate;
    Alcotest.test_case "durable replace atomic" `Quick
      test_durable_replace_atomic;
    Alcotest.test_case "durable replace failure leaves old" `Quick
      test_durable_replace_failure_leaves_old;
    Alcotest.test_case "durable replace retries transient" `Quick
      test_durable_replace_retries_transient;
    Alcotest.test_case "fsck clean all formats" `Quick
      test_fsck_clean_all_formats;
    Alcotest.test_case "fsck column flip and repair" `Quick
      test_fsck_column_flip_and_repair;
    Alcotest.test_case "fsck header flip rewrites empty" `Quick
      test_fsck_header_flip_rewrites_empty;
    Alcotest.test_case "fsck truncation keeps sealed prefix" `Quick
      test_fsck_truncation_keeps_sealed_prefix;
    Alcotest.test_case "fsck v1 and mixed versions" `Quick
      test_fsck_v1_and_mixed_versions;
    Alcotest.test_case "fsck binary truncation" `Quick
      test_fsck_binary_truncation;
    Alcotest.test_case "fsck text bad line" `Quick test_fsck_text_bad_line;
    Alcotest.test_case "fsck orphan tmp and unknown" `Quick
      test_fsck_orphan_tmp_and_unknown;
    Alcotest.test_case "fsck exit codes" `Quick test_fsck_exit_codes;
    Alcotest.test_case "chaos sigkill salvage" `Quick
      test_chaos_sigkill_salvage;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_salvage_prefix_on_truncation; prop_salvage_prefix_on_bitflip ]
