(* Tests for Dfs_trace: ids, records, codec, writer/reader, merge, filter. *)

open Dfs_trace

let mk ?(time = 0.0) ?(server = 0) ?(client = 0) ?(user = 0) ?(pid = 0)
    ?(migrated = false) ?(file = 0) kind =
  {
    Record.time;
    server = Ids.Server.of_int server;
    client = Ids.Client.of_int client;
    user = Ids.User.of_int user;
    pid = Ids.Process.of_int pid;
    migrated;
    file = Ids.File.of_int file;
    kind;
  }

let sample_kinds =
  [
    Record.Open
      { mode = Record.Read_only; created = false; is_dir = false; size = 123; start_pos = 0 };
    Record.Open
      { mode = Record.Write_only; created = true; is_dir = false; size = 0; start_pos = 0 };
    Record.Open
      { mode = Record.Read_write; created = false; is_dir = true; size = 640; start_pos = 64 };
    Record.Close { size = 1000; final_pos = 1000; bytes_read = 500; bytes_written = 500 };
    Record.Reposition { pos_before = 10; pos_after = 999 };
    Record.Delete { size = 42; is_dir = false };
    Record.Delete { size = 0; is_dir = true };
    Record.Truncate { old_size = 4096 };
    Record.Dir_read { bytes = 320 };
    Record.Shared_read { offset = 4096; length = 256 };
    Record.Shared_write { offset = 0; length = 64 };
  ]

(* -- ids -------------------------------------------------------------------- *)

let test_ids_roundtrip () =
  let u = Ids.User.of_int 7 in
  Alcotest.(check int) "roundtrip" 7 (Ids.User.to_int u);
  Alcotest.(check bool) "equal" true (Ids.User.equal u (Ids.User.of_int 7));
  Alcotest.(check bool) "not equal" false (Ids.User.equal u (Ids.User.of_int 8))

let test_ids_collections () =
  let s = Ids.File.Set.of_list (List.map Ids.File.of_int [ 1; 2; 2; 3 ]) in
  Alcotest.(check int) "set dedups" 3 (Ids.File.Set.cardinal s);
  let tbl = Ids.Client.Tbl.create 4 in
  Ids.Client.Tbl.replace tbl (Ids.Client.of_int 5) "x";
  Alcotest.(check (option string)) "tbl find" (Some "x")
    (Ids.Client.Tbl.find_opt tbl (Ids.Client.of_int 5))

(* -- record ----------------------------------------------------------------- *)

let test_record_compare_time () =
  let a = mk ~time:1.0 (Record.Dir_read { bytes = 1 }) in
  let b = mk ~time:2.0 (Record.Dir_read { bytes = 1 }) in
  Alcotest.(check bool) "a before b" true (Record.compare_time a b < 0);
  let c = mk ~time:1.0 ~server:1 (Record.Dir_read { bytes = 1 }) in
  Alcotest.(check bool) "tie broken by server" true (Record.compare_time a c < 0)

let test_record_kind_names () =
  let names = List.map Record.kind_name sample_kinds in
  Alcotest.(check int) "all named" (List.length sample_kinds)
    (List.length (List.filter (fun n -> String.length n > 0) names))

(* -- codec ------------------------------------------------------------------ *)

let test_codec_roundtrip_all_kinds () =
  List.iteri
    (fun i kind ->
      let r =
        mk ~time:(float_of_int i *. 1.5) ~server:(i mod 4) ~client:i ~user:(i * 2)
          ~pid:(i * 3) ~migrated:(i mod 2 = 0) ~file:(i * 10) kind
      in
      match Codec.decode (Codec.encode r) with
      | Ok r' -> Alcotest.(check bool) "roundtrip" true (Record.equal r r')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    sample_kinds

let test_codec_bad_input () =
  let bad l =
    match Codec.decode l with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "garbage" true (bad "hello world");
  Alcotest.(check bool) "bad kind" true
    (bad "1.0\t0\t0\t0\t0\t0\t0\tnope\t1\t2");
  Alcotest.(check bool) "bad int" true
    (bad "1.0\t0\t0\t0\t0\t0\t0\tdirread\txyz");
  Alcotest.(check bool) "wrong field count" true
    (bad "1.0\t0\t0\t0\t0\t0\t0\tseek\t5")

(* -- writer / reader ----------------------------------------------------------- *)

let records_for_io =
  List.mapi (fun i kind -> mk ~time:(float_of_int i) ~file:i kind) sample_kinds

let test_writer_reader_buffer () =
  let buf = Buffer.create 256 in
  let w = Writer.to_buffer buf in
  List.iter (Writer.write w) records_for_io;
  Alcotest.(check int) "count" (List.length records_for_io) (Writer.count w);
  match Reader.of_string (Buffer.contents buf) with
  | Ok rs ->
    Alcotest.(check int) "all read back" (List.length records_for_io)
      (List.length rs);
    List.iter2
      (fun a b -> Alcotest.(check bool) "record equal" true (Record.equal a b))
      records_for_io rs
  | Error e -> Alcotest.failf "reader failed: %s" e

let test_reader_rejects_bad_header () =
  match Reader.of_string "#not-a-trace\n" with
  | Ok _ -> Alcotest.fail "accepted bad header"
  | Error e ->
    Alcotest.(check bool) "mentions header" true
      (String.length e > 0)

let test_reader_reports_line () =
  let buf = Buffer.create 64 in
  let w = Writer.to_buffer buf in
  Writer.write w (List.hd records_for_io);
  Buffer.add_string buf "garbage line\n";
  match Reader.of_string (Buffer.contents buf) with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error e ->
    Alcotest.(check bool) "line number present" true
      (String.length e >= 6 && String.sub e 0 4 = "line")

let test_file_roundtrip () =
  let path = Filename.temp_file "dfs" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Writer.with_file path (fun w -> List.iter (Writer.write w) records_for_io);
      match Reader.of_file path with
      | Ok rs ->
        Alcotest.(check int) "file roundtrip" (List.length records_for_io)
          (List.length rs)
      | Error e -> Alcotest.failf "read back failed: %s" e)

let test_fold_file_streaming () =
  let path = Filename.temp_file "dfs" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Writer.with_file path (fun w -> List.iter (Writer.write w) records_for_io);
      match Reader.fold_file path ~init:0 ~f:(fun acc _ -> acc + 1) with
      | Ok n -> Alcotest.(check int) "fold count" (List.length records_for_io) n
      | Error e -> Alcotest.failf "fold failed: %s" e)

(* -- merge ----------------------------------------------------------------------- *)

let test_merge_two_streams () =
  let s0 = [ mk ~time:1.0 ~server:0 (Record.Dir_read { bytes = 1 });
             mk ~time:3.0 ~server:0 (Record.Dir_read { bytes = 1 }) ] in
  let s1 = [ mk ~time:2.0 ~server:1 (Record.Dir_read { bytes = 1 });
             mk ~time:4.0 ~server:1 (Record.Dir_read { bytes = 1 }) ] in
  let merged = Merge.merge [ s0; s1 ] in
  Alcotest.(check (list (float 0.0))) "interleaved"
    [ 1.0; 2.0; 3.0; 4.0 ]
    (List.map (fun (r : Record.t) -> r.time) merged);
  Alcotest.(check bool) "sorted" true (Merge.is_sorted merged)

let test_merge_tie_break () =
  let a = mk ~time:1.0 ~server:1 (Record.Dir_read { bytes = 1 }) in
  let b = mk ~time:1.0 ~server:0 (Record.Dir_read { bytes = 2 }) in
  let merged = Merge.merge [ [ a ]; [ b ] ] in
  (* server 0 first on equal timestamps *)
  match merged with
  | [ first; second ] ->
    Alcotest.(check int) "server 0 first" 0 (Ids.Server.to_int first.server);
    Alcotest.(check int) "server 1 second" 1 (Ids.Server.to_int second.server)
  | _ -> Alcotest.fail "wrong length"

let test_merge_empty_streams () =
  Alcotest.(check int) "no streams" 0 (List.length (Merge.merge []));
  Alcotest.(check int) "empty streams" 0 (List.length (Merge.merge [ []; [] ]))

let test_scrub () =
  let daemon = 9000 in
  let records =
    [
      mk ~time:1.0 ~user:1 (Record.Dir_read { bytes = 1 });
      mk ~time:2.0 ~user:daemon (Record.Dir_read { bytes = 1 });
      mk ~time:3.0 ~user:2 (Record.Dir_read { bytes = 1 });
    ]
  in
  let scrubbed =
    Merge.scrub
      ~self_users:(Ids.User.Set.singleton (Ids.User.of_int daemon))
      records
  in
  Alcotest.(check int) "daemon removed" 2 (List.length scrubbed);
  Alcotest.(check bool) "others kept" true
    (List.for_all
       (fun (r : Record.t) -> Ids.User.to_int r.user <> daemon)
       scrubbed)

(* -- streaming merge over chunks ------------------------------------------------- *)

(* Rebuild [records] as a chunk stream with the given chunk size, so the
   merge cursors have to cross chunk boundaries mid-stream. *)
let chunks_of ?chunk_records ?spill records =
  let sink = Sink.create ?chunk_records ?spill () in
  List.iter (Sink.emit sink) records;
  Sink.close sink

let check_same_records msg expected actual =
  Alcotest.(check int) (msg ^ ": length") (List.length expected)
    (List.length actual);
  List.iteri
    (fun i (e, a) ->
      if not (Record.equal e a) then
        Alcotest.failf "%s: record %d differs" msg i)
    (List.combine expected actual)

let test_merge_chunks_empty () =
  Alcotest.(check int) "no sources" 0 (Sink.length (Merge.merge_chunks []));
  Alcotest.(check int) "empty sources" 0
    (Sink.length (Merge.merge_chunks [ chunks_of []; chunks_of [] ]));
  (* one empty source among non-empty ones must not derail the merge *)
  let live = [ mk ~time:1.0 (Record.Dir_read { bytes = 1 }) ] in
  check_same_records "empty among live" live
    (Sink.to_records (Merge.merge_chunks [ chunks_of []; chunks_of live ]))

let merge_both_ways ~chunk_records sources =
  let expected = Merge.merge sources in
  let streamed =
    Merge.merge_chunks ~chunk_records
      (List.map (chunks_of ~chunk_records) sources)
  in
  (expected, Sink.to_records streamed)

let interleaved_source server =
  List.init 10 (fun i ->
      mk ~time:(float_of_int ((i * 2) + server)) ~server
        (Record.Dir_read { bytes = i }))

let test_merge_chunks_boundary_straddling () =
  (* chunk size 3 against 10-record sources: cursor advancement crosses a
     chunk boundary inside every source and inside the output sink. *)
  let sources = List.map interleaved_source [ 0; 1; 2 ] in
  let expected, streamed = merge_both_ways ~chunk_records:3 sources in
  check_same_records "chunk_records=3" expected streamed

let test_merge_chunks_single_record_chunks () =
  (* chunk_records = 1: every record is its own chunk — the degenerate
     case where every advance loads a fresh chunk. *)
  let sources = List.map interleaved_source [ 0; 1 ] in
  let expected, streamed = merge_both_ways ~chunk_records:1 sources in
  check_same_records "chunk_records=1" expected streamed

let test_merge_chunks_scrub () =
  let daemon = 9000 in
  let src server =
    [
      mk ~time:(float_of_int server) ~server ~user:1
        (Record.Dir_read { bytes = 1 });
      mk ~time:(float_of_int (server + 10)) ~server ~user:daemon
        (Record.Dir_read { bytes = 2 });
    ]
  in
  let sources = [ src 0; src 1 ] in
  let self_users = Ids.User.Set.singleton (Ids.User.of_int daemon) in
  let expected = Merge.scrub ~self_users (Merge.merge sources) in
  let streamed =
    Merge.merge_chunks ~chunk_records:2 ~scrub:self_users
      (List.map (chunks_of ~chunk_records:2) sources)
  in
  check_same_records "scrub while streaming" expected
    (Sink.to_records streamed)

let temp_spill_dir () =
  (* temp_file gives us a unique path; the sink creates the directory. *)
  let f = Filename.temp_file "dfs-test-spill" "" in
  Sys.remove f;
  f

let test_merge_chunks_spill_roundtrip () =
  let dir = temp_spill_dir () in
  let sources = List.map interleaved_source [ 0; 1 ] in
  let chunked =
    List.mapi
      (fun i s ->
        chunks_of ~chunk_records:4
          ~spill:{ Sink.dir; name = Printf.sprintf "src%d" i }
          s)
      sources
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) "source spilled" true (Sink.spilled_count c > 0))
    chunked;
  let merged =
    Merge.merge_chunks ~chunk_records:4
      ~spill:{ Sink.dir; name = "merged" }
      chunked
  in
  Alcotest.(check bool) "output spilled" true (Sink.spilled_count merged > 0);
  let expected = Merge.merge sources in
  check_same_records "spill roundtrip" expected (Sink.to_records merged);
  (* replayable: a second traversal re-reads the on-disk segments *)
  check_same_records "second traversal" expected (Sink.to_records merged);
  List.iter Sink.discard chunked;
  Sink.discard merged;
  Alcotest.(check (list string)) "segments deleted" []
    (Array.to_list (Sys.readdir dir));
  Sys.rmdir dir

(* -- filter ---------------------------------------------------------------------- *)

let test_filter_by_time () =
  let rs =
    List.map (fun t -> mk ~time:t (Record.Dir_read { bytes = 1 })) [ 0.0; 1.0; 2.0; 3.0 ]
  in
  Alcotest.(check int) "half-open window" 2
    (List.length (Filter.by_time ~lo:1.0 ~hi:3.0 rs))

let test_filter_users () =
  let rs = List.map (fun u -> mk ~user:u (Record.Dir_read { bytes = 1 })) [ 1; 2; 3 ] in
  let set = Ids.User.Set.singleton (Ids.User.of_int 2) in
  Alcotest.(check int) "by_users" 1 (List.length (Filter.by_users set rs));
  Alcotest.(check int) "excluding" 2 (List.length (Filter.excluding_users set rs))

let test_filter_migrated () =
  let rs =
    [ mk ~migrated:true (Record.Dir_read { bytes = 1 });
      mk ~migrated:false (Record.Dir_read { bytes = 1 }) ]
  in
  Alcotest.(check int) "migrated only" 1 (List.length (Filter.migrated_only rs))

let test_filter_files_only () =
  let dir_open =
    mk ~time:0.0 ~file:1
      (Record.Open
         { mode = Record.Read_only; created = false; is_dir = true; size = 64; start_pos = 0 })
  in
  let dir_readrec = mk ~time:0.5 ~file:1 (Record.Dir_read { bytes = 64 }) in
  let dir_close =
    mk ~time:1.0 ~file:1
      (Record.Close { size = 64; final_pos = 64; bytes_read = 64; bytes_written = 0 })
  in
  let file_open =
    mk ~time:2.0 ~file:2
      (Record.Open
         { mode = Record.Read_only; created = false; is_dir = false; size = 10; start_pos = 0 })
  in
  let file_close =
    mk ~time:3.0 ~file:2
      (Record.Close { size = 10; final_pos = 10; bytes_read = 10; bytes_written = 0 })
  in
  let dir_delete = mk ~time:4.0 ~file:1 (Record.Delete { size = 0; is_dir = true }) in
  let kept =
    Filter.files_only
      [ dir_open; dir_readrec; dir_close; file_open; file_close; dir_delete ]
  in
  Alcotest.(check int) "only the file open/close survive" 2 (List.length kept);
  Alcotest.(check bool) "all on file 2" true
    (List.for_all (fun (r : Record.t) -> Ids.File.to_int r.file = 2) kept)

let test_filter_duration () =
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Filter.duration []);
  let rs =
    List.map (fun t -> mk ~time:t (Record.Dir_read { bytes = 1 })) [ 1.0; 2.0; 5.0 ]
  in
  Alcotest.(check (float 1e-9)) "span" 4.0 (Filter.duration rs)

(* -- binary codec ------------------------------------------------------------------ *)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let encode_trace ~format records =
  let buf = Buffer.create 4096 in
  let w = Writer.to_buffer ~format buf in
  List.iter (Writer.write w) records;
  Writer.flush w;
  Buffer.contents buf

let decode_trace s =
  match Reader.of_string s with
  | Ok rs -> rs
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_binary_roundtrip_all_kinds () =
  let back = decode_trace (encode_trace ~format:Writer.Binary records_for_io) in
  Alcotest.(check int) "count" (List.length records_for_io) (List.length back);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "record equal (incl. exact time)" true
        (Record.equal a b))
    records_for_io back

let test_binary_roundtrip_presets () =
  (* Round-trip the merged trace of all eight presets through both codecs;
     the decoded batches must agree record for record, and the analyses on
     them must be indistinguishable. *)
  List.iter
    (fun n ->
      let p = Dfs_workload.Presets.scaled (Dfs_workload.Presets.trace n) ~factor:0.002 in
      let cluster, _ = Dfs_workload.Presets.run p in
      let records = Dfs_sim.Cluster.merged_trace cluster in
      let text = encode_trace ~format:Writer.Text records in
      let binary = encode_trace ~format:Writer.Binary records in
      Alcotest.(check bool)
        (Printf.sprintf "trace%d: binary is smaller" n)
        true
        (String.length binary < String.length text);
      (* the binary codec must reproduce the raw simulated records
         bit-for-bit, times included *)
      let from_binary = decode_trace binary in
      Alcotest.(check bool)
        (Printf.sprintf "trace%d: binary roundtrip exact" n)
        true
        (List.length from_binary = List.length records
        && List.for_all2 Record.equal records from_binary);
      (* once times have gone through the text codec's %.6f quantization,
         the two formats carry identical data and every analysis agrees *)
      let quantized = decode_trace text in
      let requantized = decode_trace (encode_trace ~format:Writer.Binary quantized) in
      let bt =
        match Reader.batch_of_string text with
        | Ok b -> b
        | Error e -> Alcotest.failf "trace%d text: %s" n e
      in
      Alcotest.(check bool)
        (Printf.sprintf "trace%d: batches equal across formats" n)
        true
        (Record_batch.equal bt (Record_batch.of_list requantized));
      let st = Dfs_analysis.Trace_stats.of_batch bt
      and sb =
        Dfs_analysis.Trace_stats.of_batch (Record_batch.of_list requantized)
      in
      Alcotest.(check bool)
        (Printf.sprintf "trace%d: analysis equal across formats" n)
        true (st = sb))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_binary_rejects_truncation () =
  let s = encode_trace ~format:Writer.Binary records_for_io in
  List.iter
    (fun k ->
      match Reader.of_string (String.sub s 0 k) with
      | Ok _ -> Alcotest.failf "accepted %d-byte prefix" k
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "prefix %d reports truncation" k)
          true
          (contains_sub ~sub:"truncated" e
          || contains_sub ~sub:"malformed" e))
    [ 7; 10; String.length s - 1 ]

let test_binary_rejects_bad_magic () =
  let s = encode_trace ~format:Writer.Binary records_for_io in
  (* bump the version byte: not recognized as binary v1, not a text header *)
  let bad = Bytes.of_string s in
  Bytes.set bad 5 '\x02';
  (match Binary_codec.decode_string (Bytes.to_string bad) with
  | Ok _ -> Alcotest.fail "accepted bad version byte"
  | Error e ->
    Alcotest.(check bool) "mentions magic" true
      (contains_sub ~sub:"magic" e));
  match Reader.of_string (Bytes.to_string bad) with
  | Ok _ -> Alcotest.fail "reader accepted bad version byte"
  | Error _ -> ()

let test_binary_rejects_malformed_tag () =
  (* 0xFF sets flag bits no kind allows; 0x30 is an open with mode bits 3 *)
  List.iter
    (fun tag ->
      let s = Binary_codec.magic ^ String.make 1 (Char.chr tag) in
      match Binary_codec.decode_string s with
      | Ok _ -> Alcotest.failf "accepted tag 0x%02x" tag
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "tag 0x%02x reports malformed" tag)
          true
          (contains_sub ~sub:"malformed tag" e))
    [ 0xFF; 0x30 ]

(* -- columnar segments --------------------------------------------------------- *)

let with_mmap enabled f =
  let prev = Sys.getenv_opt "DFS_MMAP" in
  Unix.putenv "DFS_MMAP" (if enabled then "1" else "0");
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "DFS_MMAP" (Option.value ~default:"" prev))
    f

let write_segment_file records =
  let path = Filename.temp_file "dfs" ".dfsc" in
  let oc = open_out_bin path in
  ignore (Segment.write_batch oc (Record_batch.of_list records));
  close_out oc;
  path

let test_segment_writer_roundtrip () =
  (* the columnar writer format: exact on any float time (raw IEEE-754
     bits, like the binary codec) *)
  let s = encode_trace ~format:Writer.Columnar records_for_io in
  Alcotest.(check bool) "sniffs as a segment file" true (Segment.is_segment s);
  let back = decode_trace s in
  Alcotest.(check int) "count" (List.length records_for_io) (List.length back);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "record equal (incl. exact time)" true
        (Record.equal a b))
    records_for_io back;
  (* an empty columnar file is still a well-formed (empty) segment file *)
  let empty = encode_trace ~format:Writer.Columnar [] in
  Alcotest.(check bool) "empty file sniffs as segment" true
    (Segment.is_segment empty);
  Alcotest.(check int) "empty file decodes to zero records" 0
    (List.length (decode_trace empty))

let test_segment_mmap_roundtrip_presets () =
  (* Round-trip the merged trace of all eight presets through an on-disk
     segment file, once through the mmap path and once through the
     portable copy path; both must agree with the source bit-for-bit. *)
  List.iter
    (fun n ->
      let p =
        Dfs_workload.Presets.scaled (Dfs_workload.Presets.trace n) ~factor:0.002
      in
      let cluster, _ = Dfs_workload.Presets.run p in
      let records = Dfs_sim.Cluster.merged_trace cluster in
      let expected = Record_batch.of_list records in
      let path = write_segment_file records in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let read label =
            match Segment.batch_of_file path with
            | Ok b -> b
            | Error e -> Alcotest.failf "trace%d %s: %s" n label e
          in
          let mapped = with_mmap true (fun () -> read "mmap") in
          let copied = with_mmap false (fun () -> read "copy") in
          Alcotest.(check bool)
            (Printf.sprintf "trace%d: mmap read exact" n)
            true
            (Record_batch.equal expected mapped);
          Alcotest.(check bool)
            (Printf.sprintf "trace%d: copy read exact" n)
            true
            (Record_batch.equal expected copied)))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let segment_read_both_paths s =
  (* exercise the string (copy) decoder and the file reader on both
     paths; all three must agree on acceptance *)
  let path = Filename.temp_file "dfs" ".dfsc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc s;
      close_out oc;
      let of_str = Segment.batch_of_string s in
      let mapped = with_mmap true (fun () -> Segment.batch_of_file path) in
      let copied = with_mmap false (fun () -> Segment.batch_of_file path) in
      (of_str, mapped, copied))

let check_segment_rejected ~what ~needle s =
  let of_str, mapped, copied = segment_read_both_paths s in
  List.iter
    (fun (label, r) ->
      match r with
      | Ok _ -> Alcotest.failf "%s: %s accepted" what label
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s mentions %S" what label needle)
          true
          (contains_sub ~sub:needle e))
    [ ("of_string", of_str); ("mmap", mapped); ("copy", copied) ]

let test_segment_rejects_truncation () =
  let s = Segment.encode_batch (Record_batch.of_list records_for_io) in
  (* a cut inside the header and a cut inside the columns *)
  check_segment_rejected ~what:"header cut" ~needle:"truncated"
    (String.sub s 0 (Segment.header_bytes - 1));
  check_segment_rejected ~what:"column cut" ~needle:"truncated"
    (String.sub s 0 (String.length s - 1))

let test_segment_rejects_misalignment () =
  (* On v2 any poked header field trips the header checksum before the
     structural checks even run. *)
  let s = Segment.encode_batch (Record_batch.of_list records_for_io) in
  let bad = Bytes.of_string s in
  Bytes.set_int64_le bad 16 (Int64.of_int (String.length s - 3));
  check_segment_rejected ~what:"bad length v2" ~needle:"header checksum"
    (Bytes.to_string bad);
  let bad = Bytes.of_string s in
  Bytes.set_int64_le bad 8 (-1L);
  check_segment_rejected ~what:"negative count v2" ~needle:"header checksum"
    (Bytes.to_string bad);
  (* v1 has no checksums, so the same pokes must still be caught by the
     structural extent/alignment checks. *)
  let s1 = Segment.encode_batch ~version:1 (Record_batch.of_list records_for_io) in
  let bad = Bytes.of_string s1 in
  Bytes.set_int64_le bad 16 (Int64.of_int (String.length s1 - 3));
  check_segment_rejected ~what:"bad length v1" ~needle:"misaligned"
    (Bytes.to_string bad);
  let bad = Bytes.of_string s1 in
  Bytes.set_int64_le bad 8 (-1L);
  check_segment_rejected ~what:"negative count v1" ~needle:"record count"
    (Bytes.to_string bad)

let test_segment_rejects_malformed_tag () =
  let records = records_for_io in
  let n = List.length records in
  (* tags column starts at header + 44n; 0xFF sets flag bits no kind
     allows.  On v2 the column checksum catches the flip first; on v1
     the per-record tag check is the only line of defense. *)
  let s = Segment.encode_batch (Record_batch.of_list records) in
  let bad = Bytes.of_string s in
  Bytes.set bad (Segment.header_bytes + (44 * n)) '\xFF';
  check_segment_rejected ~what:"bad tag v2" ~needle:"column tags"
    (Bytes.to_string bad);
  let s1 = Segment.encode_batch ~version:1 (Record_batch.of_list records) in
  let bad = Bytes.of_string s1 in
  Bytes.set bad (Segment.header_bytes_v1 + (44 * n)) '\xFF';
  check_segment_rejected ~what:"bad tag v1" ~needle:"malformed tag"
    (Bytes.to_string bad)

(* -- properties -------------------------------------------------------------------- *)

let gen_kind =
  QCheck.Gen.oneof
    (List.map QCheck.Gen.return sample_kinds)

let gen_record =
  QCheck.Gen.(
    map2
      (fun (t, s, c) kind ->
        mk ~time:(Float.abs t) ~server:s ~client:c kind)
      (triple (float_bound_inclusive 1e6) (int_bound 3) (int_bound 50))
      gen_kind)

let gen_full_record =
  QCheck.Gen.(
    map2
      (fun (t, s, c) ((u, p, f), m, kind) ->
        mk ~time:(Float.abs t) ~server:s ~client:c ~user:u ~pid:p ~file:f
          ~migrated:m kind)
      (triple (float_bound_inclusive 1e6) (int_bound 3) (int_bound 50))
      (triple
         (triple (int_bound 9999) (int_bound 99999) (int_bound 999999))
         bool gen_kind))

let arb_record = QCheck.make gen_record
let arb_full_record = QCheck.make gen_full_record

(* The text codec's time-precision contract: times are printed with
   [%.6f], so one encode/decode quantizes the time to the nearest
   microsecond; every other field round-trips exactly. *)
let prop_codec_roundtrip =
  QCheck.Test.make ~name:"text codec roundtrip (random records)" ~count:300
    arb_full_record (fun r ->
      match Codec.decode (Codec.encode r) with
      | Ok r' ->
        (* times survive to microsecond precision... *)
        Float.abs (r'.time -. r.time) <= 5e-7
        (* ...and everything else must be untouched *)
        && Record.equal { r with time = r'.time } r'
      | Error _ -> false)

(* A time that already went through [%.6f] is a fixed point: re-encoding
   is the identity on the whole record, bit-for-bit. *)
let prop_text_codec_exact_on_quantized =
  QCheck.Test.make ~name:"text codec exact on quantized times" ~count:300
    arb_full_record (fun r ->
      let quantized =
        { r with Record.time = float_of_string (Printf.sprintf "%.6f" r.time) }
      in
      match Codec.decode (Codec.encode quantized) with
      | Ok r' -> Record.equal quantized r'
      | Error _ -> false)

(* The binary codec stores the raw IEEE-754 bits, so it is exact on ANY
   time, quantized or not. *)
let prop_binary_codec_exact =
  QCheck.Test.make ~name:"binary codec exact on random traces" ~count:100
    QCheck.(list_of_size Gen.(0 -- 40) arb_full_record)
    (fun rs ->
      (* order is preserved as written — no sort, the codec must not care *)
      let back = decode_trace (encode_trace ~format:Writer.Binary rs) in
      List.length back = List.length rs && List.for_all2 Record.equal rs back)

(* The Bigarray-backed batch must read back exactly what the boxed
   records said, through both the bounds-checked and the unsafe
   accessors — the whole point of the columnar cursor is that analyses
   can trust it record for record. *)
let prop_batch_columns_match_boxed =
  QCheck.Test.make ~name:"bigarray columns agree with boxed records"
    ~count:100
    QCheck.(list_of_size Gen.(0 -- 60) arb_full_record)
    (fun rs ->
      let b = Record_batch.of_list rs in
      Record_batch.length b = List.length rs
      && List.for_all2 Record.equal rs (Array.to_list (Record_batch.to_array b))
      && List.for_all2
           (fun (r : Record.t) i ->
             Record.equal r (Record_batch.get b i)
             && Record_batch.time b i = r.time
             && Record_batch.time b i = Record_batch.Unsafe.time b i
             && Record_batch.server b i = Ids.Server.to_int r.server
             && Record_batch.server b i = Record_batch.Unsafe.server b i
             && Record_batch.client b i = Ids.Client.to_int r.client
             && Record_batch.client b i = Record_batch.Unsafe.client b i
             && Record_batch.user b i = Ids.User.to_int r.user
             && Record_batch.user b i = Record_batch.Unsafe.user b i
             && Record_batch.pid b i = Ids.Process.to_int r.pid
             && Record_batch.pid b i = Record_batch.Unsafe.pid b i
             && Record_batch.file b i = Ids.File.to_int r.file
             && Record_batch.file b i = Record_batch.Unsafe.file b i
             && Record_batch.migrated b i = r.migrated
             && Record_batch.migrated b i = Record_batch.Unsafe.migrated b i
             && Record_batch.tag b i = Record_batch.Unsafe.tag b i
             && Record_batch.a b i = Record_batch.Unsafe.a b i
             && Record_batch.b b i = Record_batch.Unsafe.b b i
             && Record_batch.c b i = Record_batch.Unsafe.c b i
             && Record_batch.d b i = Record_batch.Unsafe.d b i)
           rs
           (List.init (List.length rs) Fun.id))

(* Segment files are exact on any payload, mmap or not. *)
let prop_segment_roundtrip_exact =
  QCheck.Test.make ~name:"segment codec exact on random traces" ~count:60
    QCheck.(list_of_size Gen.(0 -- 40) arb_full_record)
    (fun rs ->
      let s = Segment.encode_batch (Record_batch.of_list rs) in
      match Segment.batch_of_string s with
      | Error e -> QCheck.Test.fail_report e
      | Ok b ->
        Record_batch.length b = List.length rs
        && List.for_all2 Record.equal rs
             (Array.to_list (Record_batch.to_array b)))

let prop_merge_sorted =
  QCheck.Test.make ~name:"merge output is time-sorted" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 30) arb_record)
        (list_of_size Gen.(0 -- 30) arb_record))
    (fun (a, b) ->
      let sort l = List.sort Record.compare_time l in
      let merged = Merge.merge [ sort a; sort b ] in
      Merge.is_sorted merged
      && List.length merged = List.length a + List.length b)

(* The streaming chunked merge must agree with the in-memory list merge
   record-for-record for any chunk size — including timestamp ties, which
   both sides resolve by server id and then by an identical sequence of
   heap operations. *)
let prop_merge_chunks_equiv =
  QCheck.Test.make ~name:"streaming merge equals in-memory merge" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 4) (list_of_size Gen.(0 -- 25) arb_record))
        (int_range 1 5))
    (fun (sources, chunk_records) ->
      let sources = List.map (List.sort Record.compare_time) sources in
      let expected = Merge.merge sources in
      let streamed =
        Sink.to_records
          (Merge.merge_chunks ~chunk_records
             (List.map (chunks_of ~chunk_records) sources))
      in
      List.length expected = List.length streamed
      && List.for_all2 Record.equal expected streamed)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_codec_roundtrip;
      prop_text_codec_exact_on_quantized;
      prop_binary_codec_exact;
      prop_batch_columns_match_boxed;
      prop_segment_roundtrip_exact;
      prop_merge_sorted;
      prop_merge_chunks_equiv;
    ]

let suite =
  [
    ("ids roundtrip", `Quick, test_ids_roundtrip);
    ("ids collections", `Quick, test_ids_collections);
    ("record compare_time", `Quick, test_record_compare_time);
    ("record kind names", `Quick, test_record_kind_names);
    ("codec roundtrip all kinds", `Quick, test_codec_roundtrip_all_kinds);
    ("codec rejects bad input", `Quick, test_codec_bad_input);
    ("writer/reader via buffer", `Quick, test_writer_reader_buffer);
    ("reader rejects bad header", `Quick, test_reader_rejects_bad_header);
    ("reader reports line numbers", `Quick, test_reader_reports_line);
    ("file roundtrip", `Quick, test_file_roundtrip);
    ("fold_file streaming", `Quick, test_fold_file_streaming);
    ("merge two streams", `Quick, test_merge_two_streams);
    ("merge tie-break", `Quick, test_merge_tie_break);
    ("merge empty", `Quick, test_merge_empty_streams);
    ("scrub self users", `Quick, test_scrub);
    ("merge_chunks empty sources", `Quick, test_merge_chunks_empty);
    ("merge_chunks boundary straddling", `Quick, test_merge_chunks_boundary_straddling);
    ("merge_chunks single-record chunks", `Quick, test_merge_chunks_single_record_chunks);
    ("merge_chunks streaming scrub", `Quick, test_merge_chunks_scrub);
    ("merge_chunks spill roundtrip", `Quick, test_merge_chunks_spill_roundtrip);
    ("filter by time", `Quick, test_filter_by_time);
    ("filter users", `Quick, test_filter_users);
    ("filter migrated", `Quick, test_filter_migrated);
    ("filter files_only", `Quick, test_filter_files_only);
    ("filter duration", `Quick, test_filter_duration);
    ("binary roundtrip all kinds", `Quick, test_binary_roundtrip_all_kinds);
    ("binary roundtrip all presets", `Slow, test_binary_roundtrip_presets);
    ("binary rejects truncation", `Quick, test_binary_rejects_truncation);
    ("binary rejects bad magic", `Quick, test_binary_rejects_bad_magic);
    ("binary rejects malformed tag", `Quick, test_binary_rejects_malformed_tag);
    ("segment writer roundtrip", `Quick, test_segment_writer_roundtrip);
    ("segment mmap roundtrip all presets", `Slow,
      test_segment_mmap_roundtrip_presets);
    ("segment rejects truncation", `Quick, test_segment_rejects_truncation);
    ("segment rejects misalignment", `Quick, test_segment_rejects_misalignment);
    ("segment rejects malformed tag", `Quick, test_segment_rejects_malformed_tag);
  ]
  @ qcheck_tests
