(* Tests for Dfs_workload: parameters, the namespace, migration board, and
   the application models run against a real (small) cluster. *)

open Dfs_workload
module Ids = Dfs_trace.Ids
module Record = Dfs_trace.Record
module Cluster = Dfs_sim.Cluster
module Engine = Dfs_sim.Engine

(* -- params --------------------------------------------------------------------- *)

let test_params_groups_complete () =
  List.iter
    (fun g -> ignore (Params.find_group Params.default g))
    Params.all_groups

let test_params_group_assignment_cycles () =
  let groups = List.init 8 (Params.group_of_user Params.default) in
  Alcotest.(check bool) "first four distinct" true
    (List.length (List.sort_uniq compare (List.filteri (fun i _ -> i < 4) groups)) = 4);
  Alcotest.(check bool) "cycle repeats" true
    (List.nth groups 0 = List.nth groups 4)

let test_params_hour_activity_shape () =
  let h = Params.default.hour_activity in
  Alcotest.(check int) "24 hours" 24 (Array.length h);
  Alcotest.(check bool) "night quieter than midday" true (h.(3) < h.(14));
  Array.iter (fun x -> Alcotest.(check bool) "positive" true (x > 0.0)) h

let test_params_mixes_positive () =
  List.iter
    (fun g ->
      let m = (Params.find_group Params.default g).mix in
      let total =
        m.edit +. m.compile +. m.pmake +. m.mail +. m.doc +. m.shell
        +. m.big_sim
      in
      Alcotest.(check bool) "mix weights sum to ~1" true
        (total > 0.9 && total < 1.1))
    Params.all_groups

(* -- migration board -------------------------------------------------------------- *)

let test_migration_pick_avoids_home_and_busy () =
  let b = Migration.create ~n_clients:4 () in
  let rng = Dfs_util.Rng.create 1 in
  let user = Ids.User.of_int 1 in
  (* everything idle: must not pick home *)
  for _ = 1 to 20 do
    match Migration.pick_host b ~rng ~user ~home:2 ~now:1000.0 with
    | Some h -> Alcotest.(check bool) "not home" true (h <> 2)
    | None -> Alcotest.fail "expected a host"
  done

let test_migration_console_activity_blocks () =
  let b = Migration.create ~n_clients:2 () in
  let rng = Dfs_util.Rng.create 1 in
  let user = Ids.User.of_int 1 in
  Migration.note_home_activity b ~host:1 ~now:1000.0;
  (* host 1 just had console activity; host 0 is home: nothing available *)
  Alcotest.(check (option int)) "no idle host" None
    (Migration.pick_host b ~rng ~user ~home:0 ~now:1001.0);
  (* long after, host 1 is idle again *)
  Alcotest.(check (option int)) "idle later" (Some 1)
    (Migration.pick_host b ~rng ~user ~home:0 ~now:5000.0)

let test_migration_load_cap () =
  let b = Migration.create ~n_clients:2 () in
  let rng = Dfs_util.Rng.create 1 in
  let user = Ids.User.of_int 1 in
  Migration.job_started b ~host:1;
  Migration.job_started b ~host:1;
  Alcotest.(check int) "load" 2 (Migration.migrated_load b ~host:1);
  Alcotest.(check (option int)) "full host skipped" None
    (Migration.pick_host b ~rng ~user ~home:0 ~now:1000.0);
  Migration.job_finished b ~host:1;
  Alcotest.(check (option int)) "slot freed" (Some 1)
    (Migration.pick_host b ~rng ~user ~home:0 ~now:1000.0)

let test_migration_host_reuse () =
  let b = Migration.create ~n_clients:10 () in
  let rng = Dfs_util.Rng.create 5 in
  let user = Ids.User.of_int 1 in
  match Migration.pick_host b ~rng ~user ~home:0 ~now:1000.0 with
  | None -> Alcotest.fail "host expected"
  | Some first ->
    (* the same user's next picks reuse the host while it stays idle *)
    for _ = 1 to 5 do
      Alcotest.(check (option int)) "reused" (Some first)
        (Migration.pick_host b ~rng ~user ~home:0 ~now:1000.0)
    done

let test_migration_fresh_pids () =
  let b = Migration.create ~n_clients:2 () in
  let a = Migration.fresh_pid b and c = Migration.fresh_pid b in
  Alcotest.(check bool) "distinct" false (Ids.Process.equal a c)

(* -- namespace ---------------------------------------------------------------------- *)

let make_ns () =
  let rng = Dfs_util.Rng.create 11 in
  let fs = Dfs_sim.Fs_state.create ~n_servers:2 ~rng () in
  (fs, Namespace.create ~fs ~rng ~params:Params.default ~now:0.0 ~n_users:8)

let test_namespace_user_files () =
  let _, ns = make_ns () in
  let u = Namespace.user_files ns (Ids.User.of_int 1) in
  Alcotest.(check int) "sources populated" Params.default.sources_per_user
    (Array.length u.sources);
  Alcotest.(check bool) "home is a directory" true u.home_dir.is_dir;
  Alcotest.(check bool) "mailbox nonempty" true (u.mailbox.size > 0);
  (* same user -> same tree *)
  let u' = Namespace.user_files ns (Ids.User.of_int 1) in
  Alcotest.(check bool) "memoized" true (u == u')

let test_namespace_named_binaries_stable () =
  let _, ns = make_ns () in
  let rng = Dfs_util.Rng.create 1 in
  let a = Namespace.pick_binary ns ~rng ~name:"cc" in
  let b = Namespace.pick_binary ns ~rng ~name:"cc" in
  Alcotest.(check bool) "same binary" true (a.exe == b.exe);
  Alcotest.(check bool) "code+data <= size" true
    (a.code_bytes + a.data_bytes <= a.exe.size)

let test_namespace_group_files_distinct () =
  let _, ns = make_ns () in
  let statuses = List.map (Namespace.group_status_file ns) Params.all_groups in
  let ids = List.map (fun (i : Dfs_sim.Fs_state.file_info) -> Ids.File.to_int i.id) statuses in
  Alcotest.(check int) "four distinct status files" 4
    (List.length (List.sort_uniq compare ids));
  let logs = List.map (Namespace.group_log ns) Params.all_groups in
  Alcotest.(check int) "four distinct logs" 4
    (List.length
       (List.sort_uniq compare
          (List.map (fun (i : Dfs_sim.Fs_state.file_info) -> Ids.File.to_int i.id) logs)))

let test_namespace_zipf_source_locality () =
  let _, ns = make_ns () in
  let rng = Dfs_util.Rng.create 9 in
  let u = Namespace.user_files ns (Ids.User.of_int 2) in
  let counts = Array.make (Array.length u.sources) 0 in
  for _ = 1 to 2000 do
    let i = Namespace.pick_source ns ~rng u in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "first source hottest" true
    (counts.(0) > counts.(Array.length counts - 1))

(* -- apps against a live cluster ------------------------------------------------------ *)

let small_cluster () =
  Cluster.create
    {
      Cluster.default_config with
      n_clients = 4;
      n_servers = 2;
      seed = 77;
      simulate_infrastructure = false;
    }

let make_ctx cluster =
  let params = Params.default in
  let ns =
    Namespace.create
      ~fs:(Cluster.fs cluster)
      ~rng:(Dfs_util.Rng.split (Cluster.rng cluster))
      ~params ~now:0.0 ~n_users:4
  in
  let board = Migration.create ~n_clients:4 () in
  {
    Apps.cluster;
    params;
    ns;
    board;
    rng = Dfs_util.Rng.create 123;
    user = Ids.User.of_int 0;
    group = Params.Os_research;
    home = 0;
    uses_migration = true;
  }

let run_app cluster f =
  Engine.spawn (Cluster.engine cluster) f;
  Cluster.run cluster ~until:36000.0

let count_kind trace pred = List.length (List.filter pred trace)

let test_app_edit_leaves_balanced_trace () =
  let cluster = small_cluster () in
  let ctx = make_ctx cluster in
  run_app cluster (fun () -> Apps.edit ctx);
  let trace = Cluster.merged_trace cluster in
  let opens =
    count_kind trace (fun r ->
        match r.Record.kind with Record.Open _ -> true | _ -> false)
  in
  let closes =
    count_kind trace (fun r ->
        match r.Record.kind with Record.Close _ -> true | _ -> false)
  in
  Alcotest.(check bool) "did something" true (opens > 0);
  Alcotest.(check int) "opens = closes" opens closes

let test_app_compile_reads_and_writes () =
  let cluster = small_cluster () in
  let ctx = make_ctx cluster in
  run_app cluster (fun () -> Apps.compile ctx ~host:0 ~migrated:false);
  let trace = Cluster.merged_trace cluster in
  let accesses = Dfs_analysis.Session.of_trace (Array.of_list trace) in
  let reads =
    List.exists (fun (a : Dfs_analysis.Session.access) -> a.a_bytes_read > 0) accesses
  in
  let writes =
    List.exists (fun (a : Dfs_analysis.Session.access) -> a.a_bytes_written > 0) accesses
  in
  Alcotest.(check bool) "reads happened" true reads;
  Alcotest.(check bool) "writes happened" true writes;
  (* the compiler temporary dies within the run *)
  let deletes =
    count_kind trace (fun r ->
        match r.Record.kind with Record.Delete _ -> true | _ -> false)
  in
  Alcotest.(check bool) "temporary deleted" true (deletes >= 1)

let test_app_pmake_migrates () =
  let cluster = small_cluster () in
  let ctx = make_ctx cluster in
  run_app cluster (fun () -> Apps.pmake ctx);
  let trace = Cluster.merged_trace cluster in
  let migrated =
    count_kind trace (fun (r : Record.t) -> r.migrated)
  in
  Alcotest.(check bool) "migrated records present" true (migrated > 0);
  (* migrated jobs ran on hosts other than home *)
  let remote =
    List.exists
      (fun (r : Record.t) -> r.migrated && Ids.Client.to_int r.client <> ctx.home)
      trace
  in
  Alcotest.(check bool) "migrated work off-home" true remote

let test_app_big_sim_big_reads () =
  let cluster = small_cluster () in
  let ctx = { (make_ctx cluster) with group = Params.Architecture } in
  run_app cluster (fun () -> Apps.big_sim ctx);
  let trace = Cluster.merged_trace cluster in
  let accesses = Dfs_analysis.Session.of_trace (Array.of_list trace) in
  let biggest =
    List.fold_left
      (fun acc (a : Dfs_analysis.Session.access) -> max acc a.a_bytes_read)
      0 accesses
  in
  Alcotest.(check bool) "megabyte-scale input read" true (biggest >= 1_000_000)

let test_app_mail_appends () =
  let cluster = small_cluster () in
  let ctx = make_ctx cluster in
  run_app cluster (fun () -> Apps.mail ctx);
  let u = Namespace.user_files ctx.ns ctx.user in
  Alcotest.(check bool) "mailbox grew" true (u.mailbox.size > 24 * 1024)

let test_app_pick_distribution () =
  let rng = Dfs_util.Rng.create 3 in
  let mix = (Params.find_group Params.default Params.Misc).mix in
  for _ = 1 to 200 do
    match Apps.pick mix rng with
    | Apps.Big_sim -> Alcotest.fail "Misc group never runs big_sim (weight 0)"
    | _ -> ()
  done

(* -- driver / presets ------------------------------------------------------------------ *)

let test_preset_validation () =
  Alcotest.check_raises "trace 0 invalid"
    (Invalid_argument "Presets.trace: expected 1-8") (fun () ->
      ignore (Presets.trace 0));
  Alcotest.(check int) "eight presets" 8 (List.length (Presets.all ()))

let test_presets_special_users () =
  let p3 = Presets.trace 3 in
  let p5 = Presets.trace 5 in
  Alcotest.(check int) "traces 3 has the two class-project users" 2
    (List.length p3.special_users);
  Alcotest.(check int) "trace 5 has none" 0 (List.length p5.special_users)

let test_preset_scaled () =
  let p = Presets.scaled (Presets.trace 1) ~factor:0.1 in
  Alcotest.(check (float 1.0)) "duration scaled" 8640.0 p.duration;
  Alcotest.(check bool) "starts mid-morning" true (p.start_hour > 8.0)

let test_driver_small_run_is_deterministic () =
  let run () =
    let p =
      { (Presets.scaled (Presets.trace 1) ~factor:0.004) with
        cluster_config =
          { (Presets.trace 1).cluster_config with n_clients = 6; seed = 5 } }
    in
    let cluster, _driver = Presets.run p in
    List.length (Cluster.merged_trace cluster)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "produced records" true (a > 0);
  Alcotest.(check int) "identical reruns" a b

let test_driver_trace_well_formed () =
  let p =
    { (Presets.scaled (Presets.trace 2) ~factor:0.008) with
      cluster_config = { (Presets.trace 2).cluster_config with n_clients = 8 } }
  in
  let cluster, driver = Presets.run p in
  Alcotest.(check bool) "users exist" true (Driver.n_users driver > 0);
  let trace = Cluster.merged_trace cluster in
  Alcotest.(check bool) "sorted" true (Dfs_trace.Merge.is_sorted trace);
  (* scrubbed: no infrastructure users left *)
  Alcotest.(check bool) "scrubbed" true
    (List.for_all
       (fun (r : Record.t) ->
         not (Ids.User.Set.mem r.user Cluster.self_users))
       trace)

let suite =
  [
    ("params groups complete", `Quick, test_params_groups_complete);
    ("params group assignment", `Quick, test_params_group_assignment_cycles);
    ("params hour activity", `Quick, test_params_hour_activity_shape);
    ("params mixes positive", `Quick, test_params_mixes_positive);
    ("migration avoids home/busy", `Quick, test_migration_pick_avoids_home_and_busy);
    ("migration console blocks", `Quick, test_migration_console_activity_blocks);
    ("migration load cap", `Quick, test_migration_load_cap);
    ("migration host reuse", `Quick, test_migration_host_reuse);
    ("migration fresh pids", `Quick, test_migration_fresh_pids);
    ("namespace user files", `Quick, test_namespace_user_files);
    ("namespace named binaries", `Quick, test_namespace_named_binaries_stable);
    ("namespace group files distinct", `Quick, test_namespace_group_files_distinct);
    ("namespace zipf locality", `Quick, test_namespace_zipf_source_locality);
    ("app edit balanced trace", `Quick, test_app_edit_leaves_balanced_trace);
    ("app compile reads/writes", `Quick, test_app_compile_reads_and_writes);
    ("app pmake migrates", `Quick, test_app_pmake_migrates);
    ("app big_sim big reads", `Quick, test_app_big_sim_big_reads);
    ("app mail appends", `Quick, test_app_mail_appends);
    ("app pick distribution", `Quick, test_app_pick_distribution);
    ("preset validation", `Quick, test_preset_validation);
    ("presets special users", `Quick, test_presets_special_users);
    ("preset scaled", `Quick, test_preset_scaled);
    ("driver deterministic", `Slow, test_driver_small_run_is_deterministic);
    ("driver trace well-formed", `Slow, test_driver_trace_well_formed);
  ]
