(* Tests for Dfs_analysis on hand-built miniature traces with hand-computed
   answers. *)

open Dfs_analysis
module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids

(* analyses consume dense arrays; tests hand-build traces as lists *)
let arr = Array.of_list
let bat = Dfs_trace.Record_batch.of_list

let mk ?(time = 0.0) ?(client = 0) ?(user = 0) ?(pid = 0) ?(migrated = false)
    ?(file = 0) kind =
  {
    Record.time;
    server = Ids.Server.of_int 0;
    client = Ids.Client.of_int client;
    user = Ids.User.of_int user;
    pid = Ids.Process.of_int pid;
    migrated;
    file = Ids.File.of_int file;
    kind;
  }

let op ?time ?client ?user ?pid ?migrated ?file ?(mode = Record.Read_only)
    ?(created = false) ?(is_dir = false) ?(size = 0) ?(start_pos = 0) () =
  mk ?time ?client ?user ?pid ?migrated ?file
    (Record.Open { mode; created; is_dir; size; start_pos })

let cl ?time ?client ?user ?pid ?migrated ?file ?(size = 0) ?(final_pos = 0)
    ?(bytes_read = 0) ?(bytes_written = 0) () =
  mk ?time ?client ?user ?pid ?migrated ?file
    (Record.Close { size; final_pos; bytes_read; bytes_written })

let seek ?time ?client ?user ?pid ?migrated ?file ~before ~after () =
  mk ?time ?client ?user ?pid ?migrated ?file
    (Record.Reposition { pos_before = before; pos_after = after })

(* A whole-file read access of [size] bytes on [file]. *)
let whole_read ?(t = 0.0) ?(dt = 1.0) ?client ?user ?pid ?migrated ~file ~size () =
  [
    op ~time:t ?client ?user ?pid ?migrated ~file ~mode:Record.Read_only ~size ();
    cl ~time:(t +. dt) ?client ?user ?pid ?migrated ~file ~size ~final_pos:size
      ~bytes_read:size ();
  ]

let whole_write ?(t = 0.0) ?(dt = 1.0) ?client ?user ?pid ?migrated ~file ~size () =
  [
    op ~time:t ?client ?user ?pid ?migrated ~file ~mode:Record.Write_only
      ~size:0 ();
    cl ~time:(t +. dt) ?client ?user ?pid ?migrated ~file ~size ~final_pos:size
      ~bytes_written:size ();
  ]

(* -- session reconstruction --------------------------------------------------- *)

let test_session_whole_file_read () =
  let trace = whole_read ~t:1.0 ~dt:0.5 ~file:1 ~size:1000 () in
  match Session.of_trace (arr trace) with
  | [ a ] ->
    Alcotest.(check int) "bytes read" 1000 a.a_bytes_read;
    Alcotest.(check (list int)) "one run" [ 1000 ] a.a_runs;
    Alcotest.(check (float 1e-9)) "duration" 0.5 (Session.duration a);
    Alcotest.(check bool) "usage RO" true (Session.usage a = Some Session.Read_only);
    Alcotest.(check bool) "whole file" true
      (Session.sequentiality a = Session.Whole_file)
  | l -> Alcotest.failf "expected 1 access, got %d" (List.length l)

let test_session_partial_read_other_sequential () =
  let trace =
    [
      op ~time:0.0 ~file:1 ~mode:Record.Read_only ~size:1000 ();
      cl ~time:1.0 ~file:1 ~size:1000 ~final_pos:400 ~bytes_read:400 ();
    ]
  in
  match Session.of_trace (arr trace) with
  | [ a ] ->
    Alcotest.(check (list int)) "partial run" [ 400 ] a.a_runs;
    Alcotest.(check bool) "other sequential" true
      (Session.sequentiality a = Session.Other_sequential)
  | _ -> Alcotest.fail "one access"

let test_session_random_access_runs () =
  (* read 100 at 0, seek to 500, read 200, seek to 50, read 10, close *)
  let trace =
    [
      op ~time:0.0 ~file:1 ~mode:Record.Read_only ~size:1000 ();
      seek ~time:0.1 ~file:1 ~before:100 ~after:500 ();
      seek ~time:0.2 ~file:1 ~before:700 ~after:50 ();
      cl ~time:0.3 ~file:1 ~size:1000 ~final_pos:60 ~bytes_read:310 ();
    ]
  in
  match Session.of_trace (arr trace) with
  | [ a ] ->
    Alcotest.(check (list int)) "three runs" [ 100; 200; 10 ] a.a_runs;
    Alcotest.(check int) "two seeks" 2 a.a_repositions;
    Alcotest.(check bool) "random" true (Session.sequentiality a = Session.Random)
  | _ -> Alcotest.fail "one access"

let test_session_seek_no_transfer_no_run () =
  (* an immediate seek before any transfer must not create an empty run *)
  let trace =
    [
      op ~time:0.0 ~file:1 ~mode:Record.Read_only ~size:1000 ();
      seek ~time:0.1 ~file:1 ~before:0 ~after:900 ();
      cl ~time:0.2 ~file:1 ~size:1000 ~final_pos:1000 ~bytes_read:100 ();
    ]
  in
  match Session.of_trace (arr trace) with
  | [ a ] ->
    Alcotest.(check (list int)) "single tail run" [ 100 ] a.a_runs;
    (* one sequential run but not the whole file (it has a reposition) *)
    Alcotest.(check bool) "other sequential" true
      (Session.sequentiality a = Session.Other_sequential)
  | _ -> Alcotest.fail "one access"

let test_session_append_run () =
  let trace =
    [
      op ~time:0.0 ~file:1 ~mode:Record.Write_only ~size:500 ();
      seek ~time:0.1 ~file:1 ~before:0 ~after:500 ();
      cl ~time:0.2 ~file:1 ~size:600 ~final_pos:600 ~bytes_written:100 ();
    ]
  in
  match Session.of_trace (arr trace) with
  | [ a ] ->
    Alcotest.(check (list int)) "append run" [ 100 ] a.a_runs;
    Alcotest.(check bool) "write-only" true
      (Session.usage a = Some Session.Write_only)
  | _ -> Alcotest.fail "one access"

let test_session_read_write_usage () =
  let trace =
    [
      op ~time:0.0 ~file:1 ~mode:Record.Read_write ~size:100 ();
      cl ~time:1.0 ~file:1 ~size:100 ~final_pos:50 ~bytes_read:100
        ~bytes_written:50 ();
    ]
  in
  match Session.of_trace (arr trace) with
  | [ a ] ->
    Alcotest.(check bool) "RW usage" true (Session.usage a = Some Session.Read_write)
  | _ -> Alcotest.fail "one access"

let test_session_unmatched_close_dropped () =
  let trace = [ cl ~time:1.0 ~file:9 ~size:10 ~bytes_read:10 () ] in
  Alcotest.(check int) "dropped" 0 (List.length (Session.of_trace (arr trace)))

let test_session_interleaved_handles () =
  (* two processes on the same client use the same file concurrently *)
  let trace =
    [
      op ~time:0.0 ~pid:1 ~file:1 ~mode:Record.Read_only ~size:100 ();
      op ~time:0.1 ~pid:2 ~file:1 ~mode:Record.Read_only ~size:100 ();
      cl ~time:0.2 ~pid:1 ~file:1 ~size:100 ~final_pos:100 ~bytes_read:100 ();
      cl ~time:0.3 ~pid:2 ~file:1 ~size:100 ~final_pos:50 ~bytes_read:50 ();
    ]
  in
  let accesses = Session.of_trace (arr trace) in
  Alcotest.(check int) "two accesses" 2 (List.length accesses);
  let reads = List.map (fun (a : Session.access) -> a.a_bytes_read) accesses in
  Alcotest.(check (list int)) "per-handle totals" [ 100; 50 ] reads

let test_session_zero_byte_access () =
  let trace =
    [
      op ~time:0.0 ~file:1 ~mode:Record.Read_only ~size:100 ();
      cl ~time:0.1 ~file:1 ~size:100 ~final_pos:0 ();
    ]
  in
  match Session.of_trace (arr trace) with
  | [ a ] ->
    Alcotest.(check bool) "no usage" true (Session.usage a = None);
    Alcotest.(check (list int)) "no runs" [] a.a_runs
  | _ -> Alcotest.fail "one access"

(* -- trace stats (Table 1) ------------------------------------------------------ *)

let test_trace_stats () =
  let trace =
    whole_read ~t:0.0 ~user:1 ~file:1 ~size:1_048_576 ()
    @ whole_write ~t:2.0 ~user:2 ~file:2 ~size:524_288 ()
    @ [
        mk ~time:3.0 ~user:1 ~file:3 (Record.Dir_read { bytes = 2_097_152 });
        mk ~time:4.0 ~user:3 ~migrated:true ~file:4
          (Record.Delete { size = 10; is_dir = false });
        mk ~time:5.0 ~user:1 ~file:5 (Record.Truncate { old_size = 99 });
        mk ~time:6.0 ~user:2 ~file:6 (Record.Shared_read { offset = 0; length = 5 });
        mk ~time:7.0 ~user:2 ~file:6 (Record.Shared_write { offset = 0; length = 5 });
        seek ~time:8.0 ~user:1 ~file:7 ~before:0 ~after:5 ();
      ]
  in
  let s = Trace_stats.of_trace (arr trace) in
  Alcotest.(check int) "users" 3 s.different_users;
  Alcotest.(check int) "migration users" 1 s.users_of_migration;
  Alcotest.(check (float 0.01)) "MB read" 1.0 s.mbytes_read_files;
  Alcotest.(check (float 0.01)) "MB written" 0.5 s.mbytes_written_files;
  Alcotest.(check (float 0.01)) "MB dirs" 2.0 s.mbytes_read_dirs;
  Alcotest.(check int) "opens" 2 s.open_events;
  Alcotest.(check int) "closes" 2 s.close_events;
  Alcotest.(check int) "seeks" 1 s.reposition_events;
  Alcotest.(check int) "deletes" 1 s.delete_events;
  Alcotest.(check int) "truncates" 1 s.truncate_events;
  Alcotest.(check int) "shared reads" 1 s.shared_read_events;
  Alcotest.(check int) "shared writes" 1 s.shared_write_events

(* -- activity (Table 2) ----------------------------------------------------------- *)

let test_activity_basic () =
  (* two 10-second intervals; user 1 transfers 1024 B in the first, user 2
     is active (open only, no bytes) in the second *)
  let trace =
    whole_read ~t:0.0 ~dt:1.0 ~user:1 ~file:1 ~size:1024 ()
    @ [
        op ~time:12.0 ~user:2 ~file:2 ~mode:Record.Read_only ~size:10 ();
        cl ~time:19.0 ~user:2 ~file:2 ~size:10 ~final_pos:0 ();
      ]
  in
  let r = Activity.analyze ~interval:10.0 (bat trace) in
  Alcotest.(check int) "max active" 1 r.max_active_users;
  Alcotest.(check (float 1e-6)) "avg active (2 intervals)" 1.0 r.avg_active_users;
  (* user 1's interval: 1024 B over 10 s = 0.1 KB/s; user 2's: 0 *)
  Alcotest.(check (float 1e-6)) "avg throughput" 0.05 r.avg_user_throughput;
  Alcotest.(check (float 1e-6)) "peak user" 0.1 r.peak_user_throughput;
  Alcotest.(check (float 1e-6)) "peak total" 0.1 r.peak_total_throughput

let test_activity_migrated_filter () =
  let trace =
    whole_read ~t:0.0 ~user:1 ~file:1 ~size:2048 ()
    @ whole_read ~t:1.0 ~user:2 ~migrated:true ~pid:9 ~file:2 ~size:1024 ()
  in
  let all = Activity.analyze ~interval:10.0 (bat trace) in
  let mig = Activity.analyze ~migrated_only:true ~interval:10.0 (bat trace) in
  Alcotest.(check int) "two active users" 2 all.max_active_users;
  Alcotest.(check int) "one migrated user" 1 mig.max_active_users;
  Alcotest.(check (float 1e-6)) "migrated bytes only" 0.1 mig.peak_user_throughput

let test_activity_shared_and_dir_bytes_counted () =
  let trace =
    [
      mk ~time:0.0 ~user:1 ~file:1 (Record.Shared_read { offset = 0; length = 5120 });
      mk ~time:1.0 ~user:1 ~file:2 (Record.Dir_read { bytes = 5120 });
    ]
  in
  let r = Activity.analyze ~interval:10.0 (bat trace) in
  Alcotest.(check (float 1e-6)) "10 KB over 10 s" 1.0 r.peak_user_throughput

let test_activity_empty () =
  let r = Activity.analyze ~interval:10.0 (bat []) in
  Alcotest.(check int) "no users" 0 r.max_active_users;
  Alcotest.(check (float 1e-9)) "no tput" 0.0 r.peak_total_throughput

(* -- access patterns (Table 3) ------------------------------------------------------ *)

let test_access_patterns_classification () =
  let trace =
    (* 2 whole-file reads, 1 whole-file write, 1 random read *)
    whole_read ~t:0.0 ~pid:1 ~file:1 ~size:100 ()
    @ whole_read ~t:1.0 ~pid:2 ~file:2 ~size:300 ()
    @ whole_write ~t:2.0 ~pid:3 ~file:3 ~size:600 ()
    @ [
        op ~time:3.0 ~pid:4 ~file:4 ~mode:Record.Read_only ~size:1000 ();
        seek ~time:3.1 ~pid:4 ~file:4 ~before:50 ~after:500 ();
        cl ~time:3.2 ~pid:4 ~file:4 ~size:1000 ~final_pos:550 ~bytes_read:100 ();
      ]
  in
  let t = Access_patterns.of_trace (arr trace) in
  Alcotest.(check int) "3 RO accesses" 3 t.read_only.total.accesses;
  Alcotest.(check int) "RO bytes" 500 t.read_only.total.bytes;
  Alcotest.(check int) "1 WO access" 1 t.write_only.total.accesses;
  Alcotest.(check int) "0 RW" 0 t.read_write.total.accesses;
  Alcotest.(check int) "2 RO whole" 2 t.read_only.whole_file.accesses;
  Alcotest.(check int) "1 RO random" 1 t.read_only.random.accesses;
  Alcotest.(check int) "WO whole" 1 t.write_only.whole_file.accesses;
  Alcotest.(check (float 1e-6)) "RO % accesses" 75.0
    (Access_patterns.pct_accesses t t.read_only);
  Alcotest.(check (float 1e-6)) "WO % bytes"
    (100.0 *. 600.0 /. 1100.0)
    (Access_patterns.pct_bytes t t.write_only);
  Alcotest.(check (float 1e-6)) "RO whole by accesses"
    (100.0 *. 2.0 /. 3.0)
    (Access_patterns.seq_pct_accesses t.read_only Session.Whole_file)

let test_access_patterns_dirs_excluded () =
  let trace =
    [
      op ~time:0.0 ~file:1 ~is_dir:true ~mode:Record.Read_only ~size:64 ();
      cl ~time:1.0 ~file:1 ~size:64 ~final_pos:64 ~bytes_read:64 ();
    ]
  in
  let t = Access_patterns.of_trace (arr trace) in
  Alcotest.(check int) "dir access ignored" 0 t.grand_total.accesses

(* -- figures -------------------------------------------------------------------------- *)

let test_run_length_cdfs () =
  let trace =
    whole_read ~t:0.0 ~pid:1 ~file:1 ~size:100 ()
    @ whole_read ~t:1.0 ~pid:2 ~file:2 ~size:900 ()
  in
  let f = Run_length.of_trace (arr trace) in
  Alcotest.(check int) "two runs" 2 (Dfs_util.Cdf.count f.by_runs);
  Alcotest.(check (float 1e-6)) "half of runs <= 100" 0.5
    (Dfs_util.Cdf.fraction_below f.by_runs 100.0);
  Alcotest.(check (float 1e-6)) "10% of bytes in runs <= 100" 0.1
    (Dfs_util.Cdf.fraction_below f.by_bytes 100.0)

let test_file_size_cdfs () =
  let trace =
    whole_read ~t:0.0 ~pid:1 ~file:1 ~size:1000 ()
    @ whole_read ~t:1.0 ~pid:2 ~file:2 ~size:9000 ()
  in
  let f = File_size.of_trace (arr trace) in
  Alcotest.(check (float 1e-6)) "half of accesses small" 0.5
    (Dfs_util.Cdf.fraction_below f.by_files 1000.0);
  Alcotest.(check (float 1e-6)) "10% of bytes from small file" 0.1
    (Dfs_util.Cdf.fraction_below f.by_bytes 1000.0)

let test_open_time_cdf () =
  let trace =
    whole_read ~t:0.0 ~dt:0.1 ~pid:1 ~file:1 ~size:10 ()
    @ whole_read ~t:1.0 ~dt:2.0 ~pid:2 ~file:2 ~size:10 ()
  in
  let f = Open_time.of_trace (arr trace) in
  Alcotest.(check (float 1e-6)) "half under 0.25s" 0.5
    (Open_time.fraction_under f 0.25);
  Alcotest.(check (float 1e-6)) "all under 10s" 1.0 (Open_time.fraction_under f 10.0)

let test_lifetime_whole_file () =
  (* file written over [0,10], deleted at t=40: oldest byte age 40, newest
     30 -> per-file lifetime 35 *)
  let trace =
    whole_write ~t:0.0 ~dt:10.0 ~file:1 ~size:800 ()
    @ [ mk ~time:40.0 ~file:1 (Record.Delete { size = 800; is_dir = false }) ]
  in
  let f = Lifetime.analyze (arr trace) in
  Alcotest.(check int) "one aged death" 1 f.deaths_aged;
  Alcotest.(check (float 1e-6)) "lifetime 35" 35.0 (Dfs_util.Cdf.median f.by_files);
  (* per-byte ages interpolate 30..40 *)
  Alcotest.(check (float 1e-6)) "no byte younger than 30" 0.0
    (Lifetime.fraction_bytes_under f 29.9);
  Alcotest.(check (float 1e-6)) "all bytes within 40" 1.0
    (Lifetime.fraction_bytes_under f 40.0);
  Alcotest.(check (float 0.01)) "half the bytes within 35" 0.5
    (Lifetime.fraction_bytes_under f 35.0)

let test_lifetime_truncate_counts_as_death () =
  let trace =
    whole_write ~t:0.0 ~dt:1.0 ~file:1 ~size:100 ()
    @ [ mk ~time:5.0 ~file:1 (Record.Truncate { old_size = 100 }) ]
  in
  let f = Lifetime.analyze (arr trace) in
  Alcotest.(check int) "truncate aged" 1 f.deaths_aged

let test_lifetime_unknown_writes_skipped () =
  let trace = [ mk ~time:5.0 ~file:1 (Record.Delete { size = 10; is_dir = false }) ] in
  let f = Lifetime.analyze (arr trace) in
  Alcotest.(check int) "no aged deaths" 0 f.deaths_aged;
  Alcotest.(check int) "counted as unknown" 1 f.deaths_unknown

let test_lifetime_append_updates_newest () =
  (* whole write at 0..2, append at 100..101, delete at 131: oldest 131,
     newest 30 -> per-file (131+30)/2 = 80.5 *)
  let trace =
    whole_write ~t:0.0 ~dt:2.0 ~file:1 ~size:100 ()
    @ [
        op ~time:100.0 ~file:1 ~mode:Record.Write_only ~size:100 ();
        seek ~time:100.2 ~file:1 ~before:0 ~after:100 ();
        cl ~time:101.0 ~file:1 ~size:150 ~final_pos:150 ~bytes_written:50 ();
        mk ~time:131.0 ~file:1 (Record.Delete { size = 150; is_dir = false });
      ]
  in
  let f = Lifetime.analyze (arr trace) in
  Alcotest.(check (float 1e-6)) "avg of oldest/newest" 80.5
    (Dfs_util.Cdf.median f.by_files)

(* -- cache stats ------------------------------------------------------------------------- *)

let mk_sample ~t ~client ~bytes ~active =
  {
    Dfs_sim.Counters.time = t;
    client = Ids.Client.of_int client;
    cache_bytes = bytes;
    cache_capacity_bytes = bytes;
    vm_pages = 0;
    active;
    rebooted = false;
  }

let test_cache_sizes_windows () =
  let cs = Dfs_sim.Counters.create () in
  (* client 0: sizes 1MB..5MB over 15 minutes (active) *)
  List.iteri
    (fun i b ->
      Dfs_sim.Counters.record cs
        (mk_sample ~t:(float_of_int i *. 60.0) ~client:0 ~bytes:(b * 1024 * 1024)
           ~active:true))
    [ 1; 2; 3; 4; 5 ];
  let r = Cache_stats.cache_sizes cs in
  Alcotest.(check (float 0.01)) "avg 3MB" 3.0 (r.avg_bytes /. 1048576.0);
  Alcotest.(check (float 0.01)) "change = 4MB" 4096.0 r.change_15min.max_kb

let test_cache_sizes_inactive_screened () =
  let cs = Dfs_sim.Counters.create () in
  List.iteri
    (fun i b ->
      Dfs_sim.Counters.record cs
        (mk_sample ~t:(float_of_int i *. 60.0) ~client:0 ~bytes:b ~active:false))
    [ 0; 1000000 ];
  let r = Cache_stats.cache_sizes cs in
  Alcotest.(check (float 1e-9)) "inactive window ignored" 0.0 r.change_15min.max_kb

let test_traffic_rows_percentages () =
  let t = Dfs_sim.Traffic.create () in
  Dfs_sim.Traffic.add_read t Dfs_sim.Traffic.File_data 60;
  Dfs_sim.Traffic.add_write t Dfs_sim.Traffic.File_data 20;
  Dfs_sim.Traffic.add_read t Dfs_sim.Traffic.Paging_backing 20;
  let rows = Cache_stats.traffic_rows t in
  let file = List.find (fun (r : Cache_stats.traffic_row) -> r.label = "file data") rows in
  Alcotest.(check (float 1e-6)) "file read pct" 60.0 file.read_pct;
  Alcotest.(check (float 1e-6)) "file total pct" 80.0 file.total_pct;
  Alcotest.(check (float 1e-6)) "cacheable fraction" 0.8
    (Cache_stats.cacheable_fraction t)

let test_consistency_stats_sharing_and_recall () =
  let trace =
    [
      (* client 0 writes file 1 and closes: becomes last writer *)
      op ~time:0.0 ~client:0 ~pid:1 ~file:1 ~mode:Record.Write_only ();
      cl ~time:1.0 ~client:0 ~pid:1 ~file:1 ~size:100 ~final_pos:100
        ~bytes_written:100 ();
      (* client 1 opens: recall *)
      op ~time:2.0 ~client:1 ~pid:2 ~file:1 ~mode:Record.Read_only ~size:100 ();
      cl ~time:3.0 ~client:1 ~pid:2 ~file:1 ~size:100 ~final_pos:100
        ~bytes_read:100 ();
      (* concurrent write-sharing on file 2 *)
      op ~time:4.0 ~client:0 ~pid:3 ~file:2 ~mode:Record.Write_only ();
      op ~time:5.0 ~client:1 ~pid:4 ~file:2 ~mode:Record.Read_only ();
      cl ~time:6.0 ~client:1 ~pid:4 ~file:2 ~size:0 ~final_pos:0 ();
      cl ~time:7.0 ~client:0 ~pid:3 ~file:2 ~size:10 ~final_pos:10
        ~bytes_written:10 ();
    ]
  in
  let t = Consistency_stats.analyze (bat trace) in
  Alcotest.(check int) "file opens" 4 t.file_opens;
  Alcotest.(check int) "one recall" 1 t.recall_opens;
  Alcotest.(check int) "one sharing open" 1 t.sharing_opens;
  Alcotest.(check (float 1e-6)) "sharing pct" 25.0 (Consistency_stats.sharing_pct t)

let test_consistency_stats_same_client_no_actions () =
  let trace =
    [
      op ~time:0.0 ~client:0 ~pid:1 ~file:1 ~mode:Record.Write_only ();
      op ~time:0.5 ~client:0 ~pid:2 ~file:1 ~mode:Record.Read_only ();
      cl ~time:1.0 ~client:0 ~pid:1 ~file:1 ~size:10 ~bytes_written:10 ();
      cl ~time:1.5 ~client:0 ~pid:2 ~file:1 ~size:10 ~bytes_read:10 ();
      op ~time:2.0 ~client:0 ~pid:3 ~file:1 ~mode:Record.Read_only ~size:10 ();
      cl ~time:2.5 ~client:0 ~pid:3 ~file:1 ~size:10 ~bytes_read:10 ();
    ]
  in
  let t = Consistency_stats.analyze (bat trace) in
  Alcotest.(check int) "no sharing on one client" 0 t.sharing_opens;
  Alcotest.(check int) "no recall for own reopen" 0 t.recall_opens

(* -- paging / server stats --------------------------------------------------------- *)

let test_paging_stats_arithmetic () =
  let raw = Dfs_sim.Traffic.create () in
  (* 40 clients over 100 s; 10 pages cached + 10 pages backing = 20 pages *)
  Dfs_sim.Traffic.add_read raw Dfs_sim.Traffic.Paging_cached (10 * 4096);
  Dfs_sim.Traffic.add_write raw Dfs_sim.Traffic.Paging_backing (10 * 4096);
  let t = Paging_stats.analyze ~n_clients:40 ~duration:100.0 ~raw () in
  Alcotest.(check (float 1e-6)) "KB/s" (20.0 *. 4.0 /. 100.0)
    t.paging_kb_per_sec_cluster;
  Alcotest.(check (float 1e-6)) "s per page per client"
    (100.0 /. (20.0 /. 40.0))
    t.seconds_per_page_per_client;
  Alcotest.(check (float 1e-6)) "backing share" 50.0 t.backing_share_pct;
  (* the paper's claim: a network page fetch beats a disk access *)
  Alcotest.(check bool) "network < disk" true
    (t.network_page_fetch_ms < t.disk_access_ms);
  Alcotest.(check bool) "fetch ~5-7 ms" true
    (t.network_page_fetch_ms > 3.0 && t.network_page_fetch_ms < 9.0)

let test_paging_stats_empty () =
  let raw = Dfs_sim.Traffic.create () in
  let t = Paging_stats.analyze ~n_clients:4 ~duration:10.0 ~raw () in
  Alcotest.(check (float 1e-9)) "no paging" 0.0 t.paging_kb_per_sec_cluster;
  Alcotest.(check bool) "infinite gap" true
    (t.seconds_per_page_per_client = infinity)

let test_server_stats_roundtrip () =
  (* drive a tiny rig so the server cache and disk see real traffic *)
  let engine = Dfs_sim.Engine.create () in
  let rng = Dfs_util.Rng.create 4 in
  let fs = Dfs_sim.Fs_state.create ~n_servers:1 ~rng () in
  let network = Dfs_sim.Network.create () in
  let server =
    Dfs_sim.Server.create ~id:(Ids.Server.of_int 0)
      ~config:Dfs_sim.Server.default_config ~fs ~network
      ~log:(fun _ -> ())
      ()
  in
  let c =
    Dfs_sim.Client.create ~engine ~id:(Ids.Client.of_int 0) ~fs
      ~server_of:(fun _ -> server)
      ~paging_server:server ~sleep:false ()
  in
  Dfs_sim.Server.register_client server (Dfs_sim.Client.id c)
    (Dfs_sim.Client.hooks c);
  let cred =
    Dfs_sim.Cred.make ~user:(Ids.User.of_int 0) ~pid:(Ids.Process.of_int 0)
      ~client:(Dfs_sim.Client.id c) ~migrated:false
  in
  let info = Dfs_sim.Fs_state.create_file fs ~now:0.0 ~size:40960 () in
  let fd = Dfs_sim.Client.open_file c ~cred ~info ~mode:Record.Read_only ~created:false in
  ignore (Dfs_sim.Client.read c fd ~len:40960);
  Dfs_sim.Client.close c fd;
  let t = Server_stats.analyze [ server ] in
  Alcotest.(check bool) "server cache saw the fetches" true
    (t.server_read_ops >= 10);
  Alcotest.(check bool) "cold server cache missed to disk" true
    (t.disk_reads >= 1);
  Alcotest.(check bool) "hit pct within range" true
    (t.server_read_hit_pct >= 0.0 && t.server_read_hit_pct <= 100.0)

(* -- cross-validation: analysis vs live server counters -------------------------- *)

let test_consistency_replay_matches_server () =
  (* run a small scripted scenario through the real server+clients and
     check the trace replay computes the same consistency actions *)
  let engine = Dfs_sim.Engine.create () in
  let rng = Dfs_util.Rng.create 3 in
  let fs = Dfs_sim.Fs_state.create ~n_servers:1 ~rng () in
  let network = Dfs_sim.Network.create () in
  let log = ref [] in
  let server =
    Dfs_sim.Server.create ~id:(Ids.Server.of_int 0)
      ~config:Dfs_sim.Server.default_config ~fs ~network
      ~log:(fun r -> log := r :: !log)
      ()
  in
  let client i =
    Dfs_sim.Client.create ~engine ~id:(Ids.Client.of_int i) ~fs
      ~server_of:(fun _ -> server)
      ~paging_server:server ~sleep:false ()
  in
  let c0 = client 0 and c1 = client 1 in
  List.iter
    (fun c ->
      Dfs_sim.Server.register_client server (Dfs_sim.Client.id c)
        (Dfs_sim.Client.hooks c))
    [ c0; c1 ];
  let cr i c =
    Dfs_sim.Cred.make ~user:(Ids.User.of_int i) ~pid:(Ids.Process.of_int i)
      ~client:(Dfs_sim.Client.id c) ~migrated:false
  in
  let info = Dfs_sim.Fs_state.create_file fs ~now:0.0 () in
  (* writer on c0, then reader on c1 (recall), then concurrent sharing *)
  let fd = Dfs_sim.Client.open_file c0 ~cred:(cr 0 c0) ~info ~mode:Record.Write_only ~created:true in
  ignore (Dfs_sim.Client.write c0 fd ~len:5000);
  Dfs_sim.Client.close c0 fd;
  let fd1 = Dfs_sim.Client.open_file c1 ~cred:(cr 1 c1) ~info ~mode:Record.Read_only ~created:false in
  let fd0 = Dfs_sim.Client.open_file c0 ~cred:(cr 0 c0) ~info ~mode:Record.Write_only ~created:false in
  ignore (Dfs_sim.Client.write c0 fd0 ~len:10);
  Dfs_sim.Client.close c0 fd0;
  Dfs_sim.Client.close c1 fd1;
  let counters = Dfs_sim.Server.consistency server in
  let replay = Consistency_stats.analyze (bat (List.rev !log)) in
  Alcotest.(check int) "opens agree" counters.file_opens replay.file_opens;
  Alcotest.(check int) "recalls agree" counters.recalls replay.recall_opens;
  Alcotest.(check int) "sharing agrees" counters.sharing_opens
    replay.sharing_opens

let suite =
  [
    ("session whole-file read", `Quick, test_session_whole_file_read);
    ("session partial read", `Quick, test_session_partial_read_other_sequential);
    ("session random access runs", `Quick, test_session_random_access_runs);
    ("session seek without transfer", `Quick, test_session_seek_no_transfer_no_run);
    ("session append run", `Quick, test_session_append_run);
    ("session read/write usage", `Quick, test_session_read_write_usage);
    ("session unmatched close dropped", `Quick, test_session_unmatched_close_dropped);
    ("session interleaved handles", `Quick, test_session_interleaved_handles);
    ("session zero-byte access", `Quick, test_session_zero_byte_access);
    ("trace stats", `Quick, test_trace_stats);
    ("activity basic", `Quick, test_activity_basic);
    ("activity migrated filter", `Quick, test_activity_migrated_filter);
    ("activity shared+dir bytes", `Quick, test_activity_shared_and_dir_bytes_counted);
    ("activity empty", `Quick, test_activity_empty);
    ("access patterns classification", `Quick, test_access_patterns_classification);
    ("access patterns dirs excluded", `Quick, test_access_patterns_dirs_excluded);
    ("run length CDFs", `Quick, test_run_length_cdfs);
    ("file size CDFs", `Quick, test_file_size_cdfs);
    ("open time CDF", `Quick, test_open_time_cdf);
    ("lifetime whole file", `Quick, test_lifetime_whole_file);
    ("lifetime truncate", `Quick, test_lifetime_truncate_counts_as_death);
    ("lifetime unknown writes skipped", `Quick, test_lifetime_unknown_writes_skipped);
    ("lifetime append updates newest", `Quick, test_lifetime_append_updates_newest);
    ("cache sizes windows", `Quick, test_cache_sizes_windows);
    ("cache sizes screening", `Quick, test_cache_sizes_inactive_screened);
    ("traffic rows percentages", `Quick, test_traffic_rows_percentages);
    ("consistency stats sharing/recall", `Quick, test_consistency_stats_sharing_and_recall);
    ("consistency stats same-client", `Quick, test_consistency_stats_same_client_no_actions);
    ("consistency replay matches server", `Quick, test_consistency_replay_matches_server);
    ("paging stats arithmetic", `Quick, test_paging_stats_arithmetic);
    ("paging stats empty", `Quick, test_paging_stats_empty);
    ("server stats roundtrip", `Quick, test_server_stats_roundtrip);
  ]
