(* Unit and property tests for Dfs_util. *)

open Dfs_util

let check_float = Alcotest.(check (float 1e-9))

let check_float_eps eps = Alcotest.(check (float eps))

(* -- Rng ------------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xa = List.init 10 (fun _ -> Rng.bits64 a) in
  let xb = List.init 10 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "different streams" false (xa = xb)

let test_rng_split_independent () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  let xa = List.init 10 (fun _ -> Rng.bits64 a) in
  let xb = List.init 10 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "split differs from parent" false (xa = xb)

let test_rng_copy () =
  let a = Rng.create 11 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_int_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (x >= 0 && x < 17)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 13 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 5.0
  done;
  check_float_eps 0.2 "mean ~5" 5.0 (!sum /. float_of_int n)

(* Regression for the Box-Muller draw order: [normal] used to bind its
   two uniform draws with [let u1 = ... and u2 = ...] over the same
   mutable generator, leaving the draw order unspecified.  The fix
   sequences u1 before u2; these exact values pin that order. *)
let test_rng_normal_pinned () =
  let exact = Alcotest.(check (float 0.0)) in
  let r = Rng.create 42 in
  exact "normal #1" 0x1.c3b620ee5015bp-1 (Rng.normal r ~mu:0.0 ~sigma:1.0);
  exact "normal #2" (-0x1.cdab96fe79013p-2) (Rng.normal r ~mu:0.0 ~sigma:1.0);
  exact "normal #3" 0x1.81bf069d25a44p-3 (Rng.normal r ~mu:0.0 ~sigma:1.0);
  exact "normal #4" 0x1.c1b680ea2bc5dp-3 (Rng.normal r ~mu:0.0 ~sigma:1.0);
  let r2 = Rng.create 7 in
  exact "normal scaled" 0x1.8f13f44eb38d6p+3 (Rng.normal r2 ~mu:10.0 ~sigma:2.5)

let test_rng_bernoulli_rate () =
  let rng = Rng.create 17 in
  let n = 20000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  check_float_eps 0.02 "p ~0.3" 0.3 (float_of_int !hits /. float_of_int n)

let test_rng_zipf_bounds () =
  let rng = Rng.create 19 in
  for _ = 1 to 1000 do
    let r = Rng.zipf rng ~n:10 ~s:1.0 in
    Alcotest.(check bool) "rank in [1,10]" true (r >= 1 && r <= 10)
  done

let test_rng_zipf_skew () =
  let rng = Rng.create 23 in
  let counts = Array.make 11 0 in
  for _ = 1 to 10000 do
    let r = Rng.zipf rng ~n:10 ~s:1.2 in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 1 most common" true (counts.(1) > counts.(2));
  Alcotest.(check bool) "rank 2 beats rank 9" true (counts.(2) > counts.(9))

let test_rng_pick_weighted () =
  let rng = Rng.create 29 in
  let a = ref 0 and b = ref 0 in
  for _ = 1 to 10000 do
    match Rng.pick_weighted rng [ ("a", 9.0); ("b", 1.0) ] with
    | "a" -> incr a
    | _ -> incr b
  done;
  Alcotest.(check bool) "a dominates" true (!a > 7 * !b)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 31 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_rng_pareto_min () =
  let rng = Rng.create 37 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) ">= x_min" true
      (Rng.pareto rng ~alpha:1.5 ~x_min:100.0 >= 100.0)
  done

(* -- Dist ------------------------------------------------------------------ *)

let test_dist_constant () =
  let rng = Rng.create 1 in
  check_float "constant" 42.0 (Dist.sample (Dist.Constant 42.0) rng)

let test_dist_clamped () =
  let rng = Rng.create 1 in
  for _ = 1 to 500 do
    let x = Dist.sample (Dist.Clamped (Dist.Exponential 10.0, 2.0, 5.0)) rng in
    Alcotest.(check bool) "clamped" true (x >= 2.0 && x <= 5.0)
  done

let test_dist_mixture_members () =
  let rng = Rng.create 2 in
  let d = Dist.Mixture [ (Dist.Constant 1.0, 1.0); (Dist.Constant 2.0, 1.0) ] in
  for _ = 1 to 100 do
    let x = Dist.sample d rng in
    Alcotest.(check bool) "one of the members" true (x = 1.0 || x = 2.0)
  done

let test_dist_mean_analytic () =
  check_float "exp mean" 7.0 (Dist.mean (Dist.Exponential 7.0));
  check_float "uniform mean" 3.0 (Dist.mean (Dist.Uniform (2.0, 4.0)));
  check_float "pareto mean" 3.0 (Dist.mean (Dist.Pareto (1.5, 1.0)));
  Alcotest.(check bool) "pareto alpha<=1 infinite" true
    (Dist.mean (Dist.Pareto (1.0, 1.0)) = infinity)

let test_dist_sample_int_nonneg () =
  let rng = Rng.create 3 in
  for _ = 1 to 500 do
    Alcotest.(check bool) "non-negative" true
      (Dist.sample_int (Dist.Uniform (-5.0, 5.0)) rng >= 0)
  done

(* -- Stats ----------------------------------------------------------------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  check_float "mean" 2.5 (Stats.mean s);
  check_float "total" 10.0 (Stats.total s);
  check_float "min" 1.0 (Stats.min s);
  check_float "max" 4.0 (Stats.max s);
  (* sample (n-1) convention: m2 = 5.0 over 4 samples *)
  check_float_eps 1e-9 "stddev" (sqrt (5.0 /. 3.0)) (Stats.stddev s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  check_float "mean 0" 0.0 (Stats.mean s);
  check_float "stddev 0" 0.0 (Stats.stddev s)

let test_stats_add_n () =
  let a = Stats.create () in
  Stats.add_n a 3.0 5;
  Stats.add_n a 7.0 5;
  let b = Stats.create () in
  for _ = 1 to 5 do
    Stats.add b 3.0
  done;
  for _ = 1 to 5 do
    Stats.add b 7.0
  done;
  Alcotest.(check int) "counts equal" (Stats.count b) (Stats.count a);
  check_float_eps 1e-9 "means equal" (Stats.mean b) (Stats.mean a);
  check_float_eps 1e-9 "stddevs equal" (Stats.stddev b) (Stats.stddev a)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  List.iter
    (fun x ->
      Stats.add whole x;
      if x < 3.0 then Stats.add a x else Stats.add b x)
    [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  let m = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count whole) (Stats.count m);
  check_float_eps 1e-9 "mean" (Stats.mean whole) (Stats.mean m);
  check_float_eps 1e-9 "stddev" (Stats.stddev whole) (Stats.stddev m);
  check_float "min" 1.0 (Stats.min m);
  check_float "max" 5.0 (Stats.max m)

let test_stats_percentile () =
  let arr = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Stats.percentile arr 0.5);
  check_float "min" 1.0 (Stats.percentile arr 0.0);
  check_float "max" 5.0 (Stats.percentile arr 1.0);
  check_float "interp" 1.5 (Stats.percentile arr 0.125)

let test_stats_ratio () =
  check_float "ratio" 0.5 (Stats.ratio 1.0 2.0);
  check_float "div by zero" 0.0 (Stats.ratio 1.0 0.0)

(* -- Cdf ------------------------------------------------------------------- *)

let test_cdf_unweighted () =
  let c = Cdf.create () in
  List.iter (Cdf.add c) [ 1.0; 2.0; 3.0; 4.0 ];
  check_float "below 0" 0.0 (Cdf.fraction_below c 0.5);
  check_float "below 2" 0.5 (Cdf.fraction_below c 2.0);
  check_float "below all" 1.0 (Cdf.fraction_below c 10.0);
  check_float "median" 2.0 (Cdf.median c)

let test_cdf_weighted () =
  let c = Cdf.create () in
  Cdf.add c ~weight:1.0 1.0;
  Cdf.add c ~weight:9.0 10.0;
  check_float "weighted fraction" 0.1 (Cdf.fraction_below c 1.0);
  check_float "q0.05" 1.0 (Cdf.quantile c 0.05);
  check_float "q0.5" 10.0 (Cdf.quantile c 0.5)

let test_cdf_add_after_query () =
  let c = Cdf.create () in
  Cdf.add c 1.0;
  ignore (Cdf.fraction_below c 1.0);
  Cdf.add c 2.0;
  check_float "cache invalidated" 0.5 (Cdf.fraction_below c 1.0)

let test_cdf_series_and_log_xs () =
  let xs = Cdf.log_xs ~lo:1.0 ~hi:1000.0 ~per_decade:1 in
  Alcotest.(check int) "4 points" 4 (Array.length xs);
  let c = Cdf.create () in
  Cdf.add c 5.0;
  let series = Cdf.series c ~xs in
  Alcotest.(check int) "series length" 4 (Array.length series);
  check_float "first point" 0.0 (snd series.(0));
  check_float "last point" 1.0 (snd series.(3))

let test_cdf_empty () =
  let c = Cdf.create () in
  check_float "empty below" 0.0 (Cdf.fraction_below c 1.0);
  Alcotest.(check int) "count" 0 (Cdf.count c)

(* Degenerate or hostile inputs must raise [Invalid_argument] with
   context, never a bare assert backtrace. *)
let test_cdf_invalid_args () =
  let c = Cdf.create () in
  Alcotest.check_raises "empty quantile"
    (Invalid_argument "Cdf.quantile: empty distribution") (fun () ->
      ignore (Cdf.quantile c 0.5));
  Cdf.add c 1.0;
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Cdf.quantile: p = 2 outside [0, 1]") (fun () ->
      ignore (Cdf.quantile c 2.0));
  Alcotest.check_raises "p nan"
    (Invalid_argument "Cdf.quantile: p = nan outside [0, 1]") (fun () ->
      ignore (Cdf.quantile c Float.nan));
  Alcotest.check_raises "bad log_xs"
    (Invalid_argument
       "Cdf.log_xs: need 0 < lo < hi and per_decade > 0 (lo = 0, hi = 10, \
        per_decade = 1)") (fun () ->
      ignore (Cdf.log_xs ~lo:0.0 ~hi:10.0 ~per_decade:1))

let test_stats_percentile_invalid_args () =
  Alcotest.check_raises "empty sample"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Stats.percentile [||] 0.5));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p = -1 outside [0, 1]") (fun () ->
      ignore (Stats.percentile [| 1.0 |] (-1.0)))

let test_units_invalid_args () =
  Alcotest.check_raises "negative bytes"
    (Invalid_argument "Units.blocks_of_bytes: negative byte count -1")
    (fun () -> ignore (Units.blocks_of_bytes (-1)))

(* -- Heap ------------------------------------------------------------------ *)

module IH = Heap.Make (struct
  include Int

  let dummy = min_int
end)

let test_heap_order () =
  let h = IH.create () in
  List.iter (IH.push h) [ 5; 1; 4; 2; 3 ];
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 4; 5 ]
    (IH.to_sorted_list h)

let test_heap_peek_pop () =
  let h = IH.create () in
  Alcotest.(check (option int)) "peek empty" None (IH.peek h);
  Alcotest.(check (option int)) "pop empty" None (IH.pop h);
  IH.push h 9;
  IH.push h 3;
  Alcotest.(check (option int)) "peek" (Some 3) (IH.peek h);
  Alcotest.(check int) "length" 2 (IH.length h);
  Alcotest.(check (option int)) "pop" (Some 3) (IH.pop h);
  Alcotest.(check (option int)) "pop next" (Some 9) (IH.pop h);
  Alcotest.(check bool) "empty" true (IH.is_empty h)

let test_heap_pop_exn () =
  let h = IH.create () in
  Alcotest.check_raises "empty pop_exn"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (IH.pop_exn h))

let test_heap_duplicates () =
  let h = IH.create () in
  List.iter (IH.push h) [ 2; 2; 1; 1 ];
  Alcotest.(check (list int)) "dups kept" [ 1; 1; 2; 2 ] (IH.to_sorted_list h)

let test_heap_filter_in_place () =
  let h = IH.create () in
  List.iter (IH.push h) [ 9; 4; 7; 1; 8; 2; 6; 3; 5; 0 ];
  IH.filter_in_place h (fun x -> x mod 2 = 0);
  Alcotest.(check int) "evens kept" 5 (IH.length h);
  Alcotest.(check (list int)) "heap order survives" [ 0; 2; 4; 6; 8 ]
    (IH.to_sorted_list h);
  IH.filter_in_place h (fun _ -> false);
  Alcotest.(check bool) "filter-all empties" true (IH.is_empty h)

(* Regression for the retention bug: [pop] and [filter_in_place] used to
   leave the removed elements in the backing array past [size], pinning
   them (and everything they referenced) until overwritten.  With the
   vacated slots cleared to [dummy], a popped element must become
   collectable as soon as the caller drops it. *)
module SH = Heap.Make (struct
  type t = string

  let compare = String.compare

  let dummy = ""
end)

(* fresh heap-allocated strings (literals would be static data) *)
let mk_elt i = String.init 8 (fun j -> Char.chr (65 + ((i + j) mod 26)))

let test_heap_pop_releases () =
  let h = SH.create () in
  let n = 5 in
  let w = Weak.create n in
  for i = 0 to n - 1 do
    SH.push h (mk_elt i)
  done;
  (* drain completely, keeping only weak refs to the popped elements *)
  for i = 0 to n - 1 do
    Weak.set w i (SH.pop h)
  done;
  Gc.full_major ();
  Gc.full_major ();
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "popped element %d is collectable" i)
      true
      (Weak.get w i = None)
  done;
  (* read the heap after the weak checks so its backing array is live
     during the GC above — the retention under test *)
  Alcotest.(check bool) "drained" true (SH.is_empty h)

let test_heap_filter_releases () =
  let h = SH.create () in
  let n = 8 in
  let w = Weak.create n in
  for i = 0 to n - 1 do
    SH.push h (mk_elt i)
  done;
  (* drop everything, keeping only weak refs *)
  SH.filter_in_place h (fun s ->
      let slot = (Char.code s.[0] - 65) mod n in
      Weak.set w slot (Some s);
      false);
  Gc.full_major ();
  Gc.full_major ();
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "filtered element %d is collectable" i)
      true
      (Weak.get w i = None)
  done;
  (* keep the heap's backing array live across the GC (see above) *)
  Alcotest.(check bool) "filter-all empties" true (SH.is_empty h)

(* -- Lru ------------------------------------------------------------------- *)

module IL = Lru.Make (struct
  type t = int

  let equal = Int.equal

  let hash = Hashtbl.hash
end)

let test_lru_order () =
  let l = IL.create () in
  IL.add l 1 "a";
  IL.add l 2 "b";
  IL.add l 3 "c";
  Alcotest.(check (option (pair int string))) "lru is 1" (Some (1, "a")) (IL.lru l);
  ignore (IL.use l 1);
  Alcotest.(check (option (pair int string))) "lru now 2" (Some (2, "b")) (IL.lru l)

let test_lru_pop () =
  let l = IL.create () in
  IL.add l 1 "a";
  IL.add l 2 "b";
  Alcotest.(check (option (pair int string))) "pop 1" (Some (1, "a")) (IL.pop_lru l);
  Alcotest.(check int) "length 1" 1 (IL.length l);
  Alcotest.(check bool) "1 gone" false (IL.mem l 1)

let test_lru_replace () =
  let l = IL.create () in
  IL.add l 1 "a";
  IL.add l 2 "b";
  IL.add l 1 "a2";
  Alcotest.(check (option string)) "value replaced" (Some "a2") (IL.find l 1);
  Alcotest.(check int) "no dup" 2 (IL.length l);
  (* re-adding made key 1 most recent *)
  Alcotest.(check (option (pair int string))) "lru is 2" (Some (2, "b")) (IL.lru l)

let test_lru_remove () =
  let l = IL.create () in
  IL.add l 1 "a";
  Alcotest.(check (option string)) "removed value" (Some "a") (IL.remove l 1);
  Alcotest.(check (option string)) "second remove" None (IL.remove l 1);
  Alcotest.(check int) "empty" 0 (IL.length l)

let test_lru_iter_order () =
  let l = IL.create () in
  List.iter (fun k -> IL.add l k (string_of_int k)) [ 1; 2; 3 ];
  ignore (IL.use l 2);
  Alcotest.(check (list int)) "lru-first order" [ 1; 3; 2 ]
    (List.map fst (IL.to_list l))

let test_lru_find_does_not_promote () =
  let l = IL.create () in
  IL.add l 1 "a";
  IL.add l 2 "b";
  ignore (IL.find l 1);
  Alcotest.(check (option (pair int string))) "1 still lru" (Some (1, "a"))
    (IL.lru l)

(* -- Table / Units ----------------------------------------------------------- *)

let test_table_render () =
  let t =
    Table.create ~caption:"Cap" ~columns:[ ("A", Table.Left); ("B", Table.Right) ] ()
  in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "caption present" true
    (String.length s > 3 && String.sub s 0 3 = "Cap");
  Alcotest.(check bool) "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "yy | 22"))

let test_table_wrong_arity () =
  let t = Table.create ~columns:[ ("A", Table.Left) ] () in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_table_formatters () =
  Alcotest.(check string) "pct_sd" "41.4 (26.9)" (Table.pct_sd 41.4 26.9);
  Alcotest.(check string) "pct_range" "88 (82-94)" (Table.pct_range 88.0 82.0 94.0);
  Alcotest.(check string) "bytes" "4.0 KB" (Table.bytes 4096.0)

let test_units () =
  Alcotest.(check int) "block" 4096 Units.block_size;
  Alcotest.(check int) "blocks of 0" 0 (Units.blocks_of_bytes 0);
  Alcotest.(check int) "blocks of 1" 1 (Units.blocks_of_bytes 1);
  Alcotest.(check int) "blocks of 4096" 1 (Units.blocks_of_bytes 4096);
  Alcotest.(check int) "blocks of 4097" 2 (Units.blocks_of_bytes 4097);
  check_float "minutes" 120.0 (Units.minutes 2.0);
  check_float "hours" 7200.0 (Units.hours 2.0)

(* -- Chart ----------------------------------------------------------------- *)

let test_chart_renders () =
  let cdf = Cdf.create () in
  List.iter (Cdf.add cdf) [ 100.0; 1000.0; 10000.0; 100000.0 ];
  let xs = Cdf.log_xs ~lo:100.0 ~hi:100000.0 ~per_decade:2 in
  let s =
    Chart.render ~title:"t" ~x_label:"bytes"
      [ Chart.of_cdf ~name:"files" ~glyph:'*' ~xs cdf ]
  in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 't');
  Alcotest.(check bool) "has glyph" true (String.contains s '*');
  Alcotest.(check bool) "has axes" true (String.contains s '+');
  (* every line fits a reasonable width *)
  List.iter
    (fun line ->
      Alcotest.(check bool) "line width bounded" true (String.length line < 120))
    (String.split_on_char '\n' s)

let test_chart_of_cdf_percent () =
  let cdf = Cdf.create () in
  Cdf.add cdf 10.0;
  let s = Chart.of_cdf ~name:"x" ~glyph:'o' ~xs:[| 5.0; 20.0 |] cdf in
  Alcotest.(check (float 1e-9)) "0% below 5" 0.0 (snd s.Chart.s_points.(0));
  Alcotest.(check (float 1e-9)) "100% below 20" 100.0 (snd s.Chart.s_points.(1))

let test_chart_two_series () =
  let a = Cdf.create () and b = Cdf.create () in
  Cdf.add a 10.0;
  Cdf.add b 1000.0;
  let xs = [| 1.0; 10.0; 100.0; 1000.0 |] in
  let s =
    Chart.render ~title:"two" ~x_label:"x"
      [ Chart.of_cdf ~name:"a" ~glyph:'*' ~xs a;
        Chart.of_cdf ~name:"b" ~glyph:'o' ~xs b ]
  in
  Alcotest.(check bool) "both glyphs" true
    (String.contains s '*' && String.contains s 'o')

let test_chart_no_positive_x () =
  Alcotest.check_raises "empty chart"
    (Invalid_argument "Chart.render: no positive x values") (fun () ->
      ignore (Chart.render ~title:"t" ~x_label:"x"
                [ { Chart.s_name = "e"; s_glyph = '*'; s_points = [||] } ]))

(* -- properties --------------------------------------------------------------- *)

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"stats mean within min..max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.mean s >= Stats.min s -. 1e-9 && Stats.mean s <= Stats.max s +. 1e-9)

let prop_stats_merge_equals_sequential =
  QCheck.Test.make ~name:"stats merge = sequential" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 30) (float_range (-100.) 100.))
        (list_of_size Gen.(0 -- 30) (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      let a = Stats.create () and b = Stats.create () and w = Stats.create () in
      List.iter (Stats.add a) xs;
      List.iter (Stats.add b) ys;
      List.iter (Stats.add w) (xs @ ys);
      let m = Stats.merge a b in
      Stats.count m = Stats.count w
      && Float.abs (Stats.mean m -. Stats.mean w) < 1e-6
      && Float.abs (Stats.stddev m -. Stats.stddev w) < 1e-6)

let prop_cdf_monotone =
  QCheck.Test.make ~name:"cdf is monotone" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_range 0.0 1000.0))
    (fun xs ->
      let c = Cdf.create () in
      List.iter (Cdf.add c) xs;
      let points = [ 0.0; 1.0; 10.0; 100.0; 500.0; 1000.0; 2000.0 ] in
      let fracs = List.map (Cdf.fraction_below c) points in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-12 && mono rest
        | _ -> true
      in
      mono fracs)

let prop_cdf_quantile_consistent =
  QCheck.Test.make ~name:"fraction_below (quantile p) >= p" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 50) (float_range 0.0 100.0))
        (float_range 0.01 0.99))
    (fun (xs, p) ->
      let c = Cdf.create () in
      List.iter (Cdf.add c) xs;
      Cdf.fraction_below c (Cdf.quantile c p) >= p -. 1e-9)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = IH.create () in
      List.iter (IH.push h) xs;
      IH.to_sorted_list h = List.sort compare xs)

let prop_lru_length =
  QCheck.Test.make ~name:"lru length = distinct keys" ~count:200
    QCheck.(list (int_bound 20))
    (fun keys ->
      let l = IL.create () in
      List.iter (fun k -> IL.add l k "") keys;
      IL.length l = List.length (List.sort_uniq compare keys))

let prop_lru_pop_order_no_use =
  QCheck.Test.make ~name:"lru pops insertion order without touches" ~count:200
    QCheck.(list_of_size Gen.(0 -- 20) (int_bound 1000))
    (fun keys ->
      let distinct = List.sort_uniq compare keys in
      let l = IL.create () in
      (* insert distinct keys in a deterministic order *)
      List.iteri (fun i k -> IL.add l k i) distinct;
      let rec drain acc =
        match IL.pop_lru l with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      drain [] = distinct)

let prop_dist_clamp_respected =
  QCheck.Test.make ~name:"clamped samples stay in range" ~count:200
    QCheck.(pair (float_range 0.1 10.0) (float_range 11.0 100.0))
    (fun (lo, hi) ->
      let rng = Rng.create 99 in
      let d = Dist.Clamped (Dist.Pareto (1.1, 0.5), lo, hi) in
      List.for_all
        (fun _ ->
          let x = Dist.sample d rng in
          x >= lo && x <= hi)
        (List.init 50 Fun.id))

(* -- crc32c ----------------------------------------------------------------- *)

let test_crc32c_vectors () =
  (* Reference vectors for CRC-32C (Castagnoli): RFC 3720 appendix and
     the classic check value. *)
  Alcotest.(check int) "empty" 0 (Crc32c.string "");
  Alcotest.(check int) "123456789" 0xE3069283 (Crc32c.string "123456789");
  Alcotest.(check int) "32 zero bytes" 0x8A9136AA
    (Crc32c.string (String.make 32 '\x00'));
  Alcotest.(check int) "32 0xFF bytes" 0x62A8AB43
    (Crc32c.string (String.make 32 '\xff'))

let test_crc32c_streaming_matches_oneshot () =
  let s = String.init 257 (fun i -> Char.chr ((i * 61 + 7) land 0xFF)) in
  Alcotest.(check int) "sub of whole" (Crc32c.string s)
    (Crc32c.string_sub s ~pos:0 ~len:(String.length s));
  (* Fold in uneven pieces; slice-by-8 must not care about alignment. *)
  let st = ref Crc32c.init in
  let pos = ref 0 in
  List.iter
    (fun len ->
      st := Crc32c.update_string !st s ~pos:!pos ~len;
      pos := !pos + len)
    [ 1; 3; 8; 13; 64; 100; 68 ];
  Alcotest.(check int) "all bytes folded" (String.length s) !pos;
  Alcotest.(check int) "streaming = one-shot" (Crc32c.string s)
    (Crc32c.finalize !st);
  let big = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout
      (String.length s)
  in
  String.iteri (fun i c -> big.{i} <- Char.code c) s;
  Alcotest.(check int) "bigstring agrees with string" (Crc32c.string s)
    (Crc32c.bigstring_sub big ~pos:0 ~len:(String.length s));
  Alcotest.(check int) "bigstring window agrees"
    (Crc32c.string_sub s ~pos:9 ~len:100)
    (Crc32c.bigstring_sub big ~pos:9 ~len:100)

let prop_crc32c_split_invariance =
  QCheck.Test.make ~name:"crc32c split-anywhere invariance" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 200)) (int_bound 200))
    (fun (s, cut0) ->
      let cut = min cut0 (String.length s) in
      let st = Crc32c.update_string Crc32c.init s ~pos:0 ~len:cut in
      let st =
        Crc32c.update_string st s ~pos:cut ~len:(String.length s - cut)
      in
      Crc32c.finalize st = Crc32c.string s)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_crc32c_split_invariance;
      prop_stats_mean_bounds;
      prop_stats_merge_equals_sequential;
      prop_cdf_monotone;
      prop_cdf_quantile_consistent;
      prop_heap_sorts;
      prop_lru_length;
      prop_lru_pop_order_no_use;
      prop_dist_clamp_respected;
    ]

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seeds differ", `Quick, test_rng_seeds_differ);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng copy", `Quick, test_rng_copy);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng int range", `Quick, test_rng_int_range);
    ("rng exponential mean", `Quick, test_rng_exponential_mean);
    ("rng normal pinned draw order", `Quick, test_rng_normal_pinned);
    ("rng bernoulli rate", `Quick, test_rng_bernoulli_rate);
    ("rng zipf bounds", `Quick, test_rng_zipf_bounds);
    ("rng zipf skew", `Quick, test_rng_zipf_skew);
    ("rng pick weighted", `Quick, test_rng_pick_weighted);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("rng pareto min", `Quick, test_rng_pareto_min);
    ("dist constant", `Quick, test_dist_constant);
    ("dist clamped", `Quick, test_dist_clamped);
    ("dist mixture members", `Quick, test_dist_mixture_members);
    ("dist analytic means", `Quick, test_dist_mean_analytic);
    ("dist sample_int non-negative", `Quick, test_dist_sample_int_nonneg);
    ("stats basic", `Quick, test_stats_basic);
    ("stats empty", `Quick, test_stats_empty);
    ("stats add_n", `Quick, test_stats_add_n);
    ("stats merge", `Quick, test_stats_merge);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats ratio", `Quick, test_stats_ratio);
    ("cdf unweighted", `Quick, test_cdf_unweighted);
    ("cdf weighted", `Quick, test_cdf_weighted);
    ("cdf add after query", `Quick, test_cdf_add_after_query);
    ("cdf series and log_xs", `Quick, test_cdf_series_and_log_xs);
    ("cdf empty", `Quick, test_cdf_empty);
    ("cdf invalid args", `Quick, test_cdf_invalid_args);
    ("stats percentile invalid args", `Quick, test_stats_percentile_invalid_args);
    ("units invalid args", `Quick, test_units_invalid_args);
    ("heap order", `Quick, test_heap_order);
    ("heap peek/pop", `Quick, test_heap_peek_pop);
    ("heap pop_exn", `Quick, test_heap_pop_exn);
    ("heap duplicates", `Quick, test_heap_duplicates);
    ("heap filter_in_place", `Quick, test_heap_filter_in_place);
    ("heap pop releases element", `Quick, test_heap_pop_releases);
    ("heap filter releases elements", `Quick, test_heap_filter_releases);
    ("lru order", `Quick, test_lru_order);
    ("lru pop", `Quick, test_lru_pop);
    ("lru replace", `Quick, test_lru_replace);
    ("lru remove", `Quick, test_lru_remove);
    ("lru iter order", `Quick, test_lru_iter_order);
    ("lru find does not promote", `Quick, test_lru_find_does_not_promote);
    ("table render", `Quick, test_table_render);
    ("table wrong arity", `Quick, test_table_wrong_arity);
    ("table formatters", `Quick, test_table_formatters);
    ("units", `Quick, test_units);
    ("chart renders", `Quick, test_chart_renders);
    ("chart of_cdf percent", `Quick, test_chart_of_cdf_percent);
    ("chart two series", `Quick, test_chart_two_series);
    ("chart no positive x", `Quick, test_chart_no_positive_x);
    ("crc32c vectors", `Quick, test_crc32c_vectors);
    ("crc32c streaming", `Quick, test_crc32c_streaming_matches_oneshot);
  ]
  @ qcheck_tests
