(* Tests for Dfs_sim: the event engine, network/disk models, traffic taps,
   file-system state, the server's consistency protocol, and the client's
   cache/paging integration. *)

open Dfs_sim
module Ids = Dfs_trace.Ids
module Record = Dfs_trace.Record
module Bc = Dfs_cache.Block_cache

let bs = Dfs_util.Units.block_size

(* -- engine ------------------------------------------------------------------ *)

let test_engine_event_order () =
  let e = Engine.create () in
  let order = ref [] in
  ignore (Engine.schedule e ~at:2.0 (fun () -> order := 2 :: !order));
  ignore (Engine.schedule e ~at:1.0 (fun () -> order := 1 :: !order));
  ignore (Engine.schedule e ~at:3.0 (fun () -> order := 3 :: !order));
  Engine.run_until e 10.0;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order)

let test_engine_horizon () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule e ~at:5.0 (fun () -> fired := true));
  Engine.run_until e 4.0;
  Alcotest.(check bool) "beyond horizon not run" false !fired;
  Alcotest.(check (float 1e-9)) "clock at horizon" 4.0 (Engine.now e);
  Engine.run_until e 6.0;
  Alcotest.(check bool) "now fired" true !fired

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~at:1.0 (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run_until e 2.0;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_cancel_compacts_queue () =
  (* A timeout-heavy workload: schedule 1000, cancel all but 10.  Lazy
     deletion alone would leave the queue at 1000 until the horizon;
     compaction must keep the heap tracking live work instead. *)
  let e = Engine.create () in
  let fired = ref 0 in
  let handles =
    List.init 1000 (fun i ->
        Engine.schedule e ~at:(float_of_int (i + 1)) (fun () -> incr fired))
  in
  List.iteri (fun i h -> if i >= 10 then Engine.cancel e h) handles;
  Alcotest.(check int) "live events tracked" 10 (Engine.live_pending e);
  Alcotest.(check bool)
    (Printf.sprintf "queue compacted (pending %d)" (Engine.pending e))
    true
    (Engine.pending e < 100);
  Engine.run_until e 2000.0;
  Alcotest.(check int) "only live events ran" 10 !fired;
  Alcotest.(check int) "drained" 0 (Engine.pending e)

let test_engine_cancel_idempotent_counts () =
  let e = Engine.create () in
  let h = Engine.schedule e ~at:1.0 (fun () -> ()) in
  Engine.cancel e h;
  Engine.cancel e h;
  Alcotest.(check int) "counted once" 0 (Engine.live_pending e);
  Engine.run_until e 2.0;
  Alcotest.(check int) "empty after run" 0 (Engine.pending e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let order = ref [] in
  ignore (Engine.schedule e ~at:1.0 (fun () -> order := "a" :: !order));
  ignore (Engine.schedule e ~at:1.0 (fun () -> order := "b" :: !order));
  Engine.run_until e 2.0;
  Alcotest.(check (list string)) "FIFO ties" [ "a"; "b" ] (List.rev !order)

let test_engine_every () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.every e ~interval:1.0 (fun () -> incr count);
  Engine.run_until e 5.5;
  Alcotest.(check int) "five firings" 5 !count

let test_engine_schedule_during_run () =
  let e = Engine.create () in
  let fired = ref false in
  ignore
    (Engine.schedule e ~at:1.0 (fun () ->
         ignore (Engine.schedule_in e ~delay:1.0 (fun () -> fired := true))));
  Engine.run_until e 3.0;
  Alcotest.(check bool) "nested scheduling" true !fired

let test_engine_process_sleep () =
  let e = Engine.create () in
  let marks = ref [] in
  Engine.spawn e (fun () ->
      marks := ("start", Engine.now e) :: !marks;
      Engine.sleep 2.0;
      marks := ("mid", Engine.now e) :: !marks;
      Engine.sleep 3.0;
      marks := ("end", Engine.now e) :: !marks);
  Engine.run_until e 10.0;
  match List.rev !marks with
  | [ ("start", t0); ("mid", t1); ("end", t2) ] ->
    Alcotest.(check (float 1e-9)) "t0" 0.0 t0;
    Alcotest.(check (float 1e-9)) "t1" 2.0 t1;
    Alcotest.(check (float 1e-9)) "t2" 5.0 t2
  | _ -> Alcotest.fail "wrong marks"

let test_engine_many_processes_interleave () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 3 do
    Engine.spawn e (fun () ->
        Engine.sleep (float_of_int i);
        log := i :: !log;
        Engine.sleep 10.0;
        log := (10 * i) :: !log)
  done;
  Engine.run_until e 20.0;
  Alcotest.(check (list int)) "interleaved" [ 1; 2; 3; 10; 20; 30 ]
    (List.rev !log)

let test_engine_sleep_outside_process () =
  Alcotest.check_raises "sleep outside process"
    (Invalid_argument "Engine.sleep: called outside a spawned process")
    (fun () -> Engine.sleep 1.0)

let test_engine_spawn_at () =
  let e = Engine.create () in
  let t = ref (-1.0) in
  Engine.spawn e ~at:5.0 (fun () -> t := Engine.now e);
  Engine.run_until e 10.0;
  Alcotest.(check (float 1e-9)) "delayed start" 5.0 !t

(* -- network / disk / traffic ---------------------------------------------------- *)

let test_network_accounting () =
  let n = Network.create () in
  let lat = Network.rpc n ~kind:"fetch" ~bytes:4096 in
  Alcotest.(check bool) "latency positive" true (lat > 0.0);
  Alcotest.(check int) "count by kind" 1 (Network.rpc_count n ~kind:"fetch");
  Alcotest.(check int) "total rpcs" 1 (Network.total_rpcs n);
  Alcotest.(check int) "bytes" 4096 (Network.total_bytes n);
  (* serialization: 4 KB at 1.25 MB/s is ~3.3 ms plus 2 ms latency *)
  Alcotest.(check bool) "roughly 5ms" true (lat > 0.004 && lat < 0.008)

let test_network_utilization () =
  let n = Network.create () in
  ignore (Network.rpc n ~kind:"x" ~bytes:125_000);
  Alcotest.(check (float 1e-6)) "10% of a second" 0.1
    (Network.utilization n ~elapsed:1.0)

let test_disk_accounting () =
  let d = Disk.create () in
  let t = Disk.read d ~bytes:4096 in
  Alcotest.(check bool) "dominated by access time" true (t > 0.02 && t < 0.04);
  ignore (Disk.write d ~bytes:100);
  Alcotest.(check int) "reads" 1 (Disk.reads d);
  Alcotest.(check int) "writes" 1 (Disk.writes d);
  Alcotest.(check int) "bytes read" 4096 (Disk.bytes_read d);
  Alcotest.(check int) "bytes written" 100 (Disk.bytes_written d)

let test_traffic_categories () =
  let t = Traffic.create () in
  Traffic.add_read t Traffic.File_data 100;
  Traffic.add_write t Traffic.File_data 50;
  Traffic.add_read t Traffic.Paging_backing 25;
  Alcotest.(check int) "file read" 100 (Traffic.read_bytes t Traffic.File_data);
  Alcotest.(check int) "file write" 50 (Traffic.write_bytes t Traffic.File_data);
  Alcotest.(check int) "total read" 125 (Traffic.total_read t);
  Alcotest.(check int) "total" 175 (Traffic.total t);
  Alcotest.(check bool) "file cacheable" true (Traffic.cacheable Traffic.File_data);
  Alcotest.(check bool) "backing uncacheable" false
    (Traffic.cacheable Traffic.Paging_backing)

let test_traffic_merge () =
  let a = Traffic.create () and b = Traffic.create () in
  Traffic.add_read a Traffic.File_data 10;
  Traffic.add_read b Traffic.File_data 20;
  Traffic.add_write b Traffic.Shared 5;
  let m = Traffic.merge a b in
  Alcotest.(check int) "merged reads" 30 (Traffic.read_bytes m Traffic.File_data);
  Alcotest.(check int) "merged total" 35 (Traffic.total m)

(* -- fs_state ---------------------------------------------------------------------- *)

let test_fs_state_create_find () =
  let rng = Dfs_util.Rng.create 1 in
  let fs = Fs_state.create ~n_servers:4 ~rng () in
  let info = Fs_state.create_file fs ~now:1.0 ~size:100 () in
  Alcotest.(check int) "size" 100 info.size;
  Alcotest.(check bool) "exists" true info.exists;
  (match Fs_state.find fs info.id with
  | Some i -> Alcotest.(check bool) "same info" true (i == info)
  | None -> Alcotest.fail "not found");
  Alcotest.(check int) "live" 1 (Fs_state.live_files fs)

let test_fs_state_delete_recreate () =
  let rng = Dfs_util.Rng.create 1 in
  let fs = Fs_state.create ~n_servers:1 ~rng () in
  let info = Fs_state.create_file fs ~now:0.0 ~size:100 () in
  Fs_state.delete fs info.id;
  Alcotest.(check bool) "deleted" false info.exists;
  Alcotest.(check int) "size zeroed" 0 info.size;
  Alcotest.(check int) "live 0" 0 (Fs_state.live_files fs);
  let v = info.version in
  Fs_state.recreate fs ~now:5.0 info.id;
  Alcotest.(check bool) "recreated" true info.exists;
  Alcotest.(check bool) "version bumped" true (info.version > v);
  Alcotest.(check (float 1e-9)) "created_at updated" 5.0 info.created_at

let test_fs_state_server_weights () =
  let rng = Dfs_util.Rng.create 42 in
  let fs = Fs_state.create ~n_servers:4 ~rng () in
  let counts = Array.make 4 0 in
  for _ = 1 to 2000 do
    let info = Fs_state.create_file fs ~now:0.0 () in
    let s = Ids.Server.to_int info.server in
    counts.(s) <- counts.(s) + 1
  done;
  Alcotest.(check bool) "server 0 dominates" true
    (counts.(0) > counts.(1) + counts.(2) + counts.(3))

(* -- server + client harness --------------------------------------------------------- *)

type rig = {
  engine : Engine.t;
  fs : Fs_state.t;
  server : Server.t;
  clients : Client.t array;
  log : Record.t list ref;
}

let make_rig ?(n_clients = 2) () =
  let engine = Engine.create () in
  let rng = Dfs_util.Rng.create 7 in
  let fs = Fs_state.create ~n_servers:1 ~rng () in
  let network = Network.create () in
  let log = ref [] in
  let server =
    Server.create ~id:(Ids.Server.of_int 0) ~config:Server.default_config ~fs
      ~network
      ~log:(fun r -> log := r :: !log)
      ()
  in
  let clients =
    Array.init n_clients (fun i ->
        Client.create ~engine ~id:(Ids.Client.of_int i) ~fs
          ~server_of:(fun _ -> server)
          ~paging_server:server ~sleep:false ())
  in
  Array.iter
    (fun c -> Server.register_client server (Client.id c) (Client.hooks c))
    clients;
  { engine; fs; server; clients; log }

let cred rig i =
  Cred.make
    ~user:(Ids.User.of_int i)
    ~pid:(Ids.Process.of_int (100 + i))
    ~client:(Client.id rig.clients.(i))
    ~migrated:false

let test_client_read_write_roundtrip () =
  let rig = make_rig () in
  let c = rig.clients.(0) in
  let cred0 = cred rig 0 in
  let info = Fs_state.create_file rig.fs ~now:0.0 () in
  let fd = Client.open_file c ~cred:cred0 ~info ~mode:Record.Write_only ~created:true in
  Alcotest.(check int) "write grows file" 1000 (Client.write c fd ~len:1000);
  Alcotest.(check int) "size" 1000 info.size;
  Client.close c fd;
  let fd = Client.open_file c ~cred:cred0 ~info ~mode:Record.Read_only ~created:false in
  Alcotest.(check int) "read back" 1000 (Client.read c fd ~len:5000);
  Alcotest.(check int) "eof" 0 (Client.read c fd ~len:10);
  Client.close c fd;
  (* records logged: 2 opens + 2 closes *)
  let opens =
    List.length
      (List.filter
         (fun (r : Record.t) ->
           match r.kind with Record.Open _ -> true | _ -> false)
         !(rig.log))
  in
  Alcotest.(check int) "opens logged" 2 opens

let test_client_seek_logged () =
  let rig = make_rig () in
  let c = rig.clients.(0) in
  let info = Fs_state.create_file rig.fs ~now:0.0 ~size:10000 () in
  let fd = Client.open_file c ~cred:(cred rig 0) ~info ~mode:Record.Read_only ~created:false in
  Client.seek c fd ~pos:5000;
  Alcotest.(check int) "position moved" 5000 (Client.fd_pos c fd);
  ignore (Client.read c fd ~len:1000);
  Client.close c fd;
  let seeks =
    List.filter
      (fun (r : Record.t) ->
        match r.kind with Record.Reposition _ -> true | _ -> false)
      !(rig.log)
  in
  (match seeks with
  | [ r ] -> (
    match r.kind with
    | Record.Reposition { pos_before; pos_after } ->
      Alcotest.(check int) "pos before" 0 pos_before;
      Alcotest.(check int) "pos after" 5000 pos_after
    | _ -> assert false)
  | _ -> Alcotest.fail "one reposition expected")

let test_close_carries_totals () =
  let rig = make_rig () in
  let c = rig.clients.(0) in
  let info = Fs_state.create_file rig.fs ~now:0.0 ~size:2048 () in
  let fd = Client.open_file c ~cred:(cred rig 0) ~info ~mode:Record.Read_write ~created:false in
  ignore (Client.read c fd ~len:2048);
  Client.seek c fd ~pos:0;
  ignore (Client.write c fd ~len:100);
  Client.close c fd;
  let close =
    List.find_opt
      (fun (r : Record.t) ->
        match r.kind with Record.Close _ -> true | _ -> false)
      !(rig.log)
  in
  match close with
  | Some { kind = Record.Close { bytes_read; bytes_written; final_pos; _ }; _ } ->
    Alcotest.(check int) "bytes read" 2048 bytes_read;
    Alcotest.(check int) "bytes written" 100 bytes_written;
    Alcotest.(check int) "final pos" 100 final_pos
  | _ -> Alcotest.fail "close record missing"

let test_recall_on_cross_client_open () =
  let rig = make_rig () in
  let c0 = rig.clients.(0) and c1 = rig.clients.(1) in
  let info = Fs_state.create_file rig.fs ~now:0.0 () in
  (* client 0 writes and closes; dirty data lingers under delayed write *)
  let fd = Client.open_file c0 ~cred:(cred rig 0) ~info ~mode:Record.Write_only ~created:true in
  ignore (Client.write c0 fd ~len:1000);
  Client.close c0 fd;
  Alcotest.(check int) "dirty at client 0" 1 (Bc.dirty_blocks (Client.cache c0));
  (* client 1 opens: the server must recall the dirty data *)
  let fd1 = Client.open_file c1 ~cred:(cred rig 1) ~info ~mode:Record.Read_only ~created:false in
  Alcotest.(check int) "recall happened" 1 (Server.consistency rig.server).recalls;
  Alcotest.(check int) "client 0 clean" 0 (Bc.dirty_blocks (Client.cache c0));
  ignore (Client.read c1 fd1 ~len:1000);
  Client.close c1 fd1

let test_no_recall_same_client () =
  let rig = make_rig () in
  let c0 = rig.clients.(0) in
  let info = Fs_state.create_file rig.fs ~now:0.0 () in
  let fd = Client.open_file c0 ~cred:(cred rig 0) ~info ~mode:Record.Write_only ~created:true in
  ignore (Client.write c0 fd ~len:100);
  Client.close c0 fd;
  let fd = Client.open_file c0 ~cred:(cred rig 0) ~info ~mode:Record.Read_only ~created:false in
  Alcotest.(check int) "no recall for the writer itself" 0
    (Server.consistency rig.server).recalls;
  Client.close c0 fd

let test_write_sharing_disables_caching () =
  let rig = make_rig () in
  let c0 = rig.clients.(0) and c1 = rig.clients.(1) in
  let info = Fs_state.create_file rig.fs ~now:0.0 ~size:8192 () in
  let fd0 = Client.open_file c0 ~cred:(cred rig 0) ~info ~mode:Record.Write_only ~created:false in
  ignore (Client.write c0 fd0 ~len:100);
  (* second client opens for read: concurrent write-sharing *)
  let fd1 = Client.open_file c1 ~cred:(cred rig 1) ~info ~mode:Record.Read_only ~created:false in
  Alcotest.(check int) "sharing detected" 1
    (Server.consistency rig.server).sharing_opens;
  Alcotest.(check bool) "file uncacheable" false
    (Server.is_cacheable rig.server info.id);
  (* subsequent I/O passes through and is logged as shared events *)
  ignore (Client.read c1 fd1 ~len:200);
  ignore (Client.write c0 fd0 ~len:50);
  let shared_reads =
    List.length
      (List.filter
         (fun (r : Record.t) ->
           match r.kind with Record.Shared_read _ -> true | _ -> false)
         !(rig.log))
  in
  let shared_writes =
    List.length
      (List.filter
         (fun (r : Record.t) ->
           match r.kind with Record.Shared_write _ -> true | _ -> false)
         !(rig.log))
  in
  Alcotest.(check int) "shared read logged" 1 shared_reads;
  Alcotest.(check int) "shared write logged" 1 shared_writes;
  (* caching resumes only when everyone has closed *)
  Client.close c1 fd1;
  Alcotest.(check bool) "still uncacheable" false
    (Server.is_cacheable rig.server info.id);
  Client.close c0 fd0;
  Alcotest.(check bool) "cacheable again" true
    (Server.is_cacheable rig.server info.id)

let test_stale_cache_invalidated_by_version () =
  let rig = make_rig () in
  let c0 = rig.clients.(0) and c1 = rig.clients.(1) in
  let info = Fs_state.create_file rig.fs ~now:0.0 ~size:4096 () in
  (* client 1 reads and caches the file *)
  let fd = Client.open_file c1 ~cred:(cred rig 1) ~info ~mode:Record.Read_only ~created:false in
  ignore (Client.read c1 fd ~len:4096);
  Client.close c1 fd;
  Alcotest.(check int) "cached" 1 (Bc.size (Client.cache c1));
  (* client 0 rewrites the file *)
  let fd = Client.open_file c0 ~cred:(cred rig 0) ~info ~mode:Record.Write_only ~created:false in
  ignore (Client.write c0 fd ~len:4096);
  Client.close c0 fd;
  (* client 1 reopens: version mismatch flushes its stale block *)
  let misses_before = (Bc.stats (Client.cache c1)).all.read_misses in
  let fd = Client.open_file c1 ~cred:(cred rig 1) ~info ~mode:Record.Read_only ~created:false in
  ignore (Client.read c1 fd ~len:4096);
  Client.close c1 fd;
  Alcotest.(check int) "stale block refetched" (misses_before + 1)
    (Bc.stats (Client.cache c1)).all.read_misses

let test_delete_truncate_logged () =
  let rig = make_rig () in
  let c = rig.clients.(0) in
  let info = Fs_state.create_file rig.fs ~now:0.0 ~size:500 () in
  Client.truncate c ~cred:(cred rig 0) ~info;
  Alcotest.(check int) "size zero" 0 info.size;
  Client.delete c ~cred:(cred rig 0) ~info;
  Alcotest.(check bool) "gone" false info.exists;
  let kinds = List.map (fun (r : Record.t) -> Record.kind_name r.kind) !(rig.log) in
  Alcotest.(check bool) "truncate logged" true (List.mem "truncate" kinds);
  Alcotest.(check bool) "delete logged" true (List.mem "delete" kinds)

let test_dir_read_uncacheable () =
  let rig = make_rig () in
  let c = rig.clients.(0) in
  let dir = Fs_state.create_file rig.fs ~now:0.0 ~dir:true ~size:640 () in
  Client.read_dir c ~cred:(cred rig 0) ~info:dir;
  Alcotest.(check int) "client cache untouched" 0 (Bc.size (Client.cache c));
  Alcotest.(check int) "directory tap" 640
    (Traffic.read_bytes (Client.traffic c) Traffic.Directory);
  Alcotest.(check bool) "dir-read logged" true
    (List.exists
       (fun (r : Record.t) ->
         match r.kind with Record.Dir_read _ -> true | _ -> false)
       !(rig.log))

let test_exec_process_paging_traffic () =
  let rig = make_rig () in
  let c = rig.clients.(0) in
  let exe = Fs_state.create_file rig.fs ~now:0.0 ~size:(10 * bs) () in
  Client.exec_process c ~cred:(cred rig 0) ~exe ~code_bytes:(6 * bs)
    ~data_bytes:(2 * bs);
  Alcotest.(check int) "paging tap" (8 * bs)
    (Traffic.read_bytes (Client.traffic c) Traffic.Paging_cached);
  Alcotest.(check int) "paging class in cache" (8 * bs)
    (Bc.stats (Client.cache c)).paging.bytes_read;
  Client.exit_process c ~cred:(cred rig 0)

let test_swap_backing_traffic () =
  let rig = make_rig () in
  let c = rig.clients.(0) in
  let exe = Fs_state.create_file rig.fs ~now:0.0 ~size:bs () in
  let cr = cred rig 0 in
  Client.exec_process c ~cred:cr ~exe ~code_bytes:bs ~data_bytes:bs;
  Client.grow_process c ~cred:cr ~heap_bytes:(4 * bs);
  Client.swap_out_process c ~cred:cr ~fraction:1.0;
  Alcotest.(check int) "backing writes" (5 * bs)
    (Traffic.write_bytes (Client.traffic c) Traffic.Paging_backing);
  Client.swap_in_process c ~cred:cr ~fraction:1.0;
  Alcotest.(check int) "backing reads" (5 * bs)
    (Traffic.read_bytes (Client.traffic c) Traffic.Paging_backing)

let test_adjust_memory_respects_floor_and_ceiling () =
  let rig = make_rig () in
  let c = rig.clients.(0) in
  Client.adjust_memory c ~now:0.0;
  let cfg = Client.config c in
  let cap_bytes = Bc.capacity (Client.cache c) * bs in
  Alcotest.(check bool) "at most the ceiling" true
    (float_of_int cap_bytes
    <= (cfg.max_cache_fraction *. float_of_int cfg.memory_bytes) +. float_of_int bs);
  Alcotest.(check bool) "at least the floor" true
    (cap_bytes >= cfg.min_cache_bytes)

let test_server_traffic_tap () =
  let rig = make_rig () in
  let c = rig.clients.(0) in
  let info = Fs_state.create_file rig.fs ~now:0.0 ~size:(2 * bs) () in
  let fd = Client.open_file c ~cred:(cred rig 0) ~info ~mode:Record.Read_only ~created:false in
  ignore (Client.read c fd ~len:(2 * bs));
  Client.close c fd;
  Alcotest.(check int) "server saw the fetches" (2 * bs)
    (Traffic.read_bytes (Server.traffic rig.server) Traffic.File_data)

let test_take_activity () =
  let rig = make_rig () in
  let c = rig.clients.(0) in
  Alcotest.(check bool) "idle" false (Client.take_activity c);
  let info = Fs_state.create_file rig.fs ~now:0.0 ~size:10 () in
  let fd = Client.open_file c ~cred:(cred rig 0) ~info ~mode:Record.Read_only ~created:false in
  Client.close c fd;
  Alcotest.(check bool) "active" true (Client.take_activity c);
  Alcotest.(check bool) "flag consumed" false (Client.take_activity c)

(* -- counters ------------------------------------------------------------------------ *)

let test_counters_grouping () =
  let cs = Counters.create () in
  let sample t client =
    {
      Counters.time = t;
      client = Ids.Client.of_int client;
      cache_bytes = 0;
      cache_capacity_bytes = 0;
      vm_pages = 0;
      active = true;
      rebooted = false;
    }
  in
  Counters.record cs (sample 1.0 0);
  Counters.record cs (sample 2.0 1);
  Counters.record cs (sample 3.0 0);
  Alcotest.(check int) "count" 3 (Counters.count cs);
  let by = Counters.by_client cs in
  Alcotest.(check int) "two clients" 2 (List.length by);
  let c0 = List.assoc (Ids.Client.of_int 0) by in
  Alcotest.(check (list (float 1e-9))) "chronological" [ 1.0; 3.0 ]
    (List.map (fun (s : Counters.sample) -> s.time) c0)

let suite =
  [
    ("engine event order", `Quick, test_engine_event_order);
    ("engine horizon", `Quick, test_engine_horizon);
    ("engine cancel", `Quick, test_engine_cancel);
    ("engine cancel compacts queue", `Quick, test_engine_cancel_compacts_queue);
    ("engine cancel idempotent", `Quick, test_engine_cancel_idempotent_counts);
    ("engine FIFO ties", `Quick, test_engine_fifo_ties);
    ("engine every", `Quick, test_engine_every);
    ("engine nested scheduling", `Quick, test_engine_schedule_during_run);
    ("engine process sleep", `Quick, test_engine_process_sleep);
    ("engine processes interleave", `Quick, test_engine_many_processes_interleave);
    ("engine sleep outside process", `Quick, test_engine_sleep_outside_process);
    ("engine spawn at", `Quick, test_engine_spawn_at);
    ("network accounting", `Quick, test_network_accounting);
    ("network utilization", `Quick, test_network_utilization);
    ("disk accounting", `Quick, test_disk_accounting);
    ("traffic categories", `Quick, test_traffic_categories);
    ("traffic merge", `Quick, test_traffic_merge);
    ("fs_state create/find", `Quick, test_fs_state_create_find);
    ("fs_state delete/recreate", `Quick, test_fs_state_delete_recreate);
    ("fs_state server weights", `Quick, test_fs_state_server_weights);
    ("client read/write roundtrip", `Quick, test_client_read_write_roundtrip);
    ("client seek logged", `Quick, test_client_seek_logged);
    ("close carries totals", `Quick, test_close_carries_totals);
    ("recall on cross-client open", `Quick, test_recall_on_cross_client_open);
    ("no recall for same client", `Quick, test_no_recall_same_client);
    ("write-sharing disables caching", `Quick, test_write_sharing_disables_caching);
    ("stale cache invalidated by version", `Quick, test_stale_cache_invalidated_by_version);
    ("delete/truncate logged", `Quick, test_delete_truncate_logged);
    ("dir read uncacheable", `Quick, test_dir_read_uncacheable);
    ("exec process paging traffic", `Quick, test_exec_process_paging_traffic);
    ("swap backing traffic", `Quick, test_swap_backing_traffic);
    ("adjust memory floor/ceiling", `Quick, test_adjust_memory_respects_floor_and_ceiling);
    ("server traffic tap", `Quick, test_server_traffic_tap);
    ("take_activity", `Quick, test_take_activity);
    ("counters grouping", `Quick, test_counters_grouping);
  ]
