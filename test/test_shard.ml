(* The sharded (conservative-PDES) simulation: window-floor safety, the
   lookahead contract on cross-partition sends, worker-count
   independence of partitioned runs, fault-schedule splitting, the
   worker team, and the keyed RNG splits partitions are seeded from. *)

module Engine = Dfs_sim.Engine
module Pdes = Dfs_sim.Pdes
module Sharded = Dfs_workload.Sharded
module Team = Dfs_util.Pool.Team
module Pool = Dfs_util.Pool
module Rng = Dfs_util.Rng
module Profile = Dfs_fault.Profile
module Schedule = Dfs_fault.Schedule
module Injector = Dfs_fault.Injector

(* -- window-floor hard error -------------------------------------------------- *)

let test_run_window_floor_error () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~at:1.0 (fun () -> ()));
  (* a live event strictly below the floor is a protocol violation, not
     something to silently skip or execute *)
  Alcotest.check_raises "below-floor event is a hard error"
    (Engine.Below_floor { time = 1.0; floor = 2.0 })
    (fun () -> Engine.run_window e ~floor:2.0 10.0);
  (* at the floor is legal *)
  let e2 = Engine.create () in
  let ran = ref false in
  ignore (Engine.schedule e2 ~at:2.0 (fun () -> ran := true));
  Engine.run_window e2 ~floor:2.0 10.0;
  Alcotest.(check bool) "event at the floor runs" true !ran

let test_run_window_equals_run_until () =
  (* slicing the same event sequence into windows is output-invariant *)
  let sim windows =
    let e = Engine.create () in
    let log = ref [] in
    for i = 1 to 20 do
      ignore
        (Engine.schedule e
           ~at:(float_of_int i *. 0.7)
           (fun () -> log := i :: !log))
    done;
    if windows then begin
      let floor = ref 0.0 in
      while !floor < 20.0 do
        let horizon = !floor +. 1.3 in
        Engine.run_window e ~floor:!floor horizon;
        floor := horizon
      done
    end
    else Engine.run_until e 20.0;
    List.rev !log
  in
  Alcotest.(check (list int)) "windowed equals monolithic" (sim false)
    (sim true)

(* -- lookahead contract on cross-partition sends ------------------------------ *)

let test_post_lookahead_violation () =
  let engines = [| Engine.create (); Engine.create () |] in
  let pdes = Pdes.create ~lookahead:0.05 engines in
  (* targeting closer than now + lookahead must raise *)
  Alcotest.check_raises "send below the lookahead horizon"
    (Pdes.Lookahead_violation { at = 0.01; min_at = 0.05 })
    (fun () -> Pdes.post pdes ~src:0 ~dst:1 ~at:0.01 (fun () -> ()));
  (* exactly at the horizon is legal *)
  Pdes.post pdes ~src:0 ~dst:1 ~at:0.05 (fun () -> ());
  Alcotest.(check int) "legal send counted" 1 (Pdes.messages pdes)

let test_create_rejects_wide_window () =
  let two () = [| Engine.create (); Engine.create () |] in
  Alcotest.check_raises "window wider than lookahead"
    (Invalid_argument "Pdes.create: window wider than lookahead")
    (fun () -> ignore (Pdes.create ~lookahead:0.05 ~window:0.1 (two ())));
  (* one partition exchanges no messages, so any window is fine *)
  let p = Pdes.create ~lookahead:0.05 ~window:10.0 [| Engine.create () |] in
  Alcotest.(check int) "single partition accepted" 1 (Pdes.partitions p)

let test_pdes_delivery_order () =
  (* same-timestamp messages from different sources deliver in (at, src,
     seq) order whatever the post order *)
  let engines = [| Engine.create (); Engine.create (); Engine.create () |] in
  let pdes = Pdes.create ~lookahead:0.1 engines in
  let log = ref [] in
  let mark tag () = log := tag :: !log in
  Pdes.post pdes ~src:2 ~dst:0 ~at:0.1 (mark "s2a");
  Pdes.post pdes ~src:1 ~dst:0 ~at:0.1 (mark "s1a");
  Pdes.post pdes ~src:1 ~dst:0 ~at:0.1 (mark "s1b");
  Pdes.post pdes ~src:2 ~dst:0 ~at:0.2 (mark "s2b");
  Pdes.run pdes ~until:1.0 ();
  Alcotest.(check (list string))
    "timestamp, then source partition, then emission sequence"
    [ "s1a"; "s1b"; "s2a"; "s2b" ]
    (List.rev !log)

(* -- partitioned runs are pure in (seed, size), not worker count -------------- *)

let shard_cfg ?(n_clients = 48) ?(seed = 42) () =
  {
    Sharded.default_config with
    Sharded.n_clients;
    n_servers = 2;
    seed;
    duration = 240.0;
    partitions = Some 2;
  }

let run_fingerprint ~workers cfg =
  let r = Sharded.run ~workers cfg in
  let fp =
    ( Sharded.digest r.Sharded.merged,
      r.Sharded.partitions,
      r.Sharded.barriers,
      r.Sharded.remote_msgs,
      r.Sharded.users )
  in
  Sharded.release r;
  fp

let prop_workers_do_not_change_output =
  QCheck.Test.make ~name:"sharded run is pure in (seed, size)" ~count:4
    QCheck.(pair (int_bound 1000) (int_bound 2))
    (fun (seed, extra) ->
      let cfg = shard_cfg ~n_clients:(40 + (8 * extra)) ~seed () in
      let seq = run_fingerprint ~workers:1 cfg in
      let par = run_fingerprint ~workers:2 cfg in
      seq = par)

let test_sharded_digest_sensitive () =
  (* the fingerprint actually discriminates: different seeds, different
     digests (a constant digest would make the identity matrix vacuous) *)
  let a = run_fingerprint ~workers:1 (shard_cfg ~seed:1 ()) in
  let b = run_fingerprint ~workers:1 (shard_cfg ~seed:2 ()) in
  let d (x, _, _, _, _) = x in
  Alcotest.(check bool) "seeds give distinct digests" true (d a <> d b)

let test_sharded_exchanges_messages () =
  let cfg = shard_cfg () in
  let r = Sharded.run ~workers:1 cfg in
  Alcotest.(check bool) "barriers happened" true (r.Sharded.barriers > 0);
  Alcotest.(check bool)
    "cross-partition messages flowed" true
    (r.Sharded.remote_msgs > 0);
  Alcotest.(check bool)
    "trace non-empty" true
    (Dfs_trace.Sink.length r.Sharded.merged > 0);
  Sharded.release r

let test_auto_partitions_pure () =
  Alcotest.(check int) "small cluster stays monolithic" 1
    (Sharded.auto_partitions ~n_clients:40 ~n_servers:4);
  Alcotest.(check int) "~64 clients per partition" 3
    (Sharded.auto_partitions ~n_clients:192 ~n_servers:8);
  Alcotest.(check int) "capped by server count" 4
    (Sharded.auto_partitions ~n_clients:5000 ~n_servers:4)

(* -- fault-schedule splitting ------------------------------------------------- *)

let test_fault_schedule_split () =
  let profile = Option.get (Profile.of_name "heavy") in
  let horizon = 7200.0 in
  let n_servers = 4 in
  let global = Schedule.generate ~profile ~n_servers ~horizon in
  (* two partitions owning servers [0,1] and [2,3]; each generates the
     full global schedule and answers for its slice *)
  let parts =
    [
      Injector.create ~profile ~n_servers:2 ~server_id_base:0
        ~schedule_servers:n_servers ~horizon ();
      Injector.create ~profile ~n_servers:2 ~server_id_base:2
        ~schedule_servers:n_servers ~horizon ();
    ]
  in
  List.iteri
    (fun p inj ->
      for local = 0 to 1 do
        let g = (2 * p) + local in
        Alcotest.(check bool)
          (Printf.sprintf "server %d windows identical to unpartitioned" g)
          true
          (Schedule.server_outages (Injector.schedule inj) g
          = Schedule.server_outages global g)
      done)
    parts

(* -- the worker team ---------------------------------------------------------- *)

let test_team_runs_every_member () =
  let team = Team.create ~size:3 () in
  Fun.protect
    ~finally:(fun () -> Team.shutdown team)
    (fun () ->
      let hits = Array.make 3 0 in
      Team.run team (fun m -> hits.(m) <- hits.(m) + 1);
      Alcotest.(check (array int)) "each member ran once" [| 1; 1; 1 |] hits;
      (* generations: the same team re-enters cleanly *)
      Team.run team (fun m -> hits.(m) <- hits.(m) + 10);
      Alcotest.(check (array int)) "reused across generations"
        [| 11; 11; 11 |] hits)

exception Member_boom of int

let test_team_lowest_member_exception_wins () =
  let team = Team.create ~size:4 () in
  Fun.protect
    ~finally:(fun () -> Team.shutdown team)
    (fun () ->
      let got =
        try
          Team.run team (fun m ->
              if m >= 1 then raise (Member_boom m) else ());
          None
        with Member_boom m -> Some m
      in
      Alcotest.(check (option int)) "lowest raising member wins" (Some 1) got;
      (* the team survives a raising generation *)
      let ok = ref 0 in
      Team.run team (fun _ -> ignore (Atomic.fetch_and_add (Atomic.make 0) 0));
      Team.run team (fun m -> if m = 0 then incr ok);
      Alcotest.(check int) "usable after exception" 1 !ok)

let test_team_size_one_inline () =
  let team = Team.create ~size:1 () in
  Fun.protect
    ~finally:(fun () -> Team.shutdown team)
    (fun () ->
      let ran = ref false in
      Team.run team (fun m ->
          Alcotest.(check int) "only member 0" 0 m;
          ran := true);
      Alcotest.(check bool) "ran inline" true !ran)

let test_team_composes_with_pool () =
  (* the --sim-shards x --jobs composition: a team created inside a
     Pool.map task must not trip the pool's nested-use guard *)
  let pool = Pool.create ~jobs:2 () in
  let results =
    Pool.map pool
      (fun x ->
        let team = Team.create ~size:2 () in
        Fun.protect
          ~finally:(fun () -> Team.shutdown team)
          (fun () ->
            let acc = Array.make 2 0 in
            Team.run team (fun m -> acc.(m) <- x + m);
            acc.(0) + acc.(1)))
      [ 10; 20; 30 ]
  in
  Alcotest.(check (list int)) "teams inside pool tasks" [ 21; 41; 61 ] results

(* -- keyed RNG splits --------------------------------------------------------- *)

let test_derive_seed_pure_and_keyed () =
  Alcotest.(check int) "pure in (seed, key)"
    (Rng.derive_seed 42 7) (Rng.derive_seed 42 7);
  Alcotest.(check bool) "distinct keys, distinct seeds" true
    (Rng.derive_seed 42 0 <> Rng.derive_seed 42 1);
  Alcotest.(check bool) "distinct seeds, distinct derivations" true
    (Rng.derive_seed 1 0 <> Rng.derive_seed 2 0);
  Alcotest.(check bool) "non-negative (usable as a seed)" true
    (Rng.derive_seed 42 7 >= 0)

let test_split_key_does_not_advance_parent () =
  let control = Rng.create 1234 in
  let probed = Rng.create 1234 in
  let _ = Rng.split_key probed 5 in
  let _ = Rng.split_key probed 9 in
  Alcotest.(check (list int)) "parent stream untouched by keyed splits"
    (List.init 8 (fun _ -> Rng.int control 1000))
    (List.init 8 (fun _ -> Rng.int probed 1000))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_workers_do_not_change_output ]

let suite =
  [
    Alcotest.test_case "engine: below-floor is a hard error" `Quick
      test_run_window_floor_error;
    Alcotest.test_case "engine: windowed equals monolithic" `Quick
      test_run_window_equals_run_until;
    Alcotest.test_case "pdes: lookahead violation raises" `Quick
      test_post_lookahead_violation;
    Alcotest.test_case "pdes: window wider than lookahead rejected" `Quick
      test_create_rejects_wide_window;
    Alcotest.test_case "pdes: total delivery order" `Quick
      test_pdes_delivery_order;
    Alcotest.test_case "sharded: digest discriminates seeds" `Slow
      test_sharded_digest_sensitive;
    Alcotest.test_case "sharded: barriers and messages flow" `Slow
      test_sharded_exchanges_messages;
    Alcotest.test_case "sharded: auto partition layout" `Quick
      test_auto_partitions_pure;
    Alcotest.test_case "fault: split schedule equals global" `Quick
      test_fault_schedule_split;
    Alcotest.test_case "team: runs every member" `Quick
      test_team_runs_every_member;
    Alcotest.test_case "team: lowest member exception wins" `Quick
      test_team_lowest_member_exception_wins;
    Alcotest.test_case "team: size 1 runs inline" `Quick
      test_team_size_one_inline;
    Alcotest.test_case "team: composes with pool map" `Quick
      test_team_composes_with_pool;
    Alcotest.test_case "rng: derive_seed pure and keyed" `Quick
      test_derive_seed_pure_and_keyed;
    Alcotest.test_case "rng: split_key leaves parent untouched" `Quick
      test_split_key_does_not_advance_parent;
  ]
  @ qcheck_tests
