(* Tests for the observability layer: JSON round-trips, metric
   semantics, histogram quantiles on known distributions, tracer ring
   bounding, and an end-to-end consistency check of the instrumentation
   against the simulator's own accounting. *)

module Json = Dfs_obs.Json
module Metrics = Dfs_obs.Metrics
module Tracer = Dfs_obs.Tracer

(* -- Json ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("yes", Json.Bool true);
        ("n", Json.Int (-42));
        ("x", Json.Float 3.25);
        ("s", Json.String "line\nbreak \"quoted\" \\slash\t");
        ("l", Json.List [ Json.Int 1; Json.Float 0.5; Json.String "" ]);
        ("o", Json.Obj [ ("inner", Json.List []) ]);
      ]
  in
  let s = Json.to_string v in
  (match Json.parse s with
  | Ok v' -> Alcotest.(check bool) "compact round-trip" true (v = v')
  | Error e -> Alcotest.failf "parse error: %s" e);
  match Json.parse (Json.to_pretty_string v) with
  | Ok v' -> Alcotest.(check bool) "pretty round-trip" true (v = v')
  | Error e -> Alcotest.failf "pretty parse error: %s" e

let test_json_floats_stay_floats () =
  (* A float that prints without a fractional part must still read back
     as a float, or schema-typed consumers break. *)
  match Json.parse (Json.to_string (Json.Float 4.0)) with
  | Ok (Json.Float f) -> Alcotest.(check (float 1e-9)) "value" 4.0 f
  | Ok _ -> Alcotest.fail "4.0 did not parse back as a float"
  | Error e -> Alcotest.failf "parse error: %s" e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_json_unicode_escapes () =
  (* BMP escape *)
  (match Json.parse "\"\\u00e9\"" with
  | Ok (Json.String s) -> Alcotest.(check string) "e-acute" "\xc3\xa9" s
  | Ok _ | Error _ -> Alcotest.fail "\\u00e9 did not parse as a string");
  (* surrogate pair: U+1F600 escaped as \ud83d\ude00 must become one
     4-byte UTF-8 character, not two 3-byte surrogate encodings *)
  (match Json.parse "\"\\ud83d\\ude00\"" with
  | Ok (Json.String s) ->
    Alcotest.(check string) "U+1F600" "\xf0\x9f\x98\x80" s
  | Ok _ | Error _ -> Alcotest.fail "surrogate pair did not parse");
  (* a lone high surrogate stays a 3-byte sequence rather than erroring *)
  match Json.parse "\"\\ud83d!\"" with
  | Ok (Json.String s) ->
    Alcotest.(check string) "lone surrogate" "\xed\xa0\xbd!" s
  | Ok _ | Error _ -> Alcotest.fail "lone surrogate did not parse"

let test_json_depth_limit () =
  let nest n = String.make n '[' ^ String.make n ']' in
  (match Json.parse (nest 100) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "100-deep array rejected: %s" e);
  (* past the documented bound the parser fails cleanly instead of
     overflowing the stack *)
  match Json.parse (nest (Json.max_depth + 10)) with
  | Ok _ -> Alcotest.failf "accepted %d-deep nesting" (Json.max_depth + 10)
  | Error _ -> ()

let test_json_duplicate_keys () =
  match Json.parse {|{"a":1,"a":2,"b":3}|} with
  | Ok v ->
    Alcotest.(check (option int))
      "member returns the first binding" (Some 1)
      (Option.bind (Json.member "a" v) Json.to_int_opt);
    Alcotest.(check (option int))
      "later keys still reachable" (Some 3)
      (Option.bind (Json.member "b" v) Json.to_int_opt)
  | Error e -> Alcotest.failf "duplicate keys rejected: %s" e

(* -- Metrics --------------------------------------------------------------- *)

let test_counter_semantics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.value c);
  (* registration is idempotent: same name, same cell *)
  let c' = Metrics.counter ~registry:r "test.counter" in
  Metrics.incr c';
  Alcotest.(check int) "same cell" 43 (Metrics.value c);
  Metrics.reset ~registry:r ();
  Alcotest.(check int) "reset" 0 (Metrics.value c);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument
       "Dfs_obs.Metrics: \"test.counter\" already registered as a non-gauge")
    (fun () -> ignore (Metrics.gauge ~registry:r "test.counter"))

let test_gauge_semantics () =
  let r = Metrics.create () in
  let g = Metrics.gauge ~registry:r "test.gauge" in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Metrics.gauge_value g);
  Metrics.set g 2.5;
  Metrics.set g (-1.0);
  Alcotest.(check (float 0.0)) "last set wins" (-1.0) (Metrics.gauge_value g)

let check_close ~tol msg expected actual =
  if Float.abs (actual -. expected) > tol *. Float.abs expected then
    Alcotest.failf "%s: expected ~%g (+-%g%%), got %g" msg expected
      (tol *. 100.0) actual

let test_histogram_uniform_quantiles () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "test.uniform" in
  for i = 1 to 10_000 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 10_000 (Metrics.hist_count h);
  Alcotest.(check (float 1e-6)) "min" 1.0 (Metrics.hist_min h);
  Alcotest.(check (float 1e-6)) "max" 10_000.0 (Metrics.hist_max h);
  check_close ~tol:1e-9 "sum" (10_001.0 *. 5000.0) (Metrics.hist_sum h);
  (* log-scale buckets are ~12% wide; allow 15% *)
  check_close ~tol:0.15 "p50" 5000.0 (Metrics.quantile h 0.50);
  check_close ~tol:0.15 "p90" 9000.0 (Metrics.quantile h 0.90);
  check_close ~tol:0.15 "p99" 9900.0 (Metrics.quantile h 0.99)

let test_histogram_exponential_quantiles () =
  (* Exponential with mean 1: quantile p = -ln(1-p). *)
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "test.exp" in
  let rng = Dfs_util.Rng.create 23 in
  for _ = 1 to 50_000 do
    Metrics.observe h (Dfs_util.Rng.exponential rng 1.0)
  done;
  check_close ~tol:0.15 "p50" (Float.log 2.0) (Metrics.quantile h 0.50);
  check_close ~tol:0.15 "p90" (-.Float.log 0.1) (Metrics.quantile h 0.90);
  check_close ~tol:0.20 "p99" (-.Float.log 0.01) (Metrics.quantile h 0.99)

let test_histogram_constant_and_zero () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "test.const" in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Metrics.quantile h 0.5);
  for _ = 1 to 100 do
    Metrics.observe h 0.025
  done;
  check_close ~tol:0.15 "constant p50" 0.025 (Metrics.quantile h 0.5);
  check_close ~tol:0.15 "constant p99" 0.025 (Metrics.quantile h 0.99);
  (* zeros sort below every positive observation *)
  let z = Metrics.histogram ~registry:r "test.zeros" in
  for _ = 1 to 90 do
    Metrics.observe z 0.0
  done;
  for _ = 1 to 10 do
    Metrics.observe z 7.0
  done;
  Alcotest.(check (float 0.0)) "p50 of mostly zeros" 0.0
    (Metrics.quantile z 0.50);
  check_close ~tol:0.15 "p99 lands in positive tail" 7.0
    (Metrics.quantile z 0.99)

let test_registry_snapshot () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter ~registry:r "b.counter") 7;
  Metrics.set (Metrics.gauge ~registry:r "a.gauge") 1.5;
  Metrics.observe (Metrics.histogram ~registry:r "c.hist") 2.0;
  Alcotest.(check (list string))
    "names sorted"
    [ "a.gauge"; "b.counter"; "c.hist" ]
    (Metrics.names ~registry:r ());
  let json = Metrics.to_json ~registry:r () in
  (match Json.parse (Json.to_string json) with
  | Ok v ->
    Alcotest.(check (option int))
      "counter as int" (Some 7)
      (Option.bind (Json.member "b.counter" v) Json.to_int_opt);
    let hist = Option.get (Json.member "c.hist" v) in
    Alcotest.(check (option int))
      "hist count" (Some 1)
      (Option.bind (Json.member "count" hist) Json.to_int_opt)
  | Error e -> Alcotest.failf "snapshot does not parse: %s" e);
  let text = Metrics.render_text ~registry:r () in
  Alcotest.(check int) "text lines" 3
    (List.length
       (List.filter
          (fun l -> String.length l > 0)
          (String.split_on_char '\n' text)))

let test_histogram_p999_and_bulk_quantiles () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "test.p999" in
  for i = 1 to 10_000 do
    Metrics.observe h (float_of_int i)
  done;
  (* the bulk accessor agrees with one-at-a-time lookups *)
  let ps = [ 0.5; 0.9; 0.99; 0.999 ] in
  Alcotest.(check (list (float 0.0)))
    "quantiles = map quantile"
    (List.map (Metrics.quantile h) ps)
    (Metrics.quantiles h ps);
  check_close ~tol:0.15 "p999" 9990.0 (Metrics.quantile h 0.999);
  (* p999 is part of every histogram snapshot *)
  let json = Metrics.to_json ~registry:r () in
  let hist = Option.get (Json.member "test.p999" json) in
  match Option.bind (Json.member "p999" hist) Json.to_float_opt with
  | Some v -> check_close ~tol:0.15 "p999 in snapshot" 9990.0 v
  | None -> Alcotest.fail "histogram snapshot lacks p999"

(* The log-scale buckets are 10^(1/20)-1 ~ 12.2% wide and quantiles
   report the bucket midpoint, so any reported quantile is within
   10^(1/40)-1 ~ 5.9% of some sample in the right rank neighborhood.
   Property-test the documented bound against the exact empirical
   quantile on arbitrary positive data. *)
let quantile_error_bound =
  QCheck.Test.make ~name:"histogram quantile within ~6% of exact" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(5 -- 300) (float_range 1e-6 1e9))
        (float_range 0.01 0.999))
    (fun (samples, p) ->
      let r = Metrics.create () in
      let h = Metrics.histogram ~registry:r "prop.q" in
      List.iter (Metrics.observe h) samples;
      let sorted = List.sort Float.compare samples in
      let n = List.length sorted in
      (* the merged-shard quantile takes the first bucket whose
         cumulative count reaches ceil(p * count) *)
      let rank = max 1 (int_of_float (Float.ceil (p *. float_of_int n))) in
      let exact = List.nth sorted (rank - 1) in
      let got = Metrics.quantile h p in
      let bound = 10.0 ** (1.0 /. 40.0) -. 1.0 +. 1e-9 in
      Float.abs (got -. exact) <= bound *. exact)

(* -- Tracer ---------------------------------------------------------------- *)

let emit_test_span i =
  Tracer.emit ~cat:"test"
    ~name:(Printf.sprintf "s%d" i)
    ~t0:(float_of_int i) ~dur:0.5
    ~attrs:[ ("i", Json.Int i) ]
    ()

(* The instrumented modules all emit to [Tracer.default], so these tests
   drive it directly; [Fun.protect] restores the disabled state. *)
let with_default_tracer ~capacity f =
  Tracer.enable ~capacity ();
  Fun.protect ~finally:Tracer.disable f

let test_tracer_disabled_is_noop () =
  Tracer.disable ();
  emit_test_span 0;
  Alcotest.(check bool) "inactive" false (Tracer.active ());
  Alcotest.(check int) "nothing recorded" 0 (Tracer.length Tracer.default)

let test_tracer_ring_bounding () =
  with_default_tracer ~capacity:8 (fun () ->
      let t = Tracer.default in
      for i = 0 to 19 do
        emit_test_span i
      done;
      Alcotest.(check int) "length bounded" 8 (Tracer.length t);
      Alcotest.(check int) "all adds counted" 20 (Tracer.added t);
      Alcotest.(check int) "dropped = added - length" 12 (Tracer.dropped t);
      Alcotest.(check (list string))
        "oldest dropped first, order kept"
        [ "s12"; "s13"; "s14"; "s15"; "s16"; "s17"; "s18"; "s19" ]
        (List.map (fun (s : Tracer.span) -> s.name) (Tracer.spans t));
      Alcotest.(check int) "count by category" 8 (Tracer.count t ~cat:"test");
      Tracer.clear t;
      Alcotest.(check int) "clear empties" 0 (Tracer.length t))

let test_tracer_jsonl_roundtrip () =
  with_default_tracer ~capacity:16 (fun () ->
      for i = 0 to 9 do
        emit_test_span i
      done;
      let t = Tracer.default in
      let original = Tracer.spans t in
      let lines =
        List.filter
          (fun l -> String.length l > 0)
          (String.split_on_char '\n' (Tracer.to_jsonl_string t))
      in
      Alcotest.(check int) "one line per span" 10 (List.length lines);
      let reread =
        List.map
          (fun line ->
            match Json.parse line with
            | Error e -> Alcotest.failf "bad JSONL line %S: %s" line e
            | Ok v -> (
              match Tracer.span_of_json v with
              | Some s -> s
              | None -> Alcotest.failf "not a span: %s" line))
          lines
      in
      Alcotest.(check bool) "spans survive round-trip" true (original = reread))

let test_tracer_export_counters () =
  with_default_tracer ~capacity:4 (fun () ->
      for i = 0 to 9 do
        emit_test_span i
      done;
      let r = Metrics.create () in
      Tracer.record_export_counters ~registry:r Tracer.default;
      let v name =
        match Metrics.find ~registry:r name with
        | Some (Metrics.Counter c) -> Metrics.value c
        | _ -> Alcotest.failf "%s not recorded" name
      in
      Alcotest.(check int) "obs.trace.added" 10 (v "obs.trace.added");
      Alcotest.(check int) "obs.trace.dropped" 6 (v "obs.trace.dropped"))

(* -- Integration: instrumentation agrees with the simulator ---------------- *)

let counter_value name =
  match Metrics.find name with
  | Some (Metrics.Counter c) -> Metrics.value c
  | Some _ -> Alcotest.failf "%s is not a counter" name
  | None -> Alcotest.failf "%s not registered" name

let test_sim_metrics_consistency () =
  Metrics.reset ();
  with_default_tracer ~capacity:(1 lsl 20) (fun () ->
      let preset =
        Dfs_workload.Presets.scaled (Dfs_workload.Presets.trace 1) ~factor:0.01
      in
      let cluster, _driver = Dfs_workload.Presets.run ~quiet:true preset in
      (* cache identity: every lookup is either a hit or a miss *)
      let lookups = counter_value "sim.cache.read_lookups" in
      let hits = counter_value "sim.cache.read_hits" in
      let misses = counter_value "sim.cache.read_misses" in
      Alcotest.(check bool) "cache saw traffic" true (lookups > 0);
      Alcotest.(check int) "hits + misses = lookups" lookups (hits + misses);
      (* the metrics layer and the network's own accounting agree *)
      let total_rpcs =
        Dfs_sim.Network.total_rpcs (Dfs_sim.Cluster.network cluster)
      in
      Alcotest.(check bool) "rpcs happened" true (total_rpcs > 0);
      Alcotest.(check int) "rpc counter matches network" total_rpcs
        (counter_value "sim.net.rpcs");
      (* every RPC produced exactly one span (ring did not overflow) *)
      Alcotest.(check int) "no spans dropped" 0 (Tracer.dropped Tracer.default);
      Alcotest.(check int) "one rpc span per rpc" total_rpcs
        (Tracer.count Tracer.default ~cat:"rpc");
      (* the other instrumented categories showed up too *)
      List.iter
        (fun cat ->
          Alcotest.(check bool)
            (Printf.sprintf "%s spans present" cat)
            true
            (Tracer.count Tracer.default ~cat > 0))
        [ "disk"; "cache" ])

let suite =
  [
    ("json round-trip", `Quick, test_json_roundtrip);
    ("json floats stay floats", `Quick, test_json_floats_stay_floats);
    ("json rejects garbage", `Quick, test_json_rejects_garbage);
    ("json unicode escapes", `Quick, test_json_unicode_escapes);
    ("json depth limit", `Quick, test_json_depth_limit);
    ("json duplicate keys", `Quick, test_json_duplicate_keys);
    ("counter semantics", `Quick, test_counter_semantics);
    ("gauge semantics", `Quick, test_gauge_semantics);
    ("histogram uniform quantiles", `Quick, test_histogram_uniform_quantiles);
    ( "histogram exponential quantiles",
      `Quick,
      test_histogram_exponential_quantiles );
    ("histogram constant and zero", `Quick, test_histogram_constant_and_zero);
    ("registry snapshot", `Quick, test_registry_snapshot);
    ( "histogram p999 and bulk quantiles",
      `Quick,
      test_histogram_p999_and_bulk_quantiles );
    QCheck_alcotest.to_alcotest quantile_error_bound;
    ("tracer disabled is noop", `Quick, test_tracer_disabled_is_noop);
    ("tracer ring bounding", `Quick, test_tracer_ring_bounding);
    ("tracer jsonl round-trip", `Quick, test_tracer_jsonl_roundtrip);
    ("tracer export counters", `Quick, test_tracer_export_counters);
    ("sim metrics consistency", `Slow, test_sim_metrics_consistency);
  ]
