(* Tests for the wall-clock profiler, the Chrome trace export, the pool's
   utilization gauges, and the run-report/diff toolchain. *)

module Json = Dfs_obs.Json
module Metrics = Dfs_obs.Metrics
module Profiler = Dfs_obs.Profiler
module Chrome = Dfs_obs.Chrome_export
module Run_report = Dfs_obs.Run_report

(* The profiler is process-global (the instrumented modules call it
   directly), so every test restores the disabled state on the way out. *)
let with_profiler f =
  Profiler.enable ();
  Fun.protect ~finally:Profiler.disable f

(* -- Profiler --------------------------------------------------------------- *)

let test_disabled_records_nothing () =
  Profiler.disable ();
  let r = Profiler.span "ignored" (fun () -> 42) in
  Alcotest.(check int) "thunk result" 42 r;
  Alcotest.(check bool) "inactive" false (Profiler.active ());
  Alcotest.(check int) "no spans" 0 (List.length (Profiler.spans ()))

let test_span_nesting_and_fields () =
  with_profiler (fun () ->
      let r =
        Profiler.span "outer" (fun () ->
            Profiler.span ~cat:"inner-cat" "inner" (fun () -> 7) + 1)
      in
      Alcotest.(check int) "result flows through" 8 r;
      match
        List.sort
          (fun (a : Profiler.span) b -> compare a.depth b.depth)
          (Profiler.spans ())
      with
      | [ outer; inner ] ->
        Alcotest.(check string) "outer name" "outer" outer.name;
        Alcotest.(check string) "default category" "phase" outer.cat;
        Alcotest.(check int) "outer depth" 0 outer.depth;
        Alcotest.(check string) "inner name" "inner" inner.name;
        Alcotest.(check string) "inner category" "inner-cat" inner.cat;
        Alcotest.(check int) "inner depth" 1 inner.depth;
        Alcotest.(check bool) "outer contains inner" true
          (outer.dur >= inner.dur);
        Alcotest.(check bool) "t0 ordered" true (outer.t0 <= inner.t0);
        Alcotest.(check bool) "gc deltas non-negative" true
          (inner.gc_minor >= 0 && inner.gc_major >= 0
          && inner.gc_promoted_words >= 0.0
          && inner.gc_minor_words >= 0.0)
      | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans))

let test_span_recorded_on_raise () =
  with_profiler (fun () ->
      (try Profiler.span "boom" (fun () -> failwith "boom") with
      | Failure _ -> ());
      Alcotest.(check int) "span survived the raise" 1
        (List.length (Profiler.spans ()));
      (* nesting depth was restored by the unwinding *)
      Profiler.span "after" (fun () -> ());
      match Profiler.spans () with
      | [ a; b ] ->
        Alcotest.(check int) "both top-level" 0 (a.depth + b.depth)
      | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l))

let test_per_domain_streams () =
  with_profiler (fun () ->
      let pool = Dfs_util.Pool.create ~jobs:4 () in
      let squares =
        Dfs_util.Pool.map pool
          (fun i ->
            Profiler.span "work" (fun () -> Sys.opaque_identity (i * i)))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      Alcotest.(check (list int))
        "map result" [ 1; 4; 9; 16; 25; 36; 49; 64 ] squares;
      let work =
        List.filter (fun (s : Profiler.span) -> s.name = "work")
          (Profiler.spans ())
      in
      Alcotest.(check int) "one span per item" 8 (List.length work);
      (* the pool also wraps each task *)
      Alcotest.(check int) "pool.task spans" 8
        (List.length
           (List.filter
              (fun (s : Profiler.span) -> s.name = "pool.task")
              (Profiler.spans ())));
      (* a hand-spawned domain gets its own stream, keyed by Domain.self
         (which worker picks up which pool task is scheduling-dependent,
         so the pool alone can't deterministically prove >1 stream) *)
      Profiler.span "on-main" (fun () -> ());
      Domain.join
        (Domain.spawn (fun () -> Profiler.span "on-spawned" (fun () -> ())));
      Alcotest.(check bool) "several domains recorded" true
        (List.length (Profiler.domains ()) >= 2);
      let domain_of name =
        (List.find (fun (s : Profiler.span) -> s.name = name)
           (Profiler.spans ()))
          .domain
      in
      Alcotest.(check bool) "streams keyed by domain" true
        (domain_of "on-main" <> domain_of "on-spawned"))

let test_enable_resets () =
  with_profiler (fun () ->
      Profiler.span "first" (fun () -> ());
      Profiler.enable ();
      Alcotest.(check int) "enable clears" 0 (List.length (Profiler.spans ()));
      Profiler.span "second" (fun () -> ());
      Alcotest.(check int) "added restarts" 1 (Profiler.added ());
      Alcotest.(check int) "nothing dropped" 0 (Profiler.dropped ()))

(* -- Chrome export ---------------------------------------------------------- *)

let test_chrome_export_roundtrip () =
  with_profiler (fun () ->
      Profiler.span "phase-a" (fun () ->
          Profiler.span ~cat:"merge" "phase-b" (fun () -> ()));
      Dfs_obs.Tracer.enable ~capacity:16 ();
      Fun.protect ~finally:Dfs_obs.Tracer.disable (fun () ->
          Dfs_obs.Tracer.emit ~cat:"rpc" ~name:"open" ~t0:1.0 ~dur:0.25
            ~attrs:[] ());
      let s = Json.to_string (Chrome.to_json ~tracer:Dfs_obs.Tracer.default ()) in
      match Json.parse s with
      | Error e -> Alcotest.failf "chrome export does not re-parse: %s" e
      | Ok v ->
        let events =
          match Json.member "traceEvents" v with
          | Some (Json.List l) -> l
          | _ -> Alcotest.fail "no traceEvents array"
        in
        let by_ph ph =
          List.filter
            (fun e -> Json.member "ph" e = Some (Json.String ph))
            events
        in
        (* 2 wall spans + 1 sim span *)
        Alcotest.(check int) "complete events" 3 (List.length (by_ph "X"));
        Alcotest.(check bool) "metadata names tracks" true
          (List.length (by_ph "M") >= 4);
        (* wall and sim spans land in separate processes *)
        let pids =
          List.filter_map
            (fun e -> Option.bind (Json.member "pid" e) Json.to_int_opt)
            (by_ph "X")
        in
        Alcotest.(check bool) "both pids present" true
          (List.mem 1 pids && List.mem 2 pids);
        (* sim time is mapped microsecond-for-second onto the timeline *)
        let sim =
          List.find
            (fun e ->
              Option.bind (Json.member "pid" e) Json.to_int_opt = Some 2)
            (by_ph "X")
        in
        (match Option.bind (Json.member "ts" sim) Json.to_float_opt with
        | Some ts -> Alcotest.(check (float 1.0)) "sim ts in us" 1e6 ts
        | None -> Alcotest.fail "sim event lacks ts"))

(* -- Pool gauges ------------------------------------------------------------ *)

let test_pool_utilization_gauges () =
  let g name =
    match Metrics.find name with
    | Some (Metrics.Gauge g) -> Metrics.gauge_value g
    | _ -> Alcotest.failf "gauge %s not published" name
  in
  let pool = Dfs_util.Pool.create ~jobs:2 () in
  ignore
    (Dfs_util.Pool.map pool
       (fun i -> Sys.opaque_identity (List.init 10_000 (fun j -> i * j)))
       [ 1; 2; 3; 4 ]);
  Alcotest.(check (float 0.0)) "worker count" 2.0 (g "pool.jobs");
  Alcotest.(check bool) "wall positive" true (g "pool.wall_s" > 0.0);
  Alcotest.(check bool) "per-domain busy gauges" true
    (g "pool.domain0.busy_s" >= 0.0 && g "pool.domain1.busy_s" >= 0.0);
  let u = g "pool.utilization" in
  Alcotest.(check bool) "utilization in (0, 1]" true (u > 0.0 && u <= 1.0);
  Alcotest.(check bool) "busy + idle = capacity" true
    (Float.abs
       (g "pool.busy_s" +. g "pool.idle_s"
       -. (2.0 *. g "pool.wall_s"))
    < 1e-6)

(* -- Run report and bench diff ---------------------------------------------- *)

let sample_bench ?(wall = 10.0) ?(heap = 1_000_000) () =
  Json.Obj
    [
      ("schema", Json.String "dfs-bench-run/4");
      ("scale", Json.Float 0.05);
      ("jobs", Json.Int 1);
      ("faults", Json.String "none");
      ( "phases",
        Json.Obj
          [
            ("sim_wall_s", Json.Float (wall /. 2.0));
            ("analysis_wall_s", Json.Float (wall /. 4.0));
          ] );
      ("total_wall_s", Json.Float wall);
      ( "gc",
        Json.Obj
          [
            ("top_heap_words", Json.Int heap);
            ("heap_words", Json.Int (heap / 2));
            ("major_collections", Json.Int 12);
          ] );
      ( "experiments",
        Json.List
          [
            Json.Obj
              [ ("id", Json.String "table1"); ("wall_s", Json.Float 0.5) ];
            Json.Obj
              [ ("id", Json.String "fig1"); ("wall_s", Json.Float 0.25) ];
          ] );
      ( "metrics",
        Json.Obj
          [
            ("pool.domain0.busy_s", Json.Float 4.0);
            ("pool.wall_s", Json.Float 5.0);
            ("pool.jobs", Json.Float 1.0);
            ("pool.utilization", Json.Float 0.8);
            ("phase.scorecard.wall_s", Json.Float 0.125);
          ] );
    ]

let required_sections =
  [
    "# dfs-repro run report";
    "## Run summary";
    "## Phase wall breakdown";
    "## Hottest spans";
    "## GC summary";
    "## Per-domain utilization";
  ]

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_report_sections_always_present () =
  (* fully populated ... *)
  let full = Run_report.report (sample_bench ()) in
  (* ... and degraded: no phases/metrics/experiments at all *)
  let empty = Run_report.report (Json.Obj [ ("schema", Json.String "x") ]) in
  List.iter
    (fun section ->
      Alcotest.(check bool)
        (Printf.sprintf "full has %S" section)
        true
        (contains ~needle:section full);
      Alcotest.(check bool)
        (Printf.sprintf "degraded has %S" section)
        true
        (contains ~needle:section empty))
    required_sections;
  Alcotest.(check bool) "utilization bar rendered" true
    (contains ~needle:"pool.domain0.busy_s" full);
  Alcotest.(check bool) "experiment walls used as span fallback" true
    (contains ~needle:"table1" full)

let test_report_uses_profile_spans () =
  with_profiler (fun () ->
      Profiler.span ~cat:"sim" "sim.trace1" (fun () -> ());
      let profile = Chrome.to_json () in
      let doc = Run_report.report ~profile (sample_bench ()) in
      Alcotest.(check bool) "profiled span named" true
        (contains ~needle:"sim.trace1" doc))

let test_diff_self_is_clean () =
  let b = sample_bench () in
  let d = Run_report.diff ~old_:b b in
  Alcotest.(check bool) "ok" true (Run_report.diff_ok d);
  Alcotest.(check int) "no regressions" 0 (List.length d.regressions);
  Alcotest.(check int) "no config mismatches" 0
    (List.length d.config_mismatches);
  Alcotest.(check bool) "verdict line" true
    (contains ~needle:"ok: no regressions" (Run_report.render_diff d))

let test_diff_flags_regression () =
  let d =
    Run_report.diff ~old_:(sample_bench ()) (sample_bench ~wall:15.0 ())
  in
  Alcotest.(check bool) "not ok" false (Run_report.diff_ok d);
  (* the +50% run trips every wall gate: total, sim phase and analysis
     phase *)
  Alcotest.(check int) "three regressions" 3 (List.length d.regressions);
  let row =
    List.find (fun (r : Run_report.row) -> r.metric = "total_wall_s") d.rows
  in
  Alcotest.(check bool) "row regressed" true (row.verdict = Run_report.Regressed);
  (match row.delta_pct with
  | Some pct -> Alcotest.(check (float 1e-6)) "delta" 50.0 pct
  | None -> Alcotest.fail "no delta");
  (* improvements and small moves pass *)
  let d' =
    Run_report.diff ~old_:(sample_bench ()) (sample_bench ~wall:8.0 ())
  in
  Alcotest.(check bool) "25%-improvement still ok" true (Run_report.diff_ok d')

let test_diff_heap_gate_and_custom_thresholds () =
  let d =
    Run_report.diff ~old_:(sample_bench ())
      (sample_bench ~heap:2_000_000 ())
  in
  Alcotest.(check bool) "heap doubling fails" false (Run_report.diff_ok d);
  (* the same comparison passes under a looser custom gate *)
  let d' =
    Run_report.diff
      ~thresholds:[ ("gc.top_heap_words", 1.5) ]
      ~old_:(sample_bench ())
      (sample_bench ~heap:2_000_000 ())
  in
  Alcotest.(check bool) "custom threshold" true (Run_report.diff_ok d')

let test_diff_config_mismatch () =
  let other =
    match sample_bench () with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) -> if k = "jobs" then (k, Json.Int 4) else (k, v))
           fields)
    | _ -> assert false
  in
  let d = Run_report.diff ~old_:(sample_bench ()) other in
  Alcotest.(check bool) "incomparable" false (Run_report.diff_ok d);
  Alcotest.(check int) "mismatch reported" 1 (List.length d.config_mismatches)

let test_diff_schema_bump_is_note_not_mismatch () =
  let other =
    match sample_bench () with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "schema" then (k, Json.String "dfs-bench-run/5") else (k, v))
           fields)
    | _ -> assert false
  in
  let d = Run_report.diff ~old_:(sample_bench ()) other in
  Alcotest.(check bool) "still comparable" true (Run_report.diff_ok d);
  Alcotest.(check int) "no config mismatch" 0 (List.length d.config_mismatches);
  Alcotest.(check int) "schema note" 1 (List.length d.notes);
  Alcotest.(check bool) "note rendered" true
    (contains ~needle:"note: schema changed" (Run_report.render_diff d))

let suite =
  [
    ("profiler disabled records nothing", `Quick, test_disabled_records_nothing);
    ("profiler span nesting and fields", `Quick, test_span_nesting_and_fields);
    ("profiler span recorded on raise", `Quick, test_span_recorded_on_raise);
    ("profiler per-domain streams", `Quick, test_per_domain_streams);
    ("profiler enable resets", `Quick, test_enable_resets);
    ("chrome export round-trips", `Quick, test_chrome_export_roundtrip);
    ("pool utilization gauges", `Quick, test_pool_utilization_gauges);
    ("report sections always present", `Quick, test_report_sections_always_present);
    ("report uses profile spans", `Quick, test_report_uses_profile_spans);
    ("diff self is clean", `Quick, test_diff_self_is_clean);
    ("diff flags regression", `Quick, test_diff_flags_regression);
    ("diff heap gate + custom thresholds", `Quick,
      test_diff_heap_gate_and_custom_thresholds);
    ("diff config mismatch", `Quick, test_diff_config_mismatch);
    ( "diff schema bump is note not mismatch",
      `Quick,
      test_diff_schema_bump_is_note_not_mismatch );
  ]
