(* The domain pool, the sharded metrics registry, and the end-to-end
   determinism guarantee: a parallel dataset must be byte-identical to a
   sequential one. *)

module Pool = Dfs_util.Pool
module Metrics = Dfs_obs.Metrics

(* -- pool semantics ----------------------------------------------------------- *)

let test_map_preserves_order () =
  let pool = Pool.create ~jobs:4 () in
  let xs = List.init 50 Fun.id in
  let ys = Pool.map pool (fun x -> x * x) xs in
  Alcotest.(check (list int)) "squares in input order"
    (List.map (fun x -> x * x) xs)
    ys

let test_map_matches_sequential () =
  let xs = List.init 37 (fun i -> i * 3) in
  let f x = (x * 7) mod 13 in
  let seq = Pool.map (Pool.create ~jobs:1 ()) f xs in
  let par = Pool.map (Pool.create ~jobs:4 ()) f xs in
  Alcotest.(check (list int)) "jobs=4 equals jobs=1" seq par

let test_map_empty_and_singleton () =
  let pool = Pool.create ~jobs:4 () in
  Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map pool (fun x -> x * 3) [ 3 ])

exception Boom of int

let test_exception_propagates_earliest () =
  let pool = Pool.create ~jobs:4 () in
  (* several tasks raise; the earliest input's exception must win,
     deterministically, however the domains interleave *)
  let got =
    try
      ignore
        (Pool.map pool
           (fun x -> if x mod 3 = 0 then raise (Boom x) else x)
           [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]);
      None
    with Boom n -> Some n
  in
  Alcotest.(check (option int)) "earliest failing input" (Some 3) got

let test_nested_use_rejected () =
  let pool = Pool.create ~jobs:2 () in
  let nested_failed =
    Pool.map pool
      (fun () ->
        match Pool.map pool (fun x -> x) [ 1 ] with
        | _ -> false
        | exception Invalid_argument _ -> true)
      [ (); () ]
  in
  Alcotest.(check (list bool)) "both tasks rejected" [ true; true ] nested_failed

let test_jobs_clamped () =
  Alcotest.(check int) "jobs >= 1" 1 (Pool.jobs (Pool.create ~jobs:0 ()))

let test_map_auto_degrades_inside_task () =
  let pool = Pool.create ~jobs:2 () in
  Alcotest.(check bool) "top level is not a pool task" false
    (Pool.in_pool_task ());
  Alcotest.(check (list int)) "top-level map_auto uses the pool" [ 2; 4; 6 ]
    (Pool.map_auto pool (fun x -> x * 2) [ 1; 2; 3 ]);
  (* inside a task, [map] raises but [map_auto] falls back to List.map *)
  let nested =
    Pool.map pool
      (fun () ->
        Pool.in_pool_task ()
        && Pool.map_auto pool (fun x -> x + 1) [ 1; 2 ] = [ 2; 3 ])
      [ (); () ]
  in
  Alcotest.(check (list bool)) "nested map_auto runs sequentially"
    [ true; true ] nested

(* -- sharded metrics ---------------------------------------------------------- *)

let test_counter_shards_sum_across_domains () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg "pool.test.counter" in
  let n_domains = 4 and per_domain = 10_000 in
  let domains =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" (n_domains * per_domain)
    (Metrics.value c)

let test_histogram_shards_merge_across_domains () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg "pool.test.hist" in
  let n_domains = 4 and per_domain = 1_000 in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Metrics.observe h (float_of_int ((d * per_domain) + i))
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "merged count" (n_domains * per_domain)
    (Metrics.hist_count h);
  Alcotest.(check (float 1e-6)) "merged min" 1.0 (Metrics.hist_min h);
  Alcotest.(check (float 1e-6)) "merged max"
    (float_of_int (n_domains * per_domain))
    (Metrics.hist_max h)

let test_counter_visible_from_spawning_domain () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg "pool.test.mixed" in
  Metrics.incr c;
  Domain.join (Domain.spawn (fun () -> Metrics.add c 5));
  Metrics.incr c;
  Alcotest.(check int) "main shard + worker shard" 7 (Metrics.value c)

(* -- parallel-vs-sequential determinism --------------------------------------- *)

(* Two presets at a small scale; the merged traces and the Table 1
   statistics must be structurally identical whatever DFS_JOBS is. *)
let test_dataset_deterministic_across_jobs () =
  let generate jobs =
    Dfs_core.Dataset.generate ~scale:0.004 ~traces:[ 1; 2 ] ~jobs ()
  in
  let seq = generate 1 and par = generate 4 in
  List.iter2
    (fun (a : Dfs_core.Dataset.run) (b : Dfs_core.Dataset.run) ->
      Alcotest.(check string) "preset order" a.preset.name b.preset.name;
      Alcotest.(check int) "trace length"
        (Dfs_trace.Record_batch.length (Dfs_core.Dataset.batch a))
        (Dfs_trace.Record_batch.length (Dfs_core.Dataset.batch b));
      Alcotest.(check bool) "identical merged traces" true
        (Dfs_trace.Record_batch.equal (Dfs_core.Dataset.batch a) (Dfs_core.Dataset.batch b));
      let sa = Dfs_analysis.Trace_stats.of_batch (Dfs_core.Dataset.batch a) in
      let sb = Dfs_analysis.Trace_stats.of_batch (Dfs_core.Dataset.batch b) in
      Alcotest.(check bool) "identical trace stats" true (sa = sb))
    seq.runs par.runs

(* The sharded fused pass must be bit-identical to the sequential sweep:
   per-record stats merge commutatively and the order-sensitive access/
   death streams are k-way merged by global record index before replay.
   Structural equality over the whole result (CDF sample lists included)
   is exactly that claim. *)
let test_fused_sharded_equals_sequential () =
  let ds = Dfs_core.Dataset.generate ~scale:0.004 ~traces:[ 1; 2 ] ~jobs:1 () in
  let pool = Pool.create ~jobs:4 () in
  List.iter
    (fun (run : Dfs_core.Dataset.run) ->
      let seq =
        Dfs_analysis.Fused.analyze_seq (Dfs_core.Dataset.trace_seq run)
      in
      let par = Dfs_analysis.Fused.analyze_chunks ~pool run.trace in
      Alcotest.(check int)
        (run.preset.name ^ ": same access count")
        (List.length seq.accesses) (List.length par.accesses);
      Alcotest.(check bool)
        (run.preset.name ^ ": sharded result bit-identical")
        true (seq = par))
    ds.runs

let test_dataset_sessions_memoized () =
  let ds = Dfs_core.Dataset.generate ~scale:0.004 ~traces:[ 1 ] ~jobs:1 () in
  let run = List.hd ds.runs in
  let a = Dfs_core.Dataset.sessions run in
  let b = Dfs_core.Dataset.sessions run in
  Alcotest.(check bool) "same (physically shared) reconstruction" true (a == b);
  Alcotest.(check bool) "non-empty" true (a <> [])

let suite =
  [
    Alcotest.test_case "pool: map preserves order" `Quick
      test_map_preserves_order;
    Alcotest.test_case "pool: parallel equals sequential" `Quick
      test_map_matches_sequential;
    Alcotest.test_case "pool: empty and singleton" `Quick
      test_map_empty_and_singleton;
    Alcotest.test_case "pool: earliest exception wins" `Quick
      test_exception_propagates_earliest;
    Alcotest.test_case "pool: nested use rejected" `Quick
      test_nested_use_rejected;
    Alcotest.test_case "pool: jobs clamped to 1" `Quick test_jobs_clamped;
    Alcotest.test_case "pool: map_auto degrades inside a task" `Quick
      test_map_auto_degrades_inside_task;
    Alcotest.test_case "metrics: counter shards sum" `Quick
      test_counter_shards_sum_across_domains;
    Alcotest.test_case "metrics: histogram shards merge" `Quick
      test_histogram_shards_merge_across_domains;
    Alcotest.test_case "metrics: cross-domain visibility" `Quick
      test_counter_visible_from_spawning_domain;
    Alcotest.test_case "dataset: jobs=1 equals jobs=4" `Slow
      test_dataset_deterministic_across_jobs;
    Alcotest.test_case "fused: sharded equals sequential" `Slow
      test_fused_sharded_equals_sequential;
    Alcotest.test_case "dataset: sessions memoized" `Quick
      test_dataset_sessions_memoized;
  ]
