module User = Dfs_trace.Ids.User
module Process = Dfs_trace.Ids.Process
module Rng = Dfs_util.Rng

(* A host with console activity in the last this-many seconds is not a
   migration target (Sprite waited for idleness). *)
let idle_threshold = 120.0

let max_jobs_per_host = 2

type t = {
  n_clients : int;
  load : int array;  (* running migrated jobs per host *)
  last_console : float array;
  history : int list User.Tbl.t;  (* recently used hosts, newest first *)
  mutable next_pid : int;
}

let create ~n_clients ?(pid_base = 0) () =
  {
    n_clients;
    load = Array.make n_clients 0;
    last_console = Array.make n_clients neg_infinity;
    history = User.Tbl.create 64;
    next_pid = pid_base;
  }

let fresh_pid t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  Process.of_int pid

let note_home_activity t ~host ~now = t.last_console.(host) <- now

let eligible t ~home ~now host =
  host <> home
  && t.load.(host) < max_jobs_per_host
  && now -. t.last_console.(host) > idle_threshold

let pick_host t ~rng ~user ~home ~now =
  let history =
    Option.value ~default:[] (User.Tbl.find_opt t.history user)
  in
  (* Reuse a previous host when it is still idle... *)
  let reused = List.find_opt (eligible t ~home ~now) history in
  let choice =
    match reused with
    | Some h -> Some h
    | None ->
      (* ...otherwise scan from a random starting point. *)
      let start = Rng.int rng t.n_clients in
      let rec scan i =
        if i >= t.n_clients then None
        else begin
          let host = (start + i) mod t.n_clients in
          if eligible t ~home ~now host then Some host else scan (i + 1)
        end
      in
      scan 0
  in
  (match choice with
  | Some host ->
    let history = host :: List.filter (( <> ) host) history in
    let history = if List.length history > 4 then List.filteri (fun i _ -> i < 4) history else history in
    User.Tbl.replace t.history user history
  | None -> ());
  choice

let m_jobs = Dfs_obs.Metrics.counter "workload.migrations"

let job_started t ~host =
  t.load.(host) <- t.load.(host) + 1;
  Dfs_obs.Metrics.incr m_jobs;
  if Dfs_obs.Tracer.active () then
    Dfs_obs.Tracer.emit ~cat:"migration" ~name:"start"
      ~t0:(Dfs_obs.Clock.now ()) ~dur:0.0
      ~attrs:[ ("host", Dfs_obs.Json.Int host) ]
      ()

let job_finished t ~host =
  t.load.(host) <- max 0 (t.load.(host) - 1);
  if Dfs_obs.Tracer.active () then
    Dfs_obs.Tracer.emit ~cat:"migration" ~name:"finish"
      ~t0:(Dfs_obs.Clock.now ()) ~dur:0.0
      ~attrs:[ ("host", Dfs_obs.Json.Int host) ]
      ()

let migrated_load t ~host = t.load.(host)
