(** Sharded (partitioned) simulation runs.

    Partitions a cluster — clients plus their home servers — into
    per-domain shards executed as one conservative parallel
    discrete-event simulation (see {!Dfs_sim.Pdes}): each partition is
    an ordinary {!Dfs_sim.Cluster} minting globally disjoint
    client/server/file/user/pid id ranges, partitions advance through
    shared lookahead windows derived from the network's
    [remote_latency] lower bound, and cross-partition RPCs are
    exchanged as totally-ordered timestamped batches at window
    barriers.

    Determinism contract: the partition layout, every per-partition RNG
    stream, and the cross-partition message order are pure functions of
    the run configuration (seed, cluster size) and of stable entity ids
    — never of the worker count.  [--sim-shards] therefore changes only
    how many domains execute the windows; output is byte-identical at
    shards 1 vs N. *)

val set_shards : int option -> unit
(** CLI override for the worker count ([None]: auto). *)

val shards : unit -> int
(** Effective requested worker count: the {!set_shards} override, else
    [DFS_SIM_SHARDS], else {!Dfs_util.Pool.default_jobs}. *)

val drive : Dfs_sim.Cluster.t -> until:float -> unit
(** Run a single (unpartitioned) cluster through the windowed executor:
    one partition, coarse [duration/256] windows.  Byte-identical to
    [Engine.run_until] — windows only slice the same event order — but
    exercises the barrier machinery and its telemetry on every run.
    This is the path {!Presets.run} takes. *)

(** {1 Partitioned scale runs} *)

type config = {
  n_clients : int;
  n_servers : int;
  seed : int;
  duration : float;  (** simulated seconds *)
  start_hour : float;
  fault_profile : Dfs_fault.Profile.t;
  partitions : int option;  (** [None]: {!auto_partitions} *)
  chunk_records : int option;
  spill_dir : string option;
}

val default_config : config

type result = {
  partitions : int;
  workers : int;  (** execution domains actually used *)
  users : int;
  barriers : int;  (** window barriers executed *)
  remote_msgs : int;  (** cross-partition messages exchanged *)
  merged : Dfs_trace.Sink.chunks;
      (** scrubbed global trace, k-way merged across all partitions *)
  clusters : Dfs_sim.Cluster.t array;
  drivers : Driver.t array;
}

val auto_partitions : n_clients:int -> n_servers:int -> int
(** One partition per ~64 clients, capped by the server count; at least
    1.  A pure function of cluster size, never of the worker count. *)

val run : ?workers:int -> config -> result
(** Build the partitions, wire deterministic cross-partition read
    traffic, execute to [duration] on [workers] domains (default
    {!shards}; clamped to the partition count), and merge the
    per-partition traces.  Safe to call from inside a {!Dfs_util.Pool}
    task — the worker team is a first-class entry point that composes
    with the preset-level [--jobs] fan-out. *)

val digest : Dfs_trace.Sink.chunks -> int
(** CRC-32C over the text encoding of every record in stream order —
    the stable content fingerprint the shards-1-vs-N identity checks
    compare. *)

val release : result -> unit
(** Release all partitions' simulation state (traces, queues, tables);
    the merged trace and counters survive. *)
