module Cluster = Dfs_sim.Cluster
module Dist = Dfs_util.Dist

type preset = {
  name : string;
  seed : int;
  duration : float;
  start_hour : float;
  cluster_config : Cluster.config;
  params : Params.t;
  special_users : Driver.special_user list;
}

let mb x = int_of_float (1048576.0 *. x)

(* The simulator user of traces 3-4: input files averaging 20 Mbytes,
   re-read run after run. *)
let big_input_user params =
  let gp = Params.find_group params Params.Architecture in
  let gp' =
    {
      gp with
      Params.big_input_size =
        Dist.Clamped (Dist.Lognormal (log (float_of_int (mb 20.0)), 0.2),
                      float_of_int (mb 12.0), float_of_int (mb 28.0));
      big_output_size = Dist.Constant (float_of_int (mb 0.5));
    }
  in
  {
    Driver.su_group = Params.Architecture;
    su_params =
      {
        params with
        Params.groups =
          (Params.Architecture, gp')
          :: List.remove_assoc Params.Architecture params.Params.groups;
      };
    su_app = Apps.Big_sim;
    su_think = Dist.Exponential 90.0;
  }

(* The cache-simulation user of traces 3-4: produces a 10 Mbyte output
   that is post-processed and deleted, over and over. *)
let big_output_user params =
  let gp = Params.find_group params Params.Vlsi_parallel in
  let gp' =
    {
      gp with
      Params.big_input_size = Dist.Constant (float_of_int (mb 2.0));
      big_output_size = Dist.Constant (float_of_int (mb 10.0));
    }
  in
  {
    Driver.su_group = Params.Vlsi_parallel;
    su_params =
      {
        params with
        Params.groups =
          (Params.Vlsi_parallel, gp')
          :: List.remove_assoc Params.Vlsi_parallel params.Params.groups;
      };
    su_app = Apps.Big_sim;
    su_think = Dist.Exponential 120.0;
  }

let base_preset n =
  let params = Params.default in
  let cluster_config =
    { Cluster.default_config with seed = 1000 + (37 * n) }
  in
  {
    name = Printf.sprintf "trace%d" n;
    seed = cluster_config.seed;
    duration = 86400.0;
    start_hour = 0.0;
    cluster_config;
    params;
    special_users = [];
  }

let trace n =
  if n < 1 || n > 8 then invalid_arg "Presets.trace: expected 1-8";
  let p = base_preset n in
  if n = 3 || n = 4 then
    { p with special_users = [ big_input_user p.params; big_output_user p.params ] }
  else p

let all () = List.init 8 (fun i -> trace (i + 1))

let with_faults p profile =
  { p with cluster_config = { p.cluster_config with fault_profile = profile } }

let scaled p ~factor =
  assert (factor > 0.0 && factor <= 1.0);
  {
    p with
    duration = p.duration *. factor;
    start_hour = (if factor < 0.99 then 9.5 else p.start_hour);
  }

let run ?(quiet = true) p =
  ignore quiet;
  let cluster = Cluster.create p.cluster_config in
  let driver =
    Driver.setup ~cluster ~params:p.params ~start_hour:p.start_hour
      ~special_users:p.special_users ()
  in
  (* Single-partition conservative-PDES execution: byte-identical to the
     old [Driver.run] (windows only slice the same event order), but
     every run now reports barrier/window telemetry. *)
  Sharded.drive cluster ~until:p.duration;
  (cluster, driver)
