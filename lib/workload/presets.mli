(** The eight 24-hour trace configurations of Table 1.

    Traces were collected in pairs over four 48-hour periods; no attempt
    was made to keep workloads consistent across them, so the presets
    differ in seed (and thus in what the population happens to do).
    During traces 3 and 4, two users were running class projects with
    very large files: one a simulator reading ~20 MB inputs, the other a
    cache simulation producing a 10 MB file that was post-processed and
    deleted — both repeatedly all day.  Those two users are modelled as
    dedicated {!Driver.special_user}s. *)

type preset = {
  name : string;  (** "trace1" .. "trace8" *)
  seed : int;
  duration : float;  (** seconds; 24 h *)
  start_hour : float;  (** wall-clock hour at trace start *)
  cluster_config : Dfs_sim.Cluster.config;
  params : Params.t;
  special_users : Driver.special_user list;
}

val trace : int -> preset
(** [trace n] for [n] in 1-8.  @raise Invalid_argument otherwise. *)

val all : unit -> preset list

val with_faults : preset -> Dfs_fault.Profile.t -> preset
(** The same preset with fault injection enabled (or disabled again with
    {!Dfs_fault.Profile.none}).  The fault schedule derives only from
    the profile's own seed, so the underlying workload is unchanged. *)

val scaled : preset -> factor:float -> preset
(** Shrink a preset's duration by [factor] (e.g. 0.1 for a ~2.4-hour
    run), starting mid-morning so the short window covers the busy part
    of the day.  Analyses normalize by duration, so scaled runs preserve
    rates; absolute per-day counts shrink proportionally. *)

val run : ?quiet:bool -> preset -> Dfs_sim.Cluster.t * Driver.t
(** Build the cluster, set up the population, and run for the preset's
    duration. *)
