(** Process-migration support: pmake's idle-host selection.

    Sprite offloads jobs to idle workstations; the selection policy
    "tends to reuse the same hosts over and over again", which the paper
    credits for migrated processes' unusually good cache hit ratios.
    This board tracks per-host load and per-user host history, and also
    allocates process ids for the whole workload. *)

type t

val create : n_clients:int -> ?pid_base:int -> unit -> t
(** [pid_base] (default 0) is where pid allocation starts — partitions
    of a sharded simulation use disjoint pid ranges. *)

val fresh_pid : t -> Dfs_trace.Ids.Process.t

val note_home_activity : t -> host:int -> now:float -> unit
(** The console user did something; the host is not idle for a while. *)

val pick_host :
  t ->
  rng:Dfs_util.Rng.t ->
  user:Dfs_trace.Ids.User.t ->
  home:int ->
  now:float ->
  int option
(** An idle host for a migrated job: prefers hosts this user used before
    (reuse), avoids the home machine, hosts with recent console activity,
    and hosts already running two or more migrated jobs.  [None] when no
    host qualifies (the job then runs at home, unmigrated). *)

val job_started : t -> host:int -> unit

val job_finished : t -> host:int -> unit

val migrated_load : t -> host:int -> int
