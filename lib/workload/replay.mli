(** Trace replay: drive an imported (or any canonical) record stream
    through a live simulated cluster.

    Analyses split in two: the trace-only ones (Tables 1–3, 10–12, the
    figures, the fused pass) could read an imported trace directly, but
    the cache and traffic analyses (Tables 4–9) read the finished
    cluster — client block caches, kernel counters, traffic taps.
    Replay therefore re-executes the foreign workload as real client
    operations: the cluster's servers log their own trace while its
    caches, counters and consistency machinery run exactly as they do
    under the synthetic drivers, so {e every} experiment runs unchanged
    on foreign data.

    Mechanics: the cluster is sized from the trace's id ranges; every
    file is pre-created on the server the trace assigns it; records are
    partitioned into per-[(client, pid)] streams, each driven by one
    engine process that sleeps to each record's timestamp (absolute
    anchoring — operation latencies never accumulate as drift) and
    issues the corresponding {!Dfs_sim.Client} call.  A session's reads
    and writes are performed at close time from its byte totals,
    mirroring the paper's own semantics (positions at open/seek/close,
    totals at close).  Execution uses the single-partition windowed
    executor, so [--sim-shards] and [DFS_JOBS] leave the replayed trace
    byte-identical.

    Replay is tolerant by design — a hostile trace must not crash it:
    a close without an open synthesizes the open; operations on
    deleted/unknown files are skipped and counted.  The
    [replay.applied] / [replay.skipped] / [replay.synthesized_opens]
    counters expose the outcome ([replay.skipped] is asserted zero in
    CI for the committed sample). *)

type stats = {
  records : int;  (** input records *)
  applied : int;  (** records executed as client operations *)
  skipped : int;  (** records dropped (unknown file, no fd, …) *)
  synthesized_opens : int;  (** opens fabricated for orphan closes *)
  clients : int;
  servers : int;
  files : int;
  horizon : float;  (** simulated seconds the cluster ran *)
}

val max_clients : int
(** Hard ceiling on the client count a trace may demand (4096): a
    hostile trace with one huge client id must fail with a one-line
    error, not exhaust memory. *)

val max_servers : int
(** Ceiling on the server count (64). *)

val max_files : int
(** Ceiling on distinct file ids (1_000_000). *)

val run :
  ?seed:int ->
  ?config:Dfs_sim.Cluster.config ->
  Dfs_trace.Record.t list ->
  (Dfs_sim.Cluster.t * stats, string) result
(** Replay a time-sorted record stream.  [config] overrides the
    cluster template (its [n_clients]/[n_servers] are still raised to
    cover the trace's id ranges; infrastructure daemons are disabled so
    the replayed trace contains exactly the foreign workload).  Returns
    the finished cluster — read {!Dfs_sim.Cluster.merged_chunks},
    counters and caches from it — or a one-line error for an empty
    trace, an unsorted trace, or id ranges beyond the ceilings. *)
