module Ids = Dfs_trace.Ids
module Rng = Dfs_util.Rng
module Dist = Dfs_util.Dist
module Engine = Dfs_sim.Engine
module Cluster = Dfs_sim.Cluster

type special_user = {
  su_group : Params.group;
  su_params : Params.t;
  su_app : Apps.app;
  su_think : Dfs_util.Dist.t;
}

type spec = {
  user : Ids.User.t;
  group : Params.group;
  home : int;
  params : Params.t;
  think : Dfs_util.Dist.t;
  activity_scale : float;  (** occasional users run at a fraction of the rate *)
  fixed_app : Apps.app option;
  uses_migration : bool;
}

type t = {
  cluster : Cluster.t;
  params : Params.t;
  ns : Namespace.t;
  board : Migration.t;
  specs : spec list;
  start_hour : float;
}

let hour_of t now =
  let h = t.start_hour +. (now /. 3600.0) in
  int_of_float h mod 24

let session t (spec : spec) =
  let rng = Rng.split (Cluster.rng t.cluster) in
  let ctx =
    {
      Apps.cluster = t.cluster;
      params = spec.params;
      ns = t.ns;
      board = t.board;
      rng;
      user = spec.user;
      group = spec.group;
      home = spec.home;
      uses_migration = spec.uses_migration;
    }
  in
  let engine = Cluster.engine t.cluster in
  Engine.spawn engine (fun () ->
      (* stagger session starts so users do not tick in lockstep *)
      Engine.sleep (Rng.uniform rng 0.0 120.0);
      let home_client = Cluster.client t.cluster spec.home in
      (* The user's long-lived login session (shell, window system): it
         stays resident while the user works, gets swapped to the backing
         file when the user goes idle, and pages back in when they return
         — the paper observes that much paging traffic happens at such
         major changes of activity. *)
      let login_cred =
        Dfs_sim.Cred.make ~user:spec.user
          ~pid:(Migration.fresh_pid t.board)
          ~client:(Cluster.client_id t.cluster spec.home)
          ~migrated:false
      in
      let login_bin = Namespace.pick_binary t.ns ~rng ~name:"sh" in
      Dfs_sim.Client.exec_process home_client ~cred:login_cred
        ~exe:login_bin.exe ~code_bytes:login_bin.code_bytes
        ~data_bytes:login_bin.data_bytes;
      Dfs_sim.Client.grow_process home_client ~cred:login_cred
        ~heap_bytes:((1 + Rng.int rng 3) * 1024 * 1024);
      (* Users work in engaged bursts separated by breaks: during an
         engaged period they fire applications every think-time or so;
         breaks stretch with the day/night profile, so nights are quiet.
         Returning from a long break pages the login session back in —
         the "user returns to the workstation" paging burst of
         Section 5.3. *)
      let rec session_loop () =
        let now = Engine.now engine in
        let activity =
          spec.params.hour_activity.(hour_of t now) *. spec.activity_scale
        in
        let break_len =
          Rng.exponential rng 1500.0 /. Float.max 0.02 activity
        in
        if break_len > 600.0 then begin
          Dfs_sim.Client.swap_out_process home_client ~cred:login_cred
            ~fraction:0.55;
          Engine.sleep break_len;
          Dfs_sim.Client.swap_in_process home_client ~cred:login_cred
            ~fraction:1.0
        end
        else Engine.sleep break_len;
        let engaged_until =
          Engine.now engine +. Rng.exponential rng 3000.0
        in
        let rec burst () =
          if Engine.now engine < engaged_until then begin
            Engine.sleep (Dist.sample spec.think rng);
            let app =
              match spec.fixed_app with
              | Some a -> a
              | None ->
                Apps.pick (Params.find_group spec.params spec.group).mix
                  ctx.rng
            in
            Apps.run ctx app;
            burst ()
          end
        in
        burst ();
        session_loop ()
      in
      session_loop ())

let setup ~cluster ~params ?(start_hour = 0.0) ?(special_users = []) () =
  let rng = Rng.split (Cluster.rng cluster) in
  let ns =
    Namespace.create ~fs:(Cluster.fs cluster) ~rng ~params
      ~now:(Engine.now (Cluster.engine cluster))
      ~n_users:(params.n_regular_users + params.n_occasional_users)
  in
  let n_clients = Array.length (Cluster.clients cluster) in
  let cluster_cfg = Cluster.cfg cluster in
  let board =
    Migration.create ~n_clients ~pid_base:cluster_cfg.Cluster.pid_base ()
  in
  let mk_spec idx ~activity_scale ~params ~fixed_app ~group ~think =
    {
      (* [idx] stays local (it drives group assignment and home-client
         round-robin); only the trace-visible id gets the global base. *)
      user = Ids.User.of_int (cluster_cfg.Cluster.user_id_base + idx);
      group;
      home = idx mod n_clients;
      params;
      think;
      activity_scale;
      fixed_app;
      (* a handful of the regular users harness idle machines via
         migration (the paper saw 6-11 per trace, and only ~1 user per
         10-minute interval with active migrated work); the stride is
         coprime to the 4-cycle of group assignment so they span groups *)
      uses_migration =
        (idx mod 7 = 1 && idx < params.n_regular_users) || fixed_app <> None;
    }
  in
  let regular =
    List.init params.n_regular_users (fun i ->
        let group = Params.group_of_user params i in
        mk_spec i ~activity_scale:1.0 ~params ~fixed_app:None ~group
          ~think:(Params.find_group params group).think_time)
  in
  let occasional =
    List.init params.n_occasional_users (fun i ->
        let idx = params.n_regular_users + i in
        let group = Params.group_of_user params idx in
        mk_spec idx ~activity_scale:0.12 ~params ~fixed_app:None ~group
          ~think:(Params.find_group params group).think_time)
  in
  let special =
    List.mapi
      (fun i su ->
        let idx = params.n_regular_users + params.n_occasional_users + i in
        mk_spec idx ~activity_scale:1.0 ~params:su.su_params
          ~fixed_app:(Some su.su_app) ~group:su.su_group ~think:su.su_think)
      special_users
  in
  let specs = regular @ occasional @ special in
  let t = { cluster; params; ns; board; specs; start_hour } in
  List.iter (session t) specs;
  t

let board t = t.board

let namespace t = t.ns

let n_users t = List.length t.specs

let run t ~until = Cluster.run t.cluster ~until
