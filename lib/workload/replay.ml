module Cluster = Dfs_sim.Cluster
module Client = Dfs_sim.Client
module Engine = Dfs_sim.Engine
module Fs_state = Dfs_sim.Fs_state
module Cred = Dfs_sim.Cred
module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids

type stats = {
  records : int;
  applied : int;
  skipped : int;
  synthesized_opens : int;
  clients : int;
  servers : int;
  files : int;
  horizon : float;
}

(* Ceilings on what a trace may demand of the simulator: a hostile
   trace with one enormous id must produce a one-line error, never an
   allocation storm. *)
let max_clients = 4096

let max_servers = 64

let max_files = 1_000_000

let m_applied = Dfs_obs.Metrics.counter "replay.applied"

let m_skipped = Dfs_obs.Metrics.counter "replay.skipped"

let m_synth = Dfs_obs.Metrics.counter "replay.synthesized_opens"

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* First pass over the trace: id ranges, time order, and the identity
   of every file (owning server, directory-ness, pre-existing size). *)
type file_seed = {
  fserver : Ids.Server.t;
  mutable fdir : bool;
  mutable fsize : int;
}

type scan = {
  n_clients : int;
  n_servers : int;
  file_seeds : (int * file_seed) list;  (* first-appearance order *)
  last_time : float;
}

let scan_trace records =
  let max_client = ref (-1) and max_server = ref (-1) in
  let seeds : file_seed Ids.File.Tbl.t = Ids.File.Tbl.create 256 in
  let order = ref [] in
  let last_time = ref 0.0 in
  let bad = ref None in
  List.iteri
    (fun i (r : Record.t) ->
      if !bad = None then begin
        if r.time < !last_time then
          bad := Some (Printf.sprintf "record %d out of time order" i)
        else begin
          last_time := r.time;
          max_client := max !max_client (Ids.Client.to_int r.client);
          max_server := max !max_server (Ids.Server.to_int r.server);
          let seed =
            match Ids.File.Tbl.find_opt seeds r.file with
            | Some s -> s
            | None ->
              let s = { fserver = r.server; fdir = false; fsize = 0 } in
              Ids.File.Tbl.add seeds r.file s;
              order := Ids.File.to_int r.file :: !order;
              s
          in
          match r.kind with
          | Record.Open { is_dir; created; size; _ } ->
            if is_dir then seed.fdir <- true;
            if (not created) && seed.fsize = 0 then seed.fsize <- size
          | Record.Delete { is_dir; _ } -> if is_dir then seed.fdir <- true
          | Record.Dir_read _ -> seed.fdir <- true
          | _ -> ()
        end
      end)
    records;
  match !bad with
  | Some e -> Error e
  | None ->
    let file_seeds =
      List.rev_map
        (fun id -> (id, Ids.File.Tbl.find seeds (Ids.File.of_int id)))
        !order
    in
    Ok
      {
        n_clients = !max_client + 1;
        n_servers = !max_server + 1;
        file_seeds = List.rev file_seeds;
        last_time = !last_time;
      }

(* Per-(client, pid) execution stream.  Each stream runs as one engine
   process; within a stream operations are sequential, so its fd state
   needs no locking. *)
type open_state = { fd : Client.fd; start_pos : int }

let chunked_read client fd total =
  (* [Client.read] clamps at end of file; totals larger than the file
     mean the session re-read data, so wrap to the start and continue.
     An empty file stops immediately. *)
  let rec go remaining =
    if remaining > 0 then begin
      let got = Client.read client fd ~len:remaining in
      if got > 0 then go (remaining - got)
      else if Client.fd_pos client fd > 0 then begin
        Client.seek client fd ~pos:0;
        go remaining
      end
    end
  in
  go total

let drive_stream ~cluster ~fs ~files ~applied ~skipped ~synth stream =
  let engine = Cluster.engine cluster in
  (* fd stacks per file id: duplicate opens nest, closes pop. *)
  let open_fds : open_state list Ids.File.Tbl.t = Ids.File.Tbl.create 16 in
  let push file st =
    Ids.File.Tbl.replace open_fds file
      (st :: Option.value ~default:[] (Ids.File.Tbl.find_opt open_fds file))
  and pop file =
    match Ids.File.Tbl.find_opt open_fds file with
    | Some (st :: rest) ->
      if rest = [] then Ids.File.Tbl.remove open_fds file
      else Ids.File.Tbl.replace open_fds file rest;
      Some st
    | Some [] | None -> None
  in
  let top file =
    match Ids.File.Tbl.find_opt open_fds file with
    | Some (st :: _) -> Some st
    | Some [] | None -> None
  in
  let do_open client ~cred ~(r : Record.t) ~mode ~created ~start_pos =
    match Ids.File.Tbl.find_opt files r.file with
    | None -> None
    | Some (info : Fs_state.file_info) ->
      if not info.exists then
        if created then Fs_state.recreate fs ~now:r.time info.id
        else raise Exit (* open of a deleted file: skip *);
      let fd = Client.open_file client ~cred ~info ~mode ~created in
      if start_pos > 0 then Client.seek client fd ~pos:start_pos;
      Some { fd; start_pos }
  in
  let apply client (r : Record.t) =
    let cred =
      Cred.make ~user:r.user ~pid:r.pid ~client:r.client ~migrated:r.migrated
    in
    let info () = Ids.File.Tbl.find_opt files r.file in
    let live_info () =
      match info () with
      | Some (i : Fs_state.file_info) when i.exists -> Some i
      | Some _ | None -> None
    in
    let close_session st ~bytes_read ~bytes_written =
      chunked_read client st.fd bytes_read;
      if bytes_written > 0 then
        ignore (Client.write client st.fd ~len:bytes_written);
      Client.close client st.fd
    in
    match r.kind with
    | Record.Open { mode; created; is_dir = _; size = _; start_pos } -> (
      match do_open client ~cred ~r ~mode ~created ~start_pos with
      | Some st ->
        push r.file st;
        incr applied
      | None -> incr skipped)
    | Record.Close { bytes_read; bytes_written; size = _; final_pos = _ } -> (
      let st =
        match pop r.file with
        | Some st -> Some st
        | None ->
          (* Orphan close (hostile or truncated source): fabricate the
             open so the session still exercises the cache path. *)
          let mode =
            match (bytes_read > 0, bytes_written > 0) with
            | _, false -> Record.Read_only
            | true, true -> Record.Read_write
            | false, true -> Record.Write_only
          in
          (match do_open client ~cred ~r ~mode ~created:false ~start_pos:0 with
          | Some st ->
            incr synth;
            Some st
          | None -> None)
      in
      match st with
      | Some st ->
        close_session st ~bytes_read ~bytes_written;
        incr applied
      | None -> incr skipped)
    | Record.Reposition { pos_after; pos_before = _ } -> (
      match top r.file with
      | Some st ->
        Client.seek client st.fd ~pos:pos_after;
        incr applied
      | None -> incr skipped)
    | Record.Delete _ -> (
      match live_info () with
      | Some info ->
        Client.delete client ~cred ~info;
        incr applied
      | None -> incr skipped)
    | Record.Truncate _ -> (
      match live_info () with
      | Some info ->
        Client.truncate client ~cred ~info;
        incr applied
      | None -> incr skipped)
    | Record.Dir_read _ -> (
      match live_info () with
      | Some info when info.is_dir ->
        Client.read_dir client ~cred ~info;
        incr applied
      | Some _ | None -> incr skipped)
    | Record.Shared_read { offset; length } -> (
      match top r.file with
      | Some st ->
        Client.seek client st.fd ~pos:offset;
        chunked_read client st.fd length;
        incr applied
      | None -> incr skipped)
    | Record.Shared_write { offset; length } -> (
      match top r.file with
      | Some st ->
        Client.seek client st.fd ~pos:offset;
        if length > 0 then ignore (Client.write client st.fd ~len:length);
        incr applied
      | None -> incr skipped)
  in
  match stream with
  | [] -> ()
  | (first : Record.t) :: _ ->
    let client = Cluster.client cluster (Ids.Client.to_int first.client) in
    Engine.spawn engine (fun () ->
        List.iter
          (fun (r : Record.t) ->
            (* Absolute time anchoring: sleep to the record's stamp, so
               operation latencies never accumulate as drift.  A record
               whose time has already passed runs immediately. *)
            let dt = r.time -. Engine.now engine in
            if dt > 0.0 then Engine.sleep dt;
            try apply client r with Exit -> incr skipped)
          stream)

let run ?(seed = 7) ?config records =
  let* () = if records = [] then Error "empty trace: nothing to replay" else Ok () in
  let* scan = scan_trace records in
  let* () =
    if scan.n_clients > max_clients then
      err "trace needs %d clients; replay supports at most %d" scan.n_clients
        max_clients
    else Ok ()
  in
  let* () =
    if scan.n_servers > max_servers then
      err "trace needs %d servers; replay supports at most %d" scan.n_servers
        max_servers
    else Ok ()
  in
  let* () =
    if List.length scan.file_seeds > max_files then
      err "trace references %d files; replay supports at most %d"
        (List.length scan.file_seeds) max_files
    else Ok ()
  in
  let base = Option.value ~default:Cluster.default_config config in
  let cfg =
    {
      base with
      Cluster.n_clients = max base.Cluster.n_clients scan.n_clients;
      n_servers = max base.Cluster.n_servers scan.n_servers;
      seed;
      (* The replayed trace must contain exactly the foreign workload:
         no trace-daemon or backup records to scrub. *)
      simulate_infrastructure = false;
    }
  in
  let cluster = Cluster.create cfg in
  let fs = Cluster.fs cluster in
  (* Pre-create every file on the server the trace assigns it; imported
     placement survives replay (the minted ids need not match — every
     analysis is aggregate). *)
  let files : Fs_state.file_info Ids.File.Tbl.t =
    Ids.File.Tbl.create (max 16 (List.length scan.file_seeds))
  in
  List.iter
    (fun (id, seed) ->
      let info =
        Fs_state.create_file fs ~now:0.0 ~server:seed.fserver ~dir:seed.fdir
          ~size:seed.fsize ()
      in
      Ids.File.Tbl.replace files (Ids.File.of_int id) info)
    scan.file_seeds;
  (* Partition into per-(client, pid) streams, spawned in sorted key
     order so the event schedule is a pure function of the trace. *)
  let streams : (int * int, Record.t list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Record.t) ->
      let key = (Ids.Client.to_int r.client, Ids.Process.to_int r.pid) in
      Hashtbl.replace streams key
        (r :: Option.value ~default:[] (Hashtbl.find_opt streams key)))
    records;
  let applied = ref 0 and skipped = ref 0 and synth = ref 0 in
  Hashtbl.fold (fun key stream acc -> (key, List.rev stream) :: acc) streams []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (_, stream) ->
         drive_stream ~cluster ~fs ~files ~applied ~skipped ~synth stream);
  (* Slack past the last record covers delayed-write scans and the
     30-second writeback window, so the replayed day ends quiesced. *)
  let horizon = scan.last_time +. 60.0 in
  Sharded.drive cluster ~until:horizon;
  Dfs_obs.Metrics.add m_applied !applied;
  Dfs_obs.Metrics.add m_skipped !skipped;
  Dfs_obs.Metrics.add m_synth !synth;
  Ok
    ( cluster,
      {
        records = List.length records;
        applied = !applied;
        skipped = !skipped;
        synthesized_opens = !synth;
        clients = cfg.Cluster.n_clients;
        servers = cfg.Cluster.n_servers;
        files = List.length scan.file_seeds;
        horizon;
      } )
