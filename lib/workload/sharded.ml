module Cluster = Dfs_sim.Cluster
module Engine = Dfs_sim.Engine
module Network = Dfs_sim.Network
module Pdes = Dfs_sim.Pdes
module Rng = Dfs_util.Rng
module Pool = Dfs_util.Pool
module Sink = Dfs_trace.Sink
module Merge = Dfs_trace.Merge

(* -- worker selection ------------------------------------------------------ *)

(* [--sim-shards] (or DFS_SIM_SHARDS) picks the number of EXECUTION
   workers only.  The logical partition layout is a pure function of the
   cluster configuration — never of this setting — which is what makes
   output byte-identical at shards 1 vs N: the same partitions advance
   through the same windows and exchange the same messages, only on
   fewer or more domains. *)
let requested = ref None

let set_shards n = requested := n

let shards () =
  match !requested with
  | Some n -> max 1 n
  | None -> (
    match Sys.getenv_opt "DFS_SIM_SHARDS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Pool.default_jobs ())
    | None -> Pool.default_jobs ())

(* -- single-partition windowed execution (the preset path) ----------------- *)

(* Every simulation now runs through the conservative-PDES executor.
   One partition exchanges no messages, so the window width is free; a
   coarse duration/256 grid keeps barrier overhead negligible while
   still exercising the window machinery (and its telemetry) on every
   run.  Slicing [run_until] into windows is output-invariant: the
   engine executes the same events in the same order, and nothing reads
   the clock between windows. *)
let drive cluster ~until =
  let la = (Network.config (Cluster.network cluster)).Network.remote_latency in
  let window = Float.max la (until /. 256.0) in
  let pdes = Pdes.create ~lookahead:la ~window [| Cluster.engine cluster |] in
  Pdes.run pdes ~until ()

(* -- partitioned scale runs ------------------------------------------------ *)

type config = {
  n_clients : int;
  n_servers : int;
  seed : int;
  duration : float;  (** simulated seconds *)
  start_hour : float;
  fault_profile : Dfs_fault.Profile.t;
  partitions : int option;  (** None: {!auto_partitions} *)
  chunk_records : int option;
  spill_dir : string option;
}

let default_config =
  {
    n_clients = 160;
    n_servers = 4;
    seed = 42;
    duration = 3600.0;
    start_hour = 9.5;
    fault_profile = Dfs_fault.Profile.none;
    partitions = None;
    chunk_records = None;
    spill_dir = None;
  }

type result = {
  partitions : int;
  workers : int;
  users : int;
  barriers : int;
  remote_msgs : int;
  merged : Sink.chunks;
  clusters : Cluster.t array;
  drivers : Driver.t array;
}

(* One partition per ~64 clients, capped by the server count (every
   partition owns at least one home server).  A pure function of the
   cluster size — NOT of the worker count. *)
let auto_partitions ~n_clients ~n_servers =
  max 1 (min n_servers (n_clients / 64))

(* Contiguous block split of [total] into [parts]: block [p] starts at
   [base] and holds [count], with the remainder spread over the leading
   blocks. *)
let block ~total ~parts p =
  let q = total / parts and r = total mod parts in
  let count = q + if p < r then 1 else 0 in
  let base = (p * q) + min p r in
  (base, count)

(* Disjoint global id ranges for the ids partitions mint independently.
   Workload users start above the reserved 9000-9002 infrastructure
   identities so a large partition can never collide with them. *)
let user_block = 1_000_000

let user_base p = 10_000 + (p * user_block)

let pid_block = 50_000_000

let pid_base p = (p + 1) * pid_block

let file_block = 50_000_000

let file_base p = p * file_block

(* Scale the preset user population (30 regular + 40 occasional per 40
   clients) to a partition's client count, rounding to nearest. *)
let scaled_params ~n_clients =
  let scale n = max 1 (((n * n_clients) + 20) / 40) in
  {
    Params.default with
    Params.n_regular_users = scale Params.default.Params.n_regular_users;
    n_occasional_users = scale Params.default.Params.n_occasional_users;
  }

let m_remote = Dfs_obs.Metrics.counter "sim.pdes.remote_reads"

(* Cross-partition RPC traffic: each partition runs a periodic requester
   that reads a file homed in another partition.  All draws come from a
   dedicated per-partition stream keyed by the partition id (never the
   workload's), and the request targets [now + lookahead] — the earliest
   legal conservative send.  The server-side read perturbs the remote
   partition's cache and accounting, so delivery order is
   output-visible: the sharded byte-identity checks genuinely test the
   barrier protocol. *)
let wire_remote_traffic pdes ~clusters ~client_bases ~seed ~lookahead =
  let parts = Array.length clusters in
  if parts > 1 then
    Array.iteri
      (fun p cluster ->
        let rng = Rng.create (Rng.derive_seed seed (0x7e0_000 + p)) in
        let engine = Cluster.engine cluster in
        let n_local = (Cluster.cfg cluster).Cluster.n_clients in
        Engine.every engine ~interval:2.0
          ~start:(2.0 +. (0.37 *. float_of_int p))
          (fun () ->
            let dst = (p + 1 + Rng.int rng (parts - 1)) mod parts in
            let bytes = 8192 + Rng.int rng 57344 in
            let client =
              Dfs_trace.Ids.Client.of_int
                (client_bases.(p) + Rng.int rng n_local)
            in
            let at = Engine.now engine +. lookahead in
            Pdes.post pdes ~src:p ~dst ~at (fun () ->
                let served =
                  Cluster.remote_access clusters.(dst) ~client ~bytes
                in
                Dfs_obs.Metrics.incr m_remote;
                let dst_engine = Cluster.engine clusters.(dst) in
                let reply_at = Engine.now dst_engine +. lookahead in
                Pdes.post pdes ~src:dst ~dst:p ~at:reply_at (fun () ->
                    (* the reply lands on the requester's subnet *)
                    ignore
                      (Network.rpc
                         (Cluster.network clusters.(p))
                         ~kind:"remote-reply" ~bytes:served)))))
      clusters

let run ?workers cfg =
  if cfg.n_clients < 1 || cfg.n_servers < 1 then
    invalid_arg "Sharded.run: need at least one client and one server";
  let parts =
    match cfg.partitions with
    | Some p ->
      if p < 1 || p > cfg.n_servers || p > cfg.n_clients then
        invalid_arg "Sharded.run: partitions out of range";
      p
    | None ->
      auto_partitions ~n_clients:cfg.n_clients ~n_servers:cfg.n_servers
  in
  let chunk_records =
    Option.value cfg.chunk_records ~default:Sink.default_chunk_records
  in
  let clusters =
    Array.init parts (fun p ->
        let client_base, n_clients =
          block ~total:cfg.n_clients ~parts p
        in
        let server_base, n_servers =
          block ~total:cfg.n_servers ~parts p
        in
        Cluster.create
          {
            Cluster.default_config with
            Cluster.n_clients;
            n_servers;
            seed = Rng.derive_seed cfg.seed p;
            fault_profile = cfg.fault_profile;
            trace_chunk_records = chunk_records;
            trace_spill_dir = cfg.spill_dir;
            trace_spill_tag = Printf.sprintf "scale-part%d" p;
            client_id_base = client_base;
            server_id_base = server_base;
            file_id_base = file_base p;
            user_id_base = user_base p;
            pid_base = pid_base p;
            fault_schedule_servers = Some cfg.n_servers;
          })
  in
  let drivers =
    Array.map
      (fun cluster ->
        let params =
          scaled_params ~n_clients:(Cluster.cfg cluster).Cluster.n_clients
        in
        Driver.setup ~cluster ~params ~start_hour:cfg.start_hour ())
      clusters
  in
  Array.iter
    (fun d ->
      if Driver.n_users d > user_block then
        invalid_arg "Sharded.run: partition user count exceeds its id block")
    drivers;
  let lookahead =
    Array.fold_left
      (fun acc c ->
        Float.min acc
          (Network.config (Cluster.network c)).Network.remote_latency)
      infinity clusters
  in
  let engines = Array.map Cluster.engine clusters in
  let window =
    if parts = 1 then Float.max lookahead (cfg.duration /. 256.0)
    else lookahead
  in
  let pdes = Pdes.create ~lookahead ~window engines in
  let client_bases =
    Array.init parts (fun p -> fst (block ~total:cfg.n_clients ~parts p))
  in
  wire_remote_traffic pdes ~clusters ~client_bases ~seed:cfg.seed ~lookahead;
  let workers = min parts (match workers with Some w -> max 1 w | None -> shards ()) in
  let team = Pool.Team.create ~size:workers () in
  Fun.protect
    ~finally:(fun () -> Pool.Team.shutdown team)
    (fun () -> Pdes.run pdes ~team ~until:cfg.duration ());
  let merged =
    let spill =
      Option.map
        (fun dir -> { Sink.dir; name = "scale-merged" })
        cfg.spill_dir
    in
    Dfs_obs.Profiler.span ~cat:"trace" "scale.merge" (fun () ->
        Merge.merge_chunks ~chunk_records ?spill ~scrub:Cluster.self_users
          (List.concat_map Cluster.server_chunks (Array.to_list clusters)))
  in
  {
    partitions = parts;
    workers;
    users = Array.fold_left (fun acc d -> acc + Driver.n_users d) 0 drivers;
    barriers = Pdes.barriers pdes;
    remote_msgs = Pdes.messages pdes;
    merged;
    clusters;
    drivers;
  }

(* Stable content digest of a chunked trace: CRC-32C chained over the
   text encoding of every record, in order.  Pure function of the record
   stream — the quantity the shards-1-vs-N byte-identity matrix
   compares. *)
let digest chunks =
  let crc = ref Dfs_util.Crc32c.init in
  Sink.iter
    (fun r ->
      let line = Dfs_trace.Codec.encode r in
      crc := Dfs_util.Crc32c.update_string !crc line ~pos:0 ~len:(String.length line))
    chunks;
  Dfs_util.Crc32c.finalize !crc

let release t =
  Array.iter Cluster.release_sim_state t.clusters
