module Ids = Dfs_trace.Ids
module Record = Dfs_trace.Record
module Rng = Dfs_util.Rng
module Dist = Dfs_util.Dist
module Engine = Dfs_sim.Engine
module Client = Dfs_sim.Client
module Cluster = Dfs_sim.Cluster
module Cred = Dfs_sim.Cred
module Fs = Dfs_sim.Fs_state

type app = Edit | Compile | Pmake | Mail | Doc | Shell | Big_sim

let app_name = function
  | Edit -> "edit"
  | Compile -> "compile"
  | Pmake -> "pmake"
  | Mail -> "mail"
  | Doc -> "doc"
  | Shell -> "shell"
  | Big_sim -> "big-sim"

let pick (mix : Params.app_mix) rng =
  Rng.pick_weighted rng
    [
      (Edit, mix.edit);
      (Compile, mix.compile);
      (Pmake, mix.pmake);
      (Mail, mix.mail);
      (Doc, mix.doc);
      (Shell, mix.shell);
      (Big_sim, mix.big_sim);
    ]

type ctx = {
  cluster : Cluster.t;
  params : Params.t;
  ns : Namespace.t;
  board : Migration.t;
  rng : Dfs_util.Rng.t;
  user : Ids.User.t;
  group : Params.group;
  home : int;
  uses_migration : bool;
}

(* -- plumbing -------------------------------------------------------------- *)

let client ctx host = Cluster.client ctx.cluster host

let now ctx = Engine.now (Cluster.engine ctx.cluster)

let fresh_cred ctx ~host ~migrated =
  Cred.make ~user:ctx.user
    ~pid:(Migration.fresh_pid ctx.board)
    ~client:(Cluster.client_id ctx.cluster host)
    ~migrated

let sample_int ctx d = Dist.sample_int d ctx.rng

let proc_time ctx bytes =
  float_of_int (max 0 bytes) /. ctx.params.process_rate

(* Launch the application binary: code/init-data page faults through the
   client cache, heap for the process's dirty pages. *)
let exec ctx c cred name =
  let bin = Namespace.pick_binary ctx.ns ~rng:ctx.rng ~name in
  Client.exec_process c ~cred ~exe:bin.exe ~code_bytes:bin.code_bytes
    ~data_bytes:bin.data_bytes;
  Client.grow_process c ~cred ~heap_bytes:(sample_int ctx ctx.params.heap_dist)

let exit_proc c cred = Client.exit_process c ~cred

(* -- file-access idioms ----------------------------------------------------- *)

(* Read a file: usually whole-file sequential, sometimes a partial
   sequential run, rarely random (seek-read pairs) — Table 3's mix. *)
let read_file ctx c cred (info : Fs.file_info) =
  if info.size > 0 || true then begin
    let fd = Client.open_file c ~cred ~info ~mode:Record.Read_only ~created:false in
    let u = Rng.float ctx.rng in
    let bytes =
      if u < ctx.params.random_access_probability && info.size > 8192 then begin
        let touches = 3 + Rng.int ctx.rng 10 in
        let total = ref 0 in
        for _ = 1 to touches do
          let pos = Rng.int ctx.rng (max 1 (info.size - 4096)) in
          Client.seek c fd ~pos;
          total := !total + Client.read c fd ~len:(512 + Rng.int ctx.rng 4096)
        done;
        !total
      end
      else if
        u < ctx.params.random_access_probability
            +. ctx.params.partial_read_probability
        && info.size > 2048
      then begin
        let frac = 0.2 +. (0.6 *. Rng.float ctx.rng) in
        Client.read c fd ~len:(int_of_float (frac *. float_of_int info.size))
      end
      else Client.read c fd ~len:info.size
    in
    Engine.sleep (proc_time ctx bytes);
    (* some opens are held while the user or program mulls the contents *)
    if Rng.bernoulli ctx.rng 0.3 then
      Engine.sleep (Rng.uniform ctx.rng 0.15 2.5);
    Client.close c fd
  end

(* Overwrite a file in place: truncate to zero then write the new
   contents (how editors and compilers replace outputs; the truncate is
   the "death" of the old bytes in Figure 4). *)
let overwrite ?(fsync_p = 0.0) ctx c cred (info : Fs.file_info) ~size =
  (* editors and compilers sometimes truncate-then-rewrite, sometimes
     write over the old contents in place *)
  if info.size > 0 && Rng.bernoulli ctx.rng 0.5 then
    Client.truncate c ~cred ~info;
  let fd = Client.open_file c ~cred ~info ~mode:Record.Write_only ~created:false in
  ignore (Client.write c fd ~len:size);
  Engine.sleep (proc_time ctx size);
  if Rng.bernoulli ctx.rng fsync_p then Client.fsync c fd;
  Client.close c fd

(* Create and write a brand-new file; returns its info. *)
let create_file ?(fsync_p = 0.0) ctx c cred ~size =
  let info = Namespace.new_file ctx.ns ~now:(now ctx) ~size:0 in
  let fd = Client.open_file c ~cred ~info ~mode:Record.Write_only ~created:true in
  ignore (Client.write c fd ~len:size);
  Engine.sleep (proc_time ctx size);
  if Rng.bernoulli ctx.rng fsync_p then Client.fsync c fd;
  Client.close c fd;
  info

(* Append: open, seek to the end, write a little.  Partial-block appends
   are what cause write fetches and head-to-high-water writebacks. *)
let append ?(fsync_p = 0.0) ctx c cred (info : Fs.file_info) ~bytes =
  let fd = Client.open_file c ~cred ~info ~mode:Record.Write_only ~created:false in
  if info.size > 0 then Client.seek c fd ~pos:info.size;
  ignore (Client.write c fd ~len:bytes);
  Engine.sleep (proc_time ctx bytes);
  if Rng.bernoulli ctx.rng fsync_p then Client.fsync c fd;
  Client.close c fd

(* Archive-style library read: the linker seeks all over the archive
   pulling in members — many repositions, classified random. *)
let read_library ctx c cred (info : Fs.file_info) =
  let fd = Client.open_file c ~cred ~info ~mode:Record.Read_only ~created:false in
  let touches = 8 + Rng.int ctx.rng 16 in
  let total = ref 0 in
  for _ = 1 to touches do
    if info.size > 8192 then begin
      let pos = Rng.int ctx.rng (max 1 (info.size - 8192)) in
      Client.seek c fd ~pos
    end;
    total := !total + Client.read c fd ~len:(2048 + Rng.int ctx.rng 14336)
  done;
  Engine.sleep (proc_time ctx !total);
  Client.close c fd

(* Peek at the group status file in small reads; while the file is
   write-shared these pass through to the server one by one (the paper's
   "small I/O requests made by some applications"). *)
let read_status ctx c cred (info : Fs.file_info) =
  let fd = Client.open_file c ~cred ~info ~mode:Record.Read_only ~created:false in
  let tail = min info.size (16384 + Rng.int ctx.rng 49152) in
  if info.size > tail then Client.seek c fd ~pos:(info.size - tail);
  let k = 4 + Rng.int ctx.rng 12 in
  for _ = 1 to k do
    ignore (Client.read c fd ~len:(1024 + Rng.int ctx.rng 1024))
  done;
  Engine.sleep 0.05;
  Client.close c fd

(* Chunked transfers: at kernel-call level applications move big files in
   buffer-sized requests; during write-sharing each request passes through
   to the server individually, so chunking matters for Table 12's demand
   accounting. *)
let read_chunked ctx c cred (info : Fs.file_info) ~from ~bytes ~chunk =
  let fd = Client.open_file c ~cred ~info ~mode:Record.Read_only ~created:false in
  if from > 0 then Client.seek c fd ~pos:from;
  let remaining = ref bytes in
  while !remaining > 0 do
    let n = Client.read c fd ~len:(min chunk !remaining) in
    if n = 0 then remaining := 0
    else begin
      remaining := !remaining - n;
      Engine.sleep (proc_time ctx n)
    end
  done;
  Client.close c fd

let append_chunked ?(pace = 0.0) ctx c cred (info : Fs.file_info) ~bytes ~chunk =
  let fd = Client.open_file c ~cred ~info ~mode:Record.Write_only ~created:false in
  if info.size > 0 then Client.seek c fd ~pos:info.size;
  let written = ref 0 in
  while !written < bytes do
    let n = min chunk (bytes - !written) in
    ignore (Client.write c fd ~len:n);
    written := !written + n;
    Engine.sleep (proc_time ctx n +. pace)
  done;
  Client.close c fd

(* Watch the status file: re-read its tail every several seconds, the way
   users keep re-running a status command while a long simulation logs
   progress.  Re-reads inside a polling scheme's validity window are
   exactly the stale-data opportunities of Table 11. *)
let watch_status ctx c cred (info : Fs.file_info) =
  let rounds = 2 + Rng.int ctx.rng 3 in
  for _ = 1 to rounds do
    read_status ctx c cred info;
    (* mostly tens of seconds between checks, occasionally back-to-back *)
    Engine.sleep (Float.min 120.0 (2.0 +. Rng.exponential ctx.rng 35.0))
  done

(* -- the application models -------------------------------------------------- *)

let edit ctx =
  let c = client ctx ctx.home in
  let cred = fresh_cred ctx ~host:ctx.home ~migrated:false in
  Migration.note_home_activity ctx.board ~host:ctx.home ~now:(now ctx);
  exec ctx c cred "editor";
  let u = Namespace.user_files ctx.ns ctx.user in
  let src =
    (* a quarter of editing happens in the group's shared project tree *)
    if Rng.bernoulli ctx.rng 0.25 then
      Namespace.pick_group_source ctx.ns ~rng:ctx.rng ctx.group
    else u.sources.(Namespace.pick_source ctx.ns ~rng:ctx.rng u)
  in
  read_file ctx c cred src;
  (* the user types for a while *)
  Engine.sleep (Rng.uniform ctx.rng 5.0 90.0);
  if Rng.bernoulli ctx.rng ctx.params.edit_save_probability then begin
    if Rng.bernoulli ctx.rng 0.12 then begin
      (* small in-place fix: one open that both reads and writes *)
      let fd =
        Client.open_file c ~cred ~info:src ~mode:Record.Read_write
          ~created:false
      in
      ignore (Client.read c fd ~len:src.size);
      Client.seek c fd ~pos:0;
      ignore (Client.write c fd ~len:(min src.size (256 + Rng.int ctx.rng 2048)));
      Client.close c fd
    end
    else begin
      (* autosave temporary, then replace the file, then drop the temp:
         a classic seconds-long lifetime *)
      let save_tmp =
        if Rng.bernoulli ctx.rng 0.3 then
          Some (create_file ctx c cred ~size:(max 128 src.size))
        else None
      in
      let jitter = 0.85 +. (0.3 *. Rng.float ctx.rng) in
      let new_size =
        max 128 (int_of_float (float_of_int src.size *. jitter))
      in
      overwrite ~fsync_p:0.5 ctx c cred src ~size:new_size;
      Option.iter (fun tmp -> Client.delete c ~cred ~info:tmp) save_tmp
    end
  end;
  exit_proc c cred

let link_step ctx c cred u =
  (* relink the user's program from (a window of) their objects plus a
     library; incremental links do not touch every object every time *)
  let objects =
    Array.to_list u.Namespace.objects |> List.filter_map Fun.id
  in
  let objects =
    if List.length objects > 8 then List.filteri (fun i _ -> i < 8) objects
    else objects
  in
  if objects <> [] then begin
    List.iter
      (fun (o : Fs.file_info) -> if o.exists then read_file ctx c cred o)
      objects;
    let lib = (Namespace.random_binary ctx.ns ~rng:ctx.rng).exe in
    read_library ctx c cred lib;
    match u.Namespace.exe_out with
    | Some out when out.exists && Rng.bernoulli ctx.rng 0.3 ->
      (* incremental relink: patch the image in place — a write-only
         random access *)
      let fd =
        Client.open_file c ~cred ~info:out ~mode:Record.Write_only
          ~created:false
      in
      let k = 3 + Rng.int ctx.rng 6 in
      for _ = 1 to k do
        Client.seek c fd ~pos:(Rng.int ctx.rng (max 1 (out.size - 8192)));
        ignore (Client.write c fd ~len:(1024 + Rng.int ctx.rng 8192))
      done;
      Client.close c fd
    | Some out when out.exists ->
      overwrite ctx c cred out ~size:(sample_int ctx ctx.params.exe_size)
    | Some _ | None ->
      u.Namespace.exe_out <-
        Some (create_file ctx c cred ~size:(sample_int ctx ctx.params.exe_size))
  end

let compile ctx ~host ~migrated =
  let c = client ctx host in
  let cred = fresh_cred ctx ~host ~migrated in
  exec ctx c cred "cc";
  let u = Namespace.user_files ctx.ns ctx.user in
  let n_hdr = max 1 (sample_int ctx ctx.params.compile_headers) in
  for _ = 1 to n_hdr do
    read_file ctx c cred (Namespace.pick_header ctx.ns ~rng:ctx.rng)
  done;
  (* assembler temporary: born and deleted within the compile *)
  let tmp =
    create_file ctx c cred ~size:(sample_int ctx ctx.params.tmp_size)
  in
  (* the compiler reads several sources/includes but (re)writes only the
     object of the file that changed — reads dominate development *)
  let n_src = max 1 (sample_int ctx ctx.params.compile_sources) in
  let changed = Namespace.pick_source ctx.ns ~rng:ctx.rng u in
  for k = 0 to n_src - 1 do
    let idx =
      if k = 0 then changed else Namespace.pick_source ctx.ns ~rng:ctx.rng u
    in
    read_file ctx c cred u.sources.(idx)
  done;
  (* project builds also pull in the group's shared sources *)
  for _ = 1 to 1 + Rng.int ctx.rng 2 do
    read_file ctx c cred
      (Namespace.pick_group_source ctx.ns ~rng:ctx.rng ctx.group)
  done;
  let write_object idx =
    let obj_size = sample_int ctx ctx.params.object_size in
    match u.objects.(idx) with
    | Some obj when obj.exists -> overwrite ctx c cred obj ~size:obj_size
    | Some _ | None ->
      u.objects.(idx) <- Some (create_file ctx c cred ~size:obj_size)
  in
  write_object changed;
  (* a pmake job builds every target assigned to it *)
  if migrated then
    for _ = 2 to n_src do
      write_object (Namespace.pick_source ctx.ns ~rng:ctx.rng u)
    done;
  Client.delete c ~cred ~info:tmp;
  if (not migrated) && Rng.bernoulli ctx.rng ctx.params.link_probability then
    link_step ctx c cred u;
  exit_proc c cred

let pmake ctx =
  let c_home = client ctx ctx.home in
  let cred = fresh_cred ctx ~host:ctx.home ~migrated:false in
  Migration.note_home_activity ctx.board ~host:ctx.home ~now:(now ctx);
  exec ctx c_home cred "pmake";
  (* pmake reads the makefile and the directory *)
  let u = Namespace.user_files ctx.ns ctx.user in
  Client.read_dir c_home ~cred ~info:u.home_dir;
  let width = max 1 (sample_int ctx ctx.params.pmake_width) in
  (* pmake logs build progress to the group status file for the whole
     build — a long write hold that shells' status checks collide with *)
  let status = Namespace.group_status_file ctx.ns ctx.group in
  let sfd =
    Client.open_file c_home ~cred ~info:status ~mode:Record.Write_only
      ~created:false
  in
  if status.size > 0 then Client.seek c_home sfd ~pos:status.size;
  let remaining = ref width in
  let engine = Cluster.engine ctx.cluster in
  for _ = 1 to width do
    let host =
      if ctx.params.migration_enabled && ctx.uses_migration then
        Migration.pick_host ctx.board ~rng:ctx.rng ~user:ctx.user
          ~home:ctx.home ~now:(now ctx)
      else None
    in
    match host with
    | Some h ->
      Migration.job_started ctx.board ~host:h;
      Engine.spawn engine (fun () ->
          Fun.protect
            ~finally:(fun () ->
              Migration.job_finished ctx.board ~host:h;
              decr remaining)
            (fun () -> compile ctx ~host:h ~migrated:true))
    | None ->
      (* no idle host: run locally, unmigrated *)
      Engine.spawn engine (fun () ->
          Fun.protect
            ~finally:(fun () -> decr remaining)
            (fun () -> compile ctx ~host:ctx.home ~migrated:false))
  done;
  let last_logged = ref width in
  while !remaining > 0 do
    Engine.sleep 0.5;
    if !remaining < !last_logged then begin
      last_logged := !remaining;
      ignore (Client.write c_home sfd ~len:(48 + Rng.int ctx.rng 80))
    end
  done;
  Client.close c_home sfd;
  if status.size > 256 * 1024 then Client.truncate c_home ~cred ~info:status;
  (* the link runs at home and reads the freshly written remote objects:
     the server recalls their dirty blocks *)
  link_step ctx c_home cred u;
  exit_proc c_home cred

let mail ctx =
  let c = client ctx ctx.home in
  let cred = fresh_cred ctx ~host:ctx.home ~migrated:false in
  Migration.note_home_activity ctx.board ~host:ctx.home ~now:(now ctx);
  exec ctx c cred "mail";
  let u = Namespace.user_files ctx.ns ctx.user in
  (* read the new tail of the mailbox *)
  let mbox = u.mailbox in
  let fd = Client.open_file c ~cred ~info:mbox ~mode:Record.Read_only ~created:false in
  let tail = min mbox.size (2048 + Rng.int ctx.rng 16384) in
  if mbox.size > tail then Client.seek c fd ~pos:(mbox.size - tail);
  ignore (Client.read c fd ~len:tail);
  (* jump back to a few older messages *)
  let revisits = Rng.int ctx.rng 3 in
  for _ = 1 to revisits do
    if mbox.size > 4096 then begin
      Client.seek c fd ~pos:(Rng.int ctx.rng (mbox.size - 2048));
      ignore (Client.read c fd ~len:(512 + Rng.int ctx.rng 2048))
    end
  done;
  Engine.sleep (proc_time ctx tail);
  Client.close c fd;
  (* a new message arrives / is filed *)
  append ~fsync_p:0.8 ctx c cred mbox ~bytes:(512 + Rng.int ctx.rng 3584);
  (* mark messages read/deleted in place: a read/write, random access *)
  if Rng.bernoulli ctx.rng 0.35 && mbox.size > 8192 then begin
    let fd =
      Client.open_file c ~cred ~info:mbox ~mode:Record.Read_write
        ~created:false
    in
    let k = 2 + Rng.int ctx.rng 4 in
    for _ = 1 to k do
      Client.seek c fd ~pos:(Rng.int ctx.rng (mbox.size - 4096));
      ignore (Client.read c fd ~len:(256 + Rng.int ctx.rng 1024));
      Client.seek c fd ~pos:(Rng.int ctx.rng (mbox.size - 512));
      ignore (Client.write c fd ~len:(16 + Rng.int ctx.rng 64))
    done;
    Client.close c fd
  end;
  (* re-read a couple of old messages / drafts *)
  let rereads = 2 + Rng.int ctx.rng 4 in
  for _ = 1 to rereads do
    let idx = Namespace.pick_source ctx.ns ~rng:ctx.rng u in
    read_file ctx c cred u.sources.(idx)
  done;
  if Rng.bernoulli ctx.rng 0.25 then begin
    (* save one message out to its own file, sometimes delete an old one *)
    let msg = create_file ctx c cred ~size:(512 + Rng.int ctx.rng 4096) in
    if Rng.bernoulli ctx.rng 0.5 then Client.delete c ~cred ~info:msg
  end;
  exit_proc c cred

let doc ctx =
  let c = client ctx ctx.home in
  let cred = fresh_cred ctx ~host:ctx.home ~migrated:false in
  Migration.note_home_activity ctx.board ~host:ctx.home ~now:(now ctx);
  exec ctx c cred "troff";
  let u = Namespace.user_files ctx.ns ctx.user in
  let idx = Namespace.pick_source ctx.ns ~rng:ctx.rng u in
  let src = u.sources.(idx) in
  read_file ctx c cred src;
  (* fonts / macro packages *)
  for _ = 1 to 3 + Rng.int ctx.rng 3 do
    read_file ctx c cred (Namespace.pick_header ctx.ns ~rng:ctx.rng)
  done;
  let out_size = max 1024 (src.size * 6 / 5) in
  (match u.doc_out with
  | Some out when out.exists -> overwrite ctx c cred out ~size:out_size
  | Some _ | None -> u.doc_out <- Some (create_file ctx c cred ~size:out_size));
  exit_proc c cred

let shell ctx =
  let c = client ctx ctx.home in
  let cred = fresh_cred ctx ~host:ctx.home ~migrated:false in
  Migration.note_home_activity ctx.board ~host:ctx.home ~now:(now ctx);
  exec ctx c cred "sh";
  let u = Namespace.user_files ctx.ns ctx.user in
  Client.read_dir c ~cred ~info:u.home_dir;
  if Rng.bernoulli ctx.rng 0.5 then
    Client.read_dir c ~cred ~info:(Namespace.shared_dir ctx.ns ~rng:ctx.rng);
  let n = 7 + Rng.int ctx.rng 9 in
  for _ = 1 to n do
    let idx = Namespace.pick_source ctx.ns ~rng:ctx.rng u in
    read_file ctx c cred u.sources.(idx)
  done;
  (* sometimes page through a big binary or data file *)
  if Rng.bernoulli ctx.rng 0.15 then
    read_file ctx c cred (Namespace.random_binary ctx.ns ~rng:ctx.rng).exe;
  (* peek at (or keep watching) the group's status file — the read side
     of write-sharing and of Table 11's stale reads *)
  let status = Namespace.group_status_file ctx.ns ctx.group in
  if Rng.bernoulli ctx.rng 0.15 then watch_status ctx c cred status
  else if Rng.bernoulli ctx.rng 0.25 then read_status ctx c cred status;
  if Rng.bernoulli ctx.rng 0.4 then
    read_file ctx c cred
      (Namespace.pick_group_source ctx.ns ~rng:ctx.rng ctx.group);
  (* check the latest results batch in the group log *)
  if Rng.bernoulli ctx.rng 0.3 then begin
    let log = Namespace.group_log ctx.ns ctx.group in
    let bytes = min log.size (262144 + Rng.int ctx.rng 1572864) in
    if bytes > 0 then
      read_chunked ctx c cred log ~from:(log.size - bytes) ~bytes
        ~chunk:(64 * 1024)
  end;
  exit_proc c cred

let rec big_sim ctx =
  (* half the long simulations are offloaded to an idle machine — the
     paper notes migration is used for simulations as well as compiles *)
  Migration.note_home_activity ctx.board ~host:ctx.home ~now:(now ctx);
  let host, migrated =
    if ctx.params.migration_enabled && ctx.uses_migration
       && Rng.bernoulli ctx.rng 0.55 then
      match
        Migration.pick_host ctx.board ~rng:ctx.rng ~user:ctx.user
          ~home:ctx.home ~now:(now ctx)
      with
      | Some h -> (h, true)
      | None -> (ctx.home, false)
    else (ctx.home, false)
  in
  if migrated then Migration.job_started ctx.board ~host;
  Fun.protect
    ~finally:(fun () ->
      if migrated then Migration.job_finished ctx.board ~host)
    (fun () -> big_sim_on ctx ~host ~migrated)

and big_sim_on ctx ~host ~migrated =
  let c = client ctx host in
  let cred = fresh_cred ctx ~host ~migrated in
  exec ctx c cred "simulator";
  let u0 = Namespace.user_files ctx.ns ctx.user in
  (* clean up the previous run's output: by now its bytes are minutes old *)
  List.iter
    (fun (o : Fs.file_info) ->
      if o.exists then Client.delete c ~cred ~info:o)
    u0.stale_outputs;
  u0.stale_outputs <- [];
  let gp = Params.find_group ctx.params ctx.group in
  (* some runs merely shovel data (fast scans), others compute hard;
     offloaded (migrated) runs are the batchy data-shovelling kind, which
     is what makes migration traffic so bursty in Table 2 *)
  let compute_factor =
    if migrated || Rng.bernoulli ctx.rng 0.3 then 0.05 else 8.0
  in
  let u = Namespace.user_files ctx.ns ctx.user in
  (* the simulator's input: created once, re-read run after run *)
  let input =
    match List.find_opt (fun (i : Fs.file_info) -> i.exists) u.big_inputs with
    | Some i -> i
    | None ->
      (* users who harness idle machines run the biggest simulations *)
      let size = sample_int ctx gp.big_input_size in
      let size = if ctx.uses_migration then min (size * 2) (16 * 1048576) else size in
      let info = Namespace.new_file ctx.ns ~now:(now ctx) ~size in
      u.big_inputs <- info :: u.big_inputs;
      info
  in
  (* a long-running process with a big dirty heap *)
  Client.grow_process c ~cred ~heap_bytes:(min (input.size / 2) (8 * 1024 * 1024));
  (* status file held open for writing across the run: the concurrent
     write-sharing in Table 10 comes from here *)
  let status = Namespace.group_status_file ctx.ns ctx.group in
  (* check what the rest of the group is up to before logging our own run *)
  if status.size > 0 && Rng.bernoulli ctx.rng 0.35 then
    read_status ctx c cred status;
  let sfd =
    Client.open_file c ~cred ~info:status ~mode:Record.Write_only ~created:false
  in
  if status.size > 0 then Client.seek c sfd ~pos:status.size;
  (* read the input in a few large sequential gulps, computing as we go *)
  let fd = Client.open_file c ~cred ~info:input ~mode:Record.Read_only ~created:false in
  let chunk = max 65536 (input.size / 4) in
  let consumed = ref 0 in
  while !consumed < input.size do
    let n = Client.read c fd ~len:chunk in
    if n = 0 then consumed := input.size
    else begin
      consumed := !consumed + n;
      (* compute over this chunk, logging progress lines as we go *)
      let compute = compute_factor *. proc_time ctx n in
      let slices = max 1 (int_of_float (compute /. 0.5)) in
      for _ = 1 to min slices 40 do
        Engine.sleep (compute /. float_of_int (min slices 40));
        (* a progress line every few seconds of computing *)
        if Rng.bernoulli ctx.rng 0.3 then
          ignore (Client.write c sfd ~len:(64 + Rng.int ctx.rng 192))
      done;
      (* big heaps get partially paged out and back under pressure *)
      if Rng.bernoulli ctx.rng 0.35 then begin
        Client.swap_out_process c ~cred ~fraction:0.25;
        Client.swap_in_process c ~cred ~fraction:0.22
      end
    end
  done;
  Client.close c fd;
  (* many simulators make further passes over their input; offloaded runs
     are parameter sweeps that scan it several times *)
  let extra_passes =
    if migrated then 4 + Rng.int ctx.rng 4
    else if Rng.bernoulli ctx.rng 0.5 then 1
    else 0
  in
  for _ = 1 to extra_passes do
    read_file ctx c cred input
  done;
  (* results: often post-processed and thrown away (the cache-simulation
     user of traces 3-4), sometimes appended to a running results log,
     sometimes kept as future input *)
  let out_size = sample_int ctx gp.big_output_size in
  if Rng.bernoulli ctx.rng 0.35 then begin
    (* batch the results into the group's shared log: a megabyte-scale
       append in buffer-sized writes *)
    let log = Namespace.group_log ctx.ns ctx.group in
    (* results trickle out as the postprocessor formats them, so the log
       stays open (and write-shared with any readers) for a while *)
    append_chunked ~pace:0.08 ctx c cred log
      ~bytes:(min out_size (1024 * 1024))
      ~chunk:(128 * 1024);
    if log.size > 24 * 1024 * 1024 then Client.truncate c ~cred ~info:log
  end
  else begin
    let output = create_file ~fsync_p:0.25 ctx c cred ~size:out_size in
    if Rng.bernoulli ctx.rng 0.6 then begin
      (* post-process now, throw it away next run *)
      read_file ctx c cred output;
      u.stale_outputs <- output :: u.stale_outputs
    end
    else if Rng.bernoulli ctx.rng 0.3 then
      u.big_inputs <- output :: u.big_inputs
  end;
  (* the run is over: final status line, release the status file *)
  ignore (Client.write c sfd ~len:(64 + Rng.int ctx.rng 192));
  Client.close c sfd;
  if status.size > 256 * 1024 then Client.truncate c ~cred ~info:status;
  exit_proc c cred

let run ctx = function
  | Edit -> edit ctx
  | Compile -> compile ctx ~host:ctx.home ~migrated:false
  | Pmake -> pmake ctx
  | Mail -> mail ctx
  | Doc -> doc ctx
  | Shell -> shell ctx
  | Big_sim -> big_sim ctx
