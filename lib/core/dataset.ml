module Presets = Dfs_workload.Presets

type run = {
  preset : Presets.preset;
  cluster : Dfs_sim.Cluster.t;
  driver : Dfs_workload.Driver.t;
  trace : Dfs_trace.Record.t list;
}

type t = { scale : float; runs : run list }

let default_scale () =
  match Sys.getenv_opt "DFS_FULL" with
  | Some ("1" | "true" | "yes") -> 1.0
  | Some _ | None -> 0.05

let generate ?scale ?(traces = [ 1; 2; 3; 4; 5; 6; 7; 8 ]) () =
  let scale = match scale with Some s -> s | None -> default_scale () in
  let t_start = Unix.gettimeofday () in
  let runs =
    List.map
      (fun n ->
        let preset = Presets.scaled (Presets.trace n) ~factor:scale in
        Dfs_obs.Log.info "simulating %s (%.1f h)" preset.name
          (preset.duration /. 3600.0);
        let t0 = Unix.gettimeofday () in
        let cluster, driver = Presets.run preset in
        let trace = Dfs_sim.Cluster.merged_trace cluster in
        let elapsed = Unix.gettimeofday () -. t0 in
        (* Engine self-profiling: wall time per simulated run phase. *)
        Dfs_obs.Metrics.set
          (Dfs_obs.Metrics.gauge
             (Printf.sprintf "phase.sim.%s.wall_s" preset.name))
          elapsed;
        Dfs_obs.Log.debug "%s done in %.1fs (%d engine events)" preset.name
          elapsed
          (Dfs_sim.Engine.events_executed (Dfs_sim.Cluster.engine cluster));
        { preset; cluster; driver; trace })
      traces
  in
  Dfs_obs.Metrics.set
    (Dfs_obs.Metrics.gauge "phase.dataset.wall_s")
    (Unix.gettimeofday () -. t_start);
  { scale; runs }

let client_cache_stats run =
  Array.to_list
    (Array.map
       (fun c -> Dfs_cache.Block_cache.stats (Dfs_sim.Client.cache c))
       (Dfs_sim.Cluster.clients run.cluster))

let merged_counters t =
  let merged = Dfs_sim.Counters.create () in
  (* Runs all start at time 0 and reuse client ids; shift each run far
     apart in time so the windowed size-change analysis never straddles
     two runs. *)
  List.iteri
    (fun i run ->
      let offset = float_of_int i *. 1.0e7 in
      List.iter
        (fun (s : Dfs_sim.Counters.sample) ->
          Dfs_sim.Counters.record merged { s with time = s.time +. offset })
        (Dfs_sim.Counters.samples (Dfs_sim.Cluster.counters run.cluster)))
    t.runs;
  merged

let traces t = List.map (fun r -> r.trace) t.runs
