module Presets = Dfs_workload.Presets
module Sink = Dfs_trace.Sink

(* The fused single-pass analysis (session reconstruction plus the six
   per-record/per-access folds) is needed by half a dozen experiments;
   computing it once per run and sharing the result is the point of this
   memo.  Filled on first demand under a double-checked mutex — OCaml's
   [Lazy] is not safe to force from several domains, and analyses of
   different runs do race on a parallel bench. *)
type memo = {
  lock : Mutex.t;
  mutable fused : Dfs_analysis.Fused.t option;
}

type run = {
  preset : Presets.preset;
  cluster : Dfs_sim.Cluster.t;
  driver : Dfs_workload.Driver.t option;
      (** [None] for replayed runs, which have no synthetic driver *)
  trace : Sink.chunks;
  jobs : int;  (** domains the sharded fused analysis may use *)
  memo : memo;
}

type t = { scale : float; jobs : int; runs : run list }

let default_scale () =
  match Sys.getenv_opt "DFS_FULL" with
  | Some ("1" | "true" | "yes") -> 1.0
  | Some _ | None -> 0.05

let default_chunk_records () =
  match Sys.getenv_opt "DFS_CHUNK_RECORDS" with
  | Some s -> (
    match int_of_string_opt s with Some n when n >= 1 -> n | Some _ | None ->
      Sink.default_chunk_records)
  | None -> Sink.default_chunk_records

let default_spill_dir () = Sys.getenv_opt "DFS_SPILL_DIR"

let simulate_preset ~scale ~faults ~chunk_records ~spill_dir ~jobs n =
  let preset = Presets.scaled (Presets.trace n) ~factor:scale in
  let preset =
    match faults with
    | None -> preset
    | Some profile -> Presets.with_faults preset profile
  in
  (* Wire the trace pipeline's memory bounds into the cluster: chunked
     per-server logs, optionally spilled to disk, tagged by preset name
     so concurrent presets never collide on segment files. *)
  let preset =
    {
      preset with
      Presets.cluster_config =
        {
          preset.Presets.cluster_config with
          trace_chunk_records = chunk_records;
          trace_spill_dir = spill_dir;
          trace_spill_tag = preset.Presets.name;
        };
    }
  in
  Dfs_obs.Log.info "simulating %s (%.1f h)" preset.name
    (preset.duration /. 3600.0);
  let t0 = Unix.gettimeofday () in
  let cluster, driver =
    Dfs_obs.Profiler.span ~cat:"sim" ("sim." ^ preset.name) (fun () ->
        Presets.run preset)
  in
  let spill =
    Option.map
      (fun dir -> { Sink.dir; name = preset.name ^ "-merged" })
      spill_dir
  in
  let trace = Dfs_sim.Cluster.merged_chunks ?spill cluster in
  (* The simulation is over: drop the per-server logs (the merged chunks
     are the only live copy) along with the event queue and the per-file
     tables, which would otherwise dominate the dataset's footprint.
     The counters the analyses read all survive. *)
  Dfs_sim.Cluster.release_sim_state cluster;
  let elapsed = Unix.gettimeofday () -. t0 in
  (* Engine self-profiling: wall time per simulated run phase. *)
  Dfs_obs.Metrics.set
    (Dfs_obs.Metrics.gauge (Printf.sprintf "phase.sim.%s.wall_s" preset.name))
    elapsed;
  Dfs_obs.Log.debug "%s done in %.1fs (%d engine events)" preset.name elapsed
    (Dfs_sim.Engine.events_executed (Dfs_sim.Cluster.engine cluster));
  {
    preset;
    cluster;
    driver = Some driver;
    trace;
    jobs;
    memo = { lock = Mutex.create (); fused = None };
  }

let generate ?scale ?(traces = [ 1; 2; 3; 4; 5; 6; 7; 8 ]) ?jobs ?faults
    ?chunk_records ?spill_dir () =
  let scale = match scale with Some s -> s | None -> default_scale () in
  let chunk_records =
    match chunk_records with Some n -> n | None -> default_chunk_records ()
  in
  let spill_dir =
    match spill_dir with Some _ as s -> s | None -> default_spill_dir ()
  in
  let pool = Dfs_util.Pool.create ?jobs () in
  let t_start = Unix.gettimeofday () in
  (* Each preset seeds its own RNG and builds its own cluster (and, with
     faults on, its own injector seeded only by the fault profile), so
     the simulations are independent; [Pool.map] returns them in preset
     order, making the parallel dataset byte-identical to DFS_JOBS=1. *)
  let runs =
    Dfs_obs.Profiler.span "dataset.generate" (fun () ->
        Dfs_util.Pool.map pool
          (simulate_preset ~scale ~faults ~chunk_records ~spill_dir
             ~jobs:(Dfs_util.Pool.jobs pool))
          traces)
  in
  Dfs_obs.Metrics.set
    (Dfs_obs.Metrics.gauge "phase.dataset.wall_s")
    (Unix.gettimeofday () -. t_start);
  Dfs_obs.Metrics.set
    (Dfs_obs.Metrics.gauge "phase.dataset.jobs")
    (float_of_int (Dfs_util.Pool.jobs pool));
  { scale; jobs = Dfs_util.Pool.jobs pool; runs }

(* A replayed dataset: one run whose cluster executed a foreign trace
   instead of a synthetic preset.  Every experiment reads it through
   the same [run] record — the trace-only analyses see the replayed
   cluster's merged log, the cache/traffic analyses see its finished
   caches and counters. *)
let of_replay ?jobs ?on_corruption path =
  match Dfs_trace.Reader.of_file ?on_corruption path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok records -> (
    let t0 = Unix.gettimeofday () in
    match Dfs_workload.Replay.run records with
    | Error e -> Error e
    | Ok (cluster, stats) ->
      let trace = Dfs_sim.Cluster.merged_chunks cluster in
      Dfs_sim.Cluster.release_sim_state cluster;
      Dfs_obs.Metrics.set
        (Dfs_obs.Metrics.gauge "phase.sim.replay.wall_s")
        (Unix.gettimeofday () -. t0);
      let cfg = Dfs_sim.Cluster.cfg cluster in
      let preset =
        {
          Presets.name = "replay";
          seed = cfg.Dfs_sim.Cluster.seed;
          duration = stats.Dfs_workload.Replay.horizon;
          start_hour = 0.0;
          cluster_config = cfg;
          params = Dfs_workload.Params.default;
          special_users = [];
        }
      in
      let jobs =
        match jobs with Some j -> j | None -> Dfs_util.Pool.default_jobs ()
      in
      let run =
        {
          preset;
          cluster;
          driver = None;
          trace;
          jobs;
          memo = { lock = Mutex.create (); fused = None };
        }
      in
      Ok ({ scale = 1.0; jobs; runs = [ run ] }, stats))

let trace_seq run = Sink.to_seq run.trace

let batch run = Sink.to_batch run.trace

let fused run =
  match run.memo.fused with
  | Some f -> f
  | None ->
    Mutex.lock run.memo.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock run.memo.lock)
      (fun () ->
        match run.memo.fused with
        | Some f -> f
        | None ->
          (* Sharded across the run's job budget when called from the
             top level; degrades to the exact sequential pass inside a
             pool task or at jobs = 1 (results are bit-identical). *)
          let pool = Dfs_util.Pool.create ~jobs:run.jobs () in
          let f = Dfs_analysis.Fused.analyze_chunks ~pool run.trace in
          run.memo.fused <- Some f;
          f)

let sessions run = (fused run).Dfs_analysis.Fused.accesses

let client_cache_stats run =
  Array.to_list
    (Array.map
       (fun c -> Dfs_cache.Block_cache.stats (Dfs_sim.Client.cache c))
       (Dfs_sim.Cluster.clients run.cluster))

let merged_counters t =
  let merged = Dfs_sim.Counters.create () in
  (* Runs all start at time 0 and reuse client ids; shift each run far
     apart in time so the windowed size-change analysis never straddles
     two runs. *)
  List.iteri
    (fun i run ->
      let offset = float_of_int i *. 1.0e7 in
      List.iter
        (fun (s : Dfs_sim.Counters.sample) ->
          Dfs_sim.Counters.record merged { s with time = s.time +. offset })
        (Dfs_sim.Counters.samples (Dfs_sim.Cluster.counters run.cluster)))
    t.runs;
  merged

let traces t = List.map (fun r -> r.trace) t.runs

let discard t = List.iter (fun r -> Sink.discard r.trace) t.runs
