module Table = Dfs_util.Table
module Cdf = Dfs_util.Cdf
module A = Dfs_analysis
module C = Dfs_consistency

type t = {
  id : string;
  title : string;
  description : string;
  run : Dataset.t -> string;
}

(* -- small rendering helpers ------------------------------------------------- *)

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let min_l xs = List.fold_left Float.min infinity xs

let max_l xs = List.fold_left Float.max neg_infinity xs

(* "8.0 (2.1-9.4)": mean with min-max across traces *)
let across ?(digits = 2) xs =
  match xs with
  | [] -> "n/a"
  | [ x ] -> Printf.sprintf "%.*f" digits x
  | _ ->
    Printf.sprintf "%.*f (%.*f-%.*f)" digits (mean xs) digits (min_l xs)
      digits (max_l xs)

let paper_range ?(digits = 2) (r : Paper.range) =
  Printf.sprintf "%.*f (%.*f-%.*f)" digits r.value digits r.lo digits r.hi

let per_trace (ds : Dataset.t) f = List.map f ds.runs

let scale_note (ds : Dataset.t) =
  if ds.scale >= 0.999 then
    "Full-length (24-hour) traces."
  else
    Printf.sprintf
      "Traces scaled to %.0f%% of 24 h (busy daytime window); rates and \
       distributions are comparable, absolute per-day counts are not."
      (ds.scale *. 100.0)

(* -- Table 1 ------------------------------------------------------------------ *)

let table1 =
  let run (ds : Dataset.t) =
    let tbl =
      Table.create
        ~caption:"Table 1. Overall trace statistics (simulated traces)."
        ~columns:
          ([ ("Statistic", Table.Left) ]
          @ List.map
              (fun (r : Dataset.run) -> (r.preset.name, Table.Right))
              ds.runs)
        ()
    in
    let stats =
      per_trace ds (fun r ->
          (Dataset.fused r).A.Fused.stats)
    in
    let row label f fmt =
      Table.add_row tbl (label :: List.map (fun s -> fmt (f s)) stats)
    in
    let fi = string_of_int and f1 = Printf.sprintf "%.1f" in
    row "Trace duration (hours)" (fun s -> s.A.Trace_stats.duration_hours) f1;
    row "Different users"
      (fun s -> float_of_int s.A.Trace_stats.different_users)
      (fun x -> fi (int_of_float x));
    row "Users of migration"
      (fun s -> float_of_int s.A.Trace_stats.users_of_migration)
      (fun x -> fi (int_of_float x));
    row "Mbytes read from files" (fun s -> s.A.Trace_stats.mbytes_read_files) f1;
    row "Mbytes written to files"
      (fun s -> s.A.Trace_stats.mbytes_written_files)
      f1;
    row "Mbytes read from directories"
      (fun s -> s.A.Trace_stats.mbytes_read_dirs)
      f1;
    let irow label f =
      Table.add_row tbl (label :: List.map (fun s -> fi (f s)) stats)
    in
    irow "Open events" (fun s -> s.A.Trace_stats.open_events);
    irow "Close events" (fun s -> s.A.Trace_stats.close_events);
    irow "Reposition events" (fun s -> s.A.Trace_stats.reposition_events);
    irow "Delete events" (fun s -> s.A.Trace_stats.delete_events);
    irow "Truncate events" (fun s -> s.A.Trace_stats.truncate_events);
    irow "Shared read events" (fun s -> s.A.Trace_stats.shared_read_events);
    irow "Shared write events" (fun s -> s.A.Trace_stats.shared_write_events);
    Table.add_note tbl (scale_note ds);
    Table.add_note tbl
      "Paper (24 h): 33-50 users, 6-11 using migration, 822-17754 MB read, \
       ~116k-275k opens; traces 3-4 dominated by two large-file users.";
    Table.render tbl
  in
  {
    id = "table1";
    title = "Overall trace statistics";
    description =
      "Eight simulated 24-hour traces mirroring Table 1: users, megabytes \
       moved, and event counts (traces 3-4 include the two large-file \
       class-project users).";
    run;
  }

(* -- Table 2 ------------------------------------------------------------------- *)

let table2 =
  let run (ds : Dataset.t) =
    let analyze ~migrated_only ~interval =
      per_trace ds (fun r ->
          A.Activity.analyze_seq ~migrated_only ~interval (Dataset.trace_seq r))
    in
    let render ~label ~interval ~(paper_all : Paper.activity_col)
        ~(paper_mig : Paper.activity_col) ~bsd_users ~bsd_tput =
      let all = analyze ~migrated_only:false ~interval in
      let mig = analyze ~migrated_only:true ~interval in
      let tbl =
        Table.create
          ~caption:(Printf.sprintf "Table 2 (%s intervals)." label)
          ~columns:
            [
              ("Measure", Table.Left);
              ("All users", Table.Right);
              ("Paper all", Table.Right);
              ("Migrated", Table.Right);
              ("Paper migrated", Table.Right);
              ("BSD study", Table.Right);
            ]
          ()
      in
      let fcol f rs = List.map f rs in
      let max_active rs =
        Printf.sprintf "%.0f"
          (max_l (fcol (fun (r : A.Activity.report) -> float_of_int r.max_active_users) rs))
      in
      Table.add_row tbl
        [
          "Maximum number of active users";
          max_active all;
          Printf.sprintf "%.0f" paper_all.max_active;
          max_active mig;
          Printf.sprintf "%.0f" paper_mig.max_active;
          "NA";
        ];
      let avg_active rs =
        Printf.sprintf "%.2f (%.2f)"
          (mean (fcol (fun (r : A.Activity.report) -> r.avg_active_users) rs))
          (mean (fcol (fun (r : A.Activity.report) -> r.sd_active_users) rs))
      in
      Table.add_row tbl
        [
          "Average number of active users";
          avg_active all;
          Printf.sprintf "%.2f (%.2f)" paper_all.avg_active paper_all.sd_active;
          avg_active mig;
          Printf.sprintf "%.2f (%.2f)" paper_mig.avg_active paper_mig.sd_active;
          Printf.sprintf "%.1f" bsd_users;
        ];
      let avg_tput rs =
        Printf.sprintf "%.1f (%.0f)"
          (mean (fcol (fun (r : A.Activity.report) -> r.avg_user_throughput) rs))
          (mean (fcol (fun (r : A.Activity.report) -> r.sd_user_throughput) rs))
      in
      Table.add_row tbl
        [
          "Avg throughput / active user (KB/s)";
          avg_tput all;
          Printf.sprintf "%.1f (%.0f)" paper_all.avg_tput paper_all.sd_tput;
          avg_tput mig;
          Printf.sprintf "%.1f (%.0f)" paper_mig.avg_tput paper_mig.sd_tput;
          Printf.sprintf "%.2f" bsd_tput;
        ];
      let peak f rs = Printf.sprintf "%.0f" (max_l (fcol f rs)) in
      Table.add_row tbl
        [
          "Peak user throughput (KB/s)";
          peak (fun (r : A.Activity.report) -> r.peak_user_throughput) all;
          Printf.sprintf "%.0f" paper_all.peak_user;
          peak (fun (r : A.Activity.report) -> r.peak_user_throughput) mig;
          Printf.sprintf "%.0f" paper_mig.peak_user;
          "NA";
        ];
      Table.add_row tbl
        [
          "Peak total throughput (KB/s)";
          peak (fun (r : A.Activity.report) -> r.peak_total_throughput) all;
          Printf.sprintf "%.0f" paper_all.peak_total;
          peak (fun (r : A.Activity.report) -> r.peak_total_throughput) mig;
          Printf.sprintf "%.0f" paper_mig.peak_total;
          "NA";
        ];
      Table.render tbl
    in
    render ~label:"10-minute" ~interval:600.0 ~paper_all:Paper.t2_all_10min
      ~paper_mig:Paper.t2_mig_10min ~bsd_users:Paper.t2_bsd_10min_avg_users
      ~bsd_tput:Paper.t2_bsd_10min_tput
    ^ "\n"
    ^ render ~label:"10-second" ~interval:10.0 ~paper_all:Paper.t2_all_10s
        ~paper_mig:Paper.t2_mig_10s ~bsd_users:Paper.t2_bsd_10s_avg_users
        ~bsd_tput:Paper.t2_bsd_10s_tput
    ^ "\n" ^ scale_note ds ^ "\n"
  in
  {
    id = "table2";
    title = "User activity and burst rates";
    description =
      "Active users and per-user throughput over 10-minute and 10-second \
       intervals, all users vs. users with migrated processes, with the \
       paper's and the BSD study's numbers alongside.";
    run;
  }

(* -- Table 3 -------------------------------------------------------------------- *)

let table3 =
  let run (ds : Dataset.t) =
    let reports =
      per_trace ds (fun r -> (Dataset.fused r).A.Fused.access_patterns)
    in
    let tbl =
      Table.create ~caption:"Table 3. File access patterns (percent)."
        ~columns:
          [
            ("File usage", Table.Left);
            ("Measure", Table.Left);
            ("Measured", Table.Right);
            ("Paper", Table.Right);
          ]
        ()
    in
    let cls_row name get (paper : Paper.t3_class) =
      let acc = List.map (fun r -> A.Access_patterns.pct_accesses r (get r)) reports in
      let byt = List.map (fun r -> A.Access_patterns.pct_bytes r (get r)) reports in
      Table.add_row tbl
        [ name; "% of accesses"; across ~digits:1 acc; paper_range ~digits:0 paper.accesses ];
      Table.add_row tbl
        [ ""; "% of bytes"; across ~digits:1 byt; paper_range ~digits:0 paper.bytes ];
      let seq_row label seq p_acc p_byt =
        let a =
          List.map
            (fun r -> A.Access_patterns.seq_pct_accesses (get r) seq)
            reports
        in
        let b =
          List.map (fun r -> A.Access_patterns.seq_pct_bytes (get r) seq) reports
        in
        Table.add_row tbl
          [ ""; label ^ " (by accesses)"; across ~digits:1 a; paper_range ~digits:0 p_acc ];
        Table.add_row tbl
          [ ""; label ^ " (by bytes)"; across ~digits:1 b; paper_range ~digits:0 p_byt ]
      in
      seq_row "whole-file" A.Session.Whole_file paper.whole_by_acc
        paper.whole_by_bytes;
      seq_row "other sequential" A.Session.Other_sequential paper.seq_by_acc
        paper.seq_by_bytes;
      seq_row "random" A.Session.Random paper.rand_by_acc paper.rand_by_bytes;
      Table.add_separator tbl
    in
    cls_row "Read-only" (fun r -> r.A.Access_patterns.read_only)
      Paper.t3_read_only;
    cls_row "Write-only" (fun r -> r.A.Access_patterns.write_only)
      Paper.t3_write_only;
    cls_row "Read/write" (fun r -> r.A.Access_patterns.read_write)
      Paper.t3_read_write;
    Table.add_note tbl "Measured cells: mean (min-max) across the traces.";
    Table.render tbl
  in
  {
    id = "table3";
    title = "File access patterns";
    description =
      "Read-only / write-only / read-write accesses split by whole-file, \
       other-sequential and random transfer, by accesses and by bytes.";
    run;
  }

(* -- figures ----------------------------------------------------------------------- *)

let render_cdf_series ~caption ~x_label series_list xs =
  let tbl =
    Table.create ~caption
      ~columns:
        ((x_label, Table.Left)
        :: List.map (fun (name, _) -> (name, Table.Right)) series_list)
      ()
  in
  Array.iter
    (fun x ->
      Table.add_row tbl
        (Table.bytes x
        :: List.map
             (fun (_, cdf) ->
               Printf.sprintf "%.1f" (100.0 *. Cdf.fraction_below cdf x))
             series_list))
    xs;
  let glyphs = [| '*'; 'o'; '+'; 'x' |] in
  let chart =
    Dfs_util.Chart.render ~title:("cumulative %: " ^ x_label) ~x_label
      (List.mapi
         (fun i (name, cdf) ->
           Dfs_util.Chart.of_cdf ~name
             ~glyph:glyphs.(i mod Array.length glyphs)
             ~xs cdf)
         series_list)
  in
  Table.render tbl ^ chart

let fig1 =
  let run (ds : Dataset.t) =
    let per =
      per_trace ds (fun r ->
          (r.preset.name, (Dataset.fused r).A.Fused.run_length))
    in
    let pooled_runs = Cdf.create () and pooled_bytes = Cdf.create () in
    List.iter
      (fun (_, (f : A.Run_length.t)) ->
        Array.iter
          (fun (v, w) -> Cdf.add pooled_runs ~weight:w v)
          (Cdf.samples f.by_runs);
        Array.iter
          (fun (v, w) -> Cdf.add pooled_bytes ~weight:w v)
          (Cdf.samples f.by_bytes))
      per;
    let xs = Cdf.log_xs ~lo:1024.0 ~hi:10_485_760.0 ~per_decade:2 in
    let headline =
      let under10k =
        List.map
          (fun (_, (f : A.Run_length.t)) ->
            100.0 *. Cdf.fraction_below f.by_runs 10240.0)
          per
      in
      let over1m =
        List.map
          (fun (_, (f : A.Run_length.t)) ->
            100.0 *. (1.0 -. Cdf.fraction_below f.by_bytes 1048576.0))
          per
      in
      Printf.sprintf
        "runs under 10 KB: %s%% (paper ~%.0f%%); bytes in runs over 1 MB: \
         %s%% (paper: at least %.0f%%)\n"
        (across ~digits:1 under10k) Paper.fig1_pct_runs_under_10k
        (across ~digits:1 over1m) Paper.fig1_pct_bytes_in_runs_over_1m
    in
    render_cdf_series
      ~caption:
        "Figure 1. Sequential run length, cumulative % (pooled over traces)."
      ~x_label:"Run length"
      [ ("% of runs", pooled_runs); ("% of bytes", pooled_bytes) ]
      xs
    ^ headline
  in
  {
    id = "fig1";
    title = "Sequential run lengths";
    description =
      "CDF of sequential run lengths weighted by runs and by bytes; most \
       runs are short but the longest runs carry much of the data.";
    run;
  }

let fig2 =
  let run (ds : Dataset.t) =
    let per =
      per_trace ds (fun r -> (Dataset.fused r).A.Fused.file_size)
    in
    let pooled_files = Cdf.create () and pooled_bytes = Cdf.create () in
    List.iter
      (fun (f : A.File_size.t) ->
        Array.iter
          (fun (v, w) -> Cdf.add pooled_files ~weight:w v)
          (Cdf.samples f.by_files);
        Array.iter
          (fun (v, w) -> Cdf.add pooled_bytes ~weight:w v)
          (Cdf.samples f.by_bytes))
      per;
    let xs = Cdf.log_xs ~lo:1024.0 ~hi:10_485_760.0 ~per_decade:2 in
    let over1m =
      List.map
        (fun (f : A.File_size.t) ->
          100.0 *. (1.0 -. Cdf.fraction_below f.by_bytes 1048576.0))
        per
    in
    render_cdf_series
      ~caption:"Figure 2. Dynamic file sizes at close, cumulative %."
      ~x_label:"File size"
      [ ("% of accesses", pooled_files); ("% of bytes", pooled_bytes) ]
      xs
    ^ Printf.sprintf
        "bytes to/from files of 1 MB or more: %s%% (paper trace 1: ~%.0f%%)\n"
        (across ~digits:1 over1m) Paper.fig2_pct_bytes_from_files_over_1m
  in
  {
    id = "fig2";
    title = "Dynamic file sizes";
    description =
      "CDF of file sizes measured at close, by accesses and by bytes \
       transferred; small files dominate accesses, large files dominate \
       bytes.";
    run;
  }

let fig3 =
  let run (ds : Dataset.t) =
    let per =
      per_trace ds (fun r -> (Dataset.fused r).A.Fused.open_time)
    in
    let pooled = Cdf.create () in
    List.iter
      (fun (f : A.Open_time.t) ->
        Array.iter
          (fun (v, w) -> Cdf.add pooled ~weight:w v)
          (Cdf.samples f.by_opens))
      per;
    let tbl =
      Table.create
        ~caption:"Figure 3. File open durations, cumulative % (pooled)."
        ~columns:[ ("Open time", Table.Left); ("% of opens", Table.Right) ]
        ()
    in
    Array.iter
      (fun x ->
        Table.add_row tbl
          [
            Printf.sprintf "%gs" x;
            Printf.sprintf "%.1f" (100.0 *. Cdf.fraction_below pooled x);
          ])
      [| 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 30.0; 100.0 |];
    let under_quarter =
      List.map (fun f -> 100.0 *. A.Open_time.fraction_under f 0.25) per
    in
    let chart =
      Dfs_util.Chart.render ~title:"cumulative %: open time (seconds)"
        ~x_label:"open time (s)"
        [
          Dfs_util.Chart.of_cdf ~name:"% of opens" ~glyph:'*'
            ~xs:A.Open_time.default_xs pooled;
        ]
    in
    Table.render tbl ^ chart
    ^ Printf.sprintf "opens under 0.25 s: %s%% (paper: ~%.0f%%)\n"
        (across ~digits:1 under_quarter) Paper.fig3_pct_opens_under_quarter_s
  in
  {
    id = "fig3";
    title = "File open times";
    description =
      "CDF of how long files stay open; the paper found ~75% of opens \
       last under a quarter of a second.";
    run;
  }

let fig4 =
  let run (ds : Dataset.t) =
    let per =
      per_trace ds (fun r ->
          (Dataset.fused r).A.Fused.lifetime)
    in
    let pooled_files = Cdf.create () and pooled_bytes = Cdf.create () in
    List.iter
      (fun (f : A.Lifetime.t) ->
        Array.iter
          (fun (v, w) -> Cdf.add pooled_files ~weight:w v)
          (Cdf.samples f.by_files);
        Array.iter
          (fun (v, w) -> Cdf.add pooled_bytes ~weight:w v)
          (Cdf.samples f.by_bytes))
      per;
    let tbl =
      Table.create ~caption:"Figure 4. File lifetimes, cumulative % (pooled)."
        ~columns:
          [
            ("Lifetime", Table.Left);
            ("% of files", Table.Right);
            ("% of bytes", Table.Right);
          ]
        ()
    in
    Array.iter
      (fun x ->
        Table.add_row tbl
          [
            Printf.sprintf "%gs" x;
            Printf.sprintf "%.1f" (100.0 *. Cdf.fraction_below pooled_files x);
            Printf.sprintf "%.1f" (100.0 *. Cdf.fraction_below pooled_bytes x);
          ])
      [| 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0; 3600.0; 21600.0; 86400.0 |];
    let files30 =
      List.map (fun f -> 100.0 *. A.Lifetime.fraction_files_under f 30.0) per
    in
    let bytes30 =
      List.map (fun f -> 100.0 *. A.Lifetime.fraction_bytes_under f 30.0) per
    in
    let chart =
      Dfs_util.Chart.render ~title:"cumulative %: lifetime (seconds)"
        ~x_label:"lifetime (s)"
        [
          Dfs_util.Chart.of_cdf ~name:"% of files" ~glyph:'*'
            ~xs:A.Lifetime.default_xs pooled_files;
          Dfs_util.Chart.of_cdf ~name:"% of bytes" ~glyph:'o'
            ~xs:A.Lifetime.default_xs pooled_bytes;
        ]
    in
    Table.render tbl ^ chart
    ^ Printf.sprintf
        "files dead within 30 s: %s%% (paper: %s); bytes dead within 30 s: \
         %s%% (paper: %s)\n"
        (across ~digits:1 files30)
        (paper_range ~digits:0 Paper.fig4_pct_files_dead_under_30s)
        (across ~digits:1 bytes30)
        (paper_range ~digits:0 Paper.fig4_pct_bytes_dead_under_30s)
  in
  {
    id = "fig4";
    title = "File lifetimes";
    description =
      "CDF of file lifetimes at deletion/truncation, by files and by \
       bytes; most files die young but most bytes live longer.";
    run;
  }

(* -- Table 4 -------------------------------------------------------------------------- *)

let table4 =
  let run (ds : Dataset.t) =
    let report = A.Cache_stats.cache_sizes (Dataset.merged_counters ds) in
    let tbl =
      Table.create ~caption:"Table 4. Client cache sizes."
        ~columns:
          [ ("Measure", Table.Left); ("Measured", Table.Right); ("Paper", Table.Right) ]
        ()
    in
    Table.add_row tbl
      [
        "Average cache size (MB)";
        Printf.sprintf "%.2f (sd %.2f)"
          (report.avg_bytes /. 1048576.0)
          (report.sd_bytes /. 1048576.0);
        Printf.sprintf "~%.1f" Paper.t4_avg_cache_mb;
      ];
    Table.add_row tbl
      [
        "15-min size change avg (KB)";
        Printf.sprintf "%.0f (sd %.0f, max %.0f)" report.change_15min.avg_kb
          report.change_15min.sd_kb report.change_15min.max_kb;
        Printf.sprintf "%.0f (sd %.0f)" Paper.t4_change_15min_avg_kb
          Paper.t4_change_15min_sd_kb;
      ];
    Table.add_row tbl
      [
        "60-min size change avg (KB)";
        Printf.sprintf "%.0f (sd %.0f, max %.0f)" report.change_60min.avg_kb
          report.change_60min.sd_kb report.change_60min.max_kb;
        Printf.sprintf "%.0f (sd %.0f)" Paper.t4_change_60min_avg_kb
          Paper.t4_change_60min_sd_kb;
      ];
    Table.add_note tbl
      (Printf.sprintf "%d counter samples; active-interval screening applied."
         report.samples_used);
    Table.render tbl
  in
  {
    id = "table4";
    title = "Client cache sizes";
    description =
      "Average client cache size and its variation over 15- and 60-minute \
       windows, from the sampled kernel counters.";
    run;
  }

(* -- Tables 5 and 7 --------------------------------------------------------------------- *)

let traffic_table ~caption traffic =
  let rows = A.Cache_stats.traffic_rows traffic in
  let tbl =
    Table.create ~caption
      ~columns:
        [
          ("Traffic type", Table.Left);
          ("Bytes read (%)", Table.Right);
          ("Bytes written (%)", Table.Right);
          ("Total (%)", Table.Right);
        ]
      ()
  in
  List.iter
    (fun (r : A.Cache_stats.traffic_row) ->
      Table.add_row tbl
        [
          r.label;
          Printf.sprintf "%.1f" r.read_pct;
          Printf.sprintf "%.1f" r.write_pct;
          Printf.sprintf "%.1f" r.total_pct;
        ])
    rows;
  Table.add_separator tbl;
  let total_read = List.fold_left (fun a (r : A.Cache_stats.traffic_row) -> a +. r.read_pct) 0.0 rows in
  let total_write = List.fold_left (fun a (r : A.Cache_stats.traffic_row) -> a +. r.write_pct) 0.0 rows in
  Table.add_row tbl
    [
      "Total";
      Printf.sprintf "%.1f" total_read;
      Printf.sprintf "%.1f" total_write;
      "100.0";
    ];
  (tbl, rows)

let paging_pct rows =
  List.fold_left
    (fun acc (r : A.Cache_stats.traffic_row) ->
      if
        String.length r.label >= 6
        && String.equal (String.sub r.label 0 6) "paging"
      then acc +. r.total_pct
      else acc)
    0.0 rows

let table5 =
  let run (ds : Dataset.t) =
    let traffic =
      List.fold_left
        (fun acc (r : Dataset.run) ->
          Dfs_sim.Traffic.merge acc (Dfs_sim.Cluster.total_traffic r.cluster))
        (Dfs_sim.Traffic.create ()) ds.runs
    in
    let tbl, rows =
      traffic_table
        ~caption:
          "Table 5. Traffic sources: raw file and paging traffic presented \
           to the client OS (percent of bytes)."
        traffic
    in
    Table.add_note tbl
      (Printf.sprintf
         "paging share: %.1f%% (paper ~%.0f%%); uncacheable share: %.1f%% \
          (paper ~%.0f%%); reads %.1f%% (paper %.1f%%)"
         (paging_pct rows)
         Paper.t5_paging_pct
         (100.0 *. (1.0 -. A.Cache_stats.cacheable_fraction traffic))
         Paper.t5_uncacheable_pct
         (100.0
         *. Dfs_util.Stats.ratio
              (float_of_int (Dfs_sim.Traffic.total_read traffic))
              (float_of_int (Dfs_sim.Traffic.total traffic)))
         Paper.t5_reads_pct);
    Table.render tbl
  in
  {
    id = "table5";
    title = "Traffic sources (raw client traffic)";
    description =
      "Raw application traffic by category before any caching: cacheable \
       file data and paging, plus uncacheable write-shared, directory and \
       backing-file traffic.";
    run;
  }

let table7 =
  let run (ds : Dataset.t) =
    let traffic =
      List.fold_left
        (fun acc (r : Dataset.run) ->
          Dfs_sim.Traffic.merge acc
            (Dfs_sim.Cluster.total_server_traffic r.cluster))
        (Dfs_sim.Traffic.create ()) ds.runs
    in
    let raw =
      List.fold_left
        (fun acc (r : Dataset.run) ->
          Dfs_sim.Traffic.merge acc (Dfs_sim.Cluster.total_traffic r.cluster))
        (Dfs_sim.Traffic.create ()) ds.runs
    in
    let tbl, rows =
      traffic_table
        ~caption:
          "Table 7. Server traffic after filtering by the client caches \
           (percent of bytes)."
        traffic
    in
    let filter = A.Cache_stats.filter_ratio ~raw ~server:traffic in
    Table.add_note tbl
      (Printf.sprintf
         "paging share: %.1f%% (paper ~%.0f%%); write-shared: %.1f%% (paper \
          ~%.0f%%); cache filter ratio: %.0f%% of raw bytes reach servers \
          (paper ~%.0f%%)"
         (paging_pct rows) Paper.t7_paging_pct
         (List.fold_left
            (fun acc (r : A.Cache_stats.traffic_row) ->
              if String.equal r.label "write-shared" then acc +. r.total_pct
              else acc)
            0.0 rows)
         Paper.t7_shared_pct (100.0 *. filter)
         (100.0 *. Paper.filter_ratio));
    Table.render tbl
  in
  {
    id = "table7";
    title = "Server traffic";
    description =
      "Traffic reaching the servers after the client caches have filtered \
       it, by category, plus the overall cache filter ratio.";
    run;
  }

(* -- Table 6 ------------------------------------------------------------------------------ *)

let table6 =
  let run (ds : Dataset.t) =
    let stats = List.concat_map Dataset.client_cache_stats ds.runs in
    let all = A.Cache_stats.effectiveness stats ~migrated:false in
    let mig = A.Cache_stats.effectiveness stats ~migrated:true in
    let tbl =
      Table.create
        ~caption:"Table 6. Client cache effectiveness (percent; smaller is better)."
        ~columns:
          [
            ("Ratio", Table.Left);
            ("Client total", Table.Right);
            ("Paper total", Table.Right);
            ("Client migrated", Table.Right);
            ("Paper migrated", Table.Right);
          ]
        ()
    in
    let fmt (r : A.Cache_stats.ratio) =
      Printf.sprintf "%.1f (%.1f)" r.mean_pct r.sd_pct
    in
    let fmt_paper (p : Paper.t6_row) which =
      match which with
      | `Total -> Printf.sprintf "%.1f (%.1f)" p.total p.total_sd
      | `Migrated ->
        if Float.is_nan p.migrated then "NA"
        else Printf.sprintf "%.1f (%.1f)" p.migrated p.migrated_sd
    in
    let row label get paper =
      Table.add_row tbl
        [
          label;
          fmt (get all);
          fmt_paper paper `Total;
          (if String.equal label "Writeback traffic" then "NA" else fmt (get mig));
          fmt_paper paper `Migrated;
        ]
    in
    row "File read misses"
      (fun (e : A.Cache_stats.effectiveness) -> e.read_miss)
      Paper.t6_read_miss;
    row "File read miss traffic"
      (fun (e : A.Cache_stats.effectiveness) -> e.read_miss_traffic)
      Paper.t6_read_miss_traffic;
    row "Writeback traffic"
      (fun (e : A.Cache_stats.effectiveness) -> e.writeback_traffic)
      Paper.t6_writeback_traffic;
    row "Write fetches"
      (fun (e : A.Cache_stats.effectiveness) -> e.write_fetch)
      Paper.t6_write_fetch;
    row "Paging read misses"
      (fun (e : A.Cache_stats.effectiveness) -> e.paging_read_miss)
      Paper.t6_paging_read_miss;
    Table.render tbl
  in
  {
    id = "table6";
    title = "Client cache effectiveness";
    description =
      "Read miss ratios, writeback traffic, write fetches, and paging \
       misses per client cache, all processes vs. migrated processes.";
    run;
  }

(* -- Tables 8 and 9 -------------------------------------------------------------------------- *)

let reason_table ~caption ~age_unit rows paper_rows =
  let tbl =
    Table.create ~caption
      ~columns:
        [
          ("Reason", Table.Left);
          ("Blocks (%)", Table.Right);
          (Printf.sprintf "Age (%s)" age_unit, Table.Right);
          ("Paper blocks (%)", Table.Right);
          ("Count", Table.Right);
        ]
      ()
  in
  List.iter
    (fun (r : A.Cache_stats.reason_row) ->
      let age =
        if String.equal age_unit "min" then r.age_mean /. 60.0 else r.age_mean
      in
      let paper =
        match List.assoc_opt r.r_label paper_rows with
        | Some p -> Printf.sprintf "%.1f" p
        | None -> "-"
      in
      Table.add_row tbl
        [
          r.r_label;
          Printf.sprintf "%.1f" r.blocks_pct;
          Printf.sprintf "%.1f" age;
          paper;
          string_of_int r.count;
        ])
    rows;
  Table.render tbl

let table8 =
  let run (ds : Dataset.t) =
    let stats = List.concat_map Dataset.client_cache_stats ds.runs in
    let rows = A.Cache_stats.replacements stats in
    reason_table
      ~caption:
        "Table 8. Cache block replacement: what the freed page was used \
         for, and how long the block had been unreferenced."
      ~age_unit:"min" rows
      [
        ("another file block", Paper.t8_for_block_pct);
        ("virtual memory page", Paper.t8_to_vm_pct);
      ]
    ^ Printf.sprintf "paper ages: %.0f min (file block), %.0f min (VM page)\n"
        Paper.t8_for_block_age_min Paper.t8_to_vm_age_min
  in
  {
    id = "table8";
    title = "Cache block replacement";
    description =
      "Why cache pages leave: reused for another file block vs. given to \
       the VM system, with ages since last reference.";
    run;
  }

let table9 =
  let run (ds : Dataset.t) =
    let stats = List.concat_map Dataset.client_cache_stats ds.runs in
    let rows = A.Cache_stats.cleanings stats in
    reason_table
      ~caption:
        "Table 9. Dirty block cleaning: why dirty data was written to the \
         server, with time since the block's last write."
      ~age_unit:"s" rows
      [
        ("30-second delay", Paper.t9_delay_pct);
        ("write-through requested by application", Paper.t9_fsync_pct);
        ("server recall", Paper.t9_recall_pct);
        ("virtual memory page", Paper.t9_vm_pct);
      ]
  in
  {
    id = "table9";
    title = "Dirty block cleaning";
    description =
      "Reasons dirty blocks get written back: the 30-second delay, \
       application fsync, server recalls, or pages leaving for the VM \
       system.";
    run;
  }

(* -- Table 10 ----------------------------------------------------------------------------------- *)

let table10 =
  let run (ds : Dataset.t) =
    let reports = per_trace ds (fun r -> A.Consistency_stats.analyze_seq (Dataset.trace_seq r)) in
    let sharing = List.map A.Consistency_stats.sharing_pct reports in
    let recall = List.map A.Consistency_stats.recall_pct reports in
    let tbl =
      Table.create
        ~caption:
          "Table 10. Consistency actions (percent of file opens, excluding \
           directories)."
        ~columns:
          [ ("Action", Table.Left); ("Measured", Table.Right); ("Paper", Table.Right) ]
        ()
    in
    Table.add_row tbl
      [
        "Concurrent write-sharing";
        across ~digits:2 sharing;
        paper_range ~digits:2 Paper.t10_sharing;
      ];
    Table.add_row tbl
      [
        "Server recall";
        across ~digits:2 recall;
        paper_range ~digits:2 Paper.t10_recall;
      ];
    Table.add_note tbl
      "Recall counts are upper bounds: the server does not track whether \
       the last writer already flushed (same as the paper).";
    Table.render tbl
  in
  {
    id = "table10";
    title = "Consistency action frequency";
    description =
      "How often opens trigger concurrent write-sharing (cache disabling) \
       or a recall of dirty data from another client.";
    run;
  }

(* -- Table 11 ------------------------------------------------------------------------------------ *)

let table11 =
  let run (ds : Dataset.t) =
    let render ~interval ~(paper : Paper.t11_col) =
      let reports =
        per_trace ds (fun r -> C.Polling.simulate_seq ~interval (Dataset.trace_seq r))
      in
      let all_affected =
        List.fold_left
          (fun acc (r : C.Polling.report) ->
            Dfs_trace.Ids.User.Set.union acc r.affected_user_ids)
          Dfs_trace.Ids.User.Set.empty reports
      in
      let all_users =
        Dfs_trace.Ids.User.Set.cardinal
          (List.fold_left
             (fun acc (r : C.Polling.report) ->
               Dfs_trace.Ids.User.Set.union acc r.seen_user_ids)
             Dfs_trace.Ids.User.Set.empty reports)
      in
      let tbl =
        Table.create
          ~caption:
            (Printf.sprintf
               "Table 11. Stale data errors, %.0f-second refresh interval."
               interval)
          ~columns:
            [ ("Measure", Table.Left); ("Measured", Table.Right); ("Paper", Table.Right) ]
          ()
      in
      Table.add_row tbl
        [
          "Average errors per hour";
          across ~digits:2
            (List.map (fun (r : C.Polling.report) -> r.errors_per_hour) reports);
          paper_range ~digits:2 paper.errors_per_hour;
        ];
      Table.add_row tbl
        [
          "% users affected per trace";
          across ~digits:1 (List.map C.Polling.pct_users_affected reports);
          paper_range ~digits:1 paper.users_affected_per_trace;
        ];
      Table.add_row tbl
        [
          "% users affected over all traces";
          Printf.sprintf "%.1f"
            (if all_users = 0 then 0.0
             else
               100.0
               *. float_of_int (Dfs_trace.Ids.User.Set.cardinal all_affected)
               /. float_of_int all_users);
          Printf.sprintf "%.1f" paper.users_affected_all;
        ];
      Table.add_row tbl
        [
          "% file opens with error";
          across ~digits:3 (List.map C.Polling.pct_opens_with_error reports);
          paper_range ~digits:3 paper.opens_with_error;
        ];
      Table.add_row tbl
        [
          "% migrated opens with error";
          across ~digits:3
            (List.map C.Polling.pct_migrated_opens_with_error reports);
          paper_range ~digits:3 paper.migrated_opens_with_error;
        ];
      Table.render tbl
    in
    render ~interval:60.0 ~paper:Paper.t11_60s
    ^ "\n"
    ^ render ~interval:3.0 ~paper:Paper.t11_3s
  in
  {
    id = "table11";
    title = "Stale data errors under polling consistency";
    description =
      "Simulation of an NFS-style polling scheme at 60-second and 3-second \
       refresh intervals: how often users would see stale data without \
       Sprite's consistency guarantee.";
    run;
  }

(* -- Table 12 ------------------------------------------------------------------------------------- *)

let table12 =
  let run (ds : Dataset.t) =
    let per =
      List.filter_map
        (fun (r : Dataset.run) ->
          let streams = C.Shared_events.extract_seq (Dataset.trace_seq r) in
          let demand_bytes = C.Shared_events.total_requested streams in
          let demand_requests = C.Shared_events.total_requests streams in
          (* short scaled traces can have no write-sharing at all; they
             carry no information about the mechanisms *)
          if demand_bytes = 0 || demand_requests = 0 then None
          else begin
            let ratios res =
              C.Overhead.ratios ~demand_bytes ~demand_requests res
            in
            Some
              ( ratios (C.Sprite.simulate streams),
                ratios (C.Sprite_modified.simulate streams),
                ratios (C.Token.simulate streams) )
          end)
        ds.runs
    in
    let tbl =
      Table.create
        ~caption:
          "Table 12. Cache consistency overhead for write-shared files \
           (ratios to application demand)."
        ~columns:
          [
            ("Mechanism", Table.Left);
            ("Bytes ratio", Table.Right);
            ("RPC ratio", Table.Right);
            ("Paper bytes", Table.Right);
            ("Paper RPCs", Table.Right);
          ]
        ()
    in
    let row name get (paper : Paper.t12_row) =
      let b = List.map (fun r -> (get r : C.Overhead.ratios).bytes_ratio) per in
      let c = List.map (fun r -> (get r : C.Overhead.ratios).rpc_ratio) per in
      Table.add_row tbl
        [
          name;
          across ~digits:2 b;
          across ~digits:2 c;
          Printf.sprintf "%.2f" paper.bytes_ratio;
          Printf.sprintf "%.2f" paper.rpc_ratio;
        ]
    in
    row "Sprite (disable caching)" (fun (s, _, _) -> s) Paper.t12_sprite;
    row "Sprite modified (re-enable)" (fun (_, m, _) -> m) Paper.t12_modified;
    row "Token-based" (fun (_, _, t) -> t) Paper.t12_token;
    Table.add_note tbl
      "Demand = bytes/requests applications made to write-shared files; \
       Sprite passes them through exactly, so its ratios are 1.00 by \
       construction.";
    Table.render tbl
  in
  {
    id = "table12";
    title = "Cache consistency overhead";
    description =
      "The three consistency mechanisms (Sprite, modified Sprite, \
       token-based) simulated over the shared-file event streams, charged \
       in bytes and RPCs against application demand.";
    run;
  }

(* Each experiment rendering is a wall-clock profiler span, so a profile
   of `all` attributes analysis time table-by-table. *)
let instrument e =
  { e with run = (fun ds -> Dfs_obs.Profiler.span ~cat:"experiment" e.id (fun () -> e.run ds)) }

let all =
  List.map instrument
  [
    table1;
    table2;
    table3;
    fig1;
    fig2;
    fig3;
    fig4;
    table4;
    table5;
    table6;
    table7;
    table8;
    table9;
    table10;
    table11;
    table12;
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let ids = List.map (fun e -> e.id) all
