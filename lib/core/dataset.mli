(** A generated dataset: the simulated counterparts of the paper's eight
    24-hour traces plus the finished clusters (whose caches, counters and
    traffic taps the cache analyses read).

    Generating all eight full-length traces takes a few minutes; [scale]
    shrinks each trace's duration (0.1 ~ 2.4 busy daytime hours), which
    preserves rates and distributions while shrinking absolute counts.
    The presets are simulated concurrently on a {!Dfs_util.Pool}; because
    every preset seeds its own RNG and runs in its own cluster, the
    result is byte-identical whatever the job count. *)

type memo
(** Per-run cache of derived analysis results; see {!fused}. *)

type run = {
  preset : Dfs_workload.Presets.preset;
  cluster : Dfs_sim.Cluster.t;  (** finished run *)
  driver : Dfs_workload.Driver.t option;
      (** [None] for replayed runs ({!of_replay}), which execute a
          foreign trace instead of a synthetic workload *)
  trace : Dfs_trace.Sink.chunks;  (** merged, scrubbed, time-ordered *)
  jobs : int;  (** domains the sharded fused analysis may use *)
  memo : memo;
}

type t = { scale : float; jobs : int; runs : run list }

val generate :
  ?scale:float ->
  ?traces:int list ->
  ?jobs:int ->
  ?faults:Dfs_fault.Profile.t ->
  ?chunk_records:int ->
  ?spill_dir:string ->
  unit ->
  t
(** [traces] selects which of the eight presets to run (default: all).
    [scale] defaults to {!default_scale}.  [jobs] caps the domains used
    (default: {!Dfs_util.Pool.default_jobs}, i.e. [DFS_JOBS] or the
    machine's core count).  [faults] enables fault injection on every
    preset (default: none).  [chunk_records] bounds the records per trace
    chunk (default: {!default_chunk_records}); [spill_dir] (default:
    {!default_spill_dir}) makes sealed chunks spill to disk as binary
    segments, so peak memory no longer grows with trace length.  Progress
    is reported through {!Dfs_obs.Log} (so [DFS_LOG=quiet] silences it),
    and per-preset wall times land in the default metrics registry as
    [phase.sim.<name>.wall_s] gauges. *)

val of_replay :
  ?jobs:int ->
  ?on_corruption:Dfs_trace.Corruption.policy ->
  string ->
  (t * Dfs_workload.Replay.stats, string) result
(** [of_replay path] reads a canonical trace (any format, validated),
    replays it through a live cluster ({!Dfs_workload.Replay}) and
    packages the finished cluster as a single-run dataset on which all
    experiments — Tables 1–12, figures, facts — run unchanged.  The
    replay is single-partition, so [--sim-shards] and [DFS_JOBS] leave
    its results byte-identical.  Errors are one-line diagnostics
    (unreadable/invalid trace, id ranges beyond the replay ceilings). *)

val default_scale : unit -> float
(** 1.0 when the environment variable [DFS_FULL] is set, else 0.05 —
    enough for stable shapes while keeping the whole suite fast. *)

val default_chunk_records : unit -> int
(** [DFS_CHUNK_RECORDS] when set to a positive integer, else
    {!Dfs_trace.Sink.default_chunk_records}. *)

val default_spill_dir : unit -> string option
(** [DFS_SPILL_DIR] when set. *)

val trace_seq : run -> Dfs_trace.Record_batch.t Seq.t
(** The run's merged trace as a replayable chunk stream (at most one
    chunk forced at a time). *)

val batch : run -> Dfs_trace.Record_batch.t
(** The merged trace materialized as one contiguous batch.  Allocates
    the whole trace; prefer {!trace_seq} for large runs. *)

val fused : run -> Dfs_analysis.Fused.t
(** The run's fused single-pass analysis (trace stats, size/open-time/
    run-length distributions, access patterns, lifetimes and the access
    reconstruction), computed on first use and shared by every
    experiment on this run.  Computed from the top level it shards
    across the run's [jobs] domains ({!Dfs_analysis.Fused.analyze_chunks});
    from inside a pool task it runs the exact sequential sweep — the
    result is bit-identical either way.  Safe to call from several
    domains. *)

val sessions : run -> Dfs_analysis.Session.access list
(** The access reconstruction from {!fused}. *)

val client_cache_stats : run -> Dfs_cache.Block_cache.stats list

val merged_counters : t -> Dfs_sim.Counters.t
(** All runs' counter samples concatenated (Table 4 uses every machine
    and day). *)

val traces : t -> Dfs_trace.Sink.chunks list
(** Each run's merged trace as a chunk stream. *)

val discard : t -> unit
(** Delete any spilled trace segments (no-op for in-memory datasets).
    The runs' traces must not be read afterwards. *)
