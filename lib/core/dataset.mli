(** A generated dataset: the simulated counterparts of the paper's eight
    24-hour traces plus the finished clusters (whose caches, counters and
    traffic taps the cache analyses read).

    Generating all eight full-length traces takes a few minutes; [scale]
    shrinks each trace's duration (0.1 ~ 2.4 busy daytime hours), which
    preserves rates and distributions while shrinking absolute counts. *)

type run = {
  preset : Dfs_workload.Presets.preset;
  cluster : Dfs_sim.Cluster.t;  (** finished run *)
  driver : Dfs_workload.Driver.t;
  trace : Dfs_trace.Record.t list;  (** merged, scrubbed, time-ordered *)
}

type t = { scale : float; runs : run list }

val generate : ?scale:float -> ?traces:int list -> unit -> t
(** [traces] selects which of the eight presets to run (default: all).
    [scale] defaults to 1.0 (full 24-hour traces).  Progress is reported
    through {!Dfs_obs.Log} (so [DFS_LOG=quiet] silences it), and
    per-preset wall times land in the default metrics registry as
    [phase.sim.<name>.wall_s] gauges. *)

val default_scale : unit -> float
(** 1.0 when the environment variable [DFS_FULL] is set, else 0.05 —
    enough for stable shapes while keeping the whole suite fast. *)

val client_cache_stats : run -> Dfs_cache.Block_cache.stats list

val merged_counters : t -> Dfs_sim.Counters.t
(** All runs' counter samples concatenated (Table 4 uses every machine
    and day). *)

val traces : t -> Dfs_trace.Record.t list list
