(** A generated dataset: the simulated counterparts of the paper's eight
    24-hour traces plus the finished clusters (whose caches, counters and
    traffic taps the cache analyses read).

    Generating all eight full-length traces takes a few minutes; [scale]
    shrinks each trace's duration (0.1 ~ 2.4 busy daytime hours), which
    preserves rates and distributions while shrinking absolute counts.
    The presets are simulated concurrently on a {!Dfs_util.Pool}; because
    every preset seeds its own RNG and runs in its own cluster, the
    result is byte-identical whatever the job count. *)

type memo
(** Per-run cache of derived analysis results; see {!fused}. *)

type run = {
  preset : Dfs_workload.Presets.preset;
  cluster : Dfs_sim.Cluster.t;  (** finished run *)
  driver : Dfs_workload.Driver.t;
  batch : Dfs_trace.Record_batch.t;  (** merged, scrubbed, time-ordered *)
  memo : memo;
}

type t = { scale : float; jobs : int; runs : run list }

val generate :
  ?scale:float ->
  ?traces:int list ->
  ?jobs:int ->
  ?faults:Dfs_fault.Profile.t ->
  unit ->
  t
(** [traces] selects which of the eight presets to run (default: all).
    [scale] defaults to {!default_scale}.  [jobs] caps the domains used
    (default: {!Dfs_util.Pool.default_jobs}, i.e. [DFS_JOBS] or the
    machine's core count).  [faults] enables fault injection on every
    preset (default: none).  Progress is reported through {!Dfs_obs.Log}
    (so [DFS_LOG=quiet] silences it), and per-preset wall times land in
    the default metrics registry as [phase.sim.<name>.wall_s] gauges. *)

val default_scale : unit -> float
(** 1.0 when the environment variable [DFS_FULL] is set, else 0.05 —
    enough for stable shapes while keeping the whole suite fast. *)

val fused : run -> Dfs_analysis.Fused.t
(** The run's fused single-pass analysis (trace stats, size/open-time/
    run-length distributions, access patterns, lifetimes and the access
    reconstruction), computed in one sweep on first use and shared by
    every experiment on this run.  Safe to call from several domains. *)

val sessions : run -> Dfs_analysis.Session.access list
(** The access reconstruction from {!fused}. *)

val client_cache_stats : run -> Dfs_cache.Block_cache.stats list

val merged_counters : t -> Dfs_sim.Counters.t
(** All runs' counter samples concatenated (Table 4 uses every machine
    and day). *)

val traces : t -> Dfs_trace.Record_batch.t list
