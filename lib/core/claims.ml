module A = Dfs_analysis
module C = Dfs_consistency

type verdict = Reproduced | Near | Off

let verdict_name = function
  | Reproduced -> "REPRODUCED"
  | Near -> "NEAR"
  | Off -> "OFF"

type claim = {
  c_id : string;
  c_section : string;
  c_text : string;
  c_paper : float;
  c_unit : string;
  c_lo : float;
  c_hi : float;
  c_measure : Dataset.t -> float;
}

(* -- measurement helpers --------------------------------------------------- *)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let per_trace (ds : Dataset.t) f = List.map (fun r -> f r) ds.runs

let activity ?(migrated_only = false) ~interval ds =
  per_trace ds (fun r ->
      A.Activity.analyze_seq ~migrated_only ~interval (Dataset.trace_seq r))

let avg_tput ?migrated_only ~interval ds =
  mean
    (List.map
       (fun (r : A.Activity.report) -> r.avg_user_throughput)
       (activity ?migrated_only ~interval ds))

let all_cache_stats ds = List.concat_map Dataset.client_cache_stats ds.Dataset.runs

let effectiveness ?(migrated = false) ds =
  A.Cache_stats.effectiveness (all_cache_stats ds) ~migrated

let raw_traffic (ds : Dataset.t) =
  List.fold_left
    (fun acc (r : Dataset.run) ->
      Dfs_sim.Traffic.merge acc (Dfs_sim.Cluster.total_traffic r.cluster))
    (Dfs_sim.Traffic.create ()) ds.runs

let server_traffic (ds : Dataset.t) =
  List.fold_left
    (fun acc (r : Dataset.run) ->
      Dfs_sim.Traffic.merge acc (Dfs_sim.Cluster.total_server_traffic r.cluster))
    (Dfs_sim.Traffic.create ()) ds.runs

let polling ~interval ds =
  per_trace ds (fun r -> C.Polling.simulate_seq ~interval (Dataset.trace_seq r))

(* -- the claims ------------------------------------------------------------- *)

let all =
  [
    {
      c_id = "throughput-per-user";
      c_section = "4.1";
      c_text =
        "Average file throughput is ~8 KB/s per active user over 10-minute \
         intervals (20x the BSD study)";
      c_paper = 8.0;
      c_unit = "KB/s";
      c_lo = 2.5;
      c_hi = 25.0;
      c_measure = (fun ds -> avg_tput ~interval:600.0 ds);
    };
    {
      c_id = "migration-burst-factor";
      c_section = "4.1";
      c_text =
        "Users with migrated processes see several times the overall \
         per-user throughput (migration marshals many workstations)";
      c_paper = 6.3;
      c_unit = "x";
      c_lo = 1.5;
      c_hi = 20.0;
      c_measure =
        (fun ds ->
          let all = avg_tput ~interval:600.0 ds in
          let mig = avg_tput ~migrated_only:true ~interval:600.0 ds in
          if all <= 0.0 then 0.0 else mig /. all);
    };
    {
      c_id = "sequential-bytes";
      c_section = "4.2";
      c_text = "More than 90% of all data is transferred sequentially";
      c_paper = 90.0;
      c_unit = "%";
      c_lo = 80.0;
      c_hi = 100.0;
      c_measure =
        (fun ds ->
          let pats = per_trace ds (fun r -> (Dataset.fused r).A.Fused.access_patterns) in
          mean
            (List.map
               (fun (p : A.Access_patterns.t) ->
                 let random_bytes =
                   p.read_only.random.bytes + p.write_only.random.bytes
                   + p.read_write.random.bytes
                 in
                 let total = max 1 p.grand_total.bytes in
                 100.0 *. (1.0 -. (float_of_int random_bytes /. float_of_int total)))
               pats));
    };
    {
      c_id = "short-runs";
      c_section = "4.2";
      c_text = "About 80% of sequential runs transfer less than 10 KB";
      c_paper = 80.0;
      c_unit = "%";
      c_lo = 60.0;
      c_hi = 95.0;
      c_measure =
        (fun ds ->
          mean
            (per_trace ds (fun r ->
                 let f = (Dataset.fused r).A.Fused.run_length in
                 100.0 *. Dfs_util.Cdf.fraction_below f.by_runs 10240.0)));
    };
    {
      c_id = "megabyte-runs";
      c_section = "4.2";
      c_text =
        "At least 10% of all bytes move in sequential runs longer than 1 MB \
         (10x the BSD study's largest runs)";
      c_paper = 10.0;
      c_unit = "%";
      c_lo = 10.0;
      c_hi = 90.0;
      c_measure =
        (fun ds ->
          mean
            (per_trace ds (fun r ->
                 let f = (Dataset.fused r).A.Fused.run_length in
                 100.0 *. (1.0 -. Dfs_util.Cdf.fraction_below f.by_bytes 1048576.0))));
    };
    {
      c_id = "short-opens";
      c_section = "4.3";
      c_text = "About 75% of files are open less than a quarter second";
      c_paper = 75.0;
      c_unit = "%";
      c_lo = 60.0;
      c_hi = 90.0;
      c_measure =
        (fun ds ->
          mean
            (per_trace ds (fun r ->
                 100.0
                 *. A.Open_time.fraction_under (Dataset.fused r).A.Fused.open_time 0.25)));
    };
    {
      c_id = "short-file-lifetimes";
      c_section = "4.3";
      c_text = "65-80% of files live less than 30 seconds";
      c_paper = 72.5;
      c_unit = "%";
      c_lo = 55.0;
      c_hi = 92.0;
      c_measure =
        (fun ds ->
          mean
            (per_trace ds (fun r ->
                 100.0
                 *. A.Lifetime.fraction_files_under (Dataset.fused r).A.Fused.lifetime 30.0)));
    };
    {
      c_id = "byte-lifetimes-longer";
      c_section = "4.3";
      c_text =
        "Only a small fraction (4-27%) of new bytes die within 30 seconds — \
         short-lived files are short";
      c_paper = 15.0;
      c_unit = "%";
      c_lo = 3.0;
      c_hi = 40.0;
      c_measure =
        (fun ds ->
          mean
            (per_trace ds (fun r ->
                 100.0
                 *. A.Lifetime.fraction_bytes_under (Dataset.fused r).A.Fused.lifetime 30.0)));
    };
    {
      c_id = "cache-size";
      c_section = "5.1";
      c_text =
        "Client caches settle at about 7 MB — a quarter to a third of main \
         memory";
      c_paper = 7.0;
      c_unit = "MB";
      c_lo = 3.5;
      c_hi = 10.0;
      c_measure =
        (fun ds ->
          (A.Cache_stats.cache_sizes (Dataset.merged_counters ds)).avg_bytes
          /. 1048576.0);
    };
    {
      c_id = "cache-filter-ratio";
      c_section = "5.2";
      c_text = "Client caches filter out about half of the raw traffic";
      c_paper = 50.0;
      c_unit = "% passed";
      c_lo = 35.0;
      c_hi = 70.0;
      c_measure =
        (fun ds ->
          100.0
          *. A.Cache_stats.filter_ratio ~raw:(raw_traffic ds)
               ~server:(server_traffic ds));
    };
    {
      c_id = "read-miss-ratio";
      c_section = "5.2";
      c_text =
        "Read miss ratios are ~40% — four times the BSD study's prediction, \
         because of the new large files";
      c_paper = 41.4;
      c_unit = "%";
      c_lo = 20.0;
      c_hi = 55.0;
      c_measure = (fun ds -> (effectiveness ds).read_miss.mean_pct);
    };
    {
      c_id = "writeback-traffic";
      c_section = "5.2";
      c_text =
        "About 90% of new bytes eventually get written through to the \
         server (only ~10% die in the cache within the 30-s delay)";
      c_paper = 88.4;
      c_unit = "%";
      c_lo = 75.0;
      c_hi = 98.0;
      c_measure = (fun ds -> (effectiveness ds).writeback_traffic.mean_pct);
    };
    {
      c_id = "write-fetches-rare";
      c_section = "5.2";
      c_text = "Write fetches (partial writes of non-resident blocks) are rare";
      c_paper = 1.2;
      c_unit = "%";
      c_lo = 0.0;
      c_hi = 5.0;
      c_measure = (fun ds -> (effectiveness ds).write_fetch.mean_pct);
    };
    {
      c_id = "migrated-cache-locality";
      c_section = "5.2";
      c_text =
        "Migrated processes hit the caches at least as well as processes in \
         general (host reuse gives them locality)";
      c_paper = 0.54;
      c_unit = "x (mig/all miss)";
      c_lo = 0.0;
      c_hi = 1.3;
      c_measure =
        (fun ds ->
          let all = (effectiveness ds).read_miss.mean_pct in
          let mig = (effectiveness ~migrated:true ds).read_miss.mean_pct in
          if all <= 0.0 then 1.0 else mig /. all);
    };
    {
      c_id = "paging-share";
      c_section = "5.3";
      c_text = "Paging is roughly a third of the bytes moved, raw and at the server";
      c_paper = 35.0;
      c_unit = "% of server bytes";
      c_lo = 20.0;
      c_hi = 50.0;
      c_measure =
        (fun ds ->
          let t = server_traffic ds in
          let paging =
            Dfs_sim.Traffic.read_bytes t Dfs_sim.Traffic.Paging_cached
            + Dfs_sim.Traffic.write_bytes t Dfs_sim.Traffic.Paging_cached
            + Dfs_sim.Traffic.read_bytes t Dfs_sim.Traffic.Paging_backing
            + Dfs_sim.Traffic.write_bytes t Dfs_sim.Traffic.Paging_backing
          in
          100.0 *. float_of_int paging /. float_of_int (max 1 (Dfs_sim.Traffic.total t)));
    };
    {
      c_id = "delay-cleanings";
      c_section = "5.4";
      c_text =
        "About three-fourths of dirty-block cleanings happen because the \
         30-second delay elapsed";
      c_paper = 75.0;
      c_unit = "%";
      c_lo = 60.0;
      c_hi = 99.0;
      c_measure =
        (fun ds ->
          let rows = A.Cache_stats.cleanings (all_cache_stats ds) in
          match
            List.find_opt
              (fun (r : A.Cache_stats.reason_row) -> r.r_label = "30-second delay")
              rows
          with
          | Some r -> r.blocks_pct
          | None -> 0.0);
    };
    {
      c_id = "write-sharing-rare";
      c_section = "5.5";
      c_text =
        "Concurrent write-sharing happens on ~0.34% of file opens — rare, \
         but common enough to matter daily";
      c_paper = 0.34;
      c_unit = "% of opens";
      c_lo = 0.05;
      c_hi = 1.0;
      c_measure =
        (fun ds ->
          mean
            (per_trace ds (fun r ->
                 A.Consistency_stats.sharing_pct
                   (A.Consistency_stats.analyze_seq (Dataset.trace_seq r)))));
    };
    {
      c_id = "recall-rate";
      c_section = "5.5";
      c_text =
        "About one open in sixty recalls dirty data from another client \
         (an upper bound; the server cannot tell if it was already flushed)";
      c_paper = 1.7;
      c_unit = "% of opens";
      c_lo = 0.5;
      c_hi = 6.0;
      c_measure =
        (fun ds ->
          mean
            (per_trace ds (fun r ->
                 A.Consistency_stats.recall_pct
                   (A.Consistency_stats.analyze_seq (Dataset.trace_seq r)))));
    };
    {
      c_id = "polling-users-affected";
      c_section = "5.5";
      c_text =
        "Under 60-second polling consistency, about half the users would \
         read stale data in a day";
      c_paper = 48.0;
      c_unit = "% of users";
      c_lo = 15.0;
      c_hi = 70.0;
      c_measure =
        (fun ds -> mean (List.map C.Polling.pct_users_affected (polling ~interval:60.0 ds)));
    };
    {
      c_id = "polling-interval-contrast";
      c_section = "5.5";
      c_text =
        "Tightening the polling interval from 60 s to 3 s cuts stale reads \
         by an order of magnitude (but does not eliminate them)";
      c_paper = 30.0;
      c_unit = "x fewer";
      c_lo = 3.0;
      c_hi = 500.0;
      c_measure =
        (fun ds ->
          let e60 =
            mean (List.map (fun (r : C.Polling.report) -> r.errors_per_hour)
                    (polling ~interval:60.0 ds))
          in
          let e3 =
            mean (List.map (fun (r : C.Polling.report) -> r.errors_per_hour)
                    (polling ~interval:3.0 ds))
          in
          if e3 <= 0.0 then 500.0 else e60 /. e3);
    };
    {
      c_id = "consistency-no-clear-winner";
      c_section = "5.6";
      c_text =
        "The consistency mechanisms have comparable overheads: the token \
         scheme moves roughly as many bytes as Sprite's simple disabling";
      c_paper = 0.98;
      c_unit = "x bytes vs Sprite";
      c_lo = 0.5;
      c_hi = 3.0;
      c_measure =
        (fun ds ->
          let ratios =
            List.filter_map
              (fun (r : Dataset.run) ->
                let streams = C.Shared_events.extract_seq (Dataset.trace_seq r) in
                let d = C.Shared_events.total_requested streams in
                if d = 0 then None
                else
                  Some
                    (float_of_int
                       (C.Token.simulate streams).C.Overhead.bytes_transferred
                    /. float_of_int d))
              ds.runs
          in
          mean ratios);
    };
    {
      c_id = "raw-reads-dominate";
      c_section = "5.2";
      c_text = "Raw file traffic favours reads about 4:1";
      c_paper = 4.0;
      c_unit = "x";
      c_lo = 2.0;
      c_hi = 6.0;
      c_measure =
        (fun ds ->
          let t = raw_traffic ds in
          let r = Dfs_sim.Traffic.read_bytes t Dfs_sim.Traffic.File_data in
          let w = Dfs_sim.Traffic.write_bytes t Dfs_sim.Traffic.File_data in
          if w = 0 then 0.0 else float_of_int r /. float_of_int w);
    };
  ]

type result = { claim : claim; measured : float; verdict : verdict }

let judge (c : claim) measured =
  if measured >= c.c_lo && measured <= c.c_hi then Reproduced
  else begin
    let span = c.c_hi -. c.c_lo in
    if measured >= c.c_lo -. (0.5 *. span) && measured <= c.c_hi +. (0.5 *. span)
    then Near
    else Off
  end

let evaluate ds =
  List.map
    (fun c ->
      let measured = c.c_measure ds in
      { claim = c; measured; verdict = judge c measured })
    all

let scorecard ds =
  let results = evaluate ds in
  let tbl =
    Dfs_util.Table.create
      ~caption:"Scorecard: the paper's headline findings vs this reproduction."
      ~columns:
        [
          ("#", Dfs_util.Table.Left);
          ("Claim", Dfs_util.Table.Left);
          ("Paper", Dfs_util.Table.Right);
          ("Measured", Dfs_util.Table.Right);
          ("Verdict", Dfs_util.Table.Left);
        ]
      ()
  in
  List.iter
    (fun r ->
      Dfs_util.Table.add_row tbl
        [
          r.claim.c_section;
          r.claim.c_id;
          Printf.sprintf "%.2f %s" r.claim.c_paper r.claim.c_unit;
          Printf.sprintf "%.2f" r.measured;
          verdict_name r.verdict;
        ])
    results;
  let ok =
    List.length (List.filter (fun r -> r.verdict = Reproduced) results)
  in
  Dfs_util.Table.add_note tbl
    (Printf.sprintf "%d/%d claims reproduced within their shape bands." ok
       (List.length results));
  Dfs_util.Table.render tbl

let markdown ds =
  let results = evaluate ds in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "| § | Claim | Paper | Measured | Verdict |\n|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %.2f %s | %.2f | %s |\n"
           r.claim.c_section r.claim.c_text r.claim.c_paper r.claim.c_unit
           r.measured
           (verdict_name r.verdict)))
    results;
  Buffer.contents buf
