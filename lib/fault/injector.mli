(** Runtime fault injection: the mutable counterpart of a {!Schedule}.

    One injector serves one cluster.  It answers "is this server
    reachable right now?", charges RPC timeout/retry/backoff delays,
    draws per-RPC drop and per-I/O disk-error outcomes from its own RNG
    stream (never the workload's, so enabling faults does not perturb
    the workload), holds the offline queue of writebacks addressed to a
    down server, and accumulates the recovery statistics that
    {!Dfs_analysis.Recovery_stats} renders.

    All draws happen in engine-execution order inside a single cluster,
    so runs are deterministic for a fixed profile seed. *)

type stats = {
  mutable crashes : int;
  mutable reboots : int;
  mutable downtime_s : float;  (** summed outage durations *)
  mutable lost_bytes : int;
      (** dirty delayed-write bytes destroyed by crashes *)
  mutable partitions : int;
  mutable rpc_retries : int;  (** retransmissions, all causes *)
  mutable rpc_drops : int;  (** retransmissions caused by packet loss *)
  mutable rpc_stall_s : float;  (** client time spent waiting on retries *)
  mutable disk_errors : int;
  mutable recovery_rpcs : int;
      (** re-registrations and state-replay RPCs after reboots *)
  mutable offline_queued_bytes : int;
      (** writeback bytes parked client-side while a server was down *)
  mutable replayed_bytes : int;  (** offline bytes delivered after reboot *)
}

type t

val create :
  profile:Profile.t ->
  n_servers:int ->
  ?server_id_base:int ->
  ?schedule_servers:int ->
  horizon:float ->
  unit ->
  t
(** One injector per cluster (or per partition of a partitioned
    cluster).  [n_servers] is the number of {e local} servers this
    injector answers queries for; their global ids start at
    [server_id_base] (default 0).  The outage schedule is always
    generated for the full global cluster of [schedule_servers] servers
    (default [server_id_base + n_servers]) — generation is pure, and
    splitting it per partition this way leaves every server's windows
    identical to the unpartitioned schedule.  Data-path queries take
    local server indices; jitter draws key on global ids so retry
    timing is partition-independent. *)

val profile : t -> Profile.t

val schedule : t -> Schedule.t

val stats : t -> stats

(** {1 Data-path queries} *)

val backoff_step : Profile.t -> server:int -> attempt:int -> float
(** The wait before retransmission [attempt] (0-based): the doubling
    timeout [rpc_timeout * 2^attempt], spread by [rpc_backoff_jitter]
    using a pure per-(seed, server, attempt) RNG split, clamped to
    [rpc_backoff_max].  A pure function — the same retry waits the same
    time regardless of [DFS_JOBS] sharding.  Each ceiling-clipped step
    taken by {!rpc_delay} bumps the [sim.fault.backoff_capped]
    counter. *)

val server_down : t -> server:int -> now:float -> bool
(** Down or unreachable behind a partition. *)

val rpc_delay : t -> server:int -> now:float -> float
(** Extra latency this RPC suffers: [0] in the common case; the
    timeout/backoff stall until the server is reachable again when it is
    down or partitioned; one-or-more retransmission timeouts when the
    packet-loss draw fires.  Updates retry counters. *)

val disk_penalty : t -> float
(** Extra service time for one disk I/O ([0] or the profile's transient
    error penalty). *)

(** {1 Crash / recovery bookkeeping} *)

val note_crash : t -> server:int -> now:float -> duration:float -> lost_bytes:int -> unit

val note_reboot : t -> server:int -> now:float -> unit

val note_partition : t -> now:float -> duration:float -> unit

val note_recovery_rpcs : t -> int -> unit

val set_bytes_at_risk : t -> int -> unit
(** Refresh the [sim.fault.bytes_at_risk] gauge (dirty bytes currently
    exposed to the delayed-write loss window). *)

(** {1 Offline writeback queue} *)

val queue_writeback : t -> server:int -> file:int -> index:int -> bytes:int -> unit

val drain_writebacks :
  t -> server:int -> (file:int -> index:int -> bytes:int -> unit) -> unit
(** Replay queued writebacks in FIFO order and account them as
    replayed. *)

val queued_bytes : t -> server:int -> int
