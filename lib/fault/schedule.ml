module Rng = Dfs_util.Rng

type window = { down_at : float; up_at : float }

type t = {
  profile : Profile.t;
  horizon : float;
  servers : window array array;
  parts : window array;
}

(* Alternating exponential up/down times.  A repair time is clamped to at
   least one second so a window is never degenerate. *)
let gen_windows rng ~mtbf ~mttr ~horizon =
  if not (Float.is_finite mtbf) || mtbf <= 0.0 then [||]
  else begin
    let acc = ref [] and t = ref 0.0 in
    let continue = ref true in
    while !continue do
      let down_at = !t +. Rng.exponential rng mtbf in
      if down_at >= horizon then continue := false
      else begin
        let up_at = down_at +. Float.max 1.0 (Rng.exponential rng mttr) in
        acc := { down_at; up_at } :: !acc;
        t := up_at
      end
    done;
    Array.of_list (List.rev !acc)
  end

let generate ~(profile : Profile.t) ~n_servers ~horizon =
  (* One split per stream, in a fixed order, so adding servers never
     perturbs earlier servers' windows. *)
  let root = Rng.create ((profile.seed * 2654435761) lxor 0x5fa17) in
  let servers =
    Array.init n_servers (fun _ ->
        let rng = Rng.split root in
        gen_windows rng ~mtbf:profile.server_mttf ~mttr:profile.server_mttr
          ~horizon)
  in
  let parts =
    let rng = Rng.split root in
    gen_windows rng ~mtbf:profile.partition_mtbf ~mttr:profile.partition_mttr
      ~horizon
  in
  { profile; horizon; servers; parts }

let profile t = t.profile

let horizon t = t.horizon

let server_outages t i = Array.to_list t.servers.(i)

let partitions t = Array.to_list t.parts

(* Binary search for the window covering [now]: windows are sorted and
   disjoint, so find the last window with [down_at <= now]. *)
let covering windows ~now =
  let n = Array.length windows in
  if n = 0 then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) and found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if windows.(mid).down_at <= now then begin
        found := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !found >= 0 && now < windows.(!found).up_at then Some windows.(!found)
    else None
  end

let server_down t ~server ~now =
  if server < 0 || server >= Array.length t.servers then None
  else covering t.servers.(server) ~now

let partitioned t ~now = covering t.parts ~now

let crash_count t =
  Array.fold_left (fun acc w -> acc + Array.length w) 0 t.servers
