type t = {
  seed : int;
  server_mttf : float;
  server_mttr : float;
  rpc_drop_prob : float;
  partition_mtbf : float;
  partition_mttr : float;
  disk_error_prob : float;
  disk_error_penalty : float;
  rpc_timeout : float;
  rpc_backoff_max : float;
  rpc_backoff_jitter : float;
}

let none =
  {
    seed = 0;
    server_mttf = infinity;
    server_mttr = 0.0;
    rpc_drop_prob = 0.0;
    partition_mtbf = infinity;
    partition_mttr = 0.0;
    disk_error_prob = 0.0;
    disk_error_penalty = 0.050;
    rpc_timeout = 0.5;
    rpc_backoff_max = 30.0;
    rpc_backoff_jitter = 0.0;
  }

let light =
  {
    none with
    seed = 1;
    server_mttf = 6.0 *. 3600.0;
    server_mttr = 120.0;
    rpc_drop_prob = 1e-4;
    partition_mtbf = 12.0 *. 3600.0;
    partition_mttr = 30.0;
    disk_error_prob = 1e-4;
    rpc_backoff_jitter = 0.1;
  }

let crash_heavy =
  {
    none with
    seed = 1;
    server_mttf = 600.0;
    server_mttr = 60.0;
    rpc_drop_prob = 1e-3;
    partition_mtbf = 2.0 *. 3600.0;
    partition_mttr = 45.0;
    disk_error_prob = 1e-3;
    rpc_backoff_jitter = 0.1;
  }

let is_none p =
  (not (Float.is_finite p.server_mttf))
  && (not (Float.is_finite p.partition_mtbf))
  && p.rpc_drop_prob <= 0.0
  && p.disk_error_prob <= 0.0

let name p =
  if is_none p then "none"
  else if p = { light with seed = p.seed } then "light"
  else if p = { crash_heavy with seed = p.seed } then "heavy"
  else "custom"

let of_name = function
  | "none" -> Some none
  | "light" -> Some light
  | "heavy" | "crash-heavy" -> Some crash_heavy
  | _ -> None

let with_seed p seed = { p with seed }
