module Rng = Dfs_util.Rng

type stats = {
  mutable crashes : int;
  mutable reboots : int;
  mutable downtime_s : float;
  mutable lost_bytes : int;
  mutable partitions : int;
  mutable rpc_retries : int;
  mutable rpc_drops : int;
  mutable rpc_stall_s : float;
  mutable disk_errors : int;
  mutable recovery_rpcs : int;
  mutable offline_queued_bytes : int;
  mutable replayed_bytes : int;
}

type pending_writeback = { pw_file : int; pw_index : int; pw_bytes : int }

type t = {
  prof : Profile.t;
  sched : Schedule.t;
  server_id_base : int;
      (* global id of local server 0; the schedule always covers the
         full global cluster, queries translate local -> global *)
  rng : Rng.t;  (* drop / disk-error draws only; never the workload's *)
  queues : pending_writeback Queue.t array;
  mutable queued : int array;  (* bytes parked per server *)
  st : stats;
}

let m_crashes = Dfs_obs.Metrics.counter "sim.fault.crashes"

let m_reboots = Dfs_obs.Metrics.counter "sim.fault.reboots"

let m_lost = Dfs_obs.Metrics.counter "sim.fault.lost_bytes"

let m_partitions = Dfs_obs.Metrics.counter "sim.fault.partitions"

let m_retries = Dfs_obs.Metrics.counter "sim.fault.rpc_retries"

let m_drops = Dfs_obs.Metrics.counter "sim.fault.rpc_drops"

let m_disk_errors = Dfs_obs.Metrics.counter "sim.fault.disk_errors"

let m_recovery = Dfs_obs.Metrics.counter "sim.fault.recovery_rpcs"

let m_queued = Dfs_obs.Metrics.counter "sim.fault.offline_queued_bytes"

let m_replayed = Dfs_obs.Metrics.counter "sim.fault.replayed_writeback_bytes"

let m_at_risk = Dfs_obs.Metrics.gauge "sim.fault.bytes_at_risk"

let m_outage = Dfs_obs.Metrics.histogram "sim.fault.outage_s"

let m_lost_per_crash = Dfs_obs.Metrics.histogram "sim.fault.lost_bytes_per_crash"

let m_stall = Dfs_obs.Metrics.histogram "sim.fault.rpc_stall_s"

let m_backoff_capped = Dfs_obs.Metrics.counter "sim.fault.backoff_capped"

let create ~profile ~n_servers ?(server_id_base = 0) ?schedule_servers
    ~horizon () =
  (* The schedule is generated for the FULL global cluster in every
     partition — generation is pure and cheap, and per-server streams
     are split in fixed server order, so partitioning never perturbs any
     server's outage windows (each partition just reads its own slice). *)
  let schedule_servers =
    Option.value schedule_servers ~default:(server_id_base + n_servers)
  in
  assert (schedule_servers >= server_id_base + n_servers);
  {
    prof = profile;
    sched = Schedule.generate ~profile ~n_servers:schedule_servers ~horizon;
    server_id_base;
    rng =
      Rng.create
        ((profile.Profile.seed * 48271)
        lxor 0xfa117
        lxor (server_id_base * 0x9E3779B1));
    queues = Array.init n_servers (fun _ -> Queue.create ());
    queued = Array.make n_servers 0;
    st =
      {
        crashes = 0;
        reboots = 0;
        downtime_s = 0.0;
        lost_bytes = 0;
        partitions = 0;
        rpc_retries = 0;
        rpc_drops = 0;
        rpc_stall_s = 0.0;
        disk_errors = 0;
        recovery_rpcs = 0;
        offline_queued_bytes = 0;
        replayed_bytes = 0;
      };
  }

let profile t = t.prof

let schedule t = t.sched

let stats t = t.st

let span ~now ~name ~dur attrs =
  if Dfs_obs.Tracer.active () then
    Dfs_obs.Tracer.emit ~cat:"fault" ~name ~t0:now ~dur ~attrs ()

(* -- data-path queries ----------------------------------------------------- *)

let unreachable_until t ~server ~now =
  let server = t.server_id_base + server in
  let until = ref neg_infinity in
  (match Schedule.server_down t.sched ~server ~now with
  | Some w -> until := w.Schedule.up_at
  | None -> ());
  (match Schedule.partitioned t.sched ~now with
  | Some w -> if w.Schedule.up_at > !until then until := w.Schedule.up_at
  | None -> ());
  if !until > now then Some !until else None

let server_down t ~server ~now = unreachable_until t ~server ~now <> None

(* Jitter draw for retransmission [attempt] against [server]: a fresh
   RNG split keyed only by (profile seed, server, attempt) — never the
   injector's stateful stream — so the same retry always waits the same
   time no matter how work is sharded across domains ([DFS_JOBS=1] and
   [DFS_JOBS=N] are byte-identical). *)
let jitter_unit (p : Profile.t) ~server ~attempt =
  let key =
    (p.seed * 0x9E3779B1)
    lxor (server * 0x85EBCA77)
    lxor ((attempt + 1) * 0xC2B2AE3D)
  in
  Rng.float (Rng.create key)

(* The wait before retransmission [attempt] (0-based): the doubling
   timeout, spread by the profile's jitter fraction, clamped to the
   ceiling.  Also reports whether the ceiling clipped this step. *)
let backoff_step_capped (p : Profile.t) ~server ~attempt =
  let raw = Float.ldexp p.rpc_timeout attempt in
  let jittered =
    if p.rpc_backoff_jitter <= 0.0 then raw
    else raw *. (1.0 +. (p.rpc_backoff_jitter *. jitter_unit p ~server ~attempt))
  in
  if jittered >= p.rpc_backoff_max then (p.rpc_backoff_max, true)
  else (jittered, false)

let backoff_step p ~server ~attempt = fst (backoff_step_capped p ~server ~attempt)

(* The client retries on a (jittered) timeout that doubles up to the
   profile ceiling; it only notices the server is back on the retry that
   first lands after the outage ends, so the charged stall is the
   cumulative backoff that first reaches past [remaining].  Returns
   (stall, retries, ceiling-clipped steps). *)
let backoff_stall (p : Profile.t) ~server ~remaining =
  let rec go acc n capped =
    if acc >= remaining then (acc, n, capped)
    else
      let step, hit = backoff_step_capped p ~server ~attempt:n in
      go (acc +. step) (n + 1) (if hit then capped + 1 else capped)
  in
  go 0.0 0 0

let max_drop_retries = 8

let rpc_delay t ~server ~now =
  (* Jitter draws key on the GLOBAL server id so a given retry waits the
     same time whether the cluster is partitioned or not. *)
  let gserver = t.server_id_base + server in
  match unreachable_until t ~server ~now with
  | Some until ->
    let stall, retries, capped =
      backoff_stall t.prof ~server:gserver ~remaining:(until -. now)
    in
    t.st.rpc_retries <- t.st.rpc_retries + retries;
    t.st.rpc_stall_s <- t.st.rpc_stall_s +. stall;
    Dfs_obs.Metrics.add m_retries retries;
    if capped > 0 then Dfs_obs.Metrics.add m_backoff_capped capped;
    Dfs_obs.Metrics.observe m_stall stall;
    span ~now ~name:"rpc-stall" ~dur:stall
      [ ("server", Dfs_obs.Json.Int server);
        ("retries", Dfs_obs.Json.Int retries) ];
    stall
  | None ->
    if t.prof.rpc_drop_prob <= 0.0 then 0.0
    else begin
      (* Packet loss: geometric number of retransmissions, each costing
         the current (doubling, jittered) timeout. *)
      let rec go acc n =
        if n >= max_drop_retries then acc
        else if Rng.bernoulli t.rng t.prof.rpc_drop_prob then begin
          t.st.rpc_drops <- t.st.rpc_drops + 1;
          t.st.rpc_retries <- t.st.rpc_retries + 1;
          Dfs_obs.Metrics.incr m_drops;
          Dfs_obs.Metrics.incr m_retries;
          let step, hit = backoff_step_capped t.prof ~server:gserver ~attempt:n in
          if hit then Dfs_obs.Metrics.incr m_backoff_capped;
          go (acc +. step) (n + 1)
        end
        else acc
      in
      let stall = go 0.0 0 in
      if stall > 0.0 then begin
        t.st.rpc_stall_s <- t.st.rpc_stall_s +. stall;
        Dfs_obs.Metrics.observe m_stall stall
      end;
      stall
    end

let disk_penalty t =
  if t.prof.disk_error_prob <= 0.0 then 0.0
  else if Rng.bernoulli t.rng t.prof.disk_error_prob then begin
    t.st.disk_errors <- t.st.disk_errors + 1;
    Dfs_obs.Metrics.incr m_disk_errors;
    t.prof.disk_error_penalty
  end
  else 0.0

(* -- crash / recovery bookkeeping ------------------------------------------ *)

let note_crash t ~server ~now ~duration ~lost_bytes =
  t.st.crashes <- t.st.crashes + 1;
  t.st.downtime_s <- t.st.downtime_s +. duration;
  t.st.lost_bytes <- t.st.lost_bytes + lost_bytes;
  Dfs_obs.Metrics.incr m_crashes;
  Dfs_obs.Metrics.add m_lost lost_bytes;
  Dfs_obs.Metrics.observe m_outage duration;
  Dfs_obs.Metrics.observe m_lost_per_crash (float_of_int lost_bytes);
  span ~now ~name:"crash" ~dur:duration
    [ ("server", Dfs_obs.Json.Int server);
      ("lost_bytes", Dfs_obs.Json.Int lost_bytes) ]

let note_reboot t ~server ~now =
  t.st.reboots <- t.st.reboots + 1;
  Dfs_obs.Metrics.incr m_reboots;
  span ~now ~name:"reboot" ~dur:0.0 [ ("server", Dfs_obs.Json.Int server) ]

let note_partition t ~now ~duration =
  t.st.partitions <- t.st.partitions + 1;
  Dfs_obs.Metrics.incr m_partitions;
  span ~now ~name:"partition" ~dur:duration []

let note_recovery_rpcs t n =
  t.st.recovery_rpcs <- t.st.recovery_rpcs + n;
  Dfs_obs.Metrics.add m_recovery n

let set_bytes_at_risk t bytes =
  ignore t;
  Dfs_obs.Metrics.set m_at_risk (float_of_int bytes)

(* -- offline writeback queue ----------------------------------------------- *)

let queue_writeback t ~server ~file ~index ~bytes =
  Queue.add { pw_file = file; pw_index = index; pw_bytes = bytes }
    t.queues.(server);
  t.queued.(server) <- t.queued.(server) + bytes;
  t.st.offline_queued_bytes <- t.st.offline_queued_bytes + bytes;
  Dfs_obs.Metrics.add m_queued bytes

let drain_writebacks t ~server f =
  let q = t.queues.(server) in
  while not (Queue.is_empty q) do
    let { pw_file; pw_index; pw_bytes } = Queue.pop q in
    t.st.replayed_bytes <- t.st.replayed_bytes + pw_bytes;
    Dfs_obs.Metrics.add m_replayed pw_bytes;
    f ~file:pw_file ~index:pw_index ~bytes:pw_bytes
  done;
  t.queued.(server) <- 0

let queued_bytes t ~server = t.queued.(server)
