(** A fault schedule: every outage window, precomputed.

    The schedule is a {e pure function} of [(profile, n_servers, horizon)]:
    it draws exponential failure/repair times from RNG streams split off
    the profile seed and nothing else, so a run's failures are identical
    whatever the domain count or the order in which clusters are built.
    Windows are generated eagerly up to [horizon]; an outage that begins
    before the horizon may end after it. *)

type window = { down_at : float; up_at : float }

type t

val generate : profile:Profile.t -> n_servers:int -> horizon:float -> t

val profile : t -> Profile.t

val horizon : t -> float

val server_outages : t -> int -> window list
(** Outage windows of one server, in time order, non-overlapping. *)

val partitions : t -> window list
(** Cluster-wide network partition windows, in time order. *)

val server_down : t -> server:int -> now:float -> window option
(** The outage window covering [now] for this server, if any
    ([down_at <= now < up_at]). *)

val partitioned : t -> now:float -> window option

val crash_count : t -> int
(** Total crash events across all servers (within the horizon). *)
