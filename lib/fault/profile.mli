(** A fault profile: the knobs of the fault-injection subsystem.

    A profile is plain data; combined with a seed it fully determines the
    fault schedule (see {!Schedule}), so two runs with the same profile
    see byte-identical failures regardless of [DFS_JOBS].  The paper's
    Sprite deployment had real server crashes (Section 2 mentions the
    recovery storms that follow a reboot) and its 30-second delayed-write
    policy explicitly accepts losing up to 30 s of dirty data in one —
    the [crash_heavy] profile exists to measure exactly that trade. *)

type t = {
  seed : int;  (** root of every fault-schedule RNG stream *)
  server_mttf : float;
      (** mean time between server failures, seconds; [infinity] = never *)
  server_mttr : float;  (** mean outage duration, seconds *)
  rpc_drop_prob : float;  (** per-RPC probability of a lost packet *)
  partition_mtbf : float;
      (** mean time between network partitions; [infinity] = never *)
  partition_mttr : float;  (** mean partition duration, seconds *)
  disk_error_prob : float;  (** per-I/O probability of a transient error *)
  disk_error_penalty : float;
      (** extra service time per transient disk error (retry + recalibrate) *)
  rpc_timeout : float;  (** client RPC timeout before the first retry *)
  rpc_backoff_max : float;  (** retry interval ceiling, seconds *)
  rpc_backoff_jitter : float;
      (** jitter fraction applied to each retry interval: attempt [k]
          waits [timeout * 2^k * (1 + jitter * u)] (clamped to
          [rpc_backoff_max]) where [u] in [0,1) is drawn from a pure
          per-(seed, server, attempt) RNG split — deterministic and
          independent of [DFS_JOBS].  [0] disables jitter. *)
}

val none : t
(** No faults at all; the simulator behaves exactly as without this
    subsystem. *)

val light : t
(** Rare failures: roughly one server crash per simulated day across the
    cluster, occasional dropped RPCs and transient disk errors. *)

val crash_heavy : t
(** The chaos profile: MTTF of ten simulated minutes per server, so even
    short scaled runs see several crashes (and measurable delayed-write
    loss). *)

val is_none : t -> bool
(** [true] when the profile can never produce a fault — used to skip
    building an injector entirely. *)

val name : t -> string
(** ["none"], ["light"], ["heavy"], or ["custom"]. *)

val of_name : string -> t option
(** Accepts ["none"], ["light"], ["heavy"] (and the alias
    ["crash-heavy"]). *)

val with_seed : t -> int -> t
