(** Open/close inference for sources that log raw accesses only.

    Block and syscall traces rarely carry explicit open/close events,
    but every analysis in this repo is built on the paper's
    session-oriented record stream: positions at open/seek/close plus
    byte totals at close.  This state machine reconstructs that stream
    from per-[(client, pid, file)] access runs:

    - accesses to the same file by the same process separated by less
      than [idle_gap] seconds belong to one run;
    - each run becomes [Open … Reposition* … Close]: the [Open] is
      stamped at the run's first access with the run's starting offset,
      a [Reposition] is synthesized wherever an access does not start
      at the current position, and the [Close] (at the last access plus
      [close_lag], so it sorts strictly after the [Open]) carries the
      run's total bytes read/written and the file size;
    - the open mode is inferred from the run's read/write mix, and
      [created] is set when the first-ever access to a file is a write;
    - file sizes persist across runs: a file first seen through reads
      is assumed to have pre-existed with the extent the run touched.

    Every synthesized record satisfies {!Dfs_trace.Record.validate}
    (given in-domain inputs, which {!Snia.parse_row} guarantees), every
    [Open] has a matching [Close], and record times are the access
    times — so the output replays and analyzes like a native trace. *)

type config = {
  idle_gap : float;
      (** seconds of per-(process, file) inactivity that end a run *)
  close_lag : float;
      (** offset added to the close timestamp so it sorts after the
          run's last access (and after a single-access run's open) *)
}

val default_config : config
(** [idle_gap = 1.0], [close_lag = 1e-4]. *)

type t

val create : ?config:config -> unit -> t

val feed :
  t ->
  client:Dfs_trace.Ids.Client.t ->
  user:Dfs_trace.Ids.User.t ->
  pid:Dfs_trace.Ids.Process.t ->
  file:Dfs_trace.Ids.File.t ->
  server:Dfs_trace.Ids.Server.t ->
  time:float ->
  op:[ `Read | `Write ] ->
  offset:int ->
  size:int ->
  unit
(** Feed one access.  Calls must be in non-decreasing [time] order
    (the importer sorts rows first); all values must be in domain
    (finite non-negative time, non-negative ids/offset/size). *)

val finish : t -> Dfs_trace.Record.t list
(** Close every active run and return all synthesized records sorted
    by {!Dfs_trace.Record.compare_time} (stable, so equal keys keep
    deterministic emission order).  The machine must not be fed
    afterwards. *)
