(** End-to-end importer: SNIA-style CSV → canonical trace records.

    Pipeline: parse rows ({!Snia}) with per-line diagnostics under the
    usual [Fail]/[Salvage] corruption policy, rebase timestamps to
    seconds from the first event (auto-detecting Windows FILETIME
    units), remap foreign identities into dense id spaces ({!Idmap}),
    run open/close inference ({!Infer}), and verify every synthesized
    record with {!Dfs_trace.Record.validate}.

    Column mapping (documented in README "Ingesting external traces"):
    - [Timestamp] → {!Dfs_trace.Record.t.time} (seconds from first row)
    - [Hostname] → client id, user id and pid (one process per host)
    - [(Hostname, DiskNumber)] → file id
    - file id [mod n_servers] → server id (deterministic placement)
    - [Type]/[Offset]/[Size] → inferred open mode, positions, byte
      totals
    - [ResponseTime] → ignored

    The result is a time-sorted, validated record stream that the
    replay driver and every analysis consume unchanged. *)

type stats = {
  rows : int;  (** data rows parsed successfully *)
  bad_rows : int;  (** rows dropped under [Salvage] *)
  hosts : int;  (** distinct hostnames → clients *)
  files : int;  (** distinct (host, disk) pairs → files *)
  records : int;  (** synthesized trace records *)
  duration : float;  (** seconds spanned by the imported records *)
}

val of_csv_string :
  ?config:Infer.config ->
  ?n_servers:int ->
  ?on_corruption:Dfs_trace.Corruption.policy ->
  ?source:string ->
  string ->
  (Dfs_trace.Record.t list * stats, string) result
(** Import CSV text.  [n_servers] (default 4, the measured cluster)
    sets the deterministic file→server placement modulus.  Under [Fail]
    (default) the first malformed row is an [Error "source:line N: …"];
    under [Salvage] malformed rows are dropped, counted in [bad_rows]
    and noted in the [trace.corruption.*] metrics. *)

val of_csv_file :
  ?config:Infer.config ->
  ?n_servers:int ->
  ?on_corruption:Dfs_trace.Corruption.policy ->
  string ->
  (Dfs_trace.Record.t list * stats, string) result
(** {!of_csv_string} on a file's contents, with the path as [source]. *)
