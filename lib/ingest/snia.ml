type op = Read | Write

type row = {
  time : float;
  host : string;
  disk : int;
  op : op;
  offset : int;
  size : int;
}

let fields_of line = List.map String.trim (String.split_on_char ',' line)

let is_header line =
  match fields_of line with
  | first :: _ -> String.lowercase_ascii first = "timestamp"
  | [] -> false

let time_of s =
  match float_of_string_opt s with
  | None -> Error (Printf.sprintf "bad timestamp %S" s)
  | Some t when not (Float.is_finite t) ->
    Error (Printf.sprintf "non-finite timestamp %S" s)
  | Some t when t < 0.0 -> Error (Printf.sprintf "negative timestamp %S" s)
  | Some t -> Ok t

let non_negative_int_of field s =
  match int_of_string_opt s with
  | None -> Error (Printf.sprintf "bad %s %S" field s)
  | Some v when v < 0 -> Error (Printf.sprintf "negative %s %d" field v)
  | Some v -> Ok v

let op_of s =
  match String.lowercase_ascii s with
  | "read" | "r" -> Ok Read
  | "write" | "w" -> Ok Write
  | _ -> Error (Printf.sprintf "bad op type %S (expected Read or Write)" s)

let ( let* ) = Result.bind

(* Single-request sizes past 1 GiB are not block I/O — they are either
   corruption or an attempt to overflow the importer's position
   arithmetic. *)
let max_request = 1 lsl 30

let parse_row line =
  match fields_of line with
  | [ time; host; disk; op; offset; size ]
  | [ time; host; disk; op; offset; size; _ (* ResponseTime *) ] ->
    let* time = time_of time in
    let* () = if host = "" then Error "empty hostname" else Ok () in
    let* disk = non_negative_int_of "disk number" disk in
    let* op = op_of op in
    let* offset = non_negative_int_of "offset" offset in
    let* size = non_negative_int_of "size" size in
    let* () =
      if size > max_request then
        Error (Printf.sprintf "size %d exceeds the 1 GiB request limit" size)
      else Ok ()
    in
    Ok { time; host; disk; op; offset; size }
  | fields ->
    Error
      (Printf.sprintf "expected 6 or 7 comma-separated columns, got %d"
         (List.length fields))
