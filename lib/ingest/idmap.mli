(** Remapping of foreign string identities into the repo's dense
    integer {!Dfs_trace.Ids} spaces.

    Foreign traces name entities by hostname, volume, path hash, etc.;
    the simulator and every analysis expect small dense ids (clients
    index arrays, files key tables).  A map assigns ids in first-seen
    order starting from 0, so the remapping is a pure function of the
    input row order — imports are byte-reproducible. *)

type 'a t

val create : (int -> 'a) -> 'a t
(** [create of_int] builds an empty map minting ids with [of_int]
    (e.g. [Ids.Client.of_int]). *)

val get : 'a t -> string -> 'a
(** The id for a foreign key, minting the next dense id on first use. *)

val index : 'a t -> string -> int
(** Like {!get} but returns the raw dense index. *)

val size : 'a t -> int
(** Number of distinct foreign keys seen. *)
