module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids
module Corruption = Dfs_trace.Corruption

type stats = {
  rows : int;
  bad_rows : int;
  hosts : int;
  files : int;
  records : int;
  duration : float;
}

let default_source = "<csv>"

(* MSR Cambridge traces stamp rows with Windows FILETIME (100 ns ticks
   since 1601, ~1.2e17 today); hand-written or research CSVs use plain
   seconds.  Anything above this threshold can only be ticks. *)
let filetime_threshold = 1e14

let filetime_tick = 1e-7

type parsed = {
  prows : Snia.row list;  (* reversed *)
  n_rows : int;
  n_bad : int;
  first_error : string option;
}

let parse_rows ~on_corruption ~source text =
  let lines = String.split_on_char '\n' text in
  let state =
    ref { prows = []; n_rows = 0; n_bad = 0; first_error = None }
  in
  let failed = ref None in
  (try
     List.iteri
       (fun i line ->
         let line = match String.length line with
           | n when n > 0 && line.[n - 1] = '\r' -> String.sub line 0 (n - 1)
           | _ -> line
         in
         let line_no = i + 1 in
         if
           String.trim line = ""
           || (String.length line > 0 && line.[0] = '#')
           || Snia.is_header line
         then ()
         else
           match Snia.parse_row line with
           | Ok row ->
             let s = !state in
             state := { s with prows = row :: s.prows; n_rows = s.n_rows + 1 }
           | Error e -> (
             let diagnostic = Printf.sprintf "%s:%d: %s" source line_no e in
             match (on_corruption : Corruption.policy) with
             | Corruption.Fail ->
               failed := Some diagnostic;
               raise Exit
             | Corruption.Salvage ->
               let s = !state in
               state :=
                 {
                   s with
                   n_bad = s.n_bad + 1;
                   first_error =
                     (match s.first_error with
                     | Some _ as e -> e
                     | None -> Some diagnostic);
                 }))
       lines
   with Exit -> ());
  match !failed with
  | Some e -> Error e
  | None ->
    let s = !state in
    (match s.first_error with
    | Some reason -> Corruption.note ~source ~salvaged:s.n_rows reason
    | None -> ());
    Ok s

let of_csv_string ?config ?(n_servers = 4) ?(on_corruption = Corruption.Fail)
    ?(source = default_source) text =
  if n_servers < 1 then Error "n_servers must be >= 1"
  else
    Result.bind (parse_rows ~on_corruption ~source text) @@ fun parsed ->
    if parsed.n_rows = 0 then
      Error (Printf.sprintf "%s: no data rows" source)
    else begin
      let rows = List.rev parsed.prows in
      (* Rebase before scaling: FILETIME magnitudes exceed the float
         mantissa, but differences from the first event do not. *)
      let t_min =
        List.fold_left
          (fun acc (r : Snia.row) -> Float.min acc r.time)
          Float.infinity rows
      in
      let t_max =
        List.fold_left
          (fun acc (r : Snia.row) -> Float.max acc r.time)
          Float.neg_infinity rows
      in
      let scale = if t_max > filetime_threshold then filetime_tick else 1.0 in
      let rows =
        List.stable_sort
          (fun (a : Snia.row) (b : Snia.row) -> Float.compare a.time b.time)
          rows
      in
      let clients = Idmap.create Ids.Client.of_int in
      let users = Idmap.create Ids.User.of_int in
      let pids = Idmap.create Ids.Process.of_int in
      let files = Idmap.create Ids.File.of_int in
      (* Raw block offsets are absolute disk addresses (terabytes on a
         modern volume) but trace positions live in int32 columns:
         rebase each file's offsets to its lowest address and wrap
         anything past 1 GiB, preserving run structure and locality
         while keeping every position representable. *)
      let base_offset : (string, int) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (r : Snia.row) ->
          let key = Printf.sprintf "%s#%d" r.host r.disk in
          match Hashtbl.find_opt base_offset key with
          | Some b when b <= r.offset -> ()
          | Some _ | None -> Hashtbl.replace base_offset key r.offset)
        rows;
      let extent_mask = (1 lsl 30) - 1 in
      let infer = Infer.create ?config () in
      List.iter
        (fun (r : Snia.row) ->
          let client = Idmap.get clients r.host in
          let user = Idmap.get users r.host in
          let pid = Idmap.get pids r.host in
          let file_key = Printf.sprintf "%s#%d" r.host r.disk in
          let file = Idmap.get files file_key in
          let server =
            Ids.Server.of_int (Idmap.index files file_key mod n_servers)
          in
          let offset =
            (r.offset - Hashtbl.find base_offset file_key) land extent_mask
          in
          Infer.feed infer ~client ~user ~pid ~file ~server
            ~time:((r.time -. t_min) *. scale)
            ~op:(match r.op with Snia.Read -> `Read | Snia.Write -> `Write)
            ~offset ~size:r.size)
        rows;
      let records = Infer.finish infer in
      (* Inference is total on in-domain rows; a validation failure here
         is an importer bug, and must surface as a diagnosable error
         rather than poison downstream consumers. *)
      let invalid =
        List.find_map
          (fun r ->
            match Record.validate r with Ok _ -> None | Error e -> Some e)
          records
      in
      match invalid with
      | Some e ->
        Error (Printf.sprintf "%s: importer produced invalid record: %s" source e)
      | None ->
        let duration =
          match (records, List.rev records) with
          | first :: _, last :: _ -> last.Record.time -. first.Record.time
          | _ -> 0.0
        in
        Ok
          ( records,
            {
              rows = parsed.n_rows;
              bad_rows = parsed.n_bad;
              hosts = Idmap.size clients;
              files = Idmap.size files;
              records = List.length records;
              duration;
            } )
    end

let of_csv_file ?config ?n_servers ?on_corruption path =
  match
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  with
  | text -> of_csv_string ?config ?n_servers ?on_corruption ~source:path text
  | exception Sys_error e -> Error e
