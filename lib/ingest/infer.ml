module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids

type config = { idle_gap : float; close_lag : float }

let default_config = { idle_gap = 1.0; close_lag = 1e-4 }

(* One in-progress access run — the future Open..Close session. *)
type run = {
  client : Ids.Client.t;
  user : Ids.User.t;
  pid : Ids.Process.t;
  file : Ids.File.t;
  server : Ids.Server.t;
  opened_at : float;
  start_pos : int;
  fresh_file : bool;  (* file never seen before this run *)
  first_op_write : bool;
  mutable pos : int;  (* position after the latest access *)
  mutable extent : int;  (* max offset+size touched in this run *)
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable reads : bool;
  mutable writes : bool;
  mutable last_time : float;
  mutable seeks_rev : (float * int * int) list;  (* time, before, after *)
}

type t = {
  config : config;
  (* active run per (client, pid, file) *)
  streams : (int * int * int, run) Hashtbl.t;
  (* last known size of every file ever closed *)
  sizes : int Ids.File.Tbl.t;
  mutable out_rev : Record.t list;
}

let create ?(config = default_config) () =
  {
    config;
    streams = Hashtbl.create 256;
    sizes = Ids.File.Tbl.create 256;
    out_rev = [];
  }

let emit t r = t.out_rev <- r :: t.out_rev

let mk (run : run) time kind =
  {
    Record.time;
    server = run.server;
    client = run.client;
    user = run.user;
    pid = run.pid;
    migrated = false;
    file = run.file;
    kind;
  }

(* Seal a run: emit its Open, buffered Repositions, and Close, and
   remember the file's size for later runs. *)
let close_run t (run : run) =
  let created = run.fresh_file && run.first_op_write in
  let size_at_open =
    if created then 0
    else if run.fresh_file then
      (* First seen through reads: assume the file pre-existed with at
         least the extent this run touched. *)
      run.extent
    else Option.value ~default:0 (Ids.File.Tbl.find_opt t.sizes run.file)
  in
  let mode =
    match (run.reads, run.writes) with
    | true, true -> Record.Read_write
    | false, true -> Record.Write_only
    | _, false -> Record.Read_only
  in
  emit t
    (mk run run.opened_at
       (Record.Open
          {
            mode;
            created;
            is_dir = false;
            size = size_at_open;
            start_pos = run.start_pos;
          }));
  List.iter
    (fun (time, pos_before, pos_after) ->
      emit t (mk run time (Record.Reposition { pos_before; pos_after })))
    (List.rev run.seeks_rev);
  let close_size =
    if run.writes then max size_at_open run.extent else size_at_open
  in
  let close_time = Float.max run.last_time run.opened_at +. t.config.close_lag in
  (* Byte totals accumulate across the whole run and can outgrow the
     int32 trace columns on a long re-read session; saturate rather
     than overflow. *)
  let cap v = min v Record.max_field in
  emit t
    (mk run close_time
       (Record.Close
          {
            size = close_size;
            final_pos = run.pos;
            bytes_read = cap run.bytes_read;
            bytes_written = cap run.bytes_written;
          }));
  Ids.File.Tbl.replace t.sizes run.file close_size

let start_run t ~client ~user ~pid ~file ~server ~time ~op ~offset ~size =
  let is_write = op = `Write in
  let run =
    {
      client;
      user;
      pid;
      file;
      server;
      opened_at = time;
      start_pos = offset;
      fresh_file = not (Ids.File.Tbl.mem t.sizes file);
      first_op_write = is_write;
      pos = offset + size;
      extent = offset + size;
      bytes_read = (if is_write then 0 else size);
      bytes_written = (if is_write then size else 0);
      reads = not is_write;
      writes = is_write;
      last_time = time;
      seeks_rev = [];
    }
  in
  run

let extend_run t (run : run) ~time ~op ~offset ~size =
  if offset <> run.pos then
    run.seeks_rev <- (time, run.pos, offset) :: run.seeks_rev;
  run.pos <- offset + size;
  run.extent <- max run.extent (offset + size);
  (match op with
  | `Read ->
    run.bytes_read <- run.bytes_read + size;
    run.reads <- true
  | `Write ->
    run.bytes_written <- run.bytes_written + size;
    run.writes <- true);
  run.last_time <- time;
  ignore t

let feed t ~client ~user ~pid ~file ~server ~time ~op ~offset ~size =
  let key =
    (Ids.Client.to_int client, Ids.Process.to_int pid, Ids.File.to_int file)
  in
  match Hashtbl.find_opt t.streams key with
  | Some run when time -. run.last_time <= t.config.idle_gap ->
    extend_run t run ~time ~op ~offset ~size
  | prior ->
    (match prior with
    | Some run ->
      close_run t run;
      Hashtbl.remove t.streams key
    | None -> ());
    Hashtbl.replace t.streams key
      (start_run t ~client ~user ~pid ~file ~server ~time ~op ~offset ~size)

let finish t =
  (* Flush remaining runs in deterministic (client, pid, file) order —
     Hashtbl iteration order must not leak into the output. *)
  let remaining =
    Hashtbl.fold (fun key run acc -> (key, run) :: acc) t.streams []
  in
  Hashtbl.reset t.streams;
  List.iter
    (fun (_, run) -> close_run t run)
    (List.sort (fun (a, _) (b, _) -> compare a b) remaining);
  (* Stable sort: records emitted at equal (time, server) keep their
     deterministic emission order. *)
  List.stable_sort Record.compare_time (List.rev t.out_rev)
