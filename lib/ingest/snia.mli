(** Row parser for SNIA IOTTA / MSR-Cambridge style block-trace CSV.

    The accepted shape is the MSR Cambridge enterprise trace layout:

    {v Timestamp,Hostname,DiskNumber,Type,Offset,Size[,ResponseTime] v}

    - [Timestamp]: a non-negative finite number.  Either plain seconds
      or a Windows FILETIME (100 ns ticks since 1601) — the importer
      detects the unit from the magnitude and rebases to seconds from
      the first event, so rows keep their raw value here.
    - [Hostname]: any non-empty string; becomes a client/user identity.
    - [DiskNumber]: a non-negative integer; [(Hostname, DiskNumber)]
      becomes a file identity.
    - [Type]: ["Read"]/["Write"] (or ["R"]/["W"]), case-insensitive.
    - [Offset], [Size]: non-negative integers, bytes.
    - [ResponseTime]: optional and ignored (the simulator computes its
      own latencies).

    Parsing is total and one-line-diagnostic: a malformed field yields
    [Error reason] with the offending value quoted, never an exception.
    Out-of-domain values (nan/inf timestamps, negative sizes or
    offsets) are rejected here, before they can reach [Record.t]. *)

type op = Read | Write

type row = {
  time : float;  (** raw timestamp as written (seconds or FILETIME) *)
  host : string;
  disk : int;
  op : op;
  offset : int;  (** bytes *)
  size : int;  (** bytes *)
}

val max_request : int
(** Largest accepted single-request [size] (1 GiB): anything bigger is
    corruption or an overflow attempt, not block I/O. *)

val is_header : string -> bool
(** True for a column-name header line (first cell ["Timestamp"],
    case-insensitive); such lines are skipped, not errors. *)

val parse_row : string -> (row, string) result
(** Parse one data row.  The error is a single line naming the bad
    field and its value. *)
