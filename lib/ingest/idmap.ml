type 'a t = {
  of_int : int -> 'a;
  tbl : (string, int) Hashtbl.t;
  mutable next : int;
}

let create of_int = { of_int; tbl = Hashtbl.create 64; next = 0 }

let index t key =
  match Hashtbl.find_opt t.tbl key with
  | Some i -> i
  | None ->
    let i = t.next in
    t.next <- i + 1;
    Hashtbl.add t.tbl key i;
    i

let get t key = t.of_int (index t key)

let size t = t.next
