(** Authoritative file-system metadata: the single shared hierarchy all
    clients see (Sprite provides a single-system image with no local
    disks).  Files are spread across the file servers; most of the load
    lands on one server, as in the measured cluster. *)

type file_info = {
  id : Dfs_trace.Ids.File.t;
  server : Dfs_trace.Ids.Server.t;
  is_dir : bool;
  mutable size : int;
  mutable exists : bool;
  mutable created_at : float;
  mutable version : int;
      (** bumped on every write-open; clients use it to flush stale blocks *)
}

type t

val create :
  n_servers:int ->
  ?server_id_base:int ->
  ?file_id_base:int ->
  ?server_weights:float array ->
  rng:Dfs_util.Rng.t ->
  unit ->
  t
(** [server_weights] biases file placement (default: 70% of files on
    server 0, the rest spread evenly, echoing the measured cluster).
    [server_id_base] / [file_id_base] (default 0) offset every id this
    state mints, so the states of a partitioned simulation allocate
    disjoint global id ranges: [pick_server] returns ids in
    [server_id_base, server_id_base + n_servers) and files are numbered
    from [file_id_base]. *)

val n_servers : t -> int

val server_id_base : t -> int

val file_id_base : t -> int
(** First allocated file id; files span
    [file_id_base, file_id_base + total_files). *)

val create_file :
  t ->
  now:float ->
  ?server:Dfs_trace.Ids.Server.t ->
  ?dir:bool ->
  ?size:int ->
  unit ->
  file_info
(** Allocate a fresh file id, place it on a server, and return its
    info.  [server] pins the placement (trace replay preserving an
    imported file→server mapping) without consuming the placement RNG;
    by default the server is drawn from [server_weights]. *)

val find : t -> Dfs_trace.Ids.File.t -> file_info option

val find_exn : t -> Dfs_trace.Ids.File.t -> file_info

val delete : t -> Dfs_trace.Ids.File.t -> unit
(** Marks the file non-existent; its id is never reused. *)

val recreate : t -> now:float -> Dfs_trace.Ids.File.t -> unit
(** An open with O_CREAT of a previously deleted path may reuse the info;
    resets size to zero and stamps a new creation time. *)

val live_files : t -> int

val total_files : t -> int

val drop_files : t -> unit
(** Release the per-file info table once the simulation is over.
    {!live_files} still answers (it is a counter); lookups and
    {!total_files} do not. *)
