(** Conservative parallel discrete-event execution.

    Drives an array of per-partition {!Engine}s through shared lookahead
    windows: within a window every partition advances independently (in
    parallel on a {!Dfs_util.Pool.Team}); at the window barrier all
    cross-partition messages are exchanged and the floor advances.  The
    protocol is conservative — a partition never executes an event that
    a message still in flight could precede:

    - cross-partition sends must target [at >= now + lookahead]
      (enforced by {!post}, which raises otherwise);
    - no window is wider than the lookahead when there is more than one
      partition, so every message posted during a window lands at or
      after the next floor;
    - {!Engine.run_window} turns any event below the floor into a hard
      {!Engine.Below_floor} error rather than executing it out of order.

    Delivery at a barrier imposes a total order — [(timestamp, source
    partition, source emission sequence)] — before scheduling into the
    destination heaps, and partitions have fixed worker affinity
    ([p mod workers]), so results are byte-identical for any worker
    count.  Windows whose horizon precedes every queued event are
    fast-forwarded rather than executed as empty barriers. *)

type t

exception Lookahead_violation of { at : float; min_at : float }
(** A cross-partition send targeted a time closer than the lookahead. *)

val create : lookahead:float -> ?window:float -> Engine.t array -> t
(** [window] defaults to [lookahead]; with more than one partition it
    must not exceed it.  Raises [Invalid_argument] on an empty engine
    array or non-positive lookahead/window. *)

val post : t -> src:int -> dst:int -> at:float -> (unit -> unit) -> unit
(** Send an action to partition [dst], to run at absolute time [at].
    Must be called from partition [src]'s executing window (or before
    {!run}).  @raise Lookahead_violation if [at] is below
    [now src + lookahead]. *)

val run : t -> ?team:Dfs_util.Pool.Team.t -> until:float -> unit -> unit
(** Advance every partition to [until].  Without a team (or with a team
    of size 1) everything runs in the calling domain — the sequential
    execution the parallel one is byte-identical to.  Publishes
    [sim.shard<i>.busy_s] / [sim.shard<i>.stall_s] gauges per worker,
    bumps [sim.barrier.count], and sets [sim.lookahead_s] /
    [sim.pdes.partitions]. *)

val partitions : t -> int

val lookahead : t -> float

val barriers : t -> int
(** Window barriers executed so far. *)

val messages : t -> int
(** Cross-partition messages posted so far. *)

val engine : t -> int -> Engine.t
