module File = Dfs_trace.Ids.File
module Record = Dfs_trace.Record
module Bc = Dfs_cache.Block_cache

type config = {
  memory_bytes : int;
  kernel_reserve_bytes : int;
  min_cache_bytes : int;
  max_cache_fraction : float;
  initial_cache_bytes : int;
  syscall_overhead : float;
  copy_rate : float;
  writeback_delay : float;
}

let default_config =
  {
    memory_bytes = 24 * Dfs_util.Units.mib;
    kernel_reserve_bytes = 2 * Dfs_util.Units.mib;
    min_cache_bytes = Dfs_util.Units.mib / 2;
    max_cache_fraction = 0.34;
    initial_cache_bytes = 2 * Dfs_util.Units.mib;
    syscall_overhead = 0.0005;
    copy_rate = 20e6;
    writeback_delay = 30.0;
  }

type fd = {
  f_cred : Cred.t;
  f_info : Fs_state.file_info;
  f_mode : Record.open_mode;
  mutable pos : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable cacheable : bool;
}

type t = {
  engine : Engine.t;
  cid : Dfs_trace.Ids.Client.t;
  fs : Fs_state.t;
  server_of : Dfs_trace.Ids.Server.t -> Server.t;
  paging_server : Server.t;
  cfg : config;
  do_sleep : bool;
  cache : Bc.t;
  vm : Dfs_vm.Vm.t;
  traffic : Traffic.t;
  versions : int File.Tbl.t;  (* last server version seen per file *)
  open_fd_table : fd list ref File.Tbl.t;
  mutable pending : float;  (* latency owed to the current operation *)
  mutable cur_migrated : bool;  (* identity for VM-initiated traffic *)
  mutable ops : int;  (* activity flag for the counter sampler *)
}

let pages bytes = bytes / Dfs_util.Units.block_size

let m_ops = Dfs_obs.Metrics.counter "sim.client.ops"

let m_op_latency = Dfs_obs.Metrics.histogram "sim.client.op_latency_s"

let server_for t file =
  match Fs_state.find t.fs file with
  | Some info -> t.server_of info.server
  | None -> t.paging_server

let create ~engine ~id ~fs ~server_of ~paging_server ?(config = default_config)
    ?(sleep = true) () =
  let rec t =
    lazy
      {
        engine;
        cid = id;
        fs;
        server_of;
        paging_server;
        cfg = config;
        do_sleep = sleep;
        cache =
          Bc.create
            ~config:
              {
                Bc.default_config with
                capacity_blocks = pages config.initial_cache_bytes;
                min_capacity_blocks = pages config.min_cache_bytes;
                writeback_delay = config.writeback_delay;
              }
            {
              Bc.fetch =
                (fun ~cls ~file ~index ~bytes ->
                  let t = Lazy.force t in
                  let server = server_for t file in
                  let now = Engine.now t.engine in
                  t.pending <-
                    t.pending +. Server.fetch server ~now ~cls ~file ~index ~bytes);
              writeback =
                (fun ~file ~index ~bytes ~reason:_ ->
                  let t = Lazy.force t in
                  let server = server_for t file in
                  let now = Engine.now t.engine in
                  Server.writeback server ~now ~file ~index ~bytes);
            };
        vm =
          Dfs_vm.Vm.create
            {
              Dfs_vm.Vm.cached_page_read =
                (fun ~file ~off ~len ->
                  let t = Lazy.force t in
                  let now = Engine.now t.engine in
                  Traffic.add_read t.traffic Traffic.Paging_cached len;
                  let file_size =
                    match Fs_state.find t.fs file with
                    | Some info -> max info.size (off + len)
                    | None -> off + len
                  in
                  Bc.read t.cache ~now ~cls:Bc.Class_paging
                    ~migrated:t.cur_migrated ~file ~file_size ~off ~len);
              backing_read =
                (fun ~bytes ->
                  let t = Lazy.force t in
                  let now = Engine.now t.engine in
                  Traffic.add_read t.traffic Traffic.Paging_backing bytes;
                  t.pending <-
                    t.pending
                    +. Server.backing_read t.paging_server ~now ~client:t.cid
                         ~bytes);
              backing_write =
                (fun ~bytes ->
                  let t = Lazy.force t in
                  let now = Engine.now t.engine in
                  Traffic.add_write t.traffic Traffic.Paging_backing bytes;
                  t.pending <-
                    t.pending
                    +. Server.backing_write t.paging_server ~now ~client:t.cid
                         ~bytes);
            };
        traffic = Traffic.create ();
        versions = File.Tbl.create 256;
        open_fd_table = File.Tbl.create 64;
        pending = 0.0;
        cur_migrated = false;
        ops = 0;
      }
  in
  Lazy.force t

let id t = t.cid

let cache t = t.cache

let vm t = t.vm

let traffic t = t.traffic

let config t = t.cfg

(* -- latency -------------------------------------------------------------- *)

let take_pending t =
  let d = t.pending in
  t.pending <- 0.0;
  d

let copy_time t bytes = float_of_int bytes /. t.cfg.copy_rate

let finish_op t extra =
  t.ops <- t.ops + 1;
  let d = take_pending t +. extra +. t.cfg.syscall_overhead in
  Dfs_obs.Metrics.incr m_ops;
  Dfs_obs.Metrics.observe m_op_latency d;
  if t.do_sleep && d > 0.0 then Engine.sleep d

(* -- server hooks ---------------------------------------------------------- *)

let fds_of t file =
  match File.Tbl.find_opt t.open_fd_table file with
  | Some l -> !l
  | None -> []

let hooks t =
  {
    Server.recall_dirty =
      (fun ~now ~file -> Bc.recall t.cache ~now ~file);
    stop_caching =
      (fun ~now ~file ->
        Bc.flush_and_invalidate t.cache ~now ~file;
        List.iter (fun fd -> fd.cacheable <- false) (fds_of t file));
    resume_caching =
      (fun ~now ~file ->
        ignore now;
        List.iter (fun fd -> fd.cacheable <- true) (fds_of t file));
  }

(* -- file operations ------------------------------------------------------- *)

let register_fd t fd =
  let l =
    match File.Tbl.find_opt t.open_fd_table fd.f_info.id with
    | Some l -> l
    | None ->
      let l = ref [] in
      File.Tbl.replace t.open_fd_table fd.f_info.id l;
      l
  in
  l := fd :: !l

let unregister_fd t fd =
  match File.Tbl.find_opt t.open_fd_table fd.f_info.id with
  | None -> ()
  | Some l ->
    l := List.filter (fun fd' -> fd' != fd) !l;
    if !l = [] then File.Tbl.remove t.open_fd_table fd.f_info.id

let open_file t ~cred ~(info : Fs_state.file_info) ~mode ~created =
  let now = Engine.now t.engine in
  let result = Server.open_file (t.server_of info.server) ~now ~cred ~info ~mode ~created in
  (* Timestamp-based consistency: a version mismatch means our cached
     blocks (from an earlier open) are stale and must be flushed. *)
  (match File.Tbl.find_opt t.versions info.id with
  | Some v when v <> result.version ->
    Bc.invalidate t.cache ~now ~file:info.id
  | Some _ | None -> ());
  File.Tbl.replace t.versions info.id result.version;
  let fd =
    {
      f_cred = cred;
      f_info = info;
      f_mode = mode;
      pos = 0;
      bytes_read = 0;
      bytes_written = 0;
      cacheable = result.cacheable;
    }
  in
  register_fd t fd;
  finish_op t result.latency;
  fd

let read t fd ~len =
  assert (len >= 0);
  let info = fd.f_info in
  let n = max 0 (min len (info.size - fd.pos)) in
  if n > 0 then begin
    if fd.cacheable then begin
      Traffic.add_read t.traffic Traffic.File_data n;
      Bc.read t.cache ~now:(Engine.now t.engine) ~cls:Bc.Class_file
        ~migrated:fd.f_cred.migrated ~file:info.id ~file_size:info.size
        ~off:fd.pos ~len:n;
      fd.pos <- fd.pos + n;
      fd.bytes_read <- fd.bytes_read + n;
      finish_op t (copy_time t n)
    end
    else begin
      Traffic.add_read t.traffic Traffic.Shared n;
      let lat =
        Server.shared_read (t.server_of info.server) ~now:(Engine.now t.engine)
          ~cred:fd.f_cred ~info ~off:fd.pos ~len:n
      in
      fd.pos <- fd.pos + n;
      fd.bytes_read <- fd.bytes_read + n;
      finish_op t lat
    end
  end;
  n

let write t fd ~len =
  assert (len >= 0);
  let info = fd.f_info in
  if len > 0 then begin
    if fd.cacheable then begin
      Traffic.add_write t.traffic Traffic.File_data len;
      Bc.write t.cache ~now:(Engine.now t.engine) ~cls:Bc.Class_file
        ~migrated:fd.f_cred.migrated ~file:info.id ~file_size:info.size
        ~off:fd.pos ~len;
      info.size <- max info.size (fd.pos + len);
      fd.pos <- fd.pos + len;
      fd.bytes_written <- fd.bytes_written + len;
      finish_op t (copy_time t len)
    end
    else begin
      Traffic.add_write t.traffic Traffic.Shared len;
      let lat =
        Server.shared_write (t.server_of info.server)
          ~now:(Engine.now t.engine) ~cred:fd.f_cred ~info ~off:fd.pos ~len
      in
      info.size <- max info.size (fd.pos + len);
      fd.pos <- fd.pos + len;
      fd.bytes_written <- fd.bytes_written + len;
      finish_op t lat
    end
  end;
  len

let seek t fd ~pos =
  assert (pos >= 0);
  let info = fd.f_info in
  let lat =
    Server.reposition (t.server_of info.server) ~now:(Engine.now t.engine)
      ~cred:fd.f_cred ~info ~pos_before:fd.pos ~pos_after:pos
  in
  fd.pos <- pos;
  finish_op t lat

let fd_pos _t fd = fd.pos

let fd_info _t fd = fd.f_info

let fsync t fd =
  let info = fd.f_info in
  let before = (Bc.stats t.cache).writeback_bytes in
  Bc.fsync t.cache ~now:(Engine.now t.engine) ~file:info.id;
  let flushed = (Bc.stats t.cache).writeback_bytes - before in
  (* The process waits for the synchronous write-through. *)
  let net = Network.default_config in
  let nblocks = Dfs_util.Units.blocks_of_bytes flushed in
  let lat =
    (float_of_int nblocks *. net.rpc_latency)
    +. (float_of_int flushed /. net.bandwidth)
  in
  finish_op t lat

let close t fd =
  let info = fd.f_info in
  let lat =
    Server.close_file (t.server_of info.server) ~now:(Engine.now t.engine)
      ~cred:fd.f_cred ~info ~mode:fd.f_mode ~final_pos:fd.pos
      ~bytes_read:fd.bytes_read ~bytes_written:fd.bytes_written
  in
  (* After a write-close the server bumped the version; what we cached is
     that newest version. *)
  if fd.bytes_written > 0 then File.Tbl.replace t.versions info.id info.version;
  unregister_fd t fd;
  finish_op t lat

let delete t ~cred ~(info : Fs_state.file_info) =
  Bc.delete t.cache ~now:(Engine.now t.engine) ~file:info.id;
  File.Tbl.remove t.versions info.id;
  let lat =
    Server.delete_file (t.server_of info.server) ~now:(Engine.now t.engine)
      ~cred ~info
  in
  finish_op t lat

let truncate t ~cred ~(info : Fs_state.file_info) =
  Bc.delete t.cache ~now:(Engine.now t.engine) ~file:info.id;
  let lat =
    Server.truncate_file (t.server_of info.server) ~now:(Engine.now t.engine)
      ~cred ~info
  in
  finish_op t lat

let read_dir t ~cred ~(info : Fs_state.file_info) =
  let bytes = max 64 info.size in
  Traffic.add_read t.traffic Traffic.Directory bytes;
  let lat =
    Server.dir_read (t.server_of info.server) ~now:(Engine.now t.engine) ~cred
      ~info ~bytes
  in
  finish_op t lat

(* -- processes and paging --------------------------------------------------- *)

let with_identity t ~(cred : Cred.t) f =
  let saved = t.cur_migrated in
  t.cur_migrated <- cred.migrated;
  Fun.protect ~finally:(fun () -> t.cur_migrated <- saved) f

let exec_process t ~cred ~(exe : Fs_state.file_info) ~code_bytes ~data_bytes =
  with_identity t ~cred (fun () ->
      Dfs_vm.Vm.exec t.vm ~now:(Engine.now t.engine) ~pid:cred.pid ~exe:exe.id
        ~code_bytes ~data_bytes);
  finish_op t 0.0

let grow_process t ~cred ~heap_bytes =
  Dfs_vm.Vm.grow t.vm ~now:(Engine.now t.engine) ~pid:cred.Cred.pid ~heap_bytes

let exit_process t ~cred =
  Dfs_vm.Vm.exit t.vm ~now:(Engine.now t.engine) ~pid:cred.Cred.pid

let swap_out_process t ~cred ~fraction =
  with_identity t ~cred (fun () ->
      Dfs_vm.Vm.swap_out t.vm ~now:(Engine.now t.engine) ~pid:cred.Cred.pid
        ~fraction);
  ignore (take_pending t)

let swap_in_process t ~cred ~fraction =
  with_identity t ~cred (fun () ->
      Dfs_vm.Vm.swap_in t.vm ~now:(Engine.now t.engine) ~pid:cred.Cred.pid
        ~fraction);
  finish_op t 0.0

(* -- crash recovery ----------------------------------------------------------- *)

let recover t ~server =
  (* Sprite stateful recovery: on noticing the reboot the client
     re-registers, then replays its per-server state so the server can
     rebuild its open table and last-writer map.  Replay order is sorted
     by file id — a deterministic order independent of hash-table
     iteration.  Returns (total RPC latency, RPC count) — the client's
     contribution to the recovery storm. *)
  let sid = Server.id server in
  let latency = ref (Server.recover_register server ~client:t.cid) in
  let rpcs = ref 1 in
  let fds =
    File.Tbl.fold (fun _ l acc -> List.rev_append !l acc) t.open_fd_table []
    |> List.filter (fun fd ->
           Dfs_trace.Ids.Server.equal fd.f_info.Fs_state.server sid)
    |> List.sort (fun a b ->
           compare (File.to_int a.f_info.id) (File.to_int b.f_info.id))
  in
  List.iter
    (fun fd ->
      latency :=
        !latency
        +. Server.recover_open server ~client:t.cid ~file:fd.f_info.id
             ~mode:fd.f_mode;
      incr rpcs)
    fds;
  List.iter
    (fun fid ->
      let file = File.of_int fid in
      match Fs_state.find t.fs file with
      | Some info when Dfs_trace.Ids.Server.equal info.server sid ->
        latency :=
          !latency +. Server.recover_dirty server ~client:t.cid ~file;
        incr rpcs
      | Some _ | None -> ())
    (Bc.dirty_file_ids t.cache);
  (!latency, !rpcs)

(* -- housekeeping ------------------------------------------------------------ *)

let tick t ~now = Bc.tick t.cache ~now

let adjust_memory t ~now =
  let bs = Dfs_util.Units.block_size in
  let total = t.cfg.memory_bytes / bs in
  let reserve = t.cfg.kernel_reserve_bytes / bs in
  let min_cache = t.cfg.min_cache_bytes / bs in
  let demand = Dfs_vm.Vm.demand_pages t.vm ~now in
  let avail = total - reserve - demand in
  let ceiling =
    int_of_float (t.cfg.max_cache_fraction *. float_of_int total)
  in
  let capacity = min ceiling (max min_cache avail) in
  Bc.set_capacity t.cache ~now capacity;
  (* Memory pressure: the VM system wants more than physical memory can
     give even with the cache at its floor — swap out the biggest
     process's dirty pages (this generates backing-file traffic). *)
  if avail < min_cache then begin
    match Dfs_vm.Vm.processes t.vm with
    | (pid, _) :: _ ->
      Dfs_vm.Vm.swap_out t.vm ~now ~pid ~fraction:0.4;
      ignore (take_pending t)
    | [] -> ()
  end

let cache_bytes t = Bc.resident_bytes t.cache

let open_fds t =
  File.Tbl.fold (fun _ l acc -> acc + List.length !l) t.open_fd_table 0

let take_activity t =
  let active = t.ops > 0 in
  t.ops <- 0;
  active

(* Post-simulation memory release: the per-file version and fd tables
   grow with every file the client ever touched; the cache and VM hold
   the block store and process state.  Counters ([Bc.stats], [traffic])
   survive, so post-run analyses keep working. *)
let release_sim_state t =
  File.Tbl.reset t.versions;
  File.Tbl.reset t.open_fd_table;
  Bc.drop_contents t.cache;
  Dfs_vm.Vm.drop_state t.vm
