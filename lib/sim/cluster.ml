module Ids = Dfs_trace.Ids
module Record = Dfs_trace.Record
module Sink = Dfs_trace.Sink
module Bc = Dfs_cache.Block_cache

type config = {
  n_clients : int;
  n_servers : int;
  seed : int;
  client_config : Client.config;
  client_memory_choices : int list;
  server_config : Server.config;
  network_config : Network.config;
  daemon_interval : float;
  memory_adjust_interval : float;
  counter_interval : float;
  simulate_infrastructure : bool;
  fault_profile : Dfs_fault.Profile.t;
  trace_chunk_records : int;
  trace_spill_dir : string option;
  trace_spill_tag : string;
  client_id_base : int;
  server_id_base : int;
  file_id_base : int;
  user_id_base : int;
  pid_base : int;
  fault_schedule_servers : int option;
}

(* Fault windows are generated eagerly out to this horizon; runs longer
   than this see no further injected faults. *)
let fault_horizon = 7.0 *. 86400.0

let default_config =
  {
    n_clients = 40;
    n_servers = 4;
    seed = 42;
    client_config = Client.default_config;
    client_memory_choices =
      [ 24 * Dfs_util.Units.mib; 24 * Dfs_util.Units.mib; 32 * Dfs_util.Units.mib ];
    server_config = Server.default_config;
    network_config = Network.default_config;
    daemon_interval = 5.0;
    memory_adjust_interval = 10.0;
    counter_interval = 60.0;
    simulate_infrastructure = true;
    fault_profile = Dfs_fault.Profile.none;
    trace_chunk_records = Sink.default_chunk_records;
    trace_spill_dir = None;
    trace_spill_tag = "cluster";
    client_id_base = 0;
    server_id_base = 0;
    file_id_base = 0;
    user_id_base = 0;
    pid_base = 0;
    fault_schedule_servers = None;
  }

let daemon_user = Ids.User.of_int 9000

let backup_user = Ids.User.of_int 9001

(* Cross-partition remote reads of a sharded simulation run under this
   identity; like the daemon and backup users it is shared by every
   partition and scrubbed from the merged trace. *)
let remote_user = Ids.User.of_int 9002

let self_users = Ids.User.Set.of_list [ daemon_user; backup_user; remote_user ]

type t = {
  cfg : config;
  engine : Engine.t;
  fs : Fs_state.t;
  network : Network.t;
  rng : Dfs_util.Rng.t;
  servers : Server.t array;
  clients : Client.t array;
  counters : Counters.t;
  logs : Sink.t array;  (* chunked per-server logs, in emission order *)
  mutable released : bool;
  faults : Dfs_fault.Injector.t option;
  mutable next_infra_pid : int;
  mutable remote_cursor : int;  (* rotating file pick for remote reads *)
}

let cfg t = t.cfg

let engine t = t.engine

let fs t = t.fs

let network t = t.network

let rng t = t.rng

let clients t = t.clients

let servers t = t.servers

let client t i = t.clients.(i)

let client_id t i = Ids.Client.of_int (t.cfg.client_id_base + i)

let counters t = t.counters

let faults t = t.faults

(* -- infrastructure traffic (to be scrubbed, as in the paper) ------------- *)

let infra_cred t ~user ~client =
  let pid = Ids.Process.of_int (900000 + t.next_infra_pid) in
  t.next_infra_pid <- t.next_infra_pid + 1;
  Cred.make ~user ~pid ~client ~migrated:false

let emit_infra t ~server_idx (record : Record.t) =
  Sink.emit t.logs.(server_idx) record

let log_infra_access t ~server_idx ~cred ~file ~size ~mode ~bytes_read
    ~bytes_written =
  let now = Engine.now t.engine in
  let base kind =
    {
      Record.time = now;
      server = Ids.Server.of_int (t.cfg.server_id_base + server_idx);
      client = (cred : Cred.t).client;
      user = cred.user;
      pid = cred.pid;
      migrated = false;
      file;
      kind;
    }
  in
  emit_infra t ~server_idx
    (base (Record.Open { mode; created = false; is_dir = false; size; start_pos = 0 }));
  emit_infra t ~server_idx
    (base
       (Record.Close
          { size = max size bytes_written; final_pos = max bytes_read bytes_written;
            bytes_read; bytes_written }))

(* The trace-collection daemon: every minute it appends the in-kernel log
   to that server's trace file. *)
let trace_daemon_step t =
  if t.cfg.simulate_infrastructure then
    Array.iteri
      (fun i _server ->
        let cred =
          infra_cred t ~user:daemon_user ~client:(client_id t 0)
        in
        let file = Ids.File.of_int (800000 + t.cfg.server_id_base + i) in
        let chunk = 32 * 1024 in
        log_infra_access t ~server_idx:i ~cred ~file ~size:(chunk * 10)
          ~mode:Record.Write_only ~bytes_read:0 ~bytes_written:chunk)
      t.servers

(* The nightly tape backup: reads a swath of live files through the
   server (it does not go through client caches). *)
let backup_step t =
  if t.cfg.simulate_infrastructure then begin
    let now = Engine.now t.engine in
    let scanned = ref 0 in
    let limit = 500 in
    let total = Fs_state.total_files t.fs in
    let file_base = Fs_state.file_id_base t.fs in
    let stride = max 1 (total / limit) in
    let i = ref 0 in
    while !i < total && !scanned < limit do
      (match Fs_state.find t.fs (Ids.File.of_int (file_base + !i)) with
      | Some info when info.exists && not info.is_dir && info.size > 0 ->
        incr scanned;
        let server_idx = Ids.Server.to_int info.server - t.cfg.server_id_base in
        let server = t.servers.(server_idx) in
        let cred =
          infra_cred t ~user:backup_user ~client:(client_id t 0)
        in
        (* server-side read: warms/pollutes the server cache only *)
        Bc.read (Server.cache server) ~now ~cls:Bc.Class_file ~migrated:false
          ~file:info.id ~file_size:info.size ~off:0 ~len:info.size;
        log_infra_access t ~server_idx ~cred ~file:info.id ~size:info.size
          ~mode:Record.Read_only ~bytes_read:info.size ~bytes_written:0
      | Some _ | None -> ());
      i := !i + stride
    done
  end

(* A cross-partition remote read: a client homed in another partition of
   a sharded simulation reads one of our files through its server.  The
   server-side cache, network and disk accounting all see it — so
   cross-shard delivery order is output-visible, which is exactly what
   makes the sharded byte-identity checks meaningful — and the records
   are emitted under [remote_user], scrubbed from the merged trace like
   the rest of the infrastructure traffic.  Returns the bytes served. *)
let remote_access t ~client ~bytes =
  let total = Fs_state.total_files t.fs in
  if total = 0 || bytes <= 0 then 0
  else begin
    let file_base = Fs_state.file_id_base t.fs in
    let probes = min total 256 in
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < probes do
      let idx = file_base + ((t.remote_cursor + !i) mod total) in
      (match Fs_state.find t.fs (Ids.File.of_int idx) with
      | Some info when info.exists && not info.is_dir && info.size > 0 ->
        found := Some info
      | Some _ | None -> ());
      incr i
    done;
    t.remote_cursor <- (t.remote_cursor + !i) mod total;
    match !found with
    | None -> 0
    | Some info ->
      let now = Engine.now t.engine in
      let len = min bytes info.size in
      let server_idx = Ids.Server.to_int info.server - t.cfg.server_id_base in
      let server = t.servers.(server_idx) in
      Bc.read (Server.cache server) ~now ~cls:Bc.Class_file ~migrated:false
        ~file:info.id ~file_size:info.size ~off:0 ~len;
      ignore (Network.rpc t.network ~kind:"remote-read" ~bytes:len);
      let cred = infra_cred t ~user:remote_user ~client in
      log_infra_access t ~server_idx ~cred ~file:info.id ~size:info.size
        ~mode:Record.Read_only ~bytes_read:len ~bytes_written:0;
      len
  end

(* -- assembly -------------------------------------------------------------- *)

let create cfg =
  assert (cfg.n_clients >= 1 && cfg.n_servers >= 1);
  let engine = Engine.create () in
  (* Stamp observability events (RPC/disk spans) with this cluster's
     simulated time; the most recently built cluster wins, which is fine
     for a telemetry-only clock. *)
  Dfs_obs.Clock.set_source (fun () -> Engine.now engine);
  let rng = Dfs_util.Rng.create cfg.seed in
  let fs =
    Fs_state.create ~n_servers:cfg.n_servers
      ~server_id_base:cfg.server_id_base ~file_id_base:cfg.file_id_base
      ~rng:(Dfs_util.Rng.split rng) ()
  in
  let network = Network.create ~config:cfg.network_config () in
  let log_sink i =
    let spill =
      Option.map
        (fun dir ->
          { Sink.dir; name = Printf.sprintf "%s-server%d" cfg.trace_spill_tag i })
        cfg.trace_spill_dir
    in
    Sink.create ~chunk_records:cfg.trace_chunk_records ?spill ()
  in
  let logs = Array.init cfg.n_servers log_sink in
  let faults =
    if Dfs_fault.Profile.is_none cfg.fault_profile then None
    else
      Some
        (Dfs_fault.Injector.create ~profile:cfg.fault_profile
           ~n_servers:cfg.n_servers ~server_id_base:cfg.server_id_base
           ?schedule_servers:cfg.fault_schedule_servers
           ~horizon:fault_horizon ())
  in
  let servers =
    Array.init cfg.n_servers (fun i ->
        Server.create ~id:(Ids.Server.of_int (cfg.server_id_base + i))
          ~config:cfg.server_config ~fs ~network
          ~log:(fun r -> Sink.emit logs.(i) r)
          ?faults:(Option.map (fun inj -> (inj, i)) faults)
          ())
  in
  let server_of sid = servers.(Ids.Server.to_int sid - cfg.server_id_base) in
  let mem_choices = Array.of_list cfg.client_memory_choices in
  let clients =
    Array.init cfg.n_clients (fun i ->
        (* deterministic round-robin over the memory sizes, so a given
           client index has the same memory in every preset *)
        let memory_bytes =
          if Array.length mem_choices = 0 then cfg.client_config.memory_bytes
          else mem_choices.(i mod Array.length mem_choices)
        in
        Client.create ~engine ~id:(Ids.Client.of_int (cfg.client_id_base + i))
          ~fs ~server_of
          ~paging_server:servers.(0)
          ~config:{ cfg.client_config with memory_bytes }
          ())
  in
  Array.iter
    (fun c ->
      let hooks = Client.hooks c in
      Array.iter (fun s -> Server.register_client s (Client.id c) hooks) servers)
    clients;
  let t =
    {
      cfg;
      engine;
      fs;
      network;
      rng;
      servers;
      clients;
      counters = Counters.create ();
      logs;
      released = false;
      faults;
      next_infra_pid = 0;
      remote_cursor = 0;
    }
  in
  (* -- fault wiring: crashes, reboots, the recovery storm ------------------ *)
  let last_reboot = ref neg_infinity in
  (match faults with
  | None -> ()
  | Some inj ->
    let sched = Dfs_fault.Injector.schedule inj in
    Array.iteri
      (fun i server ->
        List.iter
          (fun (w : Dfs_fault.Schedule.window) ->
            Engine.at engine w.down_at (fun () ->
                let lost = Server.crash server ~now:w.down_at in
                Dfs_fault.Injector.note_crash inj ~server:i ~now:w.down_at
                  ~duration:(w.up_at -. w.down_at) ~lost_bytes:lost);
            Engine.at engine w.up_at (fun () ->
                last_reboot := w.up_at;
                Dfs_fault.Injector.note_reboot inj ~server:i ~now:w.up_at;
                Server.reboot server ~now:w.up_at;
                (* The recovery storm: every client replays its state,
                   staggered by a deterministic per-client offset so the
                   RPC burst has the shape (and seriality) Sprite's
                   recovery had. *)
                Array.iteri
                  (fun ci c ->
                    Engine.at engine
                      (w.up_at +. (0.05 *. float_of_int ci))
                      (fun () ->
                        let _lat, rpcs = Client.recover c ~server in
                        Dfs_fault.Injector.note_recovery_rpcs inj rpcs))
                  clients))
          (Dfs_fault.Schedule.server_outages sched (cfg.server_id_base + i)))
      servers;
    List.iter
      (fun (w : Dfs_fault.Schedule.window) ->
        Engine.at engine w.down_at (fun () ->
            Dfs_fault.Injector.note_partition inj ~now:w.down_at
              ~duration:(w.up_at -. w.down_at)))
      (Dfs_fault.Schedule.partitions sched);
    (* bytes currently exposed to the delayed-write loss window *)
    Engine.every engine ~interval:cfg.daemon_interval (fun () ->
        let dirty acc cache = acc + Bc.dirty_bytes cache in
        let at_risk =
          Array.fold_left (fun acc c -> dirty acc (Client.cache c)) 0 clients
        in
        let at_risk =
          Array.fold_left (fun acc s -> dirty acc (Server.cache s)) at_risk
            servers
        in
        Dfs_fault.Injector.set_bytes_at_risk inj at_risk));
  (* housekeeping daemons *)
  Engine.every engine ~interval:cfg.daemon_interval (fun () ->
      let now = Engine.now engine in
      Array.iter (fun c -> Client.tick c ~now) clients;
      Array.iter (fun s -> Server.tick s ~now) servers);
  Engine.every engine ~interval:cfg.memory_adjust_interval (fun () ->
      let now = Engine.now engine in
      Array.iter (fun c -> Client.adjust_memory c ~now) clients);
  Engine.every engine ~interval:cfg.counter_interval (fun () ->
      let now = Engine.now engine in
      (* A server reboot inside the sampling interval marks every sample
         of the interval: the paper screened such intervals out of the
         counter analysis, and Cache_stats does the same. *)
      let rebooted = now -. !last_reboot < cfg.counter_interval in
      Array.iter
        (fun c ->
          Counters.record t.counters
            {
              Counters.time = now;
              client = Client.id c;
              cache_bytes = Client.cache_bytes c;
              cache_capacity_bytes =
                Bc.capacity (Client.cache c) * Dfs_util.Units.block_size;
              vm_pages =
                Dfs_vm.Vm.demand_pages (Client.vm c) ~now;
              active = Client.take_activity c;
              rebooted;
            })
        clients);
  Engine.every engine ~interval:60.0 (fun () -> trace_daemon_step t);
  (* nightly backup at 02:00 each simulated day *)
  Engine.every engine ~interval:86400.0 ~start:7200.0 (fun () -> backup_step t);
  t

let run t ~until = Engine.run_until t.engine until

let check_live t =
  if t.released then invalid_arg "Cluster: per-server traces were released"

let server_chunks t =
  check_live t;
  Array.to_list (Array.map Sink.chunks_now t.logs)

let server_traces t = List.map Sink.to_records (server_chunks t)

let merged_chunks ?chunk_records ?spill t =
  let chunk_records =
    Option.value chunk_records ~default:t.cfg.trace_chunk_records
  in
  Dfs_trace.Merge.merge_chunks ~chunk_records ?spill ~scrub:self_users
    (server_chunks t)

let merged_trace t = Sink.to_records (merged_chunks t)

let merged_trace_array t = Dfs_trace.Record_batch.to_array (Sink.to_batch (merged_chunks t))

(* Drop the per-server logs (deleting spilled segments) once the merged
   trace has been produced; the sinks must not be read afterwards. *)
let release_traces t =
  if not t.released then begin
    t.released <- true;
    Array.iter Sink.clear t.logs
  end

(* Full post-simulation release: the traces, the event queue and every
   per-file/per-client table across the engine, namespace, clients and
   servers.  Counters and traffic totals — everything the post-run
   analyses read — survive, but the cluster can neither run further nor
   serve per-file lookups. *)
let release_sim_state t =
  release_traces t;
  Engine.drop_pending t.engine;
  Fs_state.drop_files t.fs;
  Array.iter Client.release_sim_state t.clients;
  Array.iter Server.release_sim_state t.servers

let total_traffic t =
  Array.fold_left
    (fun acc c -> Traffic.merge acc (Client.traffic c))
    (Traffic.create ()) t.clients

let total_server_traffic t =
  Array.fold_left
    (fun acc s -> Traffic.merge acc (Server.traffic s))
    (Traffic.create ()) t.servers
