(** A Sprite file server.

    Servers are where the paper's traces were collected: all naming
    operations (opens, closes, deletes, directory reads) and repositions
    pass through them, so the server logs every trace record.  Servers
    also run the consistency protocol of Section 5.5:

    - per-file timestamps (versions) let clients flush stale blocks at
      open time;
    - the server tracks the {e last writer} of each file and recalls its
      dirty data when some other client opens the file;
    - when a file is open on two or more clients with at least one
      writer ({e concurrent write-sharing}), client caching is disabled
      for the file until every client has closed it, and all reads and
      writes pass through to the server (where they are logged as shared
      read/write events, exactly the events the paper's consistency
      simulations consume).

    Each server has a large block cache of its own, backed by a disk with
    1991-era access times. *)

type client_hooks = {
  recall_dirty : now:float -> file:Dfs_trace.Ids.File.t -> unit;
      (** flush the file's dirty blocks back to the server *)
  stop_caching : now:float -> file:Dfs_trace.Ids.File.t -> unit;
      (** flush and drop the file's blocks; pass subsequent I/O through *)
  resume_caching : now:float -> file:Dfs_trace.Ids.File.t -> unit;
      (** sharing over: the client may cache the file again *)
}

type open_result = {
  cacheable : bool;
  version : int;
  latency : float;  (** RPC + consistency-action time *)
}

type config = {
  cache_blocks : int;  (** server cache capacity; the main server had 128 MB *)
  disk : Disk.config;
}

val default_config : config

type t

val create :
  id:Dfs_trace.Ids.Server.t ->
  config:config ->
  fs:Fs_state.t ->
  network:Network.t ->
  log:(Dfs_trace.Record.t -> unit) ->
  ?faults:Dfs_fault.Injector.t * int ->
  unit ->
  t
(** [faults] is the cluster's injector paired with this server's index
    in it.  With faults on, every RPC entry point charges the injector's
    timeout/retry delay, writebacks addressed to a down server are
    parked in its offline queue, and transient disk errors lengthen disk
    service times. *)

val id : t -> Dfs_trace.Ids.Server.t

val register_client : t -> Dfs_trace.Ids.Client.t -> client_hooks -> unit

(** {1 Naming operations} — all are logged as trace records. *)

val open_file :
  t ->
  now:float ->
  cred:Cred.t ->
  info:Fs_state.file_info ->
  mode:Dfs_trace.Record.open_mode ->
  created:bool ->
  open_result

val close_file :
  t ->
  now:float ->
  cred:Cred.t ->
  info:Fs_state.file_info ->
  mode:Dfs_trace.Record.open_mode ->
  final_pos:int ->
  bytes_read:int ->
  bytes_written:int ->
  float
(** Returns the RPC latency. *)

val reposition :
  t ->
  now:float ->
  cred:Cred.t ->
  info:Fs_state.file_info ->
  pos_before:int ->
  pos_after:int ->
  float

val delete_file :
  t -> now:float -> cred:Cred.t -> info:Fs_state.file_info -> float

val truncate_file :
  t -> now:float -> cred:Cred.t -> info:Fs_state.file_info -> float

val dir_read :
  t -> now:float -> cred:Cred.t -> info:Fs_state.file_info -> bytes:int -> float

(** {1 Data path} *)

val fetch :
  t ->
  now:float ->
  cls:Dfs_cache.Block_cache.traffic_class ->
  file:Dfs_trace.Ids.File.t ->
  index:int ->
  bytes:int ->
  float
(** A client cache miss: serve a block from the server cache or disk. *)

val writeback :
  t -> now:float -> file:Dfs_trace.Ids.File.t -> index:int -> bytes:int -> unit
(** Dirty client data arriving at the server; written to disk 30 s later
    by the server's own delayed-write daemon. *)

val shared_read :
  t ->
  now:float ->
  cred:Cred.t ->
  info:Fs_state.file_info ->
  off:int ->
  len:int ->
  float
(** Uncacheable pass-through read on a write-shared file (logged). *)

val shared_write :
  t ->
  now:float ->
  cred:Cred.t ->
  info:Fs_state.file_info ->
  off:int ->
  len:int ->
  float

val backing_read :
  t -> now:float -> client:Dfs_trace.Ids.Client.t -> bytes:int -> float
(** Page-in from the client's backing file (cached on the server only). *)

val backing_write :
  t -> now:float -> client:Dfs_trace.Ids.Client.t -> bytes:int -> float

val tick : t -> now:float -> unit
(** The server cache's delayed-write daemon (dirty data to disk). *)

(** {1 Crash and recovery (Sprite's stateful recovery protocol)} *)

val is_down : t -> now:float -> bool
(** Whether the fault schedule has this server down (or partitioned
    away) at [now]; always false with faults off. *)

val crash : t -> now:float -> int
(** Power loss: clears the open table and last-writer map and drops the
    server cache.  Returns the dirty (delayed-write) bytes destroyed —
    data inside the paper's 30-second loss window. *)

val reboot : t -> now:float -> unit
(** Back up: replay the writebacks clients parked while the server was
    down (as ["recov-writeback"] RPCs). *)

val recover_register : t -> client:Dfs_trace.Ids.Client.t -> float
(** A client re-introducing itself after the reboot; returns the RPC
    latency. *)

val recover_open :
  t ->
  client:Dfs_trace.Ids.Client.t ->
  file:Dfs_trace.Ids.File.t ->
  mode:Dfs_trace.Record.open_mode ->
  float
(** Replay one pre-crash open into the rebuilt open table.  Emits no
    trace record and bumps no consistency counters — it reconstructs
    state, it is not new activity. *)

val recover_dirty :
  t -> client:Dfs_trace.Ids.Client.t -> file:Dfs_trace.Ids.File.t -> float
(** Re-assert last-writer state for a file the client holds dirty. *)

(** {1 Introspection} *)

val is_cacheable : t -> Dfs_trace.Ids.File.t -> bool

val traffic : t -> Traffic.t
(** Bytes presented to this server by clients, by category (Table 7). *)

val cache : t -> Dfs_cache.Block_cache.t

val disk : t -> Disk.t

type consistency_counters = {
  mutable file_opens : int;  (** opens of regular files *)
  mutable sharing_opens : int;
      (** opens that resulted in concurrent write-sharing *)
  mutable recalls : int;  (** opens that recalled dirty data *)
  mutable cache_disables : int;
}

val consistency : t -> consistency_counters

val release_sim_state : t -> unit
(** Release the per-file and per-client tables plus cache contents once
    the simulation is over.  Counters ({!traffic}, {!consistency}, cache
    stats) survive; the server must handle no further operations. *)
