module File = Dfs_trace.Ids.File
module Client = Dfs_trace.Ids.Client
module Server_id = Dfs_trace.Ids.Server
module Record = Dfs_trace.Record
module Bc = Dfs_cache.Block_cache

type client_hooks = {
  recall_dirty : now:float -> file:File.t -> unit;
  stop_caching : now:float -> file:File.t -> unit;
  resume_caching : now:float -> file:File.t -> unit;
}

type open_result = { cacheable : bool; version : int; latency : float }

type config = { cache_blocks : int; disk : Disk.config }

let default_config =
  { cache_blocks = 128 * 1024 * 1024 / Dfs_util.Units.block_size;
    disk = Disk.default_config }

type opener = {
  oc_client : Client.t;
  mutable readers : int;
  mutable writers : int;
}

type open_state = { mutable openers : opener list; mutable cacheable : bool }

type consistency_counters = {
  mutable file_opens : int;
  mutable sharing_opens : int;
  mutable recalls : int;
  mutable cache_disables : int;
}

type t = {
  id : Server_id.t;
  fs : Fs_state.t;
  network : Network.t;
  log : Record.t -> unit;
  cache : Bc.t;
  disk : Disk.t;
  traffic : Traffic.t;
  clients : client_hooks Client.Tbl.t;
  open_table : open_state File.Tbl.t;
  last_writer : Client.t File.Tbl.t;
  backing_files : Fs_state.file_info Client.Tbl.t;
  counters : consistency_counters;
  faults : (Dfs_fault.Injector.t * int) option;
      (* the cluster's injector and this server's index in it *)
  mutable pending_disk : float;  (* disk time owed to the current RPC *)
}

(* A naming RPC carries roughly this many bytes of arguments/attributes. *)
let naming_rpc_bytes = 96

let m_opens = Dfs_obs.Metrics.counter "sim.server.opens"

let m_sharing = Dfs_obs.Metrics.counter "sim.server.sharing_opens"

let m_recalls = Dfs_obs.Metrics.counter "sim.server.recalls"

let m_disables = Dfs_obs.Metrics.counter "sim.server.cache_disables"

let create ~id ~(config : config) ~fs ~network ~log ?faults () =
  let disk = Disk.create ~config:config.disk ?faults:(Option.map fst faults) () in
  let rec t =
    lazy
      {
        id;
        fs;
        network;
        log;
        cache =
          Bc.create
            ~config:
              {
                Bc.default_config with
                capacity_blocks = config.cache_blocks;
                min_capacity_blocks = config.cache_blocks;
              }
            {
              Bc.fetch =
                (fun ~cls:_ ~file:_ ~index:_ ~bytes ->
                  let t = Lazy.force t in
                  t.pending_disk <- t.pending_disk +. Disk.read t.disk ~bytes);
              writeback =
                (fun ~file:_ ~index:_ ~bytes ~reason:_ ->
                  let t = Lazy.force t in
                  ignore (Disk.write t.disk ~bytes));
            };
        disk;
        traffic = Traffic.create ();
        clients = Client.Tbl.create 64;
        open_table = File.Tbl.create 256;
        last_writer = File.Tbl.create 64;
        backing_files = Client.Tbl.create 64;
        counters =
          { file_opens = 0; sharing_opens = 0; recalls = 0; cache_disables = 0 };
        faults;
        pending_disk = 0.0;
      }
  in
  Lazy.force t

let id t = t.id

let register_client t client hooks = Client.Tbl.replace t.clients client hooks

let hooks_of t client =
  match Client.Tbl.find_opt t.clients client with
  | Some h -> h
  | None -> invalid_arg "Server.hooks_of: unregistered client"

let take_disk_time t =
  let d = t.pending_disk in
  t.pending_disk <- 0.0;
  d

let emit t ~now ~(cred : Cred.t) ~file kind =
  t.log
    {
      Record.time = now;
      server = t.id;
      client = cred.client;
      user = cred.user;
      pid = cred.pid;
      migrated = cred.migrated;
      file;
      kind;
    }

let naming_rpc t ~kind =
  Traffic.add_read t.traffic Traffic.Other naming_rpc_bytes;
  Network.rpc t.network ~kind ~bytes:naming_rpc_bytes

(* Extra latency the calling client suffers on this RPC when the server
   is down/partitioned (timeout-retry-backoff until it answers again) or
   the packet-loss draw fires.  Zero with faults off. *)
let fault_delay t ~now =
  match t.faults with
  | None -> 0.0
  | Some (inj, idx) -> Dfs_fault.Injector.rpc_delay inj ~server:idx ~now

let is_down t ~now =
  match t.faults with
  | None -> false
  | Some (inj, idx) -> Dfs_fault.Injector.server_down inj ~server:idx ~now

(* -- open/close and the consistency protocol ----------------------------- *)

let open_state t file =
  match File.Tbl.find_opt t.open_table file with
  | Some s -> s
  | None ->
    let s = { openers = []; cacheable = true } in
    File.Tbl.replace t.open_table file s;
    s

let is_writer = function
  | Record.Write_only | Record.Read_write -> true
  | Record.Read_only -> false

let is_reader = function
  | Record.Read_only | Record.Read_write -> true
  | Record.Write_only -> false

let distinct_clients state =
  List.length state.openers

let any_writer state = List.exists (fun o -> o.writers > 0) state.openers

let open_file t ~now ~(cred : Cred.t) ~(info : Fs_state.file_info) ~mode ~created =
  let latency = ref (naming_rpc t ~kind:"open" +. fault_delay t ~now) in
  if not info.is_dir then begin
    t.counters.file_opens <- t.counters.file_opens + 1;
    Dfs_obs.Metrics.incr m_opens;
    (* Recall: if the file's current data sits dirty in another client's
       cache, fetch it back before this open proceeds.  Like the real
       Sprite server we do not know whether that client has already
       flushed, so this is an upper bound (the paper says the same). *)
    (match File.Tbl.find_opt t.last_writer info.id with
    | Some writer when not (Client.equal writer cred.client) ->
      (hooks_of t writer).recall_dirty ~now ~file:info.id;
      t.counters.recalls <- t.counters.recalls + 1;
      Dfs_obs.Metrics.incr m_recalls;
      if Dfs_obs.Tracer.active () then
        Dfs_obs.Tracer.emit ~cat:"consistency" ~name:"recall" ~t0:now ~dur:0.0
          ~attrs:[ ("file", Dfs_obs.Json.Int (File.to_int info.id)) ]
          ();
      File.Tbl.remove t.last_writer info.id;
      latency := !latency +. Network.rpc t.network ~kind:"recall" ~bytes:0
    | Some _ | None -> ());
    let state = open_state t info.id in
    (* register this opener *)
    (match
       List.find_opt
         (fun o -> Client.equal o.oc_client cred.client)
         state.openers
     with
    | Some o ->
      if is_reader mode then o.readers <- o.readers + 1;
      if is_writer mode then o.writers <- o.writers + 1
    | None ->
      let o =
        {
          oc_client = cred.client;
          readers = (if is_reader mode then 1 else 0);
          writers = (if is_writer mode then 1 else 0);
        }
      in
      state.openers <- o :: state.openers);
    (* Concurrent write-sharing: open on >= 2 clients, >= 1 writer. *)
    if distinct_clients state >= 2 && any_writer state then begin
      t.counters.sharing_opens <- t.counters.sharing_opens + 1;
      Dfs_obs.Metrics.incr m_sharing;
      if state.cacheable then begin
        state.cacheable <- false;
        t.counters.cache_disables <- t.counters.cache_disables + 1;
        Dfs_obs.Metrics.incr m_disables;
        if Dfs_obs.Tracer.active () then
          Dfs_obs.Tracer.emit ~cat:"consistency" ~name:"disable" ~t0:now
            ~dur:0.0
            ~attrs:[ ("file", Dfs_obs.Json.Int (File.to_int info.id)) ]
            ();
        List.iter
          (fun o -> (hooks_of t o.oc_client).stop_caching ~now ~file:info.id)
          state.openers;
        latency := !latency +. Network.rpc t.network ~kind:"disable" ~bytes:0
      end
    end
  end;
  emit t ~now ~cred ~file:info.id
    (Record.Open
       {
         mode;
         created;
         is_dir = info.is_dir;
         size = info.size;
         start_pos = 0;
       });
  let cacheable =
    (not info.is_dir)
    &&
    match File.Tbl.find_opt t.open_table info.id with
    | Some s -> s.cacheable
    | None -> true
  in
  { cacheable; version = info.version; latency = !latency }

let close_file t ~now ~(cred : Cred.t) ~(info : Fs_state.file_info) ~mode ~final_pos
    ~bytes_read ~bytes_written =
  let latency = naming_rpc t ~kind:"close" +. fault_delay t ~now in
  if not info.is_dir then begin
    (match File.Tbl.find_opt t.open_table info.id with
    | Some state ->
      (match
         List.find_opt
           (fun o -> Client.equal o.oc_client cred.client)
           state.openers
       with
      | Some o ->
        if is_reader mode then o.readers <- max 0 (o.readers - 1);
        if is_writer mode then o.writers <- max 0 (o.writers - 1);
        if o.readers = 0 && o.writers = 0 then
          state.openers <-
            List.filter
              (fun o' -> not (Client.equal o'.oc_client cred.client))
              state.openers
      | None -> ());
      if state.openers = [] then begin
        (* Sprite's rule: the file becomes cacheable again only once it
           has been closed by all clients. *)
        if not state.cacheable then
          List.iter
            (fun (_, hooks) -> hooks.resume_caching ~now ~file:info.id)
            (Client.Tbl.fold (fun c h acc -> (c, h) :: acc) t.clients []);
        File.Tbl.remove t.open_table info.id
      end
    | None -> ());
    if bytes_written > 0 then begin
      info.version <- info.version + 1;
      File.Tbl.replace t.last_writer info.id cred.client
    end
  end;
  emit t ~now ~cred ~file:info.id
    (Record.Close { size = info.size; final_pos; bytes_read; bytes_written });
  latency

let reposition t ~now ~cred ~(info : Fs_state.file_info) ~pos_before ~pos_after
    =
  let latency = naming_rpc t ~kind:"seek" +. fault_delay t ~now in
  emit t ~now ~cred ~file:info.id (Record.Reposition { pos_before; pos_after });
  latency

let delete_file t ~now ~cred ~(info : Fs_state.file_info) =
  let latency = naming_rpc t ~kind:"delete" +. fault_delay t ~now in
  emit t ~now ~cred ~file:info.id
    (Record.Delete { size = info.size; is_dir = info.is_dir });
  Fs_state.delete t.fs info.id;
  File.Tbl.remove t.last_writer info.id;
  Bc.delete t.cache ~now ~file:info.id;
  latency

let truncate_file t ~now ~cred ~(info : Fs_state.file_info) =
  let latency = naming_rpc t ~kind:"truncate" +. fault_delay t ~now in
  emit t ~now ~cred ~file:info.id (Record.Truncate { old_size = info.size });
  info.size <- 0;
  info.version <- info.version + 1;
  Bc.delete t.cache ~now ~file:info.id;
  latency

let dir_read t ~now ~cred ~(info : Fs_state.file_info) ~bytes =
  Traffic.add_read t.traffic Traffic.Directory bytes;
  Bc.read t.cache ~now ~cls:Bc.Class_file ~migrated:false ~file:info.id
    ~file_size:(max info.size bytes) ~off:0 ~len:bytes;
  emit t ~now ~cred ~file:info.id (Record.Dir_read { bytes });
  Network.rpc t.network ~kind:"dirread" ~bytes
  +. take_disk_time t +. fault_delay t ~now

(* -- data path ------------------------------------------------------------ *)

let fetch t ~now ~cls ~file ~index ~bytes =
  let category =
    match cls with
    | Bc.Class_file -> Traffic.File_data
    | Bc.Class_paging -> Traffic.Paging_cached
  in
  Traffic.add_read t.traffic category bytes;
  let size =
    match Fs_state.find t.fs file with
    | Some info -> info.size
    | None -> bytes + (index * Dfs_util.Units.block_size)
  in
  if bytes > 0 then
    Bc.read t.cache ~now ~cls ~migrated:false ~file ~file_size:size
      ~off:(index * Dfs_util.Units.block_size)
      ~len:bytes;
  Network.rpc t.network ~kind:"fetch" ~bytes
  +. take_disk_time t +. fault_delay t ~now

let do_writeback t ~now ~kind ~file ~index ~bytes =
  Traffic.add_write t.traffic Traffic.File_data bytes;
  let size =
    match Fs_state.find t.fs file with
    | Some info -> info.size
    | None -> bytes + (index * Dfs_util.Units.block_size)
  in
  if bytes > 0 then
    Bc.write t.cache ~now ~cls:Bc.Class_file ~migrated:false ~file
      ~file_size:size
      ~off:(index * Dfs_util.Units.block_size)
      ~len:bytes;
  ignore (Network.rpc t.network ~kind ~bytes);
  ignore (take_disk_time t)

let writeback t ~now ~file ~index ~bytes =
  match t.faults with
  | Some (inj, idx) when Dfs_fault.Injector.server_down inj ~server:idx ~now ->
    (* The server is down: the client's writeback daemon parks the block
       in its offline queue; the bytes stay at risk (the client still
       holds them) and are replayed when the server reboots. *)
    Dfs_fault.Injector.queue_writeback inj ~server:idx
      ~file:(File.to_int file) ~index ~bytes
  | _ -> do_writeback t ~now ~kind:"writeback" ~file ~index ~bytes

let shared_read t ~now ~cred ~(info : Fs_state.file_info) ~off ~len =
  Traffic.add_read t.traffic Traffic.Shared len;
  Bc.read t.cache ~now ~cls:Bc.Class_file ~migrated:cred.Cred.migrated
    ~file:info.id ~file_size:info.size ~off ~len;
  emit t ~now ~cred ~file:info.id (Record.Shared_read { offset = off; length = len });
  Network.rpc t.network ~kind:"sread" ~bytes:len
  +. take_disk_time t +. fault_delay t ~now

let shared_write t ~now ~cred ~(info : Fs_state.file_info) ~off ~len =
  Traffic.add_write t.traffic Traffic.Shared len;
  Bc.write t.cache ~now ~cls:Bc.Class_file ~migrated:cred.Cred.migrated
    ~file:info.id ~file_size:info.size ~off ~len;
  info.version <- info.version + 1;
  emit t ~now ~cred ~file:info.id
    (Record.Shared_write { offset = off; length = len });
  Network.rpc t.network ~kind:"swrite" ~bytes:len
  +. take_disk_time t +. fault_delay t ~now

(* -- paging backing files -------------------------------------------------- *)

let backing_file t ~now client =
  match Client.Tbl.find_opt t.backing_files client with
  | Some info -> info
  | None ->
    let info = Fs_state.create_file t.fs ~now () in
    Client.Tbl.replace t.backing_files client info;
    info

let backing_write t ~now ~client ~bytes =
  Traffic.add_write t.traffic Traffic.Paging_backing bytes;
  let info = backing_file t ~now client in
  (* Backing files are written append-style at page granularity; model as
     an overwrite of the file's head region, growing as needed. *)
  if bytes > info.size then info.size <- bytes;
  Bc.write t.cache ~now ~cls:Bc.Class_paging ~migrated:false ~file:info.id
    ~file_size:info.size ~off:0 ~len:bytes;
  Network.rpc t.network ~kind:"page-out" ~bytes
  +. take_disk_time t +. fault_delay t ~now

let backing_read t ~now ~client ~bytes =
  Traffic.add_read t.traffic Traffic.Paging_backing bytes;
  let info = backing_file t ~now client in
  if bytes > info.size then info.size <- bytes;
  Bc.read t.cache ~now ~cls:Bc.Class_paging ~migrated:false ~file:info.id
    ~file_size:info.size ~off:0 ~len:bytes;
  Network.rpc t.network ~kind:"page-in" ~bytes
  +. take_disk_time t +. fault_delay t ~now

let tick t ~now = Bc.tick t.cache ~now

(* -- crash and Sprite-style stateful recovery ------------------------------ *)

let crash t ~now =
  (* Volatile state dies with the machine: the open table and last-writer
     map (clients will replay them during recovery) and every block in
     the server cache.  Dirty server-cache blocks are delayed writes that
     never reached the disk — the paper's 30-second loss window made
     real. *)
  File.Tbl.reset t.open_table;
  File.Tbl.reset t.last_writer;
  Bc.crash t.cache ~now

let reboot t ~now =
  match t.faults with
  | None -> ()
  | Some (inj, idx) ->
    (* Deliver the writebacks that clients parked while we were down. *)
    Dfs_fault.Injector.drain_writebacks inj ~server:idx
      (fun ~file ~index ~bytes ->
        do_writeback t ~now ~kind:"recov-writeback" ~file:(File.of_int file)
          ~index ~bytes)

let recover_register t ~client =
  ignore client;
  naming_rpc t ~kind:"recov-register"

let recover_open t ~client ~file ~mode =
  (* Replay of a pre-crash open.  Rebuilds the open table silently: no
     trace record, no consistency counters — the open already happened
     and was accounted before the crash; this is state reconstruction,
     not new activity.  Sharing-driven cache disables are likewise not
     re-derived (each client's fds kept their cacheable flags). *)
  let state = open_state t file in
  (match
     List.find_opt (fun o -> Client.equal o.oc_client client) state.openers
   with
  | Some o ->
    if is_reader mode then o.readers <- o.readers + 1;
    if is_writer mode then o.writers <- o.writers + 1
  | None ->
    state.openers <-
      {
        oc_client = client;
        readers = (if is_reader mode then 1 else 0);
        writers = (if is_writer mode then 1 else 0);
      }
      :: state.openers);
  naming_rpc t ~kind:"recov-open"

let recover_dirty t ~client ~file =
  (* The client re-asserts "I hold dirty data for this file", restoring
     the last-writer map so post-reboot opens recall correctly. *)
  File.Tbl.replace t.last_writer file client;
  naming_rpc t ~kind:"recov-dirty"

let is_cacheable t file =
  match File.Tbl.find_opt t.open_table file with
  | Some s -> s.cacheable
  | None -> true

let traffic t = t.traffic

let cache t = t.cache

let disk t = t.disk

let consistency t = t.counters

(* Post-simulation memory release: the open-file, last-writer and
   backing-file tables all grow with the set of files ever served, and
   the client-hook closures pin the client structures.  Counters
   ([traffic], [consistency], [Bc.stats]) survive. *)
let release_sim_state t =
  File.Tbl.reset t.open_table;
  File.Tbl.reset t.last_writer;
  Client.Tbl.reset t.backing_files;
  Client.Tbl.reset t.clients;
  Bc.drop_contents t.cache
