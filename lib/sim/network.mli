(** The shared Ethernet between clients and servers.

    Models a 10 Mbit/s medium: a per-RPC latency plus serialization time,
    and running totals used for the paper's utilization observations
    (e.g. "40 workstations collectively generate about 4% of an
    Ethernet's bandwidth in paging traffic"). *)

type t

type config = {
  bandwidth : float;  (** bytes per second; Ethernet: 1.25e6 *)
  rpc_latency : float;  (** per-RPC round-trip overhead, seconds *)
  remote_latency : float;
      (** minimum latency of any {e inter-partition} RPC (the backbone
          between subnets); the conservative-PDES lookahead window is
          derived from this lower bound, so it must not be optimistic *)
}

val default_config : config

val create : ?config:config -> unit -> t

val config : t -> config

val rpc : t -> kind:string -> bytes:int -> float
(** Account one remote procedure call carrying [bytes] of data; returns
    the time it occupies the medium (latency + serialization).

    @raise Invalid_argument if [bytes] is negative. *)

val rpc_count : t -> kind:string -> int

val total_rpcs : t -> int

val total_bytes : t -> int

val utilization : t -> elapsed:float -> float
(** Fraction of the medium's capacity used over [elapsed] seconds. *)
