type event = {
  time : float;
  seq : int;  (* FIFO tie-break for simultaneous events *)
  action : unit -> unit;
  mutable cancelled : bool;
  mutable in_heap : bool;
      (* Still queued, so a cancellation should count against the heap's
         cancelled-pending total; cleared on pop and on compaction. *)
}

module Event_order = struct
  type t = event

  let compare a b =
    let c = Float.compare a.time b.time in
    if c <> 0 then c else Int.compare a.seq b.seq

  (* Slot filler for the heap: popped events must not stay reachable
     through the backing array, or their action closures (and everything
     those capture) survive until the slot is overwritten. *)
  let dummy =
    { time = neg_infinity; seq = -1; action = ignore; cancelled = true; in_heap = false }
end

module H = Dfs_util.Heap.Make (Event_order)

type t = {
  heap : H.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
  mutable cancelled_pending : int;
      (* Cancelled events still sitting in the heap.  Lazy deletion is
         cheap until a workload cancels most of what it schedules (e.g.
         timeouts that almost always get cut short); once more than half
         the queue is dead weight we compact in place rather than let
         pops and pushes churn O(log dead) forever. *)
}

type handle = event

let m_events = Dfs_obs.Metrics.counter "sim.engine.events"

let m_scheduled = Dfs_obs.Metrics.counter "sim.engine.scheduled"

let m_cancelled = Dfs_obs.Metrics.counter "sim.engine.cancelled"

let m_compactions = Dfs_obs.Metrics.counter "sim.engine.compactions"

let m_queue_depth = Dfs_obs.Metrics.histogram "sim.engine.queue_depth"

let create () =
  {
    heap = H.create ();
    clock = 0.0;
    next_seq = 0;
    executed = 0;
    cancelled_pending = 0;
  }

let now t = t.clock

let schedule t ~at action =
  assert (at >= t.clock);
  let ev =
    { time = at; seq = t.next_seq; action; cancelled = false; in_heap = true }
  in
  t.next_seq <- t.next_seq + 1;
  H.push t.heap ev;
  Dfs_obs.Metrics.incr m_scheduled;
  ev

let schedule_in t ~delay action =
  assert (delay >= 0.0);
  schedule t ~at:(t.clock +. delay) action

let at t time action = ignore (schedule t ~at:(Float.max time t.clock) action)

let pending t = H.length t.heap

let live_pending t = H.length t.heap - t.cancelled_pending

(* Post-simulation memory release: drop the queue (periodic daemons
   re-arm themselves, so it is never empty when a run stops) and with it
   every queued action closure and whatever those capture. *)
let drop_pending t =
  H.clear t.heap;
  t.cancelled_pending <- 0

(* Compact only when the dead fraction dominates and the heap is big
   enough for the O(n) sweep to pay for itself. *)
let compaction_threshold = 64

let maybe_compact t =
  if
    t.cancelled_pending >= compaction_threshold
    && 2 * t.cancelled_pending > H.length t.heap
  then begin
    H.filter_in_place t.heap (fun ev ->
        if ev.cancelled then begin
          ev.in_heap <- false;
          false
        end
        else true);
    t.cancelled_pending <- 0;
    Dfs_obs.Metrics.incr m_compactions
  end

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    Dfs_obs.Metrics.incr m_cancelled;
    if ev.in_heap then begin
      t.cancelled_pending <- t.cancelled_pending + 1;
      maybe_compact t
    end
  end

let every t ~interval ?start action =
  assert (interval > 0.0);
  let first = match start with Some s -> s | None -> t.clock +. interval in
  let rec fire () =
    action ();
    ignore (schedule_in t ~delay:interval fire)
  in
  ignore (schedule t ~at:first fire)

exception Below_floor of { time : float; floor : float }

let run_core t ~floor horizon =
  let continue = ref true in
  while !continue do
    match H.peek t.heap with
    | None -> continue := false
    | Some ev when ev.time > horizon -> continue := false
    | Some _ ->
      let ev = H.pop_exn t.heap in
      ev.in_heap <- false;
      if ev.cancelled then t.cancelled_pending <- t.cancelled_pending - 1
      else begin
        (* Conservative-PDES safety net: a live event below the window
           floor means a cross-shard message arrived late — the lookahead
           contract was violated somewhere, and the run is not
           reproducible.  Fail loudly rather than execute out of order. *)
        if ev.time < floor then
          raise (Below_floor { time = ev.time; floor });
        t.clock <- ev.time;
        t.executed <- t.executed + 1;
        Dfs_obs.Metrics.incr m_events;
        (* Sampling every 64th event keeps the histogram off the hot
           path while still seeing every phase of the run. *)
        if t.executed land 63 = 0 then
          Dfs_obs.Metrics.observe m_queue_depth
            (float_of_int (H.length t.heap));
        ev.action ()
      end
  done;
  if horizon > t.clock then t.clock <- horizon

let run_until t horizon = run_core t ~floor:neg_infinity horizon

let run_window t ~floor horizon = run_core t ~floor horizon

(* Earliest queued live-or-cancelled event time: cancelled events are
   still a conservative (early) bound, and using the raw peek keeps the
   answer independent of compaction timing. *)
let next_time t =
  match H.peek t.heap with None -> None | Some ev -> Some ev.time

let events_executed t = t.executed

(* -- processes via effects ------------------------------------------------ *)

type _ Effect.t += Sleep : (t * float) -> unit Effect.t

(* [sleep] needs the engine; it is passed through a per-process environment
   installed by [spawn] in a stack discipline, so nested engines (used by
   some tests) stay isolated.  The slot is domain-local so engines running
   concurrently on a pool never see each other's processes. *)
let current_engine : t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let sleep d =
  match Domain.DLS.get current_engine with
  | None -> invalid_arg "Engine.sleep: called outside a spawned process"
  | Some eng -> Effect.perform (Sleep (eng, Float.max 0.0 d))

let spawn t ?at f =
  let open Effect.Deep in
  let run () =
    let saved = Domain.DLS.get current_engine in
    Domain.DLS.set current_engine (Some t);
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set current_engine saved)
      (fun () ->
        match_with f ()
          {
            retc = (fun () -> ());
            exnc = raise;
            effc =
              (fun (type a) (eff : a Effect.t) ->
                match eff with
                | Sleep (eng, d) ->
                  Some
                    (fun (k : (a, _) continuation) ->
                      ignore
                        (schedule_in eng ~delay:d (fun () ->
                             let saved = Domain.DLS.get current_engine in
                             Domain.DLS.set current_engine (Some eng);
                             Fun.protect
                               ~finally:(fun () ->
                                 Domain.DLS.set current_engine saved)
                               (fun () -> continue k ()))))
                | _ -> None);
          })
  in
  let at = match at with Some a -> a | None -> t.clock in
  ignore (schedule t ~at run)
