type event = {
  time : float;
  seq : int;  (* FIFO tie-break for simultaneous events *)
  action : unit -> unit;
  mutable cancelled : bool;
}

module Event_order = struct
  type t = event

  let compare a b =
    let c = Float.compare a.time b.time in
    if c <> 0 then c else Int.compare a.seq b.seq
end

module H = Dfs_util.Heap.Make (Event_order)

type t = {
  heap : H.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
}

type handle = event

let m_events = Dfs_obs.Metrics.counter "sim.engine.events"

let m_scheduled = Dfs_obs.Metrics.counter "sim.engine.scheduled"

let m_cancelled = Dfs_obs.Metrics.counter "sim.engine.cancelled"

let m_queue_depth = Dfs_obs.Metrics.histogram "sim.engine.queue_depth"

let create () = { heap = H.create (); clock = 0.0; next_seq = 0; executed = 0 }

let now t = t.clock

let schedule t ~at action =
  assert (at >= t.clock);
  let ev = { time = at; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  H.push t.heap ev;
  Dfs_obs.Metrics.incr m_scheduled;
  ev

let schedule_in t ~delay action =
  assert (delay >= 0.0);
  schedule t ~at:(t.clock +. delay) action

let cancel ev =
  if not ev.cancelled then Dfs_obs.Metrics.incr m_cancelled;
  ev.cancelled <- true

let every t ~interval ?start action =
  assert (interval > 0.0);
  let first = match start with Some s -> s | None -> t.clock +. interval in
  let rec fire () =
    action ();
    ignore (schedule_in t ~delay:interval fire)
  in
  ignore (schedule t ~at:first fire)

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match H.peek t.heap with
    | None -> continue := false
    | Some ev when ev.time > horizon -> continue := false
    | Some _ ->
      let ev = H.pop_exn t.heap in
      if not ev.cancelled then begin
        t.clock <- ev.time;
        t.executed <- t.executed + 1;
        Dfs_obs.Metrics.incr m_events;
        (* Sampling every 64th event keeps the histogram off the hot
           path while still seeing every phase of the run. *)
        if t.executed land 63 = 0 then
          Dfs_obs.Metrics.observe m_queue_depth
            (float_of_int (H.length t.heap));
        ev.action ()
      end
  done;
  if horizon > t.clock then t.clock <- horizon

let pending t = H.length t.heap

let events_executed t = t.executed

(* -- processes via effects ------------------------------------------------ *)

type _ Effect.t += Sleep : (t * float) -> unit Effect.t

(* [sleep] needs the engine; it is passed through a per-process environment
   installed by [spawn] in a stack discipline, so nested engines (used by
   some tests) stay isolated. *)
let current_engine : t option ref = ref None

let sleep d =
  match !current_engine with
  | None -> invalid_arg "Engine.sleep: called outside a spawned process"
  | Some eng -> Effect.perform (Sleep (eng, Float.max 0.0 d))

let spawn t ?at f =
  let open Effect.Deep in
  let run () =
    let saved = !current_engine in
    current_engine := Some t;
    Fun.protect
      ~finally:(fun () -> current_engine := saved)
      (fun () ->
        match_with f ()
          {
            retc = (fun () -> ());
            exnc = raise;
            effc =
              (fun (type a) (eff : a Effect.t) ->
                match eff with
                | Sleep (eng, d) ->
                  Some
                    (fun (k : (a, _) continuation) ->
                      ignore
                        (schedule_in eng ~delay:d (fun () ->
                             let saved = !current_engine in
                             current_engine := Some eng;
                             Fun.protect
                               ~finally:(fun () -> current_engine := saved)
                               (fun () -> continue k ()))))
                | _ -> None);
          })
  in
  let at = match at with Some a -> a | None -> t.clock in
  ignore (schedule t ~at run)
