module File = Dfs_trace.Ids.File
module Server = Dfs_trace.Ids.Server

type file_info = {
  id : File.t;
  server : Server.t;
  is_dir : bool;
  mutable size : int;
  mutable exists : bool;
  mutable created_at : float;
  mutable version : int;
}

type t = {
  n_servers : int;
  server_weights : float array;
  server_id_base : int;  (* global id of local server 0 (partitioning) *)
  file_id_base : int;  (* first file id this state allocates *)
  rng : Dfs_util.Rng.t;
  files : file_info File.Tbl.t;
  mutable next_id : int;
  mutable live : int;
}

let default_weights n =
  (* Most traffic is handled by a single server (the measured cluster's
     Sun 4); the remainder spreads evenly. *)
  if n = 1 then [| 1.0 |]
  else Array.init n (fun i -> if i = 0 then 0.7 else 0.3 /. float_of_int (n - 1))

let create ~n_servers ?(server_id_base = 0) ?(file_id_base = 0)
    ?server_weights ~rng () =
  assert (n_servers >= 1);
  assert (server_id_base >= 0 && file_id_base >= 0);
  let server_weights =
    match server_weights with
    | Some w ->
      assert (Array.length w = n_servers);
      w
    | None -> default_weights n_servers
  in
  {
    n_servers;
    server_weights;
    server_id_base;
    file_id_base;
    rng;
    files = File.Tbl.create 4096;
    next_id = file_id_base;
    live = 0;
  }

let n_servers t = t.n_servers

let server_id_base t = t.server_id_base

let file_id_base t = t.file_id_base

let pick_server t =
  let choices =
    Array.to_list
      (Array.mapi
         (fun i w -> (Server.of_int (t.server_id_base + i), w))
         t.server_weights)
  in
  Dfs_util.Rng.pick_weighted t.rng choices

let create_file t ~now ?server ?(dir = false) ?(size = 0) () =
  let id = File.of_int t.next_id in
  t.next_id <- t.next_id + 1;
  (* An explicit [server] (trace replay preserving imported placement)
     bypasses the weighted draw and leaves the RNG stream untouched, so
     callers that never pass it are byte-identical to before. *)
  let server =
    match server with Some s -> s | None -> pick_server t
  in
  let info =
    {
      id;
      server;
      is_dir = dir;
      size;
      exists = true;
      created_at = now;
      version = 0;
    }
  in
  File.Tbl.replace t.files id info;
  t.live <- t.live + 1;
  info

let find t id = File.Tbl.find_opt t.files id

let find_exn t id =
  match find t id with
  | Some info -> info
  | None -> invalid_arg "Fs_state.find_exn: unknown file"

let delete t id =
  match find t id with
  | Some info when info.exists ->
    info.exists <- false;
    info.size <- 0;
    t.live <- t.live - 1
  | Some _ | None -> ()

let recreate t ~now id =
  let info = find_exn t id in
  if not info.exists then begin
    info.exists <- true;
    t.live <- t.live + 1
  end;
  info.size <- 0;
  info.created_at <- now;
  info.version <- info.version + 1

let live_files t = t.live

let total_files t = File.Tbl.length t.files

(* Post-simulation memory release: the per-file info table is the bulk
   of the namespace's footprint.  [live_files] keeps answering (it is a
   counter); lookups and [total_files] do not. *)
let drop_files t = File.Tbl.reset t.files
