(** A diskless Sprite client workstation.

    Each client owns a dynamically sized block cache, a virtual-memory
    model that trades pages with it, a file-descriptor table, and a tap
    recording the raw traffic applications present to the client OS
    (Table 5's measurement point).

    File operations route through the cache when the server permits
    caching, and pass through to the server (as logged shared reads and
    writes) when the file is undergoing concurrent write-sharing.  Every
    operation advances simulated time by its latency when invoked from an
    {!Engine.spawn}ed process. *)

type config = {
  memory_bytes : int;  (** physical memory; measured clients: 24-32 MB *)
  kernel_reserve_bytes : int;  (** pages never available to cache or VM *)
  min_cache_bytes : int;
  max_cache_fraction : float;
      (** ceiling on the cache's share of memory; the "natural" Sprite
          cache size was a quarter to a third of memory *)
  initial_cache_bytes : int;
  syscall_overhead : float;  (** fixed time per file operation, seconds *)
  copy_rate : float;  (** memory copy bandwidth for cache hits, bytes/s *)
  writeback_delay : float;  (** the delayed-write window; Sprite: 30 s *)
}

val default_config : config

type t

type fd

val create :
  engine:Engine.t ->
  id:Dfs_trace.Ids.Client.t ->
  fs:Fs_state.t ->
  server_of:(Dfs_trace.Ids.Server.t -> Server.t) ->
  paging_server:Server.t ->
  ?config:config ->
  ?sleep:bool ->
  unit ->
  t
(** [sleep:false] (for unit tests) makes operations account latency
    without suspending the calling process. *)

val id : t -> Dfs_trace.Ids.Client.t

val hooks : t -> Server.client_hooks
(** The callbacks the servers use for recalls and cache disabling;
    register them with every server. *)

val cache : t -> Dfs_cache.Block_cache.t

val vm : t -> Dfs_vm.Vm.t

val traffic : t -> Traffic.t
(** Raw application traffic (before the cache). *)

val config : t -> config

(** {1 File operations} *)

val open_file :
  t ->
  cred:Cred.t ->
  info:Fs_state.file_info ->
  mode:Dfs_trace.Record.open_mode ->
  created:bool ->
  fd

val read : t -> fd -> len:int -> int
(** Sequential read at the current offset; returns bytes actually read
    (clamped at end of file). *)

val write : t -> fd -> len:int -> int
(** Sequential write at the current offset, extending the file as
    needed; returns [len]. *)

val seek : t -> fd -> pos:int -> unit
(** Reposition; logged at the server like Sprite's modified clients. *)

val fd_pos : t -> fd -> int

val fd_info : t -> fd -> Fs_state.file_info

val fsync : t -> fd -> unit

val close : t -> fd -> unit

val delete : t -> cred:Cred.t -> info:Fs_state.file_info -> unit

val truncate : t -> cred:Cred.t -> info:Fs_state.file_info -> unit

val read_dir : t -> cred:Cred.t -> info:Fs_state.file_info -> unit
(** Read a directory's contents (uncacheable on clients). *)

(** {1 Processes and paging} *)

val exec_process :
  t ->
  cred:Cred.t ->
  exe:Fs_state.file_info ->
  code_bytes:int ->
  data_bytes:int ->
  unit

val grow_process : t -> cred:Cred.t -> heap_bytes:int -> unit

val exit_process : t -> cred:Cred.t -> unit

val swap_out_process : t -> cred:Cred.t -> fraction:float -> unit

val swap_in_process : t -> cred:Cred.t -> fraction:float -> unit

(** {1 Crash recovery} *)

val recover : t -> server:Server.t -> float * int
(** Replay this client's state to a freshly rebooted server (Sprite's
    stateful recovery): re-register, then replay every open fd and every
    dirty file that lives on that server, in file-id order.  Returns the
    total RPC latency and the number of recovery RPCs issued. *)

(** {1 Housekeeping} *)

val tick : t -> now:float -> unit
(** The client cache's 5-second delayed-write daemon. *)

val adjust_memory : t -> now:float -> unit
(** Re-arbitrate memory between the VM system and the file cache; run
    periodically.  The VM system receives preference, as in Sprite. *)

val cache_bytes : t -> int

val open_fds : t -> int

val take_activity : t -> bool
(** True when any operation ran since the last call (consumes the flag);
    feeds the counter sampler's "active interval" screening. *)

val release_sim_state : t -> unit
(** Release the per-file tables, cache contents and VM state once the
    simulation is over.  Counters (cache stats, traffic) survive; the
    client must perform no further operations. *)
