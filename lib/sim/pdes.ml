module Team = Dfs_util.Pool.Team

exception Lookahead_violation of { at : float; min_at : float }

(* One cross-partition message.  [seq] is the per-source emission
   counter: together with [(at, src)] it gives every message a unique,
   worker-count-independent rank, which is what makes delivery (and so
   the whole simulation) deterministic. *)
type msg = {
  at : float;
  src : int;
  seq : int;
  dst : int;
  action : unit -> unit;
}

type t = {
  engines : Engine.t array;
  lookahead : float;
  window : float;
  outboxes : msg list array;  (* per source partition, newest first *)
  seqs : int array;
  mutable floor : float;
  mutable barriers : int;
  mutable messages : int;
  mutable delivered : msg list array;  (* scratch, caller domain only *)
}

let m_barriers = Dfs_obs.Metrics.counter "sim.barrier.count"

let m_messages = Dfs_obs.Metrics.counter "sim.pdes.messages"

let m_window = Dfs_obs.Metrics.histogram "sim.pdes.window_s"

let g_lookahead = Dfs_obs.Metrics.gauge "sim.lookahead_s"

let g_partitions = Dfs_obs.Metrics.gauge "sim.pdes.partitions"

let create ~lookahead ?window engines =
  let n = Array.length engines in
  if n = 0 then invalid_arg "Pdes.create: no engines";
  if lookahead <= 0.0 then invalid_arg "Pdes.create: lookahead must be > 0";
  let window = Option.value window ~default:lookahead in
  (* With more than one partition the barrier exchange is only legal if
     no window outlives the lookahead: a message posted at the window
     floor must still land at-or-after the next floor. *)
  if n > 1 && window > lookahead then
    invalid_arg "Pdes.create: window wider than lookahead";
  if window <= 0.0 then invalid_arg "Pdes.create: window must be > 0";
  {
    engines;
    lookahead;
    window;
    outboxes = Array.make n [];
    seqs = Array.make n 0;
    floor = 0.0;
    barriers = 0;
    messages = 0;
    delivered = [||];
  }

let partitions t = Array.length t.engines

let lookahead t = t.lookahead

let barriers t = t.barriers

let messages t = t.messages

let engine t i = t.engines.(i)

let post t ~src ~dst ~at action =
  let eng = t.engines.(src) in
  ignore t.engines.(dst);
  let min_at = Engine.now eng +. t.lookahead in
  if at < min_at then raise (Lookahead_violation { at; min_at });
  let m = { at; src; seq = t.seqs.(src); dst; action } in
  t.seqs.(src) <- t.seqs.(src) + 1;
  t.outboxes.(src) <- m :: t.outboxes.(src);
  t.messages <- t.messages + 1;
  Dfs_obs.Metrics.incr m_messages

(* Total delivery order: timestamp, then source partition, then the
   source's emission sequence — unique and independent of how partitions
   were spread over workers. *)
let compare_msg a b =
  let c = Float.compare a.at b.at in
  if c <> 0 then c
  else
    let c = Int.compare a.src b.src in
    if c <> 0 then c else Int.compare a.seq b.seq

(* Barrier exchange, caller domain only: drain every outbox, impose the
   total order, and schedule into the destination heaps.  Insertion
   order into a heap is part of its tie-break (via the engine's own
   seq), so the sort is what keeps destination pop order deterministic. *)
let deliver t =
  let n = Array.length t.engines in
  let all = ref [] in
  for src = n - 1 downto 0 do
    all := List.rev_append t.outboxes.(src) !all;
    t.outboxes.(src) <- []
  done;
  match !all with
  | [] -> ()
  | msgs ->
    let msgs = List.stable_sort compare_msg msgs in
    List.iter
      (fun m -> ignore (Engine.schedule t.engines.(m.dst) ~at:m.at m.action))
      msgs

let run t ?team ~until () =
  let n = Array.length t.engines in
  let workers =
    match team with
    | Some tm -> min (Team.size tm) n
    | None -> 1
  in
  let busy = Array.make workers 0.0 in
  let stall = Array.make workers 0.0 in
  t.floor <-
    Array.fold_left
      (fun acc e -> Float.min acc (Engine.now e))
      infinity t.engines;
  Dfs_obs.Metrics.set g_lookahead t.lookahead;
  Dfs_obs.Metrics.set g_partitions (float_of_int n);
  Dfs_obs.Profiler.span ~cat:"pdes" "pdes.run" (fun () ->
      while t.floor < until do
        let win_end = Float.min until (t.floor +. t.window) in
        Dfs_obs.Metrics.observe m_window (win_end -. t.floor);
        let phase0 = Unix.gettimeofday () in
        let phase_busy = Array.make workers 0.0 in
        (* Fixed partition -> worker affinity (p mod workers): every
           effect-suspended process resumes on the same domain for the
           whole run, and per-worker work assignment is independent of
           scheduling noise. *)
        let step m =
          let t0 = Unix.gettimeofday () in
          let p = ref m in
          while !p < n do
            Engine.run_window t.engines.(!p) ~floor:t.floor win_end;
            p := !p + workers
          done;
          phase_busy.(m) <- Unix.gettimeofday () -. t0
        in
        (match team with
        | Some tm when workers > 1 -> Team.run tm step
        | _ -> step 0);
        let phase = Unix.gettimeofday () -. phase0 in
        for m = 0 to workers - 1 do
          busy.(m) <- busy.(m) +. phase_busy.(m);
          (* Time this worker spent parked at the barrier while slower
             shards finished the window. *)
          stall.(m) <- stall.(m) +. Float.max 0.0 (phase -. phase_busy.(m))
        done;
        t.barriers <- t.barriers + 1;
        Dfs_obs.Metrics.incr m_barriers;
        deliver t;
        (* Fast-forward: when every partition's next event lies beyond
           the window end, jump the floor straight there instead of
           turning empty windows into barrier overhead. *)
        let next =
          Array.fold_left
            (fun acc e ->
              match Engine.next_time e with
              | None -> acc
              | Some x -> Float.min acc x)
            infinity t.engines
        in
        t.floor <-
          (if next > win_end then Float.min until next else win_end)
      done);
  (* Per-shard utilization gauges: busy = executing events, stall =
     parked at window barriers waiting for slower shards. *)
  for m = 0 to workers - 1 do
    let module M = Dfs_obs.Metrics in
    M.set (M.gauge (Printf.sprintf "sim.shard%d.busy_s" m)) busy.(m);
    M.set (M.gauge (Printf.sprintf "sim.shard%d.stall_s" m)) stall.(m)
  done
