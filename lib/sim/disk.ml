type config = { access_time : float; transfer_rate : float }

let default_config = { access_time = 0.025; transfer_rate = 1.5e6 }

let m_reads = Dfs_obs.Metrics.counter "sim.disk.reads"

let m_writes = Dfs_obs.Metrics.counter "sim.disk.writes"

let m_bytes_read = Dfs_obs.Metrics.counter "sim.disk.bytes_read"

let m_bytes_written = Dfs_obs.Metrics.counter "sim.disk.bytes_written"

let m_service = Dfs_obs.Metrics.histogram "sim.disk.service_s"

let note op bytes d =
  Dfs_obs.Metrics.observe m_service d;
  if Dfs_obs.Tracer.active () then
    Dfs_obs.Tracer.emit ~cat:"disk" ~name:op ~t0:(Dfs_obs.Clock.now ()) ~dur:d
      ~attrs:[ ("bytes", Dfs_obs.Json.Int bytes) ]
      ()

type t = {
  cfg : config;
  faults : Dfs_fault.Injector.t option;
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let create ?(config = default_config) ?faults () =
  {
    cfg = config;
    faults;
    reads = 0;
    writes = 0;
    bytes_read = 0;
    bytes_written = 0;
  }

let service t bytes =
  let penalty =
    match t.faults with
    | None -> 0.0
    | Some inj -> Dfs_fault.Injector.disk_penalty inj
  in
  t.cfg.access_time +. (float_of_int bytes /. t.cfg.transfer_rate) +. penalty

let read t ~bytes =
  assert (bytes >= 0);
  t.reads <- t.reads + 1;
  t.bytes_read <- t.bytes_read + bytes;
  Dfs_obs.Metrics.incr m_reads;
  Dfs_obs.Metrics.add m_bytes_read bytes;
  let d = service t bytes in
  note "read" bytes d;
  d

let write t ~bytes =
  assert (bytes >= 0);
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + bytes;
  Dfs_obs.Metrics.incr m_writes;
  Dfs_obs.Metrics.add m_bytes_written bytes;
  let d = service t bytes in
  note "write" bytes d;
  d

let reads t = t.reads

let writes t = t.writes

let bytes_read t = t.bytes_read

let bytes_written t = t.bytes_written
