type config = {
  bandwidth : float;
  rpc_latency : float;
  remote_latency : float;
}

let default_config =
  { bandwidth = 1.25e6; rpc_latency = 0.002; remote_latency = 0.05 }

let m_rpcs = Dfs_obs.Metrics.counter "sim.net.rpcs"

let m_bytes = Dfs_obs.Metrics.counter "sim.net.bytes"

let m_latency = Dfs_obs.Metrics.histogram "sim.net.rpc_latency_s"

type t = {
  cfg : config;
  counts : (string, int) Hashtbl.t;
  mutable rpcs : int;
  mutable bytes : int;
}

let create ?(config = default_config) () =
  { cfg = config; counts = Hashtbl.create 16; rpcs = 0; bytes = 0 }

let config t = t.cfg

let rpc t ~kind ~bytes =
  if bytes < 0 then
    invalid_arg (Printf.sprintf "Network.rpc: negative bytes (%d)" bytes);
  let n = Option.value ~default:0 (Hashtbl.find_opt t.counts kind) in
  Hashtbl.replace t.counts kind (n + 1);
  t.rpcs <- t.rpcs + 1;
  t.bytes <- t.bytes + bytes;
  let d = t.cfg.rpc_latency +. (float_of_int bytes /. t.cfg.bandwidth) in
  Dfs_obs.Metrics.incr m_rpcs;
  Dfs_obs.Metrics.add m_bytes bytes;
  Dfs_obs.Metrics.observe m_latency d;
  if Dfs_obs.Tracer.active () then
    Dfs_obs.Tracer.emit ~cat:"rpc" ~name:kind ~t0:(Dfs_obs.Clock.now ()) ~dur:d
      ~attrs:[ ("bytes", Dfs_obs.Json.Int bytes) ]
      ();
  d

let rpc_count t ~kind =
  Option.value ~default:0 (Hashtbl.find_opt t.counts kind)

let total_rpcs t = t.rpcs

let total_bytes t = t.bytes

let utilization t ~elapsed =
  if elapsed <= 0.0 then 0.0
  else float_of_int t.bytes /. (t.cfg.bandwidth *. elapsed)
