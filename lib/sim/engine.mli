(** Discrete-event simulation engine.

    A single event queue ordered by simulated time drives the whole
    cluster.  Besides plain callback scheduling, the engine runs
    {e processes}: ordinary OCaml functions that suspend themselves with
    {!sleep}, implemented with OCaml 5 effect handlers so that workload
    models read as straight-line code. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time, seconds. *)

type handle
(** A scheduled event; can be cancelled. *)

val schedule : t -> at:float -> (unit -> unit) -> handle
(** Requires [at >= now t]. *)

val schedule_in : t -> delay:float -> (unit -> unit) -> handle
(** Requires [delay >= 0]. *)

val at : t -> float -> (unit -> unit) -> unit
(** Fire-and-forget absolute scheduling, clamped to [now t] when the
    requested time is already past (convenient for wiring precomputed
    schedules, e.g. fault windows). *)

val cancel : t -> handle -> unit
(** Idempotent; a cancelled event's callback never runs.  Cancelled
    events are deleted lazily, but once they outnumber live events the
    queue is compacted in place, so heap depth tracks live work. *)

val every : t -> interval:float -> ?start:float -> (unit -> unit) -> unit
(** Periodic callback, first firing at [start] (default: [interval] from
    now). The callback keeps firing for as long as the simulation runs. *)

val run_until : t -> float -> unit
(** Execute events in time order until the queue is empty or the next
    event is later than the given horizon. Time is left at the horizon. *)

exception Below_floor of { time : float; floor : float }
(** A live event surfaced below the current window floor — the
    conservative-PDES lookahead contract was violated (see
    {!run_window}). *)

val run_window : t -> floor:float -> float -> unit
(** [run_window t ~floor horizon] is {!run_until} restricted to one
    conservative-PDES window: executing any live event with
    [time < floor] raises {!Below_floor} instead of running it.  The
    window floor is a hard safety property, not a filter — events below
    it can only exist if cross-shard delivery broke the lookahead
    contract. *)

val next_time : t -> float option
(** Time of the earliest queued event, if any — the shard's bound for
    barrier-time fast-forwarding.  Conservative: a cancelled event not
    yet swept may be reported, which can only make the bound earlier. *)

val pending : t -> int
(** Events still queued, including cancelled ones awaiting lazy
    deletion. *)

val live_pending : t -> int
(** Events still queued that will actually run ([pending] minus the
    cancelled ones not yet swept). *)

val drop_pending : t -> unit
(** Release every queued event (and the closures they capture) once the
    simulation is over; the engine must not be run afterwards. *)

val events_executed : t -> int
(** Events actually run (cancelled events excluded) — the engine's own
    work counter, also exported as the [sim.engine.events] metric. *)

(** {1 Processes} *)

val spawn : t -> ?at:float -> (unit -> unit) -> unit
(** Start a process at the given time (default: now).  Inside the process
    body, {!sleep} suspends execution in simulated time. *)

val sleep : float -> unit
(** Suspend the calling process for the given number of simulated seconds.
    Must be called (transitively) from a {!spawn}ed function.  Negative
    durations are treated as zero. *)
