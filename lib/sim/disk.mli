(** A file server's disk: seek-dominated accesses in the 20-30 ms range
    (the paper's figure for 1991 disks), plus transfer time. *)

type t

type config = {
  access_time : float;  (** seek + rotation, seconds *)
  transfer_rate : float;  (** bytes per second *)
}

val default_config : config

val create : ?config:config -> ?faults:Dfs_fault.Injector.t -> unit -> t
(** With [faults], each I/O may suffer a transient-error retry penalty
    drawn from the injector (added to its service time). *)

val read : t -> bytes:int -> float
(** Account a disk read; returns its service time. *)

val write : t -> bytes:int -> float

val reads : t -> int

val writes : t -> int

val bytes_read : t -> int

val bytes_written : t -> int
