(** Assembly of the whole measured system: ~40 diskless clients, 4 file
    servers, the shared Ethernet, per-server trace logs, the kernel
    counter sampler, and the housekeeping daemons (5-second delayed-write
    scans, memory arbitration, counter sampling, the trace-collection
    daemon and the nightly backup whose records get scrubbed from the
    merged trace exactly as in Section 3 of the paper). *)

type config = {
  n_clients : int;
  n_servers : int;
  seed : int;
  client_config : Client.config;
  client_memory_choices : int list;
      (** physical memory per client is drawn from these (bytes) *)
  server_config : Server.config;
  network_config : Network.config;
  daemon_interval : float;  (** delayed-write scan period; Sprite: 5 s *)
  memory_adjust_interval : float;
  counter_interval : float;  (** kernel-counter sampling period *)
  simulate_infrastructure : bool;
      (** emit trace-daemon and nightly-backup records (to be scrubbed) *)
  fault_profile : Dfs_fault.Profile.t;
      (** fault injection; {!Dfs_fault.Profile.none} (the default)
          disables it entirely and leaves runs byte-identical to a build
          without the fault subsystem *)
  trace_chunk_records : int;
      (** records per sealed trace chunk (per-server logs and the merged
          trace); bounds peak memory together with [trace_spill_dir] *)
  trace_spill_dir : string option;
      (** when set, sealed chunks are written there as binary trace
          segments instead of staying in memory *)
  trace_spill_tag : string;
      (** segment-file name prefix; must be unique among clusters
          spilling into the same directory *)
  client_id_base : int;
      (** global id of local client 0.  The id-base fields (all default
          0) exist for partitioned (sharded) simulations: each partition
          is an ordinary cluster whose clients/servers/files/users/pids
          mint ids from disjoint global ranges, so per-partition traces
          merge into one coherent global trace.  With every base 0 a
          cluster is byte-identical to one built before these fields
          existed. *)
  server_id_base : int;  (** global id of local server 0 *)
  file_id_base : int;  (** first file id the namespace allocates *)
  user_id_base : int;  (** first workload user id (consumed by the driver) *)
  pid_base : int;  (** first workload pid (consumed by the driver) *)
  fault_schedule_servers : int option;
      (** total servers of the global fault schedule (default:
          [server_id_base + n_servers]); partitions of one sharded run
          pass the global total so every partition reads its slice of
          the {e same} schedule *)
}

val default_config : config

val daemon_user : Dfs_trace.Ids.User.t
(** Reserved identity of the trace-collection daemon. *)

val backup_user : Dfs_trace.Ids.User.t
(** Reserved identity of the nightly tape backup. *)

val remote_user : Dfs_trace.Ids.User.t
(** Reserved identity of cross-partition remote reads in sharded
    simulations; scrubbed like the other infrastructure users. *)

val self_users : Dfs_trace.Ids.User.Set.t

type t

val create : config -> t

val cfg : t -> config

val engine : t -> Engine.t

val fs : t -> Fs_state.t

val network : t -> Network.t

val rng : t -> Dfs_util.Rng.t
(** The root generator; split it for workload streams. *)

val clients : t -> Client.t array

val servers : t -> Server.t array

val client : t -> int -> Client.t

val client_id : t -> int -> Dfs_trace.Ids.Client.t
(** Global trace id of local client [i]
    ([client_id_base + i]); the id workload credentials must carry. *)

val remote_access : t -> client:Dfs_trace.Ids.Client.t -> bytes:int -> int
(** Serve a cross-partition remote read issued by [client] (a client of
    another partition): picks a live local file (rotating cursor), runs
    the read through the owning server's cache, accounts the RPC, and
    emits scrubbed {!remote_user} open/close records.  Returns the bytes
    served (0 when no file qualifies). *)

val counters : t -> Counters.t

val faults : t -> Dfs_fault.Injector.t option
(** The fault injector, when [fault_profile] enables one.  Crash/reboot
    events for every outage window are scheduled at cluster creation;
    reboots trigger the recovery storm (each client replays its open and
    dirty state, staggered deterministically). *)

val run : t -> until:float -> unit

val server_chunks : t -> Dfs_trace.Sink.chunks list
(** Per-server logs in time order (as collected, before merging), as
    chunked streams.  Non-destructive: the cluster can keep running and
    be snapshotted again.
    @raise Invalid_argument after {!release_traces}. *)

val server_traces : t -> Dfs_trace.Record.t list list
(** Per-server logs in time order (as collected, before merging),
    materialized as boxed lists.
    @raise Invalid_argument after {!release_traces}. *)

val merged_chunks :
  ?chunk_records:int -> ?spill:Dfs_trace.Sink.spill -> t -> Dfs_trace.Sink.chunks
(** The merged, scrubbed, time-ordered trace as a chunked stream: a
    streaming k-way merge over the per-server chunk streams, dropping
    {!self_users} records on the fly.  [chunk_records] defaults to the
    cluster's [trace_chunk_records]; pass [spill] to write the merged
    chunks to disk.  Peak memory is one output chunk plus one loaded
    chunk per server.
    @raise Invalid_argument after {!release_traces}. *)

val merged_trace : t -> Dfs_trace.Record.t list
(** {!merged_chunks} materialized as a boxed list (tests, examples). *)

val merged_trace_array : t -> Dfs_trace.Record.t array
(** Same records as {!merged_trace}, in the dense form the analyses
    consume. *)

val release_traces : t -> unit
(** Drop the per-server logs — in-memory chunks become collectable,
    spilled segments are deleted — once the merged trace has been
    produced.  Trace accessors raise afterwards; idempotent. *)

val release_sim_state : t -> unit
(** {!release_traces} plus a full post-simulation release: the event
    queue, the namespace's per-file table, and every client/server
    per-file map and cache block store are dropped.  Counters, traffic
    totals and cache statistics — all the post-run analyses read —
    survive.  The cluster can no longer {!run}. *)

val total_traffic : t -> Traffic.t
(** Sum of all clients' raw traffic taps. *)

val total_server_traffic : t -> Traffic.t
