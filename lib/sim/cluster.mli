(** Assembly of the whole measured system: ~40 diskless clients, 4 file
    servers, the shared Ethernet, per-server trace logs, the kernel
    counter sampler, and the housekeeping daemons (5-second delayed-write
    scans, memory arbitration, counter sampling, the trace-collection
    daemon and the nightly backup whose records get scrubbed from the
    merged trace exactly as in Section 3 of the paper). *)

type config = {
  n_clients : int;
  n_servers : int;
  seed : int;
  client_config : Client.config;
  client_memory_choices : int list;
      (** physical memory per client is drawn from these (bytes) *)
  server_config : Server.config;
  network_config : Network.config;
  daemon_interval : float;  (** delayed-write scan period; Sprite: 5 s *)
  memory_adjust_interval : float;
  counter_interval : float;  (** kernel-counter sampling period *)
  simulate_infrastructure : bool;
      (** emit trace-daemon and nightly-backup records (to be scrubbed) *)
  fault_profile : Dfs_fault.Profile.t;
      (** fault injection; {!Dfs_fault.Profile.none} (the default)
          disables it entirely and leaves runs byte-identical to a build
          without the fault subsystem *)
}

val default_config : config

val daemon_user : Dfs_trace.Ids.User.t
(** Reserved identity of the trace-collection daemon. *)

val backup_user : Dfs_trace.Ids.User.t
(** Reserved identity of the nightly tape backup. *)

val self_users : Dfs_trace.Ids.User.Set.t

type t

val create : config -> t

val cfg : t -> config

val engine : t -> Engine.t

val fs : t -> Fs_state.t

val network : t -> Network.t

val rng : t -> Dfs_util.Rng.t
(** The root generator; split it for workload streams. *)

val clients : t -> Client.t array

val servers : t -> Server.t array

val client : t -> int -> Client.t

val counters : t -> Counters.t

val faults : t -> Dfs_fault.Injector.t option
(** The fault injector, when [fault_profile] enables one.  Crash/reboot
    events for every outage window are scheduled at cluster creation;
    reboots trigger the recovery storm (each client replays its open and
    dirty state, staggered deterministically). *)

val run : t -> until:float -> unit

val server_traces : t -> Dfs_trace.Record.t list list
(** Per-server logs in time order (as collected, before merging). *)

val merged_trace : t -> Dfs_trace.Record.t list
(** The merged, scrubbed, time-ordered trace the analyses consume. *)

val merged_trace_array : t -> Dfs_trace.Record.t array
(** Same records as {!merged_trace}, in the dense form the analyses
    consume. *)

val total_traffic : t -> Traffic.t
(** Sum of all clients' raw traffic taps. *)

val total_server_traffic : t -> Traffic.t
