type level = Quiet | Normal | Verbose

let int_of_level = function Quiet -> 0 | Normal -> 1 | Verbose -> 2

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" | "q" | "0" | "error" -> Some Quiet
  | "normal" | "n" | "1" | "info" -> Some Normal
  | "verbose" | "v" | "2" | "debug" -> Some Verbose
  | _ -> None

let level_name = function
  | Quiet -> "quiet"
  | Normal -> "normal"
  | Verbose -> "verbose"

let env_level () =
  match Sys.getenv_opt "DFS_LOG" with
  | None -> None
  | Some s -> level_of_string s

let current = ref (Option.value ~default:Normal (env_level ()))

let set_level l =
  (* DFS_LOG wins over programmatic defaults (CLI flags), so a user can
     always crank verbosity on a quiet script and vice versa. *)
  match env_level () with Some e -> current := e | None -> current := l

let level () = !current

let enabled l = int_of_level l <= int_of_level !current

(* Serialize writes so lines from parallel workers never interleave
   mid-line.  (Ordering across domains is still scheduler-dependent;
   only stdout table output is required to be deterministic.) *)
let emit_lock = Mutex.create ()

let emit s =
  Mutex.lock emit_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock emit_lock)
    (fun () -> Printf.eprintf "[dfs] %s\n%!" s)

let error fmt = Printf.ksprintf emit fmt

let warn fmt =
  Printf.ksprintf
    (fun s -> if enabled Normal then emit ("warning: " ^ s))
    fmt

let info fmt =
  Printf.ksprintf (fun s -> if enabled Normal then emit s) fmt

let debug fmt =
  Printf.ksprintf (fun s -> if enabled Verbose then emit s) fmt
