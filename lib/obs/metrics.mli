(** A metrics registry: named counters, gauges and log-scale histograms.

    The simulator's analogue of the paper's kernel counters (Section 3):
    instrumented modules register named metrics once at module
    initialization and bump them on hot paths (a counter increment is a
    single mutable-field update; a histogram observation is one [log10]
    and an array increment).  Snapshots render as JSON for
    [--metrics-out] / bench telemetry, or as aligned text for the
    [stats] subcommand.

    Metrics live in a registry; most callers use the process-wide
    {!default}.  Registration is idempotent: asking for an existing name
    returns the existing metric (registering the same name as a
    different kind raises [Invalid_argument]).

    The registry is domain-safe: counters and histograms are sharded
    per domain (a bump touches only the calling domain's shard, with no
    synchronization on the hot path) and read operations merge the
    shards, so concurrent simulations on a {!Dfs_util.Pool} accumulate
    without losing updates.  Gauges are last-writer-wins; parallel
    phases use per-run gauge names.  Registration and reads take a lock
    and may be called from any domain. *)

type counter

type gauge

type histogram

type t
(** A registry. *)

val create : unit -> t

val default : t

val counter : ?registry:t -> string -> counter

val gauge : ?registry:t -> string -> gauge

val histogram : ?registry:t -> string -> histogram

(** {1 Counters} *)

val incr : counter -> unit

val add : counter -> int -> unit

val value : counter -> int

val counter_name : counter -> string

(** {1 Gauges} *)

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val gauge_name : gauge -> string

(** {1 Histograms}

    Log-scale buckets (20 per decade over [1e-12, 1e12)); quantiles are
    read from bucket midpoints and are accurate to ~6% relative error.
    Observations [<= 0] are counted in a dedicated zero bucket. *)

val observe : histogram -> float -> unit

val quantile : histogram -> float -> float
(** [quantile h p] for [p] in [0, 1]; clamped to the observed range.
    Returns [0.0] on an empty histogram.  Accuracy: a positive
    observation lands in a log bucket [10^(1/20) - 1 ~ 12%] wide and
    quantiles are read from bucket midpoints, so the relative error
    against the exact empirical quantile is bounded by
    [10^(1/40) - 1 ~ 6%]. *)

val quantiles : histogram -> float list -> float list
(** Bulk accessor: all quantiles read off one merged snapshot, so they
    are mutually consistent even while other domains observe. *)

val hist_count : histogram -> int

val hist_sum : histogram -> float

val hist_mean : histogram -> float

val hist_min : histogram -> float

val hist_max : histogram -> float

val hist_name : histogram -> string

(** {1 Registry-wide operations} *)

val reset : ?registry:t -> unit -> unit
(** Zero every metric (counters to 0, gauges to 0.0, histograms
    emptied), keeping registrations. *)

val names : ?registry:t -> unit -> string list
(** Registered names, sorted. *)

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

val find : ?registry:t -> string -> metric option

val to_json : ?registry:t -> unit -> Json.t
(** Object keyed by metric name: counters as ints, gauges as floats,
    histograms as [{count, sum, mean, min, max, p50, p90, p99, p999}]. *)

val render_text : ?registry:t -> unit -> string
(** Aligned, human-readable snapshot (one line per metric). *)
