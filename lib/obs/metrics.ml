(* Log-scale histogram layout: [buckets_per_decade] buckets per decade
   over [1e-12, 1e12).  Relative bucket width is 10^(1/20) - 1 ~ 12%, so
   quantiles read from bucket midpoints are within ~6% of exact — plenty
   for latencies and sizes, and observation is just a [log10] plus an
   array increment. *)
let buckets_per_decade = 20

let lo_decade = -12

let hi_decade = 12

let n_buckets = (hi_decade - lo_decade) * buckets_per_decade

type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  buckets : int array;
  mutable h_zeros : int;  (* observations <= 0 *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let default = create ()

let register registry name make cast kind =
  match Hashtbl.find_opt registry.tbl name with
  | Some m -> (
    match cast m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Dfs_obs.Metrics: %S already registered as a non-%s"
           name kind))
  | None ->
    let v = make () in
    v

let counter ?(registry = default) name =
  register registry name
    (fun () ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace registry.tbl name (Counter c);
      c)
    (function Counter c -> Some c | _ -> None)
    "counter"

let gauge ?(registry = default) name =
  register registry name
    (fun () ->
      let g = { g_name = name; g_value = 0.0 } in
      Hashtbl.replace registry.tbl name (Gauge g);
      g)
    (function Gauge g -> Some g | _ -> None)
    "gauge"

let histogram ?(registry = default) name =
  register registry name
    (fun () ->
      let h =
        {
          h_name = name;
          buckets = Array.make n_buckets 0;
          h_zeros = 0;
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
        }
      in
      Hashtbl.replace registry.tbl name (Histogram h);
      h)
    (function Histogram h -> Some h | _ -> None)
    "histogram"

(* -- counters -------------------------------------------------------------- *)

let incr c = c.c_value <- c.c_value + 1

let add c n = c.c_value <- c.c_value + n

let value c = c.c_value

let counter_name c = c.c_name

(* -- gauges ---------------------------------------------------------------- *)

let set g v = g.g_value <- v

let gauge_value g = g.g_value

let gauge_name g = g.g_name

(* -- histograms ------------------------------------------------------------ *)

let bucket_index v =
  let i =
    int_of_float (Float.floor (Float.log10 v *. float_of_int buckets_per_decade))
    - (lo_decade * buckets_per_decade)
  in
  if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

let bucket_mid i =
  Float.pow 10.0
    ((float_of_int (i + (lo_decade * buckets_per_decade)) +. 0.5)
    /. float_of_int buckets_per_decade)

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  if v > 0.0 then h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1
  else h.h_zeros <- h.h_zeros + 1

let hist_count h = h.h_count

let hist_sum h = h.h_sum

let hist_mean h =
  if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

let hist_min h = if h.h_count = 0 then 0.0 else h.h_min

let hist_max h = if h.h_count = 0 then 0.0 else h.h_max

let hist_name h = h.h_name

let quantile h p =
  if h.h_count = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 1.0 p) in
    let target = p *. float_of_int h.h_count in
    if float_of_int h.h_zeros >= target then 0.0
    else begin
      let seen = ref (float_of_int h.h_zeros) in
      let result = ref h.h_max in
      (try
         for i = 0 to n_buckets - 1 do
           seen := !seen +. float_of_int h.buckets.(i);
           if !seen >= target then begin
             result := bucket_mid i;
             raise Exit
           end
         done
       with Exit -> ());
      (* never report outside the observed range *)
      Float.max h.h_min (Float.min h.h_max !result)
    end
  end

(* -- registry-wide operations ---------------------------------------------- *)

let reset ?(registry = default) () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
        Array.fill h.buckets 0 n_buckets 0;
        h.h_zeros <- 0;
        h.h_count <- 0;
        h.h_sum <- 0.0;
        h.h_min <- infinity;
        h.h_max <- neg_infinity)
    registry.tbl

let names ?(registry = default) () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry.tbl []
  |> List.sort String.compare

let find ?(registry = default) name = Hashtbl.find_opt registry.tbl name

let hist_json h =
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("mean", Json.Float (hist_mean h));
      ("min", Json.Float (hist_min h));
      ("max", Json.Float (hist_max h));
      ("p50", Json.Float (quantile h 0.50));
      ("p90", Json.Float (quantile h 0.90));
      ("p99", Json.Float (quantile h 0.99));
    ]

let metric_json = function
  | Counter c -> Json.Int c.c_value
  | Gauge g -> Json.Float g.g_value
  | Histogram h -> hist_json h

let to_json ?(registry = default) () =
  Json.Obj
    (List.map
       (fun name ->
         (name, metric_json (Hashtbl.find registry.tbl name)))
       (names ~registry ()))

let render_text ?(registry = default) () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      match Hashtbl.find registry.tbl name with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%-44s %d\n" name c.c_value)
      | Gauge g ->
        Buffer.add_string buf (Printf.sprintf "%-44s %.6g\n" name g.g_value)
      | Histogram h ->
        Buffer.add_string buf
          (Printf.sprintf
             "%-44s count %d  mean %.4g  p50 %.4g  p90 %.4g  p99 %.4g  max \
              %.4g\n"
             name h.h_count (hist_mean h) (quantile h 0.50) (quantile h 0.90)
             (quantile h 0.99) (hist_max h)))
    (names ~registry ());
  Buffer.contents buf
