(* Log-scale histogram layout: [buckets_per_decade] buckets per decade
   over [1e-12, 1e12).  Relative bucket width is 10^(1/20) - 1 ~ 12%, so
   quantiles read from bucket midpoints are within ~6% of exact — plenty
   for latencies and sizes, and observation is just a [log10] plus an
   array increment. *)
let buckets_per_decade = 20

let lo_decade = -12

let hi_decade = 12

let n_buckets = (hi_decade - lo_decade) * buckets_per_decade

(* Counters and histograms are bumped from every simulated hot path, and
   the pipeline runs one simulation per domain — so each metric keeps one
   unsynchronized shard per domain, found through a domain-local slot.  A
   bump is a DLS read plus a plain field update (no locks, no atomics on
   the hot path); readers merge the shards, taking the metric's mutex
   only to walk the shard list.  Shards of finished domains stay on the
   list, so their contributions survive the domain. *)

type counter_shard = { mutable cs_value : int }

type counter = {
  c_name : string;
  c_lock : Mutex.t;  (* guards c_shards *)
  mutable c_shards : counter_shard list;
  c_slot : counter_shard option Domain.DLS.key;
}

type gauge = { g_name : string; mutable g_value : float }
(* Gauges are set, not accumulated, so sharding them would be
   meaningless; a set is a single (atomic on 64-bit) float store and the
   last writer wins.  Every gauge in the pipeline is either written from
   one domain or has a per-run name, so there is no contention to
   resolve. *)

type hist_shard = {
  hs_buckets : int array;
  mutable hs_zeros : int;  (* observations <= 0 *)
  mutable hs_count : int;
  mutable hs_sum : float;
  mutable hs_min : float;
  mutable hs_max : float;
}

type histogram = {
  h_name : string;
  h_lock : Mutex.t;  (* guards h_shards *)
  mutable h_shards : hist_shard list;
  h_slot : hist_shard option Domain.DLS.key;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

let default = create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Registration is rare (module init, phase boundaries) but may now
   happen from worker domains, so it serializes on the registry lock. *)
let register registry name make cast kind =
  with_lock registry.lock (fun () ->
      match Hashtbl.find_opt registry.tbl name with
      | Some m -> (
        match cast m with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf
               "Dfs_obs.Metrics: %S already registered as a non-%s" name kind))
      | None ->
        let v = make () in
        v)

let counter ?(registry = default) name =
  register registry name
    (fun () ->
      let c =
        {
          c_name = name;
          c_lock = Mutex.create ();
          c_shards = [];
          c_slot = Domain.DLS.new_key (fun () -> None);
        }
      in
      Hashtbl.replace registry.tbl name (Counter c);
      c)
    (function Counter c -> Some c | _ -> None)
    "counter"

let gauge ?(registry = default) name =
  register registry name
    (fun () ->
      let g = { g_name = name; g_value = 0.0 } in
      Hashtbl.replace registry.tbl name (Gauge g);
      g)
    (function Gauge g -> Some g | _ -> None)
    "gauge"

let fresh_hist_shard () =
  {
    hs_buckets = Array.make n_buckets 0;
    hs_zeros = 0;
    hs_count = 0;
    hs_sum = 0.0;
    hs_min = infinity;
    hs_max = neg_infinity;
  }

let histogram ?(registry = default) name =
  register registry name
    (fun () ->
      let h =
        {
          h_name = name;
          h_lock = Mutex.create ();
          h_shards = [];
          h_slot = Domain.DLS.new_key (fun () -> None);
        }
      in
      Hashtbl.replace registry.tbl name (Histogram h);
      h)
    (function Histogram h -> Some h | _ -> None)
    "histogram"

(* -- counters -------------------------------------------------------------- *)

let counter_shard c =
  match Domain.DLS.get c.c_slot with
  | Some s -> s
  | None ->
    let s = { cs_value = 0 } in
    with_lock c.c_lock (fun () -> c.c_shards <- s :: c.c_shards);
    Domain.DLS.set c.c_slot (Some s);
    s

let incr c =
  let s = counter_shard c in
  s.cs_value <- s.cs_value + 1

let add c n =
  let s = counter_shard c in
  s.cs_value <- s.cs_value + n

let value c =
  with_lock c.c_lock (fun () ->
      List.fold_left (fun acc s -> acc + s.cs_value) 0 c.c_shards)

let counter_name c = c.c_name

(* -- gauges ---------------------------------------------------------------- *)

let set g v = g.g_value <- v

let gauge_value g = g.g_value

let gauge_name g = g.g_name

(* -- histograms ------------------------------------------------------------ *)

let bucket_index v =
  let i =
    int_of_float (Float.floor (Float.log10 v *. float_of_int buckets_per_decade))
    - (lo_decade * buckets_per_decade)
  in
  if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

let bucket_mid i =
  Float.pow 10.0
    ((float_of_int (i + (lo_decade * buckets_per_decade)) +. 0.5)
    /. float_of_int buckets_per_decade)

let hist_shard h =
  match Domain.DLS.get h.h_slot with
  | Some s -> s
  | None ->
    let s = fresh_hist_shard () in
    with_lock h.h_lock (fun () -> h.h_shards <- s :: h.h_shards);
    Domain.DLS.set h.h_slot (Some s);
    s

let observe h v =
  let s = hist_shard h in
  s.hs_count <- s.hs_count + 1;
  s.hs_sum <- s.hs_sum +. v;
  if v < s.hs_min then s.hs_min <- v;
  if v > s.hs_max then s.hs_max <- v;
  if v > 0.0 then s.hs_buckets.(bucket_index v) <- s.hs_buckets.(bucket_index v) + 1
  else s.hs_zeros <- s.hs_zeros + 1

(* Merge every shard into a fresh snapshot; all read paths go through
   this, so they see a consistent (if slightly stale) view. *)
let merged h =
  let m = fresh_hist_shard () in
  with_lock h.h_lock (fun () ->
      List.iter
        (fun s ->
          Array.iteri
            (fun i n -> m.hs_buckets.(i) <- m.hs_buckets.(i) + n)
            s.hs_buckets;
          m.hs_zeros <- m.hs_zeros + s.hs_zeros;
          m.hs_count <- m.hs_count + s.hs_count;
          m.hs_sum <- m.hs_sum +. s.hs_sum;
          if s.hs_min < m.hs_min then m.hs_min <- s.hs_min;
          if s.hs_max > m.hs_max then m.hs_max <- s.hs_max)
        h.h_shards);
  m

let shard_count s = s.hs_count

let shard_sum s = s.hs_sum

let shard_mean s =
  if s.hs_count = 0 then 0.0 else s.hs_sum /. float_of_int s.hs_count

let shard_min s = if s.hs_count = 0 then 0.0 else s.hs_min

let shard_max s = if s.hs_count = 0 then 0.0 else s.hs_max

let hist_count h = shard_count (merged h)

let hist_sum h = shard_sum (merged h)

let hist_mean h = shard_mean (merged h)

let hist_min h = shard_min (merged h)

let hist_max h = shard_max (merged h)

let hist_name h = h.h_name

let shard_quantile s p =
  if s.hs_count = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 1.0 p) in
    let target = p *. float_of_int s.hs_count in
    if float_of_int s.hs_zeros >= target then 0.0
    else begin
      let seen = ref (float_of_int s.hs_zeros) in
      let result = ref s.hs_max in
      (try
         for i = 0 to n_buckets - 1 do
           seen := !seen +. float_of_int s.hs_buckets.(i);
           if !seen >= target then begin
             result := bucket_mid i;
             raise Exit
           end
         done
       with Exit -> ());
      (* never report outside the observed range *)
      Float.max s.hs_min (Float.min s.hs_max !result)
    end
  end

let quantile h p = shard_quantile (merged h) p

(* One merge serves every requested quantile — the bulk accessor for
   report tooling that reads p50/p90/p99/p999 off the same snapshot. *)
let quantiles h ps =
  let s = merged h in
  List.map (shard_quantile s) ps

(* -- registry-wide operations ---------------------------------------------- *)

let reset_metric = function
  | Counter c ->
    with_lock c.c_lock (fun () ->
        List.iter (fun s -> s.cs_value <- 0) c.c_shards)
  | Gauge g -> g.g_value <- 0.0
  | Histogram h ->
    with_lock h.h_lock (fun () ->
        List.iter
          (fun s ->
            Array.fill s.hs_buckets 0 n_buckets 0;
            s.hs_zeros <- 0;
            s.hs_count <- 0;
            s.hs_sum <- 0.0;
            s.hs_min <- infinity;
            s.hs_max <- neg_infinity)
          h.h_shards)

let reset ?(registry = default) () =
  with_lock registry.lock (fun () ->
      Hashtbl.iter (fun _ m -> reset_metric m) registry.tbl)

let names ?(registry = default) () =
  with_lock registry.lock (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) registry.tbl [])
  |> List.sort String.compare

let find ?(registry = default) name =
  with_lock registry.lock (fun () -> Hashtbl.find_opt registry.tbl name)

let hist_json h =
  let s = merged h in
  Json.Obj
    [
      ("count", Json.Int s.hs_count);
      ("sum", Json.Float s.hs_sum);
      ("mean", Json.Float (shard_mean s));
      ("min", Json.Float (shard_min s));
      ("max", Json.Float (shard_max s));
      ("p50", Json.Float (shard_quantile s 0.50));
      ("p90", Json.Float (shard_quantile s 0.90));
      ("p99", Json.Float (shard_quantile s 0.99));
      ("p999", Json.Float (shard_quantile s 0.999));
    ]

let metric_json = function
  | Counter c -> Json.Int (value c)
  | Gauge g -> Json.Float g.g_value
  | Histogram h -> hist_json h

let to_json ?(registry = default) () =
  Json.Obj
    (List.map
       (fun name ->
         let m = with_lock registry.lock (fun () -> Hashtbl.find registry.tbl name) in
         (name, metric_json m))
       (names ~registry ()))

let render_text ?(registry = default) () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      let m = with_lock registry.lock (fun () -> Hashtbl.find registry.tbl name) in
      match m with
      | Counter c ->
        Buffer.add_string buf (Printf.sprintf "%-44s %d\n" name (value c))
      | Gauge g ->
        Buffer.add_string buf (Printf.sprintf "%-44s %.6g\n" name g.g_value)
      | Histogram h ->
        let s = merged h in
        Buffer.add_string buf
          (Printf.sprintf
             "%-44s count %d  mean %.4g  p50 %.4g  p90 %.4g  p99 %.4g  max \
              %.4g\n"
             name s.hs_count (shard_mean s) (shard_quantile s 0.50)
             (shard_quantile s 0.90) (shard_quantile s 0.99) (shard_max s)))
    (names ~registry ());
  Buffer.contents buf
