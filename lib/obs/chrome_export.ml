(* Chrome trace-event JSON (the "JSON object format"): a traceEvents
   array of complete events; ts/dur are microseconds.  Reference:
   the Trace Event Format doc that Perfetto and chrome://tracing share. *)

let wall_pid = 1

let sim_pid = 2

let meta ~pid ?tid ~name ~value () =
  Json.Obj
    (("ph", Json.String "M")
    :: ("pid", Json.Int pid)
    :: (match tid with Some t -> [ ("tid", Json.Int t) ] | None -> [])
    @ [
        ("name", Json.String name);
        ("args", Json.Obj [ ("name", Json.String value) ]);
      ])

let complete ~pid ~tid ~name ~cat ~ts_us ~dur_us ~args =
  Json.Obj
    ([
       ("ph", Json.String "X");
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
       ("name", Json.String name);
       ("cat", Json.String cat);
       ("ts", Json.Float ts_us);
       ("dur", Json.Float dur_us);
     ]
    @ (if args = [] then [] else [ ("args", Json.Obj args) ]))

let profile_events () =
  let spans = Profiler.spans () in
  if spans = [] then []
  else begin
    let domains = Profiler.domains () in
    let metas =
      meta ~pid:wall_pid ~name:"process_name" ~value:"wall clock (profiler)" ()
      :: List.map
           (fun d ->
             meta ~pid:wall_pid ~tid:d ~name:"thread_name"
               ~value:(Printf.sprintf "domain %d" d)
               ())
           domains
    in
    let events =
      List.map
        (fun (s : Profiler.span) ->
          complete ~pid:wall_pid ~tid:s.domain ~name:s.name ~cat:s.cat
            ~ts_us:(s.t0 *. 1e6) ~dur_us:(s.dur *. 1e6)
            ~args:
              [
                ("depth", Json.Int s.depth);
                ("gc_minor", Json.Int s.gc_minor);
                ("gc_major", Json.Int s.gc_major);
                ("gc_promoted_words", Json.Float s.gc_promoted_words);
                ("gc_minor_words", Json.Float s.gc_minor_words);
              ])
        spans
    in
    metas @ events
  end

let tracer_events ?(tracer = Tracer.default) () =
  let spans = Tracer.spans tracer in
  if spans = [] then []
  else begin
    (* One synthetic track per category, in sorted category order so the
       tid assignment is deterministic. *)
    let cats =
      List.sort_uniq String.compare
        (List.map (fun (s : Tracer.span) -> s.cat) spans)
    in
    let tid_of_cat c =
      let rec idx i = function
        | [] -> 0
        | c' :: rest -> if String.equal c c' then i else idx (i + 1) rest
      in
      idx 0 cats
    in
    let metas =
      meta ~pid:sim_pid ~name:"process_name" ~value:"sim time (synthetic)" ()
      :: List.mapi
           (fun i c ->
             meta ~pid:sim_pid ~tid:i ~name:"thread_name"
               ~value:(Printf.sprintf "sim:%s" c)
               ())
           cats
    in
    let events =
      List.map
        (fun (s : Tracer.span) ->
          complete ~pid:sim_pid ~tid:(tid_of_cat s.cat) ~name:s.name
            ~cat:s.cat
            ~ts_us:(s.t0 *. 1e6)
            ~dur_us:(s.dur *. 1e6)
            ~args:s.attrs)
        spans
    in
    metas @ events
  end

let to_json ?tracer () =
  Json.Obj
    [
      ("traceEvents", Json.List (profile_events () @ tracer_events ?tracer ()));
      ("displayTimeUnit", Json.String "ms");
    ]

let write ?tracer oc =
  output_string oc (Json.to_string (to_json ?tracer ()));
  output_char oc '\n'
