(** The simulated-time source used to timestamp observability events.

    Modules that sit below the engine (the network, the disks) have no
    handle on simulated time; the cluster installs its engine's clock
    here at construction so spans and samples can be stamped without
    threading a time argument through every layer.  Purely advisory:
    simulation semantics never read this clock.

    The source is domain-local: each domain of a parallel run installs
    its own simulation's clock, so concurrent clusters do not observe
    each other's time. *)

val set_source : (unit -> float) -> unit
(** Install the current simulation's clock (typically
    [fun () -> Engine.now engine]). *)

val clear : unit -> unit
(** Revert to the default source, which always returns [0.0]. *)

val now : unit -> float
(** Current simulated time according to the installed source. *)
