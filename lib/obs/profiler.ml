type span = {
  name : string;
  cat : string;
  domain : int;
  depth : int;
  t0 : float;
  dur : float;
  gc_minor : int;
  gc_major : int;
  gc_promoted_words : float;
  gc_minor_words : float;
}

(* Each domain owns one shard and appends to it without synchronization;
   the global list of shards (for readers) is guarded by a mutex, same
   scheme as [Metrics].  Shards of finished domains stay on the list, so
   worker profiles survive the worker. *)
type shard = {
  sh_domain : int;
  mutable sh_spans : span list;  (* newest first *)
  mutable sh_stored : int;
  mutable sh_added : int;
  mutable sh_depth : int;
}

(* Per-domain retention bound: the instrumentation is coarse (phases,
   pool tasks, experiments), so this is a runaway guard, not a ring. *)
let max_spans_per_domain = 65536

let enabled = ref false

let epoch = ref 0.0

let lock = Mutex.create ()

let shards : shard list ref = ref []

let slot : shard option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let shard () =
  match Domain.DLS.get slot with
  | Some s -> s
  | None ->
    let s =
      {
        sh_domain = (Domain.self () :> int);
        sh_spans = [];
        sh_stored = 0;
        sh_added = 0;
        sh_depth = 0;
      }
    in
    Mutex.lock lock;
    shards := s :: !shards;
    Mutex.unlock lock;
    Domain.DLS.set slot (Some s);
    s

let active () = !enabled

let reset () =
  Mutex.lock lock;
  List.iter
    (fun s ->
      s.sh_spans <- [];
      s.sh_stored <- 0;
      s.sh_added <- 0;
      s.sh_depth <- 0)
    !shards;
  Mutex.unlock lock

let enable () =
  reset ();
  epoch := Unix.gettimeofday ();
  enabled := true

let disable () = enabled := false

let elapsed () = if !epoch = 0.0 then 0.0 else Unix.gettimeofday () -. !epoch

let record sh sp =
  sh.sh_added <- sh.sh_added + 1;
  if sh.sh_stored < max_spans_per_domain then begin
    sh.sh_spans <- sp :: sh.sh_spans;
    sh.sh_stored <- sh.sh_stored + 1
  end

let span ?(cat = "phase") name f =
  if not !enabled then f ()
  else begin
    let sh = shard () in
    let depth = sh.sh_depth in
    sh.sh_depth <- depth + 1;
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Unix.gettimeofday () -. t0 in
        let g1 = Gc.quick_stat () in
        sh.sh_depth <- depth;
        record sh
          {
            name;
            cat;
            domain = sh.sh_domain;
            depth;
            t0 = t0 -. !epoch;
            dur;
            gc_minor = g1.Gc.minor_collections - g0.Gc.minor_collections;
            gc_major = g1.Gc.major_collections - g0.Gc.major_collections;
            gc_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
            gc_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
          })
      f
  end

let fold f acc =
  Mutex.lock lock;
  let snapshot = !shards in
  Mutex.unlock lock;
  List.fold_left f acc snapshot

let added () = fold (fun acc s -> acc + s.sh_added) 0

let dropped () = fold (fun acc s -> acc + (s.sh_added - s.sh_stored)) 0

let spans () =
  let all = fold (fun acc s -> List.rev_append s.sh_spans acc) [] in
  List.sort
    (fun a b ->
      match Float.compare a.t0 b.t0 with
      | 0 -> (
        match Int.compare a.domain b.domain with
        | 0 -> Int.compare a.depth b.depth
        | c -> c)
      | c -> c)
    all

let domains () =
  List.sort_uniq Int.compare
    (fold
       (fun acc s -> if s.sh_added > 0 then s.sh_domain :: acc else acc)
       [])
