type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- printing ------------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else
    let s = Printf.sprintf "%.12g" f in
    (* ensure the token reads back as a float, not an int *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"

let rec add_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add_to buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        add_to buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_to buf v;
  Buffer.contents buf

(* Indented printing for files meant to be read by people. *)
let rec add_pretty buf indent = function
  | List (_ :: _ as l) ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  ";
        add_pretty buf (indent + 2) v)
      l;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Obj (_ :: _ as fields) ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  ";
        escape_to buf k;
        Buffer.add_string buf ": ";
        add_pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'
  | v -> add_to buf v

let to_pretty_string v =
  let buf = Buffer.create 1024 in
  add_pretty buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* -- parsing -------------------------------------------------------------- *)

exception Parse_error of string

(* The parser recurses per nesting level; bounding the depth keeps
   adversarial input (e.g. ten thousand '[') from overflowing the stack
   and turns it into a regular Parse_error instead. *)
let max_depth = 512

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let hex4 () =
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          let code = hex4 () in
          (* A high surrogate followed by an escaped low surrogate is one
             supplementary-plane character; anything else (including a
             lone surrogate) is encoded as the code point itself. *)
          let code =
            if
              code >= 0xD800 && code <= 0xDBFF
              && !pos + 2 <= n
              && s.[!pos] = '\\'
              && s.[!pos + 1] = 'u'
            then begin
              let save = !pos in
              pos := !pos + 2;
              let lo = hex4 () in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
              else begin
                pos := save;
                code
              end
            end
            else code
          in
          (* Non-ASCII escapes round-trip as UTF-8. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else if code < 0x10000 then begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail "bad escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if
      String.contains tok '.' || String.contains tok 'e'
      || String.contains tok 'E'
    then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* -- accessors ------------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
