(** A structured event/span tracer over simulated time.

    The simulator's analogue of the paper's kernel-call trace logs
    (Section 3): instrumented modules emit {e spans} — a category
    ("rpc", "disk", "cache", "consistency", "migration"), a name, a
    simulated start time and duration, and optional attributes.  Spans
    land in a bounded ring buffer (oldest dropped first) and export as
    one JSON object per line (JSONL) via [--trace-out].

    Tracing is off by default; {!emit} on a disabled tracer is a single
    branch, so instrumentation can stay unconditionally in hot paths
    (call sites that would allocate attribute lists should still guard
    with {!active}). *)

type span = {
  cat : string;
  name : string;
  t0 : float;  (** simulated seconds *)
  dur : float;  (** simulated seconds; 0 for instant events *)
  attrs : (string * Json.t) list;
}

type t

val default_capacity : int

val create : ?capacity:int -> unit -> t
(** A disabled tracer with the given ring capacity (default 65536). *)

val default : t
(** The process-wide tracer that instrumented modules emit to. *)

val enable : ?capacity:int -> unit -> unit
(** Turn the default tracer on, optionally resizing (which clears) its
    ring first. *)

val disable : unit -> unit

val active : unit -> bool
(** Whether the default tracer is enabled — the cheap guard for call
    sites that build attribute lists. *)

val emit :
  ?tracer:t ->
  cat:string ->
  name:string ->
  t0:float ->
  dur:float ->
  ?attrs:(string * Json.t) list ->
  unit ->
  unit
(** Record a span on [tracer] (default: {!default}); no-op when the
    tracer is disabled. *)

val enabled : t -> bool

val set_capacity : t -> int -> unit
(** Resize the ring; clears recorded spans. *)

val clear : t -> unit

val spans : t -> span list
(** Retained spans, oldest first. *)

val iter : t -> (span -> unit) -> unit

val length : t -> int
(** Spans currently retained ([<= capacity]). *)

val added : t -> int
(** Spans ever recorded, including dropped ones. *)

val dropped : t -> int
(** [added - length]: spans lost to ring bounding. *)

val count : t -> cat:string -> int
(** Retained spans in the given category. *)

(** {1 Export} *)

val record_export_counters : ?registry:Metrics.t -> t -> unit
(** Record [obs.trace.added] / [obs.trace.dropped] counters into the
    metrics registry (default: the process-wide one) and warn on the
    log when spans were lost to the ring bound.  Call once per process,
    just before snapshotting metrics, so silently truncated trace files
    are detectable from the artifacts alone. *)

val span_to_json : span -> Json.t

val span_of_json : Json.t -> span option

val write_jsonl : t -> out_channel -> unit
(** One compact JSON object per retained span, oldest first. *)

val to_jsonl_string : t -> string
