(* Markdown run reports and field-by-field bench comparison.  Pure
   Json.t -> string transformations; the CLI owns files and exit codes. *)

let fnum = Json.to_float_opt

let member_num key j = Option.bind (Json.member key j) fnum

let member_str key j = Option.bind (Json.member key j) Json.to_string_opt

(* -- shared profile-span view ---------------------------------------------- *)

(* The wall-clock half of a Chrome trace (--profile-out): ph:"X" events
   with pid 1, as written by Chrome_export. *)
type pspan = {
  ps_name : string;
  ps_cat : string;
  ps_tid : int;
  ps_dur_s : float;
  ps_depth : int;
  ps_gc_minor : int;
  ps_gc_major : int;
  ps_promoted_words : float;
}

let profile_spans profile =
  match Option.map (Json.member "traceEvents") profile with
  | Some (Some (Json.List events)) ->
    List.filter_map
      (fun e ->
        match (member_str "ph" e, member_num "pid" e) with
        | Some "X", Some 1.0 ->
          let args = Option.value ~default:(Json.Obj []) (Json.member "args" e) in
          Some
            {
              ps_name = Option.value ~default:"?" (member_str "name" e);
              ps_cat = Option.value ~default:"" (member_str "cat" e);
              ps_tid =
                int_of_float (Option.value ~default:0.0 (member_num "tid" e));
              ps_dur_s =
                Option.value ~default:0.0 (member_num "dur" e) /. 1e6;
              ps_depth =
                int_of_float (Option.value ~default:0.0 (member_num "depth" args));
              ps_gc_minor =
                int_of_float
                  (Option.value ~default:0.0 (member_num "gc_minor" args));
              ps_gc_major =
                int_of_float
                  (Option.value ~default:0.0 (member_num "gc_major" args));
              ps_promoted_words =
                Option.value ~default:0.0 (member_num "gc_promoted_words" args);
            }
        | _ -> None)
      events
  | _ -> []

(* -- markdown helpers ------------------------------------------------------- *)

let md_table buf ~header rows =
  let cell s = String.concat "\\|" (String.split_on_char '|' s) in
  Buffer.add_string buf
    ("| " ^ String.concat " | " (List.map cell header) ^ " |\n");
  Buffer.add_string buf
    ("|" ^ String.concat "|" (List.map (fun _ -> "---") header) ^ "|\n");
  List.iter
    (fun row ->
      Buffer.add_string buf
        ("| " ^ String.concat " | " (List.map cell row) ^ " |\n"))
    rows

let bar frac =
  let width = 24 in
  let filled =
    max 0 (min width (int_of_float (Float.round (frac *. float_of_int width))))
  in
  "`" ^ String.make filled '#' ^ String.make (width - filled) '.' ^ "`"

let words_mb w = w *. 8.0 /. 1048576.0

(* -- report ----------------------------------------------------------------- *)

let gauge_fields metrics =
  match metrics with Some (Json.Obj fields) -> fields | _ -> []

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let ends_with ~suffix s =
  String.length s >= String.length suffix
  && String.equal
       (String.sub s (String.length s - String.length suffix) (String.length suffix))
       suffix

let report ?metrics ?profile bench =
  let metrics =
    match metrics with Some _ as m -> m | None -> Json.member "metrics" bench
  in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let total_wall = member_num "total_wall_s" bench in
  line "# dfs-repro run report";
  line "";
  (* -- summary -- *)
  let field name f = Printf.sprintf "%s: %s" name f in
  let str_of key = Option.value ~default:"?" (member_str key bench) in
  let num_of key =
    match member_num key bench with
    | Some v -> Printf.sprintf "%g" v
    | None -> "?"
  in
  line "## Run summary";
  line "";
  List.iter (line "- %s")
    [
      field "schema" (str_of "schema");
      field "scale" (num_of "scale");
      field "jobs" (num_of "jobs");
      field "faults" (str_of "faults");
      field "total wall time" (num_of "total_wall_s" ^ " s");
    ];
  (match
     Option.bind metrics (fun m -> member_num "obs.trace.dropped" m)
   with
  | Some d when d > 0.0 ->
    line
      "- **warning**: the sim-time tracer dropped %.0f spans (ring bound); \
       the --trace-out file is truncated"
      d
  | _ -> ());
  line "";
  (* -- phase wall breakdown -- *)
  line "## Phase wall breakdown";
  line "";
  let phase_rows =
    let from_phases =
      match Json.member "phases" bench with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun f -> (k, f)) (fnum v))
          fields
      | _ -> []
    in
    let from_gauges =
      List.filter_map
        (fun (k, v) ->
          if starts_with ~prefix:"phase." k && ends_with ~suffix:".wall_s" k
          then Option.map (fun f -> (k, f)) (fnum v)
          else None)
        (gauge_fields metrics)
    in
    from_phases @ List.sort (fun (a, _) (b, _) -> String.compare a b) from_gauges
  in
  if phase_rows = [] then line "_no phase telemetry in the bench file_"
  else
    md_table buf ~header:[ "phase"; "wall (s)"; "share of total" ]
      (List.map
         (fun (k, v) ->
           [
             k;
             Printf.sprintf "%.3f" v;
             (match total_wall with
             | Some t when t > 0.0 -> Printf.sprintf "%.1f%%" (100.0 *. v /. t)
             | _ -> "-");
           ])
         phase_rows);
  line "";
  (* -- hottest spans -- *)
  line "## Hottest spans";
  line "";
  let spans = profile_spans profile in
  if spans = [] then begin
    line "_no wall-clock profile given (rerun with --profile-out and pass it";
    line "with --profile); falling back to per-experiment walls_";
    line "";
    match Json.member "experiments" bench with
    | Some (Json.List exps) ->
      let walls =
        List.filter_map
          (fun e ->
            match (member_str "id" e, member_num "wall_s" e) with
            | Some id, Some w -> Some (id, w)
            | _ -> None)
          exps
      in
      let top =
        List.filteri (fun i _ -> i < 10)
          (List.sort (fun (_, a) (_, b) -> Float.compare b a) walls)
      in
      if top <> [] then
        md_table buf ~header:[ "experiment"; "wall (s)" ]
          (List.map (fun (id, w) -> [ id; Printf.sprintf "%.3f" w ]) top)
    | _ -> ()
  end
  else begin
    let top =
      List.filteri (fun i _ -> i < 10)
        (List.sort (fun a b -> Float.compare b.ps_dur_s a.ps_dur_s) spans)
    in
    md_table buf
      ~header:
        [ "span"; "cat"; "domain"; "wall (s)"; "gc minor/major"; "promoted (MB)" ]
      (List.map
         (fun s ->
           [
             s.ps_name;
             s.ps_cat;
             string_of_int s.ps_tid;
             Printf.sprintf "%.3f" s.ps_dur_s;
             Printf.sprintf "%d / %d" s.ps_gc_minor s.ps_gc_major;
             Printf.sprintf "%.1f" (words_mb s.ps_promoted_words);
           ])
         top)
  end;
  line "";
  (* -- GC summary -- *)
  line "## GC summary";
  line "";
  (match Json.member "gc" bench with
  | Some gc ->
    let row name key to_s =
      match member_num key gc with
      | Some v -> Some [ name; to_s v ]
      | None -> None
    in
    md_table buf ~header:[ "measure"; "value" ]
      (List.filter_map Fun.id
         [
           row "peak heap" "top_heap_words" (fun v ->
               Printf.sprintf "%.1f MB (%.0f words)" (words_mb v) v);
           row "final heap" "heap_words" (fun v ->
               Printf.sprintf "%.1f MB (%.0f words)" (words_mb v) v);
           row "major collections" "major_collections" (fun v ->
               Printf.sprintf "%.0f" v);
         ])
  | None -> line "_no gc telemetry in the bench file_");
  (let tops = List.filter (fun s -> s.ps_depth = 0) spans in
   if tops <> [] then begin
     let minor = List.fold_left (fun a s -> a + s.ps_gc_minor) 0 tops in
     let major = List.fold_left (fun a s -> a + s.ps_gc_major) 0 tops in
     let promoted =
       List.fold_left (fun a s -> a +. s.ps_promoted_words) 0.0 tops
     in
     line "";
     line
       "Across top-level profiled spans: %d minor / %d major collections, \
        %.1f MB promoted."
       minor major (words_mb promoted)
   end);
  line "";
  (* -- per-domain utilization -- *)
  line "## Per-domain utilization";
  line "";
  let busy =
    List.filter_map
      (fun (k, v) ->
        if starts_with ~prefix:"pool.domain" k && ends_with ~suffix:".busy_s" k
        then Option.map (fun f -> (k, f)) (fnum v)
        else None)
      (gauge_fields metrics)
  in
  let pool_gauge key = Option.bind metrics (member_num key) in
  (match (busy, pool_gauge "pool.wall_s") with
  | [], _ ->
    line "_no pool.* gauges in the metrics snapshot (run with --metrics-out,"
    ;
    line "or pass a bench file whose embedded metrics include a pool phase)_"
  | busy, wall ->
    let wall = Option.value ~default:0.0 wall in
    md_table buf ~header:[ "domain"; "busy (s)"; "busy share of map wall" ]
      (List.map
         (fun (k, b) ->
           let frac = if wall > 0.0 then Float.min 1.0 (b /. wall) else 0.0 in
           [
             k;
             Printf.sprintf "%.3f" b;
             Printf.sprintf "%s %.0f%%" (bar frac) (100.0 *. frac);
           ])
         (List.sort (fun (a, _) (b, _) -> String.compare a b) busy));
    (match (pool_gauge "pool.utilization", pool_gauge "pool.jobs") with
    | Some u, jobs ->
      line "";
      line "Pool utilization: %.0f%% of %s worker capacity over a %.3f s map."
        (100.0 *. u)
        (match jobs with
        | Some j -> Printf.sprintf "%.0f-domain" j
        | None -> "the pool's")
        wall
    | None, _ -> ()));
  line "";
  (* -- per-shard utilization (the PDES worker team) -- *)
  line "## Per-shard utilization";
  line "";
  let shard_busy =
    List.filter_map
      (fun (k, v) ->
        if starts_with ~prefix:"sim.shard" k && ends_with ~suffix:".busy_s" k
        then Option.map (fun f -> (k, f)) (fnum v)
        else None)
      (gauge_fields metrics)
  in
  (match shard_busy with
  | [] ->
    line "_no sim.shard* gauges in the metrics snapshot (sharded simulation";
    line "telemetry; present on any windowed run since schema v7)_"
  | shard_busy ->
    let stall_of k =
      (* sim.shard<i>.busy_s -> sim.shard<i>.stall_s *)
      let base = String.sub k 0 (String.length k - String.length "busy_s") in
      Option.value ~default:0.0
        (Option.bind
           (List.assoc_opt (base ^ "stall_s") (gauge_fields metrics))
           fnum)
    in
    md_table buf
      ~header:[ "shard worker"; "busy (s)"; "stall (s)"; "utilization" ]
      (List.map
         (fun (k, b) ->
           let stall = stall_of k in
           let frac = if b +. stall > 0.0 then b /. (b +. stall) else 0.0 in
           [
             k;
             Printf.sprintf "%.3f" b;
             Printf.sprintf "%.3f" stall;
             Printf.sprintf "%s %.0f%%" (bar frac) (100.0 *. frac);
           ])
         (List.sort (fun (a, _) (b, _) -> String.compare a b) shard_busy));
    match Option.bind metrics (member_num "sim.barrier.count") with
    | Some barriers ->
      line "";
      line "Stall is time parked at the %.0f window barriers waiting for \
            slower shards." barriers
    | None -> ());
  line "";
  Buffer.contents buf

(* -- bench diff ------------------------------------------------------------- *)

type verdict = Pass | Regressed | Improved | Info

type row = {
  metric : string;
  old_v : float option;
  new_v : float option;
  delta_pct : float option;
  threshold_pct : float option;
  verdict : verdict;
}

type diff = {
  config_mismatches : string list;
  notes : string list;
  rows : row list;
  regressions : string list;
}

let default_thresholds =
  [
    ("total_wall_s", 0.25);
    ("phases.sim_wall_s", 0.25);
    ("phases.analysis_wall_s", 0.25);
    ("phases.import_wall_s", 0.25);
    ("gc.top_heap_words", 0.25);
  ]

(* Identity fields: two runs that disagree here measure different
   configurations and must not be compared quantitatively.  The schema
   version is deliberately not identity: a schema bump adds telemetry
   fields, and the flattened numeric diff already handles shape drift
   (leaves present on one side only become info rows), so a version
   difference is reported as a note rather than exit-2 incomparability. *)
let config_fields = [ "scale"; "jobs"; "faults" ]

(* Flatten every numeric leaf into dotted paths.  The embedded metrics
   snapshot is excluded (its wall gauges are noise and its counters are
   covered by the sim's own determinism checks); the experiments list is
   keyed by experiment id. *)
let flatten bench =
  let acc = ref [] in
  let emit path v = acc := (path, v) :: !acc in
  let join prefix k = if prefix = "" then k else prefix ^ "." ^ k in
  let rec go prefix j =
    match j with
    | Json.Int i -> emit prefix (float_of_int i)
    | Json.Float f -> emit prefix f
    | Json.Obj fields ->
      List.iter
        (fun (k, v) ->
          let skip =
            prefix = "" && (String.equal k "metrics" || List.mem k config_fields)
          in
          if not skip then go (join prefix k) v)
        fields
    | Json.List items ->
      List.iteri
        (fun i item ->
          let key =
            match member_str "id" item with
            | Some id -> id
            | None -> string_of_int i
          in
          go (join prefix key) item)
        items
    | Json.Null | Json.Bool _ | Json.String _ -> ()
  in
  go "" bench;
  List.rev !acc

let diff ?(thresholds = default_thresholds) ~old_ new_ =
  let show key j =
    match Json.member key j with
    | Some (Json.String s) -> s
    | Some v -> Json.to_string v
    | None -> "(absent)"
  in
  let config_mismatches =
    List.filter_map
      (fun key ->
        let o = show key old_ and n = show key new_ in
        if String.equal o n then None
        else Some (Printf.sprintf "%s: %s vs %s" key o n))
      config_fields
  in
  let notes =
    let o = show "schema" old_ and n = show "schema" new_ in
    if String.equal o n then []
    else
      [
        Printf.sprintf
          "schema changed (%s vs %s); leaves present on one side only appear \
           as info rows"
          o n;
      ]
  in
  let o = flatten old_ and n = flatten new_ in
  let keys =
    List.sort_uniq String.compare (List.map fst o @ List.map fst n)
  in
  let rows =
    List.map
      (fun metric ->
        let old_v = List.assoc_opt metric o in
        let new_v = List.assoc_opt metric n in
        let threshold_pct = List.assoc_opt metric thresholds in
        let delta_pct =
          match (old_v, new_v) with
          | Some ov, Some nv when ov <> 0.0 -> Some (100.0 *. (nv -. ov) /. ov)
          | _ -> None
        in
        let verdict =
          match (threshold_pct, old_v, new_v, delta_pct) with
          | None, _, _, _ -> Info
          | Some _, Some _, None, _ -> Regressed (* gated metric vanished *)
          | Some _, None, _, _ -> Info (* new gate, no baseline yet *)
          | Some t, Some _, Some _, Some d ->
            if d > t *. 100.0 then Regressed
            else if d < -.t *. 100.0 then Improved
            else Pass
          | Some _, Some _, Some _, None -> Pass
        in
        { metric; old_v; new_v; delta_pct; threshold_pct; verdict })
      keys
  in
  let regressions =
    List.filter_map
      (fun r ->
        match r.verdict with
        | Regressed ->
          Some
            (match (r.old_v, r.new_v, r.delta_pct, r.threshold_pct) with
            | Some ov, Some nv, Some d, Some t ->
              Printf.sprintf "%s regressed: %g -> %g (%+.1f%% > +%.0f%%)"
                r.metric ov nv d (t *. 100.0)
            | _ ->
              Printf.sprintf "%s: gated metric missing from the new run"
                r.metric)
        | _ -> None)
      rows
  in
  { config_mismatches; notes; rows; regressions }

let diff_ok d = d.config_mismatches = [] && d.regressions = []

let render_diff d =
  let buf = Buffer.create 2048 in
  List.iter
    (fun m -> Buffer.add_string buf (Printf.sprintf "config mismatch: %s\n" m))
    d.config_mismatches;
  List.iter
    (fun m -> Buffer.add_string buf (Printf.sprintf "note: %s\n" m))
    d.notes;
  Buffer.add_string buf
    (Printf.sprintf "%-40s %14s %14s %9s %8s  %s\n" "metric" "old" "new"
       "delta" "gate" "status");
  List.iter
    (fun r ->
      let fvo = function Some v -> Printf.sprintf "%.6g" v | None -> "-" in
      Buffer.add_string buf
        (Printf.sprintf "%-40s %14s %14s %9s %8s  %s\n" r.metric (fvo r.old_v)
           (fvo r.new_v)
           (match r.delta_pct with
           | Some d -> Printf.sprintf "%+.1f%%" d
           | None -> "-")
           (match r.threshold_pct with
           | Some t -> Printf.sprintf "+%.0f%%" (t *. 100.0)
           | None -> "-")
           (match r.verdict with
           | Pass -> "ok"
           | Regressed -> "REGRESSED"
           | Improved -> "improved"
           | Info -> "info")))
    d.rows;
  (if diff_ok d then Buffer.add_string buf "ok: no regressions\n"
   else begin
     List.iter
       (fun m -> Buffer.add_string buf (Printf.sprintf "FAIL: %s\n" m))
       d.regressions;
     if d.config_mismatches <> [] then
       Buffer.add_string buf "FAIL: runs are not comparable (config mismatch)\n"
   end);
  Buffer.contents buf
