(** Leveled progress reporting to stderr.

    Replaces the ad-hoc [Printf.eprintf] progress lines that used to be
    scattered through the CLI and dataset generation.  Three levels:

    - [Quiet]: only {!error} output;
    - [Normal] (default): {!info} progress lines;
    - [Verbose]: additionally {!debug} detail.

    The [DFS_LOG] environment variable ([quiet]/[normal]/[verbose], or
    [0]/[1]/[2]) overrides whatever the program sets with {!set_level}. *)

type level = Quiet | Normal | Verbose

val set_level : level -> unit
(** Request a level; a valid [DFS_LOG] environment setting wins. *)

val level : unit -> level

val level_of_string : string -> level option

val level_name : level -> string

val enabled : level -> bool
(** [enabled l] is true when messages at [l] would be printed. *)

val error : ('a, unit, string, unit) format4 -> 'a
(** Printed at every level. *)

val warn : ('a, unit, string, unit) format4 -> 'a
(** Printed at [Normal] and [Verbose], prefixed with [warning:]. *)

val info : ('a, unit, string, unit) format4 -> 'a
(** Printed at [Normal] and [Verbose]. *)

val debug : ('a, unit, string, unit) format4 -> 'a
(** Printed only at [Verbose]. *)
