(** A minimal JSON tree, printer and parser.

    The toolchain image carries no JSON library, so the observability
    layer hand-rolls the small subset it needs: machine-readable metric
    snapshots, trace spans (JSONL) and bench telemetry, plus a parser so
    tests can round-trip what was written. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering.  Floats always carry a ['.'] or
    exponent so they read back as floats; NaN becomes [null]. *)

val to_pretty_string : t -> string
(** Indented rendering ending in a newline, for files meant to be opened
    by people. *)

exception Parse_error of string

val max_depth : int
(** Maximum container nesting the parser accepts (512).  Deeper input
    yields a parse error rather than a stack overflow. *)

val parse : string -> (t, string) result
(** Strict single-value parse.  [\uXXXX] escapes decode to UTF-8,
    including surrogate pairs (a high surrogate followed by an escaped
    low surrogate becomes one supplementary-plane character; lone
    surrogates are passed through as three-byte sequences).  Duplicate
    object keys are preserved in order; {!member} returns the first. *)

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup on [Obj] ({e first} binding when a key repeats);
    [None] on anything else. *)

val to_float_opt : t -> float option
(** Accepts [Int] and [Float]. *)

val to_int_opt : t -> int option

val to_string_opt : t -> string option
