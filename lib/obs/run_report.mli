(** Run reports and run-to-run comparison over bench telemetry.

    [BENCH_run.json] (schema [dfs-bench-run/*]) is write-only telemetry
    without these: {!report} renders one run as a self-contained
    markdown document (phase wall breakdown, hottest profiler spans, GC
    summary, per-domain utilization bars), and {!diff} compares two
    bench files field-by-field with per-metric relative thresholds —
    the programmatic replacement for ad-hoc comparison shell in CI.

    Everything here consumes parsed {!Json.t} values, so the CLI layer
    owns file I/O and exit codes. *)

(** {1 Markdown run report} *)

val report : ?metrics:Json.t -> ?profile:Json.t -> Json.t -> string
(** [report bench] renders a markdown report from a parsed
    [BENCH_run.json] value.  [metrics] is a [--metrics-out] snapshot
    (defaults to the ["metrics"] object embedded in the bench file);
    [profile] is a [--profile-out] Chrome trace (used for the
    hottest-spans table and GC attribution).  Sections degrade to
    explanatory placeholders when an input lacks the data, so the
    report always contains the same section headings. *)

(** {1 Bench diff} *)

type verdict =
  | Pass  (** within threshold *)
  | Regressed  (** gated metric exceeded its threshold *)
  | Improved  (** gated metric improved by more than its threshold *)
  | Info  (** ungated metric, shown for context *)

type row = {
  metric : string;  (** dotted path within the bench object *)
  old_v : float option;  (** [None] when absent in the old file *)
  new_v : float option;
  delta_pct : float option;  (** (new - old) / old * 100 *)
  threshold_pct : float option;  (** gate, if the metric has one *)
  verdict : verdict;
}

type diff = {
  config_mismatches : string list;
      (** human-readable mismatches of identity fields (scale, jobs,
          faults) — two runs that differ here are incomparable *)
  notes : string list;
      (** informational differences that do not block comparison — e.g.
          a schema version bump, which only adds/renames telemetry
          leaves (those surface as info rows) *)
  rows : row list;
  regressions : string list;  (** one message per regressed row *)
}

val default_thresholds : (string * float) list
(** Gated metrics and their allowed relative growth (fraction, e.g.
    [0.25] = +25%): [total_wall_s], [phases.analysis_wall_s] and
    [gc.top_heap_words]. *)

val diff : ?thresholds:(string * float) list -> old_:Json.t -> Json.t -> diff
(** [diff ~old_:baseline candidate] — field-by-field comparison of every
    numeric leaf of the two bench objects (the embedded ["metrics"]
    snapshot is excluded — compare it
    with jq if needed; wall gauges inside it are inherently noisy).
    Metrics named in [thresholds] (default {!default_thresholds}) are
    gated; all others are informational. *)

val render_diff : diff -> string
(** Aligned, human-readable comparison table plus a verdict line. *)

val diff_ok : diff -> bool
(** True when there are no regressions and no config mismatches. *)
