type span = {
  cat : string;
  name : string;
  t0 : float;
  dur : float;
  attrs : (string * Json.t) list;
}

type t = {
  mutable enabled : bool;
  mutable cap : int;
  mutable buf : span array;  (* ring; valid entries are the last [added] *)
  mutable added : int;  (* total spans ever recorded *)
  lock : Mutex.t;
      (* The ring is process-global state shared by parallel workers;
         [add] is disabled-checked before locking, so tracing off (the
         hot-path default) costs one load. *)
}

let dummy = { cat = ""; name = ""; t0 = 0.0; dur = 0.0; attrs = [] }

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  let cap = max 1 capacity in
  { enabled = false; cap; buf = [||]; added = 0; lock = Mutex.create () }

let default = create ()

let enabled t = t.enabled

let set_capacity t capacity =
  let cap = max 1 capacity in
  t.cap <- cap;
  t.buf <- [||];
  t.added <- 0

let clear t =
  t.buf <- [||];
  t.added <- 0

let add t span =
  if t.enabled then begin
    Mutex.lock t.lock;
    if Array.length t.buf = 0 then t.buf <- Array.make t.cap dummy;
    t.buf.(t.added mod t.cap) <- span;
    t.added <- t.added + 1;
    Mutex.unlock t.lock
  end

let added t = t.added

let length t = min t.added t.cap

let dropped t = max 0 (t.added - t.cap)

let iter t f =
  let len = length t in
  let first = t.added - len in
  for i = first to t.added - 1 do
    f t.buf.(i mod t.cap)
  done

let spans t =
  let acc = ref [] in
  iter t (fun s -> acc := s :: !acc);
  List.rev !acc

let count t ~cat =
  let n = ref 0 in
  iter t (fun s -> if String.equal s.cat cat then Stdlib.incr n);
  !n

(* -- the default tracer --------------------------------------------------- *)

let enable ?capacity () =
  (match capacity with
  | Some c -> set_capacity default c
  | None -> ());
  default.enabled <- true

let disable () = default.enabled <- false

let active () = default.enabled

let emit ?(tracer = default) ~cat ~name ~t0 ~dur ?(attrs = []) () =
  if tracer.enabled then add tracer { cat; name; t0; dur; attrs }

(* -- export ---------------------------------------------------------------- *)

let span_to_json s =
  Json.Obj
    (("cat", Json.String s.cat)
    :: ("name", Json.String s.name)
    :: ("t0", Json.Float s.t0)
    :: ("dur", Json.Float s.dur)
    :: (if s.attrs = [] then [] else [ ("attrs", Json.Obj s.attrs) ]))

let span_of_json j =
  match
    ( Option.bind (Json.member "cat" j) Json.to_string_opt,
      Option.bind (Json.member "name" j) Json.to_string_opt,
      Option.bind (Json.member "t0" j) Json.to_float_opt,
      Option.bind (Json.member "dur" j) Json.to_float_opt )
  with
  | Some cat, Some name, Some t0, Some dur ->
    let attrs =
      match Json.member "attrs" j with Some (Json.Obj a) -> a | _ -> []
    in
    Some { cat; name; t0; dur; attrs }
  | _ -> None

(* Span loss must be detectable from the artifacts alone: exporters call
   this once per process so a truncated --trace-out file carries its own
   evidence in the metrics snapshot, and truncation is warned about. *)
let record_export_counters ?registry t =
  Metrics.add (Metrics.counter ?registry "obs.trace.added") (added t);
  Metrics.add (Metrics.counter ?registry "obs.trace.dropped") (dropped t);
  if dropped t > 0 then
    Log.warn
      "trace ring overflowed: %d of %d spans dropped (oldest first); raise \
       the capacity with Tracer.enable ~capacity"
      (dropped t) (added t)

let write_jsonl t oc =
  iter t (fun s ->
      output_string oc (Json.to_string (span_to_json s));
      output_char oc '\n')

let to_jsonl_string t =
  let buf = Buffer.create 4096 in
  iter t (fun s ->
      Buffer.add_string buf (Json.to_string (span_to_json s));
      Buffer.add_char buf '\n');
  Buffer.contents buf
