(** Export profiles and traces as Chrome trace-event JSON.

    Produces the JSON-object format consumed by Perfetto
    (ui.perfetto.dev) and [chrome://tracing]: a top-level object with a
    ["traceEvents"] array of complete-duration (["ph":"X"]) events plus
    metadata events naming processes and threads.

    Two synthetic processes appear in one file:

    - {b pid 1 — wall clock}: {!Profiler} spans, one thread (track) per
      OCaml domain, timestamps in real microseconds since
      [Profiler.enable].  GC deltas ride along in [args].
    - {b pid 2 — sim time}: the {!Tracer} ring's simulated-time spans
      mapped onto a synthetic timeline (1 simulated second = 1 timeline
      second), one track per span category.

    Either side may be empty (profiling or tracing disabled); the
    output is always a valid trace. *)

val profile_events : unit -> Json.t list
(** Metadata + one ["ph":"X"] event per recorded {!Profiler} span. *)

val tracer_events : ?tracer:Tracer.t -> unit -> Json.t list
(** Metadata + one ["ph":"X"] event per retained {!Tracer} span
    (default: {!Tracer.default}), categories as tracks in sorted
    order. *)

val to_json : ?tracer:Tracer.t -> unit -> Json.t
(** The full trace object:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val write : ?tracer:Tracer.t -> out_channel -> unit
(** {!to_json} written compactly with a trailing newline. *)
