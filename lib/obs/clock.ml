let default_source () = 0.0

let source = ref default_source

let set_source f = source := f

let clear () = source := default_source

let now () = !source ()
