let default_source () = 0.0

(* Each domain runs at most one simulation at a time, so the installed
   source is domain-local: parallel clusters on a pool each see their
   own engine's clock instead of racing on a process-wide ref. *)
let source : (unit -> float) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> default_source)

let set_source f = Domain.DLS.set source f

let clear () = Domain.DLS.set source default_source

let now () = (Domain.DLS.get source) ()
