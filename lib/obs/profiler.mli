(** Hierarchical wall-clock profiling with per-domain span streams.

    Where {!Tracer} records {e simulated} time (the workload's view),
    the profiler records {e wall-clock} time (the pipeline's own cost):
    dataset generation, the k-way trace merge, the fused analysis pass,
    each experiment rendering, and every {!Dfs_util.Pool} task execution
    wrap themselves in {!span}.  Spans nest — a span opened inside
    another records its depth — and each domain keeps its own stream
    (keyed by [Domain.self ()]), so a parallel run profiles every worker
    without synchronizing the hot path.

    At span close a [Gc.quick_stat] delta is attached: minor/major
    collections and promoted/minor words allocated while the span was
    open, attributing GC pressure to pipeline phases.

    Profiling is off by default; {!span} on a disabled profiler is a
    single branch around the thunk.  Like the rest of [Dfs_obs] it is
    advisory and entirely off the output path: enabling it never changes
    simulation results. *)

type span = {
  name : string;
  cat : string;
  domain : int;  (** [Domain.self] of the recording domain *)
  depth : int;  (** nesting depth within that domain; 0 = top level *)
  t0 : float;  (** wall seconds since {!enable} *)
  dur : float;  (** wall seconds *)
  gc_minor : int;  (** minor collections while the span was open *)
  gc_major : int;  (** major collections while the span was open *)
  gc_promoted_words : float;  (** words promoted to the major heap *)
  gc_minor_words : float;  (** words allocated on the minor heap *)
}

val enable : unit -> unit
(** Turn profiling on, clearing previously recorded spans and restarting
    the epoch that span [t0] values are measured from. *)

val disable : unit -> unit

val active : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans (the enabled state is kept). *)

val span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; when profiling is active, the call is
    recorded as a span named [name] (category [cat], default
    ["phase"]) on the calling domain's stream.  The span is recorded
    even if [f] raises. *)

val spans : unit -> span list
(** All recorded spans, merged across domains and sorted by start time
    (ties broken by domain id, then depth), so exports are
    deterministic for a deterministic schedule. *)

val added : unit -> int
(** Spans ever recorded since the last {!enable}/{!reset}, including
    any dropped by the per-domain bound. *)

val dropped : unit -> int
(** Spans lost to the per-domain retention bound (oldest kept; once a
    domain's stream is full further spans are counted but not stored). *)

val domains : unit -> int list
(** Distinct domain ids with at least one recorded span, ascending. *)

val elapsed : unit -> float
(** Wall seconds since {!enable} (0 if never enabled). *)
