(** The Sprite client/server block cache (Section 5 of the paper).

    File data is cached on a block-by-block basis (4-KByte blocks), with:

    - LRU replacement;
    - a 30-second delayed-write policy: a daemon runs every 5 seconds and
      writes back every dirty block of any file that has had a block dirty
      for 30 seconds;
    - synchronous write-through on [fsync];
    - recall: the server may demand a file's dirty blocks back when
      another client opens the file;
    - write fetches: a partial write to a non-resident block of an
      existing file must first fetch the block from the server;
    - dynamic capacity: the machine's memory arbiter raises and lowers
      the block budget as the virtual memory system's needs change, and
      pages leave the cache either to hold another file block or to be
      given to the VM system (Table 8).

    The cache moves no actual data — it tracks byte counts, which is all
    the paper's tables need — but its state machine (residency, dirtiness,
    ages) is faithful. *)

type clean_reason =
  | Clean_delay  (** the 30-second delayed-write policy *)
  | Clean_fsync  (** application-requested write-through *)
  | Clean_recall  (** server recalled dirty data *)
  | Clean_vm  (** page surrendered to the virtual memory system *)
  | Clean_eviction  (** dirty block was the LRU victim (rare) *)

val clean_reason_name : clean_reason -> string

type replace_reason =
  | Replace_for_block  (** page reused for another file block *)
  | Replace_to_vm  (** page given to the virtual memory system *)

type traffic_class = Class_file | Class_paging

type config = {
  block_size : int;
  writeback_delay : float;  (** seconds a block may stay dirty; paper: 30 *)
  capacity_blocks : int;  (** initial block budget *)
  min_capacity_blocks : int;  (** the cache never shrinks below this *)
}

val default_config : config
(** 4-KByte blocks, 30-second delay, 2 MB initial capacity, 512 KB floor. *)

type backend = {
  fetch :
    cls:traffic_class ->
    file:Dfs_trace.Ids.File.t ->
    index:int ->
    bytes:int ->
    unit;
      (** a block (or its valid prefix) read from the server, attributed
          to the class of the request that missed *)
  writeback :
    file:Dfs_trace.Ids.File.t ->
    index:int ->
    bytes:int ->
    reason:clean_reason ->
    unit;  (** dirty data pushed to the server *)
}

type t

val create : ?config:config -> backend -> t

val config : t -> config

(** {1 Data path}

    All operations take [now], the current simulation time, and
    [file_size], the file's size in bytes {e before} the operation. *)

val read :
  t ->
  now:float ->
  cls:traffic_class ->
  migrated:bool ->
  file:Dfs_trace.Ids.File.t ->
  file_size:int ->
  off:int ->
  len:int ->
  unit

val write :
  t ->
  now:float ->
  cls:traffic_class ->
  migrated:bool ->
  file:Dfs_trace.Ids.File.t ->
  file_size:int ->
  off:int ->
  len:int ->
  unit

val fsync : t -> now:float -> file:Dfs_trace.Ids.File.t -> unit
(** Write through all of the file's dirty blocks. *)

val recall : t -> now:float -> file:Dfs_trace.Ids.File.t -> unit
(** Server recall: flush the file's dirty blocks (they stay resident). *)

val invalidate : t -> now:float -> file:Dfs_trace.Ids.File.t -> unit
(** Drop all of the file's blocks without writing them back; used when an
    open discovers a newer version on the server.  Dirty bytes dropped are
    counted as saved writebacks (the delete/overwrite-before-writeback
    effect the paper credits with ~10% of new bytes). *)

val flush_and_invalidate : t -> now:float -> file:Dfs_trace.Ids.File.t -> unit
(** Recall then drop; used when the server disables caching for a file. *)

val delete : t -> now:float -> file:Dfs_trace.Ids.File.t -> unit
(** The file was deleted or truncated to zero: drop blocks, discarding
    dirty data (it never reaches the server). *)

val tick : t -> now:float -> unit
(** The delayed-write daemon: call every few seconds of simulated time. *)

(** {1 Crash support} *)

val dirty_bytes : t -> int
(** Dirty bytes currently exposed to the delayed-write loss window (the
    sum of the writeback extents of all dirty blocks). *)

val dirty_file_ids : t -> int list
(** Ids of files with at least one dirty block, sorted ascending (a
    deterministic order for recovery replay). *)

val crash : t -> now:float -> int
(** Simulate power loss: drop every block without writing anything back
    and return the dirty bytes destroyed.  The loss is not added to
    [dirty_bytes_discarded] (that stat counts delete-before-writeback
    savings); callers account it as delayed-write loss. *)

(** {1 Capacity negotiation} *)

val capacity : t -> int

val size : t -> int
(** Resident blocks. *)

val resident_bytes : t -> int

val set_capacity : t -> now:float -> int -> unit
(** Shrinking evicts LRU blocks to the VM system ([Replace_to_vm]);
    clamped to [min_capacity_blocks]. *)

(** {1 Statistics} *)

type class_stats = {
  mutable read_ops : int;  (** block-level cache read operations *)
  mutable read_hits : int;
  mutable read_misses : int;
  mutable bytes_read : int;  (** bytes requested by the application *)
  mutable bytes_fetched : int;  (** bytes read from the server on read misses *)
  mutable write_ops : int;
  mutable write_fetches : int;
  mutable write_fetch_bytes : int;
      (** bytes fetched from the server to complete partial writes *)
  mutable bytes_written : int;  (** bytes written into the cache *)
}

type stats = {
  all : class_stats;  (** every request *)
  file : class_stats;  (** Class_file requests *)
  paging : class_stats;  (** Class_paging requests *)
  migrated : class_stats;  (** requests from migrated processes *)
  mutable writeback_bytes : int;  (** dirty bytes pushed to the server *)
  mutable dirty_bytes_discarded : int;
      (** dirty bytes deleted/overwritten before writeback *)
  cleanings : (clean_reason * Dfs_util.Stats.t) list;
      (** per-reason counts and ages (now - last write) *)
  replacements : (replace_reason * Dfs_util.Stats.t) list;
      (** per-reason counts and ages (now - last reference) *)
}

val stats : t -> stats

val dirty_blocks : t -> int

val drop_contents : t -> unit
(** Release the block store and per-file indexes once the simulation is
    over; {!stats} keeps working.  Dirty blocks are dropped without
    writeback, so the cache must not be used for I/O afterwards. *)

val check_invariants : t -> unit
(** Internal consistency (size within capacity, LRU and index agree,
    dirty counters match).  Raises [Assert_failure] on violation; used by
    tests. *)
