module File = Dfs_trace.Ids.File

type clean_reason =
  | Clean_delay
  | Clean_fsync
  | Clean_recall
  | Clean_vm
  | Clean_eviction

let clean_reason_name = function
  | Clean_delay -> "30-second delay"
  | Clean_fsync -> "write-through requested by application"
  | Clean_recall -> "server recall"
  | Clean_vm -> "virtual memory page"
  | Clean_eviction -> "replacement of dirty block"

type replace_reason = Replace_for_block | Replace_to_vm

type traffic_class = Class_file | Class_paging

type config = {
  block_size : int;
  writeback_delay : float;
  capacity_blocks : int;
  min_capacity_blocks : int;
}

let default_config =
  {
    block_size = Dfs_util.Units.block_size;
    writeback_delay = 30.0;
    capacity_blocks = 512;
    min_capacity_blocks = 128;
  }

type backend = {
  fetch :
    cls:traffic_class -> file:File.t -> index:int -> bytes:int -> unit;
  writeback :
    file:File.t -> index:int -> bytes:int -> reason:clean_reason -> unit;
}

type block = {
  b_file : File.t;
  b_index : int;
  mutable dirty : bool;
  mutable dirtied_at : float;  (* first dirtied since last clean *)
  mutable last_write : float;
  mutable last_ref : float;
  mutable dirty_high : int;  (* writeback extent, from the block start *)
}

module Key = struct
  type t = int * int

  let equal (a1, a2) (b1, b2) = a1 = b1 && a2 = b2

  let hash = Hashtbl.hash
end

(* Process-wide cache metrics, aggregated over every block cache in the
   process (client and server caches alike). *)
let m_lookups = Dfs_obs.Metrics.counter "sim.cache.read_lookups"

let m_hits = Dfs_obs.Metrics.counter "sim.cache.read_hits"

let m_misses = Dfs_obs.Metrics.counter "sim.cache.read_misses"

let m_fetch_bytes = Dfs_obs.Metrics.counter "sim.cache.fetch_bytes"

let m_write_blocks = Dfs_obs.Metrics.counter "sim.cache.write_blocks"

let m_write_fetches = Dfs_obs.Metrics.counter "sim.cache.write_fetches"

let m_writebacks = Dfs_obs.Metrics.counter "sim.cache.writebacks"

let m_writeback_bytes = Dfs_obs.Metrics.counter "sim.cache.writeback_bytes"

let m_evictions = Dfs_obs.Metrics.counter "sim.cache.evictions"

let m_dirty_age = Dfs_obs.Metrics.histogram "sim.cache.dirty_age_s"

module L = Dfs_util.Lru.Make (Key)

type class_stats = {
  mutable read_ops : int;
  mutable read_hits : int;
  mutable read_misses : int;
  mutable bytes_read : int;
  mutable bytes_fetched : int;
  mutable write_ops : int;
  mutable write_fetches : int;
  mutable write_fetch_bytes : int;
  mutable bytes_written : int;
}

let fresh_class_stats () =
  {
    read_ops = 0;
    read_hits = 0;
    read_misses = 0;
    bytes_read = 0;
    bytes_fetched = 0;
    write_ops = 0;
    write_fetches = 0;
    write_fetch_bytes = 0;
    bytes_written = 0;
  }

type stats = {
  all : class_stats;
  file : class_stats;
  paging : class_stats;
  migrated : class_stats;
  mutable writeback_bytes : int;
  mutable dirty_bytes_discarded : int;
  cleanings : (clean_reason * Dfs_util.Stats.t) list;
  replacements : (replace_reason * Dfs_util.Stats.t) list;
}

type dirty_info = {
  mutable dn : int;  (* dirty blocks in this file *)
  mutable earliest : float;
      (* Lower bound on the oldest [dirtied_at] among them.  May go
         stale-early when the oldest block is cleaned individually (we
         don't rescan on clean); [tick] verifies before writing back and
         tightens the bound when it proves conservative, so the delay
         policy stays exact while the per-tick scan touches only files
         that could plausibly have expired. *)
}

(* Dense indices for the per-reason timing stats.  [clean_block] and
   [evict_one] are on the simulation's hottest path (every writeback and
   eviction), so the lookup must not walk an assoc list. *)
let clean_index = function
  | Clean_delay -> 0
  | Clean_fsync -> 1
  | Clean_recall -> 2
  | Clean_vm -> 3
  | Clean_eviction -> 4

let replace_index = function Replace_for_block -> 0 | Replace_to_vm -> 1

type t = {
  cfg : config;
  backend : backend;
  lru : block L.t;
  files : (int, (int, block) Hashtbl.t) Hashtbl.t;
  dirty_files : (int, dirty_info) Hashtbl.t;
  mutable capacity : int;
  mutable dirty_count : int;
  stats : stats;
  cleaning_stats : Dfs_util.Stats.t array;  (* indexed by [clean_index] *)
  replacement_stats : Dfs_util.Stats.t array;  (* by [replace_index] *)
}

let create ?(config = default_config) backend =
  (* The dense arrays are the store; the public assoc lists share the
     same (mutable) [Stats.t] values, so both views always agree. *)
  let cleaning_stats = Array.init 5 (fun _ -> Dfs_util.Stats.create ()) in
  let replacement_stats = Array.init 2 (fun _ -> Dfs_util.Stats.create ()) in
  {
    cfg = config;
    backend;
    lru = L.create ();
    files = Hashtbl.create 256;
    dirty_files = Hashtbl.create 64;
    capacity = max 1 config.capacity_blocks;
    dirty_count = 0;
    stats =
      {
        all = fresh_class_stats ();
        file = fresh_class_stats ();
        paging = fresh_class_stats ();
        migrated = fresh_class_stats ();
        writeback_bytes = 0;
        dirty_bytes_discarded = 0;
        cleanings =
          List.map
            (fun r -> (r, cleaning_stats.(clean_index r)))
            [ Clean_delay; Clean_fsync; Clean_recall; Clean_vm; Clean_eviction ];
        replacements =
          List.map
            (fun r -> (r, replacement_stats.(replace_index r)))
            [ Replace_for_block; Replace_to_vm ];
      };
    cleaning_stats;
    replacement_stats;
  }

let config t = t.cfg

let capacity t = t.capacity

let size t = L.length t.lru

let resident_bytes t = size t * t.cfg.block_size

let stats t = t.stats

let dirty_blocks t = t.dirty_count

(* Post-simulation memory release: the block store, per-file index and
   dirty-file tracking go away; [stats] (all counters and timing
   distributions) survive untouched.  Dirty data is dropped without
   writeback, so this must only run once the cache will see no further
   reads or writes. *)
let drop_contents t =
  L.clear t.lru;
  Hashtbl.reset t.files;
  Hashtbl.reset t.dirty_files;
  t.dirty_count <- 0

(* -- internal bookkeeping ------------------------------------------------ *)

let file_tbl t file =
  let fid = File.to_int file in
  match Hashtbl.find_opt t.files fid with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 16 in
    Hashtbl.replace t.files fid tbl;
    tbl

let note_dirty t b =
  if not b.dirty then begin
    b.dirty <- true;
    t.dirty_count <- t.dirty_count + 1;
    let fid = File.to_int b.b_file in
    match Hashtbl.find_opt t.dirty_files fid with
    | Some info ->
      info.dn <- info.dn + 1;
      if b.dirtied_at < info.earliest then info.earliest <- b.dirtied_at
    | None ->
      Hashtbl.replace t.dirty_files fid { dn = 1; earliest = b.dirtied_at }
  end

let note_clean t b =
  if b.dirty then begin
    b.dirty <- false;
    b.dirty_high <- 0;
    t.dirty_count <- t.dirty_count - 1;
    let fid = File.to_int b.b_file in
    match Hashtbl.find_opt t.dirty_files fid with
    | Some info when info.dn > 1 -> info.dn <- info.dn - 1
    | Some _ -> Hashtbl.remove t.dirty_files fid
    | None -> assert false
  end

let cleaning_stat t reason = t.cleaning_stats.(clean_index reason)

let replacement_stat t reason = t.replacement_stats.(replace_index reason)

let clean_block t ~now b ~reason =
  if b.dirty then begin
    let bytes = b.dirty_high in
    t.backend.writeback ~file:b.b_file ~index:b.b_index ~bytes ~reason;
    t.stats.writeback_bytes <- t.stats.writeback_bytes + bytes;
    Dfs_util.Stats.add (cleaning_stat t reason) (now -. b.last_write);
    Dfs_obs.Metrics.incr m_writebacks;
    Dfs_obs.Metrics.add m_writeback_bytes bytes;
    Dfs_obs.Metrics.observe m_dirty_age (now -. b.dirtied_at);
    if Dfs_obs.Tracer.active () then
      Dfs_obs.Tracer.emit ~cat:"cache" ~name:"writeback" ~t0:now ~dur:0.0
        ~attrs:
          [
            ("file", Dfs_obs.Json.Int (File.to_int b.b_file));
            ("bytes", Dfs_obs.Json.Int bytes);
            ("reason", Dfs_obs.Json.String (clean_reason_name reason));
          ]
        ();
    note_clean t b
  end

let drop_block t b ~discard_dirty =
  if b.dirty then begin
    if discard_dirty then
      t.stats.dirty_bytes_discarded <-
        t.stats.dirty_bytes_discarded + b.dirty_high;
    note_clean t b
  end;
  let fid = File.to_int b.b_file in
  (match Hashtbl.find_opt t.files fid with
  | Some tbl ->
    Hashtbl.remove tbl b.b_index;
    if Hashtbl.length tbl = 0 then Hashtbl.remove t.files fid
  | None -> assert false);
  ignore (L.remove t.lru (fid, b.b_index))

let evict_one t ~now ~reason =
  match L.pop_lru t.lru with
  | None -> false
  | Some (_, b) ->
    (* A dirty victim must reach the server before its page is reused. *)
    (match reason with
    | Replace_to_vm -> clean_block t ~now b ~reason:Clean_vm
    | Replace_for_block -> clean_block t ~now b ~reason:Clean_eviction);
    Dfs_util.Stats.add (replacement_stat t reason) (now -. b.last_ref);
    Dfs_obs.Metrics.incr m_evictions;
    if Dfs_obs.Tracer.active () then
      Dfs_obs.Tracer.emit ~cat:"cache" ~name:"evict" ~t0:now ~dur:0.0
        ~attrs:
          [
            ("file", Dfs_obs.Json.Int (File.to_int b.b_file));
            ("idle_s", Dfs_obs.Json.Float (now -. b.last_ref));
          ]
        ();
    let fid = File.to_int b.b_file in
    (match Hashtbl.find_opt t.files fid with
    | Some tbl ->
      Hashtbl.remove tbl b.b_index;
      if Hashtbl.length tbl = 0 then Hashtbl.remove t.files fid
    | None -> assert false);
    true

let insert_block t ~now ~file ~index =
  while L.length t.lru >= t.capacity do
    if not (evict_one t ~now ~reason:Replace_for_block) then
      (* capacity is >= 1 and the LRU is non-empty whenever size >= capacity *)
      assert false
  done;
  let b =
    {
      b_file = file;
      b_index = index;
      dirty = false;
      dirtied_at = now;
      last_write = now;
      last_ref = now;
      dirty_high = 0;
    }
  in
  Hashtbl.replace (file_tbl t file) index b;
  L.add t.lru (File.to_int file, index) b;
  b

let find_block t ~file ~index =
  match Hashtbl.find_opt t.files (File.to_int file) with
  | None -> None
  | Some tbl -> Hashtbl.find_opt tbl index

let touch t b ~now =
  b.last_ref <- now;
  ignore (L.use t.lru (File.to_int b.b_file, b.b_index))

(* -- stats helpers ------------------------------------------------------- *)

let class_targets t ~cls ~migrated =
  let base =
    match cls with Class_file -> t.stats.file | Class_paging -> t.stats.paging
  in
  if migrated then [ t.stats.all; base; t.stats.migrated ]
  else [ t.stats.all; base ]

(* -- data path ----------------------------------------------------------- *)

(* Iterate the blocks overlapped by [off, off+len), calling
   [f ~index ~lo ~hi] with the within-block byte range. *)
let iter_blocks t ~off ~len f =
  if len > 0 then begin
    let bs = t.cfg.block_size in
    let first = off / bs and last = (off + len - 1) / bs in
    for index = first to last do
      let block_start = index * bs in
      let lo = max off block_start - block_start in
      let hi = min (off + len) (block_start + bs) - block_start in
      f ~index ~lo ~hi
    done
  end

let read t ~now ~cls ~migrated ~file ~file_size ~off ~len =
  let targets = class_targets t ~cls ~migrated in
  iter_blocks t ~off ~len (fun ~index ~lo ~hi ->
      let wanted = hi - lo in
      List.iter
        (fun s ->
          s.read_ops <- s.read_ops + 1;
          s.bytes_read <- s.bytes_read + wanted)
        targets;
      Dfs_obs.Metrics.incr m_lookups;
      match find_block t ~file ~index with
      | Some b ->
        List.iter (fun s -> s.read_hits <- s.read_hits + 1) targets;
        Dfs_obs.Metrics.incr m_hits;
        touch t b ~now
      | None ->
        let block_start = index * t.cfg.block_size in
        let avail = max 0 (min t.cfg.block_size (file_size - block_start)) in
        t.backend.fetch ~cls ~file ~index ~bytes:avail;
        List.iter
          (fun s ->
            s.read_misses <- s.read_misses + 1;
            s.bytes_fetched <- s.bytes_fetched + avail)
          targets;
        Dfs_obs.Metrics.incr m_misses;
        Dfs_obs.Metrics.add m_fetch_bytes avail;
        if Dfs_obs.Tracer.active () then
          Dfs_obs.Tracer.emit ~cat:"cache" ~name:"fill" ~t0:now ~dur:0.0
            ~attrs:
              [
                ("file", Dfs_obs.Json.Int (File.to_int file));
                ("bytes", Dfs_obs.Json.Int avail);
              ]
            ();
        let b = insert_block t ~now ~file ~index in
        touch t b ~now)

let write t ~now ~cls ~migrated ~file ~file_size ~off ~len =
  let targets = class_targets t ~cls ~migrated in
  iter_blocks t ~off ~len (fun ~index ~lo ~hi ->
      let written = hi - lo in
      List.iter
        (fun s ->
          s.write_ops <- s.write_ops + 1;
          s.bytes_written <- s.bytes_written + written)
        targets;
      Dfs_obs.Metrics.incr m_write_blocks;
      let b =
        match find_block t ~file ~index with
        | Some b -> b
        | None ->
          let block_start = index * t.cfg.block_size in
          let existing =
            max 0 (min t.cfg.block_size (file_size - block_start))
          in
          (* A partial write of a non-resident block that already holds
             data must fetch the block first (a "write fetch"); writes
             covering all existing data need no fetch. *)
          if lo > 0 && existing > 0 && block_start < file_size then begin
            t.backend.fetch ~cls ~file ~index ~bytes:existing;
            Dfs_obs.Metrics.incr m_write_fetches;
            List.iter
              (fun s ->
                s.write_fetches <- s.write_fetches + 1;
                s.write_fetch_bytes <- s.write_fetch_bytes + existing)
              targets
          end
          else if lo = 0 && hi < existing then begin
            (* overwrite of the block's head only: the tail must survive *)
            t.backend.fetch ~cls ~file ~index ~bytes:existing;
            Dfs_obs.Metrics.incr m_write_fetches;
            List.iter
              (fun s ->
                s.write_fetches <- s.write_fetches + 1;
                s.write_fetch_bytes <- s.write_fetch_bytes + existing)
              targets
          end;
          insert_block t ~now ~file ~index
      in
      if not b.dirty then b.dirtied_at <- now;
      note_dirty t b;
      b.last_write <- now;
      (* Writebacks cover the block from its start to the end of the new
         data — the append behaviour the paper blames for writeback-traffic
         variance. *)
      b.dirty_high <- max b.dirty_high hi;
      touch t b ~now)

let blocks_of_file t file =
  match Hashtbl.find_opt t.files (File.to_int file) with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun _ b acc -> b :: acc) tbl []

(* Clean in place: [clean_block] never removes entries from the file's
   block table, so we can iterate it directly instead of materializing a
   [blocks_of_file] list.  ([invalidate] still takes the list — dropping
   blocks mutates the table under iteration.) *)
let clean_file t ~now ~file ~reason =
  match Hashtbl.find_opt t.files (File.to_int file) with
  | None -> ()
  | Some tbl -> Hashtbl.iter (fun _ b -> clean_block t ~now b ~reason) tbl

let fsync t ~now ~file = clean_file t ~now ~file ~reason:Clean_fsync

let recall t ~now ~file = clean_file t ~now ~file ~reason:Clean_recall

let invalidate t ~now ~file =
  ignore now;
  List.iter (fun b -> drop_block t b ~discard_dirty:true) (blocks_of_file t file)

let flush_and_invalidate t ~now ~file =
  clean_file t ~now ~file ~reason:Clean_recall;
  invalidate t ~now ~file

let delete t ~now ~file = invalidate t ~now ~file

let dirty_bytes t =
  Hashtbl.fold
    (fun fid _ acc ->
      match Hashtbl.find_opt t.files fid with
      | None -> acc
      | Some tbl ->
        Hashtbl.fold
          (fun _ b acc -> if b.dirty then acc + b.dirty_high else acc)
          tbl acc)
    t.dirty_files 0

let dirty_file_ids t =
  List.sort compare (Hashtbl.fold (fun fid _ acc -> fid :: acc) t.dirty_files [])

let crash t ~now =
  ignore now;
  let lost = dirty_bytes t in
  (* Volatile memory is gone: every block leaves, dirty data silently.
     The loss is NOT counted as [dirty_bytes_discarded] — that stat is
     the paper's deleted-before-writeback {e saving}; crash loss is the
     delayed-write {e cost} and is accounted by the fault injector. *)
  let all =
    Hashtbl.fold
      (fun _ tbl acc -> Hashtbl.fold (fun _ b acc -> b :: acc) tbl acc)
      t.files []
  in
  List.iter (fun b -> drop_block t b ~discard_dirty:false) all;
  lost

let tick t ~now =
  (* Any file with a block dirty for [writeback_delay] has ALL its dirty
     blocks written back — Sprite's policy.  [dirty_files.earliest] is a
     lower bound on each file's oldest dirty timestamp, so files whose
     bound hasn't aged out are skipped without touching their blocks;
     only plausible candidates get a per-block verify.  A candidate that
     turns out fresh (its bound was stale) has the bound tightened to
     the true minimum so it won't re-trip every tick. *)
  let candidates =
    Hashtbl.fold
      (fun fid info acc ->
        if now -. info.earliest >= t.cfg.writeback_delay then
          (fid, info) :: acc
        else acc)
      t.dirty_files []
  in
  List.iter
    (fun (fid, info) ->
      let file = File.of_int fid in
      let expired = ref false in
      let oldest = ref infinity in
      (match Hashtbl.find_opt t.files fid with
      | None -> ()
      | Some tbl ->
        Hashtbl.iter
          (fun _ b ->
            if b.dirty then begin
              if now -. b.dirtied_at >= t.cfg.writeback_delay then
                expired := true;
              if b.dirtied_at < !oldest then oldest := b.dirtied_at
            end)
          tbl);
      if !expired then clean_file t ~now ~file ~reason:Clean_delay
      else if !oldest < infinity then info.earliest <- !oldest)
    candidates

let set_capacity t ~now blocks =
  let blocks = max t.cfg.min_capacity_blocks blocks in
  t.capacity <- max 1 blocks;
  while L.length t.lru > t.capacity do
    if not (evict_one t ~now ~reason:Replace_to_vm) then assert false
  done

let check_invariants t =
  let indexed =
    Hashtbl.fold (fun _ tbl acc -> acc + Hashtbl.length tbl) t.files 0
  in
  assert (indexed = L.length t.lru);
  assert (L.length t.lru <= t.capacity);
  let dirty = ref 0 in
  Hashtbl.iter
    (fun _ tbl -> Hashtbl.iter (fun _ b -> if b.dirty then incr dirty) tbl)
    t.files;
  assert (!dirty = t.dirty_count);
  let per_file_dirty = Hashtbl.create 16 in
  Hashtbl.iter
    (fun fid tbl ->
      let n =
        Hashtbl.fold (fun _ b acc -> if b.dirty then acc + 1 else acc) tbl 0
      in
      if n > 0 then Hashtbl.replace per_file_dirty fid n)
    t.files;
  assert (Hashtbl.length per_file_dirty = Hashtbl.length t.dirty_files);
  Hashtbl.iter
    (fun fid info ->
      assert (Hashtbl.find_opt per_file_dirty fid = Some info.dn);
      (* [earliest] must never overshoot the file's true oldest dirty
         timestamp — staleness is only allowed in the early direction. *)
      let tbl = Hashtbl.find t.files fid in
      Hashtbl.iter
        (fun _ b -> if b.dirty then assert (info.earliest <= b.dirtied_at))
        tbl)
    t.dirty_files
