(** Bounded-memory chunked destination for trace records.

    The simulator's servers used to materialize every record as a boxed
    [Record.t] in per-server lists; at production scale the full trace no
    longer fits.  A sink accumulates records in a columnar
    {!Record_batch.Builder} and seals a chunk every [chunk_records]
    appends.  Sealed chunks either stay in memory as batches, or — when a
    spill directory is configured — are written to disk as checksummed
    columnar {!Segment} files with only the path and record count kept
    live.  Spill files are sealed crash-safely (tmp + fsync + atomic
    rename + directory fsync), so a chunk is never observable torn under
    its final name.

    A finished sink yields a {!chunks} value: an ordered, replayable
    stream of batches.  Re-streaming loads spilled segments back one at a
    time, so consumers hold at most one chunk per traversal. *)

type spill = { dir : string; name : string }
(** Spilled segments land in [dir] (created if missing) as
    [<name>-<seq>.dfsc].  [name] must be unique per concurrently-open
    sink within [dir]. *)

type chunk = Mem of Record_batch.t | Seg of { path : string; len : int }

type chunks = { segments : chunk list; total : int }
(** An immutable, ordered sequence of sealed chunks. *)

type t
(** An open sink. *)

val default_chunk_records : int
(** 32768 — a few MB of columns per open chunk. *)

val create : ?chunk_records:int -> ?spill:spill -> unit -> t
(** @raise Invalid_argument when [chunk_records < 1]. *)

val emit : t -> Record.t -> unit

val emit_from : t -> Record_batch.t -> int -> unit
(** [emit_from t b i] appends record [i] of batch [b] column-by-column,
    without boxing an intermediate [Record.t]. *)

val chunks_now : t -> chunks
(** Non-destructive snapshot: sealed chunks plus a copy of the open
    chunk.  The sink keeps accepting records, and the snapshot never
    changes.  The open-chunk copy is not spilled. *)

val close : t -> chunks
(** Seal the open chunk (spilling it if configured) and return the final
    segment list.  The sink technically remains usable; records emitted
    after [close] begin a fresh chunk sequence. *)

(** {1 Reading} *)

val length : chunks -> int
(** Total records across all segments. *)

val chunk_count : chunks -> int

val spilled_count : chunks -> int
(** How many segments live on disk rather than in memory. *)

val load_chunk : ?on_corruption:Corruption.policy -> chunk -> Record_batch.t
(** In-memory chunks are returned as-is; spilled segments are decoded
    from disk.  Under [Fail] (default) corruption raises; under
    [Salvage] the chunk's valid record prefix is returned and counted.
    @raise Failure when a segment file is missing/corrupt (policy
    [Fail]) or unreadable (either policy). *)

val to_seq : ?on_corruption:Corruption.policy -> chunks -> Record_batch.t Seq.t
(** Replayable: every traversal re-walks the segment list (re-loading
    spilled segments), so multi-pass analyses can fold it repeatedly. *)

val iter_batches : (Record_batch.t -> unit) -> chunks -> unit

val iter : (Record.t -> unit) -> chunks -> unit
(** Boxed-record iteration (allocates one record at a time). *)

val fold : ('a -> Record.t -> 'a) -> 'a -> chunks -> 'a

val to_records : chunks -> Record.t list
(** Materialize as a boxed list (compatibility paths and tests only). *)

val to_batch : chunks -> Record_batch.t
(** Materialize as one contiguous batch (compatibility paths only). *)

val of_batch : Record_batch.t -> chunks

val of_records : Record.t list -> chunks

val discard : chunks -> unit
(** Delete spilled segment files; the value must not be read again. *)

val clear : t -> unit
(** Release everything the sink holds: in-memory chunks become
    collectable, spilled segment files are deleted, and the open chunk
    is emptied.  Snapshots taken earlier that reference spilled segments
    must not be read afterwards. *)
