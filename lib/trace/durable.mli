(** Crash-safe file replacement: tmp + fsync + atomic rename + directory
    fsync, with {!Io_retry} around every syscall.  A file written through
    {!replace} is never observable torn under its final name — a crash
    leaves the old state, the new state, or an orphaned [.tmp]. *)

val replace : op:string -> path:string -> (out_channel -> 'a) -> 'a
(** [replace ~op ~path f] runs [f] on a fresh [path ^ ".tmp"] channel,
    fsyncs and closes it, renames it over [path] and fsyncs the parent
    directory.  On any exception the temp file is closed and unlinked
    and the exception re-raised; [path] is untouched.  [f] may be re-run
    after a transient I/O error, so it must be idempotent. *)

val tmp_path : string -> string
(** [path ^ ".tmp"]. *)

val is_tmp : string -> bool
(** Does the path carry the temp suffix? (fsck treats these as sealing
    leftovers.) *)

val fsync_channel : out_channel -> unit
(** Flush OCaml buffers, then [fsync] the fd. *)

val fsync_dir : string -> unit
(** Best-effort directory fsync (failures are swallowed: they degrade
    durability, not integrity). *)

val unlink_noerr : string -> unit

val rename_into_place : tmp:string -> path:string -> unit
(** Atomic rename followed by parent-directory fsync. *)
