(** Trace parsing.

    Every entry point sniffs the header and dispatches to the text codec
    ({!Codec}), the varint binary one ({!Binary_codec}) or the columnar
    segment layout ({!Segment}) automatically, so callers never name the
    format on the read side. Readers check the version header and report
    the first malformed line (text) or byte offset (binary/columnar).
    Columnar files are served straight off [mmap]'d columns when
    {!Segment.mmap_enabled}.

    All entry points take an [?on_corruption] policy (default
    {!Corruption.Fail}).  Under [Salvage], damage in any format keeps
    the longest valid prefix — whole segments (columnar), whole records
    (binary) or whole lines (text) — and records the incident via
    {!Corruption.note} instead of failing.  [?source] labels the
    diagnostics for in-memory parses; file entry points use the path. *)

val of_string :
  ?on_corruption:Corruption.policy ->
  ?source:string ->
  string ->
  (Record.t list, string) result
(** Parse a whole trace held in memory. *)

val of_file :
  ?on_corruption:Corruption.policy ->
  string ->
  (Record.t list, string) result

val fold_file :
  ?on_corruption:Corruption.policy ->
  string ->
  init:'a ->
  f:('a -> Record.t -> 'a) ->
  ('a, string) result
(** Streaming fold over a trace file. For text traces this does not hold
    records in memory; a binary trace is decoded to a batch first. *)

val batch_of_string :
  ?on_corruption:Corruption.policy ->
  ?source:string ->
  string ->
  (Record_batch.t, string) result
(** Parse straight into a struct-of-arrays batch (any format). *)

val batch_of_file :
  ?on_corruption:Corruption.policy ->
  string ->
  (Record_batch.t, string) result
