(** Trace parsing.

    Every entry point sniffs the header and dispatches to the text codec
    ({!Codec}), the varint binary one ({!Binary_codec}) or the columnar
    segment layout ({!Segment}) automatically, so callers never name the
    format on the read side. Readers check the version header and report
    the first malformed line (text) or byte offset (binary/columnar).
    Columnar files are served straight off [mmap]'d columns when
    {!Segment.mmap_enabled}. *)

val of_string : string -> (Record.t list, string) result
(** Parse a whole trace held in memory. *)

val of_file : string -> (Record.t list, string) result

val fold_file :
  string -> init:'a -> f:('a -> Record.t -> 'a) -> ('a, string) result
(** Streaming fold over a trace file. For text traces this does not hold
    records in memory; a binary trace is decoded to a batch first. *)

val batch_of_string : string -> (Record_batch.t, string) result
(** Parse straight into a struct-of-arrays batch (either format). *)

val batch_of_file : string -> (Record_batch.t, string) result
