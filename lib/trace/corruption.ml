(* Corruption handling policy for trace readers.

   Every reader defaults to [Fail]: a checksum mismatch, torn segment or
   malformed record turns into an [Error]/[Failure] immediately, which
   is the right behavior for tests and for freshly produced data.
   Long analysis runs over archived or foreign traces can opt into
   [Salvage]: the reader keeps the longest valid prefix of the damaged
   source, records the incident in the two counters below, warns once
   per source, and carries on. *)

type policy = Fail | Salvage

let of_string = function
  | "fail" -> Ok Fail
  | "salvage" -> Ok Salvage
  | s -> Error (Printf.sprintf "bad corruption policy %S (expected fail|salvage)" s)

let to_string = function Fail -> "fail" | Salvage -> "salvage"

let m_detected = Dfs_obs.Metrics.counter "trace.corruption.detected"

let m_salvaged = Dfs_obs.Metrics.counter "trace.corruption.salvaged_records"

(* One detection event: [salvaged] is how many records were still
   recoverable ahead of the damage. *)
let note ~source ~salvaged reason =
  Dfs_obs.Metrics.incr m_detected;
  Dfs_obs.Metrics.add m_salvaged salvaged;
  Dfs_obs.Log.warn "%s: corrupt trace salvaged (%d records kept): %s" source
    salvaged reason

let detected () = Dfs_obs.Metrics.value m_detected

let salvaged_records () = Dfs_obs.Metrics.value m_salvaged
