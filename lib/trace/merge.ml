(* The heap's vacated-slot filler is a distinct constructor rather than
   a fabricated record, so no data value — however hostile the trace it
   came from — can collide with it.  [Sentinel] never enters the heap
   through [push]; comparing one means the heap leaked a dummy slot,
   which is a program bug, not a data problem. *)
module Cursor = struct
  type t = Sentinel | Live of Record.t * Record.t list

  let compare a b =
    match (a, b) with
    | Live (a, _), Live (b, _) -> Record.compare_time a b
    | Sentinel, _ | _, Sentinel ->
      invalid_arg "Merge.Cursor.compare: sentinel cursor compared"

  let dummy = Sentinel
end

module H = Dfs_util.Heap.Make (Cursor)

let merge streams =
  let heap = H.create () in
  List.iter
    (function [] -> () | r :: rest -> H.push heap (Cursor.Live (r, rest)))
    streams;
  let rec go acc =
    match H.pop heap with
    | None -> List.rev acc
    | Some Cursor.Sentinel ->
      invalid_arg "Merge.merge: sentinel cursor popped"
    | Some (Cursor.Live (r, rest)) ->
      (match rest with
      | [] -> ()
      | r' :: rest' -> H.push heap (Cursor.Live (r', rest')));
      go (r :: acc)
  in
  go []

let scrub ~self_users records =
  List.filter
    (fun (r : Record.t) -> not (Ids.User.Set.mem r.user self_users))
    records

let rec is_sorted = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> (a : Record.t).time <= b.time && is_sorted rest

(* -- streaming k-way merge over chunk cursors ----------------------------- *)

(* A cursor over one source's chunk stream: the currently-loaded batch,
   the index of the cursor's record within it, and the not-yet-loaded
   tail.  Only one chunk per source is ever live, so merging [k] spilled
   sources holds [k+1] chunks (the +1 is the output sink's open chunk)
   regardless of trace length. *)
module Chunk_cursor = struct
  type t = {
    mutable batch : Record_batch.t;
    mutable i : int;
    mutable rest : Sink.chunk list;
  }

  (* Same ordering the boxed merge uses ([Record.compare_time]): time,
     then server id — so the streaming merge emits records in exactly
     the order [merge] does.  Cursor indices are maintained within
     bounds by [start]/[advance], so the unsafe reads are fenced. *)
  let compare a b =
    let c =
      Float.compare
        (Record_batch.Unsafe.time a.batch a.i)
        (Record_batch.Unsafe.time b.batch b.i)
    in
    if c <> 0 then c
    else
      Int.compare
        (Record_batch.Unsafe.server a.batch a.i)
        (Record_batch.Unsafe.server b.batch b.i)

  let dummy = { batch = Record_batch.of_list []; i = 0; rest = [] }

  (* Position on the first record of the first non-empty chunk; None when
     the source is exhausted. *)
  let rec start ?on_corruption chunks =
    match chunks with
    | [] -> None
    | ch :: rest ->
      let b = Sink.load_chunk ?on_corruption ch in
      if Record_batch.length b = 0 then start ?on_corruption rest
      else Some { batch = b; i = 0; rest }

  (* Advance to the next record; false when exhausted. *)
  let advance ?on_corruption t =
    if t.i + 1 < Record_batch.length t.batch then begin
      t.i <- t.i + 1;
      true
    end
    else
      match start ?on_corruption t.rest with
      | None -> false
      | Some fresh ->
        t.batch <- fresh.batch;
        t.i <- fresh.i;
        t.rest <- fresh.rest;
        true
end

module CH = Dfs_util.Heap.Make (Chunk_cursor)

(* K-way merge of per-source chunk streams into [emit batch i] calls,
   time-ordered.  Sources must each be time-sorted (they are: per-server
   logs are appended in simulation order).  Heap contents and operation
   order mirror [merge] exactly, so ties resolve identically. *)
let merge_iter ?on_corruption sources ~emit =
  let heap = CH.create () in
  List.iter
    (fun (chunks : Sink.chunks) ->
      match Chunk_cursor.start ?on_corruption chunks.segments with
      | None -> ()
      | Some c -> CH.push heap c)
    sources;
  let rec go () =
    match CH.pop heap with
    | None -> ()
    | Some c ->
      let batch = c.Chunk_cursor.batch and i = c.Chunk_cursor.i in
      if Chunk_cursor.advance ?on_corruption c then CH.push heap c;
      emit batch i;
      go ()
  in
  go ()

let merge_chunks ?on_corruption ?chunk_records ?spill
    ?(scrub = Ids.User.Set.empty) sources =
  Dfs_obs.Profiler.span ~cat:"merge" "trace.kway_merge" (fun () ->
      let sink = Sink.create ?chunk_records ?spill () in
      let keep =
        if Ids.User.Set.is_empty scrub then fun _ _ -> true
        else
          fun batch i ->
            not (Ids.User.Set.mem (Record_batch.Unsafe.user_id batch i) scrub)
      in
      merge_iter ?on_corruption sources ~emit:(fun batch i ->
          if keep batch i then Sink.emit_from sink batch i);
      Sink.close sink)
