(* Columnar on-disk trace segments.

   A segment is a fixed 64-byte header followed by the batch columns,
   stored whole and naturally aligned, little-endian:

     offset 0    magic (8 bytes)
     offset 8    record count n          (int64 LE)
     offset 16   segment length in bytes (int64 LE, header included)
     offset 24   reserved (zeros to offset 64)
     offset 64   times    float64[n]   -- 8-byte aligned
     + 8n        servers  int32[n]     -- 4-byte aligned (8n is)
     + 4n each   clients, users, pids, files,
                 col_a, col_b, col_c, col_d (int32[n])
     + 44n       tags     uint8[n]
     ...         zero padding to the next multiple of 8

   Because every column is a contiguous slab at a naturally aligned
   offset and the segment length is a multiple of 8, a reader can serve
   the columns zero-copy: each column becomes a Bigarray window onto the
   [Unix.map_file]'d file, with no per-record decode.  A file is a
   sequence of segments; segment starts stay 8-aligned by construction.

   The zero-copy path reinterprets raw bytes in host byte order, so it
   is only enabled on little-endian hosts (and can be forced off with
   DFS_MMAP=0); the portable fallback decodes the same bytes with
   explicit little-endian reads into fresh Bigarrays — still a bulk
   column copy, never a per-record decode. *)

module A1 = Bigarray.Array1
module B = Record_batch

let magic = "\xD7DFSC\x01\x00\x00"

let header_bytes = 64

let bytes_per_record = 45

let segment_bytes ~count = (header_bytes + (bytes_per_record * count) + 7) land lnot 7

let is_segment s =
  String.length s >= String.length magic
  && String.sub s 0 (String.length magic) = magic

let mmap_enabled () =
  (not Sys.big_endian)
  &&
  match Sys.getenv_opt "DFS_MMAP" with
  | Some ("0" | "false" | "no" | "off") -> false
  | Some _ | None -> true

let m_encoded_bytes = Dfs_obs.Metrics.counter "trace.encoded_bytes"

let m_mapped_bytes = Dfs_obs.Metrics.counter "trace.mapped_bytes"

let m_skipped = Dfs_obs.Metrics.counter "trace.decode.skipped_records"

(* Column byte offsets relative to the segment start. *)
let off_times _n = header_bytes

let off_servers n = header_bytes + (8 * n)

let off_clients n = off_servers n + (4 * n)

let off_users n = off_clients n + (4 * n)

let off_pids n = off_users n + (4 * n)

let off_files n = off_pids n + (4 * n)

let off_col_a n = off_files n + (4 * n)

let off_col_b n = off_col_a n + (4 * n)

let off_col_c n = off_col_b n + (4 * n)

let off_col_d n = off_col_c n + (4 * n)

let off_tags n = off_col_d n + (4 * n)

(* -- encoding ------------------------------------------------------------- *)

let encode_batch batch =
  let n = B.length batch in
  let seg_len = segment_bytes ~count:n in
  let buf = Bytes.make seg_len '\000' in
  Bytes.blit_string magic 0 buf 0 (String.length magic);
  Bytes.set_int64_le buf 8 (Int64.of_int n);
  Bytes.set_int64_le buf 16 (Int64.of_int seg_len);
  let t0 = off_times n in
  for i = 0 to n - 1 do
    Bytes.set_int64_le buf
      (t0 + (8 * i))
      (Int64.bits_of_float (B.Unsafe.time batch i))
  done;
  let put_i32 base get =
    for i = 0 to n - 1 do
      Bytes.set_int32_le buf (base + (4 * i)) (Int32.of_int (get batch i))
    done
  in
  put_i32 (off_servers n) B.Unsafe.server;
  put_i32 (off_clients n) B.Unsafe.client;
  put_i32 (off_users n) B.Unsafe.user;
  put_i32 (off_pids n) B.Unsafe.pid;
  put_i32 (off_files n) B.Unsafe.file;
  put_i32 (off_col_a n) B.Unsafe.a;
  put_i32 (off_col_b n) B.Unsafe.b;
  put_i32 (off_col_c n) B.Unsafe.c;
  put_i32 (off_col_d n) B.Unsafe.d;
  let tg = off_tags n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set buf (tg + i) (Char.unsafe_chr (B.Unsafe.raw_tag batch i))
  done;
  Dfs_obs.Metrics.add m_encoded_bytes seg_len;
  Bytes.unsafe_to_string buf

let write_batch oc batch =
  let s = encode_batch batch in
  output_string oc s;
  String.length s

(* -- header parsing -------------------------------------------------------- *)

(* [header] is at least the first 64 bytes of a segment that starts at
   absolute offset [pos] in a source of [total] bytes.  Returns the
   record count and segment length after validating magic, extents and
   alignment. *)
let parse_header ~pos ~total header =
  if String.length header < header_bytes then
    Error (Printf.sprintf "byte %d: truncated segment header" pos)
  else if String.sub header 0 (String.length magic) <> magic then
    Error
      (Printf.sprintf "byte %d: bad segment magic %S" pos
         (String.sub header 0 (String.length magic)))
  else begin
    let n64 = String.get_int64_le header 8 in
    let len64 = String.get_int64_le header 16 in
    if Int64.compare n64 0L < 0 || Int64.compare n64 (Int64.of_int max_int) > 0
    then Error (Printf.sprintf "byte %d: bad record count %Ld" pos n64)
    else begin
      let n = Int64.to_int n64 in
      let seg_len = Int64.to_int len64 in
      if seg_len <> segment_bytes ~count:n then
        Error
          (Printf.sprintf
             "byte %d: misaligned segment (length %d for %d records, want %d)"
             pos seg_len n (segment_bytes ~count:n))
      else if pos + seg_len > total then
        Error
          (Printf.sprintf
             "byte %d: truncated segment (%d bytes declared, %d available)"
             pos seg_len (total - pos))
      else Ok (n, seg_len)
    end
  end

let check_tags ~pos get n =
  let bad = ref None in
  (try
     for i = 0 to n - 1 do
       let raw = get i in
       if not (Binary_codec.tag_ok raw) then begin
         bad := Some (Printf.sprintf "byte %d: malformed tag 0x%02x" (pos + i) raw);
         raise Exit
       end
     done
   with Exit -> ());
  match !bad with None -> Ok () | Some e -> Error e

(* -- portable (copy) decode ------------------------------------------------ *)

let decode_segment_of_string s ~pos ~n =
  let times = A1.create Bigarray.float64 Bigarray.c_layout n in
  let t0 = pos + off_times n in
  for i = 0 to n - 1 do
    A1.unsafe_set times i
      (Int64.float_of_bits (String.get_int64_le s (t0 + (8 * i))))
  done;
  let read_i32 base =
    let col = A1.create Bigarray.int32 Bigarray.c_layout n in
    for i = 0 to n - 1 do
      A1.unsafe_set col i (String.get_int32_le s (base + (4 * i)))
    done;
    col
  in
  let servers = read_i32 (pos + off_servers n) in
  let clients = read_i32 (pos + off_clients n) in
  let users = read_i32 (pos + off_users n) in
  let pids = read_i32 (pos + off_pids n) in
  let files = read_i32 (pos + off_files n) in
  let col_a = read_i32 (pos + off_col_a n) in
  let col_b = read_i32 (pos + off_col_b n) in
  let col_c = read_i32 (pos + off_col_c n) in
  let col_d = read_i32 (pos + off_col_d n) in
  let tags = A1.create Bigarray.int8_unsigned Bigarray.c_layout n in
  let tg = pos + off_tags n in
  for i = 0 to n - 1 do
    A1.unsafe_set tags i (Char.code (String.unsafe_get s (tg + i)))
  done;
  Result.map
    (fun () ->
      Dfs_obs.Metrics.add m_skipped n;
      B.of_columns ~len:n ~times ~servers ~clients ~users ~pids ~files ~tags
        ~col_a ~col_b ~col_c ~col_d)
    (check_tags ~pos:(pos + off_tags n) (fun i -> A1.unsafe_get tags i) n)

let of_string s =
  let total = String.length s in
  let rec go pos acc =
    if pos >= total then Ok (List.rev acc)
    else
      let header =
        String.sub s pos (min header_bytes (total - pos))
      in
      match parse_header ~pos ~total header with
      | Error e -> Error e
      | Ok (n, seg_len) -> (
        match decode_segment_of_string s ~pos ~n with
        | Error e -> Error e
        | Ok batch -> go (pos + seg_len) (batch :: acc))
  in
  go 0 []

(* -- zero-copy (mmap) read ------------------------------------------------- *)

(* [Unix.map_file] accepts arbitrary byte offsets (it aligns the mapping
   internally), and the mapping outlives the descriptor, so each column
   becomes its own window and the fd is closed right after the loop. *)
let map_col (type a b) fd (kind : (a, b) Bigarray.kind) ~pos n :
    (a, b, Bigarray.c_layout) A1.t =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int pos) kind Bigarray.c_layout false
       [| n |])

let map_segment fd ~pos ~n =
  if n = 0 then
    Ok
      (B.of_columns ~len:0
         ~times:(A1.create Bigarray.float64 Bigarray.c_layout 0)
         ~servers:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~clients:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~users:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~pids:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~files:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~tags:(A1.create Bigarray.int8_unsigned Bigarray.c_layout 0)
         ~col_a:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~col_b:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~col_c:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~col_d:(A1.create Bigarray.int32 Bigarray.c_layout 0))
  else begin
    let i32 off = map_col fd Bigarray.int32 ~pos:(pos + off) n in
    let times = map_col fd Bigarray.float64 ~pos:(pos + off_times n) n in
    let servers = i32 (off_servers n) in
    let clients = i32 (off_clients n) in
    let users = i32 (off_users n) in
    let pids = i32 (off_pids n) in
    let files = i32 (off_files n) in
    let col_a = i32 (off_col_a n) in
    let col_b = i32 (off_col_b n) in
    let col_c = i32 (off_col_c n) in
    let col_d = i32 (off_col_d n) in
    let tags = map_col fd Bigarray.int8_unsigned ~pos:(pos + off_tags n) n in
    Dfs_obs.Metrics.add m_mapped_bytes (bytes_per_record * n);
    Result.map
      (fun () ->
        Dfs_obs.Metrics.add m_skipped n;
        B.of_columns ~len:n ~times ~servers ~clients ~users ~pids ~files
          ~tags ~col_a ~col_b ~col_c ~col_d)
      (check_tags ~pos:(pos + off_tags n) (fun i -> A1.unsafe_get tags i) n)
  end

let really_read fd buf ~pos ~len =
  let got = ref 0 and eof = ref false in
  while !got < len && not !eof do
    let k = Unix.read fd buf (pos + !got) (len - !got) in
    if k = 0 then eof := true else got := !got + k
  done;
  !got

let map_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let total = (Unix.fstat fd).Unix.st_size in
      let header = Bytes.create header_bytes in
      let rec go pos acc =
        if pos >= total then Ok (List.rev acc)
        else begin
          ignore (Unix.lseek fd pos Unix.SEEK_SET);
          let got = really_read fd header ~pos:0 ~len:header_bytes in
          match
            parse_header ~pos ~total (Bytes.sub_string header 0 got)
          with
          | Error e -> Error e
          | Ok (n, seg_len) -> (
            match map_segment fd ~pos ~n with
            | Error e -> Error e
            | Ok batch -> go (pos + seg_len) (batch :: acc))
        end
      in
      go 0 [])

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_file path =
  try
    if mmap_enabled () then map_file path else of_string (read_all path)
  with
  | Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "%s: %s" path (Unix.error_message err))
  | Sys_error e -> Error e

let batch_of_file path = Result.map B.concat (read_file path)

let batch_of_string s = Result.map B.concat (of_string s)
