(* Columnar on-disk trace segments.

   A v2 segment is a fixed 128-byte header followed by the batch
   columns, stored whole and naturally aligned, little-endian:

     offset 0    magic (8 bytes, "\xD7DFSC\x02\x00\x00")
     offset 8    record count n          (int64 LE)
     offset 16   segment length in bytes (int64 LE, header included)
     offset 24   header CRC-32C          (uint32 LE, over the 128
                 header bytes with this field zeroed)
     offset 28   column CRC-32C[11]      (uint32 LE each: times,
                 servers, clients, users, pids, files, col_a..col_d,
                 tags)
     offset 72   reserved (zeros to offset 128)
     offset 128  times    float64[n]   -- 8-byte aligned
     + 8n        servers  int32[n]     -- 4-byte aligned (8n is)
     + 4n each   clients, users, pids, files,
                 col_a, col_b, col_c, col_d (int32[n])
     + 44n       tags     uint8[n]
     ...         zero padding to the next multiple of 8

   v1 segments (magic "\xD7DFSC\x01\x00\x00", 64-byte header, no
   checksums) remain readable; files may freely mix versions, so old
   archives and spills keep working.

   Because every column is a contiguous slab at a naturally aligned
   offset and the segment length is a multiple of 8, a reader can serve
   the columns zero-copy: each column becomes a Bigarray window onto the
   [Unix.map_file]'d file, with no per-record decode.  Checksums are
   verified once per column over the same mapped window (or the in-memory
   string on the portable path), so the hot analysis path stays
   zero-copy; a per-process cache of already-verified files keeps
   repeated reads of the same unchanged file from re-hashing it.

   The zero-copy path reinterprets raw bytes in host byte order, so it
   is only enabled on little-endian hosts (and can be forced off with
   DFS_MMAP=0); the portable fallback decodes the same bytes with
   explicit little-endian reads into fresh Bigarrays — still a bulk
   column copy, never a per-record decode. *)

module A1 = Bigarray.Array1
module B = Record_batch
module Crc32c = Dfs_util.Crc32c

let magic = "\xD7DFSC\x02\x00\x00"

let magic_v1 = "\xD7DFSC\x01\x00\x00"

let header_bytes = 128

let header_bytes_v1 = 64

let bytes_per_record = 45

let segment_bytes_v ~hdr ~count = (hdr + (bytes_per_record * count) + 7) land lnot 7

let segment_bytes ~count = segment_bytes_v ~hdr:header_bytes ~count

let is_segment s =
  String.length s >= 8
  && (String.sub s 0 8 = magic || String.sub s 0 8 = magic_v1)

let segment_version s =
  if String.length s < 8 then None
  else if String.sub s 0 8 = magic then Some 2
  else if String.sub s 0 8 = magic_v1 then Some 1
  else None

let mmap_enabled () =
  (not Sys.big_endian)
  &&
  match Sys.getenv_opt "DFS_MMAP" with
  | Some ("0" | "false" | "no" | "off") -> false
  | Some _ | None -> true

let m_encoded_bytes = Dfs_obs.Metrics.counter "trace.encoded_bytes"

let m_mapped_bytes = Dfs_obs.Metrics.counter "trace.mapped_bytes"

let m_skipped = Dfs_obs.Metrics.counter "trace.decode.skipped_records"

let m_verified_bytes = Dfs_obs.Metrics.counter "trace.checksum.verified_bytes"

(* Column byte offsets relative to the segment start, for a segment
   whose header occupies [hdr] bytes. *)
let off_times ~hdr _n = hdr

let off_servers ~hdr n = hdr + (8 * n)

let off_clients ~hdr n = off_servers ~hdr n + (4 * n)

let off_users ~hdr n = off_clients ~hdr n + (4 * n)

let off_pids ~hdr n = off_users ~hdr n + (4 * n)

let off_files ~hdr n = off_pids ~hdr n + (4 * n)

let off_col_a ~hdr n = off_files ~hdr n + (4 * n)

let off_col_b ~hdr n = off_col_a ~hdr n + (4 * n)

let off_col_c ~hdr n = off_col_b ~hdr n + (4 * n)

let off_col_d ~hdr n = off_col_c ~hdr n + (4 * n)

let off_tags ~hdr n = off_col_d ~hdr n + (4 * n)

let n_columns = 11

let column_names =
  [| "times"; "servers"; "clients"; "users"; "pids"; "files"; "col_a";
     "col_b"; "col_c"; "col_d"; "tags" |]

(* (relative offset, byte length) of column [i] in declaration order. *)
let column_extent ~hdr ~n i =
  match i with
  | 0 -> (off_times ~hdr n, 8 * n)
  | 1 -> (off_servers ~hdr n, 4 * n)
  | 2 -> (off_clients ~hdr n, 4 * n)
  | 3 -> (off_users ~hdr n, 4 * n)
  | 4 -> (off_pids ~hdr n, 4 * n)
  | 5 -> (off_files ~hdr n, 4 * n)
  | 6 -> (off_col_a ~hdr n, 4 * n)
  | 7 -> (off_col_b ~hdr n, 4 * n)
  | 8 -> (off_col_c ~hdr n, 4 * n)
  | 9 -> (off_col_d ~hdr n, 4 * n)
  | 10 -> (off_tags ~hdr n, n)
  | _ -> invalid_arg "Segment.column_extent"

let header_crc_off = 24

let col_crc_off i = 28 + (4 * i)

let get_u32 s off = Int32.to_int (String.get_int32_le s off) land 0xFFFFFFFF

(* CRC of the 128 v2 header bytes with the header-CRC field zeroed. *)
let header_crc_of_string header ~pos =
  let c = Crc32c.update_string Crc32c.init header ~pos ~len:header_crc_off in
  let c = Crc32c.update_string c "\000\000\000\000" ~pos:0 ~len:4 in
  let c =
    Crc32c.update_string c header
      ~pos:(pos + header_crc_off + 4)
      ~len:(header_bytes - header_crc_off - 4)
  in
  Crc32c.finalize c

(* -- encoding ------------------------------------------------------------- *)

let encode_batch ?(version = 2) batch =
  let hdr, mg =
    match version with
    | 2 -> (header_bytes, magic)
    | 1 -> (header_bytes_v1, magic_v1)
    | v -> invalid_arg (Printf.sprintf "Segment.encode_batch: version %d" v)
  in
  let n = B.length batch in
  let seg_len = segment_bytes_v ~hdr ~count:n in
  let buf = Bytes.make seg_len '\000' in
  Bytes.blit_string mg 0 buf 0 (String.length mg);
  Bytes.set_int64_le buf 8 (Int64.of_int n);
  Bytes.set_int64_le buf 16 (Int64.of_int seg_len);
  let t0 = off_times ~hdr n in
  for i = 0 to n - 1 do
    Bytes.set_int64_le buf
      (t0 + (8 * i))
      (Int64.bits_of_float (B.Unsafe.time batch i))
  done;
  let put_i32 base get =
    for i = 0 to n - 1 do
      Bytes.set_int32_le buf (base + (4 * i)) (Int32.of_int (get batch i))
    done
  in
  put_i32 (off_servers ~hdr n) B.Unsafe.server;
  put_i32 (off_clients ~hdr n) B.Unsafe.client;
  put_i32 (off_users ~hdr n) B.Unsafe.user;
  put_i32 (off_pids ~hdr n) B.Unsafe.pid;
  put_i32 (off_files ~hdr n) B.Unsafe.file;
  put_i32 (off_col_a ~hdr n) B.Unsafe.a;
  put_i32 (off_col_b ~hdr n) B.Unsafe.b;
  put_i32 (off_col_c ~hdr n) B.Unsafe.c;
  put_i32 (off_col_d ~hdr n) B.Unsafe.d;
  let tg = off_tags ~hdr n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set buf (tg + i) (Char.unsafe_chr (B.Unsafe.raw_tag batch i))
  done;
  if version = 2 then begin
    (* Transient string views of [buf] for hashing; each view is only
       read inside its call, and all writes below target header bytes
       that no later view covers with stale expectations. *)
    for i = 0 to n_columns - 1 do
      let off, len = column_extent ~hdr ~n i in
      let crc =
        Crc32c.finalize
          (Crc32c.update_string Crc32c.init (Bytes.unsafe_to_string buf)
             ~pos:off ~len)
      in
      Bytes.set_int32_le buf (col_crc_off i) (Int32.of_int crc)
    done;
    let hcrc = header_crc_of_string (Bytes.unsafe_to_string buf) ~pos:0 in
    Bytes.set_int32_le buf header_crc_off (Int32.of_int hcrc)
  end;
  Dfs_obs.Metrics.add m_encoded_bytes seg_len;
  Bytes.unsafe_to_string buf

let write_batch ?version oc batch =
  let s = encode_batch ?version batch in
  output_string oc s;
  String.length s

(* -- header parsing -------------------------------------------------------- *)

type hdr_info = {
  version : int;
  hdr : int;  (** header size in bytes for this segment's version *)
  n : int;
  seg_len : int;
  col_crcs : int array option;  (** stored column CRCs, v2 only *)
}

(* [header] is the first [min header_bytes (total - pos)] bytes of a
   segment that starts at absolute offset [pos] in a source of [total]
   bytes.  Validates magic, header checksum (v2, when [verify]), extents
   and alignment. *)
let parse_header ~verify ~pos ~total header =
  let hlen = String.length header in
  let version =
    if hlen >= 8 && String.sub header 0 8 = magic then Some 2
    else if hlen >= 8 && String.sub header 0 8 = magic_v1 then Some 1
    else None
  in
  match version with
  | None ->
    if hlen < 8 then
      Error (Printf.sprintf "byte %d: truncated segment header" pos)
    else
      Error
        (Printf.sprintf "byte %d: bad segment magic %S" pos
           (String.sub header 0 8))
  | Some version ->
    let hdr = if version = 2 then header_bytes else header_bytes_v1 in
    if hlen < hdr then
      Error (Printf.sprintf "byte %d: truncated segment header" pos)
    else begin
      let stored_hcrc_err =
        if version = 2 && verify then begin
          let stored = get_u32 header header_crc_off in
          let got = header_crc_of_string header ~pos:0 in
          if stored <> got then
            Some
              (Printf.sprintf
                 "byte %d: header checksum mismatch (stored 0x%08x, computed \
                  0x%08x)"
                 (pos + header_crc_off) stored got)
          else None
        end
        else None
      in
      match stored_hcrc_err with
      | Some e -> Error e
      | None ->
        let n64 = String.get_int64_le header 8 in
        let len64 = String.get_int64_le header 16 in
        if
          Int64.compare n64 0L < 0
          || Int64.compare n64 (Int64.of_int max_int) > 0
        then Error (Printf.sprintf "byte %d: bad record count %Ld" pos n64)
        else begin
          let n = Int64.to_int n64 in
          let seg_len = Int64.to_int len64 in
          if seg_len <> segment_bytes_v ~hdr ~count:n then
            Error
              (Printf.sprintf
                 "byte %d: misaligned segment (length %d for %d records, \
                  want %d)"
                 pos seg_len n (segment_bytes_v ~hdr ~count:n))
          else if pos + seg_len > total then
            Error
              (Printf.sprintf
                 "byte %d: truncated segment (%d bytes declared, %d \
                  available)"
                 pos seg_len (total - pos))
          else begin
            let col_crcs =
              if version = 2 then
                Some (Array.init n_columns (fun i -> get_u32 header (col_crc_off i)))
              else None
            in
            Ok { version; hdr; n; seg_len; col_crcs }
          end
        end
    end

let check_tags ~pos get n =
  let bad = ref None in
  (try
     for i = 0 to n - 1 do
       let raw = get i in
       if not (Binary_codec.tag_ok raw) then begin
         bad := Some (Printf.sprintf "byte %d: malformed tag 0x%02x" (pos + i) raw);
         raise Exit
       end
     done
   with Exit -> ());
  match !bad with None -> Ok () | Some e -> Error e

(* -- column checksum verification ------------------------------------------ *)

(* [crc_of ~off ~len] hashes the column extent at segment-relative
   [off]; [abs] converts a relative offset to a source offset for the
   error message. *)
let verify_columns ~abs ~hdr ~n ~crc_of stored =
  let rec loop i =
    if i >= n_columns then Ok ()
    else begin
      let off, len = column_extent ~hdr ~n i in
      let got = crc_of ~off ~len in
      if got <> stored.(i) then
        Error
          (Printf.sprintf
             "byte %d: checksum mismatch in column %s (stored 0x%08x, \
              computed 0x%08x)"
             (abs off) column_names.(i) stored.(i) got)
      else loop (i + 1)
    end
  in
  let r = loop 0 in
  Dfs_obs.Metrics.add m_verified_bytes (bytes_per_record * n);
  r

(* -- verified-file cache --------------------------------------------------- *)

(* Checksums are verified once per file per process: after a file scans
   clean with verification on, its (size, mtime) is remembered and later
   reads of the unchanged file skip the CRC work (structure and tag
   checks still run).  fsck bypasses this cache. *)
let verified_cache : (string, int * float) Hashtbl.t = Hashtbl.create 64

let cache_mutex = Mutex.create ()

let cache_key path =
  match Unix.stat path with
  | { Unix.st_size; st_mtime; _ } -> Some (st_size, st_mtime)
  | exception Unix.Unix_error _ -> None

let cache_mem path =
  match cache_key path with
  | None -> false
  | Some key ->
    Mutex.lock cache_mutex;
    let hit = Hashtbl.find_opt verified_cache path = Some key in
    Mutex.unlock cache_mutex;
    hit

let cache_add path =
  match cache_key path with
  | None -> ()
  | Some key ->
    Mutex.lock cache_mutex;
    Hashtbl.replace verified_cache path key;
    Mutex.unlock cache_mutex

let cache_clear () =
  Mutex.lock cache_mutex;
  Hashtbl.reset verified_cache;
  Mutex.unlock cache_mutex

(* -- portable (copy) decode ------------------------------------------------ *)

let decode_segment_of_string s ~pos ~hdr ~n =
  let times = A1.create Bigarray.float64 Bigarray.c_layout n in
  let t0 = pos + off_times ~hdr n in
  for i = 0 to n - 1 do
    A1.unsafe_set times i
      (Int64.float_of_bits (String.get_int64_le s (t0 + (8 * i))))
  done;
  let read_i32 base =
    let col = A1.create Bigarray.int32 Bigarray.c_layout n in
    for i = 0 to n - 1 do
      A1.unsafe_set col i (String.get_int32_le s (base + (4 * i)))
    done;
    col
  in
  let servers = read_i32 (pos + off_servers ~hdr n) in
  let clients = read_i32 (pos + off_clients ~hdr n) in
  let users = read_i32 (pos + off_users ~hdr n) in
  let pids = read_i32 (pos + off_pids ~hdr n) in
  let files = read_i32 (pos + off_files ~hdr n) in
  let col_a = read_i32 (pos + off_col_a ~hdr n) in
  let col_b = read_i32 (pos + off_col_b ~hdr n) in
  let col_c = read_i32 (pos + off_col_c ~hdr n) in
  let col_d = read_i32 (pos + off_col_d ~hdr n) in
  let tags = A1.create Bigarray.int8_unsigned Bigarray.c_layout n in
  let tg = pos + off_tags ~hdr n in
  for i = 0 to n - 1 do
    A1.unsafe_set tags i (Char.code (String.unsafe_get s (tg + i)))
  done;
  Result.map
    (fun () ->
      Dfs_obs.Metrics.add m_skipped n;
      B.of_columns ~len:n ~times ~servers ~clients ~users ~pids ~files ~tags
        ~col_a ~col_b ~col_c ~col_d)
    (check_tags ~pos:(pos + off_tags ~hdr n)
       (fun i -> A1.unsafe_get tags i)
       n)

(* -- scan core ------------------------------------------------------------- *)

type scan_error = { offset : int; reason : string }

type scan = {
  batches : B.t list;
  records : int;
  valid_bytes : int;
  total_bytes : int;
  error : scan_error option;
}

let scan_string ?(verify = true) s =
  let total = String.length s in
  let rec go pos acc records =
    if pos >= total then
      { batches = List.rev acc; records; valid_bytes = pos;
        total_bytes = total; error = None }
    else begin
      let stop reason =
        { batches = List.rev acc; records; valid_bytes = pos;
          total_bytes = total; error = Some { offset = pos; reason } }
      in
      let header = String.sub s pos (min header_bytes (total - pos)) in
      match parse_header ~verify ~pos ~total header with
      | Error reason -> stop reason
      | Ok h -> (
        let cols_ok =
          match (verify, h.col_crcs) with
          | true, Some stored ->
            verify_columns
              ~abs:(fun off -> pos + off)
              ~hdr:h.hdr ~n:h.n
              ~crc_of:(fun ~off ~len ->
                Crc32c.string_sub s ~pos:(pos + off) ~len)
              stored
          | _ -> Ok ()
        in
        match cols_ok with
        | Error reason -> stop reason
        | Ok () -> (
          match decode_segment_of_string s ~pos ~hdr:h.hdr ~n:h.n with
          | Error reason -> stop reason
          | Ok batch -> go (pos + h.seg_len) (batch :: acc) (records + h.n)))
    end
  in
  go 0 [] 0

(* -- zero-copy (mmap) read ------------------------------------------------- *)

(* [Unix.map_file] accepts arbitrary byte offsets (it aligns the mapping
   internally), and the mapping outlives the descriptor, so each column
   becomes its own window and the fd is closed right after the loop. *)
let map_col (type a b) fd (kind : (a, b) Bigarray.kind) ~pos n :
    (a, b, Bigarray.c_layout) A1.t =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int pos) kind Bigarray.c_layout false
       [| n |])

let map_segment fd ~pos ~hdr ~n =
  if n = 0 then
    Ok
      (B.of_columns ~len:0
         ~times:(A1.create Bigarray.float64 Bigarray.c_layout 0)
         ~servers:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~clients:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~users:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~pids:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~files:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~tags:(A1.create Bigarray.int8_unsigned Bigarray.c_layout 0)
         ~col_a:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~col_b:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~col_c:(A1.create Bigarray.int32 Bigarray.c_layout 0)
         ~col_d:(A1.create Bigarray.int32 Bigarray.c_layout 0))
  else begin
    let i32 off = map_col fd Bigarray.int32 ~pos:(pos + off) n in
    let times = map_col fd Bigarray.float64 ~pos:(pos + off_times ~hdr n) n in
    let servers = i32 (off_servers ~hdr n) in
    let clients = i32 (off_clients ~hdr n) in
    let users = i32 (off_users ~hdr n) in
    let pids = i32 (off_pids ~hdr n) in
    let files = i32 (off_files ~hdr n) in
    let col_a = i32 (off_col_a ~hdr n) in
    let col_b = i32 (off_col_b ~hdr n) in
    let col_c = i32 (off_col_c ~hdr n) in
    let col_d = i32 (off_col_d ~hdr n) in
    let tags = map_col fd Bigarray.int8_unsigned ~pos:(pos + off_tags ~hdr n) n in
    Dfs_obs.Metrics.add m_mapped_bytes (bytes_per_record * n);
    Result.map
      (fun () ->
        Dfs_obs.Metrics.add m_skipped n;
        B.of_columns ~len:n ~times ~servers ~clients ~users ~pids ~files
          ~tags ~col_a ~col_b ~col_c ~col_d)
      (check_tags ~pos:(pos + off_tags ~hdr n)
         (fun i -> A1.unsafe_get tags i)
         n)
  end

let really_read fd buf ~pos ~len =
  let got = ref 0 and eof = ref false in
  while !got < len && not !eof do
    let k = Unix.read fd buf (pos + !got) (len - !got) in
    if k = 0 then eof := true else got := !got + k
  done;
  !got

let scan_mapped fd ~verify =
  let total = (Unix.fstat fd).Unix.st_size in
  let header = Bytes.create header_bytes in
  let rec go pos acc records =
    if pos >= total then
      { batches = List.rev acc; records; valid_bytes = pos;
        total_bytes = total; error = None }
    else begin
      let stop reason =
        { batches = List.rev acc; records; valid_bytes = pos;
          total_bytes = total; error = Some { offset = pos; reason } }
      in
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      let got = really_read fd header ~pos:0 ~len:header_bytes in
      match parse_header ~verify ~pos ~total (Bytes.sub_string header 0 got) with
      | Error reason -> stop reason
      | Ok h -> (
        let cols_ok =
          match (verify, h.col_crcs) with
          | true, Some stored ->
            (* One byte window over the whole segment serves all eleven
               column hashes without copying. *)
            let win = map_col fd Bigarray.int8_unsigned ~pos h.seg_len in
            verify_columns
              ~abs:(fun off -> pos + off)
              ~hdr:h.hdr ~n:h.n
              ~crc_of:(fun ~off ~len -> Crc32c.bigstring_sub win ~pos:off ~len)
              stored
          | _ -> Ok ()
        in
        match cols_ok with
        | Error reason -> stop reason
        | Ok () -> (
          match map_segment fd ~pos ~hdr:h.hdr ~n:h.n with
          | Error reason -> stop reason
          | Ok batch -> go (pos + h.seg_len) (batch :: acc) (records + h.n)))
    end
  in
  go 0 [] 0

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file ?(verify = true) path =
  try
    if mmap_enabled () then begin
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> Ok (scan_mapped fd ~verify))
    end
    else Ok (scan_string ~verify (read_all path))
  with
  | Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "%s: %s" path (Unix.error_message err))
  | Sys_error e -> Error e

(* -- reading with a corruption policy -------------------------------------- *)

let apply_policy ~on_corruption ~source scan =
  match scan.error with
  | None -> Ok scan.batches
  | Some { offset = _; reason } -> (
    match (on_corruption : Corruption.policy) with
    | Corruption.Fail -> Error reason
    | Corruption.Salvage ->
      Corruption.note ~source ~salvaged:scan.records reason;
      Ok scan.batches)

let of_string ?(on_corruption = Corruption.Fail) s =
  apply_policy ~on_corruption ~source:"<segment string>"
    (scan_string ~verify:true s)

let read_file ?(on_corruption = Corruption.Fail) path =
  let verify = not (cache_mem path) in
  match scan_file ~verify path with
  | Error _ as e -> e
  | Ok scan ->
    if verify && scan.error = None then cache_add path;
    apply_policy ~on_corruption ~source:path scan

let batch_of_file ?on_corruption path =
  Result.map B.concat (read_file ?on_corruption path)

let batch_of_string ?on_corruption s =
  Result.map B.concat (of_string ?on_corruption s)
