(** Merging the per-server traces into one time-ordered stream.

    Mirrors Section 3 of the paper: "the traces included enough timing
    information to merge the traces from the different servers into a
    single ordered list of records", after removing the records caused by
    writing the trace files themselves and by the nightly backup. *)

val merge : Record.t list list -> Record.t list
(** K-way merge of per-server traces, each already sorted by time.
    Ties are broken by server id, so the result is deterministic. *)

val scrub : self_users:Ids.User.Set.t -> Record.t list -> Record.t list
(** Drop records belonging to infrastructure users (the trace-collection
    daemon, the nightly backup). *)

val is_sorted : Record.t list -> bool
(** True when records are in non-decreasing time order. *)

val merge_iter :
  ?on_corruption:Corruption.policy ->
  Sink.chunks list ->
  emit:(Record_batch.t -> int -> unit) ->
  unit
(** Streaming k-way merge over chunked per-server traces.  Each source
    must be time-sorted; [emit] receives [(batch, index)] cursors in
    global time order (ties broken by server id, matching {!merge}).
    Only one chunk per source is resident at a time.  [on_corruption]
    governs spilled-chunk loads (see {!Sink.load_chunk}). *)

val merge_chunks :
  ?on_corruption:Corruption.policy ->
  ?chunk_records:int ->
  ?spill:Sink.spill ->
  ?scrub:Ids.User.Set.t ->
  Sink.chunks list ->
  Sink.chunks
(** {!merge_iter} writing through a fresh {!Sink}: merge the sources into
    one chunked time-ordered trace, dropping records whose user is in
    [scrub] (infrastructure users) along the way.  Peak memory is one
    open output chunk plus one loaded chunk per source, regardless of
    trace length. *)
