(** Compact binary trace format.

    Layout: a 6-byte magic+version header ({!magic}), then one variable
    length record after another with no framing:

    {v tag byte        kind + flag bits (Record_batch tag layout)
       time            varint64 of zigzag(delta of IEEE-754 bits vs prev)
       server..file    5 zigzag varints, each a delta vs the previous record
       payload         1-4 zigzag varints, count fixed by the kind v}

    Encoding the time as a delta of the float's bit pattern is lossless
    (round-trips are exact, unlike the text codec's [%.6f]) and small for
    sorted traces: doubles of nearby magnitude share high bits, so the
    bit delta of consecutive timestamps is a small integer. *)

val magic : string
(** ["\xD7DFSB\x01"] — an invalid-UTF-8 first byte so a binary trace can
    never be confused with the text header, then format id and version. *)

val is_binary : string -> bool
(** Does the buffer start with {!magic}? (Prefix check only.) *)

val tag_ok : int -> bool
(** Is this a well-formed tag byte (known kind, only the flag bits that
    kind may carry, valid open mode)? Shared with [Segment] validation. *)

(** Streaming encoder; carries the delta state between records. *)
module Encoder : sig
  type t

  val create : unit -> t

  val encode : t -> Record.t -> string
  (** Bytes for one record (header not included). Records must be encoded
      in the order they will be decoded. *)
end

val encode_batch : Record_batch.t -> string
(** Whole trace as one string, magic included. *)

val decode_string : string -> (Record_batch.t, string) result
(** Decode a whole binary trace (magic included). Reports truncation,
    bad magic, and malformed tag bytes with their byte offset. *)

type partial = {
  batch : Record_batch.t;  (** the longest decodable record prefix *)
  consumed : int;
      (** bytes of that prefix, magic included; salvage truncates
          here *)
  error : (int * string) option;
      (** offset and one-line reason of the first damage, [None] when
          the stream is clean *)
}

val decode_string_partial : string -> partial
(** Like {!decode_string}, but never fails: damaged streams yield the
    decodable prefix plus the diagnostic.  The format has no framing,
    so [consumed] advances only past complete records. *)
