(** Kernel-call trace records.

    These mirror the events the paper's instrumented Sprite kernels logged
    (Section 3): opens, closes, repositions (lseek), deletes, truncates,
    directory reads, and the read/write events on files undergoing
    concurrent write-sharing that feed the consistency simulations.

    As in the paper, individual read/write calls are {e not} logged;
    instead positions are recorded at open/reposition/close time, which is
    enough to deduce the exact range of bytes accessed, and each close
    carries the access's total bytes read/written. *)

type open_mode = Read_only | Write_only | Read_write

val pp_open_mode : Format.formatter -> open_mode -> unit

type kind =
  | Open of {
      mode : open_mode;
      created : bool;  (** the open created the file *)
      is_dir : bool;
      size : int;  (** file size at open time *)
      start_pos : int;  (** initial offset (non-zero for append opens) *)
    }
  | Close of {
      size : int;  (** file size at close time *)
      final_pos : int;  (** file offset at close time *)
      bytes_read : int;
      bytes_written : int;
    }
  | Reposition of { pos_before : int; pos_after : int }
  | Delete of { size : int; is_dir : bool }
  | Truncate of { old_size : int }  (** truncation to zero length *)
  | Dir_read of { bytes : int }  (** user-level directory data read *)
  | Shared_read of { offset : int; length : int }
  | Shared_write of { offset : int; length : int }

type t = {
  time : float;  (** seconds since trace start *)
  server : Ids.Server.t;  (** server that logged the record *)
  client : Ids.Client.t;
  user : Ids.User.t;
  pid : Ids.Process.t;
  migrated : bool;  (** issued by a migrated process *)
  file : Ids.File.t;
  kind : kind;
}

val kind_name : kind -> string
(** Short tag, also used by the codec ("open", "close", ...). *)

val compare_time : t -> t -> int
(** Order by time, then by logging server (merge tie-break). *)

val max_field : int
(** Largest id or payload value a record may carry ([0x7FFF_FFFF]):
    the columnar format stores them in int32 columns. *)

val validate : t -> (t, string) result
(** [validate r] is [Ok r] when the record is well-formed — finite,
    non-negative time; ids, sizes, positions, offsets and byte counts
    within [0 .. max_field] — and [Error reason] (one line, no context
    prefix) otherwise.  Enforced by the text and binary readers and by
    every importer, so hostile foreign traces cannot poison sorting,
    the zigzag-delta binary encoding, or the analyses. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
