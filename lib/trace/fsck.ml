(* Trace-file verification and repair.

   [check] classifies a file by content (the same magic sniff the
   readers use), walks it with the format's validator, and reports a
   machine-readable verdict: how many records are intact, how long the
   valid prefix is, and what the first damage looks like.  [--repair]
   truncates a damaged file to its longest valid prefix — whole
   segments (columnar), whole records (binary), whole lines (text) —
   and removes orphaned [.tmp] files left by an interrupted atomic
   seal.

   Files that look like none of the three trace formats are reported as
   [Unknown] and never touched: a repair tool that truncates files it
   cannot parse is worse than the crash it cleans up after. *)

type status =
  | Clean
  | Corrupt
  | Repaired
  | Orphan_tmp
  | Unknown
  | Io_error

let status_to_string = function
  | Clean -> "ok"
  | Corrupt -> "corrupt"
  | Repaired -> "repaired"
  | Orphan_tmp -> "orphan-tmp"
  | Unknown -> "unknown"
  | Io_error -> "error"

type verdict = {
  path : string;
  format : string;  (* columnar | binary | text | tmp | unknown *)
  status : status;
  records : int;
  valid_bytes : int;
  total_bytes : int;
  reason : string option;
  repaired : bool;
}

let verdict_to_json v =
  Dfs_obs.Json.Obj
    [
      ("path", Dfs_obs.Json.String v.path);
      ("format", Dfs_obs.Json.String v.format);
      ("status", Dfs_obs.Json.String (status_to_string v.status));
      ("records", Dfs_obs.Json.Int v.records);
      ("valid_bytes", Dfs_obs.Json.Int v.valid_bytes);
      ("total_bytes", Dfs_obs.Json.Int v.total_bytes);
      ( "reason",
        match v.reason with
        | None -> Dfs_obs.Json.Null
        | Some r -> Dfs_obs.Json.String r );
      ("repaired", Dfs_obs.Json.Bool v.repaired);
    ]

(* -- per-format validation ------------------------------------------------- *)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* (records, valid_bytes, error) for a text trace: the valid prefix ends
   after the last well-formed line's newline. *)
let check_text s =
  let total = String.length s in
  let line_end pos =
    match String.index_from_opt s pos '\n' with
    | Some nl -> (String.sub s pos (nl - pos), nl + 1)
    | None -> (String.sub s pos (total - pos), total)
  in
  let header, body = line_end 0 in
  if header <> Codec.header then
    (0, 0, Some (Printf.sprintf "line 1: bad trace header %S" header))
  else begin
    let records = ref 0
    and valid = ref body
    and line_no = ref 1
    and err = ref None in
    let pos = ref body in
    while !err = None && !pos < total do
      let line, next = line_end !pos in
      incr line_no;
      if String.equal line "" then begin
        valid := next;
        pos := next
      end
      else
        match Codec.decode line with
        | Ok _ ->
          incr records;
          valid := next;
          pos := next
        | Error e ->
          err := Some (Printf.sprintf "line %d: %s" !line_no e)
    done;
    (!records, !valid, !err)
  end

(* A structural verdict for one file, before any repair. *)
let check path =
  match Unix.stat path with
  | exception Unix.Unix_error (e, _, _) ->
    {
      path;
      format = "unknown";
      status = Io_error;
      records = 0;
      valid_bytes = 0;
      total_bytes = 0;
      reason = Some (Unix.error_message e);
      repaired = false;
    }
  | { Unix.st_size = total_bytes; _ } -> (
    if Durable.is_tmp path then
      {
        path;
        format = "tmp";
        status = Orphan_tmp;
        records = 0;
        valid_bytes = 0;
        total_bytes;
        reason = Some "orphaned temp file from an interrupted seal";
        repaired = false;
      }
    else
      match
        let prefix =
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let n = min 8 (in_channel_length ic) in
              really_input_string ic n)
        in
        if Segment.is_segment prefix then `Columnar
        else if Binary_codec.is_binary prefix then `Binary
        else `Maybe_text
      with
      | exception Sys_error e ->
        {
          path;
          format = "unknown";
          status = Io_error;
          records = 0;
          valid_bytes = 0;
          total_bytes;
          reason = Some e;
          repaired = false;
        }
      | `Columnar -> (
        match Segment.scan_file ~verify:true path with
        | Error e ->
          {
            path;
            format = "columnar";
            status = Io_error;
            records = 0;
            valid_bytes = 0;
            total_bytes;
            reason = Some e;
            repaired = false;
          }
        | Ok scan ->
          {
            path;
            format = "columnar";
            status = (if scan.Segment.error = None then Clean else Corrupt);
            records = scan.Segment.records;
            valid_bytes = scan.Segment.valid_bytes;
            total_bytes = scan.Segment.total_bytes;
            reason =
              Option.map
                (fun e -> e.Segment.reason)
                scan.Segment.error;
            repaired = false;
          })
      | `Binary ->
        let p = Binary_codec.decode_string_partial (read_all path) in
        {
          path;
          format = "binary";
          status =
            (if p.Binary_codec.error = None then Clean else Corrupt);
          records = Record_batch.length p.Binary_codec.batch;
          valid_bytes = p.Binary_codec.consumed;
          total_bytes;
          reason = Option.map snd p.Binary_codec.error;
          repaired = false;
        }
      | `Maybe_text ->
        let s = read_all path in
        (* Only a file that actually starts with the text trace header
           is ours to verify (and possibly truncate); anything else is
           reported unknown and never touched. *)
        let hdr = Codec.header in
        if
          String.length s >= String.length hdr
          && String.sub s 0 (String.length hdr) = hdr
          && (String.length s = String.length hdr
             || s.[String.length hdr] = '\n')
        then begin
          let records, valid_bytes, err = check_text s in
          {
            path;
            format = "text";
            status = (if err = None then Clean else Corrupt);
            records;
            valid_bytes;
            total_bytes;
            reason = err;
            repaired = false;
          }
        end
        else
          {
            path;
            format = "unknown";
            status = Unknown;
            records = 0;
            valid_bytes = 0;
            total_bytes;
            reason = Some "not a recognized trace format";
            repaired = false;
          })

(* -- repair ---------------------------------------------------------------- *)

let fsync_path path =
  match Unix.openfile path [ Unix.O_WRONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let truncate_to path len =
  Io_retry.run ~op:"fsck-repair" ~path (fun () ->
      Unix.truncate path len;
      fsync_path path;
      Durable.fsync_dir (Filename.dirname path))

(* Truncating a columnar file to zero valid bytes would leave an empty
   file that no longer sniffs as columnar; an empty sealed segment keeps
   it self-describing. *)
let rewrite_empty_columnar path =
  ignore
    (Durable.replace ~op:"fsck-repair" ~path (fun oc ->
         output_string oc (Segment.encode_batch (Record_batch.of_list []))))

let repair_verdict v =
  match (v.status, v.format) with
  | Orphan_tmp, _ ->
    Io_retry.run ~op:"fsck-repair" ~path:v.path (fun () ->
        Durable.unlink_noerr v.path;
        Durable.fsync_dir (Filename.dirname v.path));
    { v with status = Repaired; repaired = true }
  | Corrupt, "columnar" ->
    let total_bytes =
      if v.valid_bytes = 0 then begin
        rewrite_empty_columnar v.path;
        Segment.segment_bytes ~count:0
      end
      else begin
        truncate_to v.path v.valid_bytes;
        v.valid_bytes
      end
    in
    Segment.cache_clear ();
    { v with status = Repaired; repaired = true; total_bytes }
  | Corrupt, "binary" ->
    (* Zero valid bytes means even the magic is damaged — but then the
       file would not have sniffed as binary; the prefix always includes
       the magic. *)
    truncate_to v.path v.valid_bytes;
    { v with status = Repaired; repaired = true; total_bytes = v.valid_bytes }
  | Corrupt, "text" ->
    let total_bytes =
      if v.valid_bytes = 0 then begin
        (* header damaged or file empty: a header-only file is the empty
           trace *)
        ignore
          (Durable.replace ~op:"fsck-repair" ~path:v.path (fun oc ->
               output_string oc Codec.header;
               output_char oc '\n'));
        String.length Codec.header + 1
      end
      else begin
        truncate_to v.path v.valid_bytes;
        v.valid_bytes
      end
    in
    { v with status = Repaired; repaired = true; total_bytes }
  | _ -> v

let check_file ?(repair = false) path =
  let v = check path in
  match v.status with
  | (Corrupt | Orphan_tmp) when repair -> (
    match repair_verdict v with
    | v' -> v'
    | exception e ->
      {
        v with
        status = Io_error;
        reason = Some (Printf.sprintf "repair failed: %s" (Printexc.to_string e));
      })
  | _ -> v

(* -- directory expansion --------------------------------------------------- *)

let trace_extensions = [ ".dfsc"; ".dfsb"; ".trace"; ".txt"; ".tmp" ]

let expand_path path =
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.filter_map (fun name ->
           if List.exists (Filename.check_suffix name) trace_extensions then
             Some (Filename.concat path name)
           else None)
  else [ path ]

let check_paths ?repair paths =
  List.concat_map expand_path paths |> List.map (check_file ?repair)

(* Exit code for a verdict set: 0 all clean, 1 corruption was found
   (even if repaired), 2 an I/O error prevented a full answer. *)
let exit_code verdicts =
  List.fold_left
    (fun code v ->
      match v.status with
      | Io_error -> max code 2
      | Corrupt | Repaired | Orphan_tmp | Unknown -> max code 1
      | Clean -> code)
    0 verdicts
