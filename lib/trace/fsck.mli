(** Trace-file verification and repair (the engine behind
    [dfs_repro fsck]).

    Files are classified by content, not extension — the same magic
    sniff the readers use — then walked with the format's validator.
    Repair truncates a damaged file to its longest valid prefix (whole
    segments / records / lines) and removes orphaned [.tmp] files left
    by an interrupted atomic seal; files in none of the three trace
    formats are reported [Unknown] and never modified. *)

type status =
  | Clean  (** fully valid *)
  | Corrupt  (** damage found (and left in place) *)
  | Repaired  (** damage found and the valid prefix kept *)
  | Orphan_tmp  (** leftover [.tmp] from an interrupted seal *)
  | Unknown  (** not a recognized trace format; never repaired *)
  | Io_error  (** could not read (or repair) the file at all *)

val status_to_string : status -> string
(** [ok] / [corrupt] / [repaired] / [orphan-tmp] / [unknown] / [error]. *)

type verdict = {
  path : string;
  format : string;  (** [columnar] / [binary] / [text] / [tmp] / [unknown] *)
  status : status;
  records : int;  (** records in the valid prefix *)
  valid_bytes : int;  (** length of the valid prefix *)
  total_bytes : int;  (** file size (post-repair size when repaired) *)
  reason : string option;  (** first damage, one line, with offset *)
  repaired : bool;
}

val verdict_to_json : verdict -> Dfs_obs.Json.t
(** One machine-readable verdict object (the [fsck] JSONL output). *)

val check_file : ?repair:bool -> string -> verdict
(** Verify one file; with [repair] (default false) also truncate
    corrupt traces to their valid prefix, rewrite an all-invalid
    columnar file as one empty sealed segment, and delete orphan
    [.tmp]s.  Repairs are fsynced (file and directory). *)

val check_paths : ?repair:bool -> string list -> verdict list
(** {!check_file} over each path; directories expand to their
    [.dfsc]/[.dfsb]/[.trace]/[.txt]/[.tmp] entries, sorted. *)

val exit_code : verdict list -> int
(** 0 — everything clean; 1 — corruption, orphans or unknown files
    found (even if repaired); 2 — an I/O error prevented a full
    answer. *)
