type open_mode = Read_only | Write_only | Read_write

let pp_open_mode ppf = function
  | Read_only -> Format.pp_print_string ppf "ro"
  | Write_only -> Format.pp_print_string ppf "wo"
  | Read_write -> Format.pp_print_string ppf "rw"

type kind =
  | Open of {
      mode : open_mode;
      created : bool;
      is_dir : bool;
      size : int;
      start_pos : int;
    }
  | Close of {
      size : int;
      final_pos : int;
      bytes_read : int;
      bytes_written : int;
    }
  | Reposition of { pos_before : int; pos_after : int }
  | Delete of { size : int; is_dir : bool }
  | Truncate of { old_size : int }
  | Dir_read of { bytes : int }
  | Shared_read of { offset : int; length : int }
  | Shared_write of { offset : int; length : int }

type t = {
  time : float;
  server : Ids.Server.t;
  client : Ids.Client.t;
  user : Ids.User.t;
  pid : Ids.Process.t;
  migrated : bool;
  file : Ids.File.t;
  kind : kind;
}

let kind_name = function
  | Open _ -> "open"
  | Close _ -> "close"
  | Reposition _ -> "seek"
  | Delete _ -> "delete"
  | Truncate _ -> "truncate"
  | Dir_read _ -> "dirread"
  | Shared_read _ -> "sread"
  | Shared_write _ -> "swrite"

let compare_time a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Ids.Server.compare a.server b.server

let pp_kind ppf = function
  | Open { mode; created; is_dir; size; start_pos } ->
    Format.fprintf ppf "open(%a%s%s size=%d pos=%d)" pp_open_mode mode
      (if created then " created" else "")
      (if is_dir then " dir" else "")
      size start_pos
  | Close { size; final_pos; bytes_read; bytes_written } ->
    Format.fprintf ppf "close(size=%d pos=%d r=%d w=%d)" size final_pos
      bytes_read bytes_written
  | Reposition { pos_before; pos_after } ->
    Format.fprintf ppf "seek(%d->%d)" pos_before pos_after
  | Delete { size; is_dir } ->
    Format.fprintf ppf "delete(size=%d%s)" size (if is_dir then " dir" else "")
  | Truncate { old_size } -> Format.fprintf ppf "truncate(old=%d)" old_size
  | Dir_read { bytes } -> Format.fprintf ppf "dirread(%d)" bytes
  | Shared_read { offset; length } ->
    Format.fprintf ppf "sread(%d+%d)" offset length
  | Shared_write { offset; length } ->
    Format.fprintf ppf "swrite(%d+%d)" offset length

let pp ppf t =
  Format.fprintf ppf "%.6f %a %a %a %a%s %a %a" t.time Ids.Server.pp t.server
    Ids.Client.pp t.client Ids.User.pp t.user Ids.Process.pp t.pid
    (if t.migrated then "(m)" else "")
    Ids.File.pp t.file pp_kind t.kind

(* Shared input validation for every reader and importer: foreign or
   hand-written traces must not be able to smuggle non-finite times
   (which poison sorting and the zigzag-delta binary encoding),
   negative sizes/offsets/ids, or values past the columnar format's
   int32 columns into the pipeline.  One line, no backtrace — callers
   prepend file/line context. *)
let max_field = 0x7FFF_FFFF

let validate (t : t) =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let non_negative fields k =
    let rec go = function
      | [] -> k ()
      | (name, v) :: rest ->
        if v < 0 then err "negative %s %d in %s record" name v (kind_name t.kind)
        else if v > max_field then
          err "%s %d in %s record exceeds the 32-bit trace format" name v
            (kind_name t.kind)
        else go rest
    in
    go fields
  in
  if not (Float.is_finite t.time) then err "non-finite time %f" t.time
  else if t.time < 0.0 then err "negative time %f" t.time
  else
    non_negative
      [
        ("server id", Ids.Server.to_int t.server);
        ("client id", Ids.Client.to_int t.client);
        ("user id", Ids.User.to_int t.user);
        ("pid", Ids.Process.to_int t.pid);
        ("file id", Ids.File.to_int t.file);
      ]
      (fun () ->
        let payload =
          match t.kind with
          | Open { size; start_pos; _ } ->
            [ ("size", size); ("start_pos", start_pos) ]
          | Close { size; final_pos; bytes_read; bytes_written } ->
            [
              ("size", size);
              ("final_pos", final_pos);
              ("bytes_read", bytes_read);
              ("bytes_written", bytes_written);
            ]
          | Reposition { pos_before; pos_after } ->
            [ ("pos_before", pos_before); ("pos_after", pos_after) ]
          | Delete { size; _ } -> [ ("size", size) ]
          | Truncate { old_size } -> [ ("old_size", old_size) ]
          | Dir_read { bytes } -> [ ("bytes", bytes) ]
          | Shared_read { offset; length } | Shared_write { offset; length } ->
            [ ("offset", offset); ("length", length) ]
        in
        non_negative payload (fun () -> Ok t))

let equal a b =
  Float.equal a.time b.time
  && Ids.Server.equal a.server b.server
  && Ids.Client.equal a.client b.client
  && Ids.User.equal a.user b.user
  && Ids.Process.equal a.pid b.pid
  && Bool.equal a.migrated b.migrated
  && Ids.File.equal a.file b.file
  && a.kind = b.kind
