module A1 = Bigarray.Array1

type f64_col = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

type i32_col = (int32, Bigarray.int32_elt, Bigarray.c_layout) A1.t

type u8_col = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) A1.t

let f64 n : f64_col = A1.create Bigarray.float64 Bigarray.c_layout n

let i32 n : i32_col = A1.create Bigarray.int32 Bigarray.c_layout n

let u8 n : u8_col = A1.create Bigarray.int8_unsigned Bigarray.c_layout n

(* Columns live outside the OCaml heap (Bigarray data is malloc'd), so a
   batch costs a handful of heap words regardless of length and big
   traces stop dominating [Gc] peak-heap statistics. *)
type t = {
  len : int;
  times : f64_col;
  servers : i32_col;
  clients : i32_col;
  users : i32_col;
  pids : i32_col;
  files : i32_col;
  tags : u8_col;
  col_a : i32_col;
  col_b : i32_col;
  col_c : i32_col;
  col_d : i32_col;
}

let length t = t.len

let tag_open = 0

let tag_close = 1

let tag_reposition = 2

let tag_delete = 3

let tag_truncate = 4

let tag_dir_read = 5

let tag_shared_read = 6

let tag_shared_write = 7

let bit_migrated = 0x08

let bit_created = 0x40

let bit_is_dir = 0x80

let mode_shift = 4

(* Ids and payloads are stored as int32; anything wider is rejected
   loudly at append time rather than silently truncated. *)
let i32_min_int = -0x8000_0000

let i32_max_int = 0x7FFF_FFFF

let overflow what v =
  invalid_arg (Printf.sprintf "Record_batch: %s %d overflows int32" what v)

let[@inline] to_i32 what v =
  if v < i32_min_int || v > i32_max_int then overflow what v
  else Int32.of_int v

(* -- accessors ------------------------------------------------------------ *)

(* Every column of a well-formed batch has dimension [len], so the
   Bigarray bounds check in [A1.get] is exactly the batch bounds check;
   [Unsafe] below skips it for loops that already know [0 <= i < len]. *)

let[@inline] time t i = A1.get t.times i

let[@inline] server t i = Int32.to_int (A1.get t.servers i)

let[@inline] client t i = Int32.to_int (A1.get t.clients i)

let[@inline] user t i = Int32.to_int (A1.get t.users i)

let[@inline] pid t i = Int32.to_int (A1.get t.pids i)

let[@inline] file t i = Int32.to_int (A1.get t.files i)

let[@inline] user_id t i = Ids.User.of_int (user t i)

let[@inline] file_id t i = Ids.File.of_int (file t i)

let[@inline] raw_tag t i = A1.get t.tags i

let[@inline] tag t i = raw_tag t i land 0x07

let[@inline] migrated t i = raw_tag t i land bit_migrated <> 0

let mode_of_bits = function
  | 0 -> Record.Read_only
  | 1 -> Record.Write_only
  | 2 -> Record.Read_write
  | n -> invalid_arg (Printf.sprintf "Record_batch: bad open mode bits %d" n)

let mode_to_bits = function
  | Record.Read_only -> 0
  | Record.Write_only -> 1
  | Record.Read_write -> 2

let[@inline] open_mode t i = mode_of_bits ((raw_tag t i lsr mode_shift) land 0x03)

let[@inline] created t i = raw_tag t i land bit_created <> 0

let[@inline] is_dir t i = raw_tag t i land bit_is_dir <> 0

let[@inline] a t i = Int32.to_int (A1.get t.col_a i)

let[@inline] b t i = Int32.to_int (A1.get t.col_b i)

let[@inline] c t i = Int32.to_int (A1.get t.col_c i)

let[@inline] d t i = Int32.to_int (A1.get t.col_d i)

module Unsafe = struct
  let[@inline] time t i = A1.unsafe_get t.times i

  let[@inline] server t i = Int32.to_int (A1.unsafe_get t.servers i)

  let[@inline] client t i = Int32.to_int (A1.unsafe_get t.clients i)

  let[@inline] user t i = Int32.to_int (A1.unsafe_get t.users i)

  let[@inline] pid t i = Int32.to_int (A1.unsafe_get t.pids i)

  let[@inline] file t i = Int32.to_int (A1.unsafe_get t.files i)

  let[@inline] user_id t i = Ids.User.of_int (user t i)

  let[@inline] file_id t i = Ids.File.of_int (file t i)

  let[@inline] raw_tag t i = A1.unsafe_get t.tags i

  let[@inline] tag t i = raw_tag t i land 0x07

  let[@inline] migrated t i = raw_tag t i land bit_migrated <> 0

  let[@inline] open_mode t i =
    mode_of_bits ((raw_tag t i lsr mode_shift) land 0x03)

  let[@inline] created t i = raw_tag t i land bit_created <> 0

  let[@inline] is_dir t i = raw_tag t i land bit_is_dir <> 0

  let[@inline] a t i = Int32.to_int (A1.unsafe_get t.col_a i)

  let[@inline] b t i = Int32.to_int (A1.unsafe_get t.col_b i)

  let[@inline] c t i = Int32.to_int (A1.unsafe_get t.col_c i)

  let[@inline] d t i = Int32.to_int (A1.unsafe_get t.col_d i)
end

(* -- packing ------------------------------------------------------------- *)

let pack_kind kind ~migrated =
  let mig = if migrated then bit_migrated else 0 in
  match (kind : Record.kind) with
  | Open { mode; created; is_dir; size; start_pos } ->
    let tag =
      tag_open lor mig
      lor (mode_to_bits mode lsl mode_shift)
      lor (if created then bit_created else 0)
      lor if is_dir then bit_is_dir else 0
    in
    (tag, size, start_pos, 0, 0)
  | Close { size; final_pos; bytes_read; bytes_written } ->
    (tag_close lor mig, size, final_pos, bytes_read, bytes_written)
  | Reposition { pos_before; pos_after } ->
    (tag_reposition lor mig, pos_before, pos_after, 0, 0)
  | Delete { size; is_dir } ->
    (tag_delete lor mig lor (if is_dir then bit_is_dir else 0), size, 0, 0, 0)
  | Truncate { old_size } -> (tag_truncate lor mig, old_size, 0, 0, 0)
  | Dir_read { bytes } -> (tag_dir_read lor mig, bytes, 0, 0, 0)
  | Shared_read { offset; length } ->
    (tag_shared_read lor mig, offset, length, 0, 0)
  | Shared_write { offset; length } ->
    (tag_shared_write lor mig, offset, length, 0, 0)

let unpack_kind ~raw_tag ~a ~b ~c ~d : Record.kind =
  match raw_tag land 0x07 with
  | 0 ->
    Open
      {
        mode = mode_of_bits ((raw_tag lsr mode_shift) land 0x03);
        created = raw_tag land bit_created <> 0;
        is_dir = raw_tag land bit_is_dir <> 0;
        size = a;
        start_pos = b;
      }
  | 1 -> Close { size = a; final_pos = b; bytes_read = c; bytes_written = d }
  | 2 -> Reposition { pos_before = a; pos_after = b }
  | 3 -> Delete { size = a; is_dir = raw_tag land bit_is_dir <> 0 }
  | 4 -> Truncate { old_size = a }
  | 5 -> Dir_read { bytes = a }
  | 6 -> Shared_read { offset = a; length = b }
  | _ -> Shared_write { offset = a; length = b }

(* -- conversions --------------------------------------------------------- *)

let kind t i =
  unpack_kind ~raw_tag:(raw_tag t i) ~a:(a t i) ~b:(b t i) ~c:(c t i)
    ~d:(d t i)

let get t i : Record.t =
  {
    time = time t i;
    server = Ids.Server.of_int (server t i);
    client = Ids.Client.of_int (client t i);
    user = user_id t i;
    pid = Ids.Process.of_int (pid t i);
    migrated = migrated t i;
    file = file_id t i;
    kind = kind t i;
  }

let to_array t = Array.init t.len (get t)

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let equal x y =
  x.len = y.len
  &&
  let ok = ref true in
  (try
     for i = 0 to x.len - 1 do
       if
         not
           (Float.equal (time x i) (time y i)
           && server x i = server y i
           && client x i = client y i
           && user x i = user y i
           && pid x i = pid y i
           && file x i = file y i
           && raw_tag x i = raw_tag y i
           && a x i = a y i
           && b x i = b y i
           && c x i = c y i
           && d x i = d y i)
       then begin
         ok := false;
         raise Exit
       end
     done
   with Exit -> ());
  !ok

(* -- column-level construction (mmap'd segments) -------------------------- *)

let of_columns ~len ~times ~servers ~clients ~users ~pids ~files ~tags ~col_a
    ~col_b ~col_c ~col_d =
  if len < 0 then invalid_arg "Record_batch.of_columns: negative length";
  let dim_f (c : f64_col) = A1.dim c in
  let dim_i (c : i32_col) = A1.dim c in
  if
    dim_f times <> len || dim_i servers <> len || dim_i clients <> len
    || dim_i users <> len || dim_i pids <> len || dim_i files <> len
    || A1.dim tags <> len || dim_i col_a <> len || dim_i col_b <> len
    || dim_i col_c <> len || dim_i col_d <> len
  then invalid_arg "Record_batch.of_columns: column dimension mismatch";
  { len; times; servers; clients; users; pids; files; tags; col_a; col_b;
    col_c; col_d }

(* -- builder ------------------------------------------------------------- *)

module Builder = struct
  type batch = t

  type t = {
    mutable len : int;
    mutable times : f64_col;
    mutable servers : i32_col;
    mutable clients : i32_col;
    mutable users : i32_col;
    mutable pids : i32_col;
    mutable files : i32_col;
    mutable tags : u8_col;
    mutable col_a : i32_col;
    mutable col_b : i32_col;
    mutable col_c : i32_col;
    mutable col_d : i32_col;
  }

  let create ?(capacity = 1024) () =
    let capacity = max 16 capacity in
    {
      len = 0;
      times = f64 capacity;
      servers = i32 capacity;
      clients = i32 capacity;
      users = i32 capacity;
      pids = i32 capacity;
      files = i32 capacity;
      tags = u8 capacity;
      col_a = i32 capacity;
      col_b = i32 capacity;
      col_c = i32 capacity;
      col_d = i32 capacity;
    }

  let length t = t.len

  let grow t =
    let cap = A1.dim t.times in
    let cap' = cap * 2 in
    let gi (old : i32_col) =
      let fresh = i32 cap' in
      A1.blit old (A1.sub fresh 0 cap);
      fresh
    in
    (let fresh = f64 cap' in
     A1.blit t.times (A1.sub fresh 0 cap);
     t.times <- fresh);
    t.servers <- gi t.servers;
    t.clients <- gi t.clients;
    t.users <- gi t.users;
    t.pids <- gi t.pids;
    t.files <- gi t.files;
    (let fresh = u8 cap' in
     A1.blit t.tags (A1.sub fresh 0 cap);
     t.tags <- fresh);
    t.col_a <- gi t.col_a;
    t.col_b <- gi t.col_b;
    t.col_c <- gi t.col_c;
    t.col_d <- gi t.col_d

  let add_raw t ~time ~server ~client ~user ~pid ~file ~raw_tag ~a ~b ~c ~d =
    if t.len = A1.dim t.times then grow t;
    let i = t.len in
    A1.unsafe_set t.times i time;
    A1.unsafe_set t.servers i (to_i32 "server" server);
    A1.unsafe_set t.clients i (to_i32 "client" client);
    A1.unsafe_set t.users i (to_i32 "user" user);
    A1.unsafe_set t.pids i (to_i32 "pid" pid);
    A1.unsafe_set t.files i (to_i32 "file" file);
    A1.unsafe_set t.tags i (raw_tag land 0xFF);
    A1.unsafe_set t.col_a i (to_i32 "payload a" a);
    A1.unsafe_set t.col_b i (to_i32 "payload b" b);
    A1.unsafe_set t.col_c i (to_i32 "payload c" c);
    A1.unsafe_set t.col_d i (to_i32 "payload d" d);
    t.len <- i + 1

  let add t (r : Record.t) =
    let raw_tag, a, b, c, d = pack_kind r.kind ~migrated:r.migrated in
    add_raw t ~time:r.time
      ~server:(Ids.Server.to_int r.server)
      ~client:(Ids.Client.to_int r.client)
      ~user:(Ids.User.to_int r.user)
      ~pid:(Ids.Process.to_int r.pid)
      ~file:(Ids.File.to_int r.file)
      ~raw_tag ~a ~b ~c ~d

  (* Append one record of an existing batch; the source columns are
     already int32 so no range checks are needed. *)
  let add_from t (src : batch) i =
    if t.len = A1.dim t.times then grow t;
    let j = t.len in
    A1.unsafe_set t.times j (A1.unsafe_get src.times i);
    A1.unsafe_set t.servers j (A1.unsafe_get src.servers i);
    A1.unsafe_set t.clients j (A1.unsafe_get src.clients i);
    A1.unsafe_set t.users j (A1.unsafe_get src.users i);
    A1.unsafe_set t.pids j (A1.unsafe_get src.pids i);
    A1.unsafe_set t.files j (A1.unsafe_get src.files i);
    A1.unsafe_set t.tags j (A1.unsafe_get src.tags i);
    A1.unsafe_set t.col_a j (A1.unsafe_get src.col_a i);
    A1.unsafe_set t.col_b j (A1.unsafe_get src.col_b i);
    A1.unsafe_set t.col_c j (A1.unsafe_get src.col_c i);
    A1.unsafe_set t.col_d j (A1.unsafe_get src.col_d i);
    t.len <- j + 1

  (* Whole-batch append: grow once, then one blit per column. *)
  let append_batch t (src : batch) =
    let n = src.len in
    if n > 0 then begin
      while t.len + n > A1.dim t.times do
        grow t
      done;
      let j = t.len in
      let blit_f64 (a : f64_col) (b : f64_col) =
        A1.blit (A1.sub a 0 n) (A1.sub b j n)
      in
      let blit_i32 (a : i32_col) (b : i32_col) =
        A1.blit (A1.sub a 0 n) (A1.sub b j n)
      in
      let blit_u8 (a : u8_col) (b : u8_col) =
        A1.blit (A1.sub a 0 n) (A1.sub b j n)
      in
      blit_f64 src.times t.times;
      blit_i32 src.servers t.servers;
      blit_i32 src.clients t.clients;
      blit_i32 src.users t.users;
      blit_i32 src.pids t.pids;
      blit_i32 src.files t.files;
      blit_u8 src.tags t.tags;
      blit_i32 src.col_a t.col_a;
      blit_i32 src.col_b t.col_b;
      blit_i32 src.col_c t.col_c;
      blit_i32 src.col_d t.col_d;
      t.len <- j + n
    end

  let copy_f64 (src : f64_col) n =
    let dst = f64 n in
    A1.blit (A1.sub src 0 n) dst;
    dst

  let copy_i32 (src : i32_col) n =
    let dst = i32 n in
    A1.blit (A1.sub src 0 n) dst;
    dst

  let copy_u8 (src : u8_col) n =
    let dst = u8 n in
    A1.blit (A1.sub src 0 n) dst;
    dst

  let finish t : batch =
    let n = t.len in
    {
      len = n;
      times = copy_f64 t.times n;
      servers = copy_i32 t.servers n;
      clients = copy_i32 t.clients n;
      users = copy_i32 t.users n;
      pids = copy_i32 t.pids n;
      files = copy_i32 t.files n;
      tags = copy_u8 t.tags n;
      col_a = copy_i32 t.col_a n;
      col_b = copy_i32 t.col_b n;
      col_c = copy_i32 t.col_c n;
      col_d = copy_i32 t.col_d n;
    }

  (* Identical copies, but [finish] documents that the builder is done
     while [snapshot] leaves it usable — the chunked sink snapshots its
     open chunk without disturbing later appends. *)
  let snapshot t : batch = finish t

  let reset t = t.len <- 0
end

let of_array records =
  let builder = Builder.create ~capacity:(max 16 (Array.length records)) () in
  Array.iter (Builder.add builder) records;
  Builder.finish builder

let of_list records =
  let builder = Builder.create ~capacity:(max 16 (List.length records)) () in
  List.iter (Builder.add builder) records;
  Builder.finish builder

let concat = function
  | [ b ] -> b
  | batches ->
    let total = List.fold_left (fun acc b -> acc + b.len) 0 batches in
    let builder = Builder.create ~capacity:(max 16 total) () in
    List.iter (Builder.append_batch builder) batches;
    Builder.finish builder
