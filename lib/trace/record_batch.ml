type t = {
  len : int;
  times : float array;
  servers : int array;
  clients : int array;
  users : int array;
  pids : int array;
  files : int array;
  tags : Bytes.t;
  col_a : int array;
  col_b : int array;
  col_c : int array;
  col_d : int array;
}

let length t = t.len

let tag_open = 0

let tag_close = 1

let tag_reposition = 2

let tag_delete = 3

let tag_truncate = 4

let tag_dir_read = 5

let tag_shared_read = 6

let tag_shared_write = 7

let bit_migrated = 0x08

let bit_created = 0x40

let bit_is_dir = 0x80

let mode_shift = 4

let[@inline] time t i = Array.unsafe_get t.times i

let[@inline] server t i = Array.unsafe_get t.servers i

let[@inline] client t i = Array.unsafe_get t.clients i

let[@inline] user t i = Array.unsafe_get t.users i

let[@inline] pid t i = Array.unsafe_get t.pids i

let[@inline] file t i = Array.unsafe_get t.files i

let[@inline] user_id t i = Ids.User.of_int (user t i)

let[@inline] file_id t i = Ids.File.of_int (file t i)

let[@inline] raw_tag t i = Char.code (Bytes.unsafe_get t.tags i)

let[@inline] tag t i = raw_tag t i land 0x07

let[@inline] migrated t i = raw_tag t i land bit_migrated <> 0

let mode_of_bits = function
  | 0 -> Record.Read_only
  | 1 -> Record.Write_only
  | 2 -> Record.Read_write
  | n -> invalid_arg (Printf.sprintf "Record_batch: bad open mode bits %d" n)

let mode_to_bits = function
  | Record.Read_only -> 0
  | Record.Write_only -> 1
  | Record.Read_write -> 2

let[@inline] open_mode t i = mode_of_bits ((raw_tag t i lsr mode_shift) land 0x03)

let[@inline] created t i = raw_tag t i land bit_created <> 0

let[@inline] is_dir t i = raw_tag t i land bit_is_dir <> 0

let[@inline] a t i = Array.unsafe_get t.col_a i

let[@inline] b t i = Array.unsafe_get t.col_b i

let[@inline] c t i = Array.unsafe_get t.col_c i

let[@inline] d t i = Array.unsafe_get t.col_d i

(* -- packing ------------------------------------------------------------- *)

let pack_kind kind ~migrated =
  let mig = if migrated then bit_migrated else 0 in
  match (kind : Record.kind) with
  | Open { mode; created; is_dir; size; start_pos } ->
    let tag =
      tag_open lor mig
      lor (mode_to_bits mode lsl mode_shift)
      lor (if created then bit_created else 0)
      lor if is_dir then bit_is_dir else 0
    in
    (tag, size, start_pos, 0, 0)
  | Close { size; final_pos; bytes_read; bytes_written } ->
    (tag_close lor mig, size, final_pos, bytes_read, bytes_written)
  | Reposition { pos_before; pos_after } ->
    (tag_reposition lor mig, pos_before, pos_after, 0, 0)
  | Delete { size; is_dir } ->
    (tag_delete lor mig lor (if is_dir then bit_is_dir else 0), size, 0, 0, 0)
  | Truncate { old_size } -> (tag_truncate lor mig, old_size, 0, 0, 0)
  | Dir_read { bytes } -> (tag_dir_read lor mig, bytes, 0, 0, 0)
  | Shared_read { offset; length } ->
    (tag_shared_read lor mig, offset, length, 0, 0)
  | Shared_write { offset; length } ->
    (tag_shared_write lor mig, offset, length, 0, 0)

let unpack_kind ~raw_tag ~a ~b ~c ~d : Record.kind =
  match raw_tag land 0x07 with
  | 0 ->
    Open
      {
        mode = mode_of_bits ((raw_tag lsr mode_shift) land 0x03);
        created = raw_tag land bit_created <> 0;
        is_dir = raw_tag land bit_is_dir <> 0;
        size = a;
        start_pos = b;
      }
  | 1 -> Close { size = a; final_pos = b; bytes_read = c; bytes_written = d }
  | 2 -> Reposition { pos_before = a; pos_after = b }
  | 3 -> Delete { size = a; is_dir = raw_tag land bit_is_dir <> 0 }
  | 4 -> Truncate { old_size = a }
  | 5 -> Dir_read { bytes = a }
  | 6 -> Shared_read { offset = a; length = b }
  | _ -> Shared_write { offset = a; length = b }

(* -- conversions --------------------------------------------------------- *)

let kind t i =
  unpack_kind ~raw_tag:(raw_tag t i) ~a:(a t i) ~b:(b t i) ~c:(c t i)
    ~d:(d t i)

let get t i : Record.t =
  {
    time = time t i;
    server = Ids.Server.of_int (server t i);
    client = Ids.Client.of_int (client t i);
    user = user_id t i;
    pid = Ids.Process.of_int (pid t i);
    migrated = migrated t i;
    file = file_id t i;
    kind = kind t i;
  }

let to_array t = Array.init t.len (get t)

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let equal x y =
  x.len = y.len
  &&
  let ok = ref true in
  (try
     for i = 0 to x.len - 1 do
       if
         not
           (Float.equal (time x i) (time y i)
           && server x i = server y i
           && client x i = client y i
           && user x i = user y i
           && pid x i = pid y i
           && file x i = file y i
           && raw_tag x i = raw_tag y i
           && a x i = a y i
           && b x i = b y i
           && c x i = c y i
           && d x i = d y i)
       then begin
         ok := false;
         raise Exit
       end
     done
   with Exit -> ());
  !ok

(* -- builder ------------------------------------------------------------- *)

module Builder = struct
  type batch = t

  type t = {
    mutable len : int;
    mutable times : float array;
    mutable servers : int array;
    mutable clients : int array;
    mutable users : int array;
    mutable pids : int array;
    mutable files : int array;
    mutable tags : Bytes.t;
    mutable col_a : int array;
    mutable col_b : int array;
    mutable col_c : int array;
    mutable col_d : int array;
  }

  let create ?(capacity = 1024) () =
    let capacity = max 16 capacity in
    {
      len = 0;
      times = Array.make capacity 0.0;
      servers = Array.make capacity 0;
      clients = Array.make capacity 0;
      users = Array.make capacity 0;
      pids = Array.make capacity 0;
      files = Array.make capacity 0;
      tags = Bytes.make capacity '\000';
      col_a = Array.make capacity 0;
      col_b = Array.make capacity 0;
      col_c = Array.make capacity 0;
      col_d = Array.make capacity 0;
    }

  let length t = t.len

  let grow t =
    let cap = Array.length t.times in
    let cap' = cap * 2 in
    let gi old =
      let fresh = Array.make cap' 0 in
      Array.blit old 0 fresh 0 cap;
      fresh
    in
    let gf old =
      let fresh = Array.make cap' 0.0 in
      Array.blit old 0 fresh 0 cap;
      fresh
    in
    t.times <- gf t.times;
    t.servers <- gi t.servers;
    t.clients <- gi t.clients;
    t.users <- gi t.users;
    t.pids <- gi t.pids;
    t.files <- gi t.files;
    (let fresh = Bytes.make cap' '\000' in
     Bytes.blit t.tags 0 fresh 0 cap;
     t.tags <- fresh);
    t.col_a <- gi t.col_a;
    t.col_b <- gi t.col_b;
    t.col_c <- gi t.col_c;
    t.col_d <- gi t.col_d

  let add_raw t ~time ~server ~client ~user ~pid ~file ~raw_tag ~a ~b ~c ~d =
    if t.len = Array.length t.times then grow t;
    let i = t.len in
    Array.unsafe_set t.times i time;
    Array.unsafe_set t.servers i server;
    Array.unsafe_set t.clients i client;
    Array.unsafe_set t.users i user;
    Array.unsafe_set t.pids i pid;
    Array.unsafe_set t.files i file;
    Bytes.unsafe_set t.tags i (Char.unsafe_chr (raw_tag land 0xFF));
    Array.unsafe_set t.col_a i a;
    Array.unsafe_set t.col_b i b;
    Array.unsafe_set t.col_c i c;
    Array.unsafe_set t.col_d i d;
    t.len <- i + 1

  let add t (r : Record.t) =
    let raw_tag, a, b, c, d = pack_kind r.kind ~migrated:r.migrated in
    add_raw t ~time:r.time
      ~server:(Ids.Server.to_int r.server)
      ~client:(Ids.Client.to_int r.client)
      ~user:(Ids.User.to_int r.user)
      ~pid:(Ids.Process.to_int r.pid)
      ~file:(Ids.File.to_int r.file)
      ~raw_tag ~a ~b ~c ~d

  let finish t : batch =
    let n = t.len in
    {
      len = n;
      times = Array.sub t.times 0 n;
      servers = Array.sub t.servers 0 n;
      clients = Array.sub t.clients 0 n;
      users = Array.sub t.users 0 n;
      pids = Array.sub t.pids 0 n;
      files = Array.sub t.files 0 n;
      tags = Bytes.sub t.tags 0 n;
      col_a = Array.sub t.col_a 0 n;
      col_b = Array.sub t.col_b 0 n;
      col_c = Array.sub t.col_c 0 n;
      col_d = Array.sub t.col_d 0 n;
    }

  (* Identical copies, but [finish] documents that the builder is done
     while [snapshot] leaves it usable — the chunked sink snapshots its
     open chunk without disturbing later appends. *)
  let snapshot t : batch = finish t

  let reset t = t.len <- 0
end

let of_array records =
  let builder = Builder.create ~capacity:(max 16 (Array.length records)) () in
  Array.iter (Builder.add builder) records;
  Builder.finish builder

let of_list records =
  let builder = Builder.create ~capacity:(max 16 (List.length records)) () in
  List.iter (Builder.add builder) records;
  Builder.finish builder
