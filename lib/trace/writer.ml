type format = Text | Binary

let format_of_string = function
  | "text" -> Ok Text
  | "binary" -> Ok Binary
  | s -> Error (Printf.sprintf "bad trace format %S (expected text|binary)" s)

let format_to_string = function Text -> "text" | Binary -> "binary"

type mode = Text_mode | Binary_mode of Binary_codec.Encoder.t

type t = {
  emit : string -> unit;
  do_flush : unit -> unit;
  mutable count : int;
  mode : mode;
}

(* The header goes out at creation, not on the first record, so a trace
   with zero records is still a valid (header-only) file. *)
let make format emit do_flush =
  let mode =
    match format with
    | Text ->
      emit Codec.header;
      emit "\n";
      Text_mode
    | Binary ->
      emit Binary_codec.magic;
      Binary_mode (Binary_codec.Encoder.create ())
  in
  { emit; do_flush; count = 0; mode }

let to_buffer ?(format = Text) buf =
  make format (Buffer.add_string buf) (fun () -> ())

let to_channel ?(format = Text) oc =
  make format (output_string oc) (fun () -> Stdlib.flush oc)

let write t r =
  (match t.mode with
  | Text_mode ->
    t.emit (Codec.encode r);
    t.emit "\n"
  | Binary_mode enc -> t.emit (Binary_codec.Encoder.encode enc r));
  t.count <- t.count + 1

let count t = t.count

let flush t = t.do_flush ()

let with_file ?format path f =
  let oc = open_out_bin path in
  let t = to_channel ?format oc in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let result = f t in
      flush t;
      result)
