type format = Text | Binary | Columnar

let format_of_string = function
  | "text" -> Ok Text
  | "binary" -> Ok Binary
  | "columnar" -> Ok Columnar
  | s -> Error (Printf.sprintf "bad trace format %S (expected text|binary|columnar)" s)

let format_to_string = function
  | Text -> "text"
  | Binary -> "binary"
  | Columnar -> "columnar"

(* Columnar output buffers records and seals a whole segment every
   [columnar_segment_records] (and at [flush]/close), so archived traces
   stay mmap-able in bounded-size pieces. *)
let columnar_segment_records = 65_536

type mode =
  | Text_mode
  | Binary_mode of Binary_codec.Encoder.t
  | Columnar_mode of Record_batch.Builder.t

type t = {
  emit : string -> unit;
  do_flush : unit -> unit;
  mutable count : int;
  mode : mode;
}

(* The header goes out at creation, not on the first record, so a trace
   with zero records is still a valid (header-only) file: text gets its
   header line, binary its magic, columnar an empty segment. *)
let make format emit do_flush =
  let mode =
    match format with
    | Text ->
      emit Codec.header;
      emit "\n";
      Text_mode
    | Binary ->
      emit Binary_codec.magic;
      Binary_mode (Binary_codec.Encoder.create ())
    | Columnar ->
      emit (Segment.encode_batch (Record_batch.of_list []));
      Columnar_mode (Record_batch.Builder.create ~capacity:4096 ())
  in
  { emit; do_flush; count = 0; mode }

let to_buffer ?(format = Text) buf =
  make format (Buffer.add_string buf) (fun () -> ())

let to_channel ?(format = Text) oc =
  make format (output_string oc) (fun () -> Stdlib.flush oc)

let seal_segment t builder =
  if Record_batch.Builder.length builder > 0 then begin
    t.emit (Segment.encode_batch (Record_batch.Builder.snapshot builder));
    Record_batch.Builder.reset builder
  end

let write t r =
  (match t.mode with
  | Text_mode ->
    t.emit (Codec.encode r);
    t.emit "\n"
  | Binary_mode enc -> t.emit (Binary_codec.Encoder.encode enc r)
  | Columnar_mode builder ->
    Record_batch.Builder.add builder r;
    if Record_batch.Builder.length builder >= columnar_segment_records then
      seal_segment t builder);
  t.count <- t.count + 1

let count t = t.count

let flush t =
  (match t.mode with
  | Text_mode | Binary_mode _ -> ()
  | Columnar_mode builder -> seal_segment t builder);
  t.do_flush ()

(* Crash-safe: the trace streams into [path ^ ".tmp"] and only claims
   its final name once fully written and fsynced.  The user callback [f]
   runs exactly once (it may be a whole simulation), so only the
   open/seal syscalls go through the retry loop — not [f] itself. *)
let with_file ?format path f =
  let tmp = Durable.tmp_path path in
  let oc =
    Io_retry.run ~op:"trace-open" ~path (fun () -> open_out_bin tmp)
  in
  match
    let t = to_channel ?format oc in
    let result = f t in
    flush t;
    result
  with
  | result ->
    Io_retry.run ~op:"trace-seal" ~path (fun () ->
        Durable.fsync_channel oc);
    close_out oc;
    Io_retry.run ~op:"trace-seal" ~path (fun () ->
        Durable.rename_into_place ~tmp ~path);
    result
  | exception e ->
    close_out_noerr oc;
    Durable.unlink_noerr tmp;
    raise e
