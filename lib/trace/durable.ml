(* Crash-safe file replacement for the trace pipeline.

   A spill chunk or archived trace must never be observable in a torn
   state under its final name: a reader that finds [<name>.dfsc] may
   assume it is a complete, sealed file.  [replace] provides that
   guarantee the classic way — write [<path>.tmp], fsync the file,
   atomically rename over [path], fsync the directory so the rename
   itself survives a crash.  A crash at any point leaves either the old
   state or the new state under the final name, plus at worst an
   orphaned [.tmp] that fsck removes.

   All syscalls run under [Io_retry], so transient disk errors (EINTR,
   EIO, ...) get bounded retries; [replace] re-runs its writer callback
   on retry, so callers must pass an idempotent writer (the sink writes
   an in-memory batch, which is). *)

let tmp_suffix = ".tmp"

let tmp_path path = path ^ tmp_suffix

let is_tmp path = Filename.check_suffix path tmp_suffix

let fsync_channel oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Directory fsync can fail with EINVAL/EBADF on exotic filesystems;
   losing it degrades to pre-fsync durability, not corruption, so those
   failures are swallowed. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let unlink_noerr path = try Sys.remove path with Sys_error _ -> ()

let rename_into_place ~tmp ~path =
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path)

let replace ~op ~path f =
  let tmp = tmp_path path in
  Io_retry.run ~op ~path (fun () ->
      let oc = open_out_bin tmp in
      match
        let r = f oc in
        fsync_channel oc;
        close_out oc;
        r
      with
      | r ->
        rename_into_place ~tmp ~path;
        r
      | exception e ->
        close_out_noerr oc;
        unlink_noerr tmp;
        raise e)
