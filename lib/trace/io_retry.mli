(** Bounded retries with capped exponential backoff for the pipeline's
    real disk I/O (spill sealing, trace fsync).

    Transient [Unix_error]s (EINTR, EAGAIN, EIO, EBUSY) are retried up
    to [attempts] times with a doubling sleep capped at [max_delay];
    every retry bumps [trace.io.retries], and a run that exhausts its
    attempts bumps [trace.io.giveups] before re-raising.  Permanent
    errors (ENOSPC, EACCES, [Sys_error], ...) propagate immediately.

    The {!set_inject} hook lets tests compose the loop with
    {!Dfs_fault.Profile}-style transient disk errors: install a seeded
    hook raising [Unix_error (EIO, ...)] on chosen attempts and assert
    the sealing path still converges deterministically. *)

val default_attempts : int
(** 5. *)

val default_base_delay : float
(** 2 ms before the second attempt; doubles per retry. *)

val default_max_delay : float
(** 250 ms backoff ceiling. *)

val run :
  ?attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  op:string ->
  path:string ->
  (unit -> 'a) ->
  'a
(** [run ~op ~path f] calls [f] until it succeeds or retries are
    exhausted.  [op]/[path] only label diagnostics and the inject hook.
    @raise Invalid_argument when [attempts < 1]. *)

val set_inject :
  (op:string -> path:string -> attempt:int -> unit) option -> unit
(** Install (or clear, with [None]) a fault hook called before every
    attempt.  A hook that raises a transient [Unix_error] simulates a
    failing disk; tests must clear it afterwards. *)
