let header = "#dfs-trace v1"

let mode_to_string = function
  | Record.Read_only -> "r"
  | Record.Write_only -> "w"
  | Record.Read_write -> "rw"

let mode_of_string = function
  | "r" -> Ok Record.Read_only
  | "w" -> Ok Record.Write_only
  | "rw" -> Ok Record.Read_write
  | s -> Error (Printf.sprintf "bad open mode %S" s)

let bool_to_string b = if b then "1" else "0"

let bool_of_string = function
  | "1" -> Ok true
  | "0" -> Ok false
  | s -> Error (Printf.sprintf "bad bool %S" s)

let encode (r : Record.t) =
  let b = Buffer.create 96 in
  let tab () = Buffer.add_char b '\t' in
  Buffer.add_string b (Printf.sprintf "%.6f" r.time);
  tab ();
  Buffer.add_string b (string_of_int (Ids.Server.to_int r.server));
  tab ();
  Buffer.add_string b (string_of_int (Ids.Client.to_int r.client));
  tab ();
  Buffer.add_string b (string_of_int (Ids.User.to_int r.user));
  tab ();
  Buffer.add_string b (string_of_int (Ids.Process.to_int r.pid));
  tab ();
  Buffer.add_string b (bool_to_string r.migrated);
  tab ();
  Buffer.add_string b (string_of_int (Ids.File.to_int r.file));
  tab ();
  Buffer.add_string b (Record.kind_name r.kind);
  let field s =
    tab ();
    Buffer.add_string b s
  in
  let int_field i = field (string_of_int i) in
  (match r.kind with
  | Open { mode; created; is_dir; size; start_pos } ->
    field (mode_to_string mode);
    field (bool_to_string created);
    field (bool_to_string is_dir);
    int_field size;
    int_field start_pos
  | Close { size; final_pos; bytes_read; bytes_written } ->
    int_field size;
    int_field final_pos;
    int_field bytes_read;
    int_field bytes_written
  | Reposition { pos_before; pos_after } ->
    int_field pos_before;
    int_field pos_after
  | Delete { size; is_dir } ->
    int_field size;
    field (bool_to_string is_dir)
  | Truncate { old_size } -> int_field old_size
  | Dir_read { bytes } -> int_field bytes
  | Shared_read { offset; length } ->
    int_field offset;
    int_field length
  | Shared_write { offset; length } ->
    int_field offset;
    int_field length);
  Buffer.contents b

let ( let* ) = Result.bind

let int_of field s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad int for %s: %S" field s)

let float_of field s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "bad float for %s: %S" field s)

let decode line =
  let fields = String.split_on_char '\t' line in
  match fields with
  | time :: server :: client :: user :: pid :: migrated :: file :: kind :: rest
    ->
    let* time = float_of "time" time in
    let* server = int_of "server" server in
    let* client = int_of "client" client in
    let* user = int_of "user" user in
    let* pid = int_of "pid" pid in
    let* migrated = bool_of_string migrated in
    let* file = int_of "file" file in
    let* kind =
      match (kind, rest) with
      | "open", [ mode; created; is_dir; size; start_pos ] ->
        let* mode = mode_of_string mode in
        let* created = bool_of_string created in
        let* is_dir = bool_of_string is_dir in
        let* size = int_of "size" size in
        let* start_pos = int_of "start_pos" start_pos in
        Ok (Record.Open { mode; created; is_dir; size; start_pos })
      | "close", [ size; final_pos; bytes_read; bytes_written ] ->
        let* size = int_of "size" size in
        let* final_pos = int_of "final_pos" final_pos in
        let* bytes_read = int_of "bytes_read" bytes_read in
        let* bytes_written = int_of "bytes_written" bytes_written in
        Ok (Record.Close { size; final_pos; bytes_read; bytes_written })
      | "seek", [ pos_before; pos_after ] ->
        let* pos_before = int_of "pos_before" pos_before in
        let* pos_after = int_of "pos_after" pos_after in
        Ok (Record.Reposition { pos_before; pos_after })
      | "delete", [ size; is_dir ] ->
        let* size = int_of "size" size in
        let* is_dir = bool_of_string is_dir in
        Ok (Record.Delete { size; is_dir })
      | "truncate", [ old_size ] ->
        let* old_size = int_of "old_size" old_size in
        Ok (Record.Truncate { old_size })
      | "dirread", [ bytes ] ->
        let* bytes = int_of "bytes" bytes in
        Ok (Record.Dir_read { bytes })
      | "sread", [ offset; length ] ->
        let* offset = int_of "offset" offset in
        let* length = int_of "length" length in
        Ok (Record.Shared_read { offset; length })
      | "swrite", [ offset; length ] ->
        let* offset = int_of "offset" offset in
        let* length = int_of "length" length in
        Ok (Record.Shared_write { offset; length })
      | k, _ ->
        Error (Printf.sprintf "bad kind %S or wrong field count" k)
    in
    (* Text traces are the format foreign/hand-written data arrives in;
       reject out-of-domain values here so every text path is covered. *)
    Record.validate
      {
        Record.time;
        server = Ids.Server.of_int server;
        client = Ids.Client.of_int client;
        user = Ids.User.of_int user;
        pid = Ids.Process.of_int pid;
        migrated;
        file = Ids.File.of_int file;
        kind;
      }
  | _ -> Error "too few fields"
