(** Struct-of-arrays trace storage.

    A batch holds the same information as a [Record.t array], laid out as
    columns: one float array for timestamps, int arrays for the ids and
    the per-kind integer payload, and a tag byte per record packing the
    event kind with its boolean flags.  Analyses iterate the columns with
    the accessors below instead of pattern-matching boxed variants; none
    of the accessors allocate.

    Tag byte layout:
    {v bits 0-2  kind (see the tag_* constants)
       bit  3    migrated
       bits 4-5  open mode (Open records)
       bit  6    created   (Open records)
       bit  7    is_dir    (Open and Delete records) v}

    Payload columns [a]-[d] by kind:
    {v open      a=size       b=start_pos
       close     a=size       b=final_pos  c=bytes_read  d=bytes_written
       seek      a=pos_before b=pos_after
       delete    a=size
       truncate  a=old_size
       dirread   a=bytes
       sread     a=offset     b=length
       swrite    a=offset     b=length v} *)

type t

val length : t -> int

(** {1 Kind tags} *)

val tag_open : int
val tag_close : int
val tag_reposition : int
val tag_delete : int
val tag_truncate : int
val tag_dir_read : int
val tag_shared_read : int
val tag_shared_write : int

(** {1 Cursor accessors}

    All O(1) and allocation-free. Indices are not bounds-checked beyond
    the usual array checks; iterate with [for i = 0 to length b - 1]. *)

val time : t -> int -> float

val server : t -> int -> int

val client : t -> int -> int

val user : t -> int -> int

val pid : t -> int -> int

val file : t -> int -> int

val user_id : t -> int -> Ids.User.t

val file_id : t -> int -> Ids.File.t

val tag : t -> int -> int
(** Kind index 0-7; compare against the [tag_*] constants. *)

val raw_tag : t -> int -> int
(** The full tag byte including flag bits, as stored. *)

val migrated : t -> int -> bool

val open_mode : t -> int -> Record.open_mode
(** Meaningful for [tag_open] records only. *)

val created : t -> int -> bool

val is_dir : t -> int -> bool

val a : t -> int -> int

val b : t -> int -> int

val c : t -> int -> int

val d : t -> int -> int

(** {1 Conversions} *)

val of_array : Record.t array -> t

val of_list : Record.t list -> t

val get : t -> int -> Record.t
(** Rebuild the boxed record at an index (allocates). *)

val kind : t -> int -> Record.kind
(** Rebuild just the boxed kind at an index (allocates). *)

val to_array : t -> Record.t array

val iter : (Record.t -> unit) -> t -> unit

val equal : t -> t -> bool
(** Structural equality of contents (exact float comparison on times). *)

(** {1 Building} *)

module Builder : sig
  type batch := t

  type t

  val create : ?capacity:int -> unit -> t

  val length : t -> int

  val add : t -> Record.t -> unit

  val add_raw :
    t ->
    time:float ->
    server:int ->
    client:int ->
    user:int ->
    pid:int ->
    file:int ->
    raw_tag:int ->
    a:int ->
    b:int ->
    c:int ->
    d:int ->
    unit
  (** Append from already-decoded columns (the binary codec's fast path).
      [raw_tag] is the full tag byte, flags included. *)

  val finish : t -> batch
  (** Trim and return the batch. The builder must not be reused. *)

  val snapshot : t -> batch
  (** Copy the current contents into a batch without disturbing the
      builder; later appends do not affect the returned batch. *)

  val reset : t -> unit
  (** Empty the builder (capacity is kept) so it can accumulate the next
      chunk. *)
end

val pack_kind : Record.kind -> migrated:bool -> int * int * int * int * int
(** [pack_kind kind ~migrated] is [(raw_tag, a, b, c, d)]. *)

val unpack_kind : raw_tag:int -> a:int -> b:int -> c:int -> d:int -> Record.kind
(** Inverse of {!pack_kind} (allocates the variant). Raises
    [Invalid_argument] on an out-of-range mode in an open tag. *)
