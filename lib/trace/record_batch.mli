(** Struct-of-arrays trace storage on Bigarray columns.

    A batch holds the same information as a [Record.t array], laid out as
    off-heap columns: a float64 Bigarray for timestamps, int32 Bigarrays
    for the ids and the per-kind integer payload, and an unsigned-int8
    tag byte per record packing the event kind with its boolean flags.
    Analyses iterate the columns with the accessors below instead of
    pattern-matching boxed variants; none of the accessors allocate.
    Column data lives outside the OCaml heap, so batches contribute a
    few words each to GC statistics regardless of record count, and a
    column can be a window straight onto an [mmap]'d trace segment
    (see {!of_columns} and [Segment]).

    Ids and payload values are stored as int32; appending a value outside
    int32 range raises [Invalid_argument] rather than truncating.

    Tag byte layout:
    {v bits 0-2  kind (see the tag_* constants)
       bit  3    migrated
       bits 4-5  open mode (Open records)
       bit  6    created   (Open records)
       bit  7    is_dir    (Open and Delete records) v}

    Payload columns [a]-[d] by kind:
    {v open      a=size       b=start_pos
       close     a=size       b=final_pos  c=bytes_read  d=bytes_written
       seek      a=pos_before b=pos_after
       delete    a=size
       truncate  a=old_size
       dirread   a=bytes
       sread     a=offset     b=length
       swrite    a=offset     b=length v} *)

type t

type f64_col = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type i32_col = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type u8_col = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val length : t -> int

(** {1 Kind tags} *)

val tag_open : int
val tag_close : int
val tag_reposition : int
val tag_delete : int
val tag_truncate : int
val tag_dir_read : int
val tag_shared_read : int
val tag_shared_write : int

(** {1 Cursor accessors}

    All O(1) and allocation-free.  Every column has exactly [length b]
    elements, so the Bigarray bounds check on these accessors is the
    batch bounds check: an out-of-range index raises [Invalid_argument].
    Loops that already maintain [0 <= i < length b] can use the
    {!Unsafe} variants to skip it. *)

val time : t -> int -> float

val server : t -> int -> int

val client : t -> int -> int

val user : t -> int -> int

val pid : t -> int -> int

val file : t -> int -> int

val user_id : t -> int -> Ids.User.t

val file_id : t -> int -> Ids.File.t

val tag : t -> int -> int
(** Kind index 0-7; compare against the [tag_*] constants. *)

val raw_tag : t -> int -> int
(** The full tag byte including flag bits, as stored. *)

val migrated : t -> int -> bool

val open_mode : t -> int -> Record.open_mode
(** Meaningful for [tag_open] records only. *)

val created : t -> int -> bool

val is_dir : t -> int -> bool

val a : t -> int -> int

val b : t -> int -> int

val c : t -> int -> int

val d : t -> int -> int

(** {1 Unsafe accessors}

    Same meanings as above with the bounds check elided (fenced behind
    this submodule; the checked accessors are the default).  Only for
    loops whose index is already bounded by [length b] — an out-of-range
    index reads unrelated memory. *)

module Unsafe : sig
  val time : t -> int -> float

  val server : t -> int -> int

  val client : t -> int -> int

  val user : t -> int -> int

  val pid : t -> int -> int

  val file : t -> int -> int

  val user_id : t -> int -> Ids.User.t

  val file_id : t -> int -> Ids.File.t

  val tag : t -> int -> int

  val raw_tag : t -> int -> int

  val migrated : t -> int -> bool

  val open_mode : t -> int -> Record.open_mode

  val created : t -> int -> bool

  val is_dir : t -> int -> bool

  val a : t -> int -> int

  val b : t -> int -> int

  val c : t -> int -> int

  val d : t -> int -> int
end

(** {1 Conversions} *)

val of_array : Record.t array -> t

val of_list : Record.t list -> t

val get : t -> int -> Record.t
(** Rebuild the boxed record at an index (allocates). *)

val kind : t -> int -> Record.kind
(** Rebuild just the boxed kind at an index (allocates). *)

val to_array : t -> Record.t array

val iter : (Record.t -> unit) -> t -> unit

val equal : t -> t -> bool
(** Structural equality of contents (exact float comparison on times). *)

val concat : t list -> t
(** Concatenate batches in order. A singleton list returns its batch
    unchanged (no copy). *)

val of_columns :
  len:int ->
  times:f64_col ->
  servers:i32_col ->
  clients:i32_col ->
  users:i32_col ->
  pids:i32_col ->
  files:i32_col ->
  tags:u8_col ->
  col_a:i32_col ->
  col_b:i32_col ->
  col_c:i32_col ->
  col_d:i32_col ->
  t
(** Assemble a batch directly from columns — typically windows onto an
    [mmap]'d segment — without copying. Every column must have dimension
    [len]; raises [Invalid_argument] otherwise. *)

(** {1 Building} *)

module Builder : sig
  type batch := t

  type t

  val create : ?capacity:int -> unit -> t

  val length : t -> int

  val add : t -> Record.t -> unit

  val add_raw :
    t ->
    time:float ->
    server:int ->
    client:int ->
    user:int ->
    pid:int ->
    file:int ->
    raw_tag:int ->
    a:int ->
    b:int ->
    c:int ->
    d:int ->
    unit
  (** Append from already-decoded columns (the binary codec's fast path).
      [raw_tag] is the full tag byte, flags included. *)

  val add_from : t -> batch -> int -> unit
  (** Append record [i] of an existing batch (no range re-checks: the
      source columns are already int32). *)

  val append_batch : t -> batch -> unit
  (** Append every record of a batch with one blit per column. *)

  val finish : t -> batch
  (** Trim and return the batch. The builder must not be reused. *)

  val snapshot : t -> batch
  (** Copy the current contents into a batch without disturbing the
      builder; later appends do not affect the returned batch. *)

  val reset : t -> unit
  (** Empty the builder (capacity is kept) so it can accumulate the next
      chunk. *)
end

val pack_kind : Record.kind -> migrated:bool -> int * int * int * int * int
(** [pack_kind kind ~migrated] is [(raw_tag, a, b, c, d)]. *)

val unpack_kind : raw_tag:int -> a:int -> b:int -> c:int -> d:int -> Record.kind
(** Inverse of {!pack_kind} (allocates the variant). Raises
    [Invalid_argument] on an out-of-range mode in an open tag. *)
