(* A bounded-memory destination for trace records.

   Emitted records accumulate in a columnar [Record_batch.Builder]; every
   [chunk_records] appends the open chunk is sealed.  Sealed chunks either
   stay in memory as batches or — when a spill directory is configured —
   are written out as self-describing columnar [Segment] files (fixed
   header plus naturally-aligned whole columns) and only a path plus
   record count stays live.  A finished sink is a [chunks] value: an
   ordered list of segments that can be re-streamed as batches any number
   of times; spilled segments load back zero-copy via [Unix.map_file]
   (one mmap'd window per column) with no per-record decode. *)

module B = Record_batch

let default_chunk_records = 32_768

(* Chunk/spill telemetry; merged across domains by the registry. *)
let m_sealed = Dfs_obs.Metrics.counter "trace.sink.chunks_sealed"

let m_spilled = Dfs_obs.Metrics.counter "trace.sink.chunks_spilled"

let m_spilled_bytes = Dfs_obs.Metrics.counter "trace.sink.spilled_bytes"

type spill = { dir : string; name : string }

type chunk = Mem of B.t | Seg of { path : string; len : int }

type chunks = { segments : chunk list; total : int }

type t = {
  chunk_records : int;
  spill : spill option;
  builder : B.Builder.t;
  mutable sealed_rev : chunk list;
  mutable sealed_total : int;
  mutable next_seg : int;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (try Sys.mkdir dir 0o755
     with Sys_error _ when Sys.file_exists dir -> ())
  end

let create ?(chunk_records = default_chunk_records) ?spill () =
  if chunk_records < 1 then
    invalid_arg "Sink.create: chunk_records must be >= 1";
  Option.iter (fun s -> mkdir_p s.dir) spill;
  {
    chunk_records;
    spill;
    builder = B.Builder.create ~capacity:(min chunk_records 4096) ();
    sealed_rev = [];
    sealed_total = 0;
    next_seg = 0;
  }

let seg_path spill ~name ~index =
  Filename.concat spill.dir (Printf.sprintf "%s-%06d.dfsc" name index)

let seal t =
  let n = B.Builder.length t.builder in
  if n > 0 then begin
    let batch = B.Builder.snapshot t.builder in
    B.Builder.reset t.builder;
    Dfs_obs.Metrics.incr m_sealed;
    let chunk =
      match t.spill with
      | None -> Mem batch
      | Some spill ->
        let path = seg_path spill ~name:spill.name ~index:t.next_seg in
        t.next_seg <- t.next_seg + 1;
        (* Crash-safe: the chunk is only ever observable under its final
           name as a complete sealed segment (a crash mid-seal leaves an
           orphaned .tmp, which fsck removes). *)
        let bytes =
          Durable.replace ~op:"spill-seal" ~path (fun oc ->
              Segment.write_batch oc batch)
        in
        Dfs_obs.Metrics.incr m_spilled;
        Dfs_obs.Metrics.add m_spilled_bytes bytes;
        Seg { path; len = n }
    in
    t.sealed_rev <- chunk :: t.sealed_rev;
    t.sealed_total <- t.sealed_total + n
  end

let emit t r =
  B.Builder.add t.builder r;
  if B.Builder.length t.builder >= t.chunk_records then seal t

let emit_from t batch i =
  B.Builder.add_from t.builder batch i;
  if B.Builder.length t.builder >= t.chunk_records then seal t

(* A non-destructive snapshot: sealed chunks plus a copy of the open
   chunk.  The sink stays usable, so staged simulations can keep
   emitting and snapshot again later. *)
let chunks_now t =
  let sealed = List.rev t.sealed_rev in
  if B.Builder.length t.builder = 0 then
    { segments = sealed; total = t.sealed_total }
  else
    {
      segments = sealed @ [ Mem (B.Builder.snapshot t.builder) ];
      total = t.sealed_total + B.Builder.length t.builder;
    }

(* Seal the open chunk (spilling it if configured) and return the final
   segment list.  Emitting after [close] starts a fresh open chunk; the
   returned value is unaffected. *)
let close t =
  seal t;
  { segments = List.rev t.sealed_rev; total = t.sealed_total }

(* -- reading chunk streams ------------------------------------------------ *)

let load_chunk ?on_corruption = function
  | Mem b -> b
  | Seg { path; _ } -> (
    match Segment.batch_of_file ?on_corruption path with
    | Ok b -> b
    | Error e -> failwith (Printf.sprintf "Sink: bad spill segment %s: %s" path e))

let length c = c.total

let chunk_count c = List.length c.segments

let spilled_count c =
  List.fold_left
    (fun acc ch -> match ch with Seg _ -> acc + 1 | Mem _ -> acc)
    0 c.segments

(* Replayable: each traversal walks the segment list afresh, loading
   spilled segments on demand; at most one loaded chunk is live per
   in-flight traversal. *)
let to_seq ?on_corruption c =
  Seq.map (fun ch -> load_chunk ?on_corruption ch) (List.to_seq c.segments)

let iter_batches f c = Seq.iter f (to_seq c)

let iter f c = Seq.iter (B.iter f) (to_seq c)

let fold f init c =
  let acc = ref init in
  iter (fun r -> acc := f !acc r) c;
  !acc

let to_records c =
  let acc = ref [] in
  iter (fun r -> acc := r :: !acc) c;
  List.rev !acc

let to_batch c =
  let builder = B.Builder.create ~capacity:(max 16 c.total) () in
  iter_batches (B.Builder.append_batch builder) c;
  B.Builder.finish builder

let of_batch b = { segments = (if B.length b = 0 then [] else [ Mem b ]); total = B.length b }

let of_records rs = of_batch (B.of_list rs)

(* Delete any spilled segment files.  The chunks value must not be read
   afterwards. *)
let discard c =
  List.iter
    (function
      | Mem _ -> ()
      | Seg { path; _ } -> ( try Sys.remove path with Sys_error _ -> ()))
    c.segments

(* Drop everything the sink holds: in-memory chunks become collectable
   and spilled segments are deleted.  Previously returned [chunks]
   values that reference spilled segments must not be read afterwards. *)
let clear t =
  discard { segments = t.sealed_rev; total = t.sealed_total };
  t.sealed_rev <- [];
  t.sealed_total <- 0;
  B.Builder.reset t.builder
