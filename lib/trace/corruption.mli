(** What a trace reader does when it meets damaged data.

    [Fail] (every reader's default) surfaces the first corruption as an
    error.  [Salvage] keeps the longest valid prefix of the damaged
    source, bumps [trace.corruption.detected] /
    [trace.corruption.salvaged_records], logs a warning, and lets the
    analysis continue — so an hour-long run over a multi-gigabyte spill
    set degrades gracefully instead of dying at hour N. *)

type policy = Fail | Salvage

val of_string : string -> (policy, string) result
(** Parses ["fail"] and ["salvage"] (the [--on-corruption] CLI values). *)

val to_string : policy -> string

val note : source:string -> salvaged:int -> string -> unit
(** Record one corruption event: bump both counters ([salvaged] records
    were recovered ahead of the damage) and log a warning naming the
    source and reason. *)

val detected : unit -> int
(** Current value of [trace.corruption.detected]. *)

val salvaged_records : unit -> int
(** Current value of [trace.corruption.salvaged_records]. *)
