(** Columnar on-disk trace segments, readable zero-copy via [mmap].

    Layout of one segment (all integers little-endian):

    {v
      offset 0    magic (8 bytes)
      offset 8    record count n          int64
      offset 16   segment length in bytes int64 (header included)
      offset 24   reserved, zero to offset 64
      offset 64   times    float64[n]     8-byte aligned
      + 8n        servers  int32[n]       4-byte aligned
      + 4n each   clients, users, pids, files,
                  col_a, col_b, col_c, col_d   int32[n]
      + 44n       tags     uint8[n]
      ...         zero padding to a multiple of 8
    v}

    A file is a sequence of segments; every segment length is a multiple
    of 8, so all column offsets stay naturally aligned.  On little-endian
    hosts (unless [DFS_MMAP=0]) {!read_file} serves each column as a
    Bigarray window straight onto the [Unix.map_file]'d file — no copy,
    no per-record decode; the portable fallback bulk-copies the columns
    with explicit little-endian reads.

    Counters: [trace.encoded_bytes] (segment bytes written),
    [trace.mapped_bytes] (column bytes served via [mmap]) and
    [trace.decode.skipped_records] (records served without per-record
    decode, on either read path). *)

val magic : string
(** 8-byte file magic ("\xD7DFSC\x01\x00\x00"). *)

val header_bytes : int
(** Fixed segment header size (64). *)

val bytes_per_record : int
(** Column payload bytes per record (45). *)

val segment_bytes : count:int -> int
(** Total encoded size of a segment holding [count] records, padding
    included. *)

val is_segment : string -> bool
(** Does the string start with the segment magic? *)

val mmap_enabled : unit -> bool
(** Whether reads go through [Unix.map_file]: true on little-endian
    hosts unless the [DFS_MMAP] environment variable is [0]/[false]/
    [no]/[off]. Re-read on every call, so tests can toggle it. *)

val encode_batch : Record_batch.t -> string
(** One whole segment, header and padding included. *)

val write_batch : out_channel -> Record_batch.t -> int
(** Append one segment; returns the bytes written. *)

val of_string : string -> (Record_batch.t list, string) result
(** Decode every segment of an in-memory file image (copy path). *)

val read_file : string -> (Record_batch.t list, string) result
(** Read every segment of a file, one batch per segment — zero-copy when
    {!mmap_enabled}, bulk column copy otherwise.  Validation (magic,
    extents, alignment, tag bytes) is identical on both paths. *)

val batch_of_file : string -> (Record_batch.t, string) result
(** {!read_file} concatenated; a single-segment file returns its mapped
    batch without copying. *)

val batch_of_string : string -> (Record_batch.t, string) result
