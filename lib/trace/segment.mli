(** Columnar on-disk trace segments, readable zero-copy via [mmap],
    self-verifying via CRC-32C.

    Layout of one v2 segment (all integers little-endian):

    {v
      offset 0    magic (8 bytes, "\xD7DFSC\x02\x00\x00")
      offset 8    record count n          int64
      offset 16   segment length in bytes int64 (header included)
      offset 24   header CRC-32C          uint32 (over the 128 header
                  bytes with this field zeroed)
      offset 28   column CRC-32C[11]      uint32 each, in column order
                  (times, servers, clients, users, pids, files,
                   col_a..col_d, tags)
      offset 72   reserved, zero to offset 128
      offset 128  times    float64[n]     8-byte aligned
      + 8n        servers  int32[n]       4-byte aligned
      + 4n each   clients, users, pids, files,
                  col_a, col_b, col_c, col_d   int32[n]
      + 44n       tags     uint8[n]
      ...         zero padding to a multiple of 8
    v}

    v1 segments (magic "\xD7DFSC\x01\x00\x00", 64-byte header, no
    checksums) remain readable, and files may mix versions.

    A file is a sequence of segments; every segment length is a multiple
    of 8, so all column offsets stay naturally aligned.  On little-endian
    hosts (unless [DFS_MMAP=0]) {!read_file} serves each column as a
    Bigarray window straight onto the [Unix.map_file]'d file — no copy,
    no per-record decode; the portable fallback bulk-copies the columns
    with explicit little-endian reads.  Checksums are verified once per
    column over the mapped window (or the source string), and a
    per-process (size, mtime) cache skips re-verification of files that
    already scanned clean.

    Counters: [trace.encoded_bytes] (segment bytes written),
    [trace.mapped_bytes] (column bytes served via [mmap]),
    [trace.decode.skipped_records] (records served without per-record
    decode, on either read path) and [trace.checksum.verified_bytes]
    (column bytes hashed during verification). *)

val magic : string
(** 8-byte v2 file magic ("\xD7DFSC\x02\x00\x00"). *)

val magic_v1 : string
(** 8-byte v1 file magic ("\xD7DFSC\x01\x00\x00"). *)

val header_bytes : int
(** Fixed v2 segment header size (128). *)

val header_bytes_v1 : int
(** Fixed v1 segment header size (64). *)

val bytes_per_record : int
(** Column payload bytes per record (45). *)

val segment_bytes : count:int -> int
(** Total encoded size of a v2 segment holding [count] records, padding
    included. *)

val is_segment : string -> bool
(** Does the string start with either segment magic? *)

val segment_version : string -> int option
(** [Some 1]/[Some 2] when the string starts with a known magic. *)

val mmap_enabled : unit -> bool
(** Whether reads go through [Unix.map_file]: true on little-endian
    hosts unless the [DFS_MMAP] environment variable is [0]/[false]/
    [no]/[off]. Re-read on every call, so tests can toggle it. *)

val encode_batch : ?version:int -> Record_batch.t -> string
(** One whole segment, header, checksums and padding included.
    [version] defaults to 2; [~version:1] emits the legacy unchecksummed
    layout (for compatibility tests and old-archive tooling).
    @raise Invalid_argument on any other version. *)

val write_batch : ?version:int -> out_channel -> Record_batch.t -> int
(** Append one segment; returns the bytes written. *)

(** {1 Scanning and salvage} *)

type scan_error = {
  offset : int;  (** byte offset of the first invalid segment *)
  reason : string;  (** one-line diagnostic, ["byte %d: ..."] *)
}

type scan = {
  batches : Record_batch.t list;  (** decoded valid prefix, in order *)
  records : int;  (** total records in [batches] *)
  valid_bytes : int;
      (** length of the longest valid segment-sequence prefix; equals
          [total_bytes] iff the source is clean *)
  total_bytes : int;
  error : scan_error option;  (** [None] iff the source is clean *)
}

val scan_string : ?verify:bool -> string -> scan
(** Walk every segment of an in-memory file image, stopping at the first
    invalid one instead of failing.  [verify] (default true) checks v2
    header and column CRCs; structure, extent and tag checks always
    run. *)

val scan_file : ?verify:bool -> string -> (scan, string) result
(** Same over a file (zero-copy when {!mmap_enabled}); [Error] only for
    I/O failures (open/stat/map), never for corruption.  Always hits the
    disk — no verified-file cache — so fsck sees the current bytes. *)

(** {1 Reading} *)

val of_string :
  ?on_corruption:Corruption.policy ->
  string ->
  (Record_batch.t list, string) result
(** Decode every segment of an in-memory file image (copy path).
    Under [Fail] (default) the first invalid segment is an [Error];
    under [Salvage] the valid prefix is returned and the incident is
    counted via {!Corruption.note}. *)

val read_file :
  ?on_corruption:Corruption.policy ->
  string ->
  (Record_batch.t list, string) result
(** Read every segment of a file, one batch per segment — zero-copy when
    {!mmap_enabled}, bulk column copy otherwise.  Validation (magic,
    checksums, extents, alignment, tag bytes) is identical on both
    paths; checksum verification is skipped when the file's
    (size, mtime) already scanned clean this process. *)

val batch_of_file :
  ?on_corruption:Corruption.policy ->
  string ->
  (Record_batch.t, string) result
(** {!read_file} concatenated; a single-segment file returns its mapped
    batch without copying. *)

val batch_of_string :
  ?on_corruption:Corruption.policy ->
  string ->
  (Record_batch.t, string) result

val cache_clear : unit -> unit
(** Drop the verified-file cache (tests and fsck --repair use this after
    rewriting files in place). *)
