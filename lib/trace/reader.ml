let default_source = "<trace>"

(* Under [Salvage], a parse failure keeps the records decoded ahead of
   the damage and records the incident; under [Fail] it surfaces as the
   reader's [Error].  [count] is how many records the prefix holds. *)
let finish_policy ~on_corruption ~source ~count ~ok = function
  | None -> Ok ok
  | Some reason -> (
    match (on_corruption : Corruption.policy) with
    | Corruption.Fail -> Error reason
    | Corruption.Salvage ->
      Corruption.note ~source ~salvaged:count reason;
      Ok ok)

let parse_lines ?(on_corruption = Corruption.Fail) ?(source = default_source)
    lines ~init ~f =
  (* [lines] is a Seq of raw lines including the header. *)
  match lines () with
  | Seq.Nil ->
    finish_policy ~on_corruption ~source ~count:0 ~ok:init
      (Some "empty trace")
  | Seq.Cons (first, rest) ->
    if not (String.equal first Codec.header) then
      finish_policy ~on_corruption ~source ~count:0 ~ok:init
        (Some (Printf.sprintf "bad trace header %S" first))
    else begin
      let acc = ref init
      and count = ref 0
      and line_no = ref 1
      and err = ref None in
      (try
         Seq.iter
           (fun line ->
             incr line_no;
             if not (String.equal line "") then
               match Codec.decode line with
               | Ok r ->
                 acc := f !acc r;
                 incr count
               | Error e ->
                 err := Some (Printf.sprintf "line %d: %s" !line_no e);
                 raise Exit)
           rest
       with Exit -> ());
      finish_policy ~on_corruption ~source ~count:!count ~ok:!acc !err
    end

let lines_of_string s = String.split_on_char '\n' s |> List.to_seq

let fold_batches batches ~init ~f =
  List.fold_left
    (fun acc batch ->
      let acc = ref acc in
      Record_batch.iter (fun r -> acc := f !acc r) batch;
      !acc)
    init batches

(* Structural decoding alone does not bound the domain of a binary
   trace: zigzag varints happily carry negative sizes, and the
   delta-coded time column can reproduce nan/inf bit patterns.  Scan the
   decoded batch with [Record.validate]; under [Fail] the first bad
   record is the error, under [Salvage] the invalid records are dropped
   and the incident is counted like any other corruption. *)
let validate_batch ~on_corruption ~source batch =
  let n = Record_batch.length batch in
  let first_bad = ref None in
  (try
     for i = 0 to n - 1 do
       match Record.validate (Record_batch.get batch i) with
       | Ok _ -> ()
       | Error e ->
         first_bad := Some (i, e);
         raise Exit
     done
   with Exit -> ());
  match !first_bad with
  | None -> Ok batch
  | Some (i, e) -> (
    let reason = Printf.sprintf "record %d: %s" i e in
    match (on_corruption : Corruption.policy) with
    | Corruption.Fail -> Error reason
    | Corruption.Salvage ->
      let builder = Record_batch.Builder.create ~capacity:n () in
      Record_batch.iter
        (fun r ->
          match Record.validate r with
          | Ok r -> Record_batch.Builder.add builder r
          | Error _ -> ())
        batch;
      let kept = Record_batch.Builder.finish builder in
      Corruption.note ~source ~salvaged:(Record_batch.length kept) reason;
      Ok kept)

(* Binary traces have no framing, so salvage keeps the longest decodable
   record prefix. *)
let decode_binary ?(on_corruption = Corruption.Fail)
    ?(source = default_source) s =
  let structural =
    match (on_corruption : Corruption.policy) with
    | Corruption.Fail -> Binary_codec.decode_string s
    | Corruption.Salvage ->
      let p = Binary_codec.decode_string_partial s in
      (match p.Binary_codec.error with
      | None -> ()
      | Some (_, reason) ->
        Corruption.note ~source
          ~salvaged:(Record_batch.length p.Binary_codec.batch)
          reason);
      Ok p.Binary_codec.batch
  in
  Result.bind structural (validate_batch ~on_corruption ~source)

let fold_string ?on_corruption ?source s ~init ~f =
  if Segment.is_segment s then
    Result.map
      (fun batches -> fold_batches batches ~init ~f)
      (Segment.of_string ?on_corruption s)
  else if Binary_codec.is_binary s then
    Result.map
      (fun batch ->
        let acc = ref init in
        Record_batch.iter (fun r -> acc := f !acc r) batch;
        !acc)
      (decode_binary ?on_corruption ?source s)
  else parse_lines ?on_corruption ?source (lines_of_string s) ~init ~f

let of_string ?on_corruption ?source s =
  if Segment.is_segment s then
    Result.map
      (fun batches ->
        List.rev (fold_batches batches ~init:[] ~f:(fun acc r -> r :: acc)))
      (Segment.of_string ?on_corruption s)
  else if Binary_codec.is_binary s then
    Result.map
      (fun batch -> Array.to_list (Record_batch.to_array batch))
      (decode_binary ?on_corruption ?source s)
  else
    Result.map List.rev
      (parse_lines ?on_corruption ?source (lines_of_string s) ~init:[]
         ~f:(fun acc r -> r :: acc))

let batch_of_string ?on_corruption ?source s =
  if Segment.is_segment s then Segment.batch_of_string ?on_corruption s
  else if Binary_codec.is_binary s then decode_binary ?on_corruption ?source s
  else begin
    let builder = Record_batch.Builder.create () in
    Result.map
      (fun () -> Record_batch.Builder.finish builder)
      (parse_lines ?on_corruption ?source (lines_of_string s) ~init:()
         ~f:(fun () r -> Record_batch.Builder.add builder r))
  end

let lines_of_channel ic =
  let rec next () =
    match input_line ic with
    | line -> Seq.Cons (line, next)
    | exception End_of_file -> Seq.Nil
  in
  next

let read_all ic =
  let len = in_channel_length ic in
  really_input_string ic len

let with_channel path k =
  let ic = open_in_bin path in
  (* [close_in_noerr]: a raising close inside [~finally] would mask the
     real failure (and [Fun.protect] would turn it into [Finally_raised]);
     the descriptor is released either way. *)
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> k ic)

(* Peek at the first magic-sized chunk without consuming it. The
   columnar magic is the longest, and no magic is a prefix of another. *)
let sniff_format ic =
  let n =
    max (String.length Segment.magic) (String.length Binary_codec.magic)
  in
  let buf = Bytes.create n in
  let got = input ic buf 0 n in
  seek_in ic 0;
  let prefix = Bytes.sub_string buf 0 got in
  if Segment.is_segment prefix then `Columnar
  else if Binary_codec.is_binary prefix then `Binary
  else `Text

let fold_file ?on_corruption path ~init ~f =
  with_channel path (fun ic ->
      match sniff_format ic with
      | `Columnar ->
        (* [Segment.read_file] can serve the columns zero-copy. *)
        Result.map
          (fun batches -> fold_batches batches ~init ~f)
          (Segment.read_file ?on_corruption path)
      | `Binary -> fold_string ?on_corruption ~source:path (read_all ic) ~init ~f
      | `Text ->
        parse_lines ?on_corruption ~source:path (lines_of_channel ic) ~init ~f)

let of_file ?on_corruption path =
  with_channel path (fun ic ->
      match sniff_format ic with
      | `Columnar ->
        Result.map
          (fun batches ->
            List.rev (fold_batches batches ~init:[] ~f:(fun acc r -> r :: acc)))
          (Segment.read_file ?on_corruption path)
      | `Binary -> of_string ?on_corruption ~source:path (read_all ic)
      | `Text ->
        Result.map List.rev
          (parse_lines ?on_corruption ~source:path (lines_of_channel ic)
             ~init:[] ~f:(fun acc r -> r :: acc)))

let batch_of_file ?on_corruption path =
  with_channel path (fun ic ->
      match sniff_format ic with
      | `Columnar ->
        Result.map Record_batch.concat (Segment.read_file ?on_corruption path)
      | `Binary | `Text ->
        batch_of_string ?on_corruption ~source:path (read_all ic))
