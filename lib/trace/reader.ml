let parse_lines lines ~init ~f =
  (* [lines] is a Seq of raw lines including the header. *)
  match lines () with
  | Seq.Nil -> Error "empty trace"
  | Seq.Cons (first, rest) ->
    if not (String.equal first Codec.header) then
      Error (Printf.sprintf "bad trace header %S" first)
    else begin
      let acc = ref init and line_no = ref 1 and err = ref None in
      (try
         Seq.iter
           (fun line ->
             incr line_no;
             if not (String.equal line "") then
               match Codec.decode line with
               | Ok r -> acc := f !acc r
               | Error e ->
                 err := Some (Printf.sprintf "line %d: %s" !line_no e);
                 raise Exit)
           rest
       with Exit -> ());
      match !err with Some e -> Error e | None -> Ok !acc
    end

let lines_of_string s = String.split_on_char '\n' s |> List.to_seq

let of_string s =
  Result.map List.rev
    (parse_lines (lines_of_string s) ~init:[] ~f:(fun acc r -> r :: acc))

let lines_of_channel ic =
  let rec next () =
    match input_line ic with
    | line -> Seq.Cons (line, next)
    | exception End_of_file -> Seq.Nil
  in
  next

let fold_file path ~init ~f =
  let ic = open_in path in
  (* [close_in_noerr]: a raising close inside [~finally] would mask the
     real failure (and [Fun.protect] would turn it into [Finally_raised]);
     the descriptor is released either way. *)
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_lines (lines_of_channel ic) ~init ~f)

let of_file path =
  Result.map List.rev (fold_file path ~init:[] ~f:(fun acc r -> r :: acc))
