let parse_lines lines ~init ~f =
  (* [lines] is a Seq of raw lines including the header. *)
  match lines () with
  | Seq.Nil -> Error "empty trace"
  | Seq.Cons (first, rest) ->
    if not (String.equal first Codec.header) then
      Error (Printf.sprintf "bad trace header %S" first)
    else begin
      let acc = ref init and line_no = ref 1 and err = ref None in
      (try
         Seq.iter
           (fun line ->
             incr line_no;
             if not (String.equal line "") then
               match Codec.decode line with
               | Ok r -> acc := f !acc r
               | Error e ->
                 err := Some (Printf.sprintf "line %d: %s" !line_no e);
                 raise Exit)
           rest
       with Exit -> ());
      match !err with Some e -> Error e | None -> Ok !acc
    end

let lines_of_string s = String.split_on_char '\n' s |> List.to_seq

let fold_string s ~init ~f =
  if Binary_codec.is_binary s then
    Result.map
      (fun batch ->
        let acc = ref init in
        Record_batch.iter (fun r -> acc := f !acc r) batch;
        !acc)
      (Binary_codec.decode_string s)
  else parse_lines (lines_of_string s) ~init ~f

let of_string s =
  if Binary_codec.is_binary s then
    Result.map
      (fun batch -> Array.to_list (Record_batch.to_array batch))
      (Binary_codec.decode_string s)
  else
    Result.map List.rev
      (parse_lines (lines_of_string s) ~init:[] ~f:(fun acc r -> r :: acc))

let batch_of_string s =
  if Binary_codec.is_binary s then Binary_codec.decode_string s
  else begin
    let builder = Record_batch.Builder.create () in
    Result.map
      (fun () -> Record_batch.Builder.finish builder)
      (parse_lines (lines_of_string s) ~init:() ~f:(fun () r ->
           Record_batch.Builder.add builder r))
  end

let lines_of_channel ic =
  let rec next () =
    match input_line ic with
    | line -> Seq.Cons (line, next)
    | exception End_of_file -> Seq.Nil
  in
  next

let read_all ic =
  let len = in_channel_length ic in
  really_input_string ic len

let with_channel path k =
  let ic = open_in_bin path in
  (* [close_in_noerr]: a raising close inside [~finally] would mask the
     real failure (and [Fun.protect] would turn it into [Finally_raised]);
     the descriptor is released either way. *)
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> k ic)

let sniff_binary ic =
  (* Peek at the first magic-sized chunk without consuming it. *)
  let n = String.length Binary_codec.magic in
  let buf = Bytes.create n in
  let got = input ic buf 0 n in
  seek_in ic 0;
  got = n && Bytes.to_string buf = Binary_codec.magic

let fold_file path ~init ~f =
  with_channel path (fun ic ->
      if sniff_binary ic then fold_string (read_all ic) ~init ~f
      else parse_lines (lines_of_channel ic) ~init ~f)

let of_file path =
  with_channel path (fun ic ->
      if sniff_binary ic then of_string (read_all ic)
      else
        Result.map List.rev
          (parse_lines (lines_of_channel ic) ~init:[] ~f:(fun acc r ->
               r :: acc)))

let batch_of_file path = with_channel path (fun ic -> batch_of_string (read_all ic))
