(* Capped-exponential-backoff retries for the trace pipeline's real disk
   I/O (spill sealing, trace-file fsync).

   Transient host-side errors — EINTR, EAGAIN, EIO, EBUSY — get a few
   bounded retries with a doubling, capped sleep between attempts, the
   same shape [Dfs_fault.Injector] charges simulated clients.  Anything
   else (ENOSPC, EACCES, Sys_error from a missing directory, ...) is
   treated as permanent and propagates immediately: retrying cannot fix
   it and would only delay the diagnostic.

   The [inject] hook exists so tests and the chaos harness can compose
   this loop with [Dfs_fault]-style transient disk errors: install a
   seeded hook that raises [Unix_error (EIO, ...)] on a deterministic
   subset of attempts and the sealing path must still converge. *)

let default_attempts = 5

let default_base_delay = 0.002

let default_max_delay = 0.250

let m_retries = Dfs_obs.Metrics.counter "trace.io.retries"

let m_giveups = Dfs_obs.Metrics.counter "trace.io.giveups"

let inject : (op:string -> path:string -> attempt:int -> unit) option ref =
  ref None

let set_inject f = inject := f

let is_transient = function
  | Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                     | Unix.EIO | Unix.EBUSY), _, _) ->
    true
  | _ -> false

let run ?(attempts = default_attempts) ?(base_delay = default_base_delay)
    ?(max_delay = default_max_delay) ~op ~path f =
  if attempts < 1 then invalid_arg "Io_retry.run: attempts must be >= 1";
  let rec go attempt delay =
    match
      (match !inject with Some hook -> hook ~op ~path ~attempt | None -> ());
      f ()
    with
    | result -> result
    | exception e when is_transient e && attempt + 1 < attempts ->
      Dfs_obs.Metrics.incr m_retries;
      Dfs_obs.Log.warn "%s %s: transient I/O error (attempt %d/%d): %s" op
        path (attempt + 1) attempts (Printexc.to_string e);
      if delay > 0.0 then Unix.sleepf delay;
      go (attempt + 1) (Float.min (2.0 *. delay) max_delay)
    | exception e ->
      if is_transient e then Dfs_obs.Metrics.incr m_giveups;
      raise e
  in
  go 0 base_delay
