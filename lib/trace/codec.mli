(** Line-oriented trace encoding.

    One record per line, tab-separated:
    {v time server client user pid migrated file kind <kind fields...> v}
    A trace file begins with a header line identifying the format version,
    so readers can reject files written by incompatible versions. *)

val header : string
(** The version header line (without newline). *)

val encode : Record.t -> string
(** One line, without the trailing newline.

    Precision contract: times are printed with [%.6f], so one
    encode/decode cycle quantizes the time to the nearest microsecond
    (within 5e-7 of the original); times already quantized — including
    everything previously read from a text trace — round-trip exactly,
    as does every other field.  Use the binary format
    ({!Binary_codec}) when bit-exact times matter. *)

val decode : string -> (Record.t, string) result
(** Parse one line. The error string describes the first problem found. *)
