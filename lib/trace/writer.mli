(** Trace sinks.

    Each simulated file server writes its own trace (the paper gathered
    traces on the four servers only). A writer prepends the format header
    and then encodes records as text lines ({!Codec}), in the compact
    varint binary format ({!Binary_codec}), or as mmap-able columnar
    segments ({!Segment}, sealed every 65536 records and on
    {!flush}/close); readers pick the decoder by sniffing the header. *)

type format = Text | Binary | Columnar

val format_of_string : string -> (format, string) result
(** Parses ["text"], ["binary"] and ["columnar"] (the [--trace-format]
    CLI values). *)

val format_to_string : format -> string

type t

val to_buffer : ?format:format -> Buffer.t -> t
(** Defaults to [Text], as do the other constructors. *)

val to_channel : ?format:format -> out_channel -> t

val write : t -> Record.t -> unit

val count : t -> int
(** Number of records written so far. *)

val flush : t -> unit

val with_file : ?format:format -> string -> (t -> 'a) -> 'a
(** [with_file path f] streams the trace into [path ^ ".tmp"]
    (binary-safe), then fsyncs and atomically renames it to [path] once
    [f] returns, fsyncing the directory too.  If [f] raises, the temp
    file is removed and [path] is left untouched — a trace file under
    its final name is always complete. *)
