let magic = "\xD7DFSB\x01"

let is_binary s =
  String.length s >= String.length magic
  && String.sub s 0 (String.length magic) = magic

(* Payload varints per kind tag (Record_batch columns a..d). *)
let payload_arity = [| 2; 4; 2; 1; 1; 1; 2; 2 |]

(* Flag bits a well-formed tag byte may carry, per kind. Anything outside
   this mask marks a corrupt stream. *)
let flag_mask = function
  | 0 -> 0xF8 (* open: migrated, mode, created, is_dir *)
  | 3 -> 0x88 (* delete: migrated, is_dir *)
  | _ -> 0x08 (* others: migrated only *)

let tag_ok raw =
  let kind = raw land 0x07 in
  raw land lnot (flag_mask kind) land 0xF8 = 0
  && (kind <> 0 || (raw lsr 4) land 0x03 <> 3)

(* -- varints -------------------------------------------------------------- *)

let[@inline] zigzag n = (n lsl 1) lxor (n asr 62)

let[@inline] unzigzag n = (n lsr 1) lxor (-(n land 1))

let[@inline] zigzag64 n = Int64.logxor (Int64.shift_left n 1) (Int64.shift_right n 63)

let[@inline] unzigzag64 n =
  Int64.logxor
    (Int64.shift_right_logical n 1)
    (Int64.neg (Int64.logand n 1L))

let add_varint buf n =
  (* Unsigned LEB128 over the 63-bit native int (always zigzagged first,
     so [n] is non-negative). *)
  let n = ref n in
  while !n land lnot 0x7F <> 0 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!n land 0x7F)));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !n)

let add_varint64 buf n =
  let n = ref n in
  while Int64.logand !n (Int64.lognot 0x7FL) <> 0L do
    Buffer.add_char buf
      (Char.unsafe_chr (0x80 lor (Int64.to_int (Int64.logand !n 0x7FL))));
    n := Int64.shift_right_logical !n 7
  done;
  Buffer.add_char buf (Char.unsafe_chr (Int64.to_int !n))

exception Truncated

let read_varint s pos =
  (* Returns the raw (zigzagged) value; raises [Truncated] past the end. *)
  let len = String.length s in
  let n = ref 0 and shift = ref 0 and i = ref pos and continue = ref true in
  while !continue do
    if !i >= len then raise Truncated;
    let byte = Char.code (String.unsafe_get s !i) in
    incr i;
    n := !n lor ((byte land 0x7F) lsl !shift);
    shift := !shift + 7;
    continue := byte land 0x80 <> 0
  done;
  (!n, !i)

let read_varint64 s pos =
  let len = String.length s in
  let n = ref 0L and shift = ref 0 and i = ref pos and continue = ref true in
  while !continue do
    if !i >= len then raise Truncated;
    let byte = Char.code (String.unsafe_get s !i) in
    incr i;
    n :=
      Int64.logor !n
        (Int64.shift_left (Int64.of_int (byte land 0x7F)) !shift);
    shift := !shift + 7;
    continue := byte land 0x80 <> 0
  done;
  (!n, !i)

(* -- encoding ------------------------------------------------------------- *)

module Encoder = struct
  type t = {
    buf : Buffer.t;
    mutable time_bits : int64;
    mutable server : int;
    mutable client : int;
    mutable user : int;
    mutable pid : int;
    mutable file : int;
  }

  let create () =
    {
      buf = Buffer.create 64;
      time_bits = 0L;
      server = 0;
      client = 0;
      user = 0;
      pid = 0;
      file = 0;
    }

  let encode_fields t ~time ~server ~client ~user ~pid ~file ~raw_tag ~a ~b ~c
      ~d =
    let buf = t.buf in
    Buffer.clear buf;
    Buffer.add_char buf (Char.unsafe_chr raw_tag);
    let bits = Int64.bits_of_float time in
    add_varint64 buf (zigzag64 (Int64.sub bits t.time_bits));
    t.time_bits <- bits;
    add_varint buf (zigzag (server - t.server));
    t.server <- server;
    add_varint buf (zigzag (client - t.client));
    t.client <- client;
    add_varint buf (zigzag (user - t.user));
    t.user <- user;
    add_varint buf (zigzag (pid - t.pid));
    t.pid <- pid;
    add_varint buf (zigzag (file - t.file));
    t.file <- file;
    let arity = payload_arity.(raw_tag land 0x07) in
    add_varint buf (zigzag a);
    if arity >= 2 then add_varint buf (zigzag b);
    if arity >= 3 then begin
      add_varint buf (zigzag c);
      add_varint buf (zigzag d)
    end;
    Buffer.contents buf

  let encode t (r : Record.t) =
    let raw_tag, a, b, c, d = Record_batch.pack_kind r.kind ~migrated:r.migrated in
    encode_fields t ~time:r.time
      ~server:(Ids.Server.to_int r.server)
      ~client:(Ids.Client.to_int r.client)
      ~user:(Ids.User.to_int r.user)
      ~pid:(Ids.Process.to_int r.pid)
      ~file:(Ids.File.to_int r.file)
      ~raw_tag ~a ~b ~c ~d
end

let encode_batch batch =
  let out = Buffer.create (32 * Record_batch.length batch + 16) in
  Buffer.add_string out magic;
  let enc = Encoder.create () in
  for i = 0 to Record_batch.length batch - 1 do
    Buffer.add_string out
      (Encoder.encode_fields enc
         ~time:(Record_batch.time batch i)
         ~server:(Record_batch.server batch i)
         ~client:(Record_batch.client batch i)
         ~user:(Record_batch.user batch i)
         ~pid:(Record_batch.pid batch i)
         ~file:(Record_batch.file batch i)
         ~raw_tag:(Record_batch.raw_tag batch i)
         ~a:(Record_batch.a batch i) ~b:(Record_batch.b batch i)
         ~c:(Record_batch.c batch i) ~d:(Record_batch.d batch i))
  done;
  Buffer.contents out

(* -- decoding ------------------------------------------------------------- *)

type partial = {
  batch : Record_batch.t;
  consumed : int;
  error : (int * string) option;
}

let decode_string_partial s =
  if not (is_binary s) then
    {
      batch = Record_batch.of_list [];
      consumed = 0;
      error =
        Some
          ( 0,
            Printf.sprintf "byte 0: bad binary trace magic %S"
              (String.sub s 0 (min (String.length s) (String.length magic))) );
    }
  else begin
    let len = String.length s in
    let builder = Record_batch.Builder.create ~capacity:(max 16 (len / 16)) () in
    let pos = ref (String.length magic) in
    (* Byte offset just past the last fully decoded record: the longest
       salvageable prefix of a damaged stream. *)
    let consumed = ref (String.length magic) in
    let time_bits = ref 0L in
    let server = ref 0
    and client = ref 0
    and user = ref 0
    and pid = ref 0
    and file = ref 0 in
    let err = ref None in
    (try
       while !pos < len do
         let record_start = !pos in
         let raw_tag = Char.code (String.unsafe_get s !pos) in
         incr pos;
         if not (tag_ok raw_tag) then begin
           err :=
             Some
               (Printf.sprintf "byte %d: malformed tag 0x%02x" record_start
                  raw_tag);
           raise Exit
         end;
         let delta, p = read_varint64 s !pos in
         pos := p;
         time_bits := Int64.add !time_bits (unzigzag64 delta);
         let time = Int64.float_of_bits !time_bits in
         let delta_of r =
           let v, p = read_varint s !pos in
           pos := p;
           r := !r + unzigzag v;
           !r
         in
         let server = delta_of server in
         let client = delta_of client in
         let user = delta_of user in
         let pid = delta_of pid in
         let file = delta_of file in
         let arity = payload_arity.(raw_tag land 0x07) in
         let payload () =
           let v, p = read_varint s !pos in
           pos := p;
           unzigzag v
         in
         let a = payload () in
         let b = if arity >= 2 then payload () else 0 in
         let c = if arity >= 3 then payload () else 0 in
         let d = if arity >= 3 then payload () else 0 in
         Record_batch.Builder.add_raw builder ~time ~server ~client ~user
           ~pid ~file ~raw_tag ~a ~b ~c ~d;
         consumed := !pos
       done
     with
    | Exit -> ()
    | Truncated ->
      err :=
        Some
          (Printf.sprintf
             "byte %d: truncated binary trace (unexpected end of data)"
             !consumed));
    {
      batch = Record_batch.Builder.finish builder;
      consumed = !consumed;
      error = Option.map (fun e -> (!consumed, e)) !err;
    }
  end

let decode_string s =
  match decode_string_partial s with
  | { error = None; batch; _ } -> Ok batch
  | { error = Some (_, reason); _ } -> Error reason
