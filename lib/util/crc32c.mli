(** CRC-32C (Castagnoli, reflected 0x82F63B78, init/final 0xFFFFFFFF) —
    the checksum stamped on columnar trace-segment extents.

    Checksums are returned as non-negative ints in [\[0, 2^32)], the
    little-endian [u32] the segment header stores.  The implementation
    is slice-by-8 over either [string]s or [int8_unsigned] Bigarrays, so
    mmap'd segment windows can be verified without copying them onto the
    OCaml heap.

    Reference vector: [string "123456789" = 0xE3069283]. *)

type bigstring =
  (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val string : string -> int
(** CRC-32C of a whole string. *)

val string_sub : string -> pos:int -> len:int -> int
(** CRC-32C of [len] bytes starting at [pos].
    @raise Invalid_argument on an out-of-bounds extent. *)

val bigstring_sub : bigstring -> pos:int -> len:int -> int
(** Same, over a Bigarray byte window (e.g. an mmap'd segment). *)

(** {1 Streaming interface} *)

val init : int
(** Initial running state (all ones). *)

val update_string : int -> string -> pos:int -> len:int -> int
(** Fold more bytes into a running CRC state. *)

val update_bigstring : int -> bigstring -> pos:int -> len:int -> int

val finalize : int -> int
(** Final xor; turns a running state into the checksum value. *)
