(** A keyed LRU list with O(1) touch/insert/remove, used by the block
    caches.  Capacity is managed by the caller (Sprite caches change size
    dynamically), so this structure only maintains recency order. *)

module Make (Key : Hashtbl.HashedType) : sig
  type 'a t

  val create : unit -> 'a t

  val length : 'a t -> int

  val mem : 'a t -> Key.t -> bool

  val find : 'a t -> Key.t -> 'a option
  (** Lookup without changing recency. *)

  val use : 'a t -> Key.t -> 'a option
  (** Lookup and mark most-recently-used. *)

  val add : 'a t -> Key.t -> 'a -> unit
  (** Insert as most-recently-used. Replaces any existing binding. *)

  val remove : 'a t -> Key.t -> 'a option

  val clear : 'a t -> unit
  (** Drop every entry (and the recency list) in O(1) table reset. *)

  val lru : 'a t -> (Key.t * 'a) option
  (** Least-recently-used entry, without removing it. *)

  val pop_lru : 'a t -> (Key.t * 'a) option
  (** Remove and return the least-recently-used entry. *)

  val iter : 'a t -> (Key.t -> 'a -> unit) -> unit
  (** Iterate from least- to most-recently-used. It is not safe to mutate
      the structure during iteration. *)

  val fold : 'a t -> init:'b -> f:('b -> Key.t -> 'a -> 'b) -> 'b

  val to_list : 'a t -> (Key.t * 'a) list
  (** LRU-first snapshot. *)
end
