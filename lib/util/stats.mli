(** Running (streaming) statistics and small numeric helpers.

    The paper reports most measurements as "average (standard deviation)"
    with optional min/max over traces; {!t} accumulates exactly that
    without storing samples. *)

type t
(** Mutable accumulator (Welford's algorithm). *)

val create : unit -> t

val add : t -> float -> unit

val add_n : t -> float -> int -> unit
(** [add_n t x k] adds [x] [k] times (O(k) is avoided). *)

val count : t -> int

val total : t -> float
(** Sum of all samples. *)

val mean : t -> float
(** 0 when empty. *)

val stddev : t -> float
(** Sample standard deviation (Bessel-corrected, [m2 / (n-1)]); 0 when
    fewer than 2 samples.  The sample convention matches the paper's
    tables, which report statistics of observed traces as estimates.
    [merge] and [add_n] accumulate the convention-free sum of squared
    deviations, so they combine consistently with this definition. *)

val min : t -> float
(** [nan] when empty. *)

val max : t -> float
(** [nan] when empty. *)

val merge : t -> t -> t
(** Combine two accumulators (parallel Welford merge). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

val summary : t -> summary

val pp_summary : Format.formatter -> summary -> unit

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] in [\[0,1\]], linear interpolation.
    The array must be sorted ascending and non-empty. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or 0 when [b = 0]. *)
