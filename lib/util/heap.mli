(** Binary min-heaps, the priority queue behind the event engine and the
    k-way trace merge. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int

  val dummy : t
  (** Inert element used to clear vacated array slots after [pop] and
      [filter_in_place], so removed elements (and whatever their closures
      capture) become collectable immediately.  Never compared against
      live elements. *)
end

module Make (Elt : ORDERED) : sig
  type t

  val create : unit -> t

  val length : t -> int

  val is_empty : t -> bool

  val push : t -> Elt.t -> unit

  val peek : t -> Elt.t option
  (** Smallest element, without removing it. *)

  val pop : t -> Elt.t option
  (** Remove and return the smallest element. *)

  val pop_exn : t -> Elt.t
  (** @raise Invalid_argument on an empty heap. *)

  val clear : t -> unit

  val filter_in_place : t -> (Elt.t -> bool) -> unit
  (** Drop every element that fails the predicate and re-establish the
      heap property, in place and in O(n).  Used by the engine to purge
      cancelled events. *)

  val to_sorted_list : t -> Elt.t list
  (** Drains the heap. *)
end
