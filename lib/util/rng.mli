(** Deterministic pseudo-random number generation.

    All simulations in this repository draw randomness through this module so
    that every experiment is reproducible from a single integer seed.  The
    generator is splitmix64: fast, well distributed, and splittable, which
    lets each simulated client/user/process own an independent stream. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val split_key : t -> int -> t
(** [split_key t key] derives an independent generator from [t]'s
    {e current} state and [key], without advancing [t]: a pure function
    of (state, key), unlike {!split} whose result depends on how many
    draws preceded it.  Distinct keys give decorrelated streams.  Used
    wherever a stream must be attributable to a stable entity id (e.g.
    a simulation partition) rather than to draw order. *)

val derive_seed : int -> int -> int
(** [derive_seed seed key] is a non-negative integer seed derived purely
    from [(seed, key)] — the seed-level counterpart of {!split_key} for
    APIs that take an [int] seed rather than a generator. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples Exp with the given mean. Requires [mean > 0]. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian via Box-Muller. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** exp of a normal; [mu]/[sigma] are the parameters of the underlying
    normal (i.e. the mean of [log x]). *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Heavy-tailed Pareto sample, >= [x_min]. Requires [alpha > 0]. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples a rank in [\[1, n\]] with probability
    proportional to [1 / rank^s], by inversion on a precomputed table-free
    rejection scheme. Requires [n >= 1]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_weighted : t -> ('a * float) list -> 'a
(** Choice proportional to the (non-negative, not all zero) weights. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
