type t = { jobs : int }

let default_jobs () =
  match Sys.getenv_opt "DFS_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  { jobs }

let jobs t = t.jobs

(* True while the current domain is executing a pool task; set in both
   the parallel and the sequential path so nested use fails the same way
   regardless of DFS_JOBS. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let reject_nested () =
  if Domain.DLS.get in_task then
    invalid_arg "Dfs_util.Pool.map: nested use (map called from inside a task)"

let run_task f x =
  Domain.DLS.set in_task true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_task false) (fun () -> f x)

let map_seq f xs = List.map (fun x -> run_task f x) xs

let map pool f xs =
  reject_nested ();
  let items = Array.of_list xs in
  let n = Array.length items in
  let workers = min pool.jobs n in
  if n = 0 then []
  else if workers <= 1 then map_seq f xs
  else begin
    let results : _ option array = Array.make n None in
    let errors : exn option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          match run_task f items.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e
      done
    in
    let domains = Array.init workers (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    Array.iteri (fun _ -> function Some e -> raise e | None -> ()) errors;
    Array.to_list (Array.map Option.get results)
  end
