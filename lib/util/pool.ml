type t = { jobs : int }

let default_jobs () =
  match Sys.getenv_opt "DFS_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  { jobs }

let jobs t = t.jobs

(* True while the current domain is executing a pool task; set in both
   the parallel and the sequential path so nested use fails the same way
   regardless of DFS_JOBS. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let reject_nested () =
  if Domain.DLS.get in_task then
    invalid_arg "Dfs_util.Pool.map: nested use (map called from inside a task)"

(* Every task execution is a profiler span on the executing domain's
   stream, and its wall time feeds the worker's busy accumulator — the
   basis of the pool.* utilization gauges.  Purely observational: the
   task's result and ordering are untouched. *)
let run_task busy f x =
  Domain.DLS.set in_task true;
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      busy := !busy +. (Unix.gettimeofday () -. t0);
      Domain.DLS.set in_task false)
    (fun () -> Dfs_obs.Profiler.span ~cat:"pool" "pool.task" (fun () -> f x))

(* Per-map utilization gauges: how busy each worker domain was and what
   fraction of the map's worker-seconds did useful work.  Gauges are
   last-writer-wins, so a snapshot reflects the most recent [map]. *)
let publish_gauges ~workers ~wall busy =
  let module M = Dfs_obs.Metrics in
  Array.iteri
    (fun i b ->
      M.set (M.gauge (Printf.sprintf "pool.domain%d.busy_s" i)) b)
    busy;
  let total = Array.fold_left ( +. ) 0.0 busy in
  let capacity = float_of_int workers *. wall in
  M.set (M.gauge "pool.jobs") (float_of_int workers);
  M.set (M.gauge "pool.wall_s") wall;
  M.set (M.gauge "pool.busy_s") total;
  M.set (M.gauge "pool.idle_s") (Float.max 0.0 (capacity -. total));
  M.set (M.gauge "pool.utilization")
    (if capacity <= 0.0 then 0.0 else total /. capacity)

let map_seq f xs =
  let t0 = Unix.gettimeofday () in
  let busy = ref 0.0 in
  let results = List.map (fun x -> run_task busy f x) xs in
  publish_gauges ~workers:1
    ~wall:(Unix.gettimeofday () -. t0)
    [| !busy |];
  results

let in_pool_task () = Domain.DLS.get in_task

let map pool f xs =
  reject_nested ();
  let items = Array.of_list xs in
  let n = Array.length items in
  let workers = min pool.jobs n in
  if n = 0 then []
  else if workers <= 1 then map_seq f xs
  else begin
    let results : _ option array = Array.make n None in
    let errors : exn option array = Array.make n None in
    let busy = Array.make workers 0.0 in
    let next = Atomic.make 0 in
    let t0 = Unix.gettimeofday () in
    let worker w () =
      let my_busy = ref 0.0 in
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          match run_task my_busy f items.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e
      done;
      busy.(w) <- !my_busy
    in
    let domains = Array.init workers (fun w -> Domain.spawn (worker w)) in
    Array.iter Domain.join domains;
    publish_gauges ~workers ~wall:(Unix.gettimeofday () -. t0) busy;
    Array.iteri (fun _ -> function Some e -> raise e | None -> ()) errors;
    Array.to_list (Array.map Option.get results)
  end

(* Opportunistic parallelism: a plain [List.map] when already inside a
   pool task (where [map] would reject nested use) so callers like the
   sharded fused analysis can fan out when the pool is free and degrade
   gracefully when an outer map already owns the domains.  The
   sequential fallback publishes no gauges and spawns nothing. *)
let map_auto pool f xs =
  if in_pool_task () then List.map f xs else map pool f xs

(* -- long-lived worker team ------------------------------------------------ *)

module Team = struct
  (* [map] spawns and joins domains per call, which is fine for
     seconds-long tasks but not for a barrier-synchronized loop that
     re-enters its workers thousands of times per run (the sharded
     simulation executes one [run] per lookahead window).  A team keeps
     S-1 spawned domains parked on a condition variable; each [run]
     bumps a generation counter, every member (the caller is member 0)
     executes [f member], and the caller waits until all spawned members
     check back in.

     Unlike [map], a team does not set the pool's [in_task] flag: it is
     a first-class entry point that composes with the preset-level
     [Pool.map] fan-out — a team of size 1 degrades to a plain call in
     the calling domain, so creating one inside a pool task is legal
     (and is exactly what a sharded simulation nested under [--jobs]
     does). *)

  type t = {
    size : int;
    mutex : Mutex.t;
    work : Condition.t;  (* a new generation is ready, or shutdown *)
    idle : Condition.t;  (* a spawned member finished its generation *)
    mutable generation : int;
    mutable job : (int -> unit) option;
    mutable remaining : int;  (* spawned members still in the current gen *)
    mutable errors : (int * exn) list;  (* (member, exn), any order *)
    mutable stopping : bool;
    mutable domains : unit Domain.t array;
  }

  let size t = t.size

  let member_loop t m () =
    let seen = ref 0 in
    let continue = ref true in
    while !continue do
      Mutex.lock t.mutex;
      while t.generation = !seen && not t.stopping do
        Condition.wait t.work t.mutex
      done;
      if t.stopping then begin
        Mutex.unlock t.mutex;
        continue := false
      end
      else begin
        seen := t.generation;
        let job = Option.get t.job in
        Mutex.unlock t.mutex;
        let err = match job m with () -> None | exception e -> Some e in
        Mutex.lock t.mutex;
        (match err with
        | Some e -> t.errors <- (m, e) :: t.errors
        | None -> ());
        t.remaining <- t.remaining - 1;
        if t.remaining = 0 then Condition.broadcast t.idle;
        Mutex.unlock t.mutex
      end
    done

  let create ?size () =
    let size = match size with Some s -> max 1 s | None -> default_jobs () in
    let t =
      {
        size;
        mutex = Mutex.create ();
        work = Condition.create ();
        idle = Condition.create ();
        generation = 0;
        job = None;
        remaining = 0;
        errors = [];
        stopping = false;
        domains = [||];
      }
    in
    t.domains <-
      Array.init (size - 1) (fun i -> Domain.spawn (member_loop t (i + 1)));
    t

  let run t f =
    if t.stopping then invalid_arg "Pool.Team.run: team is shut down";
    if t.size = 1 then f 0
    else begin
      Mutex.lock t.mutex;
      t.job <- Some f;
      t.errors <- [];
      t.remaining <- t.size - 1;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      let my_err = match f 0 with () -> None | exception e -> Some e in
      Mutex.lock t.mutex;
      while t.remaining > 0 do
        Condition.wait t.idle t.mutex
      done;
      let errors = t.errors in
      t.errors <- [];
      t.job <- None;
      Mutex.unlock t.mutex;
      let errors =
        (match my_err with Some e -> (0, e) :: errors | None -> errors)
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      match errors with (_, e) :: _ -> raise e | [] -> ()
    end

  let shutdown t =
    if not t.stopping then begin
      Mutex.lock t.mutex;
      t.stopping <- true;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      Array.iter Domain.join t.domains;
      t.domains <- [||]
    end
end
