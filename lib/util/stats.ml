type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = nan; max = nan; total = 0.0 }

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.min <- x;
    t.max <- x
  end
  else begin
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let add_n t x k =
  if k > 0 then begin
    (* Merging a degenerate accumulator holding x with multiplicity k. *)
    let n_a = float_of_int t.n and n_b = float_of_int k in
    let n = n_a +. n_b in
    let delta = x -. t.mean in
    let mean = if t.n = 0 then x else t.mean +. (delta *. n_b /. n) in
    let m2 = t.m2 +. (delta *. delta *. n_a *. n_b /. n) in
    t.n <- t.n + k;
    t.total <- t.total +. (x *. n_b);
    t.mean <- mean;
    t.m2 <- m2;
    if Float.is_nan t.min || x < t.min then t.min <- x;
    if Float.is_nan t.max || x > t.max then t.max <- x
  end

let count t = t.n

let total t = t.total

let mean t = if t.n = 0 then 0.0 else t.mean

(* Sample (Bessel-corrected, n-1) standard deviation: the paper's tables
   report statistics of observed traces as estimates, not population
   parameters.  [m2] itself is convention-free (sum of squared deviations),
   so [add]/[add_n]/[merge] need no change. *)
let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

let min t = t.min

let max t = t.max

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n_a = float_of_int a.n and n_b = float_of_int b.n in
    let n = n_a +. n_b in
    let delta = b.mean -. a.mean in
    {
      n = a.n + b.n;
      mean = a.mean +. (delta *. n_b /. n);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. n_a *. n_b /. n);
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      total = a.total +. b.total;
    }
  end

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

let summary (t : t) : summary =
  {
    n = t.n;
    mean = mean t;
    stddev = stddev t;
    min = t.min;
    max = t.max;
    total = t.total;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3g sd=%.3g min=%.3g max=%.3g" s.n s.mean
    s.stddev s.min s.max

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg
      (Printf.sprintf "Stats.percentile: p = %g outside [0, 1]" p);
  if n = 1 then sorted.(0)
  else begin
    let idx = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor idx) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = idx -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let ratio a b = if b = 0.0 then 0.0 else a /. b
