(** Weighted empirical cumulative distributions.

    Figures 1-4 of the paper are CDFs, most of them in two weightings
    (e.g. "by number of runs" and "by bytes transferred").  A {!t} is
    built by adding [(value, weight)] samples; evaluation and quantiles
    interpolate over the sorted sample set. *)

type t

val create : unit -> t
(** Fresh, empty accumulator. *)

val add : t -> ?weight:float -> float -> unit
(** [add t ~weight v] records sample [v]; [weight] defaults to 1. *)

val count : t -> int
(** Number of samples added. *)

val total_weight : t -> float

val fraction_below : t -> float -> float
(** [fraction_below t x] is the weighted fraction of samples [<= x];
    0 when empty. *)

val quantile : t -> float -> float
(** [quantile t p] is the smallest sample value [v] with
    [fraction_below t v >= p].
    @raise Invalid_argument (with context, never a bare assert) on an
    empty CDF or [p] outside [[0, 1]] — degenerate imported data must
    produce a diagnosable error, not a backtrace. *)

val median : t -> float

val series : t -> xs:float array -> (float * float) array
(** [series t ~xs] evaluates the CDF at each of [xs], returning
    [(x, fraction_below x)] pairs — the printable form of a figure. *)

val log_xs : lo:float -> hi:float -> per_decade:int -> float array
(** Logarithmically spaced evaluation points, for byte- and
    second-scaled axes.
    @raise Invalid_argument unless [0 < lo < hi] and [per_decade > 0]. *)

val samples : t -> (float * float) array
(** Sorted (value, weight) pairs; exposed for tests and custom reports. *)
