(* CRC-32C (Castagnoli), the checksum the trace pipeline stamps on
   columnar segment extents.

   Reflected polynomial 0x82F63B78, init and final xor 0xFFFFFFFF —
   the same parameterization iSCSI, ext4 and most storage formats use,
   so external tooling can re-verify segments with any stock crc32c.

   The hot loop is slice-by-8: one 8-byte fetch feeds eight table
   lookups, amortizing the per-byte dependency chain.  The same loop is
   duplicated for [string] and for [int8_unsigned] Bigarrays (mmap'd
   segment windows) — a shared [get] closure would put an indirect call
   in the innermost loop. *)

module A1 = Bigarray.Array1

type bigstring =
  (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) A1.t

let mask32 = 0xFFFFFFFF

let poly = 0x82F63B78

(* tables.(k).(b): the CRC contribution of byte [b] seen [k] positions
   before the end of an 8-byte group. *)
let tables =
  let t = Array.make_matrix 8 256 0 in
  for b = 0 to 255 do
    let c = ref b in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then (!c lsr 1) lxor poly else !c lsr 1
    done;
    t.(0).(b) <- !c
  done;
  for k = 1 to 7 do
    for b = 0 to 255 do
      let prev = t.(k - 1).(b) in
      t.(k).(b) <- (prev lsr 8) lxor t.(0).(prev land 0xFF)
    done
  done;
  t

let t0 = tables.(0)

let t1 = tables.(1)

let t2 = tables.(2)

let t3 = tables.(3)

let t4 = tables.(4)

let t5 = tables.(5)

let t6 = tables.(6)

let t7 = tables.(7)

let[@inline] step_byte crc byte =
  (crc lsr 8) lxor Array.unsafe_get t0 ((crc lxor byte) land 0xFF)

let update_string crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32c.update_string";
  let crc = ref (crc land mask32) in
  let i = ref pos in
  let stop8 = pos + (len land lnot 7) in
  while !i < stop8 do
    let b k = Char.code (String.unsafe_get s (!i + k)) in
    let lo =
      !crc lxor (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))
    in
    crc :=
      Array.unsafe_get t7 (lo land 0xFF)
      lxor Array.unsafe_get t6 ((lo lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((lo lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((lo lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (b 4)
      lxor Array.unsafe_get t2 (b 5)
      lxor Array.unsafe_get t1 (b 6)
      lxor Array.unsafe_get t0 (b 7);
    i := !i + 8
  done;
  while !i < pos + len do
    crc := step_byte !crc (Char.code (String.unsafe_get s !i));
    incr i
  done;
  !crc

let update_bigstring crc (s : bigstring) ~pos ~len =
  if pos < 0 || len < 0 || pos + len > A1.dim s then
    invalid_arg "Crc32c.update_bigstring";
  let crc = ref (crc land mask32) in
  let i = ref pos in
  let stop8 = pos + (len land lnot 7) in
  while !i < stop8 do
    let b k = A1.unsafe_get s (!i + k) in
    let lo =
      !crc lxor (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))
    in
    crc :=
      Array.unsafe_get t7 (lo land 0xFF)
      lxor Array.unsafe_get t6 ((lo lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((lo lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((lo lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (b 4)
      lxor Array.unsafe_get t2 (b 5)
      lxor Array.unsafe_get t1 (b 6)
      lxor Array.unsafe_get t0 (b 7);
    i := !i + 8
  done;
  while !i < pos + len do
    crc := step_byte !crc (A1.unsafe_get s !i);
    incr i
  done;
  !crc

let init = mask32

let finalize crc = crc lxor mask32 land mask32

let string_sub s ~pos ~len = finalize (update_string init s ~pos ~len)

let string s = string_sub s ~pos:0 ~len:(String.length s)

let bigstring_sub s ~pos ~len = finalize (update_bigstring init s ~pos ~len)
