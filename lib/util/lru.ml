module Make (Key : Hashtbl.HashedType) = struct
  module H = Hashtbl.Make (Key)

  type 'a node = {
    key : Key.t;
    mutable value : 'a;
    mutable prev : 'a node option;  (* towards LRU end *)
    mutable next : 'a node option;  (* towards MRU end *)
  }

  type 'a t = {
    table : 'a node H.t;
    mutable head : 'a node option;  (* least recently used *)
    mutable tail : 'a node option;  (* most recently used *)
  }

  let create () = { table = H.create 256; head = None; tail = None }

  let length t = H.length t.table

  let mem t k = H.mem t.table k

  let find t k = match H.find_opt t.table k with Some n -> Some n.value | None -> None

  let unlink t node =
    (match node.prev with
    | Some p -> p.next <- node.next
    | None -> t.head <- node.next);
    (match node.next with
    | Some n -> n.prev <- node.prev
    | None -> t.tail <- node.prev);
    node.prev <- None;
    node.next <- None

  let append t node =
    node.prev <- t.tail;
    node.next <- None;
    (match t.tail with Some old -> old.next <- Some node | None -> t.head <- Some node);
    t.tail <- Some node

  let use t k =
    match H.find_opt t.table k with
    | None -> None
    | Some node ->
      unlink t node;
      append t node;
      Some node.value

  let add t k v =
    match H.find_opt t.table k with
    | Some node ->
      node.value <- v;
      unlink t node;
      append t node
    | None ->
      let node = { key = k; value = v; prev = None; next = None } in
      H.replace t.table k node;
      append t node

  let remove t k =
    match H.find_opt t.table k with
    | None -> None
    | Some node ->
      unlink t node;
      H.remove t.table k;
      Some node.value

  let clear t =
    H.reset t.table;
    t.head <- None;
    t.tail <- None

  let lru t = match t.head with Some n -> Some (n.key, n.value) | None -> None

  let pop_lru t =
    match t.head with
    | None -> None
    | Some node ->
      unlink t node;
      H.remove t.table node.key;
      Some (node.key, node.value)

  let iter t f =
    let rec go = function
      | None -> ()
      | Some node ->
        let next = node.next in
        f node.key node.value;
        go next
    in
    go t.head

  let fold t ~init ~f =
    let acc = ref init in
    iter t (fun k v -> acc := f !acc k v);
    !acc

  let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))
end
