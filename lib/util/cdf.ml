type t = {
  mutable items : (float * float) list;  (* unsorted (value, weight) *)
  mutable sorted : (float * float) array option;  (* cache, invalidated on add *)
  mutable prefix : float array option;  (* cumulative weights over [sorted] *)
  mutable count : int;
  mutable total_weight : float;
}

let create () =
  { items = []; sorted = None; prefix = None; count = 0; total_weight = 0.0 }

let add t ?(weight = 1.0) v =
  t.items <- (v, weight) :: t.items;
  t.sorted <- None;
  t.prefix <- None;
  t.count <- t.count + 1;
  t.total_weight <- t.total_weight +. weight

let count t = t.count

let total_weight t = t.total_weight

let ensure_sorted t =
  match t.sorted with
  | Some arr -> arr
  | None ->
    let arr = Array.of_list t.items in
    Array.sort (fun (a, _) (b, _) -> Float.compare a b) arr;
    t.sorted <- Some arr;
    arr

let ensure_prefix t =
  match t.prefix with
  | Some p -> p
  | None ->
    let arr = ensure_sorted t in
    let p = Array.make (Array.length arr) 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i (_, w) ->
        acc := !acc +. w;
        p.(i) <- !acc)
      arr;
    t.prefix <- Some p;
    p

let fraction_below t x =
  if t.total_weight = 0.0 then 0.0
  else begin
    let arr = ensure_sorted t in
    let prefix = ensure_prefix t in
    (* binary search for the last index with value <= x *)
    let n = Array.length arr in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst arr.(mid) <= x then lo := mid + 1 else hi := mid
    done;
    if !lo = 0 then 0.0 else prefix.(!lo - 1) /. t.total_weight
  end

(* Guards raise [Invalid_argument] with context instead of bare
   [assert]: on degenerate or hostile imported data an assert is a
   backtrace crash (or silent garbage under [-noassert]). *)
let quantile t p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg
      (Printf.sprintf "Cdf.quantile: p = %g outside [0, 1]" p);
  let arr = ensure_sorted t in
  let prefix = ensure_prefix t in
  let n = Array.length arr in
  if n = 0 then invalid_arg "Cdf.quantile: empty distribution";
  let target = p *. t.total_weight in
  (* first index whose cumulative weight reaches the target *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if prefix.(mid) >= target then hi := mid else lo := mid + 1
  done;
  fst arr.(!lo)

let median t = quantile t 0.5

let series t ~xs = Array.map (fun x -> (x, fraction_below t x)) xs

let log_xs ~lo ~hi ~per_decade =
  if not (lo > 0.0 && hi > lo && per_decade > 0) then
    invalid_arg
      (Printf.sprintf
         "Cdf.log_xs: need 0 < lo < hi and per_decade > 0 (lo = %g, hi = %g, \
          per_decade = %d)"
         lo hi per_decade);
  let step = 10.0 ** (1.0 /. float_of_int per_decade) in
  let rec go acc x =
    if x > hi *. 1.0001 then List.rev acc else go (x :: acc) (x *. step)
  in
  Array.of_list (go [] lo)

let samples t = ensure_sorted t
