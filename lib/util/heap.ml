module type ORDERED = sig
  type t

  val compare : t -> t -> int

  val dummy : t
  (** Fills vacated array slots so popped elements become collectable;
      never compared against live elements. *)
end

module Make (Elt : ORDERED) = struct
  type t = { mutable data : Elt.t array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let length t = t.size

  let is_empty t = t.size = 0

  (* Fill fresh capacity with [dummy], not the pushed element: seeding
     [Array.make] with a live element would pin it via every vacant slot
     for the array's whole lifetime. *)
  let grow t =
    let cap = Array.length t.data in
    if t.size = cap then begin
      let new_cap = if cap = 0 then 16 else cap * 2 in
      let data = Array.make new_cap Elt.dummy in
      Array.blit t.data 0 data 0 t.size;
      t.data <- data
    end

  let swap t i j =
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(j);
    t.data.(j) <- tmp

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if Elt.compare t.data.(i) t.data.(parent) < 0 then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && Elt.compare t.data.(l) t.data.(!smallest) < 0 then
      smallest := l;
    if r < t.size && Elt.compare t.data.(r) t.data.(!smallest) < 0 then
      smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let push t x =
    grow t;
    t.data.(t.size) <- x;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let peek t = if t.size = 0 then None else Some t.data.(0)

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.data.(0) in
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.data.(0) <- t.data.(t.size);
        sift_down t 0
      end;
      (* Clear the vacated slot: without this the popped element (and
         anything its closures capture) stays reachable from [data] until
         the slot happens to be overwritten by a later push. *)
      t.data.(t.size) <- Elt.dummy;
      Some top
    end

  let pop_exn t =
    match pop t with
    | Some x -> x
    | None -> invalid_arg "Heap.pop_exn: empty heap"

  let clear t =
    t.data <- [||];
    t.size <- 0

  (* Keep only the elements satisfying [pred], then restore the heap
     property bottom-up (Floyd heapify) — O(n), no allocation beyond the
     closure. *)
  let filter_in_place t pred =
    let kept = ref 0 in
    for i = 0 to t.size - 1 do
      if pred t.data.(i) then begin
        t.data.(!kept) <- t.data.(i);
        incr kept
      end
    done;
    (* Clear the compacted-away tail so dropped (and shifted) elements
       don't linger behind [size]. *)
    for i = !kept to t.size - 1 do
      t.data.(i) <- Elt.dummy
    done;
    t.size <- !kept;
    for i = (t.size / 2) - 1 downto 0 do
      sift_down t i
    done

  let to_sorted_list t =
    let rec go acc = match pop t with None -> List.rev acc | Some x -> go (x :: acc) in
    go []
end
