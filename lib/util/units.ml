let kib = 1024

let mib = 1024 * 1024

let block_size = 4 * kib

let blocks_of_bytes bytes =
  if bytes < 0 then
    invalid_arg
      (Printf.sprintf "Units.blocks_of_bytes: negative byte count %d" bytes);
  (bytes + block_size - 1) / block_size

let minutes x = x *. 60.0

let hours x = x *. 3600.0

let pp_bytes ppf b =
  if b >= 1_073_741_824 then
    Format.fprintf ppf "%.1f GB" (float_of_int b /. 1_073_741_824.0)
  else if b >= 1_048_576 then
    Format.fprintf ppf "%.1f MB" (float_of_int b /. 1_048_576.0)
  else if b >= 1024 then Format.fprintf ppf "%.1f KB" (float_of_int b /. 1024.0)
  else Format.fprintf ppf "%d B" b

let pp_duration ppf secs =
  let total = int_of_float secs in
  let h = total / 3600 and m = total mod 3600 / 60 and s = total mod 60 in
  if h > 0 then Format.fprintf ppf "%dh %dm %ds" h m s
  else if m > 0 then Format.fprintf ppf "%dm %ds" m s
  else Format.fprintf ppf "%.2fs" secs
