(** A fixed-size domain pool for embarrassingly parallel batches.

    The reproduce pipeline is a handful of coarse, independent jobs
    (simulate eight preset traces; render sixteen table/figure passes),
    so the pool is deliberately work-stealing-free: tasks are claimed
    from a single atomic cursor in submission order and results are
    joined back {e in input order}, which makes [map] deterministic —
    parallel and sequential executions of the same pure tasks return the
    same list.

    Worker domains are spawned per [map] call and joined before it
    returns; for the seconds-long jobs this pool exists for, domain
    startup (~30 us) is noise, and never parking idle domains keeps the
    process single-threaded outside explicit parallel sections. *)

type t

val default_jobs : unit -> int
(** The [DFS_JOBS] environment variable when set to a positive integer,
    else [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** [jobs] caps the number of domains a [map] may use (clamped to at
    least 1); defaults to {!default_jobs}. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], using up to
    [jobs pool] domains, and returns the results in input order.

    If one or more applications raise, the exception of the {e earliest}
    input element is re-raised after all workers have joined (so the
    choice of exception is deterministic too).

    Nested use is rejected: calling [map] from inside a task raises
    [Invalid_argument] rather than deadlocking or oversubscribing — the
    pipeline parallelizes at one level at a time.

    With [jobs pool = 1] (or a single task) everything runs in the
    calling domain, with no domains spawned: [DFS_JOBS=1] gives the
    exact sequential execution. *)

val in_pool_task : unit -> bool
(** True while the calling domain is executing a pool task (parallel or
    sequential path). *)

val map_auto : t -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map}, but when called from inside a pool task — where {!map}
    would raise on nested use — it degrades to a plain sequential
    [List.map] in the calling domain (no gauges, no spans). Results are
    identical either way; only the execution strategy differs. *)

(** {1 Long-lived worker teams} *)

module Team : sig
  (** A fixed crew of worker domains for barrier-synchronized loops.

      {!map} spawns and joins domains per call; a sharded simulation
      re-enters its workers once per lookahead window — thousands of
      times per run — so the team keeps [size - 1] domains parked on a
      condition variable between generations.  The calling domain is
      member 0.

      A team is a first-class entry point, deliberately outside the
      pool's nested-use guard: it never sets the pool task flag, and a
      team of [size 1] runs everything in the calling domain with no
      domains spawned, so creating a team {e inside} a [Pool.map] task
      (the [--sim-shards] × [--jobs] composition) is legal and cannot
      deadlock — callers that want the outer pool to keep the domains
      simply create their inner team with size 1. *)

  type t

  val create : ?size:int -> unit -> t
  (** Spawn a team of [size] members (clamped to at least 1; default
      {!default_jobs}).  [size - 1] domains are spawned immediately and
      parked. *)

  val size : t -> int

  val run : t -> (int -> unit) -> unit
  (** [run t f] executes [f m] on every member [m] of [0 .. size-1]
      concurrently ([f 0] in the calling domain) and returns once all
      members have finished — a full barrier.  If members raise, the
      exception of the {e lowest-numbered} member is re-raised (so the
      choice is deterministic).  Not reentrant: only the creating
      domain may call [run], one generation at a time. *)

  val shutdown : t -> unit
  (** Park, join and release the spawned domains; idempotent.  [run]
      raises afterwards. *)
end

(** {1 Observability}

    Every [map] publishes utilization gauges into the default
    {!Dfs_obs.Metrics} registry — [pool.domain<i>.busy_s] (wall seconds
    worker [i] spent executing tasks), [pool.busy_s] / [pool.idle_s] /
    [pool.wall_s], and [pool.utilization] (busy worker-seconds over
    [workers x wall]) — and, when {!Dfs_obs.Profiler} is active, records
    each task execution as a ["pool.task"] span on the executing
    domain's stream.  Both are advisory: results and their order are
    identical with profiling on or off. *)
