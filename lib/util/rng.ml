type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: advance by the golden gamma and mix. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

(* Stateless splitmix64 finalizer, shared by [split_key]. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split_key t key =
  (* Jump to the key-th odd multiple of the gamma so distinct keys land
     on distinct stream positions even before mixing. *)
  let z =
    Int64.add t.state
      (Int64.mul golden_gamma (Int64.of_int ((2 * key) + 1)))
  in
  { state = mix64 z }

let derive_seed seed key =
  let z = split_key { state = Int64.of_int seed } key in
  (* Positive int so the result can feed any [create]-style seed slot. *)
  Int64.to_int (Int64.shift_right_logical (mix64 z.state) 2)

let float t =
  (* 53 random bits scaled to [0,1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let uniform t lo hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* Rejection-free for our purposes: modulo bias is negligible for n << 2^62. *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  x mod n

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t < p

let exponential t mean =
  assert (mean > 0.);
  let u = float t in
  -.mean *. log (1.0 -. u)

(* Box–Muller.  The two draws MUST be sequenced explicitly: binding them
   with [and] (or building a tuple) leaves the evaluation order of the
   shared mutable generator unspecified, so byte-identical outputs would
   silently depend on the compiler.  [u1] is drawn first, then [u2] —
   the order every supported compiler happened to pick before this was
   pinned down. *)
let normal t ~mu ~sigma =
  let u1 = 1.0 -. float t in
  let u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let pareto t ~alpha ~x_min =
  assert (alpha > 0.);
  let u = 1.0 -. float t in
  x_min /. (u ** (1.0 /. alpha))

(* Zipf by inversion over the harmonic CDF; O(n) worst case but n is small
   (file-population ranks) and the loop usually exits early because the head
   of the distribution carries most of the mass. *)
let zipf t ~n ~s =
  assert (n >= 1);
  let h = ref 0.0 in
  for k = 1 to n do
    h := !h +. (1.0 /. (Float.of_int k ** s))
  done;
  let u = float t *. !h in
  let acc = ref 0.0 and rank = ref n in
  (try
     for k = 1 to n do
       acc := !acc +. (1.0 /. (Float.of_int k ** s));
       if u <= !acc then begin
         rank := k;
         raise Exit
       end
     done
   with Exit -> ());
  !rank

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_weighted t choices =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 choices in
  assert (total > 0.);
  let u = float t *. total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.pick_weighted: empty"
    | [ (x, _) ] -> x
    | (x, w) :: rest ->
      let acc = acc +. w in
      if u <= acc then x else go acc rest
  in
  go 0.0 choices

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
