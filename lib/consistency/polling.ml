module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids
module B = Dfs_trace.Record_batch

type report = {
  interval : float;
  duration_hours : float;
  errors : int;
  errors_per_hour : float;
  users_seen : int;
  users_affected : int;
  file_opens : int;
  opens_with_error : int;
  migrated_opens : int;
  migrated_opens_with_error : int;
  affected_user_ids : Ids.User.Set.t;
  seen_user_ids : Ids.User.Set.t;
}

type entry = { mutable seen : int; mutable last_check : float }

type file_state = { mutable version : int; mutable last_writer : int }

let simulate_seq ~interval batches =
  let files : file_state Ids.File.Tbl.t = Ids.File.Tbl.create 1024 in
  let cache : (int * int, entry) Hashtbl.t = Hashtbl.create 4096 in
  (* (client, file) -> entry *)
  let users = ref Ids.User.Set.empty in
  let affected = ref Ids.User.Set.empty in
  let errors = ref 0
  and file_opens = ref 0
  and opens_with_error = ref 0
  and migrated_opens = ref 0
  and migrated_opens_with_error = ref 0 in
  let t_min = ref infinity and t_max = ref neg_infinity in
  let file_state file =
    match Ids.File.Tbl.find_opt files file with
    | Some st -> st
    | None ->
      let st = { version = 0; last_writer = -1 } in
      Ids.File.Tbl.replace files file st;
      st
  in
  let publish ~client file =
    let st = file_state file in
    st.version <- st.version + 1;
    st.last_writer <- client;
    (* the writer's own cache holds the new data *)
    let key = (client, Ids.File.to_int file) in
    match Hashtbl.find_opt cache key with
    | Some e -> e.seen <- st.version
    | None -> ()
  in
  (* Returns true when this access read stale data. *)
  let read ~now ~client file =
    let st = file_state file in
    let key = (client, Ids.File.to_int file) in
    match Hashtbl.find_opt cache key with
    | None ->
      Hashtbl.replace cache key { seen = st.version; last_check = now };
      false
    | Some e ->
      if now -. e.last_check >= interval then begin
        e.seen <- st.version;
        e.last_check <- now;
        false
      end
      else if e.seen < st.version && st.last_writer <> client then true
      else false
  in
  (* the close record carries no mode; pair through handles *)
  let handles : (int * int * int, bool list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  Seq.iter (fun batch ->
  let handle_key i = (B.client batch i, B.pid batch i, B.file batch i) in
  for i = 0 to B.length batch - 1 do
    let time = B.time batch i and user = B.user_id batch i in
    users := Ids.User.Set.add user !users;
    if time < !t_min then t_min := time;
    if time > !t_max then t_max := time;
    let client = B.client batch i in
    let file () = B.file_id batch i in
    let tag = B.tag batch i in
    if tag = B.tag_open then begin
      if not (B.is_dir batch i) then begin
        incr file_opens;
        let migrated = B.migrated batch i in
        if migrated then incr migrated_opens;
        let reads =
          match B.open_mode batch i with
          | Record.Read_only | Record.Read_write -> true
          | Record.Write_only -> false
        in
        let stale = if reads then read ~now:time ~client (file ()) else false in
        if stale then begin
          incr errors;
          incr opens_with_error;
          if migrated then incr migrated_opens_with_error;
          affected := Ids.User.Set.add user !affected
        end;
        let l =
          match Hashtbl.find_opt handles (handle_key i) with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.replace handles (handle_key i) l;
            l
        in
        l := reads :: !l
      end
    end
    else if tag = B.tag_close then begin
      let bytes_written = B.d batch i in
      match Hashtbl.find_opt handles (handle_key i) with
      | Some ({ contents = _ :: rest } as l) ->
        l := rest;
        if rest = [] then Hashtbl.remove handles (handle_key i);
        if bytes_written > 0 then publish ~client (file ())
      | Some { contents = [] } | None ->
        if bytes_written > 0 then publish ~client (file ())
    end
    else if tag = B.tag_shared_read then begin
      if read ~now:time ~client (file ()) then begin
        incr errors;
        affected := Ids.User.Set.add user !affected
      end
    end
    else if tag = B.tag_shared_write then publish ~client (file ())
    else if tag = B.tag_delete then Ids.File.Tbl.remove files (file ())
  done) batches;
  let duration_hours =
    if !t_max > !t_min then (!t_max -. !t_min) /. 3600.0 else 0.0
  in
  {
    interval;
    duration_hours;
    errors = !errors;
    errors_per_hour =
      (if duration_hours > 0.0 then float_of_int !errors /. duration_hours
       else 0.0);
    users_seen = Ids.User.Set.cardinal !users;
    users_affected = Ids.User.Set.cardinal !affected;
    file_opens = !file_opens;
    opens_with_error = !opens_with_error;
    migrated_opens = !migrated_opens;
    migrated_opens_with_error = !migrated_opens_with_error;
    affected_user_ids = !affected;
    seen_user_ids = !users;
  }

let simulate ~interval batch = simulate_seq ~interval (Seq.return batch)

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

let pct_users_affected r = pct r.users_affected r.users_seen

let pct_opens_with_error r = pct r.opens_with_error r.file_opens

let pct_migrated_opens_with_error r =
  pct r.migrated_opens_with_error r.migrated_opens
