module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids

type event =
  | Open of { client : int; writer : bool }
  | Close of { client : int; writer : bool }
  | Read of { client : int; off : int; len : int }
  | Write of { client : int; off : int; len : int }

type timed = { time : float; ev : event }

type stream = {
  file : Ids.File.t;
  events : timed list;
  requested_bytes : int;
  requests : int;
}

let is_writer = function
  | Record.Write_only | Record.Read_write -> true
  | Record.Read_only -> false

(* The close record does not carry the open mode; recover it from the
   handle's matching open, tracked per (client, pid, file).
   [batches] must be replayable: one pass collects the write-shared
   files, a second extracts their events. *)
let extract_seq batches =
  let module B = Dfs_trace.Record_batch in
  let shared_files = ref Ids.File.Set.empty in
  Seq.iter
    (fun batch ->
      for i = 0 to B.length batch - 1 do
        let tag = B.tag batch i in
        if tag = B.tag_shared_read || tag = B.tag_shared_write then
          shared_files := Ids.File.Set.add (B.file_id batch i) !shared_files
      done)
    batches;
  let handle_modes : (int * int * int, Record.open_mode list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let per_file : timed list ref Ids.File.Tbl.t = Ids.File.Tbl.create 64 in
  Seq.iter (fun batch ->
  let handle_key i = (B.client batch i, B.pid batch i, B.file batch i) in
  let emit i ev =
    let l =
      match Ids.File.Tbl.find_opt per_file (B.file_id batch i) with
      | Some l -> l
      | None ->
        let l = ref [] in
        Ids.File.Tbl.replace per_file (B.file_id batch i) l;
        l
    in
    l := { time = B.time batch i; ev } :: !l
  in
  for i = 0 to B.length batch - 1 do
    if Ids.File.Set.mem (B.file_id batch i) !shared_files then begin
      let client = B.client batch i in
      let tag = B.tag batch i in
      if tag = B.tag_open then begin
        if not (B.is_dir batch i) then begin
          let mode = B.open_mode batch i in
          let modes =
            match Hashtbl.find_opt handle_modes (handle_key i) with
            | Some l -> l
            | None ->
              let l = ref [] in
              Hashtbl.replace handle_modes (handle_key i) l;
              l
          in
          modes := mode :: !modes;
          emit i (Open { client; writer = is_writer mode })
        end
      end
      else if tag = B.tag_close then begin
        match Hashtbl.find_opt handle_modes (handle_key i) with
        | Some ({ contents = mode :: rest } as modes) ->
          modes := rest;
          if rest = [] then Hashtbl.remove handle_modes (handle_key i);
          emit i (Close { client; writer = is_writer mode })
        | Some { contents = [] } | None -> ()
      end
      else if tag = B.tag_shared_read then
        emit i (Read { client; off = B.a batch i; len = B.b batch i })
      else if tag = B.tag_shared_write then
        emit i (Write { client; off = B.a batch i; len = B.b batch i })
    end
  done) batches;
  Ids.File.Tbl.fold
    (fun file events acc ->
      let events = List.rev !events in
      let requested_bytes, requests =
        List.fold_left
          (fun (b, n) { ev; _ } ->
            match ev with
            | Read { len; _ } | Write { len; _ } -> (b + len, n + 1)
            | Open _ | Close _ -> (b, n))
          (0, 0) events
      in
      { file; events; requested_bytes; requests } :: acc)
    per_file []
  |> List.sort (fun a b -> Ids.File.compare a.file b.file)

let extract batch = extract_seq (Seq.return batch)

let total_requested streams =
  List.fold_left (fun acc s -> acc + s.requested_bytes) 0 streams

let total_requests streams =
  List.fold_left (fun acc s -> acc + s.requests) 0 streams
