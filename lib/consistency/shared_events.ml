module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids

type event =
  | Open of { client : int; writer : bool }
  | Close of { client : int; writer : bool }
  | Read of { client : int; off : int; len : int }
  | Write of { client : int; off : int; len : int }

type timed = { time : float; ev : event }

type stream = {
  file : Ids.File.t;
  events : timed list;
  requested_bytes : int;
  requests : int;
}

let is_writer = function
  | Record.Write_only | Record.Read_write -> true
  | Record.Read_only -> false

(* The close record does not carry the open mode; recover it from the
   handle's matching open, tracked per (client, pid, file). *)
let extract trace =
  let shared_files = ref Ids.File.Set.empty in
  Array.iter
    (fun (r : Record.t) ->
      match r.kind with
      | Record.Shared_read _ | Record.Shared_write _ ->
        shared_files := Ids.File.Set.add r.file !shared_files
      | _ -> ())
    trace;
  let handle_modes : (int * int * int, Record.open_mode list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let handle_key (r : Record.t) =
    ( Ids.Client.to_int r.client,
      Ids.Process.to_int r.pid,
      Ids.File.to_int r.file )
  in
  let per_file : timed list ref Ids.File.Tbl.t = Ids.File.Tbl.create 64 in
  let emit (r : Record.t) ev =
    let l =
      match Ids.File.Tbl.find_opt per_file r.file with
      | Some l -> l
      | None ->
        let l = ref [] in
        Ids.File.Tbl.replace per_file r.file l;
        l
    in
    l := { time = r.time; ev } :: !l
  in
  Array.iter
    (fun (r : Record.t) ->
      if Ids.File.Set.mem r.file !shared_files then begin
        let client = Ids.Client.to_int r.client in
        match r.kind with
        | Record.Open { mode; is_dir = false; _ } ->
          let modes =
            match Hashtbl.find_opt handle_modes (handle_key r) with
            | Some l -> l
            | None ->
              let l = ref [] in
              Hashtbl.replace handle_modes (handle_key r) l;
              l
          in
          modes := mode :: !modes;
          emit r (Open { client; writer = is_writer mode })
        | Record.Close _ -> (
          match Hashtbl.find_opt handle_modes (handle_key r) with
          | Some ({ contents = mode :: rest } as modes) ->
            modes := rest;
            if rest = [] then Hashtbl.remove handle_modes (handle_key r);
            emit r (Close { client; writer = is_writer mode })
          | Some { contents = [] } | None -> ())
        | Record.Shared_read { offset; length } ->
          emit r (Read { client; off = offset; len = length })
        | Record.Shared_write { offset; length } ->
          emit r (Write { client; off = offset; len = length })
        | Record.Open _ | Record.Reposition _ | Record.Delete _
        | Record.Truncate _ | Record.Dir_read _ ->
          ()
      end)
    trace;
  Ids.File.Tbl.fold
    (fun file events acc ->
      let events = List.rev !events in
      let requested_bytes, requests =
        List.fold_left
          (fun (b, n) { ev; _ } ->
            match ev with
            | Read { len; _ } | Write { len; _ } -> (b + len, n + 1)
            | Open _ | Close _ -> (b, n))
          (0, 0) events
      in
      { file; events; requested_bytes; requests } :: acc)
    per_file []
  |> List.sort (fun a b -> Ids.File.compare a.file b.file)

let total_requested streams =
  List.fold_left (fun acc s -> acc + s.requested_bytes) 0 streams

let total_requests streams =
  List.fold_left (fun acc s -> acc + s.requests) 0 streams
