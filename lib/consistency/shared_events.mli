(** Extraction of the event streams the consistency simulations consume.

    The paper logged, for every file undergoing concurrent write-sharing,
    each read or write request's position, size and time (easy in Sprite:
    uncacheable requests all pass through the server), and used those
    events to drive the simulations of Section 5.6.  This module pulls the
    same per-file streams out of a trace: the opens and closes of each
    write-shared file plus its shared read/write requests. *)

type event =
  | Open of { client : int; writer : bool }
  | Close of { client : int; writer : bool }
  | Read of { client : int; off : int; len : int }
  | Write of { client : int; off : int; len : int }

type timed = { time : float; ev : event }

type stream = {
  file : Dfs_trace.Ids.File.t;
  events : timed list;  (** chronological *)
  requested_bytes : int;  (** total bytes of Read/Write events *)
  requests : int;  (** number of Read/Write events *)
}

val extract : Dfs_trace.Record_batch.t -> stream list
(** One stream per file that experienced write-sharing (i.e. has at least
    one shared read/write record). *)

val extract_seq : Dfs_trace.Record_batch.t Seq.t -> stream list
(** {!extract} over a chunked trace.  The sequence must be replayable
    (e.g. {!Dfs_trace.Sink.to_seq}): extraction traverses it twice. *)

val total_requested : stream list -> int

val total_requests : stream list -> int
