(** Table 11: simulation of an NFS-style polling consistency mechanism.

    A client considers cached data valid for a fixed interval; on the
    first access after the interval expires it revalidates with the
    server.  New data is written through to the server almost immediately
    (at close, in this simulation).  If another workstation modified the
    file while a client's cached copy was still inside its validity
    window, the client reads stale data — a potential error.  The actual
    NFS mechanism adapts the interval between 3 and 60 seconds; like the
    paper we simulate the two extremes as fixed intervals. *)

type report = {
  interval : float;
  duration_hours : float;
  errors : int;  (** potential uses of stale data *)
  errors_per_hour : float;
  users_seen : int;
  users_affected : int;  (** users whose processes suffered errors *)
  file_opens : int;
  opens_with_error : int;
  migrated_opens : int;
  migrated_opens_with_error : int;
  affected_user_ids : Dfs_trace.Ids.User.Set.t;
      (** for cross-trace "percent of users affected over all traces" *)
  seen_user_ids : Dfs_trace.Ids.User.Set.t;
}

val simulate : interval:float -> Dfs_trace.Record_batch.t -> report

val simulate_seq :
  interval:float -> Dfs_trace.Record_batch.t Seq.t -> report
(** {!simulate} over a chunked trace; cache state persists across chunk
    boundaries. *)

val pct_users_affected : report -> float

val pct_opens_with_error : report -> float

val pct_migrated_opens_with_error : report -> float
