type t = {
  stats : Trace_stats.t;
  file_size : File_size.t;
  open_time : Open_time.t;
  run_length : Run_length.t;
  access_patterns : Access_patterns.t;
  lifetime : Lifetime.t;
  accesses : Session.access list;
}

let analyze_seq_unprofiled batches =
  let ts = Trace_stats.acc_create () in
  let fs = File_size.create () in
  let ot = Open_time.create () in
  let rl = Run_length.create () in
  let ap = Access_patterns.acc_create () in
  let lt = Lifetime.acc_create () in
  let accesses_rev = ref [] in
  Session.sweep_seq batches
    ~on_record:(fun batch i ->
      Trace_stats.acc_record ts batch i;
      Lifetime.acc_record lt batch i)
    ~on_access:(fun a ->
      accesses_rev := a :: !accesses_rev;
      Trace_stats.acc_access ts a;
      File_size.add fs a;
      Open_time.add ot a;
      Run_length.add rl a;
      Access_patterns.acc_add ap a;
      Lifetime.acc_access lt a);
  {
    stats = Trace_stats.acc_finish ts;
    file_size = fs;
    open_time = ot;
    run_length = rl;
    access_patterns = Access_patterns.acc_finish ap;
    lifetime = Lifetime.acc_finish lt;
    accesses = List.rev !accesses_rev;
  }

let analyze_seq batches =
  Dfs_obs.Profiler.span ~cat:"analysis" "fused.analyze" (fun () ->
      analyze_seq_unprofiled batches)

let analyze batch = analyze_seq (Seq.return batch)
