type t = {
  stats : Trace_stats.t;
  file_size : File_size.t;
  open_time : Open_time.t;
  run_length : Run_length.t;
  access_patterns : Access_patterns.t;
  lifetime : Lifetime.t;
  accesses : Session.access list;
}

let analyze_seq_unprofiled batches =
  let ts = Trace_stats.acc_create () in
  let fs = File_size.create () in
  let ot = Open_time.create () in
  let rl = Run_length.create () in
  let ap = Access_patterns.acc_create () in
  let lt = Lifetime.acc_create () in
  let accesses_rev = ref [] in
  Session.sweep_seq batches
    ~on_record:(fun batch i ->
      Trace_stats.acc_record ts batch i;
      Lifetime.acc_record lt batch i)
    ~on_access:(fun a ->
      accesses_rev := a :: !accesses_rev;
      Trace_stats.acc_access ts a;
      File_size.add fs a;
      Open_time.add ot a;
      Run_length.add rl a;
      Access_patterns.acc_add ap a;
      Lifetime.acc_access lt a);
  {
    stats = Trace_stats.acc_finish ts;
    file_size = fs;
    open_time = ot;
    run_length = rl;
    access_patterns = Access_patterns.acc_finish ap;
    lifetime = Lifetime.acc_finish lt;
    accesses = List.rev !accesses_rev;
  }

let analyze_seq batches =
  Dfs_obs.Profiler.span ~cat:"analysis" "fused.analyze" (fun () ->
      analyze_seq_unprofiled batches)

let analyze batch = analyze_seq (Seq.return batch)

(* -- sharded pass ---------------------------------------------------------- *)

(* One shard's harvest: the commutative per-record accumulator plus the
   order-sensitive event streams, each tagged with the global index of
   the record that produced it (ascending by construction). *)
type shard = {
  sh_stats : Trace_stats.acc;
  sh_accesses : (int * Session.access) list;
  sh_deaths : (int * (float * Dfs_trace.Ids.File.t * int)) list;
}

let scan_shard batches ~shard ~nshards =
  Dfs_obs.Profiler.span ~cat:"analysis"
    (Printf.sprintf "fused.shard%d" shard)
    (fun () ->
      let ts = Trace_stats.acc_create () in
      let accesses_rev = ref [] in
      let deaths_rev = ref [] in
      Session.sweep_shard_seq batches ~shard ~nshards
        ~on_record:(fun ~gidx batch i ->
          Trace_stats.acc_record ts batch i;
          match Lifetime.death_of_record batch i with
          | Some d -> deaths_rev := (gidx, d) :: !deaths_rev
          | None -> ())
        ~on_access:(fun ~gidx a -> accesses_rev := (gidx, a) :: !accesses_rev);
      {
        sh_stats = ts;
        sh_accesses = List.rev !accesses_rev;
        sh_deaths = List.rev !deaths_rev;
      })

(* Per-shard streams are ascending in global index and pairwise disjoint
   (each record belongs to exactly one shard), so a k-way [List.merge]
   rebuilds the exact order the sequential sweep would have produced. *)
let merge_by_gidx lists =
  let cmp (g1, _) (g2, _) = Int.compare g1 g2 in
  List.fold_left (fun acc l -> List.merge cmp acc l) [] lists

(* Reassemble the sequential result from shard harvests: merge the
   commutative stats, then replay accesses and deaths in global record
   order through the same per-access accumulators the sequential pass
   uses — every list and every Cdf sees items in the identical order,
   so the result is bit-for-bit the sequential one. *)
let assemble shards =
  Dfs_obs.Profiler.span ~cat:"analysis" "fused.merge" (fun () ->
      let ts = Trace_stats.acc_create () in
      List.iter (fun s -> Trace_stats.acc_merge ts s.sh_stats) shards;
      let fs = File_size.create () in
      let ot = Open_time.create () in
      let rl = Run_length.create () in
      let ap = Access_patterns.acc_create () in
      let lt = Lifetime.acc_create () in
      let accesses = merge_by_gidx (List.map (fun s -> s.sh_accesses) shards) in
      let accesses =
        List.map
          (fun (_, a) ->
            Trace_stats.acc_access ts a;
            File_size.add fs a;
            Open_time.add ot a;
            Run_length.add rl a;
            Access_patterns.acc_add ap a;
            Lifetime.acc_access lt a;
            a)
          accesses
      in
      List.iter
        (fun (_, (time, file, size)) -> Lifetime.acc_death lt ~time ~file ~size)
        (merge_by_gidx (List.map (fun s -> s.sh_deaths) shards));
      {
        stats = Trace_stats.acc_finish ts;
        file_size = fs;
        open_time = ot;
        run_length = rl;
        access_patterns = Access_patterns.acc_finish ap;
        lifetime = Lifetime.acc_finish lt;
        accesses;
      })

let analyze_sharded ?pool batches =
  let nshards =
    match pool with
    | Some p when Dfs_util.Pool.jobs p > 1 && not (Dfs_util.Pool.in_pool_task ())
      -> Dfs_util.Pool.jobs p
    | Some _ | None -> 1
  in
  if nshards = 1 then analyze_seq (batches ())
  else
    Dfs_obs.Profiler.span ~cat:"analysis" "fused.analyze_sharded" (fun () ->
        let pool = Option.get pool in
        let shards =
          Dfs_util.Pool.map_auto pool
            (fun shard -> scan_shard (batches ()) ~shard ~nshards)
            (List.init nshards Fun.id)
        in
        assemble shards)

let analyze_chunks ?pool chunks =
  analyze_sharded ?pool (fun () -> Dfs_trace.Sink.to_seq chunks)
