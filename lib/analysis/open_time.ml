type t = { by_opens : Dfs_util.Cdf.t }

let create () = { by_opens = Dfs_util.Cdf.create () }

let add t (a : Session.access) =
  if not a.a_is_dir then Dfs_util.Cdf.add t.by_opens (Session.duration a)

let analyze accesses =
  let t = create () in
  List.iter (add t) accesses;
  t

let of_trace trace = analyze (Session.of_trace trace)

let default_xs = Dfs_util.Cdf.log_xs ~lo:0.01 ~hi:100.0 ~per_decade:4

let fraction_under t secs = Dfs_util.Cdf.fraction_below t.by_opens secs
