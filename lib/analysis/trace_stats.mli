(** Table 1: overall trace statistics. *)

type t = {
  duration_hours : float;
  different_users : int;
  users_of_migration : int;
  mbytes_read_files : float;
  mbytes_written_files : float;
  mbytes_read_dirs : float;
  open_events : int;
  close_events : int;
  reposition_events : int;
  delete_events : int;
  truncate_events : int;
  shared_read_events : int;
  shared_write_events : int;
}

val of_batch : ?accesses:Session.access list -> Dfs_trace.Record_batch.t -> t
(** Event counts straight off the records; megabytes read/written come
    from the per-access totals carried on closes of regular files
    (directory data is counted separately, from directory-read records).
    Pass [accesses] to reuse an already-computed access reconstruction
    (e.g. {!Dfs_core.Dataset.sessions}) instead of rebuilding it. *)

val of_trace : ?accesses:Session.access list -> Dfs_trace.Record.t array -> t
(** {!of_batch} on a boxed-record trace. *)

(** Incremental accumulator used by the fused analysis pass: feed every
    record index with {!acc_record} and every completed access with
    {!acc_access} (all contributions are commutative). *)

type acc

val acc_create : unit -> acc

val acc_record : acc -> Dfs_trace.Record_batch.t -> int -> unit

val acc_access : acc -> Session.access -> unit

val acc_merge : acc -> acc -> unit
(** [acc_merge dst src] folds [src] into [dst].  All contributions are
    commutative (set unions, sums, min/max), so per-shard accumulators
    merge to exactly the sequential result. *)

val acc_finish : acc -> t

val pp : Format.formatter -> t -> unit
