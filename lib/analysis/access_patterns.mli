(** Table 3: file access patterns.

    Accesses (open-use-close episodes of regular files) are classified by
    actual usage — read-only, write-only, read/write — and, within each
    class, by sequentiality: whole-file, other-sequential, or random.
    Percentages are reported both by access count and by bytes
    transferred. *)

type cell = { accesses : int; bytes : int }

type class_report = {
  total : cell;
  whole_file : cell;
  other_sequential : cell;
  random : cell;
}

type t = {
  read_only : class_report;
  write_only : class_report;
  read_write : class_report;
  grand_total : cell;
}

type acc
(** Incremental accumulator for the fused analysis pass. *)

val acc_create : unit -> acc

val acc_add : acc -> Session.access -> unit

val acc_finish : acc -> t

val analyze : Session.access list -> t

val of_trace : Dfs_trace.Record.t array -> t

(** Percentage helpers for report rendering. *)

val pct_accesses : t -> class_report -> float
(** Share of all accesses in this usage class. *)

val pct_bytes : t -> class_report -> float

val seq_pct_accesses : class_report -> Session.sequentiality -> float
(** Within-class sequentiality split, by accesses. *)

val seq_pct_bytes : class_report -> Session.sequentiality -> float
