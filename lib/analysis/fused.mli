(** Fused single-pass analysis.

    One sweep over a record batch drives the per-record and per-access
    folds of {!Trace_stats}, {!File_size}, {!Open_time}, {!Run_length},
    {!Access_patterns} and {!Lifetime} together, instead of six
    independent scans that each rebuild the session reconstruction.
    Per-access accumulators are fed at close time — the same order as
    {!Session.of_batch} returns accesses — so every result is identical
    to running the standalone analyses.  [accesses] is that
    reconstruction, shared so callers need not recompute it. *)

type t = {
  stats : Trace_stats.t;
  file_size : File_size.t;
  open_time : Open_time.t;
  run_length : Run_length.t;
  access_patterns : Access_patterns.t;
  lifetime : Lifetime.t;
  accesses : Session.access list;
}

val analyze : Dfs_trace.Record_batch.t -> t

val analyze_seq : Dfs_trace.Record_batch.t Seq.t -> t
(** {!analyze} over a chunked trace stream; at most one chunk is forced
    at a time (plus the accumulators), so peak memory is bounded by the
    chunk size rather than the trace length. *)

val analyze_sharded : ?pool:Dfs_util.Pool.t -> (unit -> Dfs_trace.Record_batch.t Seq.t) -> t
(** {!analyze_seq} sharded across the pool's domains.  Each of
    [Pool.jobs pool] shards replays the stream (hence the thunk — the
    sequence must be replayable, as {!Dfs_trace.Sink.to_seq} is) and
    processes only the records whose client id falls in the shard;
    handles are client-keyed, so shards reconstruct disjoint session
    sets.  Per-record accumulators merge commutatively and the
    order-sensitive access/death streams are k-way merged by global
    record index and replayed, so the result is {e bit-identical} to
    {!analyze_seq} for any pool size.  Runs sequentially (zero overhead)
    when the pool is absent, has one job, or the caller is already
    inside a pool task. *)

val analyze_chunks : ?pool:Dfs_util.Pool.t -> Dfs_trace.Sink.chunks -> t
(** {!analyze_sharded} over a finished sink. *)
