(** Crash-recovery and delayed-write-loss accounting.

    The paper (Section 5.2) accepts a 30-second window during which
    delayed-write data can be destroyed by a crash, arguing full cache
    flushes are only modestly safer.  With fault injection on, this
    module turns each run's {!Dfs_fault.Injector.stats} into the table
    that quantifies that trade: crashes, downtime, delayed-write bytes
    actually lost, what the offline queue saved (parked and replayed
    after reboot), and the size of the recovery storm. *)

type row = {
  run_name : string;
  crashes : int;
  reboots : int;
  downtime_s : float;
  lost_kb : float;  (** delayed-write bytes destroyed by crashes *)
  lost_per_crash_kb : float;
  offline_queued_kb : float;
      (** writeback bytes parked while a server was down *)
  replayed_kb : float;  (** parked bytes delivered after reboot *)
  recovery_rpcs : int;  (** re-register + state-replay RPC storm *)
  rpc_retries : int;
  rpc_stall_s : float;  (** client time lost to timeout/backoff *)
  disk_errors : int;
  partitions : int;
}

type t = { rows : row list; total : row }

val analyze : (string * Dfs_fault.Injector.stats) list -> t
(** One row per (run name, stats) pair, plus a total row. *)

val pp : Format.formatter -> t -> unit
