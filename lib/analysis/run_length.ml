type t = { by_runs : Dfs_util.Cdf.t; by_bytes : Dfs_util.Cdf.t }

let create () =
  { by_runs = Dfs_util.Cdf.create (); by_bytes = Dfs_util.Cdf.create () }

let add t (a : Session.access) =
  if not a.a_is_dir then
    List.iter
      (fun run ->
        if run > 0 then begin
          let r = float_of_int run in
          Dfs_util.Cdf.add t.by_runs r;
          Dfs_util.Cdf.add t.by_bytes ~weight:r r
        end)
      a.a_runs

let analyze accesses =
  let t = create () in
  List.iter (add t) accesses;
  t

let of_trace trace = analyze (Session.of_trace trace)

let default_xs = Dfs_util.Cdf.log_xs ~lo:100.0 ~hi:10_485_760.0 ~per_decade:4
