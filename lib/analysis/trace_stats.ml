module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids

type t = {
  duration_hours : float;
  different_users : int;
  users_of_migration : int;
  mbytes_read_files : float;
  mbytes_written_files : float;
  mbytes_read_dirs : float;
  open_events : int;
  close_events : int;
  reposition_events : int;
  delete_events : int;
  truncate_events : int;
  shared_read_events : int;
  shared_write_events : int;
}

let mb bytes = float_of_int bytes /. 1048576.0

let of_trace ?accesses trace =
  let users = ref Ids.User.Set.empty in
  let migration_users = ref Ids.User.Set.empty in
  let opens = ref 0
  and closes = ref 0
  and seeks = ref 0
  and deletes = ref 0
  and truncates = ref 0
  and sreads = ref 0
  and swrites = ref 0 in
  let dir_bytes = ref 0 in
  let t_min = ref infinity and t_max = ref neg_infinity in
  (* Regular-file byte totals come from the access reconstruction so that
     directory closes are excluded. *)
  let read_bytes = ref 0 and written_bytes = ref 0 in
  let accesses =
    match accesses with Some l -> l | None -> Session.of_trace trace
  in
  List.iter
    (fun (a : Session.access) ->
      if not a.a_is_dir then begin
        read_bytes := !read_bytes + a.a_bytes_read;
        written_bytes := !written_bytes + a.a_bytes_written
      end)
    accesses;
  Array.iter
    (fun (r : Record.t) ->
      users := Ids.User.Set.add r.user !users;
      if r.migrated then migration_users := Ids.User.Set.add r.user !migration_users;
      if r.time < !t_min then t_min := r.time;
      if r.time > !t_max then t_max := r.time;
      match r.kind with
      | Record.Open _ -> incr opens
      | Record.Close _ -> incr closes
      | Record.Reposition _ -> incr seeks
      | Record.Delete _ -> incr deletes
      | Record.Truncate _ -> incr truncates
      | Record.Dir_read { bytes } -> dir_bytes := !dir_bytes + bytes
      | Record.Shared_read _ -> incr sreads
      | Record.Shared_write _ -> incr swrites)
    trace;
  {
    duration_hours =
      (if !t_max > !t_min then (!t_max -. !t_min) /. 3600.0 else 0.0);
    different_users = Ids.User.Set.cardinal !users;
    users_of_migration = Ids.User.Set.cardinal !migration_users;
    mbytes_read_files = mb !read_bytes;
    mbytes_written_files = mb !written_bytes;
    mbytes_read_dirs = mb !dir_bytes;
    open_events = !opens;
    close_events = !closes;
    reposition_events = !seeks;
    delete_events = !deletes;
    truncate_events = !truncates;
    shared_read_events = !sreads;
    shared_write_events = !swrites;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>duration: %.1f h; users: %d (%d w/ migration);@ files: %.1f MB \
     read, %.1f MB written; dirs: %.1f MB read;@ events: %d open %d close \
     %d seek %d delete %d truncate %d sread %d swrite@]"
    t.duration_hours t.different_users t.users_of_migration
    t.mbytes_read_files t.mbytes_written_files t.mbytes_read_dirs
    t.open_events t.close_events t.reposition_events t.delete_events
    t.truncate_events t.shared_read_events t.shared_write_events
