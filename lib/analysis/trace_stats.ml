module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids
module B = Dfs_trace.Record_batch

type t = {
  duration_hours : float;
  different_users : int;
  users_of_migration : int;
  mbytes_read_files : float;
  mbytes_written_files : float;
  mbytes_read_dirs : float;
  open_events : int;
  close_events : int;
  reposition_events : int;
  delete_events : int;
  truncate_events : int;
  shared_read_events : int;
  shared_write_events : int;
}

let mb bytes = float_of_int bytes /. 1048576.0

type acc = {
  mutable users : Ids.User.Set.t;
  mutable migration_users : Ids.User.Set.t;
  mutable opens : int;
  mutable closes : int;
  mutable seeks : int;
  mutable deletes : int;
  mutable truncates : int;
  mutable sreads : int;
  mutable swrites : int;
  mutable dir_bytes : int;
  mutable t_min : float;
  mutable t_max : float;
  (* Regular-file byte totals come from the access reconstruction so that
     directory closes are excluded. *)
  mutable read_bytes : int;
  mutable written_bytes : int;
}

let acc_create () =
  {
    users = Ids.User.Set.empty;
    migration_users = Ids.User.Set.empty;
    opens = 0;
    closes = 0;
    seeks = 0;
    deletes = 0;
    truncates = 0;
    sreads = 0;
    swrites = 0;
    dir_bytes = 0;
    t_min = infinity;
    t_max = neg_infinity;
    read_bytes = 0;
    written_bytes = 0;
  }

let acc_record acc batch i =
  (* the first read is bounds-checked and validates [i]; the rest of the
     reads reuse the same index through the unsafe mirror *)
  let user = B.user_id batch i in
  acc.users <- Ids.User.Set.add user acc.users;
  if B.Unsafe.migrated batch i then
    acc.migration_users <- Ids.User.Set.add user acc.migration_users;
  let time = B.Unsafe.time batch i in
  if time < acc.t_min then acc.t_min <- time;
  if time > acc.t_max then acc.t_max <- time;
  let tag = B.Unsafe.tag batch i in
  if tag = B.tag_open then acc.opens <- acc.opens + 1
  else if tag = B.tag_close then acc.closes <- acc.closes + 1
  else if tag = B.tag_reposition then acc.seeks <- acc.seeks + 1
  else if tag = B.tag_delete then acc.deletes <- acc.deletes + 1
  else if tag = B.tag_truncate then
    acc.truncates <- acc.truncates + 1
  else if tag = B.tag_dir_read then
    acc.dir_bytes <- acc.dir_bytes + B.Unsafe.a batch i
  else if tag = B.tag_shared_read then acc.sreads <- acc.sreads + 1
  else acc.swrites <- acc.swrites + 1

(* Fold [src] into [dst]. Every contribution is commutative (set
   unions, sums, min/max), so merging per-shard accumulators in any
   order equals accumulating the whole trace sequentially. *)
let acc_merge dst src =
  dst.users <- Ids.User.Set.union dst.users src.users;
  dst.migration_users <-
    Ids.User.Set.union dst.migration_users src.migration_users;
  dst.opens <- dst.opens + src.opens;
  dst.closes <- dst.closes + src.closes;
  dst.seeks <- dst.seeks + src.seeks;
  dst.deletes <- dst.deletes + src.deletes;
  dst.truncates <- dst.truncates + src.truncates;
  dst.sreads <- dst.sreads + src.sreads;
  dst.swrites <- dst.swrites + src.swrites;
  dst.dir_bytes <- dst.dir_bytes + src.dir_bytes;
  if src.t_min < dst.t_min then dst.t_min <- src.t_min;
  if src.t_max > dst.t_max then dst.t_max <- src.t_max;
  dst.read_bytes <- dst.read_bytes + src.read_bytes;
  dst.written_bytes <- dst.written_bytes + src.written_bytes

let acc_access acc (a : Session.access) =
  if not a.a_is_dir then begin
    acc.read_bytes <- acc.read_bytes + a.a_bytes_read;
    acc.written_bytes <- acc.written_bytes + a.a_bytes_written
  end

let acc_finish acc =
  {
    duration_hours =
      (if acc.t_max > acc.t_min then (acc.t_max -. acc.t_min) /. 3600.0
       else 0.0);
    different_users = Ids.User.Set.cardinal acc.users;
    users_of_migration = Ids.User.Set.cardinal acc.migration_users;
    mbytes_read_files = mb acc.read_bytes;
    mbytes_written_files = mb acc.written_bytes;
    mbytes_read_dirs = mb acc.dir_bytes;
    open_events = acc.opens;
    close_events = acc.closes;
    reposition_events = acc.seeks;
    delete_events = acc.deletes;
    truncate_events = acc.truncates;
    shared_read_events = acc.sreads;
    shared_write_events = acc.swrites;
  }

let of_batch ?accesses batch =
  let acc = acc_create () in
  (match accesses with
  | Some l ->
    List.iter (acc_access acc) l;
    for i = 0 to B.length batch - 1 do
      acc_record acc batch i
    done
  | None ->
    Session.sweep batch
      ~on_record:(fun batch i -> acc_record acc batch i)
      ~on_access:(acc_access acc));
  acc_finish acc

let of_trace ?accesses trace = of_batch ?accesses (B.of_array trace)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>duration: %.1f h; users: %d (%d w/ migration);@ files: %.1f MB \
     read, %.1f MB written; dirs: %.1f MB read;@ events: %d open %d close \
     %d seek %d delete %d truncate %d sread %d swrite@]"
    t.duration_hours t.different_users t.users_of_migration
    t.mbytes_read_files t.mbytes_written_files t.mbytes_read_dirs
    t.open_events t.close_events t.reposition_events t.delete_events
    t.truncate_events t.shared_read_events t.shared_write_events
