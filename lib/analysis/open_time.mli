(** Figure 3: how long files stay open.  The paper found about 75% of
    opens lasted less than a quarter of a second. *)

type t = { by_opens : Dfs_util.Cdf.t }

val create : unit -> t
(** Empty accumulator; feed it with {!add} (the fused pass does). *)

val add : t -> Session.access -> unit

val analyze : Session.access list -> t

val of_trace : Dfs_trace.Record.t array -> t

val default_xs : float array
(** 10 ms to 100 s, log spaced. *)

val fraction_under : t -> float -> float
(** [fraction_under t secs]: share of opens shorter than [secs]. *)
