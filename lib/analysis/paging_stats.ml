module Traffic = Dfs_sim.Traffic

type t = {
  paging_kb_per_sec_cluster : float;
  seconds_per_page_per_client : float;
  ethernet_utilization_pct : float;
  network_page_fetch_ms : float;
  disk_access_ms : float;
  backing_share_pct : float;
}

let page = float_of_int Dfs_util.Units.block_size

let analyze ~n_clients ~duration ~raw
    ?(network = Dfs_sim.Network.default_config)
    ?(disk = Dfs_sim.Disk.default_config) () =
  if n_clients <= 0 then
    invalid_arg
      (Printf.sprintf "Paging_stats.analyze: n_clients = %d must be positive"
         n_clients);
  let cached =
    Traffic.read_bytes raw Traffic.Paging_cached
    + Traffic.write_bytes raw Traffic.Paging_cached
  in
  let backing =
    Traffic.read_bytes raw Traffic.Paging_backing
    + Traffic.write_bytes raw Traffic.Paging_backing
  in
  let paging = float_of_int (cached + backing) in
  let rate = if duration > 0.0 then paging /. duration else 0.0 in
  let pages_per_sec_per_client = rate /. page /. float_of_int n_clients in
  {
    paging_kb_per_sec_cluster = rate /. 1024.0;
    seconds_per_page_per_client =
      (if pages_per_sec_per_client > 0.0 then 1.0 /. pages_per_sec_per_client
       else infinity);
    ethernet_utilization_pct = 100.0 *. rate /. network.bandwidth;
    network_page_fetch_ms =
      1000.0 *. (network.rpc_latency +. (page /. network.bandwidth));
    disk_access_ms = 1000.0 *. (disk.access_time +. (page /. disk.transfer_rate));
    backing_share_pct =
      (if paging > 0.0 then 100.0 *. float_of_int backing /. paging else 0.0);
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cluster paging: %.1f KB/s (%.1f%% of the Ethernet);@ one 4-KB \
     page every %.1f s per workstation;@ network page fetch %.1f ms vs \
     disk access %.1f ms;@ backing files carry %.0f%% of paging bytes@]"
    t.paging_kb_per_sec_cluster t.ethernet_utilization_pct
    t.seconds_per_page_per_client t.network_page_fetch_ms t.disk_access_ms
    t.backing_share_pct
