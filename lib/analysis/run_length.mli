(** Figure 1: sequential run lengths.

    A sequential run is a portion of a file read or written sequentially —
    a series of transfers bounded by an open or reposition at the start
    and a close or reposition at the end.  The top graph weights runs by
    count, the bottom by the bytes they carry. *)

type t = {
  by_runs : Dfs_util.Cdf.t;  (** weighted by number of runs *)
  by_bytes : Dfs_util.Cdf.t;  (** weighted by bytes transferred *)
}

val create : unit -> t
(** Empty accumulator; feed it with {!add} (the fused pass does). *)

val add : t -> Session.access -> unit

val analyze : Session.access list -> t
(** Directory accesses are excluded, as in Section 4. *)

val of_trace : Dfs_trace.Record.t array -> t

val default_xs : float array
(** The log-spaced run-length axis used in the paper's figure
    (100 bytes to 10 MB). *)
