type row = {
  run_name : string;
  crashes : int;
  reboots : int;
  downtime_s : float;
  lost_kb : float;
  lost_per_crash_kb : float;
  offline_queued_kb : float;
  replayed_kb : float;
  recovery_rpcs : int;
  rpc_retries : int;
  rpc_stall_s : float;
  disk_errors : int;
  partitions : int;
}

type t = { rows : row list; total : row }

let kb bytes = float_of_int bytes /. 1024.0

let row_of_stats name (s : Dfs_fault.Injector.stats) =
  {
    run_name = name;
    crashes = s.crashes;
    reboots = s.reboots;
    downtime_s = s.downtime_s;
    lost_kb = kb s.lost_bytes;
    lost_per_crash_kb =
      (if s.crashes = 0 then 0.0 else kb s.lost_bytes /. float_of_int s.crashes);
    offline_queued_kb = kb s.offline_queued_bytes;
    replayed_kb = kb s.replayed_bytes;
    recovery_rpcs = s.recovery_rpcs;
    rpc_retries = s.rpc_retries;
    rpc_stall_s = s.rpc_stall_s;
    disk_errors = s.disk_errors;
    partitions = s.partitions;
  }

let analyze named =
  let rows = List.map (fun (name, s) -> row_of_stats name s) named in
  let total =
    List.fold_left
      (fun acc r ->
        {
          acc with
          crashes = acc.crashes + r.crashes;
          reboots = acc.reboots + r.reboots;
          downtime_s = acc.downtime_s +. r.downtime_s;
          lost_kb = acc.lost_kb +. r.lost_kb;
          offline_queued_kb = acc.offline_queued_kb +. r.offline_queued_kb;
          replayed_kb = acc.replayed_kb +. r.replayed_kb;
          recovery_rpcs = acc.recovery_rpcs + r.recovery_rpcs;
          rpc_retries = acc.rpc_retries + r.rpc_retries;
          rpc_stall_s = acc.rpc_stall_s +. r.rpc_stall_s;
          disk_errors = acc.disk_errors + r.disk_errors;
          partitions = acc.partitions + r.partitions;
        })
      (row_of_stats "total"
         {
           crashes = 0;
           reboots = 0;
           downtime_s = 0.0;
           lost_bytes = 0;
           partitions = 0;
           rpc_retries = 0;
           rpc_drops = 0;
           rpc_stall_s = 0.0;
           disk_errors = 0;
           recovery_rpcs = 0;
           offline_queued_bytes = 0;
           replayed_bytes = 0;
         })
      rows
  in
  let total =
    {
      total with
      lost_per_crash_kb =
        (if total.crashes = 0 then 0.0
         else total.lost_kb /. float_of_int total.crashes);
    }
  in
  { rows; total }

let pp_row ppf r =
  Format.fprintf ppf "%-8s %7d %9.0f %10.1f %11.1f %10.1f %8d %8d %9.1f %6d %5d"
    r.run_name r.crashes r.downtime_s r.lost_kb r.lost_per_crash_kb
    r.replayed_kb r.recovery_rpcs r.rpc_retries r.rpc_stall_s r.disk_errors
    r.partitions

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "%-8s %7s %9s %10s %11s %10s %8s %8s %9s %6s %5s@ " "run" "crashes"
    "down(s)" "lost(KB)" "lost/crash" "replay(KB)" "recovRPC" "retries"
    "stall(s)" "diskE" "parts";
  List.iter (fun r -> Format.fprintf ppf "%a@ " pp_row r) t.rows;
  Format.fprintf ppf "%a@]" pp_row t.total
