(** Figure 2: dynamic file-size distribution, measured when files are
    closed.  Weighted by number of accesses (top) and by the bytes
    transferred to or from the file during the access (bottom). *)

type t = {
  by_files : Dfs_util.Cdf.t;
  by_bytes : Dfs_util.Cdf.t;
}

val create : unit -> t
(** Empty accumulator; feed it with {!add} (the fused pass does). *)

val add : t -> Session.access -> unit

val analyze : Session.access list -> t

val of_trace : Dfs_trace.Record.t array -> t

val default_xs : float array
(** 100 bytes to 10 MB, log spaced, as in the paper's axis. *)
