(** Figure 4: file lifetimes, measured when files are deleted (truncation
    to zero length counts as deletion).

    Lifetimes are estimated exactly as in the paper, from the ages of the
    oldest and newest bytes in the file: the per-file lifetime is the
    average of the two ages; the per-byte distribution assumes the file
    was written sequentially, so each byte's age interpolates linearly
    from the oldest to the newest.  Deletions of files whose bytes were
    written before the trace began cannot be aged and are skipped (their
    count is reported). *)

type t = {
  by_files : Dfs_util.Cdf.t;  (** lifetime per deleted file *)
  by_bytes : Dfs_util.Cdf.t;  (** lifetime per deleted byte *)
  deaths_aged : int;  (** deletions with usable age information *)
  deaths_unknown : int;  (** deletions of files never written in-trace *)
}

val analyze : ?accesses:Session.access list -> Dfs_trace.Record.t array -> t

(** Incremental accumulator used by the fused analysis pass: feed every
    record index with {!acc_record} (collects deletes/truncates in record
    order) and every completed access with {!acc_access} (collects
    write-bearing closes in close order); {!acc_finish} merges the two
    event lists by time and ages the deaths. *)

type acc

val acc_create : unit -> acc

val acc_record : acc -> Dfs_trace.Record_batch.t -> int -> unit

val acc_access : acc -> Session.access -> unit

val death_of_record :
  Dfs_trace.Record_batch.t -> int -> (float * Dfs_trace.Ids.File.t * int) option
(** The death record [i] contributes, if any: [(time, file, old size)]
    for deletes of regular files and for truncations. {!acc_record} is
    exactly "feed {!death_of_record} into {!acc_death}". *)

val acc_death :
  acc -> time:float -> file:Dfs_trace.Ids.File.t -> size:int -> unit
(** Append one death.  Must be called in trace record order (the order
    {!acc_record} sees them) for tie-breaking to match the sequential
    pass. *)

val acc_finish : acc -> t

val default_xs : float array
(** 1 second to 10 M seconds, log spaced. *)

val fraction_files_under : t -> float -> float

val fraction_bytes_under : t -> float -> float
