type t = { by_files : Dfs_util.Cdf.t; by_bytes : Dfs_util.Cdf.t }

let create () =
  { by_files = Dfs_util.Cdf.create (); by_bytes = Dfs_util.Cdf.create () }

let add t (a : Session.access) =
  if not a.a_is_dir then begin
    let size = float_of_int a.a_size_close in
    let transferred = Session.bytes a in
    Dfs_util.Cdf.add t.by_files size;
    if transferred > 0 then
      Dfs_util.Cdf.add t.by_bytes ~weight:(float_of_int transferred) size
  end

let analyze accesses =
  let t = create () in
  List.iter (add t) accesses;
  t

let of_trace trace = analyze (Session.of_trace trace)

let default_xs = Dfs_util.Cdf.log_xs ~lo:100.0 ~hi:10_485_760.0 ~per_decade:4
