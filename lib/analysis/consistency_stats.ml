module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids
module B = Dfs_trace.Record_batch

type t = { file_opens : int; sharing_opens : int; recall_opens : int }

type opener = { client : int; mutable count : int; mutable writers : int }

let analyze_seq batches =
  let file_opens = ref 0 and sharing = ref 0 and recalls = ref 0 in
  let open_tbl : opener list ref Ids.File.Tbl.t = Ids.File.Tbl.create 1024 in
  let last_writer : int Ids.File.Tbl.t = Ids.File.Tbl.create 256 in
  let is_writer = function
    | Record.Write_only | Record.Read_write -> true
    | Record.Read_only -> false
  in
  (* mode at close is carried by the matching open; track per handle *)
  let handle_modes : (int * int * int, Record.open_mode list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  Seq.iter (fun batch ->
  (* [handle_key] is only applied to in-range loop indices *)
  let handle_key i =
    (B.Unsafe.client batch i, B.Unsafe.pid batch i, B.Unsafe.file batch i)
  in
  for i = 0 to B.length batch - 1 do
    let tag = B.Unsafe.tag batch i in
    if tag = B.tag_open then begin
      if not (B.Unsafe.is_dir batch i) then begin
        let mode = B.Unsafe.open_mode batch i in
        let file = B.Unsafe.file_id batch i in
        incr file_opens;
        let cl = B.Unsafe.client batch i in
        (match Ids.File.Tbl.find_opt last_writer file with
        | Some w when w <> cl ->
          incr recalls;
          Ids.File.Tbl.remove last_writer file
        | Some _ | None -> ());
        let openers =
          match Ids.File.Tbl.find_opt open_tbl file with
          | Some l -> l
          | None ->
            let l = ref [] in
            Ids.File.Tbl.replace open_tbl file l;
            l
        in
        (match List.find_opt (fun o -> o.client = cl) !openers with
        | Some o ->
          o.count <- o.count + 1;
          if is_writer mode then o.writers <- o.writers + 1
        | None ->
          openers :=
            {
              client = cl;
              count = 1;
              writers = (if is_writer mode then 1 else 0);
            }
            :: !openers);
        if
          List.length !openers >= 2
          && List.exists (fun o -> o.writers > 0) !openers
        then incr sharing;
        let modes =
          match Hashtbl.find_opt handle_modes (handle_key i) with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.replace handle_modes (handle_key i) l;
            l
        in
        modes := mode :: !modes
      end
    end
    else if tag = B.tag_close then begin
      match Hashtbl.find_opt handle_modes (handle_key i) with
      | None -> ()
      | Some modes -> (
        match !modes with
        | [] -> ()
        | mode :: rest ->
          modes := rest;
          if rest = [] then Hashtbl.remove handle_modes (handle_key i);
          let cl = B.Unsafe.client batch i in
          let file = B.Unsafe.file_id batch i in
          (match Ids.File.Tbl.find_opt open_tbl file with
          | Some openers -> (
            match List.find_opt (fun o -> o.client = cl) !openers with
            | Some o ->
              o.count <- o.count - 1;
              if is_writer mode then o.writers <- max 0 (o.writers - 1);
              if o.count <= 0 then begin
                openers := List.filter (fun o' -> o'.client <> cl) !openers;
                if !openers = [] then Ids.File.Tbl.remove open_tbl file
              end
            | None -> ())
          | None -> ());
          if B.Unsafe.d batch i > 0 then
            Ids.File.Tbl.replace last_writer file cl)
    end
    else if tag = B.tag_delete then
      Ids.File.Tbl.remove last_writer (B.Unsafe.file_id batch i)
  done) batches;
  { file_opens = !file_opens; sharing_opens = !sharing; recall_opens = !recalls }

let analyze batch = analyze_seq (Seq.return batch)

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

let sharing_pct t = pct t.sharing_opens t.file_opens

let recall_pct t = pct t.recall_opens t.file_opens
