module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids

type t = { file_opens : int; sharing_opens : int; recall_opens : int }

type opener = { client : int; mutable count : int; mutable writers : int }

let analyze trace =
  let file_opens = ref 0 and sharing = ref 0 and recalls = ref 0 in
  let open_tbl : opener list ref Ids.File.Tbl.t = Ids.File.Tbl.create 1024 in
  let last_writer : int Ids.File.Tbl.t = Ids.File.Tbl.create 256 in
  let is_writer = function
    | Record.Write_only | Record.Read_write -> true
    | Record.Read_only -> false
  in
  (* mode at close is carried by the matching open; track per handle *)
  let handle_modes : (int * int * int, Record.open_mode list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  let handle_key (r : Record.t) =
    ( Ids.Client.to_int r.client,
      Ids.Process.to_int r.pid,
      Ids.File.to_int r.file )
  in
  Array.iter
    (fun (r : Record.t) ->
      match r.kind with
      | Record.Open { mode; is_dir = false; _ } ->
        incr file_opens;
        let cl = Ids.Client.to_int r.client in
        (match Ids.File.Tbl.find_opt last_writer r.file with
        | Some w when w <> cl ->
          incr recalls;
          Ids.File.Tbl.remove last_writer r.file
        | Some _ | None -> ());
        let openers =
          match Ids.File.Tbl.find_opt open_tbl r.file with
          | Some l -> l
          | None ->
            let l = ref [] in
            Ids.File.Tbl.replace open_tbl r.file l;
            l
        in
        (match List.find_opt (fun o -> o.client = cl) !openers with
        | Some o ->
          o.count <- o.count + 1;
          if is_writer mode then o.writers <- o.writers + 1
        | None ->
          openers :=
            { client = cl; count = 1; writers = (if is_writer mode then 1 else 0) }
            :: !openers);
        if
          List.length !openers >= 2
          && List.exists (fun o -> o.writers > 0) !openers
        then incr sharing;
        let modes =
          match Hashtbl.find_opt handle_modes (handle_key r) with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.replace handle_modes (handle_key r) l;
            l
        in
        modes := mode :: !modes
      | Record.Close { bytes_written; _ } -> (
        match Hashtbl.find_opt handle_modes (handle_key r) with
        | None -> ()
        | Some modes ->
          (match !modes with
          | [] -> ()
          | mode :: rest ->
            modes := rest;
            if rest = [] then Hashtbl.remove handle_modes (handle_key r);
            let cl = Ids.Client.to_int r.client in
            (match Ids.File.Tbl.find_opt open_tbl r.file with
            | Some openers -> (
              match List.find_opt (fun o -> o.client = cl) !openers with
              | Some o ->
                o.count <- o.count - 1;
                if is_writer mode then o.writers <- max 0 (o.writers - 1);
                if o.count <= 0 then begin
                  openers := List.filter (fun o' -> o'.client <> cl) !openers;
                  if !openers = [] then Ids.File.Tbl.remove open_tbl r.file
                end
              | None -> ())
            | None -> ());
            if bytes_written > 0 then
              Ids.File.Tbl.replace last_writer r.file cl))
      | Record.Delete _ ->
        Ids.File.Tbl.remove last_writer r.file
      | Record.Open _ | Record.Reposition _ | Record.Truncate _
      | Record.Dir_read _ | Record.Shared_read _ | Record.Shared_write _ ->
        ())
    trace;
  { file_opens = !file_opens; sharing_opens = !sharing; recall_opens = !recalls }

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

let sharing_pct t = pct t.sharing_opens t.file_opens

let recall_pct t = pct t.recall_opens t.file_opens
