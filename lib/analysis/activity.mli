(** Table 2: user activity and burst rates.

    The trace is divided into fixed intervals (the paper uses 10 minutes
    for steady state and 10 seconds for bursts); a user is active in an
    interval if any trace record of theirs falls inside it, and a run's
    bytes count toward the interval in which the run ended (the moment
    the transfer is known from the position-logging events). *)

type report = {
  interval : float;  (** seconds *)
  avg_active_users : float;
  sd_active_users : float;
  max_active_users : int;
  avg_user_throughput : float;  (** KB/s per active user *)
  sd_user_throughput : float;
  peak_user_throughput : float;  (** KB/s *)
  peak_total_throughput : float;  (** KB/s *)
}

val analyze :
  ?migrated_only:bool ->
  interval:float ->
  Dfs_trace.Record_batch.t ->
  report
(** With [migrated_only] (Table 2's second column), a user is active only
    when a migrated process acted for them, and only migrated processes'
    bytes count. *)

val analyze_seq :
  ?migrated_only:bool ->
  interval:float ->
  Dfs_trace.Record_batch.t Seq.t ->
  report
(** {!analyze} over a chunked trace.  The sequence must be replayable
    (e.g. {!Dfs_trace.Sink.to_seq}): the analysis traverses it once for
    the time span and again for the interval folds. *)

val pp : Format.formatter -> report -> unit
